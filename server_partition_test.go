package blast

// Differential tests of the partitioned topology: a quiesced
// partitioned server must be byte-identical to a replicated server over
// the same insert sequence AND to a cold IndexBlocks over the union
// collection, across Scheme x Pruning x shard counts — the partitioned
// aggregate exchange may not move a single bit. Plus ownership-hash
// skew, boundary-id churn and View consistency contracts.

import (
	"context"
	"fmt"
	"testing"

	"blast/internal/metablocking"
	"blast/internal/model"
	"blast/internal/shard"
	"blast/internal/stats"
	"blast/internal/weights"
)

// TestPartitionedEquivalenceMatrix runs the cold-rebuild contract over
// Scheme x Pruning with the shard and worker counts cycling, all under
// the partitioned topology.
func TestPartitionedEquivalenceMatrix(t *testing.T) {
	ctx := context.Background()
	schemes := []weights.Scheme{
		{Kind: weights.ChiSquared, Entropy: true},
		{Kind: weights.CBS},
		{Kind: weights.JS},
		{Kind: weights.ARCS, Entropy: true},
		{Kind: weights.ECBS},
		{Kind: weights.EJS},
	}
	prunings := []metablocking.Pruning{
		metablocking.WEP, metablocking.CEP, metablocking.WNP1,
		metablocking.WNP2, metablocking.CNP1, metablocking.CNP2,
		metablocking.BlastWNP,
	}
	shardCounts := []int{1, 2, 4}
	workersAxis := []int{0, 1, 2, 4}
	cfg := 0
	for _, scheme := range schemes {
		for _, pruning := range prunings {
			shards := shardCounts[cfg%len(shardCounts)]
			workers := workersAxis[cfg%len(workersAxis)]
			cfg++
			label := fmt.Sprintf("part/%s/%v/shards=%d/workers=%d", scheme.Name(), pruning, shards, workers)
			rng := stats.NewRNG(uint64(cfg)*9176168613 + 3)
			ds := synthDirty(rng, 50)
			opt := DefaultOptions()
			opt.Scheme = scheme
			opt.Pruning = pruning
			opt.Workers = workers
			p, err := NewPipeline(opt)
			if err != nil {
				t.Fatal(err)
			}
			srv, err := p.Serve(ctx, ds, ServerOptions{
				Shards: shards, Topology: TopologyPartitioned, SwapOps: 8,
			})
			if err != nil {
				t.Fatalf("%s: Serve: %v", label, err)
			}
			if got := srv.Topology(); got != TopologyPartitioned {
				t.Fatalf("%s: Topology = %v", label, got)
			}
			streamed := 0
			for batch := 0; batch < 2; batch++ {
				profs := make([]model.Profile, 7)
				for i := range profs {
					profs[i] = synthProfile(rng, fmt.Sprintf("s%d-%d", batch, i))
				}
				ids, err := srv.InsertAll(ctx, profs)
				if err != nil {
					t.Fatalf("%s: InsertAll: %v", label, err)
				}
				for k, id := range ids {
					if want := 50 + streamed + k; id != want {
						t.Fatalf("%s: id[%d] = %d, want %d", label, k, id, want)
					}
				}
				streamed += len(profs)
				checkServerEquivalence(t, fmt.Sprintf("%s batch %d", label, batch), p, srv)
			}
			if err := srv.Close(); err != nil {
				t.Fatalf("%s: Close: %v", label, err)
			}
		}
	}
}

// TestPartitionedMatchesReplicated runs the same insert sequence
// through both topologies and compares every observable directly —
// pairs, per-profile candidates, thresholds, epoch-independent global
// counters — plus the partitioned residency accounting.
func TestPartitionedMatchesReplicated(t *testing.T) {
	ctx := context.Background()
	for _, shards := range []int{1, 2, 4} {
		rng := stats.NewRNG(uint64(shards)*104729 + 1)
		ds := synthDirty(rng, 45)
		p, err := NewPipeline(DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		run := func(topo Topology) *Server {
			t.Helper()
			srv, err := p.Serve(ctx, ds, ServerOptions{Shards: shards, Topology: topo, SwapOps: 4})
			if err != nil {
				t.Fatalf("shards=%d %v: Serve: %v", shards, topo, err)
			}
			srng := stats.NewRNG(uint64(shards)*31 + 5)
			for b := 0; b < 3; b++ {
				profs := make([]model.Profile, 1+srng.Intn(5))
				for i := range profs {
					profs[i] = synthProfile(srng, fmt.Sprintf("b%d-%d", b, i))
				}
				if _, err := srv.InsertAll(ctx, profs); err != nil {
					t.Fatalf("shards=%d %v: InsertAll: %v", shards, topo, err)
				}
			}
			if err := srv.Quiesce(ctx); err != nil {
				t.Fatalf("shards=%d %v: Quiesce: %v", shards, topo, err)
			}
			return srv
		}
		rep := run(TopologyReplicated)
		part := run(TopologyPartitioned)

		label := fmt.Sprintf("shards=%d", shards)
		rp, err := rep.Pairs(ctx)
		if err != nil {
			t.Fatal(err)
		}
		pp, err := part.Pairs(ctx)
		if err != nil {
			t.Fatal(err)
		}
		assertSamePairs(t, label+" pairs", rp, pp)
		if got, want := part.NumProfiles(), rep.NumProfiles(); got != want {
			t.Fatalf("%s: NumProfiles = %d, want %d", label, got, want)
		}
		var rc, pc []Candidate
		for i := 0; i < rep.NumProfiles(); i++ {
			if rt, pt := rep.Threshold(i), part.Threshold(i); rt != pt {
				t.Fatalf("%s: Threshold(%d) = %v, want %v", label, i, pt, rt)
			}
			rc = rep.AppendCandidates(rc[:0], i)
			pc = part.AppendCandidates(pc[:0], i)
			if len(rc) != len(pc) {
				t.Fatalf("%s: Candidates(%d): %d, want %d", label, i, len(pc), len(rc))
			}
			for k := range rc {
				if rc[k] != pc[k] {
					t.Fatalf("%s: Candidates(%d)[%d] = %+v, want %+v", label, i, k, pc[k], rc[k])
				}
			}
		}

		// Residency: every profile owned exactly once, global counters
		// shared, per-shard entries strictly partial when sharded.
		pst := part.Stats()
		rst := rep.Stats()
		ownedTotal := 0
		for _, st := range pst {
			ownedTotal += st.OwnedRows
		}
		if want := part.NumProfiles(); ownedTotal != want {
			t.Fatalf("%s: owned rows sum to %d, want %d", label, ownedTotal, want)
		}
		for i, st := range rst {
			if st.OwnedRows != rep.NumProfiles() {
				t.Fatalf("%s: replicated shard %d owns %d rows, want all %d", label, i, st.OwnedRows, rep.NumProfiles())
			}
		}
		if shards > 1 {
			for i, st := range pst {
				if st.ResidentBytes >= rst[0].ResidentBytes {
					t.Fatalf("%s: partitioned shard %d resident %d bytes, not below replicated %d",
						label, i, st.ResidentBytes, rst[0].ResidentBytes)
				}
			}
		}
		if err := rep.Close(); err != nil {
			t.Fatal(err)
		}
		if err := part.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestOwnerSkew checks the SplitMix64 ownership hash spreads dense
// sequential ids evenly: for 1..8 shards over a large id range, no
// shard's share may deviate from the uniform share by more than 10%.
func TestOwnerSkew(t *testing.T) {
	const ids = 1 << 16
	for n := 1; n <= 8; n++ {
		counts := make([]int, n)
		for p := 0; p < ids; p++ {
			counts[shard.Owner(int32(p), n)]++
		}
		want := float64(ids) / float64(n)
		for sh, c := range counts {
			if dev := (float64(c) - want) / want; dev > 0.10 || dev < -0.10 {
				t.Fatalf("n=%d: shard %d owns %d of %d ids (%.1f%% off uniform)",
					n, sh, c, ids, dev*100)
			}
		}
	}
}

// TestPartitionedBoundaryIDsUnderChurn hammers point reads at and past
// the admitted-id frontier of a partitioned server while writers
// stream batches: reads must never panic, and candidates for ids beyond
// every published snapshot must come back empty, not fabricated.
func TestPartitionedBoundaryIDsUnderChurn(t *testing.T) {
	ctx := context.Background()
	rng := stats.NewRNG(424243)
	ds := synthDirty(rng, 30)
	p, err := NewPipeline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := p.Serve(ctx, ds, ServerOptions{Shards: 3, Topology: TopologyPartitioned, SwapOps: 2})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		wrng := stats.NewRNG(99)
		// The stream is bounded: with SwapOps 2 nearly every applied
		// profile re-exports O(index) owned state on its shard, so an
		// unbounded writer makes the final quiesce quadratic in the
		// admitted backlog (it timed out under -race). 250 singles still
		// drive >100 publishes per shard across the probe loop.
		for i := 0; i < 250; i++ {
			select {
			case <-stop:
				done <- nil
				return
			default:
			}
			profs := []model.Profile{synthProfile(wrng, fmt.Sprintf("churn%d", i))}
			if _, err := srv.InsertAll(ctx, profs); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 2000; i++ {
		frontier := srv.Admitted()
		for _, probe := range []int{frontier - 1, frontier, frontier + 1, frontier + 1000, -1} {
			cands := srv.Candidates(probe)
			if probe >= srv.Admitted() || probe < 0 {
				if len(cands) != 0 {
					t.Fatalf("Candidates(%d) fabricated %d results past the frontier", probe, len(cands))
				}
			}
			_ = srv.Threshold(probe)
			_ = srv.Epoch(probe)
		}
	}
	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("writer: %v", err)
	}
	checkServerEquivalence(t, "boundary churn", p, srv)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestViewConsistency takes Views while writers stream and checks each
// view is internally consistent: every snapshot behind it sits at the
// view's Batches cursor, and repeated reads through one view never
// change even as the server publishes past it.
func TestViewConsistency(t *testing.T) {
	ctx := context.Background()
	rng := stats.NewRNG(77)
	ds := synthDirty(rng, 30)
	p, err := NewPipeline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, topo := range []Topology{TopologyReplicated, TopologyPartitioned} {
		srv, err := p.Serve(ctx, ds, ServerOptions{Shards: 3, Topology: topo, SwapOps: 2})
		if err != nil {
			t.Fatalf("%v: Serve: %v", topo, err)
		}
		v, err := srv.View(ctx)
		if err != nil {
			t.Fatalf("%v: View: %v", topo, err)
		}
		before := make([][]Candidate, v.NumProfiles())
		for i := range before {
			before[i] = v.Candidates(i)
		}
		batchesBefore := v.Batches()
		// Publish past the view.
		for b := 0; b < 4; b++ {
			profs := []model.Profile{synthProfile(rng, fmt.Sprintf("v%d", b))}
			if _, err := srv.InsertAll(ctx, profs); err != nil {
				t.Fatalf("%v: InsertAll: %v", topo, err)
			}
		}
		if err := srv.Quiesce(ctx); err != nil {
			t.Fatalf("%v: Quiesce: %v", topo, err)
		}
		if got := v.Batches(); got != batchesBefore {
			t.Fatalf("%v: view cursor moved: %d -> %d", topo, batchesBefore, got)
		}
		for i := range before {
			after := v.Candidates(i)
			if len(after) != len(before[i]) {
				t.Fatalf("%v: view read of %d changed after publication", topo, i)
			}
			for k := range after {
				if after[k] != before[i][k] {
					t.Fatalf("%v: view read of %d changed after publication", topo, i)
				}
			}
		}
		// A fresh view observes the later state.
		v2, err := srv.View(ctx)
		if err != nil {
			t.Fatalf("%v: second View: %v", topo, err)
		}
		if v2.Batches() <= batchesBefore {
			t.Fatalf("%v: second view did not advance (%d <= %d)", topo, v2.Batches(), batchesBefore)
		}
		if got, want := v2.NumProfiles(), srv.Admitted(); got != want {
			t.Fatalf("%v: second view covers %d profiles, want %d", topo, got, want)
		}
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
