package blast

// Integration tests: the full pipeline across every benchmark dataset
// and configuration axis, plus randomized property tests over arbitrary
// small collections.

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"blast/internal/datasets"
	"blast/internal/metablocking"
	"blast/internal/model"
	"blast/internal/stats"
	"blast/internal/weights"
)

// TestPipelineAllBenchmarks runs BLAST on every synthetic benchmark and
// asserts the invariants that must hold regardless of workload: valid
// output pairs, PQ never below the input block collection's, PC above a
// per-dataset floor.
func TestPipelineAllBenchmarks(t *testing.T) {
	floors := map[string]float64{
		"ar1": 0.95, "ar2": 0.90, "prd": 0.95, "mov": 0.95, "dbp": 0.80,
		"census": 0.85, "cora": 0.30, "cddb": 0.85,
	}
	scales := map[string]float64{
		"ar1": 0.05, "ar2": 0.01, "prd": 0.1, "mov": 0.01, "dbp": 0.02,
		"census": 0.2, "cora": 0.2, "cddb": 0.02,
	}
	for _, name := range datasets.AllNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			gen, err := datasets.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			ds := gen(scales[name], 42)
			res, err := Run(ds, DefaultOptions())
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Quality.PC < floors[name] {
				t.Errorf("PC = %.3f below floor %.2f", res.Quality.PC, floors[name])
			}
			if res.Quality.PQ < res.BlockQuality.PQ {
				t.Errorf("meta-blocking reduced PQ: %.4f -> %.4f", res.BlockQuality.PQ, res.Quality.PQ)
			}
			if int64(len(res.Pairs)) > res.Blocks.AggregateCardinality() {
				t.Error("more pairs than input comparisons")
			}
			for _, p := range res.Pairs {
				if !ds.Comparable(int(p.U), int(p.V)) {
					t.Fatalf("invalid pair %v", p)
				}
			}
		})
	}
}

// TestPipelineConfigurationMatrix exercises every pruning x weighting
// combination on one dataset: all must produce valid, deduplicated
// output.
func TestPipelineConfigurationMatrix(t *testing.T) {
	ds := datasets.AR1(0.03, 8)
	prunings := []metablocking.Pruning{
		metablocking.WEP, metablocking.CEP, metablocking.WNP1,
		metablocking.WNP2, metablocking.CNP1, metablocking.CNP2,
		metablocking.BlastWNP,
	}
	kinds := []weights.Kind{
		weights.ARCS, weights.CBS, weights.ECBS, weights.JS,
		weights.EJS, weights.ChiSquared,
	}
	for _, p := range prunings {
		for _, k := range kinds {
			for _, entropy := range []bool{false, true} {
				opt := DefaultOptions()
				opt.Pruning = p
				opt.Scheme = weights.Scheme{Kind: k, Entropy: entropy}
				name := fmt.Sprintf("%v/%v/h=%v", p, k, entropy)
				res, err := Run(ds, opt)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				seen := make(map[uint64]bool, len(res.Pairs))
				for _, pair := range res.Pairs {
					if seen[pair.Key()] {
						t.Fatalf("%s: duplicate pair", name)
					}
					seen[pair.Key()] = true
				}
			}
		}
	}
}

// randomDataset synthesizes an arbitrary small dirty dataset from fuzz
// bytes: profile count, attribute names and token choices all derive
// from the input.
func randomDataset(raw []byte) *model.Dataset {
	rng := stats.NewRNG(uint64(len(raw)) + 1)
	for _, b := range raw {
		rng = stats.NewRNG(rng.Uint64() ^ uint64(b))
	}
	words := []string{"alpha", "beta", "gamma", "delta", "abram", "ellen", "85", "1985", "ny", "main"}
	attrs := []string{"name", "addr", "year", "note"}
	n := 2 + rng.Intn(14)
	e := model.NewCollection("rand")
	for i := 0; i < n; i++ {
		p := model.Profile{ID: fmt.Sprintf("r%d", i)}
		na := 1 + rng.Intn(len(attrs))
		for a := 0; a < na; a++ {
			nt := 1 + rng.Intn(4)
			var toks []string
			for j := 0; j < nt; j++ {
				toks = append(toks, words[rng.Intn(len(words))])
			}
			p.Add(attrs[rng.Intn(len(attrs))], strings.Join(toks, " "))
		}
		e.Append(p)
	}
	truth := model.NewGroundTruth()
	if n >= 2 {
		truth.Add(0, 1)
	}
	return &model.Dataset{Name: "rand", Kind: model.Dirty, E1: e, Truth: truth}
}

// TestPipelineNeverPanicsOnRandomData: arbitrary inputs must flow
// through the whole pipeline without panics and with valid outputs.
func TestPipelineNeverPanicsOnRandomData(t *testing.T) {
	f := func(raw []byte) bool {
		ds := randomDataset(raw)
		for _, induction := range []Induction{LMI, AC, NoInduction} {
			opt := DefaultOptions()
			opt.Induction = induction
			res, err := Run(ds, opt)
			if err != nil {
				return false
			}
			for _, p := range res.Pairs {
				if int(p.U) < 0 || int(p.V) >= ds.NumProfiles() || p.U >= p.V {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPipelineMonotoneInC: BLAST's c parameter trades precision for
// recall monotonically (more retained comparisons as c grows).
func TestPipelineMonotoneInC(t *testing.T) {
	ds := datasets.Census(0.3, 13)
	prev := -1
	for _, c := range []float64{1, 1.5, 2, 3, 5, 10} {
		opt := DefaultOptions()
		opt.C = c
		res, err := Run(ds, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Pairs) < prev {
			t.Errorf("c=%v retained %d < previous %d", c, len(res.Pairs), prev)
		}
		prev = len(res.Pairs)
	}
}

// TestSeedStability: the same seed yields identical results end to end;
// different dataset seeds yield different datasets but the pipeline's
// qualitative outcome (high PC) persists.
func TestSeedStability(t *testing.T) {
	for _, seed := range []uint64{1, 7, 99} {
		ds := datasets.PRD(0.05, seed)
		a, err := Run(ds, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(ds, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Pairs) != len(b.Pairs) {
			t.Fatalf("seed %d: nondeterministic pair count", seed)
		}
		for i := range a.Pairs {
			if a.Pairs[i] != b.Pairs[i] {
				t.Fatalf("seed %d: nondeterministic pairs", seed)
			}
		}
		if a.Quality.PC < 0.9 {
			t.Errorf("seed %d: PC = %v", seed, a.Quality.PC)
		}
	}
}

// TestStandardBlockingEquivalence reproduces the Section 4.1 claim
// ("Blast vs. Schema-based Blocking"): on fully mappable datasets the
// LMI partitioning is equivalent to the manual schema alignment, so
// BLAST over Standard Blocking and BLAST over LMI blocks achieve the
// same PC and PQ.
func TestStandardBlockingEquivalence(t *testing.T) {
	for _, name := range []string{"ar1", "ar2", "prd"} {
		name := name
		t.Run(name, func(t *testing.T) {
			gen, _ := datasets.ByName(name)
			scale := 0.05
			if name == "ar2" {
				scale = 0.01
			}
			ds := gen(scale, 17)

			lmiRes, err := Run(ds, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}

			// The LMI partitioning must align exactly the manually
			// aligned attribute pairs (glue cluster empty or singleton
			// attributes only).
			align, ok := datasets.ManualAlignment(name)
			if !ok {
				t.Fatal("alignment missing")
			}
			groups := make(map[string][2]int)
			for key, id := range align {
				src := 0
				if key[0] == "1" {
					src = 1
				}
				cl, found := lmiRes.Partitioning.ClusterOf(src, key[1])
				if !found {
					t.Fatalf("attribute %v not in partitioning", key)
				}
				g := groups[id]
				g[src] = cl
				groups[id] = g
			}
			for id, g := range groups {
				if g[0] != g[1] {
					t.Errorf("aligned attributes %s in clusters %d vs %d", id, g[0], g[1])
				}
				if g[0] == 0 {
					t.Errorf("aligned attributes %s fell into the glue cluster", id)
				}
			}
		})
	}
}
