package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func testPayloads(t *testing.T, seed int64, n int) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, n)
	for i := range out {
		p := make([]byte, rng.Intn(4096))
		rng.Read(p)
		out[i] = p
	}
	return out
}

func TestArenaRoundTrip(t *testing.T) {
	payloads := testPayloads(t, 1, 32)
	arenas := map[string]Arena{}
	fa, err := CreateFile(filepath.Join(t.TempDir(), "seg"))
	if err != nil {
		t.Fatal(err)
	}
	arenas["file"] = fa
	arenas["mem"] = NewMem()
	for name, a := range arenas {
		t.Run(name, func(t *testing.T) {
			for i, p := range payloads {
				id, err := a.Append(p)
				if err != nil {
					t.Fatalf("append %d: %v", i, err)
				}
				if id != i {
					t.Fatalf("append %d returned id %d", i, id)
				}
			}
			if a.Frames() != len(payloads) {
				t.Fatalf("Frames() = %d, want %d", a.Frames(), len(payloads))
			}
			var buf []byte
			// Random-access loads, repeated to exercise dst reuse.
			for _, i := range []int{31, 0, 7, 7, 16, 31} {
				got, err := a.Load(i, buf)
				if err != nil {
					t.Fatalf("load %d: %v", i, err)
				}
				if !bytes.Equal(got, payloads[i]) {
					t.Fatalf("load %d: payload mismatch (%d vs %d bytes)", i, len(got), len(payloads[i]))
				}
				buf = got
			}
			if _, err := a.Load(len(payloads), nil); err == nil {
				t.Fatal("out-of-range load succeeded")
			}
			if err := a.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := a.Load(0, nil); !errors.Is(err, ErrClosed) {
				t.Fatalf("load after close: %v, want ErrClosed", err)
			}
		})
	}
}

// TestFileArenaFaultInjection mirrors the internal/wal torn-tail tests:
// every byte-level fault on a segment file must surface as the right
// named error on the first load that touches it — never as plausible
// bytes.
func TestFileArenaFaultInjection(t *testing.T) {
	payloads := testPayloads(t, 2, 8)
	build := func(t *testing.T) *FileArena {
		t.Helper()
		a, err := CreateFile(filepath.Join(t.TempDir(), "seg"))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range payloads {
			if _, err := a.Append(p); err != nil {
				t.Fatal(err)
			}
		}
		return a
	}

	t.Run("clean", func(t *testing.T) {
		a := build(t)
		defer a.Close()
		for i := range payloads {
			if _, err := a.Load(i, nil); err != nil {
				t.Fatalf("clean load %d: %v", i, err)
			}
		}
	})

	t.Run("truncated-tail", func(t *testing.T) {
		// Chop the file mid-way through the final frame's payload: the
		// torn-tail shape of a crashed writer.
		a := build(t)
		defer a.Close()
		if err := a.f.Truncate(a.end - 1); err != nil {
			t.Fatal(err)
		}
		last := len(payloads) - 1
		if _, err := a.Load(last, nil); !errors.Is(err, ErrTruncatedSegment) {
			t.Fatalf("torn-tail load: %v, want ErrTruncatedSegment", err)
		}
		// Earlier frames are intact and must still load.
		if _, err := a.Load(0, nil); err != nil {
			t.Fatalf("intact frame after truncation: %v", err)
		}
	})

	t.Run("corrupt-payload", func(t *testing.T) {
		a := build(t)
		defer a.Close()
		// Flip one payload byte of frame 3 in place.
		off := a.offs[3] + frameHeaderSize + int64(len(payloads[3])/2)
		flipByteAt(t, a.f, off)
		if _, err := a.Load(3, nil); !errors.Is(err, ErrCorruptSegment) {
			t.Fatalf("corrupt payload load: %v, want ErrCorruptSegment", err)
		}
		if _, err := a.Load(2, nil); err != nil {
			t.Fatalf("neighboring frame: %v", err)
		}
	})

	t.Run("corrupt-header", func(t *testing.T) {
		a := build(t)
		defer a.Close()
		flipByteAt(t, a.f, a.offs[5]) // length field of frame 5
		_, err := a.Load(5, nil)
		if !errors.Is(err, ErrCorruptSegment) && !errors.Is(err, ErrTruncatedSegment) {
			t.Fatalf("corrupt header load: %v, want a named segment error", err)
		}
	})
}

func flipByteAt(t *testing.T, f *os.File, off int64) {
	t.Helper()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// TestScanFramesFaults drives the image-level scanner through the same
// fault classes, pinning which named error each shape produces.
func TestScanFramesFaults(t *testing.T) {
	img := []byte(Magic)
	payloads := testPayloads(t, 3, 4)
	for _, p := range payloads {
		img = AppendFrame(img, p)
	}
	count := 0
	if err := ScanFrames(img, func(p []byte) error {
		if !bytes.Equal(p, payloads[count]) {
			return fmt.Errorf("frame %d mismatch", count)
		}
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != len(payloads) {
		t.Fatalf("scanned %d frames, want %d", count, len(payloads))
	}

	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"short-magic", func(b []byte) []byte { return b[:4] }, ErrTruncatedSegment},
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, ErrCorruptSegment},
		{"torn-header", func(b []byte) []byte { return b[:len(Magic)+3] }, ErrTruncatedSegment},
		{"torn-payload", func(b []byte) []byte { return b[:len(b)-1] }, ErrTruncatedSegment},
		{"flipped-crc", func(b []byte) []byte { b[len(Magic)+5] ^= 0x01; return b }, ErrCorruptSegment},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := tc.mut(append([]byte(nil), img...))
			if err := ScanFrames(mut, nil); !errors.Is(err, tc.want) {
				t.Fatalf("ScanFrames = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestCacheLRUAndStats(t *testing.T) {
	c := NewCache(100)
	loads := 0
	get := func(key uint64, size int64) any {
		t.Helper()
		v, err := c.Get(key, func() (any, int64, error) {
			loads++
			return key, size, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	get(1, 40)
	get(2, 40)
	if got := get(1, 40); got != uint64(1) {
		t.Fatalf("hit returned %v", got)
	}
	if loads != 2 {
		t.Fatalf("loads = %d, want 2", loads)
	}
	// Inserting key 3 (40 bytes) exceeds 100: key 2 (LRU) is evicted.
	get(3, 40)
	get(2, 40)
	if loads != 4 {
		t.Fatalf("loads = %d, want 4 (key 2 evicted and reloaded)", loads)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 4 {
		t.Fatalf("stats = %+v, want 1 hit / 4 misses", st)
	}
	if st.Bytes > 100+40 {
		t.Fatalf("resident %d bytes, cap 100", st.Bytes)
	}
	if st.HitRate() <= 0 || st.HitRate() >= 1 {
		t.Fatalf("hit rate %v out of (0,1)", st.HitRate())
	}

	// Load errors are returned, never cached.
	sentinel := errors.New("boom")
	if _, err := c.Get(9, func() (any, int64, error) { return nil, 0, sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("error load: %v", err)
	}
	if _, err := c.Get(9, func() (any, int64, error) { return nil, 0, sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("error must not be cached: %v", err)
	}
}

func TestCloseAndRemove(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg")
	a, err := CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := a.CloseAndRemove(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("segment file still present: %v", err)
	}
	// Removing twice stays clean.
	if err := a.CloseAndRemove(); err != nil {
		t.Fatalf("second CloseAndRemove: %v", err)
	}
}
