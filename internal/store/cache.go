package store

import (
	"container/list"
	"sync"
)

// Cache is a byte-bounded LRU over decoded segment pages, shared by
// every reader of one spilled structure. Values are opaque to the
// cache; the loader reports each value's resident size and the cache
// evicts least-recently-used entries until it fits its capacity again.
//
// Get serializes loads under the cache mutex. That is deliberate: the
// paged consumers are correctness-first (the bench gate is on resident
// memory, not on paged throughput), and a single-flight load guarantees
// a page is never decoded twice concurrently nor double-counted against
// the budget.
type Cache struct {
	mu       sync.Mutex
	capBytes int64
	used     int64
	ll       *list.List // front = most recently used
	idx      map[uint64]*list.Element
	hits     uint64
	misses   uint64
}

type cacheEntry struct {
	key  uint64
	val  any
	size int64
}

// CacheStats is a point-in-time snapshot of a cache's effectiveness.
type CacheStats struct {
	Hits, Misses uint64
	// Bytes is the resident size of the cached values; Entries their
	// count.
	Bytes   int64
	Entries int
}

// HitRate returns Hits/(Hits+Misses), 0 when the cache was never read.
func (s CacheStats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// NewCache returns an LRU cache bounded at capBytes (minimum one
// entry: a value larger than the whole capacity still resides while
// pinned as most recently used, and is evicted by the next insert).
func NewCache(capBytes int64) *Cache {
	if capBytes < 1 {
		capBytes = 1
	}
	return &Cache{capBytes: capBytes, ll: list.New(), idx: make(map[uint64]*list.Element)}
}

// Get returns the cached value for key, invoking load on a miss. load
// returns the value, its resident size in bytes, and an error; errors
// are returned to the caller and nothing is cached.
func (c *Cache) Get(key uint64, load func() (any, int64, error)) (any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).val, nil
	}
	c.misses++
	val, size, err := load()
	if err != nil {
		return nil, err
	}
	el := c.ll.PushFront(&cacheEntry{key: key, val: val, size: size})
	c.idx[key] = el
	c.used += size
	for c.used > c.capBytes && c.ll.Len() > 1 {
		back := c.ll.Back()
		e := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.idx, e.key)
		c.used -= e.size
	}
	return val, nil
}

// Stats returns the cache's hit/miss counters and residency.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Bytes: c.used, Entries: c.ll.Len()}
}
