package store

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzSegmentDecode feeds arbitrary byte images to the segment-frame
// scanner: it must never panic, must only ever fail with the named
// segment errors, and must round-trip payloads it re-encodes bit for
// bit. This is the decode half of the fail-closed contract the spilled
// CSR relies on — a mangled segment file yields an error, never
// plausible adjacency bytes.
func FuzzSegmentDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add([]byte("BLSEG00"))
	f.Add(AppendFrame([]byte(Magic), []byte("hello")))
	f.Add(AppendFrame(AppendFrame([]byte(Magic), nil), []byte{1, 2, 3}))
	img := AppendFrame([]byte(Magic), bytes.Repeat([]byte{0xab}, 300))
	f.Add(img[:len(img)-7])
	f.Fuzz(func(t *testing.T, data []byte) {
		var payloads [][]byte
		err := ScanFrames(data, func(p []byte) error {
			payloads = append(payloads, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			if !errors.Is(err, ErrCorruptSegment) && !errors.Is(err, ErrTruncatedSegment) {
				t.Fatalf("ScanFrames failed with an unnamed error: %v", err)
			}
			return
		}
		// A clean image must re-encode to the identical bytes.
		re := []byte(Magic)
		for _, p := range payloads {
			re = AppendFrame(re, p)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encoding %d frames produced %d bytes, input was %d", len(payloads), len(re), len(data))
		}
	})
}
