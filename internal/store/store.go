// Package store decouples the logical shapes of the system — flat
// per-entry arrays such as a CSR adjacency — from their residency. An
// Arena is an append-only sequence of opaque payload frames ("segments")
// with random read access by frame id. Two implementations exist:
//
//   - Mem keeps every frame in process memory. It is the zero-cost
//     reference implementation; the fully resident fast paths of the
//     system do not even go through it (they index plain slices
//     directly), but it lets every paging consumer be exercised without
//     touching disk.
//   - FileArena appends frames to a single file and reads them back
//     with positioned reads (pread). Every frame is CRC-framed, and a
//     read that does not check out — short file, mangled header, payload
//     checksum mismatch — fails closed with a named error rather than
//     returning bytes that merely look plausible. This is the spill
//     target of the beyond-RAM CSR (graph.BuildCSRSpillCtx).
//
// The on-disk format is deliberately minimal and self-checking:
//
//	[8]  magic "BLSEG001"
//	per frame:
//	  [4] little-endian payload length
//	  [4] little-endian CRC-32C (Castagnoli) of the payload
//	  [n] payload
//
// Frames are located by the in-memory offset table the writer built;
// segment files are ephemeral (one build's spill), never reopened by a
// later process, so no recovery scan exists — but ScanFrames walks a
// raw image with full validation for tests and fuzzing.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Magic is the 8-byte header every segment file starts with.
const Magic = "BLSEG001"

// maxFramePayload bounds a single frame's declared payload length; a
// header announcing more than this is corruption, not a huge frame (the
// paged CSR writes pages of at most a few MiB).
const maxFramePayload = 1 << 30

var (
	// ErrCorruptSegment reports a segment frame whose bytes fail
	// validation: bad magic, an implausible header, or a payload whose
	// checksum does not match. Readers must fail closed on it — the
	// frame's bytes are not usable in any part.
	ErrCorruptSegment = errors.New("store: corrupt segment")
	// ErrTruncatedSegment reports a segment file that ends mid-header or
	// mid-payload — the torn-tail shape of an interrupted write. Distinct
	// from ErrCorruptSegment so fault-injection tests can pin which
	// failure mode a given fault produces.
	ErrTruncatedSegment = errors.New("store: truncated segment")
	// ErrClosed reports an operation on a closed arena.
	ErrClosed = errors.New("store: arena closed")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

const frameHeaderSize = 8

// AppendFrame appends the CRC-framed encoding of payload to dst and
// returns the extended slice. It is the single encoder of the frame
// format, shared by the file arena and the fuzz round-trip.
func AppendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// DecodeFrame validates and decodes the first frame of b, returning its
// payload (aliasing b) and the remaining bytes. A header that runs past
// the end of b is ErrTruncatedSegment; an implausible length or a
// checksum mismatch is ErrCorruptSegment.
func DecodeFrame(b []byte) (payload, rest []byte, err error) {
	if len(b) < frameHeaderSize {
		return nil, nil, fmt.Errorf("%w: %d bytes left mid-header", ErrTruncatedSegment, len(b))
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	if n > maxFramePayload {
		return nil, nil, fmt.Errorf("%w: implausible frame length %d", ErrCorruptSegment, n)
	}
	want := binary.LittleEndian.Uint32(b[4:8])
	body := b[frameHeaderSize:]
	if uint32(len(body)) < n {
		return nil, nil, fmt.Errorf("%w: %d bytes left of a %d-byte payload", ErrTruncatedSegment, len(body), n)
	}
	payload = body[:n]
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, nil, fmt.Errorf("%w: payload checksum %08x, frame declares %08x", ErrCorruptSegment, got, want)
	}
	return payload, body[n:], nil
}

// ScanFrames walks a whole segment-file image (magic header plus
// frames), invoking fn for each valid payload in order. It stops with
// the first validation error; a nil fn just validates.
func ScanFrames(img []byte, fn func(payload []byte) error) error {
	if len(img) < len(Magic) {
		return fmt.Errorf("%w: %d bytes, shorter than the magic header", ErrTruncatedSegment, len(img))
	}
	if string(img[:len(Magic)]) != Magic {
		return fmt.Errorf("%w: bad magic %q", ErrCorruptSegment, img[:len(Magic)])
	}
	rest := img[len(Magic):]
	for len(rest) > 0 {
		payload, next, err := DecodeFrame(rest)
		if err != nil {
			return err
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return err
			}
		}
		rest = next
	}
	return nil
}

// Arena is an append-only sequence of payload frames with random read
// access by frame id. Append and Load must not be interleaved from
// multiple goroutines without external synchronization; Load alone is
// safe for concurrent readers.
type Arena interface {
	// Append stores payload as the next frame and returns its id
	// (sequential from 0).
	Append(payload []byte) (id int, err error)
	// Load returns frame id's payload, reusing dst's backing array when
	// it has capacity. A frame that fails validation returns a nil
	// payload and an error wrapping ErrCorruptSegment or
	// ErrTruncatedSegment.
	Load(id int, dst []byte) ([]byte, error)
	// Frames returns the number of frames appended.
	Frames() int
	// Close releases the arena's resources.
	Close() error
}

// Mem is the in-memory Arena: frames are copied into process memory.
type Mem struct {
	frames [][]byte
	closed bool
}

// NewMem returns an empty in-memory arena.
func NewMem() *Mem { return &Mem{} }

// Append implements Arena.
func (m *Mem) Append(payload []byte) (int, error) {
	if m.closed {
		return 0, ErrClosed
	}
	m.frames = append(m.frames, append([]byte(nil), payload...))
	return len(m.frames) - 1, nil
}

// Load implements Arena.
func (m *Mem) Load(id int, dst []byte) ([]byte, error) {
	if m.closed {
		return nil, ErrClosed
	}
	if id < 0 || id >= len(m.frames) {
		return nil, fmt.Errorf("store: frame %d out of range (%d frames)", id, len(m.frames))
	}
	return append(dst[:0], m.frames[id]...), nil
}

// Frames implements Arena.
func (m *Mem) Frames() int { return len(m.frames) }

// Close implements Arena.
func (m *Mem) Close() error {
	m.frames, m.closed = nil, true
	return nil
}

// FileArena is the file-backed Arena: frames append to a single segment
// file and load back by positioned read with full validation.
type FileArena struct {
	f    *os.File
	path string
	// offs[i] is the file offset of frame i's header; sizes[i] its
	// declared payload length. The table lives in memory for the arena's
	// lifetime (segment files are never reopened by a later process).
	offs  []int64
	sizes []int32
	end   int64
	buf   []byte // reusable append encoding buffer
}

// CreateFile creates (truncating) a segment file at path and writes the
// magic header.
func CreateFile(path string) (*FileArena, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte(Magic)); err != nil {
		err = errors.Join(err, f.Close())
		return nil, err
	}
	return &FileArena{f: f, path: path, end: int64(len(Magic))}, nil
}

// Path returns the segment file's path.
func (a *FileArena) Path() string { return a.path }

// Append implements Arena.
func (a *FileArena) Append(payload []byte) (int, error) {
	if a.f == nil {
		return 0, ErrClosed
	}
	a.buf = AppendFrame(a.buf[:0], payload)
	if _, err := a.f.WriteAt(a.buf, a.end); err != nil {
		return 0, err
	}
	a.offs = append(a.offs, a.end)
	a.sizes = append(a.sizes, int32(len(payload)))
	a.end += int64(len(a.buf))
	return len(a.offs) - 1, nil
}

// Load implements Arena. The frame is re-validated on every load: the
// header must match the writer's table and the payload its checksum, so
// on-disk corruption surfaces as a named error at the first read that
// touches it.
func (a *FileArena) Load(id int, dst []byte) ([]byte, error) {
	if a.f == nil {
		return nil, ErrClosed
	}
	if id < 0 || id >= len(a.offs) {
		return nil, fmt.Errorf("store: frame %d out of range (%d frames)", id, len(a.offs))
	}
	need := frameHeaderSize + int(a.sizes[id])
	if cap(dst) < need {
		dst = make([]byte, need)
	}
	dst = dst[:need]
	if _, err := a.f.ReadAt(dst, a.offs[id]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: %s frame %d ends past the file", ErrTruncatedSegment, a.path, id)
		}
		return nil, err
	}
	payload, _, err := DecodeFrame(dst)
	if err != nil {
		return nil, fmt.Errorf("%s frame %d: %w", a.path, id, err)
	}
	if int32(len(payload)) != a.sizes[id] {
		return nil, fmt.Errorf("%w: %s frame %d declares %d payload bytes, writer recorded %d",
			ErrCorruptSegment, a.path, id, len(payload), a.sizes[id])
	}
	return payload, nil
}

// Frames implements Arena.
func (a *FileArena) Frames() int { return len(a.offs) }

// Sync flushes the segment file to stable storage.
func (a *FileArena) Sync() error {
	if a.f == nil {
		return ErrClosed
	}
	return a.f.Sync()
}

// Close implements Arena. It does not remove the file; see
// CloseAndRemove.
func (a *FileArena) Close() error {
	if a.f == nil {
		return nil
	}
	err := a.f.Close()
	a.f = nil
	return err
}

// CloseAndRemove closes the arena and deletes its segment file —
// spilled pages are one build's scratch, never a durable artifact.
func (a *FileArena) CloseAndRemove() error {
	err := a.Close()
	if rmErr := os.Remove(a.path); rmErr != nil && !os.IsNotExist(rmErr) {
		err = errors.Join(err, rmErr)
	}
	return err
}
