package text

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestTokenizerBasic(t *testing.T) {
	tr := NewTokenizer()
	got := tr.Terms("John Abram Jr")
	want := []string{"john", "abram", "jr"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestTokenizerPunctuationAndDigits(t *testing.T) {
	tr := NewTokenizer()
	got := tr.Terms("Abram st. 30 NY-85")
	want := []string{"abram", "st", "30", "ny", "85"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestTokenizerEmptyAndSymbols(t *testing.T) {
	tr := NewTokenizer()
	if got := tr.Terms(""); len(got) != 0 {
		t.Errorf("Terms(\"\") = %v, want empty", got)
	}
	if got := tr.Terms("--- !!! ..."); len(got) != 0 {
		t.Errorf("Terms(symbols) = %v, want empty", got)
	}
}

func TestTokenizerMinLength(t *testing.T) {
	tr := &Tokenizer{MinLength: 3}
	got := tr.Terms("a bb ccc dddd")
	want := []string{"ccc", "dddd"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestTokenizerStopWords(t *testing.T) {
	tr := &Tokenizer{MinLength: 1, StopWords: DefaultStopWords()}
	got := tr.Terms("the cat and the hat")
	want := []string{"cat", "hat"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestTokenizerUnicode(t *testing.T) {
	tr := NewTokenizer()
	got := tr.Terms("Modena–Reggio Émilia")
	want := []string{"modena", "reggio", "émilia"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestTokenizerLowercasesAlways(t *testing.T) {
	tr := NewTokenizer()
	f := func(s string) bool {
		for _, tok := range tr.Terms(s) {
			for _, r := range tok {
				if 'A' <= r && r <= 'Z' {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenizerDeterministic(t *testing.T) {
	tr := NewTokenizer()
	f := func(s string) bool {
		return reflect.DeepEqual(tr.Terms(s), tr.Terms(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQGramBasic(t *testing.T) {
	g := NewQGram(3)
	got := g.Terms("abcd")
	want := []string{"abc", "bcd"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestQGramShortValue(t *testing.T) {
	g := NewQGram(4)
	if got := g.Terms("ab"); !reflect.DeepEqual(got, []string{"ab"}) {
		t.Errorf("Terms(short) = %v, want [ab]", got)
	}
	if got := g.Terms(""); got != nil {
		t.Errorf("Terms(\"\") = %v, want nil", got)
	}
}

func TestQGramNormalizes(t *testing.T) {
	g := NewQGram(3)
	a := g.Terms("Ellen  Smith")
	b := g.Terms("ellen-smith!")
	if !reflect.DeepEqual(a, b) {
		t.Errorf("normalization differs: %v vs %v", a, b)
	}
	for _, gram := range a {
		if len([]rune(gram)) != 3 {
			t.Errorf("gram %q length != 3", gram)
		}
	}
}

func TestQGramMinimumQ(t *testing.T) {
	g := NewQGram(0)
	if g.Q != 2 {
		t.Errorf("NewQGram(0).Q = %d, want clamp to 2", g.Q)
	}
}

func TestQGramCount(t *testing.T) {
	g := NewQGram(2)
	f := func(s string) bool {
		norm := normalizeForGrams(s)
		grams := g.Terms(s)
		n := len([]rune(norm))
		switch {
		case n == 0:
			return len(grams) == 0
		case n <= 2:
			return len(grams) == 1
		default:
			return len(grams) == n-1
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenSetDeduplicates(t *testing.T) {
	tr := NewTokenizer()
	got := TokenSet(tr, []string{"Ellen Smith", "smith ellen", "NY"})
	want := []string{"ellen", "smith", "ny"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TokenSet = %v, want %v", got, want)
	}
}

func TestTokenSetUniqueProperty(t *testing.T) {
	tr := NewTokenizer()
	f := func(vals []string) bool {
		set := TokenSet(tr, vals)
		sorted := append([]string(nil), set...)
		sort.Strings(sorted)
		for i := 1; i < len(sorted); i++ {
			if sorted[i] == sorted[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransformNames(t *testing.T) {
	if NewTokenizer().Name() != "token" {
		t.Error("tokenizer name")
	}
	if NewQGram(3).Name() != "qgram" {
		t.Error("qgram name")
	}
}
