package text

// Suffix implements the blocking-key side of Suffix Array blocking
// (de Vries et al., TKDD 2011; cited as [7] by the BLAST paper): every
// token contributes all of its suffixes of length >= MinLength, so
// profiles sharing only a token ending ("möller" / "moeller" -> "ller")
// still co-occur in a block. Combined with Block Purging, which drops
// the huge blocks short suffixes create, this reproduces the classic
// suffix-array blocking behaviour inside the same pipeline.
type Suffix struct {
	// MinLength is the shortest suffix emitted (default 3).
	MinLength int
	// MaxPerToken caps the suffixes emitted per token (longest first;
	// 0 = no cap).
	MaxPerToken int
	tokenizer   Tokenizer
}

// NewSuffix returns a suffix transform with the given minimum length.
func NewSuffix(minLength int) *Suffix {
	if minLength < 2 {
		minLength = 2
	}
	return &Suffix{MinLength: minLength, tokenizer: Tokenizer{MinLength: 1}}
}

// Name implements Transform.
func (s *Suffix) Name() string { return "suffix" }

// Terms implements Transform.
func (s *Suffix) Terms(value string) []string {
	var out []string
	for _, tok := range s.tokenizer.Terms(value) {
		runes := []rune(tok)
		if len(runes) < s.MinLength {
			out = append(out, tok)
			continue
		}
		emitted := 0
		for i := 0; len(runes)-i >= s.MinLength; i++ {
			out = append(out, string(runes[i:]))
			emitted++
			if s.MaxPerToken > 0 && emitted >= s.MaxPerToken {
				break
			}
		}
	}
	return out
}
