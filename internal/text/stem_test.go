package text

import (
	"reflect"
	"testing"
	"testing/quick"
)

// TestStemKnownPairs checks classic Porter reference pairs.
func TestStemKnownPairs(t *testing.T) {
	cases := map[string]string{
		// step 1a
		"caresses": "caress",
		"ponies":   "poni",
		"ties":     "ti",
		"caress":   "caress",
		"cats":     "cat",
		// step 1b
		"feed":      "feed",
		"agreed":    "agre",
		"plastered": "plaster",
		"bled":      "bled",
		"motoring":  "motor",
		"sing":      "sing",
		"conflated": "conflat",
		"troubling": "troubl",
		"sized":     "size",
		"hopping":   "hop",
		"tanned":    "tan",
		"falling":   "fall",
		"hissing":   "hiss",
		"fizzed":    "fizz",
		"failing":   "fail",
		"filing":    "file",
		// step 1c
		"happy": "happi",
		"sky":   "sky",
		// step 2
		"relational":  "relat",
		"conditional": "condit",
		"rational":    "ration",
		"valenci":     "valenc",
		"digitizer":   "digit",
		"operator":    "oper",
		// step 3
		"triplicate": "triplic",
		"formative":  "form",
		"formalize":  "formal",
		"electrical": "electr",
		"hopeful":    "hope",
		"goodness":   "good",
		// step 4
		"revival":     "reviv",
		"allowance":   "allow",
		"inference":   "infer",
		"airliner":    "airlin",
		"adjustable":  "adjust",
		"defensible":  "defens",
		"irritant":    "irrit",
		"replacement": "replac",
		"adoption":    "adopt",
		"communism":   "commun",
		"activate":    "activ",
		"effective":   "effect",
		// step 5
		"probate":  "probat",
		"rate":     "rate",
		"cease":    "ceas",
		"controll": "control",
		"roll":     "roll",
		// blocking-relevant merges
		"retailer":  "retail",
		"retailing": "retail",
		"retail":    "retail",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortWords(t *testing.T) {
	for _, w := range []string{"", "a", "is", "by"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemIdempotentOnStems(t *testing.T) {
	// Stemming a stem should usually be a fixpoint for these examples.
	for _, w := range []string{"retail", "motor", "plaster", "hop", "size"} {
		if got := Stem(Stem(w)); got != Stem(w) {
			t.Errorf("Stem not stable on %q: %q then %q", w, Stem(w), got)
		}
	}
}

func TestStemNeverPanicsOrGrows(t *testing.T) {
	f := func(s string) bool {
		// restrict to plausible lowercase tokens
		tok := ""
		for _, r := range s {
			if r >= 'a' && r <= 'z' {
				tok += string(r)
			}
			if len(tok) > 24 {
				break
			}
		}
		out := Stem(tok)
		return len(out) <= len(tok)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeasure(t *testing.T) {
	cases := map[string]int{
		"tr": 0, "ee": 0, "tree": 0, "y": 0, "by": 0,
		"trouble": 1, "oats": 1, "trees": 1, "ivy": 1,
		"troubles": 2, "private": 2, "oaten": 2,
	}
	for w, want := range cases {
		if got := measure([]byte(w)); got != want {
			t.Errorf("measure(%q) = %d, want %d", w, got, want)
		}
	}
}

func TestPipelineStemming(t *testing.T) {
	p := NewStemmingTokenizer()
	got := p.Terms("The retailers were retailing")
	want := []string{"retail", "were", "retail"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
	if p.Name() != "token+stem" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestPipelineDropsEmptyMapped(t *testing.T) {
	p := &Pipeline{
		Base: NewTokenizer(),
		Mappers: []func(string) string{func(s string) string {
			if s == "drop" {
				return ""
			}
			return s
		}},
	}
	got := p.Terms("keep drop keep")
	if !reflect.DeepEqual(got, []string{"keep", "keep"}) {
		t.Errorf("Terms = %v", got)
	}
	if p.Name() != "token+" {
		t.Errorf("default Name = %q", p.Name())
	}
}

func TestPipelineStemMergesBlockingKeys(t *testing.T) {
	// The blocking motivation: "retailer" (p4) and "retail" (p2, p3) land
	// in one block under the stemming pipeline but not under plain
	// tokenization.
	plain := NewTokenizer()
	stem := NewStemmingTokenizer()
	a := TokenSet(plain, []string{"retailer"})
	b := TokenSet(plain, []string{"retail"})
	if a[0] == b[0] {
		t.Fatal("precondition: plain tokens differ")
	}
	a = TokenSet(stem, []string{"retailer"})
	b = TokenSet(stem, []string{"retail"})
	if a[0] != b[0] {
		t.Errorf("stemmed keys differ: %q vs %q", a[0], b[0])
	}
}
