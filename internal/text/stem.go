package text

import "strings"

// Stem reduces an English word to its stem with the Porter algorithm
// (Porter, 1980). The paper's value transformation function tau is "a
// concatenation of text transformation functions (e.g. tokenization,
// stop-words removal, lemmatization)" — stemming is the classic cheap
// stand-in for lemmatization in blocking pipelines, merging inflected
// forms ("retailer"/"retailing" -> "retail") into one blocking key.
//
// The input must already be lowercase (as produced by Tokenizer); words
// of length <= 2 are returned unchanged.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	w := []byte(word)
	w = step1a(w)
	w = step1b(w)
	w = step1c(w)
	w = step2(w)
	w = step3(w)
	w = step4(w)
	w = step5a(w)
	w = step5b(w)
	return string(w)
}

// isCons reports whether w[i] is a consonant in Porter's sense: not a
// vowel, and 'y' is a consonant only when following a vowel-position.
func isCons(w []byte, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isCons(w, i-1)
	default:
		return true
	}
}

// measure computes m, the number of VC sequences in w[:len].
func measure(w []byte) int {
	n := 0
	i := 0
	// skip initial consonants
	for i < len(w) && isCons(w, i) {
		i++
	}
	for {
		// skip vowels
		for i < len(w) && !isCons(w, i) {
			i++
		}
		if i >= len(w) {
			return n
		}
		// skip consonants
		for i < len(w) && isCons(w, i) {
			i++
		}
		n++
		if i >= len(w) {
			return n
		}
	}
}

// hasVowel reports whether w contains a vowel.
func hasVowel(w []byte) bool {
	for i := range w {
		if !isCons(w, i) {
			return true
		}
	}
	return false
}

// doubleCons reports whether w ends in a doubled consonant.
func doubleCons(w []byte) bool {
	n := len(w)
	return n >= 2 && w[n-1] == w[n-2] && isCons(w, n-1)
}

// cvc reports whether w ends consonant-vowel-consonant where the final
// consonant is not w, x or y.
func cvc(w []byte) bool {
	n := len(w)
	if n < 3 {
		return false
	}
	if !isCons(w, n-3) || isCons(w, n-2) || !isCons(w, n-1) {
		return false
	}
	switch w[n-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// ends reports whether w ends with suffix and returns the stem length.
func ends(w []byte, suffix string) (int, bool) {
	if len(w) < len(suffix) {
		return 0, false
	}
	k := len(w) - len(suffix)
	if string(w[k:]) != suffix {
		return 0, false
	}
	return k, true
}

// replace swaps suffix for repl when the stem measure condition holds.
func replace(w []byte, suffix, repl string, minM int) ([]byte, bool) {
	k, ok := ends(w, suffix)
	if !ok {
		return w, false
	}
	if measure(w[:k]) <= minM {
		return w, true // matched but condition failed: stop trying others
	}
	return append(w[:k], repl...), true
}

func step1a(w []byte) []byte {
	if k, ok := ends(w, "sses"); ok {
		return w[:k+2]
	}
	if k, ok := ends(w, "ies"); ok {
		return append(w[:k], 'i')
	}
	if _, ok := ends(w, "ss"); ok {
		return w
	}
	if k, ok := ends(w, "s"); ok && k > 0 {
		return w[:k]
	}
	return w
}

func step1b(w []byte) []byte {
	if k, ok := ends(w, "eed"); ok {
		if measure(w[:k]) > 0 {
			return w[:k+2]
		}
		return w
	}
	var stem []byte
	if k, ok := ends(w, "ed"); ok && hasVowel(w[:k]) {
		stem = w[:k]
	} else if k, ok := ends(w, "ing"); ok && hasVowel(w[:k]) {
		stem = w[:k]
	} else {
		return w
	}
	// fix-ups after removing ed/ing
	if _, ok := ends(stem, "at"); ok {
		return append(stem, 'e')
	}
	if _, ok := ends(stem, "bl"); ok {
		return append(stem, 'e')
	}
	if _, ok := ends(stem, "iz"); ok {
		return append(stem, 'e')
	}
	if doubleCons(stem) {
		last := stem[len(stem)-1]
		if last != 'l' && last != 's' && last != 'z' {
			return stem[:len(stem)-1]
		}
		return stem
	}
	if measure(stem) == 1 && cvc(stem) {
		return append(stem, 'e')
	}
	return stem
}

func step1c(w []byte) []byte {
	if k, ok := ends(w, "y"); ok && hasVowel(w[:k]) {
		return append(w[:k], 'i')
	}
	return w
}

var step2Rules = []struct{ from, to string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

func step2(w []byte) []byte {
	for _, r := range step2Rules {
		if out, matched := replace(w, r.from, r.to, 0); matched {
			return out
		}
	}
	return w
}

var step3Rules = []struct{ from, to string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(w []byte) []byte {
	for _, r := range step3Rules {
		if out, matched := replace(w, r.from, r.to, 0); matched {
			return out
		}
	}
	return w
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(w []byte) []byte {
	// "ion" requires a preceding s or t.
	if k, ok := ends(w, "ion"); ok && k > 0 && (w[k-1] == 's' || w[k-1] == 't') {
		if measure(w[:k]) > 1 {
			return w[:k]
		}
		return w
	}
	for _, s := range step4Suffixes {
		if k, ok := ends(w, s); ok {
			if measure(w[:k]) > 1 {
				return w[:k]
			}
			return w
		}
	}
	return w
}

func step5a(w []byte) []byte {
	if k, ok := ends(w, "e"); ok {
		m := measure(w[:k])
		if m > 1 || (m == 1 && !cvc(w[:k])) {
			return w[:k]
		}
	}
	return w
}

func step5b(w []byte) []byte {
	if measure(w) > 1 && doubleCons(w) && w[len(w)-1] == 'l' {
		return w[:len(w)-1]
	}
	return w
}

// Pipeline chains a base transform with per-term mappers (e.g. stemming)
// and an optional stop-word filter applied after mapping. It is the
// "concatenation of text transformation functions" of Section 2.1.
type Pipeline struct {
	// Base produces the initial terms (required).
	Base Transform
	// Mappers rewrite each term in order; empty results drop the term.
	Mappers []func(string) string
	// StopWords drops exact matches after mapping.
	StopWords map[string]bool
	// Label names the pipeline (defaults to the base name + "+").
	Label string
}

// NewStemmingTokenizer returns the full tau of the paper: tokenization,
// stop-word removal, stemming.
func NewStemmingTokenizer() *Pipeline {
	return &Pipeline{
		Base:      NewTokenizer(),
		Mappers:   []func(string) string{Stem},
		StopWords: DefaultStopWords(),
		Label:     "token+stem",
	}
}

// Name implements Transform.
func (p *Pipeline) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return p.Base.Name() + "+"
}

// Terms implements Transform.
func (p *Pipeline) Terms(value string) []string {
	terms := p.Base.Terms(value)
	out := terms[:0]
	for _, t := range terms {
		for _, m := range p.Mappers {
			t = m(t)
			if t == "" {
				break
			}
		}
		if t == "" {
			continue
		}
		if p.StopWords != nil && p.StopWords[strings.ToLower(t)] {
			continue
		}
		out = append(out, t)
	}
	return out
}
