// Package text implements the value transformation functions of the paper
// (Section 2.1): tokenization, normalization, q-gram extraction and
// optional stop-word removal. A transformation function tau maps an
// attribute value to the set of terms used as blocking keys and as the
// elements of attribute profiles.
package text

import (
	"strings"
	"unicode"
)

// Transform maps an attribute value to its derived terms. Implementations
// must be deterministic and safe for concurrent use.
type Transform interface {
	// Terms returns the terms derived from value. The result may contain
	// duplicates; callers that need sets must deduplicate.
	Terms(value string) []string
	// Name identifies the transformation (used in reports).
	Name() string
}

// Tokenizer is the default value transformation of BLAST: it lowercases
// the value and splits it on any non-alphanumeric rune. Tokens shorter
// than MinLength are dropped.
//
// The paper applies plain tokenization with no stop-word removal; highly
// frequent tokens are instead handled downstream by Block Purging.
type Tokenizer struct {
	// MinLength drops tokens with fewer runes. Zero keeps everything.
	MinLength int
	// StopWords, when non-nil, drops exact (lowercased) matches.
	StopWords map[string]bool
}

// NewTokenizer returns the tokenizer used throughout the reproduction:
// lowercase, split on non-alphanumerics, keep tokens of length >= 1.
func NewTokenizer() *Tokenizer {
	return &Tokenizer{MinLength: 1}
}

// Name implements Transform.
func (t *Tokenizer) Name() string { return "token" }

// Terms implements Transform.
func (t *Tokenizer) Terms(value string) []string {
	return t.appendTokens(nil, value)
}

// appendTokens tokenizes value into dst and returns the extended slice.
func (t *Tokenizer) appendTokens(dst []string, value string) []string {
	start := -1
	flush := func(end int) {
		if start < 0 {
			return
		}
		tok := strings.ToLower(value[start:end])
		start = -1
		if t.MinLength > 0 && len([]rune(tok)) < t.MinLength {
			return
		}
		if t.StopWords != nil && t.StopWords[tok] {
			return
		}
		dst = append(dst, tok)
	}
	for i, r := range value {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		flush(i)
	}
	flush(len(value))
	return dst
}

// QGram extracts overlapping character q-grams from the lowercased,
// whitespace-normalized value. It implements the q-grams alternative
// mentioned in Section 3.2 of the paper.
type QGram struct {
	// Q is the gram size; values shorter than Q yield the whole value.
	Q int
}

// NewQGram returns a q-gram transform with the given size (minimum 2).
func NewQGram(q int) *QGram {
	if q < 2 {
		q = 2
	}
	return &QGram{Q: q}
}

// Name implements Transform.
func (g *QGram) Name() string { return "qgram" }

// Terms implements Transform.
func (g *QGram) Terms(value string) []string {
	norm := normalizeForGrams(value)
	if norm == "" {
		return nil
	}
	runes := []rune(norm)
	if len(runes) <= g.Q {
		return []string{string(runes)}
	}
	grams := make([]string, 0, len(runes)-g.Q+1)
	for i := 0; i+g.Q <= len(runes); i++ {
		grams = append(grams, string(runes[i:i+g.Q]))
	}
	return grams
}

// normalizeForGrams lowercases and squeezes non-alphanumerics to single
// spaces, trimming the ends.
func normalizeForGrams(value string) string {
	var b strings.Builder
	b.Grow(len(value))
	space := false
	for _, r := range value {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			if space && b.Len() > 0 {
				b.WriteByte(' ')
			}
			space = false
			b.WriteRune(unicode.ToLower(r))
		default:
			space = true
		}
	}
	return b.String()
}

// TokenSet returns the deduplicated tokens of all values, preserving first
// appearance order. It is the set-building helper used by attribute
// profiles and blocking.
func TokenSet(tr Transform, values []string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, v := range values {
		for _, tok := range tr.Terms(v) {
			if !seen[tok] {
				seen[tok] = true
				out = append(out, tok)
			}
		}
	}
	return out
}

// DefaultStopWords is a small English stop-word list for users who opt in
// to stop-word removal. The paper's experiments do not use it.
func DefaultStopWords() map[string]bool {
	words := []string{
		"a", "an", "and", "are", "as", "at", "be", "but", "by", "for",
		"if", "in", "into", "is", "it", "no", "not", "of", "on", "or",
		"such", "that", "the", "their", "then", "there", "these", "they",
		"this", "to", "was", "will", "with",
	}
	m := make(map[string]bool, len(words))
	for _, w := range words {
		m[w] = true
	}
	return m
}
