package shard

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"blast/internal/model"
)

// fakeWriter is a model-backed Writer: it records every applied profile
// and exports snapshots whose NumProfiles reflects the applied count,
// with a tiny one-node graph so the lookup paths have something to walk.
type fakeWriter struct {
	mu        sync.Mutex
	applied   []model.Profile
	exports   int
	overlay   int
	load      float64
	applyErr  error
	exportErr error
	slow      time.Duration
}

func (f *fakeWriter) InsertAll(ctx context.Context, ps []model.Profile) ([]int, error) {
	if f.slow > 0 {
		time.Sleep(f.slow)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.applyErr != nil {
		return nil, f.applyErr
	}
	ids := make([]int, len(ps))
	for i := range ps {
		ids[i] = len(f.applied)
		f.applied = append(f.applied, ps[i])
	}
	return ids, nil
}

func (f *fakeWriter) Export(ctx context.Context) (*Snapshot, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.exportErr != nil {
		return nil, f.exportErr
	}
	f.exports++
	return &Snapshot{
		NumProfiles: len(f.applied),
		Offsets:     []int64{0, 0},
	}, nil
}

func (f *fakeWriter) OverlayStats() (int, float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.overlay, f.load
}

func (f *fakeWriter) appliedCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.applied)
}

func profiles(n int) []model.Profile {
	out := make([]model.Profile, n)
	for i := range out {
		out[i] = model.Profile{ID: fmt.Sprintf("p%d", i)}
	}
	return out
}

func TestShardAppliesInOrderAndBarrierPublishes(t *testing.T) {
	w := &fakeWriter{}
	s := New(0, w, &Snapshot{}, Options{SwapOps: 0}) // no automatic swaps
	defer s.Close()
	for i := 0; i < 5; i++ {
		if err := s.Enqueue(profiles(3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Barrier(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := w.appliedCount(); got != 15 {
		t.Fatalf("applied = %d, want 15", got)
	}
	snap := s.Snapshot()
	if snap.NumProfiles != 15 || snap.Epoch != 1 {
		t.Fatalf("snapshot = {profiles %d, epoch %d}, want {15, 1}", snap.NumProfiles, snap.Epoch)
	}
	st := s.Stats()
	if st.Applied != 15 || st.Swaps != 1 || st.Published != 15 {
		t.Fatalf("stats = %+v", st)
	}
	// An idle barrier re-publishes nothing.
	if err := s.Barrier(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := s.Snapshot().Epoch; got != 1 {
		t.Fatalf("idle barrier bumped epoch to %d", got)
	}
}

func TestShardSwapOpsTrigger(t *testing.T) {
	w := &fakeWriter{}
	s := New(0, w, &Snapshot{}, Options{SwapOps: 4})
	defer s.Close()
	for i := 0; i < 10; i++ {
		if err := s.Enqueue(profiles(1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Barrier(context.Background()); err != nil {
		t.Fatal(err)
	}
	// 10 single-profile batches with SwapOps 4: swaps after the 4th and
	// 8th, plus the barrier publishing the remainder.
	st := s.Stats()
	if st.Swaps < 3 {
		t.Fatalf("swaps = %d, want >= 3", st.Swaps)
	}
	if s.Snapshot().NumProfiles != 10 {
		t.Fatalf("published %d profiles, want 10", s.Snapshot().NumProfiles)
	}
}

func TestShardOverlayTrigger(t *testing.T) {
	w := &fakeWriter{overlay: 100, load: 0.9}
	s := New(0, w, &Snapshot{}, Options{MaxOverlayFraction: 0.5, MinOverlayEntries: 10})
	defer s.Close()
	if err := s.Enqueue(profiles(1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && s.Snapshot().Epoch == 0 {
		time.Sleep(time.Millisecond)
	}
	if s.Snapshot().Epoch == 0 {
		t.Fatal("overlay trigger never published")
	}
}

func TestShardStickyApplyError(t *testing.T) {
	boom := errors.New("boom")
	w := &fakeWriter{applyErr: boom}
	s := New(0, w, &Snapshot{}, Options{})
	defer s.Close()
	if err := s.Enqueue(profiles(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Barrier(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("barrier err = %v, want %v", err, boom)
	}
	// Enqueue still accepts (broadcast atomicity: a failed shard must
	// not split a multi-shard broadcast) but the batch is dropped and
	// the failure stays observable.
	if err := s.Enqueue(profiles(1)); err != nil {
		t.Fatalf("enqueue after failure = %v, want accepted-and-dropped", err)
	}
	if err := s.Barrier(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("barrier after failed enqueue = %v, want sticky error", err)
	}
	if got := s.Stats().Applied; got != 1 {
		t.Fatalf("failed shard applied %d, want 1 (drops after failure)", got)
	}
	if err := s.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err() = %v", err)
	}
}

func TestShardExportError(t *testing.T) {
	boom := errors.New("export boom")
	w := &fakeWriter{exportErr: boom}
	s := New(0, w, &Snapshot{}, Options{})
	defer s.Close()
	if err := s.Enqueue(profiles(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Barrier(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("barrier err = %v, want %v", err, boom)
	}
}

func TestShardCloseDrainsAndStops(t *testing.T) {
	base := runtime.NumGoroutine()
	w := &fakeWriter{slow: time.Millisecond}
	s := New(0, w, &Snapshot{}, Options{})
	for i := 0; i < 8; i++ {
		if err := s.Enqueue(profiles(2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := w.appliedCount(); got != 16 {
		t.Fatalf("close did not drain: applied %d, want 16", got)
	}
	if err := s.Enqueue(profiles(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after close = %v, want ErrClosed", err)
	}
	if err := s.Barrier(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("barrier after close = %v, want ErrClosed", err)
	}
	// Close is idempotent and the worker is gone.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > base {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Errorf("goroutines leaked after Close: %d > %d", n, base)
	}
}

// TestShardBatchesAndPersistHook pins the durability contract of the
// worker: published snapshots carry the batch cursor, the Persist hook
// sees every publication, a closing drain publishes the tail, and a
// persist failure is sticky.
func TestShardBatchesAndPersistHook(t *testing.T) {
	var persisted []int64
	w := &fakeWriter{}
	s := New(0, w, &Snapshot{}, Options{SwapOps: 2, Persist: func(sn *Snapshot) error {
		persisted = append(persisted, sn.Batches)
		return nil
	}})
	for i := 0; i < 5; i++ {
		if err := s.Enqueue(profiles(1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Barrier(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Batches != 5 {
		t.Fatalf("published Batches = %d, want 5", snap.Batches)
	}
	if st := s.Stats(); st.Batches != 5 {
		t.Fatalf("stats Batches = %d, want 5", st.Batches)
	}
	// SwapOps 2 over 5 single-profile batches: publications at 2, 4 and
	// the barrier's 5 — the hook observed each, in order.
	if len(persisted) != 3 || persisted[0] != 2 || persisted[1] != 4 || persisted[2] != 5 {
		t.Fatalf("persisted cursor sequence = %v", persisted)
	}
	// Close with unpublished tail: the drain publishes (and persists).
	if err := s.Enqueue(profiles(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := s.Snapshot().Batches; got != 6 {
		t.Fatalf("post-Close Batches = %d, want 6 (close drain must publish)", got)
	}
	if persisted[len(persisted)-1] != 6 {
		t.Fatalf("close-drain publication not persisted: %v", persisted)
	}
}

func TestShardPersistErrorSticky(t *testing.T) {
	boom := errors.New("disk full")
	w := &fakeWriter{}
	s := New(0, w, &Snapshot{}, Options{Persist: func(*Snapshot) error { return boom }})
	defer s.Close()
	if err := s.Enqueue(profiles(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Barrier(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("barrier err = %v, want %v", err, boom)
	}
	if err := s.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err() = %v, want sticky persist error", err)
	}
}

func TestShardBarrierContext(t *testing.T) {
	w := &fakeWriter{slow: 50 * time.Millisecond}
	s := New(0, w, &Snapshot{}, Options{})
	defer s.Close()
	if err := s.Enqueue(profiles(4)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := s.Barrier(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("barrier err = %v, want deadline exceeded", err)
	}
	// The barrier still completes; the shard stays healthy.
	if err := s.Barrier(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := w.appliedCount(); got != 4 {
		t.Fatalf("applied = %d, want 4", got)
	}
}

func TestOwnerStableAndInRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 16} {
		counts := make([]int, n)
		for id := int32(0); id < 4096; id++ {
			o := Owner(id, n)
			if o < 0 || o >= n {
				t.Fatalf("Owner(%d, %d) = %d out of range", id, n, o)
			}
			if o != Owner(id, n) {
				t.Fatalf("Owner(%d, %d) unstable", id, n)
			}
			counts[o]++
		}
		// The mix should spread dense ids roughly uniformly: no shard may
		// be starved below half its fair share.
		for i, c := range counts {
			if c < 4096/n/2 {
				t.Errorf("Owner(:, %d): shard %d got %d of 4096", n, i, c)
			}
		}
	}
	if Owner(123, 0) != 0 || Owner(123, 1) != 0 {
		t.Error("degenerate shard counts must map to 0")
	}
}
