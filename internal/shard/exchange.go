package shard

// The aggregate exchange of partitioned sharding. Partitioned shard
// writers resolve graph-global pruning inputs (degree vectors, weight
// sums, histogram cuts, threshold vectors, top-k mark lists) by
// all-gathering compact per-shard frames: every shard contributes its
// frame for a round and blocks until all n frames of that round are
// present, then reads them back in slot (shard) order — the
// deterministic merge order the refold reductions require.
//
// Rounds are matched by per-slot call index, not by any global counter:
// slot s's r-th Gather call joins round r. Every shard's export runs
// the identical round sequence (same pruning scheme, same globally
// merged decisions at every branch point), so call indexes align by
// construction even though the shard workers run concurrently and may
// sit many rounds apart at any instant — consecutive exports may even
// overlap, because a shard that finished round k of export e cannot
// reach round 0 of export e+1 before every peer consumed round k.
//
// Failure: a shard that dies mid-export would leave its peers waiting
// forever, so the shard worker's failure hook poisons the exchange —
// every current and future Gather returns the poison error, and the
// peers' exports fail in turn (the partitioned server has no healthy
// subset: each shard's rows exist nowhere else).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"blast/internal/model"
)

// Exchange is the all-gather rendezvous of one partitioned server's
// shard set. Safe for concurrent use by its n participants.
type Exchange struct {
	n int

	mu   sync.Mutex
	cond *sync.Cond
	err  error // poison; sticky

	// rounds[i] is round base+i; calls[s] is slot s's next round.
	rounds []*exchangeRound
	base   uint64
	calls  []uint64
}

// exchangeRound collects the frames of one round.
type exchangeRound struct {
	frames   [][]byte
	filled   int
	consumed int
}

// NewExchange creates an exchange for n participating shards.
func NewExchange(n int) *Exchange {
	e := &Exchange{n: n, calls: make([]uint64, n)}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// Gather contributes slot's frame to the slot's next round, blocks
// until every slot has contributed to that round, and returns all n
// frames in slot order. The returned slice and the peer frames are
// shared by every participant of the round and must not be mutated.
// Returns the poison error (current and queued waiters alike) once
// Poison has been called.
func (e *Exchange) Gather(slot int, frame []byte) ([][]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return nil, e.err
	}
	r := e.calls[slot]
	e.calls[slot]++
	for int(r-e.base) >= len(e.rounds) {
		e.rounds = append(e.rounds, &exchangeRound{frames: make([][]byte, e.n)})
	}
	rd := e.rounds[r-e.base]
	rd.frames[slot] = frame
	rd.filled++
	if rd.filled == e.n {
		e.cond.Broadcast()
	}
	for rd.filled < e.n && e.err == nil {
		e.cond.Wait()
	}
	if e.err != nil {
		return nil, e.err
	}
	rd.consumed++
	// Retire fully consumed rounds off the front so a long-lived
	// exchange holds at most the rounds still in flight.
	for len(e.rounds) > 0 && e.rounds[0].consumed == e.n {
		e.rounds[0] = nil
		e.rounds = e.rounds[1:]
		e.base++
	}
	return rd.frames, nil
}

// Poison fails the exchange permanently: every blocked and future
// Gather returns err. The first poison wins; later calls are no-ops.
func (e *Exchange) Poison(err error) {
	if err == nil {
		err = errors.New("shard: exchange poisoned")
	}
	e.mu.Lock()
	if e.err == nil {
		e.err = err
		e.cond.Broadcast()
	}
	e.mu.Unlock()
}

// Err returns the poison error, if any.
func (e *Exchange) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// ---- frame codec ----
//
// Exchange frames are typed sections with fixed-width little-endian
// payloads behind uvarint length prefixes. Fixed width (never varint)
// for the numeric payloads keeps encoding bit-exact for float64 — the
// refold reductions consume the identical bits the producer held — and
// position-independent, so a reader steps sections in the exact order
// the writer appended them. The codec is deliberately minimal: frames
// live only for one in-process round, but keeping them as plain bytes
// (rather than shared Go slices) pins down exactly what crosses the
// shard boundary and keeps the format portable to a networked exchange.

// FrameWriter appends typed sections onto one exchange frame.
type FrameWriter struct {
	buf []byte
}

// Bytes returns the encoded frame.
func (w *FrameWriter) Bytes() []byte { return w.buf }

// Int32s appends a []int32 section.
func (w *FrameWriter) Int32s(v []int32) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(v)))
	for _, x := range v {
		w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(x))
	}
}

// Int64s appends a []int64 section.
func (w *FrameWriter) Int64s(v []int64) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(v)))
	for _, x := range v {
		w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(x))
	}
}

// Uint64s appends a []uint64 section.
func (w *FrameWriter) Uint64s(v []uint64) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(v)))
	for _, x := range v {
		w.buf = binary.LittleEndian.AppendUint64(w.buf, x)
	}
}

// Float64s appends a []float64 section, bit-exact.
func (w *FrameWriter) Float64s(v []float64) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(v)))
	for _, x := range v {
		w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(x))
	}
}

// Pairs appends a []model.IDPair section (two int32 per pair).
func (w *FrameWriter) Pairs(v []model.IDPair) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(v)))
	for _, p := range v {
		w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(p.U))
		w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(p.V))
	}
}

// FrameReader steps through the sections of one frame, in writer
// order, with sticky error handling: after the first malformed section
// every further read returns empty and Err reports the failure. A
// malformed frame is an invariant violation between shards of one
// process, so callers fail the whole export on Err.
type FrameReader struct {
	data []byte
	err  error
}

// NewFrameReader wraps an encoded frame.
func NewFrameReader(data []byte) *FrameReader { return &FrameReader{data: data} }

// Err returns the first decode failure, if any.
func (r *FrameReader) Err() error { return r.err }

// count reads a section length, bounds-checked at width bytes/element.
func (r *FrameReader) count(width int) int {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data)
	if n <= 0 {
		r.err = errors.New("shard: truncated exchange frame")
		return 0
	}
	r.data = r.data[n:]
	if v > uint64(len(r.data)/width) {
		r.err = fmt.Errorf("shard: exchange section of %d elements in %d bytes", v, len(r.data))
		return 0
	}
	return int(v)
}

// Int32s reads a []int32 section.
func (r *FrameReader) Int32s() []int32 {
	n := r.count(4)
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(r.data))
		r.data = r.data[4:]
	}
	return out
}

// Int64s reads a []int64 section.
func (r *FrameReader) Int64s() []int64 {
	n := r.count(8)
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(r.data))
		r.data = r.data[8:]
	}
	return out
}

// Uint64s reads a []uint64 section.
func (r *FrameReader) Uint64s() []uint64 {
	n := r.count(8)
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(r.data)
		r.data = r.data[8:]
	}
	return out
}

// Float64s reads a []float64 section, bit-exact.
func (r *FrameReader) Float64s() []float64 {
	n := r.count(8)
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.data))
		r.data = r.data[8:]
	}
	return out
}

// Pairs reads a []model.IDPair section.
func (r *FrameReader) Pairs() []model.IDPair {
	n := r.count(8)
	out := make([]model.IDPair, n)
	for i := range out {
		out[i].U = int32(binary.LittleEndian.Uint32(r.data))
		out[i].V = int32(binary.LittleEndian.Uint32(r.data[4:]))
		r.data = r.data[8:]
	}
	return out
}
