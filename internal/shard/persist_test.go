package shard

import (
	"errors"
	"os"
	"path/filepath"
	"slices"
	"testing"
)

func sampleSnapshot(theta bool) *Snapshot {
	s := &Snapshot{
		Epoch:         7,
		Batches:       3,
		NumProfiles:   4,
		NumEdges:      3,
		RetainedPairs: 2,
		Offsets:       []int64{0, 2, 4, 5, 6},
		Neighbors:     []int32{1, 2, 0, 3, 0, 1},
		Weights:       []float64{1.5, 0.25, 1.5, 2.75, 0.25, 2.75},
		Retained:      []bool{true, false, true, true, false, true},
	}
	if theta {
		s.Theta = []float64{0.75, 1.375, 0.125, 1.375}
	}
	return s
}

func equalSnapshots(a, b *Snapshot) bool {
	return a.Epoch == b.Epoch && a.Batches == b.Batches &&
		a.NumProfiles == b.NumProfiles && a.NumEdges == b.NumEdges &&
		a.RetainedPairs == b.RetainedPairs &&
		slices.Equal(a.Offsets, b.Offsets) &&
		slices.Equal(a.Neighbors, b.Neighbors) &&
		slices.Equal(a.Weights, b.Weights) &&
		slices.Equal(a.Retained, b.Retained) &&
		slices.Equal(a.Theta, b.Theta) &&
		(a.Theta == nil) == (b.Theta == nil)
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	for _, theta := range []bool{true, false} {
		want := sampleSnapshot(theta)
		got, err := DecodeSnapshot(EncodeSnapshot(want))
		if err != nil {
			t.Fatalf("theta=%v: %v", theta, err)
		}
		if !equalSnapshots(want, got) {
			t.Fatalf("theta=%v: round trip mismatch:\n%+v\n%+v", theta, want, got)
		}
	}
	// Empty snapshot (a served empty dataset).
	empty := &Snapshot{NumProfiles: 0, Offsets: []int64{0}}
	got, err := DecodeSnapshot(EncodeSnapshot(empty))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumProfiles != 0 || len(got.Neighbors) != 0 {
		t.Fatalf("empty round trip: %+v", got)
	}
}

// TestSnapshotCodecFlipEveryByte: any single corrupted byte must be
// rejected (the trailing CRC-32C covers the whole blob).
func TestSnapshotCodecFlipEveryByte(t *testing.T) {
	blob := EncodeSnapshot(sampleSnapshot(true))
	for i := range blob {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x10
		if _, err := DecodeSnapshot(mut); err == nil {
			t.Fatalf("flip at byte %d accepted", i)
		}
	}
	for cut := 0; cut < len(blob); cut++ {
		if _, err := DecodeSnapshot(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestSnapshotValidationFailsClosed(t *testing.T) {
	cases := map[string]func(*Snapshot){
		"neighbor out of range": func(s *Snapshot) { s.Neighbors[0] = 99 },
		"offset bounds":         func(s *Snapshot) { s.Offsets[4] = 5 },
		"edge count":            func(s *Snapshot) { s.NumEdges = 2 },
		"retained count":        func(s *Snapshot) { s.RetainedPairs = 3 },
		"theta length":          func(s *Snapshot) { s.Theta = s.Theta[:2] },
	}
	for name, mutate := range cases {
		s := sampleSnapshot(true)
		mutate(s)
		// Encode accepts anything; the decoder must reject the structure
		// even though the checksum is valid.
		if _, err := DecodeSnapshot(EncodeSnapshot(s)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "epoch-0000000000000007.snap")
	want := sampleSnapshot(true)
	if err := WriteSnapshotFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !equalSnapshots(want, got) {
		t.Fatal("file round trip mismatch")
	}
	// No temporary residue.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d directory entries after write", len(entries))
	}
	// A corrupted file is an error, not a partial snapshot.
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshotFile(path); err == nil {
		t.Fatal("corrupted snapshot file accepted")
	}
	if _, err := ReadSnapshotFile(filepath.Join(dir, "absent.snap")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("absent file: %v", err)
	}
}

// FuzzSnapshotDecode: arbitrary bytes must decode to a valid snapshot
// or fail, never panic; whatever decodes must re-encode canonically.
func FuzzSnapshotDecode(f *testing.F) {
	f.Add(EncodeSnapshot(sampleSnapshot(true)))
	f.Add(EncodeSnapshot(sampleSnapshot(false)))
	f.Add(EncodeSnapshot(&Snapshot{NumProfiles: 0, Offsets: []int64{0}}))
	f.Add([]byte("BLSNAP01garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		if err := validateSnapshot(s); err != nil {
			t.Fatalf("decoded snapshot fails validation: %v", err)
		}
		again, err := DecodeSnapshot(EncodeSnapshot(s))
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !equalSnapshots(s, again) {
			t.Fatal("re-encode round trip mismatch")
		}
	})
}
