// Package shard is the machinery of sharded snapshot-swap Index serving:
// immutable epoch-tagged read snapshots, single-writer shard workers that
// absorb insert batches and publish fresh snapshots on a compaction
// policy, hash-based read ownership, and the ordered merge of per-shard
// candidate-pair streams.
//
// The package is deliberately ignorant of BLAST itself. The writable
// side of a shard is any Writer (blast.Index in production, a fake in
// tests); a Snapshot is just the flat per-profile serving arrays a
// compaction yields. The blast.Server composes shards into the public
// serving API.
//
// Concurrency model: one worker goroutine per shard owns all mutation of
// its Writer; readers only ever touch the shard's current Snapshot,
// obtained through an atomic pointer. A snapshot is immutable from the
// moment it is published, so readers never block on writers and writers
// never wait for readers — a swap simply retires the old snapshot to the
// garbage collector once the last reader drops it.
package shard

import (
	"context"
	"slices"

	"blast/internal/model"
)

// Candidate is one candidate comparison served by a snapshot (and by
// blast.Index / blast.Server, which alias this type): a co-candidate
// profile and the edge weight that retained it.
type Candidate struct {
	// ID is the global profile id of the co-candidate.
	ID int32
	// Weight is the edge weight under the index's weighting scheme.
	Weight float64
}

// CompareCandidates is THE serving order of candidate lists: descending
// weight, ties by ascending id. Every surface that emits candidates
// (snapshot lookups, blast.Index, blast.Server) sorts with this one
// comparator so their outputs stay byte-identical.
func CompareCandidates(a, b Candidate) int {
	switch {
	case a.Weight > b.Weight:
		return -1
	case a.Weight < b.Weight:
		return 1
	case a.ID < b.ID:
		return -1
	case a.ID > b.ID:
		return 1
	default:
		return 0
	}
}

// Snapshot is an immutable serving view of a weighted, pruned blocking
// graph: the flat CSR adjacency with per-entry weights and retention
// marks, plus the per-node pruning thresholds. The structural arrays
// (Offsets, Neighbors) may be shared with the live index that exported
// the snapshot — they are never mutated in place after a compaction —
// while the value arrays are private copies. Everything here is
// read-only after publication; no method mutates the snapshot.
type Snapshot struct {
	// Epoch tags the publication: the initial snapshot of a shard is
	// epoch 0 and every swap increments it. Within one shard, a higher
	// epoch observes a superset (longer prefix) of the insert sequence.
	Epoch uint64
	// Batches is the snapshot's position in the globally sequenced
	// insert stream: the number of admitted insert batches it covers.
	// Every shard of a server applies the same batch sequence in the
	// same order, so two snapshots from different shards with equal
	// Batches were derived from identical replica states — the
	// cross-shard consistency token of multi-shard reads — and on disk
	// it is the WAL replay cursor: recovery restores the snapshot and
	// replays exactly the records past this count.
	Batches int64
	// NumProfiles is the number of profiles the snapshot covers.
	NumProfiles int
	// NumEdges is the number of distinct comparisons of the blocking
	// graph (before pruning).
	NumEdges int
	// RetainedPairs is the number of comparisons the pruning retained.
	RetainedPairs int
	// Offsets and Neighbors are the CSR adjacency: node i's run occupies
	// positions [Offsets[i], Offsets[i+1]) of the entry arrays.
	Offsets   []int64
	Neighbors []int32
	// Weights holds the final edge weight of every entry.
	Weights []float64
	// Retained holds the pruning decision of every entry.
	Retained []bool
	// Theta holds the node-local pruning threshold theta_i per profile;
	// nil for pruning schemes without per-node thresholds.
	Theta []float64
	// PartShards is the shard count of a partitioned snapshot: one whose
	// adjacency runs are populated only for the rows Owner hashes onto
	// PartShard, every other row being an empty run. 0 (the zero value)
	// marks a full replica — every row resident. NumProfiles, NumEdges
	// and RetainedPairs stay GLOBAL under partitioning: a partitioned
	// snapshot answers point reads for its owned rows with whole-graph
	// semantics, its owners having resolved the cross-shard aggregates at
	// export time.
	PartShards int
	// PartShard is this snapshot's shard index in [0, PartShards); 0 for
	// a full replica.
	PartShard int
}

// Owns reports whether a profile's row is resident in this snapshot:
// always, for a full replica; by ownership hash, for a partitioned one.
func (s *Snapshot) Owns(profile int32) bool {
	return s.PartShards == 0 || Owner(profile, s.PartShards) == s.PartShard
}

// OwnedRows counts the resident rows: NumProfiles for a full replica,
// the hash-owned subset for a partitioned snapshot.
func (s *Snapshot) OwnedRows() int {
	if s.PartShards == 0 {
		return s.NumProfiles
	}
	n := 0
	for u := 0; u < s.NumProfiles; u++ {
		if Owner(int32(u), s.PartShards) == s.PartShard {
			n++
		}
	}
	return n
}

// ResidentBytes approximates the heap footprint of the snapshot's
// arrays — the quantity the partitioned topology divides across shards
// (Offsets and Theta stay full-length; the entry arrays shrink with
// ownership).
func (s *Snapshot) ResidentBytes() int64 {
	return int64(len(s.Offsets))*8 + int64(len(s.Neighbors))*4 +
		int64(len(s.Weights))*8 + int64(len(s.Retained)) + int64(len(s.Theta))*8
}

// SliceOwned carves shard part's partitioned snapshot out of a full
// replica snapshot: full-length Offsets with runs copied only for the
// owned rows, global header counters carried over, Theta shared (it is
// full-length and immutable under both topologies). It is how a
// partitioned server derives its shards' initial snapshots from the
// master build — each slice is byte-identical, row for owned row, to
// what the shard's own exchange-driven export would produce over the
// same collection.
func SliceOwned(s *Snapshot, part, nparts int) *Snapshot {
	offsets := make([]int64, s.NumProfiles+1)
	total := int64(0)
	for u := 0; u < s.NumProfiles; u++ {
		if Owner(int32(u), nparts) == part {
			total += s.Offsets[u+1] - s.Offsets[u]
		}
		offsets[u+1] = total
	}
	neighbors := make([]int32, 0, total)
	weights := make([]float64, 0, total)
	retained := make([]bool, 0, total)
	for u := 0; u < s.NumProfiles; u++ {
		if Owner(int32(u), nparts) != part {
			continue
		}
		lo, hi := s.Offsets[u], s.Offsets[u+1]
		neighbors = append(neighbors, s.Neighbors[lo:hi]...)
		weights = append(weights, s.Weights[lo:hi]...)
		retained = append(retained, s.Retained[lo:hi]...)
	}
	return &Snapshot{
		Epoch:         s.Epoch,
		Batches:       s.Batches,
		NumProfiles:   s.NumProfiles,
		NumEdges:      s.NumEdges,
		RetainedPairs: s.RetainedPairs,
		Offsets:       offsets,
		Neighbors:     neighbors,
		Weights:       weights,
		Retained:      retained,
		Theta:         s.Theta,
		PartShards:    nparts,
		PartShard:     part,
	}
}

// Threshold returns theta_i for the threshold-based pruning schemes; 0
// for out-of-range ids or schemes without per-node thresholds.
func (s *Snapshot) Threshold(profile int) float64 {
	if s.Theta == nil || profile < 0 || profile >= len(s.Theta) {
		return 0
	}
	return s.Theta[profile]
}

// AppendCandidates appends the retained candidate comparisons of one
// profile to buf and returns the extended slice, ordering the appended
// portion by descending weight (ties by ascending id) — byte-identical
// to blast.Index.AppendCandidates over the same state. Out-of-range
// profiles append nothing.
func (s *Snapshot) AppendCandidates(buf []Candidate, profile int) []Candidate {
	if profile < 0 || profile >= s.NumProfiles {
		return buf
	}
	start := len(buf)
	lo, hi := s.Offsets[profile], s.Offsets[profile+1]
	for p := lo; p < hi; p++ {
		if s.Retained[p] {
			buf = append(buf, Candidate{ID: s.Neighbors[p], Weight: s.Weights[p]})
		}
	}
	slices.SortFunc(buf[start:], CompareCandidates)
	return buf
}

// snapshotCancelCheckEvery is the row granularity at which the pair
// enumeration polls for cancellation; snapshotCancelCheckEdges bounds
// the entries scanned between polls inside one long row.
const (
	snapshotCancelCheckEvery = 1024
	snapshotCancelCheckEdges = 8192
)

// AppendOwnedPairs appends every retained canonical pair (u < v) whose
// smaller endpoint u the caller owns, in ascending (u, v) order — the
// canonical pair order of the batch pipeline restricted to owned rows.
// Partitioning pair emission by the owner of u makes the per-shard
// streams disjoint, so merging them restores exactly the global
// canonical pair list. Polls ctx at row-chunk and edge-segment
// granularity; on cancellation the partial result is discarded.
func (s *Snapshot) AppendOwnedPairs(ctx context.Context, dst []model.IDPair, owns func(profile int32) bool) ([]model.IDPair, error) {
	for u := 0; u < s.NumProfiles; u++ {
		if u%snapshotCancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if !owns(int32(u)) {
			continue
		}
		end := s.Offsets[u+1]
		for p := s.Offsets[u]; p < end; {
			seg := end - p
			if seg > snapshotCancelCheckEdges {
				seg = snapshotCancelCheckEdges
			}
			for stop := p + seg; p < stop; p++ {
				if v := s.Neighbors[p]; int(v) > u && s.Retained[p] {
					dst = append(dst, model.IDPair{U: int32(u), V: v})
				}
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
	}
	return dst, nil
}

// Owner maps a profile id onto one of n shards. The hash is a fixed
// multiplicative mix (SplitMix64's first round) so routing is stable
// across processes and uniform even for the dense sequential ids the
// pipeline assigns; plain modulo would stripe ids across shards in lock
// step with insertion order.
func Owner(profile int32, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(uint32(profile)) + 0x9E3779B97F4A7C15
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	h ^= h >> 31
	return int(h % uint64(n))
}
