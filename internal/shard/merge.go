package shard

import "blast/internal/model"

// pairLess orders pairs canonically: ascending u, then ascending v —
// the order every batch pruning scheme emits and AppendOwnedPairs
// preserves per shard.
func pairLess(a, b model.IDPair) bool {
	return a.U < b.U || (a.U == b.U && a.V < b.V)
}

// MergePairs merges per-shard canonically ordered pair lists into one
// canonically ordered list, dropping duplicates. With owner-disjoint
// streams (AppendOwnedPairs partitions by the owner of u) duplicates
// cannot occur and the merge is a pure interleave; the dedup guards the
// invariant anyway, so a misconfigured fan-out degrades to a correct
// answer instead of double-reporting comparisons. The shard count is
// small, so the minimum is picked by linear scan rather than a heap.
func MergePairs(parts [][]model.IDPair) []model.IDPair {
	live := parts[:0:0]
	total := 0
	for _, p := range parts {
		if len(p) > 0 {
			live = append(live, p)
			total += len(p)
		}
	}
	if len(live) == 0 {
		return nil
	}
	if len(live) == 1 {
		return append([]model.IDPair(nil), live[0]...)
	}
	out := make([]model.IDPair, 0, total)
	cursors := make([]int, len(live))
	for {
		best := -1
		for i, c := range cursors {
			if c >= len(live[i]) {
				continue
			}
			if best < 0 || pairLess(live[i][c], live[best][cursors[best]]) {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		p := live[best][cursors[best]]
		cursors[best]++
		if n := len(out); n == 0 || out[n-1] != p {
			out = append(out, p)
		}
	}
}
