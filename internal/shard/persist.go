package shard

// On-disk snapshot persistence. A published Snapshot is already the
// natural durable unit — immutable flat arrays, tagged with its epoch
// and its position in the insert sequence — so serialization is a plain
// deterministic layout with one trailing checksum:
//
//	[8]  magic "BLSNAP01" (full replica) or "BLSNAP02" (partitioned)
//	uvarint Epoch, Batches, NumProfiles, NumEdges, RetainedPairs
//	uvarint PartShards, PartShard            (BLSNAP02 only)
//	uvarint len(Offsets), uvarint delta-encoded Offsets
//	uvarint len(Neighbors), [4]xN little-endian Neighbors
//	uvarint len(Weights),   [8]xN little-endian float64 bits
//	uvarint len(Retained),  bitset (LSB-first)
//	[1] Theta presence, then uvarint len + [8]xN float64 bits if present
//	[4] little-endian CRC-32C of everything above
//
// Decoding fails closed: the checksum is verified first, every length is
// bounds-checked against the remaining bytes before allocation, and the
// structural invariants a Snapshot's readers rely on (offset monotonicity,
// array-length agreement, neighbor ranges, retained-mark count) are
// re-validated — a corrupted or torn snapshot file is an error, never a
// partially-trusted state. Files are written to a temporary name and
// renamed into place so a crash mid-write can never clobber the previous
// valid snapshot.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
)

var (
	snapMagic = [8]byte{'B', 'L', 'S', 'N', 'A', 'P', '0', '1'}
	// snapMagic2 tags partitioned (owned-rows) snapshots, which carry two
	// extra header fields. A distinct magic — rather than a flag inside
	// the v1 layout — keeps v1 files byte-identical to what earlier
	// builds wrote and makes a replicated reader reject a partitioned
	// file loudly instead of misreading its header.
	snapMagic2 = [8]byte{'B', 'L', 'S', 'N', 'A', 'P', '0', '2'}
)

var snapCRC = crc32.MakeTable(crc32.Castagnoli)

// EncodeSnapshot serializes a snapshot into a self-checking byte blob.
func EncodeSnapshot(s *Snapshot) []byte {
	n := 8 + 5*10 + 10 + len(s.Offsets)*5 + 10 + len(s.Neighbors)*4 +
		10 + len(s.Weights)*8 + 10 + (len(s.Retained)+7)/8 + 11 + len(s.Theta)*8 + 4
	buf := make([]byte, 0, n)
	if s.PartShards > 0 {
		buf = append(buf, snapMagic2[:]...)
	} else {
		buf = append(buf, snapMagic[:]...)
	}
	buf = binary.AppendUvarint(buf, s.Epoch)
	buf = binary.AppendUvarint(buf, uint64(s.Batches))
	buf = binary.AppendUvarint(buf, uint64(s.NumProfiles))
	buf = binary.AppendUvarint(buf, uint64(s.NumEdges))
	buf = binary.AppendUvarint(buf, uint64(s.RetainedPairs))
	if s.PartShards > 0 {
		buf = binary.AppendUvarint(buf, uint64(s.PartShards))
		buf = binary.AppendUvarint(buf, uint64(s.PartShard))
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.Offsets)))
	prev := int64(0)
	for _, o := range s.Offsets {
		buf = binary.AppendUvarint(buf, uint64(o-prev))
		prev = o
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.Neighbors)))
	for _, v := range s.Neighbors {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.Weights)))
	for _, w := range s.Weights {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(w))
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.Retained)))
	var acc byte
	for i, r := range s.Retained {
		if r {
			acc |= 1 << (i % 8)
		}
		if i%8 == 7 {
			buf = append(buf, acc)
			acc = 0
		}
	}
	if len(s.Retained)%8 != 0 {
		buf = append(buf, acc)
	}
	if s.Theta == nil {
		buf = append(buf, 0)
	} else {
		buf = append(buf, 1)
		buf = binary.AppendUvarint(buf, uint64(len(s.Theta)))
		for _, th := range s.Theta {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(th))
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, snapCRC))
}

var errSnapCorrupt = errors.New("shard: corrupt snapshot")

// DecodeSnapshot deserializes and validates a snapshot blob.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < len(snapMagic)+4 {
		return nil, fmt.Errorf("%w: %d bytes", errSnapCorrupt, len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, snapCRC) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: checksum mismatch", errSnapCorrupt)
	}
	magic := [8]byte(body[:8])
	if magic != snapMagic && magic != snapMagic2 {
		return nil, fmt.Errorf("shard: bad snapshot magic %q", body[:8])
	}
	d := &snapDecoder{data: body[8:]}
	s := &Snapshot{
		Epoch:         d.uvarint(),
		Batches:       int64(d.uvarint()),
		NumProfiles:   int(d.uvarint()),
		NumEdges:      int(d.uvarint()),
		RetainedPairs: int(d.uvarint()),
	}
	if magic == snapMagic2 {
		s.PartShards = int(d.uvarint())
		s.PartShard = int(d.uvarint())
	}
	no := d.count(1) // at most one uvarint byte per offset delta
	s.Offsets = make([]int64, 0, no)
	prev := int64(0)
	for i := 0; i < no; i++ {
		prev += int64(d.uvarint())
		s.Offsets = append(s.Offsets, prev)
	}
	nn := d.count(4)
	s.Neighbors = make([]int32, nn)
	for i := range s.Neighbors {
		s.Neighbors[i] = int32(d.u32())
	}
	nw := d.count(8)
	s.Weights = make([]float64, nw)
	for i := range s.Weights {
		s.Weights[i] = math.Float64frombits(d.u64())
	}
	// The retained mask is a bitset: its count is in elements (8 per
	// byte), so bound it against the remaining bits rather than bytes.
	nrU := d.uvarint()
	if d.err == nil && nrU > uint64(len(d.data))*8 {
		d.err = fmt.Errorf("%w: bitset of %d bits in %d bytes", errSnapCorrupt, nrU, len(d.data))
	}
	nr := int(nrU)
	if d.err == nil && len(d.data) < (nr+7)/8 {
		d.err = errSnapCorrupt
	}
	if d.err == nil {
		s.Retained = make([]bool, nr)
		for i := range s.Retained {
			s.Retained[i] = d.data[i/8]&(1<<(i%8)) != 0
		}
		d.data = d.data[(nr+7)/8:]
	}
	if d.byte() == 1 {
		nt := d.count(8)
		s.Theta = make([]float64, nt)
		for i := range s.Theta {
			s.Theta[i] = math.Float64frombits(d.u64())
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", errSnapCorrupt, len(d.data))
	}
	return s, validateSnapshot(s)
}

// validateSnapshot re-checks the structural invariants snapshot readers
// assume, so a decoded snapshot is safe to serve from without bounds
// checks beyond the ones the live export already guarantees.
func validateSnapshot(s *Snapshot) error {
	if s.Batches < 0 || s.NumProfiles < 0 {
		return fmt.Errorf("%w: negative counters", errSnapCorrupt)
	}
	if len(s.Offsets) != s.NumProfiles+1 {
		return fmt.Errorf("%w: %d offsets for %d profiles", errSnapCorrupt, len(s.Offsets), s.NumProfiles)
	}
	if s.Offsets[0] != 0 || s.Offsets[s.NumProfiles] != int64(len(s.Neighbors)) {
		return fmt.Errorf("%w: offset bounds", errSnapCorrupt)
	}
	for i := 1; i < len(s.Offsets); i++ {
		// Delta decoding makes offsets nondecreasing except under int64
		// overflow from a forged delta; reject that explicitly.
		if s.Offsets[i] < s.Offsets[i-1] {
			return fmt.Errorf("%w: offsets not monotone", errSnapCorrupt)
		}
	}
	if len(s.Weights) != len(s.Neighbors) || len(s.Retained) != len(s.Neighbors) {
		return fmt.Errorf("%w: entry array lengths disagree", errSnapCorrupt)
	}
	if s.PartShards == 0 {
		// A full replica holds both orientations of every edge.
		if 2*s.NumEdges != len(s.Neighbors) {
			return fmt.Errorf("%w: %d edges for %d entries", errSnapCorrupt, s.NumEdges, len(s.Neighbors))
		}
	} else {
		// A partitioned snapshot holds a subset of the orientations —
		// NumEdges and RetainedPairs are GLOBAL counters — so only the
		// upper bounds and the ownership shape are checkable locally.
		if s.PartShard < 0 || s.PartShard >= s.PartShards {
			return fmt.Errorf("%w: shard %d of %d", errSnapCorrupt, s.PartShard, s.PartShards)
		}
		if len(s.Neighbors) > 2*s.NumEdges {
			return fmt.Errorf("%w: %d entries for %d edges", errSnapCorrupt, len(s.Neighbors), s.NumEdges)
		}
		for u := 0; u < s.NumProfiles; u++ {
			if s.Offsets[u+1] != s.Offsets[u] && !s.Owns(int32(u)) {
				return fmt.Errorf("%w: unowned row %d populated", errSnapCorrupt, u)
			}
		}
	}
	if s.Theta != nil && len(s.Theta) != s.NumProfiles {
		return fmt.Errorf("%w: %d thresholds for %d profiles", errSnapCorrupt, len(s.Theta), s.NumProfiles)
	}
	for _, v := range s.Neighbors {
		if v < 0 || int(v) >= s.NumProfiles {
			return fmt.Errorf("%w: neighbor %d of %d profiles", errSnapCorrupt, v, s.NumProfiles)
		}
	}
	marks := 0
	for _, r := range s.Retained {
		if r {
			marks++
		}
	}
	if s.PartShards == 0 {
		if marks != 2*s.RetainedPairs {
			return fmt.Errorf("%w: %d retained marks for %d pairs", errSnapCorrupt, marks, s.RetainedPairs)
		}
	} else if marks > 2*s.RetainedPairs {
		return fmt.Errorf("%w: %d retained marks for %d pairs", errSnapCorrupt, marks, s.RetainedPairs)
	}
	return nil
}

// snapDecoder cursors over the payload with sticky error handling; every
// count is bounds-checked against the remaining bytes (at minBytes per
// element) before the caller allocates.
type snapDecoder struct {
	data []byte
	err  error
}

func (d *snapDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data)
	if n <= 0 {
		d.err = errSnapCorrupt
		return 0
	}
	d.data = d.data[n:]
	return v
}

func (d *snapDecoder) count(minBytes int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.data)) || (minBytes > 0 && v > uint64(len(d.data)/minBytes)) {
		d.err = fmt.Errorf("%w: count %d exceeds %d remaining bytes", errSnapCorrupt, v, len(d.data))
		return 0
	}
	return int(v)
}

func (d *snapDecoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.data) == 0 {
		d.err = errSnapCorrupt
		return 0
	}
	b := d.data[0]
	d.data = d.data[1:]
	return b
}

func (d *snapDecoder) u32() uint32 {
	if d.err != nil || len(d.data) < 4 {
		d.err = errSnapCorrupt
		return 0
	}
	v := binary.LittleEndian.Uint32(d.data)
	d.data = d.data[4:]
	return v
}

func (d *snapDecoder) u64() uint64 {
	if d.err != nil || len(d.data) < 8 {
		d.err = errSnapCorrupt
		return 0
	}
	v := binary.LittleEndian.Uint64(d.data)
	d.data = d.data[8:]
	return v
}

// WriteSnapshotFile atomically persists a snapshot: the blob is written
// to a temporary file, synced, renamed over the target, and the
// directory synced, so the target path never holds a torn snapshot.
func WriteSnapshotFile(path string, s *Snapshot) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	// fail abandons the temp file, joining the close error with the
	// primary one: both describe why the snapshot is not on disk.
	fail := func(err error) error {
		if cerr := f.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(EncodeSnapshot(s)); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// ReadSnapshotFile loads and validates a persisted snapshot.
func ReadSnapshotFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := DecodeSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// syncDir fsyncs a directory so a preceding rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
