package shard

import (
	"context"
	"slices"
	"testing"

	"blast/internal/model"
)

func pair(u, v int32) model.IDPair { return model.IDPair{U: u, V: v} }

func TestMergePairs(t *testing.T) {
	cases := []struct {
		name  string
		parts [][]model.IDPair
		want  []model.IDPair
	}{
		{"empty", nil, nil},
		{"all-empty", [][]model.IDPair{nil, {}}, nil},
		{"single", [][]model.IDPair{{pair(0, 1), pair(2, 3)}}, []model.IDPair{pair(0, 1), pair(2, 3)}},
		{
			"interleave",
			[][]model.IDPair{
				{pair(0, 2), pair(3, 4)},
				{pair(0, 1), pair(1, 2), pair(5, 6)},
				{pair(0, 3)},
			},
			[]model.IDPair{pair(0, 1), pair(0, 2), pair(0, 3), pair(1, 2), pair(3, 4), pair(5, 6)},
		},
		{
			"dedup",
			[][]model.IDPair{
				{pair(0, 1), pair(2, 3)},
				{pair(0, 1), pair(2, 3)},
			},
			[]model.IDPair{pair(0, 1), pair(2, 3)},
		},
		{
			"same-u-different-v",
			[][]model.IDPair{
				{pair(1, 5)},
				{pair(1, 2), pair(1, 9)},
			},
			[]model.IDPair{pair(1, 2), pair(1, 5), pair(1, 9)},
		},
	}
	for _, tc := range cases {
		if got := MergePairs(tc.parts); !slices.Equal(got, tc.want) {
			t.Errorf("%s: MergePairs = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestMergePairsDuplicateRunsAcrossShards exercises the misconfigured
// fan-out path documented on MergePairs — overlapping (non-disjoint)
// streams — with interleaved duplicate runs across more than two
// shards, including cursors that exhaust mid-run while other shards
// keep producing duplicates of the exhausted shard's tail.
func TestMergePairsDuplicateRunsAcrossShards(t *testing.T) {
	cases := []struct {
		name  string
		parts [][]model.IDPair
		want  []model.IDPair
	}{
		{
			// Three shards share a duplicate run 2..4; shard 0 exhausts
			// exactly at the end of the run while the others continue.
			"exhaust-at-run-end",
			[][]model.IDPair{
				{pair(0, 2), pair(0, 3), pair(0, 4)},
				{pair(0, 2), pair(0, 3), pair(0, 4), pair(1, 2)},
				{pair(0, 3), pair(0, 4), pair(1, 2), pair(1, 3)},
			},
			[]model.IDPair{pair(0, 2), pair(0, 3), pair(0, 4), pair(1, 2), pair(1, 3)},
		},
		{
			// Four shards, duplicate runs interleaved with private pairs:
			// every pop must pick the global minimum even while several
			// cursors sit on identical heads.
			"interleaved-runs-4-shards",
			[][]model.IDPair{
				{pair(0, 1), pair(2, 3), pair(2, 4), pair(9, 9)},
				{pair(0, 1), pair(1, 2), pair(2, 4)},
				{pair(1, 2), pair(2, 3), pair(2, 4), pair(5, 6)},
				{pair(0, 1), pair(2, 4), pair(5, 6), pair(9, 9)},
			},
			[]model.IDPair{pair(0, 1), pair(1, 2), pair(2, 3), pair(2, 4), pair(5, 6), pair(9, 9)},
		},
		{
			// A shard that is a strict prefix of another, twice over: its
			// cursor exhausts first and must simply drop out of the scan.
			"prefix-shards",
			[][]model.IDPair{
				{pair(1, 2)},
				{pair(1, 2), pair(1, 3)},
				{pair(1, 2), pair(1, 3), pair(1, 4)},
			},
			[]model.IDPair{pair(1, 2), pair(1, 3), pair(1, 4)},
		},
		{
			// Identical streams on every shard: maximal duplication, the
			// merge must collapse to one copy.
			"all-identical",
			[][]model.IDPair{
				{pair(0, 1), pair(0, 2), pair(3, 4)},
				{pair(0, 1), pair(0, 2), pair(3, 4)},
				{pair(0, 1), pair(0, 2), pair(3, 4)},
				{pair(0, 1), pair(0, 2), pair(3, 4)},
			},
			[]model.IDPair{pair(0, 1), pair(0, 2), pair(3, 4)},
		},
	}
	for _, tc := range cases {
		if got := MergePairs(tc.parts); !slices.Equal(got, tc.want) {
			t.Errorf("%s: MergePairs = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestMergePairsRandomizedOverlap drives MergePairs against a naive
// reference (concatenate, sort, dedup) on randomized overlapping shard
// streams — each shard holds a sorted sample of a shared pair universe,
// so duplicate runs and staggered exhaustion arise constantly.
func TestMergePairsRandomizedOverlap(t *testing.T) {
	rng := uint64(0x9E3779B97F4A7C15)
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	for trial := 0; trial < 200; trial++ {
		universe := make([]model.IDPair, 0, 24)
		for u := 0; u < 6; u++ {
			for v := u + 1; v < 6; v++ {
				universe = append(universe, pair(int32(u), int32(v)))
			}
		}
		shards := 3 + next(3) // 3..5, always > 2
		parts := make([][]model.IDPair, shards)
		for s := range parts {
			for _, p := range universe {
				if next(3) != 0 { // ~2/3 overlap between shards
					parts[s] = append(parts[s], p)
				}
			}
		}
		seen := make(map[model.IDPair]bool)
		var want []model.IDPair
		for _, p := range universe { // universe is already canonical order
			for _, part := range parts {
				if slices.Contains(part, p) && !seen[p] {
					seen[p] = true
					want = append(want, p)
				}
			}
		}
		if got := MergePairs(parts); !slices.Equal(got, want) {
			t.Fatalf("trial %d (%d shards): MergePairs = %v, want %v", trial, shards, got, want)
		}
	}
}

func TestMergePairsDoesNotAliasSingleInput(t *testing.T) {
	in := []model.IDPair{pair(0, 1)}
	out := MergePairs([][]model.IDPair{in})
	out[0] = pair(9, 9)
	if in[0] != pair(0, 1) {
		t.Error("MergePairs aliased its single input")
	}
}

func TestSnapshotLookups(t *testing.T) {
	// Graph over 3 profiles: 0-1 (w 2.0, retained), 0-2 (w 1.0, pruned),
	// 1-2 (w 3.0, retained).
	s := &Snapshot{
		NumProfiles:   3,
		NumEdges:      3,
		RetainedPairs: 2,
		Offsets:       []int64{0, 2, 4, 6},
		Neighbors:     []int32{1, 2, 0, 2, 0, 1},
		Weights:       []float64{2, 1, 2, 3, 1, 3},
		Retained:      []bool{true, false, true, true, false, true},
		Theta:         []float64{0.5, 1.5, 2.5},
	}
	if got := s.AppendCandidates(nil, 1); len(got) != 2 || got[0].ID != 2 || got[1].ID != 0 {
		t.Fatalf("Candidates(1) = %v (want 2 desc-weight entries: id 2 then id 0)", got)
	}
	if got := s.AppendCandidates(nil, 0); len(got) != 1 || got[0] != (Candidate{ID: 1, Weight: 2}) {
		t.Fatalf("Candidates(0) = %v", got)
	}
	for _, bad := range []int{-1, 3, 1 << 20} {
		if got := s.AppendCandidates(nil, bad); len(got) != 0 {
			t.Errorf("Candidates(%d) = %v, want empty", bad, got)
		}
		if got := s.Threshold(bad); got != 0 {
			t.Errorf("Threshold(%d) = %v, want 0", bad, got)
		}
	}
	if got := s.Threshold(2); got != 2.5 {
		t.Errorf("Threshold(2) = %v", got)
	}

	all, err := s.AppendOwnedPairs(context.Background(), nil, func(int32) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if want := []model.IDPair{pair(0, 1), pair(1, 2)}; !slices.Equal(all, want) {
		t.Fatalf("owned pairs = %v, want %v", all, want)
	}
	// Owner partitioning covers every pair exactly once after a merge.
	parts := make([][]model.IDPair, 2)
	for i := range parts {
		parts[i], err = s.AppendOwnedPairs(context.Background(), nil, func(u int32) bool { return Owner(u, 2) == i })
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := MergePairs(parts); !slices.Equal(got, all) {
		t.Fatalf("merged owner partition = %v, want %v", got, all)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.AppendOwnedPairs(cancelled, nil, func(int32) bool { return true }); err != context.Canceled {
		t.Fatalf("cancelled enumeration err = %v", err)
	}
}
