package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"blast/internal/model"
)

// Writer is the mutable side of a shard: a writable index that absorbs
// insert batches and can export an immutable serving snapshot of its
// current state (compacting its overlay in the process). Only the
// shard's worker goroutine ever calls these methods, so implementations
// need no locking beyond their own invariants.
type Writer interface {
	// InsertAll appends a batch of profiles and folds them into the
	// writable index.
	InsertAll(ctx context.Context, profiles []model.Profile) ([]int, error)
	// Export compacts pending overlay state and returns an immutable
	// snapshot of the index. The returned snapshot's Epoch is assigned
	// by the shard.
	Export(ctx context.Context) (*Snapshot, error)
	// OverlayStats reports the entries currently held in the writable
	// index's copy-on-write overlay and their load relative to the flat
	// base — the inputs of the overlay-size swap trigger.
	OverlayStats() (entries int, load float64)
}

// Options tunes a shard's snapshot-swap policy.
type Options struct {
	// SwapOps publishes a fresh snapshot once this many profiles have
	// been applied since the last publication. <= 0 disables the
	// op-count trigger.
	SwapOps int
	// MaxOverlayFraction publishes (and thereby compacts) once the
	// writer's overlay load exceeds this fraction and MinOverlayEntries
	// is reached. <= 0 disables the overlay trigger.
	MaxOverlayFraction float64
	// MinOverlayEntries suppresses the overlay trigger below this many
	// overlay entries.
	MinOverlayEntries int
	// Persist, when non-nil, observes every published snapshot from the
	// worker goroutine, after the swap — the durability hook. A persist
	// error is sticky: readers keep the (already swapped) snapshot, but
	// the shard reports the failure like an apply error.
	Persist func(*Snapshot) error
	// OnFail, when non-nil, is invoked exactly once, from the worker
	// goroutine and outside the shard lock, at the moment the shard's
	// sticky error is first set. It is the failure hook of partitioned
	// serving: a dead partitioned shard can never again contribute its
	// exchange frames, so the hook poisons the aggregate exchange and the
	// sibling exports fail instead of waiting forever.
	OnFail func(error)
}

// Stats is a point-in-time summary of one shard.
type Stats struct {
	// ID is the shard's index within its server.
	ID int
	// Epoch is the epoch of the currently published snapshot.
	Epoch uint64
	// Published is the profile count of the currently published snapshot.
	Published int
	// Applied is the number of profiles the worker has applied to the
	// writable index (published or not).
	Applied int64
	// Batches is the number of insert batches applied successfully —
	// the shard's position in the globally sequenced insert stream.
	Batches int64
	// Swaps counts snapshot publications after the initial one.
	Swaps int64
	// Queued is the number of operations waiting in the mailbox.
	Queued int
	// ApplyTime is the cumulative wall-clock time spent applying insert
	// batches (excluding snapshot export).
	ApplyTime time.Duration
	// OwnedRows is the number of profile rows resident in the published
	// snapshot: every row on a replicated shard, only the hash-owned ones
	// on a partitioned shard.
	OwnedRows int
	// ResidentBytes approximates the heap footprint of the published
	// snapshot's arrays — the per-shard memory the partitioned topology
	// divides across shards.
	ResidentBytes int64
}

// ErrClosed is returned by operations on a shard (or server) that has
// been closed.
var ErrClosed = errors.New("shard: closed")

// op is one mailbox entry: an insert batch, a barrier, or both legs nil
// (never enqueued). A barrier asks the worker to publish a snapshot
// covering everything applied so far and report completion.
type op struct {
	profiles []model.Profile
	barrier  chan error
}

// Shard is one snapshot-swap serving partition: a single worker
// goroutine drains a mailbox of insert batches into the writable index
// and publishes immutable snapshots on the swap policy, while any number
// of readers load the current snapshot wait-free. Mailbox enqueues are
// non-blocking (the queue is unbounded); writes are therefore
// all-or-nothing across the shards of a server, which is what keeps
// replicas convergent.
type Shard struct {
	id  int
	w   Writer
	opt Options

	snap atomic.Pointer[Snapshot]

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []op
	closed    bool
	err       error // first apply/publish error; sticky
	applied   int64
	batches   int64 // insert batches applied successfully
	swaps     int64
	applyTime time.Duration

	// sinceSwap counts profiles applied since the last publication.
	// Worker-goroutine-local; no lock needed.
	sinceSwap int

	stopped chan struct{}
}

// New starts a shard worker over a writable index, serving reads from
// the given initial snapshot (conventionally epoch 0, exported from the
// index's post-build state).
func New(id int, w Writer, initial *Snapshot, opt Options) *Shard {
	s := &Shard{
		id:      id,
		w:       w,
		opt:     opt,
		stopped: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.snap.Store(initial)
	go s.loop()
	return s
}

// ID returns the shard's index within its server.
func (s *Shard) ID() int { return s.id }

// Snapshot returns the currently published snapshot. The result is
// immutable and safe to use for any length of time.
func (s *Shard) Snapshot() *Snapshot { return s.snap.Load() }

// Err returns the first error the worker encountered, if any.
func (s *Shard) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Stats returns a point-in-time summary of the shard.
func (s *Shard) Stats() Stats {
	snap := s.snap.Load()
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		ID:            s.id,
		Epoch:         snap.Epoch,
		Published:     snap.NumProfiles,
		Applied:       s.applied,
		Batches:       s.batches,
		Swaps:         s.swaps,
		Queued:        len(s.queue),
		ApplyTime:     s.applyTime,
		OwnedRows:     snap.OwnedRows(),
		ResidentBytes: snap.ResidentBytes(),
	}
}

// Enqueue hands an insert batch to the worker. It never blocks (the
// mailbox is unbounded) and fails only on a closed shard — in
// particular NOT on a shard whose worker has already failed, so a
// caller broadcasting one batch to many shards under a lock that
// excludes Close either enqueues it on all of them or on none. A
// failed shard silently drops the batches it receives (see apply);
// callers observe the failure through Err, Barrier and their own
// pre-checks. The shard reads the batch asynchronously; callers must
// not mutate it after handoff.
func (s *Shard) Enqueue(profiles []model.Profile) error {
	if len(profiles) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.queue = append(s.queue, op{profiles: profiles})
	s.cond.Signal()
	return nil
}

// Barrier enqueues a publication barrier and waits for it: when Barrier
// returns nil, every batch enqueued before it has been applied and the
// published snapshot covers them all (the shard is quiesced). On
// context cancellation the barrier itself still completes eventually;
// only the wait is abandoned.
func (s *Shard) Barrier(ctx context.Context) error {
	done, err := s.BarrierStart()
	if err != nil {
		return err
	}
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// BarrierStart enqueues a publication barrier without waiting and
// returns its completion channel (buffered; the worker's send never
// blocks). Splitting enqueue from wait lets a server place barriers on
// ALL of its shards atomically under its own admission lock — the only
// way partitioned shards are guaranteed to export at the same position
// of the insert stream, which their aggregate exchange requires — and
// then wait outside the lock.
func (s *Shard) BarrierStart() (<-chan error, error) {
	done := make(chan error, 1)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	s.queue = append(s.queue, op{barrier: done})
	s.cond.Signal()
	return done, nil
}

// Close stops the worker after draining every operation already in the
// mailbox, waits for it to exit, and returns the shard's sticky error.
// Reads remain valid after Close (the last snapshot stays published);
// Enqueue and Barrier fail with ErrClosed.
func (s *Shard) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	<-s.stopped
	return s.Err()
}

// next blocks until an operation is available or the shard is closed
// with an empty mailbox. Closing drains: queued operations are still
// returned after Close.
func (s *Shard) next() (op, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == 0 && !s.closed {
		s.cond.Wait()
	}
	if len(s.queue) == 0 {
		return op{}, false
	}
	o := s.queue[0]
	s.queue[0] = op{} // release the batch to the GC as the queue drains
	s.queue = s.queue[1:]
	return o, true
}

// loop is the shard worker: apply, check the swap policy, honor
// barriers. Application runs under the background context — once a
// batch is enqueued on every shard it must be applied on every shard,
// or replicas would diverge; cancellation governs only the enqueue and
// wait paths.
func (s *Shard) loop() {
	defer close(s.stopped)
	for {
		o, ok := s.next()
		if !ok {
			// Final drain complete: publish anything applied since the
			// last swap so post-Close reads observe the full admitted
			// sequence on every shard — without this, shards whose last
			// batches fell between swap points would serve different
			// prefixes forever. The error (if any) is sticky and
			// surfaces through Close/Err.
			_ = s.publishIfBehind()
			return
		}
		if len(o.profiles) > 0 {
			s.apply(o.profiles)
		}
		if o.barrier != nil {
			o.barrier <- s.publishIfBehind()
		}
	}
}

// apply folds one insert batch into the writable index and publishes if
// the swap policy fires. A shard that has already failed drops the
// batch: its writable index may sit in the aftermath of the failed
// apply, and pretending to continue would publish state the healthy
// shards never converge with.
func (s *Shard) apply(profiles []model.Profile) {
	if s.Err() != nil {
		return
	}
	t0 := telemetryNow()
	_, err := s.w.InsertAll(context.Background(), profiles)
	dt := telemetryNow().Sub(t0)
	s.mu.Lock()
	s.applied += int64(len(profiles))
	s.applyTime += dt
	if err == nil && s.err == nil {
		s.batches++
	}
	s.mu.Unlock()
	if err != nil {
		s.setErr(fmt.Errorf("shard %d: apply: %w", s.id, err))
		return
	}
	s.sinceSwap += len(profiles)
	if s.shouldSwap() {
		s.publish()
	}
}

// shouldSwap evaluates the publication policy against the profiles
// applied since the last swap and the writer's overlay load.
func (s *Shard) shouldSwap() bool {
	if s.opt.SwapOps > 0 && s.sinceSwap >= s.opt.SwapOps {
		return true
	}
	if s.opt.MaxOverlayFraction > 0 {
		entries, load := s.w.OverlayStats()
		return entries >= s.opt.MinOverlayEntries && load > s.opt.MaxOverlayFraction
	}
	return false
}

// publishIfBehind publishes only when unpublished applications exist —
// a quiesce on an idle shard costs nothing — and reports the shard's
// sticky error either way.
func (s *Shard) publishIfBehind() error {
	if err := s.Err(); err != nil {
		return err
	}
	if s.sinceSwap == 0 {
		return nil
	}
	return s.publish()
}

// publish exports a snapshot from the writer and swaps it in, tagging
// it with the next epoch and the insert-stream position it covers, then
// hands it to the Persist hook.
func (s *Shard) publish() error {
	snap, err := s.w.Export(context.Background())
	if err != nil {
		return s.setErr(fmt.Errorf("shard %d: export: %w", s.id, err))
	}
	//blast:allow snapshotmut -- tagging a freshly exported snapshot the writer just handed over; it becomes immutable at the Store below and no reader sees it before then
	snap.Epoch = s.snap.Load().Epoch + 1
	s.mu.Lock()
	//blast:allow snapshotmut -- tagging a freshly exported snapshot the writer just handed over; it becomes immutable at the Store below and no reader sees it before then
	snap.Batches = s.batches
	s.mu.Unlock()
	s.snap.Store(snap)
	s.sinceSwap = 0
	s.mu.Lock()
	s.swaps++
	s.mu.Unlock()
	if s.opt.Persist != nil {
		if err := s.opt.Persist(snap); err != nil {
			return s.setErr(fmt.Errorf("shard %d: persist: %w", s.id, err))
		}
	}
	return nil
}

// setErr records the worker's first (sticky) error and fires the OnFail
// hook exactly once, outside the lock; later calls return the original
// error unchanged. Only the worker goroutine calls it, so "first" is
// also "only" within one shard.
func (s *Shard) setErr(err error) error {
	s.mu.Lock()
	first := s.err == nil
	if first {
		s.err = err
	}
	err = s.err
	s.mu.Unlock()
	if first && s.opt.OnFail != nil {
		s.opt.OnFail(err)
	}
	return err
}

// telemetryNow reads the wall clock for apply-timing telemetry
// (Stats.ApplyTime). It is the package's single audited wall-clock
// read: durations are reported through Stats, never folded into any
// served value, so the determinism contract is untouched.
func telemetryNow() time.Time {
	//blast:allow wallclock -- telemetry clock: apply timings are reported via Stats, never feed a pinned computation
	return time.Now()
}
