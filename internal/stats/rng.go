package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64) used wherever the reproduction needs reproducible
// randomness: MinHash parameterization, synthetic dataset generation and
// sampling for supervised meta-blocking.
//
// splitmix64 passes BigCrush, has a full 2^64 period and, unlike
// math/rand's global state, gives every consumer an isolated stream keyed
// by an explicit seed, which keeps experiments reproducible across
// packages and runs.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	for {
		x := r.Uint64()
		hi, lo := mul64(x, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly permutes the first n elements via swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf samples from a (truncated) Zipf distribution over [0, n) with
// exponent s > 0 using inverse-CDF over precomputed weights. Token
// frequencies in real text are approximately Zipfian, which matters for
// Token Blocking (a few huge stop-word-like blocks, many tiny ones), so
// the synthetic datasets draw vocabulary ranks from this sampler.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over n ranks with exponent s, drawing
// randomness from rng. It panics if n <= 0 or s <= 0.
func NewZipf(rng *RNG, s float64, n int) *Zipf {
	if n <= 0 || s <= 0 {
		panic("stats: NewZipf needs n > 0 and s > 0")
	}
	cdf := make([]float64, n)
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += 1.0 / math.Pow(float64(i+1), s)
		cdf[i] = acc
	}
	for i := range cdf {
		cdf[i] /= acc
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Draw returns the next Zipf-distributed rank in [0, n).
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
