// Package stats provides the statistical primitives of BLAST: Shannon
// entropy (Definition 3 of the paper), the 2x2 contingency table of
// profile co-occurrence (Table 1) with Pearson's chi-squared statistic,
// and a small deterministic RNG used by the LSH and dataset-generation
// substrates.
package stats

import "math"

// Entropy returns the Shannon entropy (base 2) of the empirical
// distribution given by counts. Non-positive counts are ignored.
//
// H(X) = - sum_x p(x) log2 p(x)
//
// The base only scales the result and therefore does not change any of
// the orderings BLAST derives from entropies; base 2 is the conventional
// "bits" unit.
func Entropy(counts []int) float64 {
	total := 0
	for _, c := range counts {
		if c > 0 {
			total += c
		}
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	ft := float64(total)
	for _, c := range counts {
		if c <= 0 {
			continue
		}
		p := float64(c) / ft
		h -= p * math.Log2(p)
	}
	if h < 0 { // guard against -0 from rounding
		return 0
	}
	return h
}

// NOTE: there is deliberately no map-based entropy helper. Summing a
// frequency map in iteration order makes the result vary in its last
// bits from run to run over identical data (floating-point addition is
// not associative), which breaks the bitwise-equivalence contracts
// everything downstream of an entropy is held to. Callers materialize
// counts in a data-determined order and use Entropy.

// MaxEntropy returns the maximum possible entropy of a distribution over
// n outcomes, log2(n). It is 0 for n <= 1.
func MaxEntropy(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Log2(float64(n))
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice. It is
// the aggregation used for cluster entropies (H̄(C_k), Section 3.1.3).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
