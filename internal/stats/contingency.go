package stats

import "fmt"

// Contingency is the 2x2 contingency table of Table 1 in the paper. It
// describes the joint frequency distribution of two profiles pu, pv over a
// block collection:
//
//	         pv       !pv
//	pu      N11       N12     | N1x
//	!pu     N21       N22     | N2x
//	        Nx1       Nx2     | N
//
// N11 is the number of blocks containing both profiles, N1x the number of
// blocks containing pu (with or without pv), Nx1 the number containing pv,
// and N the total number of blocks.
type Contingency struct {
	N11 float64 // blocks with both pu and pv (|B_uv|)
	N1x float64 // blocks with pu (|B_u|)
	Nx1 float64 // blocks with pv (|B_v|)
	N   float64 // total blocks (|B|)
}

// NewContingency builds the table from the observable block statistics:
// common blocks, per-profile block counts and the size of the block
// collection.
func NewContingency(common, blocksU, blocksV, totalBlocks int) Contingency {
	return Contingency{
		N11: float64(common),
		N1x: float64(blocksU),
		Nx1: float64(blocksV),
		N:   float64(totalBlocks),
	}
}

// Cells returns the four observed cell counts n11, n12, n21, n22.
func (c Contingency) Cells() (n11, n12, n21, n22 float64) {
	n11 = c.N11
	n12 = c.N1x - c.N11
	n21 = c.Nx1 - c.N11
	n22 = c.N - c.N1x - c.Nx1 + c.N11
	return
}

// Valid reports whether the table is internally consistent: all cells
// non-negative and marginals within the total.
func (c Contingency) Valid() bool {
	n11, n12, n21, n22 := c.Cells()
	return n11 >= 0 && n12 >= 0 && n21 >= 0 && n22 >= 0 && c.N > 0
}

// ChiSquared returns Pearson's chi-squared statistic of the table:
//
//	chi2 = sum_ij (n_ij - mu_ij)^2 / mu_ij,   mu_ij = n_i+ * n_+j / n
//
// measuring the divergence between the observed co-occurrence of the two
// profiles and the expectation under independence. BLAST uses the
// statistic as an association strength, not as a hypothesis test
// (Section 3.3.1).
//
// Note: the formula as typeset in the paper omits the square on the
// numerator; the standard Pearson statistic (squared) is what chi-squared
// denotes and what the reference implementation computes, so that is what
// we implement. Degenerate tables (a zero marginal) yield 0.
func (c Contingency) ChiSquared() float64 {
	n11, n12, n21, n22 := c.Cells()
	r1 := n11 + n12
	r2 := n21 + n22
	c1 := n11 + n21
	c2 := n12 + n22
	n := c.N
	if n <= 0 || r1 <= 0 || r2 <= 0 || c1 <= 0 || c2 <= 0 {
		return 0
	}
	chi := 0.0
	add := func(obs, rowSum, colSum float64) {
		mu := rowSum * colSum / n
		if mu > 0 {
			d := obs - mu
			chi += d * d / mu
		}
	}
	add(n11, r1, c1)
	add(n12, r1, c2)
	add(n21, r2, c1)
	add(n22, r2, c2)
	return chi
}

// PositiveAssociation returns the chi-squared statistic when the two
// profiles co-occur MORE than independence predicts (n11 > mu11), and 0
// otherwise. Meta-blocking weights must capture the likelihood of a
// match, i.e. positive association only: with few blocks a pair can
// diverge from independence by co-occurring *less* than expected, and the
// two-sided statistic would score such anti-associated pairs highly. (At
// realistic block counts mu11 is near zero and any edge is positively
// associated, so the one-sided and two-sided statistics coincide on real
// data; the distinction matters on small examples such as the paper's
// Figure 1.)
func (c Contingency) PositiveAssociation() float64 {
	if c.N <= 0 {
		return 0
	}
	// Saturated table: every block contains both profiles. The chi2 of a
	// 2x2 table is bounded by N, and the perfect-association tables
	// n11 = N1x = Nx1 < N attain exactly N; extend by continuity so that
	// total co-occurrence (which only tiny collections can produce) is
	// scored as maximal association rather than 0.
	if c.N11 >= c.N {
		return c.N
	}
	mu11 := c.N1x * c.Nx1 / c.N
	if c.N11 <= mu11 {
		return 0
	}
	return c.ChiSquared()
}

// String renders the table for debugging.
func (c Contingency) String() string {
	n11, n12, n21, n22 := c.Cells()
	return fmt.Sprintf("[[%g %g][%g %g]] n=%g", n11, n12, n21, n22, c.N)
}
