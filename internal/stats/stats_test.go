package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestEntropyUniform(t *testing.T) {
	// Uniform over 4 outcomes: H = log2(4) = 2 bits.
	if got := Entropy([]int{5, 5, 5, 5}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("Entropy(uniform4) = %v, want 2", got)
	}
}

func TestEntropyDegenerate(t *testing.T) {
	if got := Entropy([]int{10}); got != 0 {
		t.Errorf("Entropy(single) = %v, want 0", got)
	}
	if got := Entropy(nil); got != 0 {
		t.Errorf("Entropy(nil) = %v, want 0", got)
	}
	if got := Entropy([]int{0, 0, -3}); got != 0 {
		t.Errorf("Entropy(non-positive) = %v, want 0", got)
	}
}

func TestEntropyKnownValue(t *testing.T) {
	// p = (0.25, 0.75): H = 0.811278...
	got := Entropy([]int{1, 3})
	want := -(0.25*math.Log2(0.25) + 0.75*math.Log2(0.75))
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("Entropy = %v, want %v", got, want)
	}
}

func TestEntropyBounds(t *testing.T) {
	// Property: 0 <= H <= log2(#positive outcomes).
	f := func(raw []uint8) bool {
		counts := make([]int, len(raw))
		positive := 0
		for i, v := range raw {
			counts[i] = int(v)
			if v > 0 {
				positive++
			}
		}
		h := Entropy(counts)
		return h >= 0 && h <= MaxEntropy(positive)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEntropyUniformIsMax(t *testing.T) {
	// Among distributions over n outcomes the uniform one maximizes H.
	for n := 2; n <= 16; n *= 2 {
		uniform := make([]int, n)
		for i := range uniform {
			uniform[i] = 7
		}
		hu := Entropy(uniform)
		if !almostEqual(hu, MaxEntropy(n), 1e-12) {
			t.Errorf("uniform entropy over %d = %v, want %v", n, hu, MaxEntropy(n))
		}
		skewed := make([]int, n)
		for i := range skewed {
			skewed[i] = 1
		}
		skewed[0] = 100
		if hs := Entropy(skewed); hs >= hu {
			t.Errorf("skewed entropy %v >= uniform %v", hs, hu)
		}
	}
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestContingencyCellsPaperExample(t *testing.T) {
	// Table 1 of the paper, values in parentheses for p1, p3 of Figure 1b:
	// n11=4 n12=2 n21=3 n22=3, marginals 6/6 and 7/5, n=12.
	c := NewContingency(4, 6, 7, 12)
	n11, n12, n21, n22 := c.Cells()
	if n11 != 4 || n12 != 2 || n21 != 3 || n22 != 3 {
		t.Fatalf("Cells = %v %v %v %v, want 4 2 3 3", n11, n12, n21, n22)
	}
	if !c.Valid() {
		t.Error("paper example table should be valid")
	}
}

func TestContingencyMarginals(t *testing.T) {
	// Property: cells always sum to N and are consistent with marginals.
	f := func(a, b, c, n uint8) bool {
		total := int(n) + 1
		common := int(a) % (total + 1)
		bu := common + int(b)%(total-common+1)
		bv := common + int(c)%(total-common+1)
		if bu > total || bv > total {
			return true // skip impossible configurations
		}
		tab := NewContingency(common, bu, bv, total)
		n11, n12, n21, n22 := tab.Cells()
		if !almostEqual(n11+n12+n21+n22, tab.N, 1e-9) {
			return false
		}
		return almostEqual(n11+n12, tab.N1x, 1e-9) && almostEqual(n11+n21, tab.Nx1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChiSquaredIndependence(t *testing.T) {
	// Perfectly independent table: observed == expected, chi2 = 0.
	// n11=1, n1x=2, nx1=2, n=4 -> mu11 = 2*2/4 = 1 = n11, etc.
	c := NewContingency(1, 2, 2, 4)
	if got := c.ChiSquared(); !almostEqual(got, 0, 1e-12) {
		t.Errorf("ChiSquared(independent) = %v, want 0", got)
	}
}

func TestChiSquaredKnownValue(t *testing.T) {
	// Paper example table (p1,p3): n11=4 n12=2 n21=3 n22=3.
	// Expected: mu11=6*7/12=3.5, mu12=6*5/12=2.5, mu21=6*7/12=3.5, mu22=2.5.
	// chi2 = .25/3.5 + .25/2.5 + .25/3.5 + .25/2.5 = 2*(0.0714285..+0.1) = 0.342857...
	c := NewContingency(4, 6, 7, 12)
	want := 0.25/3.5 + 0.25/2.5 + 0.25/3.5 + 0.25/2.5
	if got := c.ChiSquared(); !almostEqual(got, want, 1e-12) {
		t.Errorf("ChiSquared = %v, want %v", got, want)
	}
}

func TestChiSquaredDegenerate(t *testing.T) {
	if got := NewContingency(0, 0, 0, 10).ChiSquared(); got != 0 {
		t.Errorf("zero marginals should give 0, got %v", got)
	}
	if got := NewContingency(5, 5, 5, 5).ChiSquared(); got != 0 {
		// All blocks contain both profiles: one zero marginal row/col.
		t.Errorf("saturated table should give 0, got %v", got)
	}
	if got := NewContingency(0, 0, 0, 0).ChiSquared(); got != 0 {
		t.Errorf("empty table should give 0, got %v", got)
	}
}

func TestChiSquaredNonNegativeProperty(t *testing.T) {
	f := func(a, b, c, n uint8) bool {
		total := int(n)%64 + 2
		common := int(a) % (total + 1)
		bu := common + int(b)%(total-common+1)
		bv := common + int(c)%(total-common+1)
		tab := NewContingency(common, bu, bv, total)
		if !tab.Valid() {
			return true
		}
		return tab.ChiSquared() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestChiSquaredMonotoneInAssociation(t *testing.T) {
	// With fixed marginals, moving observed co-occurrence away from the
	// independence expectation increases chi2.
	base := NewContingency(5, 10, 10, 20) // mu11 = 5 -> chi2 = 0
	stronger := NewContingency(8, 10, 10, 20)
	strongest := NewContingency(10, 10, 10, 20)
	c0, c1, c2 := base.ChiSquared(), stronger.ChiSquared(), strongest.ChiSquared()
	if !(c0 < c1 && c1 < c2) {
		t.Errorf("chi2 not monotone: %v %v %v", c0, c1, c2)
	}
}

func TestContingencyString(t *testing.T) {
	if s := NewContingency(1, 2, 3, 10).String(); s == "" {
		t.Error("String should render")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical streams")
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(1)
	for n := 1; n < 40; n++ {
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGIntnUniformish(t *testing.T) {
	r := NewRNG(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	for i, c := range counts {
		// Expect draws/n = 10000 each; allow 10% slack.
		if c < 9000 || c > 11000 {
			t.Errorf("bucket %d count %d deviates from uniform", i, c)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm invalid: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGShuffle(t *testing.T) {
	r := NewRNG(5)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), xs...)
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 28 {
		t.Errorf("Shuffle lost elements: %v (orig %v)", xs, orig)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(11)
	z := NewZipf(r, 1.0, 100)
	counts := make([]int, 100)
	for i := 0; i < 50000; i++ {
		counts[z.Draw()]++
	}
	// Rank 0 must dominate rank 50 heavily under s=1.
	if counts[0] < counts[50]*5 {
		t.Errorf("Zipf not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
	// All draws in range (implicitly checked by indexing) and rank 0 nonzero.
	if counts[0] == 0 {
		t.Error("rank 0 never drawn")
	}
}

func TestZipfPanics(t *testing.T) {
	r := NewRNG(1)
	for _, bad := range []struct {
		s float64
		n int
	}{{0, 10}, {1, 0}, {-1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%v,%v) should panic", bad.s, bad.n)
				}
			}()
			NewZipf(r, bad.s, bad.n)
		}()
	}
}

func TestMul64(t *testing.T) {
	hi, lo := mul64(math.MaxUint64, 2)
	if hi != 1 || lo != math.MaxUint64-1 {
		t.Errorf("mul64 overflow wrong: hi=%d lo=%d", hi, lo)
	}
	hi, lo = mul64(3, 4)
	if hi != 0 || lo != 12 {
		t.Errorf("mul64(3,4) = %d,%d", hi, lo)
	}
}

func TestPositiveAssociation(t *testing.T) {
	// Positively associated: observed 4 > expected 3.5.
	pos := NewContingency(4, 6, 7, 12)
	if got := pos.PositiveAssociation(); !almostEqual(got, pos.ChiSquared(), 1e-12) || got <= 0 {
		t.Errorf("PositiveAssociation = %v, want ChiSquared %v", got, pos.ChiSquared())
	}
	// Anti-associated: observed 1 < expected 3.5 -> 0 despite high chi2.
	neg := NewContingency(1, 6, 7, 12)
	if neg.ChiSquared() <= 0 {
		t.Fatal("sanity: anti-associated table has positive chi2")
	}
	if got := neg.PositiveAssociation(); got != 0 {
		t.Errorf("PositiveAssociation(anti) = %v, want 0", got)
	}
	// Exactly independent -> 0.
	if got := NewContingency(1, 2, 2, 4).PositiveAssociation(); got != 0 {
		t.Errorf("PositiveAssociation(independent) = %v, want 0", got)
	}
	// Degenerate -> 0.
	if got := NewContingency(0, 0, 0, 0).PositiveAssociation(); got != 0 {
		t.Errorf("PositiveAssociation(empty) = %v, want 0", got)
	}
}

func TestPositiveAssociationSaturated(t *testing.T) {
	// Every block contains both profiles: maximal association, scored N.
	sat := NewContingency(4, 4, 4, 4)
	if got := sat.PositiveAssociation(); got != 4 {
		t.Errorf("saturated PositiveAssociation = %v, want 4 (=N)", got)
	}
	// Perfect association below saturation attains exactly N via the
	// regular chi2 formula — the continuity the special case extends.
	perf := NewContingency(4, 4, 4, 5)
	if got := perf.PositiveAssociation(); !almostEqual(got, 5, 1e-9) {
		t.Errorf("perfect association = %v, want 5 (=N)", got)
	}
}
