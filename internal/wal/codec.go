package wal

// The WAL payload codec for insert batches. One record is one admitted
// InsertAll batch; the encoding is a plain deterministic concatenation
// (uvarint counts, length-prefixed strings) so identical batches encode
// to identical bytes on every shard's log — recovery relies on that to
// cross-check the per-shard logs record for record.

import (
	"encoding/binary"
	"errors"
	"fmt"

	"blast/internal/model"
)

// AppendBatch encodes a batch of profiles onto dst and returns the
// extended slice.
func AppendBatch(dst []byte, batch []model.Profile) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(batch)))
	for i := range batch {
		dst = appendProfile(dst, &batch[i])
	}
	return dst
}

// AppendOwnedBatch encodes one shard's owned subset of an admitted
// batch onto dst: the full batch length (so record counts and batch
// boundaries stay aligned across shards even when a shard owns nothing
// of a batch), then the owned profiles each prefixed with its position
// in the batch, in batch order. Under the partitioned topology every
// shard journals every batch through this encoding, and recovery
// reassembles the full batch from the per-shard subsets (see
// DecodeOwnedBatch).
func AppendOwnedBatch(dst []byte, batch []model.Profile, owns func(index int) bool) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(batch)))
	n := 0
	for i := range batch {
		if owns(i) {
			n++
		}
	}
	dst = binary.AppendUvarint(dst, uint64(n))
	for i := range batch {
		if !owns(i) {
			continue
		}
		dst = binary.AppendUvarint(dst, uint64(i))
		dst = appendProfile(dst, &batch[i])
	}
	return dst
}

func appendProfile(dst []byte, p *model.Profile) []byte {
	dst = appendString(dst, p.ID)
	dst = binary.AppendUvarint(dst, uint64(len(p.Pairs)))
	for _, pr := range p.Pairs {
		dst = appendString(dst, pr.Name)
		dst = appendString(dst, pr.Value)
	}
	return dst
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

var errTruncatedBatch = errors.New("wal: truncated batch encoding")

// DecodeBatch decodes one batch payload. Every length is bounds-checked
// against the remaining bytes before any allocation, and trailing bytes
// are an error, so arbitrary (fuzzed or corrupted) input yields an error
// rather than a panic or an over-allocation.
func DecodeBatch(data []byte) ([]model.Profile, error) {
	n, data, err := decodeUvarint(data)
	if err != nil {
		return nil, err
	}
	// A profile encodes to at least two bytes (empty id, zero pairs).
	if n > uint64(len(data)/2)+1 {
		return nil, fmt.Errorf("wal: batch claims %d profiles in %d bytes", n, len(data))
	}
	batch := make([]model.Profile, 0, n)
	for i := uint64(0); i < n; i++ {
		var p model.Profile
		if p, data, err = decodeProfile(data); err != nil {
			return nil, err
		}
		batch = append(batch, p)
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("wal: %d trailing bytes after batch", len(data))
	}
	return batch, nil
}

// OwnedEntry is one profile of an admitted batch as journaled by its
// owning shard: the profile plus its position in the batch.
type OwnedEntry struct {
	Index   int
	Profile model.Profile
}

// DecodeOwnedBatch decodes one owned-subset payload (AppendOwnedBatch):
// the full batch length and the shard's owned entries. Indices must be
// strictly increasing and inside the batch — the encoder emits them in
// batch order, so anything else is corruption — and, as with
// DecodeBatch, every length is bounds-checked and trailing bytes are an
// error.
func DecodeOwnedBatch(data []byte) (batchLen int, entries []OwnedEntry, err error) {
	bl, data, err := decodeUvarint(data)
	if err != nil {
		return 0, nil, err
	}
	n, data, err := decodeUvarint(data)
	if err != nil {
		return 0, nil, err
	}
	if n > bl {
		return 0, nil, fmt.Errorf("wal: owned batch claims %d of %d profiles", n, bl)
	}
	// An owned entry encodes to at least three bytes (index, empty id,
	// zero pairs).
	if n > uint64(len(data)/3)+1 {
		return 0, nil, fmt.Errorf("wal: owned batch claims %d entries in %d bytes", n, len(data))
	}
	entries = make([]OwnedEntry, 0, n)
	prev := -1
	for i := uint64(0); i < n; i++ {
		var idx uint64
		if idx, data, err = decodeUvarint(data); err != nil {
			return 0, nil, err
		}
		if idx >= bl || int(idx) <= prev {
			return 0, nil, fmt.Errorf("wal: owned batch index %d out of order (batch of %d)", idx, bl)
		}
		prev = int(idx)
		var p model.Profile
		if p, data, err = decodeProfile(data); err != nil {
			return 0, nil, err
		}
		entries = append(entries, OwnedEntry{Index: int(idx), Profile: p})
	}
	if len(data) != 0 {
		return 0, nil, fmt.Errorf("wal: %d trailing bytes after owned batch", len(data))
	}
	return int(bl), entries, nil
}

func decodeProfile(data []byte) (model.Profile, []byte, error) {
	var p model.Profile
	var err error
	if p.ID, data, err = decodeString(data); err != nil {
		return p, nil, err
	}
	var np uint64
	if np, data, err = decodeUvarint(data); err != nil {
		return p, nil, err
	}
	if np > uint64(len(data)/2)+1 {
		return p, nil, fmt.Errorf("wal: profile claims %d pairs in %d bytes", np, len(data))
	}
	p.Pairs = make([]model.Pair, 0, np)
	for j := uint64(0); j < np; j++ {
		var pr model.Pair
		if pr.Name, data, err = decodeString(data); err != nil {
			return p, nil, err
		}
		if pr.Value, data, err = decodeString(data); err != nil {
			return p, nil, err
		}
		p.Pairs = append(p.Pairs, pr)
	}
	return p, data, nil
}

func decodeUvarint(data []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, errTruncatedBatch
	}
	return v, data[n:], nil
}

func decodeString(data []byte) (string, []byte, error) {
	n, data, err := decodeUvarint(data)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(data)) {
		return "", nil, errTruncatedBatch
	}
	return string(data[:n]), data[n:], nil
}
