package wal

// The WAL payload codec for insert batches. One record is one admitted
// InsertAll batch; the encoding is a plain deterministic concatenation
// (uvarint counts, length-prefixed strings) so identical batches encode
// to identical bytes on every shard's log — recovery relies on that to
// cross-check the per-shard logs record for record.

import (
	"encoding/binary"
	"errors"
	"fmt"

	"blast/internal/model"
)

// AppendBatch encodes a batch of profiles onto dst and returns the
// extended slice.
func AppendBatch(dst []byte, batch []model.Profile) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(batch)))
	for i := range batch {
		p := &batch[i]
		dst = appendString(dst, p.ID)
		dst = binary.AppendUvarint(dst, uint64(len(p.Pairs)))
		for _, pr := range p.Pairs {
			dst = appendString(dst, pr.Name)
			dst = appendString(dst, pr.Value)
		}
	}
	return dst
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

var errTruncatedBatch = errors.New("wal: truncated batch encoding")

// DecodeBatch decodes one batch payload. Every length is bounds-checked
// against the remaining bytes before any allocation, and trailing bytes
// are an error, so arbitrary (fuzzed or corrupted) input yields an error
// rather than a panic or an over-allocation.
func DecodeBatch(data []byte) ([]model.Profile, error) {
	n, data, err := decodeUvarint(data)
	if err != nil {
		return nil, err
	}
	// A profile encodes to at least two bytes (empty id, zero pairs).
	if n > uint64(len(data)/2)+1 {
		return nil, fmt.Errorf("wal: batch claims %d profiles in %d bytes", n, len(data))
	}
	batch := make([]model.Profile, 0, n)
	for i := uint64(0); i < n; i++ {
		var p model.Profile
		if p.ID, data, err = decodeString(data); err != nil {
			return nil, err
		}
		var np uint64
		if np, data, err = decodeUvarint(data); err != nil {
			return nil, err
		}
		if np > uint64(len(data)/2)+1 {
			return nil, fmt.Errorf("wal: profile claims %d pairs in %d bytes", np, len(data))
		}
		p.Pairs = make([]model.Pair, 0, np)
		for j := uint64(0); j < np; j++ {
			var pr model.Pair
			if pr.Name, data, err = decodeString(data); err != nil {
				return nil, err
			}
			if pr.Value, data, err = decodeString(data); err != nil {
				return nil, err
			}
			p.Pairs = append(p.Pairs, pr)
		}
		batch = append(batch, p)
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("wal: %d trailing bytes after batch", len(data))
	}
	return batch, nil
}

func decodeUvarint(data []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, errTruncatedBatch
	}
	return v, data[n:], nil
}

func decodeString(data []byte) (string, []byte, error) {
	n, data, err := decodeUvarint(data)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(data)) {
		return "", nil, errTruncatedBatch
	}
	return string(data[:n]), data[n:], nil
}
