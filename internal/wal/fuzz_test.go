package wal

// Fuzz targets of the recovery scan and the batch codec. The property
// under test is the crash-recovery contract: whatever bytes end up on
// disk — torn writes, bit rot, arbitrary garbage — recovery yields a
// byte-identical prefix of the records that were appended, or fails
// closed. It never panics, never over-allocates, and never invents or
// reorders data.

import (
	"bytes"
	"testing"
)

// FuzzWALReplay builds a reference log from seed-derived records,
// applies a fuzzer-chosen corruption (truncation, bit flip, or raw
// garbage splice), and asserts the recovered records are a strict
// byte-identical prefix of the reference — with full recovery when the
// corruption landed past the valid prefix.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte("hello world this is a record stream"), uint8(4), uint16(10), uint8(0))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(3), uint16(3), uint8(1))
	f.Add([]byte("x"), uint8(1), uint16(0), uint8(2))
	f.Add([]byte(""), uint8(0), uint16(100), uint8(3))
	f.Fuzz(func(t *testing.T, seed []byte, nrec uint8, at uint16, mode uint8) {
		// Reference log: nrec records sliced deterministically from seed.
		records := make([][]byte, 0, nrec)
		data := append([]byte(nil), logMagic[:]...)
		ends := make([]int64, 0, nrec)
		for i := 0; i < int(nrec%16); i++ {
			lo := (i * 3) % (len(seed) + 1)
			hi := lo + (i*7)%(len(seed)-lo+1)
			rec := seed[lo:hi]
			records = append(records, rec)
			data = appendRecord(data, rec)
			ends = append(ends, int64(len(data)))
		}
		// Corrupt.
		switch mode % 4 {
		case 0: // truncate
			cut := int(at) % (len(data) + 1)
			data = data[:cut]
		case 1: // bit flip
			if len(data) > 0 {
				data = append([]byte(nil), data...)
				data[int(at)%len(data)] ^= 1 << (at % 8)
			}
		case 2: // splice garbage at the tail
			data = append(append([]byte(nil), data...), seed...)
		case 3: // pristine
		}

		recovered, rends, err := Scan(data)
		if err != nil {
			// Only header corruption may fail closed; that is fine.
			return
		}
		switch mode % 4 {
		case 0, 3: // truncation (or none): the exact surviving prefix is known
			want := 0
			for _, e := range ends {
				if e <= int64(len(data)) {
					want++
				}
			}
			if len(data) < headerSize {
				want = 0
			}
			if len(recovered) != want {
				t.Fatalf("recovered %d records, want %d", len(recovered), want)
			}
		case 2: // tail splice: originals are intact; the splice may even form
			// extra valid records (that is just an append), never fewer.
			if len(recovered) < len(records) {
				t.Fatalf("tail splice lost records: %d < %d", len(recovered), len(records))
			}
		case 1: // bit flip: drops the flipped record and its suffix at most
			if len(recovered) > len(records) {
				t.Fatalf("bit flip grew the log: %d > %d", len(recovered), len(records))
			}
		}
		if mode%4 != 1 {
			// Outside the bit-flip mode nothing before the corruption point
			// changed, so surviving original records are byte-identical.
			// (A flip could in principle forge a valid boundary; CRC-32C
			// makes a silent alteration a 2^-32 event we do not model.)
			for i, rec := range recovered {
				if i < len(records) && !bytes.Equal(rec, records[i]) {
					t.Fatalf("record %d not byte-identical after corruption mode %d", i, mode%4)
				}
			}
		}
		for i, e := range rends {
			if e < int64(headerSize) || e > int64(len(data)) || (i > 0 && e <= rends[i-1]) {
				t.Fatalf("invalid end offsets %v", rends)
			}
		}
		// Recovery is idempotent: scanning the truncated valid prefix
		// yields the same records.
		valid := int64(headerSize)
		if len(rends) > 0 {
			valid = rends[len(rends)-1]
		}
		if int64(len(data)) >= valid {
			again, _, err := Scan(data[:valid])
			if err != nil || len(again) != len(recovered) {
				t.Fatalf("rescan of valid prefix: %d records, err %v", len(again), err)
			}
		}
	})
}

// FuzzBatchCodec feeds arbitrary bytes to DecodeBatch (must never
// panic) and round-trips whatever decodes.
func FuzzBatchCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendBatch(nil, nil))
	f.Add([]byte{2, 1, 'a', 1, 4, 'n', 'a', 'm', 'e', 2, 'o', 'k', 1, 'b', 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		batch, err := DecodeBatch(data)
		if err != nil {
			return
		}
		enc := AppendBatch(nil, batch)
		again, err := DecodeBatch(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(batch) {
			t.Fatalf("round trip changed batch size %d -> %d", len(batch), len(again))
		}
		for i := range batch {
			if again[i].ID != batch[i].ID || len(again[i].Pairs) != len(batch[i].Pairs) {
				t.Fatalf("round trip changed profile %d", i)
			}
		}
	})
}
