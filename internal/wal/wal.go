// Package wal implements the per-shard write-ahead log of durable
// serving: an append-only file of length-prefixed, CRC-checksummed
// records, one per admitted insert batch.
//
// File layout:
//
//	[8]  magic "BLWAL001"
//	per record:
//	  [4] little-endian payload length
//	  [4] little-endian CRC-32C (Castagnoli) of the payload
//	  [n] payload
//
// The format is self-synchronizing only at the tail: a record is valid
// iff its full header and payload are present and the checksum matches,
// and the valid portion of a log is the longest prefix of valid records.
// Opening a log truncates everything past that prefix — a torn append
// (partial write at crash) or a corrupted tail is detected and dropped,
// never silently replayed. Corruption in the middle of the valid prefix
// also stops the scan there; callers that know more records should exist
// (e.g. from a sibling shard's log) treat the shortfall as data loss and
// fail closed.
//
// Appends write the whole record with one write call on an unbuffered
// descriptor, so the bytes the OS has at any crash instant are exactly
// the bytes a recovery scan sees; fsync is batched under SyncEvery to
// trade machine-crash durability against throughput.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
)

const (
	headerSize     = 8
	recordOverhead = 8
	// MaxRecordSize bounds one record's payload (1 GiB). The limit keeps
	// a corrupted length field from driving a huge allocation during the
	// recovery scan.
	MaxRecordSize = 1 << 30
)

var logMagic = [headerSize]byte{'B', 'L', 'W', 'A', 'L', '0', '0', '1'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: closed")

// appendRecord encodes one record (header + payload) onto dst.
func appendRecord(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// Scan parses raw log bytes into the payloads of the longest valid
// record prefix. ends[i] is the byte offset just past record i, so
// ends[len(ends)-1] (or headerSize when no record is valid) is the size
// the file must be truncated to. The returned payloads alias data.
//
// A file shorter than the header is a torn creation and scans as empty
// (zero records, nothing to preserve); a full-length header with the
// wrong magic is a foreign file and fails closed with an error.
func Scan(data []byte) (payloads [][]byte, ends []int64, err error) {
	if len(data) < headerSize {
		return nil, nil, nil
	}
	if [headerSize]byte(data[:headerSize]) != logMagic {
		return nil, nil, fmt.Errorf("wal: bad magic %q", data[:headerSize])
	}
	off := int64(headerSize)
	for {
		rest := data[off:]
		if len(rest) < recordOverhead {
			return payloads, ends, nil
		}
		n := int64(binary.LittleEndian.Uint32(rest))
		sum := binary.LittleEndian.Uint32(rest[4:])
		if n > MaxRecordSize || int64(len(rest)) < recordOverhead+n {
			return payloads, ends, nil
		}
		payload := rest[recordOverhead : recordOverhead+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			return payloads, ends, nil
		}
		off += recordOverhead + n
		payloads = append(payloads, payload)
		ends = append(ends, off)
	}
}

// Log is an open write-ahead log positioned for appends. Not safe for
// concurrent use; the server serializes appends under its write lock.
type Log struct {
	f         *os.File
	size      int64   // bytes of valid content (header + records)
	ends      []int64 // byte offset just past each record
	syncEvery int     // fsync after this many appends; <= 0 never fsyncs
	pending   int     // appends since the last fsync
	closed    bool
}

// Open opens (creating if absent) the log at path, scans it, truncates
// any invalid tail, and returns the log positioned for appends together
// with the payloads of the valid records. syncEvery <= 0 disables
// fsync; 1 syncs every append; n > 1 batches.
func Open(path string, syncEvery int) (*Log, [][]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, nil, err
	}
	payloads, ends, err := Scan(data)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{f: f, syncEvery: syncEvery, ends: ends}
	l.size = headerSize
	if len(ends) > 0 {
		l.size = ends[len(ends)-1]
	}
	// fail releases the descriptor on an open-time error. The close error
	// is joined rather than dropped: a failed close can itself mean the
	// preceding truncate/sync never reached the disk.
	fail := func(err error) (*Log, [][]byte, error) {
		if cerr := f.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, nil, err
	}
	if len(data) < headerSize {
		// Fresh or torn-at-creation file: (re)write the header.
		if err := f.Truncate(0); err != nil {
			return fail(err)
		}
		if _, err := f.WriteAt(logMagic[:], 0); err != nil {
			return fail(err)
		}
		if err := f.Sync(); err != nil {
			return fail(err)
		}
	} else if l.size < int64(len(data)) {
		// Torn or corrupt tail: drop it so the next append starts clean.
		if err := f.Truncate(l.size); err != nil {
			return fail(err)
		}
		if err := f.Sync(); err != nil {
			return fail(err)
		}
	}
	return l, payloads, nil
}

// Records returns the number of valid records currently in the log.
func (l *Log) Records() int { return len(l.ends) }

// Append writes one record. The write is a single unbuffered write call
// at the end of the valid prefix; durability against machine crashes
// additionally requires the fsync policy (or an explicit Sync).
func (l *Log) Append(payload []byte) error {
	if l.closed {
		return ErrClosed
	}
	if int64(len(payload)) > MaxRecordSize {
		return fmt.Errorf("wal: record of %d bytes exceeds the %d limit", len(payload), MaxRecordSize)
	}
	buf := appendRecord(make([]byte, 0, recordOverhead+len(payload)), payload)
	if _, err := l.f.WriteAt(buf, l.size); err != nil {
		return err
	}
	l.size += int64(len(buf))
	l.ends = append(l.ends, l.size)
	l.pending++
	if l.syncEvery > 0 && l.pending >= l.syncEvery {
		return l.Sync()
	}
	return nil
}

// Sync flushes pending appends to stable storage regardless of the
// batching policy.
func (l *Log) Sync() error {
	if l.closed {
		return ErrClosed
	}
	if l.pending == 0 {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.pending = 0
	return nil
}

// Truncate drops every record past the first n, synced. It is how a
// multi-log caller enforces a common cut: a batch is admitted only if it
// is present on every log, so logs that ran ahead are cut back.
func (l *Log) Truncate(n int) error {
	if l.closed {
		return ErrClosed
	}
	if n < 0 || n > len(l.ends) {
		return fmt.Errorf("wal: truncate to %d of %d records", n, len(l.ends))
	}
	if n == len(l.ends) {
		return nil
	}
	size := int64(headerSize)
	if n > 0 {
		size = l.ends[n-1]
	}
	if err := l.f.Truncate(size); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.size = size
	l.ends = l.ends[:n]
	l.pending = 0
	return nil
}

// Close syncs pending appends and releases the file. Idempotent.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	var err error
	if l.pending > 0 {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.closed = true
	return err
}
