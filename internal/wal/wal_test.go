package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"blast/internal/model"
)

func testPayloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("record-%d-%s", i, string(bytes.Repeat([]byte{'x'}, i*7))))
	}
	return out
}

// writeLog creates a log at path holding the payloads and returns the
// raw file bytes and the record end offsets.
func writeLog(t *testing.T, path string, payloads [][]byte) ([]byte, []int64) {
	t.Helper()
	l, recovered, err := Open(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("fresh log recovered %d records", len(recovered))
	}
	for _, p := range payloads {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	ends := append([]int64(nil), l.ends...)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, ends
}

func TestLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	payloads := testPayloads(5)
	writeLog(t, path, payloads)

	l, recovered, err := Open(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(recovered) != len(payloads) {
		t.Fatalf("recovered %d records, want %d", len(recovered), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(recovered[i], payloads[i]) {
			t.Fatalf("record %d = %q, want %q", i, recovered[i], payloads[i])
		}
	}
	if l.Records() != 5 {
		t.Fatalf("Records = %d, want 5", l.Records())
	}
	// Appends continue the sequence across reopen.
	if err := l.Append([]byte("late")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, recovered, err = openScan(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 6 || !bytes.Equal(recovered[5], []byte("late")) {
		t.Fatalf("after reopen-append: %d records", len(recovered))
	}
}

func openScan(path string) (*Log, [][]byte, error) {
	l, p, err := Open(path, 0)
	if err == nil {
		l.Close()
	}
	return nil, p, err
}

// TestTornTailEveryByte truncates the log at every byte offset and
// checks the recovery invariant: exactly the fully-contained records
// survive, byte-identical, and the reopened log accepts appends.
func TestTornTailEveryByte(t *testing.T) {
	dir := t.TempDir()
	payloads := testPayloads(5)
	data, ends := writeLog(t, filepath.Join(dir, "full.wal"), payloads)

	for cut := 0; cut <= len(data); cut++ {
		path := filepath.Join(dir, "torn.wal")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, e := range ends {
			if e <= int64(cut) {
				want++
			}
		}
		l, recovered, err := Open(path, 1)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(recovered) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(recovered), want)
		}
		for i := 0; i < want; i++ {
			if !bytes.Equal(recovered[i], payloads[i]) {
				t.Fatalf("cut %d: record %d mismatch", cut, i)
			}
		}
		if err := l.Append([]byte("resume")); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		_, recovered, err = openScan(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(recovered) != want+1 || !bytes.Equal(recovered[want], []byte("resume")) {
			t.Fatalf("cut %d: resume lost (%d records)", cut, len(recovered))
		}
	}
}

// TestBitFlipEveryByte flips every byte of the log in turn: header
// corruption must fail closed, record corruption must yield a strict
// byte-identical prefix of the original records.
func TestBitFlipEveryByte(t *testing.T) {
	dir := t.TempDir()
	payloads := testPayloads(4)
	data, ends := writeLog(t, filepath.Join(dir, "full.wal"), payloads)

	for i := 0; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		recovered, _, err := Scan(mut)
		if i < headerSize {
			if err == nil {
				t.Fatalf("flip %d: corrupted magic accepted", i)
			}
			continue
		}
		if err != nil {
			t.Fatalf("flip %d: %v", i, err)
		}
		// The record containing byte i must not survive.
		hit := 0
		for _, e := range ends {
			if e <= int64(i) {
				hit++
			}
		}
		if len(recovered) > hit {
			t.Fatalf("flip %d: recovered %d records, corruption in record %d undetected", i, len(recovered), hit)
		}
		for k, p := range recovered {
			if !bytes.Equal(p, payloads[k]) {
				t.Fatalf("flip %d: surviving record %d not byte-identical", i, k)
			}
		}
	}
}

func TestForeignFileFailsClosed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "foreign.wal")
	if err := os.WriteFile(path, []byte("NOTAWAL!some bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path, 1); err == nil {
		t.Fatal("foreign magic accepted")
	}
}

func TestTruncateRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	payloads := testPayloads(6)
	l, _, err := Open(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Truncate(7); err == nil {
		t.Fatal("truncate past the end accepted")
	}
	if err := l.Truncate(2); err != nil {
		t.Fatal(err)
	}
	if l.Records() != 2 {
		t.Fatalf("Records = %d after truncate", l.Records())
	}
	// The log stays appendable at the cut.
	if err := l.Append([]byte("after-cut")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, recovered, err := openScan(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 3 || !bytes.Equal(recovered[2], []byte("after-cut")) {
		t.Fatalf("after truncate+append: %d records", len(recovered))
	}
	if !bytes.Equal(recovered[0], payloads[0]) || !bytes.Equal(recovered[1], payloads[1]) {
		t.Fatal("records before the cut changed")
	}
}

func TestSyncBatching(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	l, _, err := Open(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 4; i++ {
		if err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if l.pending != 1 {
		t.Fatalf("pending = %d after 4 appends at syncEvery 3, want 1", l.pending)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if l.pending != 0 {
		t.Fatalf("pending = %d after Sync", l.pending)
	}
}

func TestClosedLogFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	l, _, err := Open(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
	if err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v", err)
	}
	if err := l.Truncate(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Truncate after Close = %v", err)
	}
}

// TestOversizedLengthFieldStopsScan forges a record whose length field
// exceeds MaxRecordSize: the scan must stop (and never allocate for it).
func TestOversizedLengthFieldStopsScan(t *testing.T) {
	data := append([]byte(nil), logMagic[:]...)
	data = appendRecord(data, []byte("ok"))
	forged := append([]byte(nil), data...)
	forged = append(forged, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0) // len = 2^32-1
	forged = append(forged, []byte("garbage")...)
	recovered, ends, err := Scan(forged)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || !bytes.Equal(recovered[0], []byte("ok")) {
		t.Fatalf("recovered %d records", len(recovered))
	}
	if ends[0] != int64(len(data)) {
		t.Fatalf("end = %d, want %d", ends[0], len(data))
	}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	batches := [][]model.Profile{
		nil,
		{},
		{{ID: "a"}},
		{{ID: "", Pairs: []model.Pair{{Name: "", Value: ""}}}},
		{
			{ID: "p1", Pairs: []model.Pair{{Name: "name", Value: "ellen smith"}, {Name: "year", Value: "1985"}}},
			{ID: "p2", Pairs: []model.Pair{{Name: "addr", Value: "12 oak st"}}},
		},
	}
	for i, b := range batches {
		enc := AppendBatch(nil, b)
		dec, err := DecodeBatch(enc)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if len(dec) != len(b) {
			t.Fatalf("batch %d: %d profiles, want %d", i, len(dec), len(b))
		}
		for j := range b {
			if dec[j].ID != b[j].ID || len(dec[j].Pairs) != len(b[j].Pairs) {
				t.Fatalf("batch %d profile %d mismatch: %+v vs %+v", i, j, dec[j], b[j])
			}
			for k := range b[j].Pairs {
				if dec[j].Pairs[k] != b[j].Pairs[k] {
					t.Fatalf("batch %d profile %d pair %d mismatch", i, j, k)
				}
			}
		}
	}
}

func TestDecodeBatchCorruption(t *testing.T) {
	enc := AppendBatch(nil, []model.Profile{
		{ID: "p1", Pairs: []model.Pair{{Name: "name", Value: "ellen"}}},
	})
	// Every strict prefix must fail (the encoding has no optional tail).
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeBatch(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeBatch(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// Absurd counts must be rejected before allocation.
	if _, err := DecodeBatch([]byte{0xff, 0xff, 0xff, 0xff, 0x0f}); err == nil {
		t.Fatal("absurd profile count accepted")
	}
}
