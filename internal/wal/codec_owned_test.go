package wal

import (
	"testing"

	"blast/internal/model"
)

func ownedTestBatch() []model.Profile {
	return []model.Profile{
		{ID: "a", Pairs: []model.Pair{{Name: "n", Value: "v"}}},
		{ID: "b"},
		{ID: "c", Pairs: []model.Pair{{Name: "x", Value: "y"}, {Name: "z", Value: ""}}},
		{ID: "d"},
	}
}

// TestOwnedBatchCodec round-trips owned subsets, including the empty
// subset every non-owning shard journals to keep record counts aligned.
func TestOwnedBatchCodec(t *testing.T) {
	batch := ownedTestBatch()
	cases := []struct {
		name string
		owns func(int) bool
	}{
		{"all", func(int) bool { return true }},
		{"none", func(int) bool { return false }},
		{"even", func(i int) bool { return i%2 == 0 }},
		{"last", func(i int) bool { return i == len(batch)-1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			enc := AppendOwnedBatch(nil, batch, tc.owns)
			blen, entries, err := DecodeOwnedBatch(enc)
			if err != nil {
				t.Fatal(err)
			}
			if blen != len(batch) {
				t.Fatalf("batch length %d, want %d", blen, len(batch))
			}
			k := 0
			for i := range batch {
				if !tc.owns(i) {
					continue
				}
				if k >= len(entries) || entries[k].Index != i || entries[k].Profile.ID != batch[i].ID ||
					len(entries[k].Profile.Pairs) != len(batch[i].Pairs) {
					t.Fatalf("entry %d does not round-trip position %d", k, i)
				}
				k++
			}
			if k != len(entries) {
				t.Fatalf("decoded %d entries, want %d", len(entries), k)
			}
		})
	}
}

// TestOwnedBatchCodecRejects pins the fail-closed decode rules.
func TestOwnedBatchCodecRejects(t *testing.T) {
	batch := ownedTestBatch()
	valid := AppendOwnedBatch(nil, batch, func(int) bool { return true })
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"count-over-length", []byte{1, 2}},
		{"truncated", valid[:len(valid)-2]},
		{"trailing", append(append([]byte{}, valid...), 0)},
		// batchLen 2, 1 entry, index 5 (out of batch).
		{"index-out-of-range", append([]byte{2, 1, 5}, valid[3:]...)},
		// batchLen 2, 2 entries both at index 0 (out of order).
		{"duplicate-index", []byte{2, 2, 0, 1, 'a', 0, 0, 1, 'b', 0}},
		// batchLen 200, 100 claimed entries, one byte of payload.
		{"overclaimed-entries", []byte{0xC8, 0x01, 100, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := DecodeOwnedBatch(tc.data); err == nil {
				t.Fatalf("corrupt owned batch %q decoded", tc.data)
			}
		})
	}
}

// FuzzOwnedBatchCodec: DecodeOwnedBatch must never panic, and whatever
// decodes must re-encode to a decodable equal subset.
func FuzzOwnedBatchCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendOwnedBatch(nil, nil, func(int) bool { return true }))
	f.Add(AppendOwnedBatch(nil, ownedTestBatch(), func(i int) bool { return i != 1 }))
	f.Fuzz(func(t *testing.T, data []byte) {
		blen, entries, err := DecodeOwnedBatch(data)
		if err != nil {
			return
		}
		// Re-encode through a batch holding the entries at their indices.
		batch := make([]model.Profile, blen)
		owned := make([]bool, blen)
		for _, e := range entries {
			batch[e.Index] = e.Profile
			owned[e.Index] = true
		}
		enc := AppendOwnedBatch(nil, batch, func(i int) bool { return owned[i] })
		blen2, again, err := DecodeOwnedBatch(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if blen2 != blen || len(again) != len(entries) {
			t.Fatalf("round trip changed shape: %d/%d -> %d/%d", blen, len(entries), blen2, len(again))
		}
		for i := range entries {
			if again[i].Index != entries[i].Index || again[i].Profile.ID != entries[i].Profile.ID {
				t.Fatalf("round trip changed entry %d", i)
			}
		}
	})
}
