package attr

import "math"

// Representation selects how attribute profiles are compared during
// attribute-match induction (Section 2.1 of the paper): binary presence
// with the Jaccard coefficient (LMI's default), or TF-IDF weights with
// cosine similarity — "the similarity measure must be compatible with
// the attribute model representation".
type Representation int

const (
	// Binary models each attribute as the set of its tokens and compares
	// with Jaccard.
	Binary Representation = iota
	// TFIDF models each attribute as a TF-IDF-weighted vector over the
	// token space and compares with cosine similarity, discounting
	// tokens that occur in many attributes.
	TFIDF
)

// String implements fmt.Stringer.
func (r Representation) String() string {
	if r == TFIDF {
		return "tfidf"
	}
	return "binary"
}

// weightedView holds unit-L2-normalized TF-IDF vectors aligned with each
// profile's sorted token hashes.
type weightedView struct {
	weights [][]float64
}

// buildTFIDF computes the TF-IDF weights of every profile:
//
//	w(t, a) = tf(t, a) * log(N / df(t))
//
// with tf the relative frequency of the token within the attribute, df
// the number of attributes containing it and N the number of attributes;
// vectors are normalized to unit length so cosine is a plain dot
// product. Profiles must carry Freqs (ExtractProfiles fills them).
func buildTFIDF(profiles []Profile) *weightedView {
	df := make(map[uint64]int)
	for i := range profiles {
		for _, t := range profiles[i].Tokens {
			df[t]++
		}
	}
	n := float64(len(profiles))
	view := &weightedView{weights: make([][]float64, len(profiles))}
	for i := range profiles {
		p := &profiles[i]
		ws := make([]float64, len(p.Tokens))
		var norm float64
		for j, t := range p.Tokens {
			tf := 1.0
			if len(p.Freqs) == len(p.Tokens) && p.Count > 0 {
				tf = float64(p.Freqs[j]) / float64(p.Count)
			}
			idf := math.Log(n/float64(df[t])) + 1 // +1 keeps shared-by-all tokens visible
			w := tf * idf
			ws[j] = w
			norm += w * w
		}
		if norm > 0 {
			inv := 1 / math.Sqrt(norm)
			for j := range ws {
				ws[j] *= inv
			}
		}
		view.weights[i] = ws
	}
	return view
}

// cosine returns the cosine similarity of profiles i and j under the
// view: a merge over the sorted token hashes with aligned weights.
func (v *weightedView) cosine(pi, pj *Profile, i, j int) float64 {
	a, b := pi.Tokens, pj.Tokens
	wa, wb := v.weights[i], v.weights[j]
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	dot := 0.0
	x, y := 0, 0
	for x < len(a) && y < len(b) {
		switch {
		case a[x] == b[y]:
			dot += wa[x] * wb[y]
			x++
			y++
		case a[x] < b[y]:
			x++
		default:
			y++
		}
	}
	if dot > 1 {
		return 1 // guard rounding
	}
	return dot
}
