package attr

import (
	"context"
	"sync"

	"blast/internal/lsh"
	"blast/internal/model"
)

// Config controls attribute-match induction.
type Config struct {
	// Alpha is the candidate threshold factor of LMI (Algorithm 1,
	// lines 9-13): a_j is a candidate match of a_i when
	// sim(a_i, a_j) >= Alpha * maxSim(a_i). Default 0.9.
	Alpha float64
	// Glue enables the glue cluster gathering unclustered attributes.
	// The paper enables it by default; Figure 10 disables it to study
	// the LSH threshold.
	Glue bool
	// LSH, when non-nil, replaces the quadratic pair enumeration with
	// banded MinHash candidate generation (Section 3.1.2).
	LSH *LSHConfig
	// MinSim discards pairs below an absolute similarity floor before
	// candidate selection. Zero keeps everything (paper behaviour).
	MinSim float64
	// Representation selects binary/Jaccard (default) or TF-IDF/cosine
	// attribute comparison (Section 2.1's two compatible combinations).
	Representation Representation
	// Workers parallelizes pair scoring (0/1 = serial). The result is
	// identical either way; useful for the exhaustive quadratic scan on
	// wide schemas when LSH is not enabled.
	Workers int
}

// LSHConfig parameterizes the optional MinHash/banding step. The implied
// Jaccard threshold is (1/Bands)^(1/Rows) — see lsh.Threshold.
type LSHConfig struct {
	Rows  int    // rows per band (r)
	Bands int    // number of bands (b)
	Seed  uint64 // hash seed (deterministic)
}

// DefaultConfig returns the paper's settings: alpha = 0.9, glue cluster
// enabled, exhaustive pair enumeration.
func DefaultConfig() Config {
	return Config{Alpha: 0.9, Glue: true}
}

// pairSim is one scored attribute pair (indexes into the profile slice).
type pairSim struct {
	i, j int
	sim  float64
}

// inductionCancelCheckEvery is the chunk granularity at which the pair
// enumeration and scoring loops poll for cancellation.
const inductionCancelCheckEvery = 1024

// enumeratePairs lists the attribute pairs to score: all cross-source
// pairs for clean-clean ER, all unordered pairs for dirty ER, or the LSH
// candidates when configured. Pairs are returned with i < j. The
// quadratic scan checks ctx once per outer row; the LSH path checks
// before and after candidate generation.
func enumeratePairs(ctx context.Context, profiles []Profile, kind model.Kind, cfg Config) ([]pairSim, error) {
	var out []pairSim
	cross := func(i, j int) bool {
		if kind == model.CleanClean {
			return profiles[i].Ref.Source != profiles[j].Ref.Source
		}
		return true
	}
	if cfg.LSH != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rows, bands := cfg.LSH.Rows, cfg.LSH.Bands
		signer := lsh.NewSigner(rows*bands, cfg.LSH.Seed)
		ix := lsh.NewIndex(rows, bands)
		for i := range profiles {
			ix.Add(int32(i), signer.SignHashes(profiles[i].Tokens))
		}
		for _, c := range ix.Candidates(func(a, b int32) bool { return cross(int(a), int(b)) }) {
			out = append(out, pairSim{i: int(c.A), j: int(c.B)})
		}
		return out, ctx.Err()
	}
	for i := 0; i < len(profiles); i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for j := i + 1; j < len(profiles); j++ {
			if cross(i, j) {
				out = append(out, pairSim{i: i, j: j})
			}
		}
	}
	return out, nil
}

// scorePairs computes the exact similarity of each enumerated pair under
// the configured representation, dropping pairs with zero similarity or
// below cfg.MinSim. With cfg.Workers > 1 scoring is chunked across
// goroutines; the filtered output order is identical to the serial scan.
// Cancellation is observed at worker-chunk granularity: each scoring
// chunk (and the serial scan) polls ctx every few thousand pairs and
// abandons its remainder, after which scorePairs returns ctx.Err().
func scorePairs(ctx context.Context, profiles []Profile, pairs []pairSim, cfg Config) ([]pairSim, error) {
	var view *weightedView
	if cfg.Representation == TFIDF {
		view = buildTFIDF(profiles)
	}
	score := func(p pairSim) float64 {
		if view != nil {
			return view.cosine(&profiles[p.i], &profiles[p.j], p.i, p.j)
		}
		return Jaccard(profiles[p.i].Tokens, profiles[p.j].Tokens)
	}

	if cfg.Workers > 1 && len(pairs) >= 4*cfg.Workers {
		var wg sync.WaitGroup
		chunk := (len(pairs) + cfg.Workers - 1) / cfg.Workers
		for start := 0; start < len(pairs); start += chunk {
			end := start + chunk
			if end > len(pairs) {
				end = len(pairs)
			}
			wg.Add(1)
			go func(span []pairSim) {
				defer wg.Done()
				for k := range span {
					if k%inductionCancelCheckEvery == 0 && ctx.Err() != nil {
						return
					}
					span[k].sim = score(span[k])
				}
			}(pairs[start:end])
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out := pairs[:0]
		for _, p := range pairs {
			if p.sim <= 0 || p.sim < cfg.MinSim {
				continue
			}
			out = append(out, p)
		}
		return out, nil
	}

	out := pairs[:0]
	for k, p := range pairs {
		if k%inductionCancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		s := score(p)
		if s <= 0 || s < cfg.MinSim {
			continue
		}
		p.sim = s
		out = append(out, p)
	}
	return out, nil
}

// LMI runs Loose attribute-Match Induction (Algorithm 1 of the paper)
// over the attribute profiles: it scores the enumerated pairs, computes
// each attribute's maximum similarity, selects per-attribute candidates
// within Alpha of that maximum, keeps mutual candidates as edges, and
// partitions attributes into the connected components of the edge graph
// (components of size >= 2; remaining attributes go to the glue cluster
// when enabled).
//
// LMI produces cohesive clusters: an edge requires both endpoints to rank
// each other among their near-best matches.
func LMI(profiles []Profile, kind model.Kind, cfg Config) *Partitioning {
	p, _ := LMICtx(context.Background(), profiles, kind, cfg)
	return p
}

// LMICtx is LMI with cooperative cancellation: pair enumeration and
// scoring poll ctx at chunk granularity and the whole induction returns
// ctx.Err() as soon as cancellation is observed.
func LMICtx(ctx context.Context, profiles []Profile, kind model.Kind, cfg Config) (*Partitioning, error) {
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = 0.9
	}
	enum, err := enumeratePairs(ctx, profiles, kind, cfg)
	if err != nil {
		return nil, err
	}
	pairs, err := scorePairs(ctx, profiles, enum, cfg)
	if err != nil {
		return nil, err
	}

	// Lines 2-8: track the maximum similarity per attribute.
	maxSim := make([]float64, len(profiles))
	for _, p := range pairs {
		if p.sim > maxSim[p.i] {
			maxSim[p.i] = p.sim
		}
		if p.sim > maxSim[p.j] {
			maxSim[p.j] = p.sim
		}
	}

	// Lines 9-13: candidate sets — a_j is a candidate of a_i when its
	// similarity is within Alpha of a_i's best.
	cand := make([]map[int]bool, len(profiles))
	addCand := func(of, who int) {
		if cand[of] == nil {
			cand[of] = make(map[int]bool)
		}
		cand[of][who] = true
	}
	for _, p := range pairs {
		if p.sim >= cfg.Alpha*maxSim[p.i] {
			addCand(p.i, p.j)
		}
		if p.sim >= cfg.Alpha*maxSim[p.j] {
			addCand(p.j, p.i)
		}
	}

	// Lines 14-16: mutual candidates become edges.
	uf := newUnionFind(len(profiles))
	for _, p := range pairs {
		if cand[p.i][p.j] && cand[p.j][p.i] {
			uf.union(p.i, p.j)
		}
	}

	// Line 17: connected components with cardinality > 1.
	return buildPartitioning(profiles, uf, cfg.Glue), nil
}

// AC runs the Attribute Clustering baseline (Papadakis et al., TKDE'13):
// every attribute is linked to its single most similar attribute (no
// mutuality requirement), and connected components of these best-match
// links form the clusters. Compared to LMI it tends to chain attributes
// transitively ("similar to other similar attributes", Section 4.3).
func AC(profiles []Profile, kind model.Kind, cfg Config) *Partitioning {
	p, _ := ACCtx(context.Background(), profiles, kind, cfg)
	return p
}

// ACCtx is AC with cooperative cancellation, mirroring LMICtx.
func ACCtx(ctx context.Context, profiles []Profile, kind model.Kind, cfg Config) (*Partitioning, error) {
	enum, err := enumeratePairs(ctx, profiles, kind, cfg)
	if err != nil {
		return nil, err
	}
	pairs, err := scorePairs(ctx, profiles, enum, cfg)
	if err != nil {
		return nil, err
	}

	best := make([]int, len(profiles))
	bestSim := make([]float64, len(profiles))
	for i := range best {
		best[i] = -1
	}
	for _, p := range pairs {
		if p.sim > bestSim[p.i] {
			bestSim[p.i], best[p.i] = p.sim, p.j
		}
		if p.sim > bestSim[p.j] {
			bestSim[p.j], best[p.j] = p.sim, p.i
		}
	}

	uf := newUnionFind(len(profiles))
	for i, j := range best {
		if j >= 0 {
			uf.union(i, j)
		}
	}
	return buildPartitioning(profiles, uf, cfg.Glue), nil
}
