package attr

import (
	"fmt"
	"sort"
	"strconv"

	"blast/internal/blocking"
	"blast/internal/stats"
)

// GlueClusterID is the id of the glue cluster that gathers all attributes
// not assigned to any similarity cluster (Section 3.1.1). Real clusters
// are numbered from 1.
const GlueClusterID = 0

// Cluster is one element of the attributes partitioning: a set of
// attributes whose values are mutually similar, plus the aggregate
// entropy H̄(C_k) — the mean Shannon entropy of its members.
type Cluster struct {
	ID      int
	Members []Ref
	Entropy float64
}

// Partitioning is the non-overlapping partition of the attribute name
// space produced by attribute-match induction, together with the
// aggregate entropies that BLAST's meta-blocking consumes.
type Partitioning struct {
	// Clusters is indexed by cluster id; index 0 is the glue cluster
	// (possibly empty or disabled).
	Clusters []Cluster
	// Glue records whether unclustered attributes are kept (assigned to
	// the glue cluster) or dropped from blocking entirely.
	Glue bool

	byAttr map[Ref]int
}

// ClusterOf returns the cluster id of an attribute and whether the
// attribute participates in blocking at all (false when the glue cluster
// is disabled and the attribute is unclustered, or the attribute is
// unknown).
func (p *Partitioning) ClusterOf(source int, name string) (int, bool) {
	id, ok := p.byAttr[Ref{Source: source, Name: name}]
	return id, ok
}

// NumClusters returns the number of non-empty clusters, glue included.
func (p *Partitioning) NumClusters() int {
	n := 0
	for _, c := range p.Clusters {
		if len(c.Members) > 0 {
			n++
		}
	}
	return n
}

// Entropy returns the aggregate entropy of a cluster id; unknown ids
// yield 1 so that weighting degrades to the entropy-free behaviour.
func (p *Partitioning) Entropy(id int) float64 {
	if id < 0 || id >= len(p.Clusters) {
		return 1
	}
	return p.Clusters[id].Entropy
}

// KeyFunc adapts the partitioning to the blocking package: tokens are
// qualified with the cluster id of the attribute they appear in
// (disambiguating e.g. "Abram" as person name vs street name, Figure 2),
// and every block inherits the cluster's aggregate entropy.
func (p *Partitioning) KeyFunc() blocking.KeyFunc {
	return func(source int, attrName, token string) (string, float64, bool) {
		id, ok := p.ClusterOf(source, attrName)
		if !ok {
			return "", 0, false
		}
		return token + "\x1f" + strconv.Itoa(id), p.Entropy(id), true
	}
}

// String summarizes the partitioning for logs and reports.
func (p *Partitioning) String() string {
	return fmt.Sprintf("partitioning{%d clusters, glue=%v}", p.NumClusters(), p.Glue)
}

// buildPartitioning assembles a Partitioning from union-find components
// over the profile indexes. Components of size >= 2 become clusters
// (sorted for determinism); singletons go to the glue cluster when
// enabled. Cluster entropy is the mean entropy of the members.
func buildPartitioning(profiles []Profile, uf *unionFind, glue bool) *Partitioning {
	groups := make(map[int][]int) // root -> member profile indexes
	for i := range profiles {
		r := uf.find(i)
		groups[r] = append(groups[r], i)
	}
	roots := make([]int, 0, len(groups))
	for r, members := range groups {
		if len(members) >= 2 {
			roots = append(roots, r)
		}
	}
	// Deterministic cluster order: by smallest member index.
	sort.Slice(roots, func(i, j int) bool {
		return groups[roots[i]][0] < groups[roots[j]][0]
	})

	part := &Partitioning{Glue: glue, byAttr: make(map[Ref]int)}
	part.Clusters = append(part.Clusters, Cluster{ID: GlueClusterID})

	clustered := make([]bool, len(profiles))
	for _, r := range roots {
		id := len(part.Clusters)
		var ents []float64
		c := Cluster{ID: id}
		for _, idx := range groups[r] {
			c.Members = append(c.Members, profiles[idx].Ref)
			ents = append(ents, profiles[idx].Entropy)
			part.byAttr[profiles[idx].Ref] = id
			clustered[idx] = true
		}
		c.Entropy = stats.Mean(ents)
		part.Clusters = append(part.Clusters, c)
	}

	if glue {
		var ents []float64
		gc := &part.Clusters[GlueClusterID]
		for i := range profiles {
			if clustered[i] {
				continue
			}
			gc.Members = append(gc.Members, profiles[i].Ref)
			ents = append(ents, profiles[i].Entropy)
			part.byAttr[profiles[i].Ref] = GlueClusterID
		}
		gc.Entropy = stats.Mean(ents)
	}
	return part
}

// unionFind is a standard disjoint-set forest with path halving and
// union by size.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
}
