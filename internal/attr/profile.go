// Package attr implements BLAST's loose schema information extraction
// (Section 3.1): attribute profiles, Loose attribute-Match Induction
// (LMI, Algorithm 1 of the paper), the Attribute Clustering baseline (AC,
// Papadakis et al. TKDE'13), the optional LSH-based candidate generation
// step, and the entropy extraction that turns an attribute partitioning
// into the aggregate-entropy weights used by the meta-blocking phase.
package attr

import (
	"sort"

	"blast/internal/lsh"
	"blast/internal/model"
	"blast/internal/stats"
	"blast/internal/text"
)

// Ref identifies an attribute within a dataset: the source collection
// index (0 for E1, 1 for E2) and the attribute name.
type Ref struct {
	Source int
	Name   string
}

// Profile is the profile of an attribute (Section 2.1): the set of terms
// its values assume under the value transformation function, represented
// with binary presence. Tokens are stored as sorted unique 64-bit hashes,
// which makes Jaccard a linear merge and feeds MinHash directly.
type Profile struct {
	Ref Ref
	// Tokens is the sorted, deduplicated set of token hashes of all
	// values of the attribute.
	Tokens []uint64
	// Freqs holds the occurrence count of each token, aligned with
	// Tokens (used by the TF-IDF representation).
	Freqs []int
	// Entropy is the Shannon entropy (bits) of the attribute's token
	// distribution — the information content used by BLAST to weight
	// blocking keys (Definition 3).
	Entropy float64
	// Count is the number of token occurrences observed (pre-dedup).
	Count int
}

// ExtractProfiles computes the attribute profiles and entropies of every
// attribute of the dataset. For clean-clean ER attributes of E1 and E2
// are kept distinct even when names coincide. Results are sorted by
// (source, name) for determinism.
func ExtractProfiles(ds *model.Dataset, tr text.Transform) []Profile {
	type acc struct {
		freq map[uint64]int
	}
	accs := make(map[Ref]*acc)

	scan := func(source int, c *model.Collection) {
		for i := range c.Profiles {
			for _, pair := range c.Profiles[i].Pairs {
				ref := Ref{Source: source, Name: pair.Name}
				a := accs[ref]
				if a == nil {
					a = &acc{freq: make(map[uint64]int)}
					accs[ref] = a
				}
				for _, tok := range tr.Terms(pair.Value) {
					a.freq[lsh.TokenHash(tok)]++
				}
			}
		}
	}
	scan(0, ds.E1)
	if ds.Kind == model.CleanClean {
		scan(1, ds.E2)
	}

	out := make([]Profile, 0, len(accs))
	for ref, a := range accs {
		toks := make([]uint64, 0, len(a.freq))
		count := 0
		for t, c := range a.freq {
			toks = append(toks, t)
			count += c
		}
		sort.Slice(toks, func(i, j int) bool { return toks[i] < toks[j] })
		freqs := make([]int, len(toks))
		for i, t := range toks {
			freqs[i] = a.freq[t]
		}
		out = append(out, Profile{
			Ref:    ref,
			Tokens: toks,
			Freqs:  freqs,
			// Entropy over the token-hash-ordered freqs, not the map:
			// the summation order must be a function of the data alone
			// for two runs over equal collections to agree bitwise.
			Entropy: stats.Entropy(freqs),
			Count:   count,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ref.Source != out[j].Ref.Source {
			return out[i].Ref.Source < out[j].Ref.Source
		}
		return out[i].Ref.Name < out[j].Ref.Name
	})
	return out
}

// Jaccard returns the Jaccard coefficient of two sorted unique hash sets:
// |A ∩ B| / |A ∪ B|. (Footnote 5 of the paper expresses the same quantity
// over binary vectors.) Empty-vs-anything is 0.
func Jaccard(a, b []uint64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}
