package attr

import (
	"math"
	"testing"

	"blast/internal/datasets"
	"blast/internal/model"
	"blast/internal/text"
)

// tfidfProfiles builds profiles with explicit frequencies.
func tfidfProfiles(rows []struct {
	src    int
	name   string
	tokens []string
	freqs  []int
}) []Profile {
	ps := make([]Profile, len(rows))
	for i, r := range rows {
		ps[i] = Profile{Ref: Ref{Source: r.src, Name: r.name}, Tokens: hashes(r.tokens...)}
		// hashes() sorts, so align freqs with sorted order by rebuilding.
		if r.freqs == nil {
			ps[i].Freqs = make([]int, len(ps[i].Tokens))
			for j := range ps[i].Freqs {
				ps[i].Freqs[j] = 1
			}
			ps[i].Count = len(ps[i].Tokens)
		}
	}
	return ps
}

func TestCosineIdenticalProfiles(t *testing.T) {
	ps := tfidfProfiles([]struct {
		src    int
		name   string
		tokens []string
		freqs  []int
	}{
		{0, "a", []string{"x", "y", "z"}, nil},
		{1, "b", []string{"x", "y", "z"}, nil},
	})
	view := buildTFIDF(ps)
	if got := view.cosine(&ps[0], &ps[1], 0, 1); math.Abs(got-1) > 1e-9 {
		t.Errorf("identical cosine = %v, want 1", got)
	}
}

func TestCosineDisjointProfiles(t *testing.T) {
	ps := tfidfProfiles([]struct {
		src    int
		name   string
		tokens []string
		freqs  []int
	}{
		{0, "a", []string{"x", "y"}, nil},
		{1, "b", []string{"p", "q"}, nil},
	})
	view := buildTFIDF(ps)
	if got := view.cosine(&ps[0], &ps[1], 0, 1); got != 0 {
		t.Errorf("disjoint cosine = %v, want 0", got)
	}
}

func TestTFIDFDiscountsUbiquitousTokens(t *testing.T) {
	// Four attributes all share "common"; a and b additionally share the
	// rare "signal" while c and d share nothing else. Under TF-IDF the
	// a-b similarity must exceed a-c (the ubiquitous token is
	// discounted); under binary Jaccard they'd be equal (1/3 each... they
	// are not equal here, so make the sets symmetric).
	ps := tfidfProfiles([]struct {
		src    int
		name   string
		tokens []string
		freqs  []int
	}{
		{0, "a", []string{"common", "signal", "ax"}, nil},
		{1, "b", []string{"common", "signal", "bx"}, nil},
		{0, "c", []string{"common", "cy", "cx"}, nil},
		{1, "d", []string{"common", "dy", "dx"}, nil},
	})
	// Binary Jaccard: sim(a,b) = 2/4 = .5, sim(a,d) = 1/5 = .2.
	view := buildTFIDF(ps)
	simAB := view.cosine(&ps[0], &ps[1], 0, 1)
	simAD := view.cosine(&ps[0], &ps[3], 0, 3)
	if simAB <= simAD {
		t.Fatalf("TF-IDF should rank shared-rare above shared-common: %v vs %v", simAB, simAD)
	}
	// The ubiquitous-only overlap must be discounted well below the
	// rare-token overlap, more than the binary ratio (.2/.5).
	if simAD/simAB > 0.4 {
		t.Errorf("common-token similarity not discounted enough: %v vs %v", simAD, simAB)
	}
}

func TestLMIWithTFIDFRepresentation(t *testing.T) {
	ds := datasets.PaperExample()
	profiles := ExtractProfiles(ds, text.NewTokenizer())
	cfg := DefaultConfig()
	cfg.Representation = TFIDF
	part := LMI(profiles, ds.Kind, cfg)
	// The name attributes must still cluster (TF-IDF preserves the
	// alignment signal).
	a, ok1 := part.ClusterOf(0, "FirstName")
	b, ok2 := part.ClusterOf(0, "full name")
	if !ok1 || !ok2 || a != b || a == GlueClusterID {
		t.Errorf("TF-IDF LMI lost the name cluster: %d vs %d", a, b)
	}
}

func TestExtractProfilesFillsFreqs(t *testing.T) {
	e := model.NewCollection("s")
	p := model.Profile{ID: "1"}
	p.Add("a", "x x y")
	e.Append(p)
	ds := &model.Dataset{Name: "d", Kind: model.Dirty, E1: e, Truth: model.NewGroundTruth()}
	ps := ExtractProfiles(ds, text.NewTokenizer())
	if len(ps) != 1 {
		t.Fatal("want one profile")
	}
	if len(ps[0].Freqs) != len(ps[0].Tokens) {
		t.Fatalf("freqs misaligned: %d vs %d", len(ps[0].Freqs), len(ps[0].Tokens))
	}
	total := 0
	saw2 := false
	for _, f := range ps[0].Freqs {
		total += f
		if f == 2 {
			saw2 = true
		}
	}
	if total != 3 || !saw2 {
		t.Errorf("freqs = %v, want counts {2,1}", ps[0].Freqs)
	}
}

func TestRepresentationString(t *testing.T) {
	if Binary.String() != "binary" || TFIDF.String() != "tfidf" {
		t.Error("Representation.String mismatch")
	}
}

func TestCosineEmptyProfile(t *testing.T) {
	ps := tfidfProfiles([]struct {
		src    int
		name   string
		tokens []string
		freqs  []int
	}{
		{0, "a", nil, nil},
		{1, "b", []string{"x"}, nil},
	})
	view := buildTFIDF(ps)
	if got := view.cosine(&ps[0], &ps[1], 0, 1); got != 0 {
		t.Errorf("empty cosine = %v, want 0", got)
	}
}
