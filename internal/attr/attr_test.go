package attr

import (
	"fmt"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"blast/internal/blocking"
	"blast/internal/datasets"
	"blast/internal/lsh"
	"blast/internal/model"
	"blast/internal/text"
)

func hashes(tokens ...string) []uint64 {
	hs := make([]uint64, len(tokens))
	for i, t := range tokens {
		hs[i] = lsh.TokenHash(t)
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	return hs
}

func TestJaccardBasics(t *testing.T) {
	a := hashes("x", "y", "z")
	b := hashes("y", "z", "w")
	if got := Jaccard(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Jaccard = %v, want 0.5", got)
	}
	if got := Jaccard(a, a); got != 1 {
		t.Errorf("self Jaccard = %v, want 1", got)
	}
	if got := Jaccard(a, nil); got != 0 {
		t.Errorf("empty Jaccard = %v, want 0", got)
	}
	if got := Jaccard(hashes("p"), hashes("q")); got != 0 {
		t.Errorf("disjoint Jaccard = %v, want 0", got)
	}
}

func TestJaccardProperties(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		mk := func(vs []uint16) []uint64 {
			m := make(map[uint64]bool)
			for _, v := range vs {
				m[uint64(v)] = true
			}
			out := make([]uint64, 0, len(m))
			for v := range m {
				out = append(out, v)
			}
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out
		}
		a, b := mk(xs), mk(ys)
		s1, s2 := Jaccard(a, b), Jaccard(b, a)
		if s1 != s2 {
			return false // symmetry
		}
		if s1 < 0 || s1 > 1 {
			return false // bounds
		}
		if len(a) > 0 && Jaccard(a, a) != 1 {
			return false // identity
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExtractProfilesPaperExample(t *testing.T) {
	ds := datasets.PaperExample()
	ps := ExtractProfiles(ds, text.NewTokenizer())
	// 17 distinct attribute names in Figure 1a ("Loc" and "loc" differ).
	if len(ps) != 17 {
		t.Fatalf("extracted %d attribute profiles, want 17", len(ps))
	}
	// Sorted by (source, name).
	for i := 1; i < len(ps); i++ {
		if ps[i-1].Ref.Name >= ps[i].Ref.Name {
			t.Fatal("profiles not sorted by name")
		}
	}
	byName := make(map[string]Profile)
	for _, p := range ps {
		byName[p.Ref.Name] = p
	}
	name := byName["Name"] // "John Abram Jr"
	if len(name.Tokens) != 3 || name.Count != 3 {
		t.Errorf("Name profile tokens=%d count=%d, want 3/3", len(name.Tokens), name.Count)
	}
	// Uniform 3 tokens: entropy log2(3).
	if math.Abs(name.Entropy-math.Log2(3)) > 1e-12 {
		t.Errorf("Name entropy = %v, want log2(3)", name.Entropy)
	}
	// "year" has values 1985 and 85: two tokens, entropy 1 bit.
	year := byName["year"]
	if math.Abs(year.Entropy-1) > 1e-12 {
		t.Errorf("year entropy = %v, want 1", year.Entropy)
	}
}

func TestExtractProfilesCleanCleanSeparatesSources(t *testing.T) {
	e1 := model.NewCollection("A")
	p := model.Profile{ID: "1"}
	p.Add("name", "alice")
	e1.Append(p)
	e2 := model.NewCollection("B")
	q := model.Profile{ID: "2"}
	q.Add("name", "bob")
	e2.Append(q)
	ds := &model.Dataset{Name: "d", Kind: model.CleanClean, E1: e1, E2: e2, Truth: model.NewGroundTruth()}
	ps := ExtractProfiles(ds, text.NewTokenizer())
	if len(ps) != 2 {
		t.Fatalf("want two profiles for same-named attributes of different sources, got %d", len(ps))
	}
	if ps[0].Ref.Source == ps[1].Ref.Source {
		t.Error("sources not distinguished")
	}
}

// mkProfiles builds synthetic attribute profiles from (source, name, tokens).
func mkProfiles(rows []struct {
	src    int
	name   string
	tokens []string
}) []Profile {
	ps := make([]Profile, len(rows))
	for i, r := range rows {
		ps[i] = Profile{Ref: Ref{Source: r.src, Name: r.name}, Tokens: hashes(r.tokens...), Entropy: 1}
	}
	return ps
}

func TestLMIClustersSimilarAttributes(t *testing.T) {
	rows := []struct {
		src    int
		name   string
		tokens []string
	}{
		{0, "name", []string{"alice", "bob", "carol", "dave", "ellen", "frank"}},
		{0, "street", []string{"main", "oak", "pine", "elm", "maple"}},
		{1, "full_name", []string{"alice", "bob", "carol", "dave", "ellen", "gina"}},
		{1, "location", []string{"main", "oak", "pine", "elm", "birch"}},
		{1, "isbn", []string{"111", "222", "333"}},
	}
	ps := mkProfiles(rows)
	part := LMI(ps, model.CleanClean, DefaultConfig())

	nameC, ok1 := part.ClusterOf(0, "name")
	fullC, ok2 := part.ClusterOf(1, "full_name")
	if !ok1 || !ok2 || nameC != fullC || nameC == GlueClusterID {
		t.Errorf("name/full_name clusters: %d/%d (%v,%v), want same non-glue", nameC, fullC, ok1, ok2)
	}
	stC, _ := part.ClusterOf(0, "street")
	locC, _ := part.ClusterOf(1, "location")
	if stC != locC || stC == GlueClusterID || stC == nameC {
		t.Errorf("street/location clusters: %d/%d, want same non-glue distinct from names", stC, locC)
	}
	isbnC, ok := part.ClusterOf(1, "isbn")
	if !ok || isbnC != GlueClusterID {
		t.Errorf("isbn cluster = %d (%v), want glue", isbnC, ok)
	}
	if part.NumClusters() != 3 {
		t.Errorf("NumClusters = %d, want 3 (2 + glue)", part.NumClusters())
	}
}

func TestLMIRequiresMutualCandidates(t *testing.T) {
	// A == B identical; C half-overlapping with both. C's best is A/B but
	// A and B prefer each other, so LMI must leave C out; AC chains it in.
	rows := []struct {
		src    int
		name   string
		tokens []string
	}{
		{0, "A", []string{"t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8"}},
		{1, "B", []string{"t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8"}},
		{0, "C", []string{"t1", "t2", "t3", "t4", "u1", "u2", "u3", "u4"}},
	}
	ps := mkProfiles(rows)

	lmi := LMI(ps, model.CleanClean, DefaultConfig())
	aC, _ := lmi.ClusterOf(0, "A")
	bC, _ := lmi.ClusterOf(1, "B")
	cC, _ := lmi.ClusterOf(0, "C")
	if aC != bC || aC == GlueClusterID {
		t.Errorf("LMI should cluster A,B together (got %d,%d)", aC, bC)
	}
	if cC != GlueClusterID {
		t.Errorf("LMI put C in cluster %d, want glue (mutuality violated)", cC)
	}

	ac := AC(ps, model.CleanClean, DefaultConfig())
	aC2, _ := ac.ClusterOf(0, "A")
	cC2, _ := ac.ClusterOf(0, "C")
	if aC2 != cC2 {
		t.Errorf("AC should chain C into A's cluster (got %d vs %d)", aC2, cC2)
	}
}

func TestLMIGlueDisabledDropsAttributes(t *testing.T) {
	rows := []struct {
		src    int
		name   string
		tokens []string
	}{
		{0, "a", []string{"x", "y"}},
		{1, "b", []string{"x", "y"}},
		{0, "lonely", []string{"zzz"}},
	}
	ps := mkProfiles(rows)
	cfg := DefaultConfig()
	cfg.Glue = false
	part := LMI(ps, model.CleanClean, cfg)
	if _, ok := part.ClusterOf(0, "lonely"); ok {
		t.Error("glue disabled: unclustered attribute should not participate")
	}
	if _, ok := part.ClusterOf(0, "a"); !ok {
		t.Error("clustered attribute must participate")
	}
}

func TestLMIPaperExampleDisambiguatesAbram(t *testing.T) {
	// Running real LMI on the Figure 1 profiles reproduces Figure 2a: the
	// name attributes of p1/p3 and the address attributes of p2/p4 fall
	// in different clusters, splitting the "abram" block into {p1,p3} and
	// {p2,p4}.
	ds := datasets.PaperExample()
	ps := ExtractProfiles(ds, text.NewTokenizer())
	part := LMI(ps, ds.Kind, DefaultConfig())

	nameC, ok1 := part.ClusterOf(0, "Name")   // p1: "John Abram Jr"
	name2C, ok2 := part.ClusterOf(0, "name2") // p3: "Abram"
	mailC, ok3 := part.ClusterOf(0, "mail")   // p2: "Abram st. 30 NY"
	locC, ok4 := part.ClusterOf(0, "loc")     // p4: "Abram street NY"
	if !ok1 || !ok2 || !ok3 || !ok4 {
		t.Fatal("paper attributes missing from partitioning")
	}
	if nameC != name2C {
		t.Errorf("Name and name2 in clusters %d vs %d, want same", nameC, name2C)
	}
	if mailC != locC {
		t.Errorf("mail and loc in clusters %d vs %d, want same", mailC, locC)
	}
	if nameC == mailC {
		t.Error("name cluster and address cluster must differ for Abram disambiguation")
	}

	// The split blocks of Figure 2a.
	c := blocking.Build(ds, text.NewTokenizer(), part.KeyFunc())
	var abramBlocks [][]int32
	for i := range c.Blocks {
		key := c.Blocks[i].Key
		if len(key) >= 5 && key[:5] == "abram" {
			abramBlocks = append(abramBlocks, c.Blocks[i].P1)
		}
	}
	if len(abramBlocks) != 2 {
		t.Fatalf("abram split into %d blocks, want 2", len(abramBlocks))
	}
	members := func(b []int32) string { return fmt.Sprint(b) }
	got := map[string]bool{}
	for _, b := range abramBlocks {
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		got[members(b)] = true
	}
	if !got["[0 2]"] || !got["[1 3]"] {
		t.Errorf("abram blocks = %v, want {p1,p3} and {p2,p4}", got)
	}
}

func TestLMIClustersAreDisjointProperty(t *testing.T) {
	ds := datasets.PaperExample()
	ps := ExtractProfiles(ds, text.NewTokenizer())
	part := LMI(ps, ds.Kind, DefaultConfig())
	seen := make(map[Ref]int)
	for _, c := range part.Clusters {
		for _, m := range c.Members {
			if prev, dup := seen[m]; dup {
				t.Errorf("attribute %v in clusters %d and %d", m, prev, c.ID)
			}
			seen[m] = c.ID
		}
	}
	// Glue enabled: every attribute must be assigned.
	if len(seen) != len(ps) {
		t.Errorf("assigned %d of %d attributes", len(seen), len(ps))
	}
}

func TestPartitioningEntropy(t *testing.T) {
	ps := []Profile{
		{Ref: Ref{0, "a"}, Tokens: hashes("x", "y"), Entropy: 3.5},
		{Ref: Ref{1, "b"}, Tokens: hashes("x", "y"), Entropy: 1.5},
		{Ref: Ref{0, "c"}, Tokens: hashes("qq"), Entropy: 2.0},
	}
	part := LMI(ps, model.CleanClean, DefaultConfig())
	id, ok := part.ClusterOf(0, "a")
	if !ok || id == GlueClusterID {
		t.Fatalf("a not clustered: %d %v", id, ok)
	}
	// Aggregate entropy = mean(3.5, 1.5) = 2.5.
	if got := part.Entropy(id); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("cluster entropy = %v, want 2.5", got)
	}
	// Glue entropy = 2.0 (single member).
	if got := part.Entropy(GlueClusterID); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("glue entropy = %v, want 2.0", got)
	}
	// Out-of-range ids degrade to 1.
	if part.Entropy(99) != 1 || part.Entropy(-1) != 1 {
		t.Error("unknown cluster entropy should be 1")
	}
}

func TestKeyFuncQualifiesTokens(t *testing.T) {
	ps := []Profile{
		{Ref: Ref{0, "a"}, Tokens: hashes("x"), Entropy: 2},
		{Ref: Ref{1, "b"}, Tokens: hashes("x"), Entropy: 4},
	}
	part := LMI(ps, model.CleanClean, DefaultConfig())
	kf := part.KeyFunc()
	k1, h1, ok1 := kf(0, "a", "tok")
	k2, h2, ok2 := kf(1, "b", "tok")
	if !ok1 || !ok2 {
		t.Fatal("clustered attributes must emit keys")
	}
	if k1 != k2 {
		t.Errorf("same-cluster keys differ: %q vs %q", k1, k2)
	}
	if h1 != 3 || h2 != 3 {
		t.Errorf("key entropies = %v,%v, want aggregate 3", h1, h2)
	}
	if _, _, ok := kf(0, "unknown", "tok"); ok {
		t.Error("unknown attribute should not emit keys")
	}
}

func TestLSHStepMatchesExhaustiveOnSimilarPairs(t *testing.T) {
	// 30 attribute pairs with ~0.8 similarity: LSH at threshold ~0.5 must
	// recover the same partitioning as the exhaustive scan.
	var rows []struct {
		src    int
		name   string
		tokens []string
	}
	for i := 0; i < 30; i++ {
		base := make([]string, 10)
		for j := range base {
			base[j] = fmt.Sprintf("t%02d_%d", i, j)
		}
		variant := append([]string{fmt.Sprintf("extra%d", i)}, base[:9]...)
		rows = append(rows, struct {
			src    int
			name   string
			tokens []string
		}{0, fmt.Sprintf("a%02d", i), base})
		rows = append(rows, struct {
			src    int
			name   string
			tokens []string
		}{1, fmt.Sprintf("b%02d", i), variant})
	}
	ps := mkProfiles(rows)

	exact := LMI(ps, model.CleanClean, DefaultConfig())
	cfgLSH := DefaultConfig()
	cfgLSH.LSH = &LSHConfig{Rows: 5, Bands: 30, Seed: 7}
	approx := LMI(ps, model.CleanClean, cfgLSH)

	if exact.NumClusters() != approx.NumClusters() {
		t.Fatalf("clusters: exhaustive %d vs LSH %d", exact.NumClusters(), approx.NumClusters())
	}
	for _, p := range ps {
		e, _ := exact.ClusterOf(p.Ref.Source, p.Ref.Name)
		a, _ := approx.ClusterOf(p.Ref.Source, p.Ref.Name)
		eg := e == GlueClusterID
		ag := a == GlueClusterID
		if eg != ag {
			t.Errorf("attribute %v: glue status differs (exact %d, lsh %d)", p.Ref, e, a)
		}
	}
}

func TestLSHStepPrunesLowSimilarityPairs(t *testing.T) {
	// Two attributes with Jaccard ~0.18: a high LSH threshold should make
	// them invisible to LMI even though the exhaustive scan clusters them
	// (their best match is each other).
	rows := []struct {
		src    int
		name   string
		tokens []string
	}{
		{0, "a", []string{"1", "2", "3", "4", "5", "6", "7", "8", "9", "10"}},
		{1, "b", []string{"1", "2", "3", "x4", "x5", "x6", "x7", "x8", "x9", "x10"}},
	}
	ps := mkProfiles(rows)
	exact := LMI(ps, model.CleanClean, DefaultConfig())
	if a, _ := exact.ClusterOf(0, "a"); a == GlueClusterID {
		t.Fatal("precondition: exhaustive LMI should cluster the pair")
	}
	cfg := DefaultConfig()
	cfg.LSH = &LSHConfig{Rows: 10, Bands: 10, Seed: 3} // threshold ~0.79
	approx := LMI(ps, model.CleanClean, cfg)
	if a, _ := approx.ClusterOf(0, "a"); a != GlueClusterID {
		t.Errorf("LSH threshold ~0.79 should prune the 0.18-similar pair, got cluster %d", a)
	}
}

func TestMinSimFloor(t *testing.T) {
	rows := []struct {
		src    int
		name   string
		tokens []string
	}{
		{0, "a", []string{"1", "2", "3", "4"}},
		{1, "b", []string{"1", "2", "x", "y"}}, // J = 2/6 = 0.33
	}
	ps := mkProfiles(rows)
	cfg := DefaultConfig()
	cfg.MinSim = 0.5
	part := LMI(ps, model.CleanClean, cfg)
	if a, _ := part.ClusterOf(0, "a"); a != GlueClusterID {
		t.Errorf("MinSim floor should prune the pair, got cluster %d", a)
	}
}

func TestACDirtyKind(t *testing.T) {
	rows := []struct {
		src    int
		name   string
		tokens []string
	}{
		{0, "name", []string{"alice", "bob", "carol"}},
		{0, "alias", []string{"alice", "bob", "dave"}},
		{0, "price", []string{"10", "20"}},
	}
	ps := mkProfiles(rows)
	part := AC(ps, model.Dirty, DefaultConfig())
	a, _ := part.ClusterOf(0, "name")
	b, _ := part.ClusterOf(0, "alias")
	if a != b || a == GlueClusterID {
		t.Errorf("dirty AC should cluster name/alias: %d vs %d", a, b)
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(6)
	uf.union(0, 1)
	uf.union(2, 3)
	uf.union(1, 2)
	if uf.find(0) != uf.find(3) {
		t.Error("union chain broken")
	}
	if uf.find(4) == uf.find(0) || uf.find(4) == uf.find(5) {
		t.Error("separate elements merged")
	}
}

func TestDefaultConfigAlphaClamp(t *testing.T) {
	ps := []Profile{
		{Ref: Ref{0, "a"}, Tokens: hashes("x", "y")},
		{Ref: Ref{1, "b"}, Tokens: hashes("x", "y")},
	}
	cfg := Config{Alpha: -3, Glue: true} // invalid alpha -> default 0.9
	part := LMI(ps, model.CleanClean, cfg)
	a, _ := part.ClusterOf(0, "a")
	b, _ := part.ClusterOf(1, "b")
	if a != b || a == GlueClusterID {
		t.Error("clamped alpha should still cluster identical attributes")
	}
}

func TestPartitioningString(t *testing.T) {
	ds := datasets.PaperExample()
	ps := ExtractProfiles(ds, text.NewTokenizer())
	part := LMI(ps, ds.Kind, DefaultConfig())
	if part.String() == "" {
		t.Error("String should render")
	}
}

func TestLMIParallelWorkersIdentical(t *testing.T) {
	ds := datasets.MOV(0.01, 7)
	profiles := ExtractProfiles(ds, text.NewTokenizer())
	serial := LMI(profiles, ds.Kind, DefaultConfig())
	cfg := DefaultConfig()
	cfg.Workers = 4
	par := LMI(profiles, ds.Kind, cfg)
	if serial.NumClusters() != par.NumClusters() {
		t.Fatalf("workers changed clusters: %d vs %d", serial.NumClusters(), par.NumClusters())
	}
	for _, p := range profiles {
		a, okA := serial.ClusterOf(p.Ref.Source, p.Ref.Name)
		b, okB := par.ClusterOf(p.Ref.Source, p.Ref.Name)
		if okA != okB || a != b {
			t.Fatalf("attribute %v assigned differently: %d/%v vs %d/%v", p.Ref, a, okA, b, okB)
		}
	}
}
