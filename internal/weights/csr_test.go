package weights

import (
	"testing"

	"blast/internal/blocking"
	"blast/internal/datasets"
	"blast/internal/graph"
	"blast/internal/model"
	"blast/internal/stats"
)

// checkApplyCSRMatchesApply weights both representations of a collection
// and asserts bit-identical per-edge weights, with each edge's weight
// mirrored across its two CSR entries.
func checkApplyCSRMatchesApply(t *testing.T, c *blocking.Collection, s Scheme) {
	t.Helper()
	g := graph.Build(c)
	s.Apply(g)
	csr := graph.BuildCSR(c)
	s.ApplyCSR(csr)
	for n := 0; n < csr.NumProfiles; n++ {
		for p := csr.Offsets[n]; p < csr.Offsets[n+1]; p++ {
			v := int(csr.Neighbors[p])
			e := g.EdgeBetween(n, v)
			if e == nil {
				t.Fatalf("%s: edge (%d,%d) missing", s.Name(), n, v)
			}
			if csr.Weights[p] != e.Weight {
				t.Fatalf("%s: weight(%d,%d) = %v, want %v", s.Name(), n, v, csr.Weights[p], e.Weight)
			}
		}
	}
}

func TestApplyCSRMatchesApplyAllSchemes(t *testing.T) {
	paper := blocking.TokenBlocking(datasets.PaperExample())
	rng := stats.NewRNG(11)
	random := blocking.RandomCollection(rng, model.CleanClean, 80, 50)
	for _, c := range []*blocking.Collection{paper, random} {
		for _, kind := range []Kind{CBS, ECBS, ARCS, JS, EJS, ChiSquared} {
			checkApplyCSRMatchesApply(t, c, Scheme{Kind: kind})
			checkApplyCSRMatchesApply(t, c, Scheme{Kind: kind, Entropy: true})
		}
	}
}

func TestWeigherMatchesApplyPerEdge(t *testing.T) {
	c := blocking.TokenBlocking(datasets.PaperExample())
	g := graph.Build(c)
	s := Blast()
	s.Apply(g)
	w := s.Weigher(g.NumEdges(), g.TotalBlocks)
	for i := range g.Edges {
		e := &g.Edges[i]
		got := w.Weight(e.Common,
			g.BlockCounts[e.U], g.BlockCounts[e.V],
			g.Degrees[e.U], g.Degrees[e.V],
			e.ARCS, e.EntropySum)
		if got != e.Weight {
			t.Errorf("edge (%d,%d): Weigher = %v, Apply = %v", e.U, e.V, got, e.Weight)
		}
	}
}

func TestWeigherPanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown kind should panic")
		}
	}()
	Scheme{Kind: Kind(42)}.Weigher(1, 1).Weight(1, 1, 1, 1, 1, 0, 0)
}
