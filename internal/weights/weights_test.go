package weights

import (
	"math"
	"testing"

	"blast/internal/blocking"
	"blast/internal/datasets"
	"blast/internal/graph"
	"blast/internal/model"
	"blast/internal/stats"
)

func paperGraph() *graph.Graph {
	return graph.Build(blocking.TokenBlocking(datasets.PaperExample()))
}

func edge(t *testing.T, g *graph.Graph, u, v int) *graph.Edge {
	t.Helper()
	e := g.EdgeBetween(u, v)
	if e == nil {
		t.Fatalf("edge (%d,%d) missing", u, v)
	}
	return e
}

func TestCBSMatchesFigure1c(t *testing.T) {
	g := paperGraph()
	Scheme{Kind: CBS}.Apply(g)
	want := map[[2]int]float64{
		{0, 2}: 4, {1, 3}: 4, {0, 3}: 3, {1, 2}: 4, {0, 1}: 1, {2, 3}: 1,
	}
	for pair, w := range want {
		if got := edge(t, g, pair[0], pair[1]).Weight; got != w {
			t.Errorf("CBS(%v) = %v, want %v", pair, got, w)
		}
	}
}

func TestJSKnownValue(t *testing.T) {
	g := paperGraph()
	Scheme{Kind: JS}.Apply(g)
	// p1-p3: |B_uv|=4, |B_u|=6, |B_v|=7 -> 4/(6+7-4) = 4/9.
	if got := edge(t, g, 0, 2).Weight; math.Abs(got-4.0/9) > 1e-12 {
		t.Errorf("JS(p1,p3) = %v, want 4/9", got)
	}
}

func TestECBSKnownValue(t *testing.T) {
	g := paperGraph()
	Scheme{Kind: ECBS}.Apply(g)
	want := 4 * math.Log(12.0/6) * math.Log(12.0/7)
	if got := edge(t, g, 0, 2).Weight; math.Abs(got-want) > 1e-12 {
		t.Errorf("ECBS(p1,p3) = %v, want %v", got, want)
	}
}

func TestARCSUsesAccumulatedMass(t *testing.T) {
	g := paperGraph()
	Scheme{Kind: ARCS}.Apply(g)
	want := 3 + 1.0/6 // car, main, jr (1 comparison each) + abram (6)
	if got := edge(t, g, 0, 2).Weight; math.Abs(got-want) > 1e-12 {
		t.Errorf("ARCS(p1,p3) = %v, want %v", got, want)
	}
}

func TestEJSDiscountsHighDegree(t *testing.T) {
	g := paperGraph()
	Scheme{Kind: EJS}.Apply(g)
	// All nodes have degree 3 and |E|=6: factor log(2)^2 on each JS.
	jsG := paperGraph()
	Scheme{Kind: JS}.Apply(jsG)
	f := math.Log(2) * math.Log(2)
	for i := range g.Edges {
		want := jsG.Edges[i].Weight * f
		if math.Abs(g.Edges[i].Weight-want) > 1e-12 {
			t.Errorf("EJS edge %d = %v, want %v", i, g.Edges[i].Weight, want)
		}
	}
}

func TestChiSquaredMatchesContingency(t *testing.T) {
	g := paperGraph()
	Scheme{Kind: ChiSquared}.Apply(g)
	// p1-p3 contingency (Table 1): common=4, |B_u|=6, |B_v|=7, n=12.
	want := stats.NewContingency(4, 6, 7, 12).PositiveAssociation()
	if got := edge(t, g, 0, 2).Weight; math.Abs(got-want) > 1e-12 {
		t.Errorf("chi2(p1,p3) = %v, want %v", got, want)
	}
	if want <= 0 {
		t.Fatal("sanity: chi2 of associated pair should be positive")
	}
}

func TestChiSquaredRanksMatchesAboveNonMatches(t *testing.T) {
	g := paperGraph()
	Scheme{Kind: ChiSquared}.Apply(g)
	match1 := edge(t, g, 0, 2).Weight // p1-p3 (true match)
	match2 := edge(t, g, 1, 3).Weight // p2-p4 (true match)
	super1 := edge(t, g, 0, 1).Weight // p1-p2
	super2 := edge(t, g, 2, 3).Weight // p3-p4
	if match1 <= super1 || match2 <= super2 {
		t.Errorf("chi2 should rank matches above superfluous pairs: %v,%v vs %v,%v",
			match1, match2, super1, super2)
	}
	// On the Figure 1 example the one-sided statistic zeroes every
	// superfluous edge: the only positively associated pairs are the
	// true matches.
	for _, pair := range [][2]int{{0, 1}, {2, 3}, {0, 3}, {1, 2}} {
		if w := edge(t, g, pair[0], pair[1]).Weight; w != 0 {
			t.Errorf("superfluous edge %v has weight %v, want 0", pair, w)
		}
	}
}

func TestEntropyScaling(t *testing.T) {
	// Hand-built two-block collection with distinct entropies.
	c := &blocking.Collection{
		Kind:        model.Dirty,
		NumProfiles: 4,
		Blocks: []blocking.Block{
			{Key: "a", P1: []int32{0, 1}, Entropy: 3.0},
			{Key: "b", P1: []int32{2, 3}, Entropy: 0.5},
			{Key: "c", P1: []int32{0, 1, 2}, Entropy: 1.0},
		},
	}
	g := graph.Build(c)
	Scheme{Kind: CBS}.Apply(g)
	base01 := g.EdgeBetween(0, 1).Weight
	base23 := g.EdgeBetween(2, 3).Weight

	Scheme{Kind: CBS, Entropy: true}.Apply(g)
	h01 := g.EdgeBetween(0, 1).Weight
	h23 := g.EdgeBetween(2, 3).Weight

	// Edge (0,1): blocks a and c -> mean entropy 2.0; (2,3): block b -> 0.5.
	if math.Abs(h01-base01*2.0) > 1e-12 {
		t.Errorf("entropy-scaled (0,1) = %v, want %v", h01, base01*2.0)
	}
	if math.Abs(h23-base23*0.5) > 1e-12 {
		t.Errorf("entropy-scaled (2,3) = %v, want %v", h23, base23*0.5)
	}
}

func TestBlastSchemeIsChiSquaredTimesEntropy(t *testing.T) {
	s := Blast()
	if s.Kind != ChiSquared || !s.Entropy {
		t.Errorf("Blast() = %+v", s)
	}
	if s.Name() != "chi2*h" {
		t.Errorf("Blast().Name() = %q", s.Name())
	}
}

func TestAllSchemesNonNegativeAndFinite(t *testing.T) {
	g := paperGraph()
	kinds := append(Classic(), ChiSquared)
	for _, k := range kinds {
		for _, entropy := range []bool{false, true} {
			Scheme{Kind: k, Entropy: entropy}.Apply(g)
			for i := range g.Edges {
				w := g.Edges[i].Weight
				if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
					t.Errorf("%v entropy=%v edge %d weight %v", k, entropy, i, w)
				}
			}
		}
	}
}

func TestSchemeNames(t *testing.T) {
	if (Scheme{Kind: JS}).Name() != "JS" {
		t.Error("JS name")
	}
	if (Scheme{Kind: JS, Entropy: true}).Name() != "JS*h" {
		t.Error("JS*h name")
	}
	names := map[Kind]string{CBS: "CBS", ECBS: "ECBS", ARCS: "ARCS", JS: "JS", EJS: "EJS", ChiSquared: "chi2"}
	for k, n := range names {
		if k.String() != n {
			t.Errorf("%v.String() = %q, want %q", int(k), k.String(), n)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestApplyPanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown kind should panic")
		}
	}()
	g := paperGraph()
	Scheme{Kind: Kind(99)}.Apply(g)
}

func TestSafeLog(t *testing.T) {
	if safeLog(0.5) != 0 || safeLog(1) != 0 {
		t.Error("safeLog should clamp x <= 1 to 0")
	}
	if math.Abs(safeLog(math.E)-1) > 1e-12 {
		t.Error("safeLog(e) != 1")
	}
}

func TestClassicList(t *testing.T) {
	if len(Classic()) != 5 {
		t.Errorf("Classic() has %d schemes, want 5", len(Classic()))
	}
}
