// Package weights implements the edge-weighting schemes of graph-based
// meta-blocking: the five classic schemes of Papadakis et al. (ARCS, CBS,
// ECBS, JS, EJS) and BLAST's chi-squared weighting scaled by the
// aggregate entropy of the shared blocking keys (Section 3.3.1 of the
// paper). Every scheme can optionally be multiplied by h(B_uv), which is
// how the paper's "wsh" ablation (classic schemes + entropy) is obtained.
package weights

import (
	"fmt"
	"math"

	"blast/internal/graph"
	"blast/internal/stats"
)

// Kind enumerates the base weighting functions.
type Kind int

const (
	// CBS (Common Blocks Scheme) counts the blocks shared by the two
	// profiles: w = |B_uv|.
	CBS Kind = iota
	// ECBS (Enhanced CBS) discounts profiles that appear in many blocks:
	// w = |B_uv| * log(|B|/|B_u|) * log(|B|/|B_v|).
	ECBS
	// ARCS (Aggregate Reciprocal Comparisons Scheme) rewards small
	// blocks: w = sum over shared blocks of 1/||b||.
	ARCS
	// JS weighs by the Jaccard coefficient of the profiles' block sets:
	// w = |B_uv| / (|B_u| + |B_v| - |B_uv|).
	JS
	// EJS (Enhanced JS) additionally discounts high-degree nodes:
	// w = JS * log(|E|/|v_u|) * log(|E|/|v_v|), |E| = number of edges.
	EJS
	// ChiSquared is BLAST's base weight: Pearson's chi-squared statistic
	// of the profiles' co-occurrence contingency table (Table 1).
	ChiSquared
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case CBS:
		return "CBS"
	case ECBS:
		return "ECBS"
	case ARCS:
		return "ARCS"
	case JS:
		return "JS"
	case EJS:
		return "EJS"
	case ChiSquared:
		return "chi2"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Classic lists the five traditional schemes compared in the paper's
// Tables 4-5 (their rows average over these).
func Classic() []Kind { return []Kind{ARCS, CBS, ECBS, JS, EJS} }

// Scheme is a configured weighting: a base kind, optionally scaled by the
// edge's aggregate entropy h(B_uv).
type Scheme struct {
	Kind    Kind
	Entropy bool
}

// Blast returns the paper's weighting: chi-squared scaled by entropy.
func Blast() Scheme { return Scheme{Kind: ChiSquared, Entropy: true} }

// Name renders e.g. "chi2*h" or "JS".
func (s Scheme) Name() string {
	if s.Entropy {
		return s.Kind.String() + "*h"
	}
	return s.Kind.String()
}

// Apply computes the weight of every edge of g in place.
func (s Scheme) Apply(g *graph.Graph) {
	numEdges := float64(g.NumEdges())
	totalBlocks := float64(g.TotalBlocks)
	for i := range g.Edges {
		e := &g.Edges[i]
		bu := float64(g.BlockCounts[e.U])
		bv := float64(g.BlockCounts[e.V])
		common := float64(e.Common)
		var w float64
		switch s.Kind {
		case CBS:
			w = common
		case ECBS:
			w = common * safeLog(totalBlocks/bu) * safeLog(totalBlocks/bv)
		case ARCS:
			w = e.ARCS
		case JS:
			if d := bu + bv - common; d > 0 {
				w = common / d
			}
		case EJS:
			var js float64
			if d := bu + bv - common; d > 0 {
				js = common / d
			}
			du := float64(g.Degrees[e.U])
			dv := float64(g.Degrees[e.V])
			w = js * safeLog(numEdges/du) * safeLog(numEdges/dv)
		case ChiSquared:
			tab := stats.NewContingency(int(e.Common), int(g.BlockCounts[e.U]), int(g.BlockCounts[e.V]), g.TotalBlocks)
			w = tab.PositiveAssociation()
		default:
			panic(fmt.Sprintf("weights: unknown kind %d", int(s.Kind)))
		}
		if s.Entropy {
			w *= e.EntropyMean()
		}
		e.Weight = w
	}
}

// safeLog returns log(x) clamped to 0 for x <= 1, keeping the
// ECBS/EJS discount factors non-negative on degenerate inputs (profiles
// appearing in every block, nodes adjacent to every edge).
func safeLog(x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Log(x)
}
