// Package weights implements the edge-weighting schemes of graph-based
// meta-blocking: the five classic schemes of Papadakis et al. (ARCS, CBS,
// ECBS, JS, EJS) and BLAST's chi-squared weighting scaled by the
// aggregate entropy of the shared blocking keys (Section 3.3.1 of the
// paper). Every scheme can optionally be multiplied by h(B_uv), which is
// how the paper's "wsh" ablation (classic schemes + entropy) is obtained.
package weights

import (
	"fmt"
	"math"

	"blast/internal/graph"
	"blast/internal/stats"
)

// Kind enumerates the base weighting functions.
type Kind int

const (
	// CBS (Common Blocks Scheme) counts the blocks shared by the two
	// profiles: w = |B_uv|.
	CBS Kind = iota
	// ECBS (Enhanced CBS) discounts profiles that appear in many blocks:
	// w = |B_uv| * log(|B|/|B_u|) * log(|B|/|B_v|).
	ECBS
	// ARCS (Aggregate Reciprocal Comparisons Scheme) rewards small
	// blocks: w = sum over shared blocks of 1/||b||.
	ARCS
	// JS weighs by the Jaccard coefficient of the profiles' block sets:
	// w = |B_uv| / (|B_u| + |B_v| - |B_uv|).
	JS
	// EJS (Enhanced JS) additionally discounts high-degree nodes:
	// w = JS * log(|E|/|v_u|) * log(|E|/|v_v|), |E| = number of edges.
	EJS
	// ChiSquared is BLAST's base weight: Pearson's chi-squared statistic
	// of the profiles' co-occurrence contingency table (Table 1).
	ChiSquared
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case CBS:
		return "CBS"
	case ECBS:
		return "ECBS"
	case ARCS:
		return "ARCS"
	case JS:
		return "JS"
	case EJS:
		return "EJS"
	case ChiSquared:
		return "chi2"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Classic lists the five traditional schemes compared in the paper's
// Tables 4-5 (their rows average over these).
func Classic() []Kind { return []Kind{ARCS, CBS, ECBS, JS, EJS} }

// Scheme is a configured weighting: a base kind, optionally scaled by the
// edge's aggregate entropy h(B_uv).
type Scheme struct {
	Kind    Kind
	Entropy bool
}

// Blast returns the paper's weighting: chi-squared scaled by entropy.
func Blast() Scheme { return Scheme{Kind: ChiSquared, Entropy: true} }

// The incremental reweighting path (blast.Index.Insert) recomputes only
// the edges whose weight inputs changed; these predicates declare which
// graph-global inputs each scheme consumes, i.e. which collection-level
// changes invalidate every edge at once.

// UsesTotalBlocks reports whether the scheme's per-edge weight depends on
// |B|, the collection's block count: a changed |B| (new blocks) changes
// every edge weight.
func (s Scheme) UsesTotalBlocks() bool { return s.Kind == ECBS || s.Kind == ChiSquared }

// UsesEdgeCount reports whether the scheme's per-edge weight depends on
// |E|, the blocking graph's edge count: any structural change then
// changes every edge weight.
func (s Scheme) UsesEdgeCount() bool { return s.Kind == EJS }

// UsesARCS reports whether the scheme consumes the per-edge ARCS mass,
// which shifts for every pair inside a block that grew (1/||b|| changed).
func (s Scheme) UsesARCS() bool { return s.Kind == ARCS }

// Name renders e.g. "chi2*h" or "JS".
func (s Scheme) Name() string {
	if s.Entropy {
		return s.Kind.String() + "*h"
	}
	return s.Kind.String()
}

// Weigher computes single-edge weights for a scheme over fixed
// graph-level totals. Both the edge-list engine (Scheme.Apply) and the
// node-centric engine (Scheme.ApplyCSR) funnel every edge through the
// same Weigher, so the two representations carry bit-identical weights.
type Weigher struct {
	scheme         Scheme
	numEdges       float64
	totalBlocks    float64
	totalBlocksInt int
}

// Weigher returns the per-edge weight function of the scheme for a graph
// with the given edge and block totals.
func (s Scheme) Weigher(numEdges, totalBlocks int) Weigher {
	return Weigher{
		scheme:         s,
		numEdges:       float64(numEdges),
		totalBlocks:    float64(totalBlocks),
		totalBlocksInt: totalBlocks,
	}
}

// Weight computes the weight of the edge (u, v) from its accumulators:
// common = |B_uv|, bu/bv = |B_u|/|B_v|, du/dv = the node degrees, arcs
// the ARCS mass and entropySum the aggregate entropy mass. Arguments
// follow the canonical orientation (u < v): all schemes are symmetric,
// but floating-point products are evaluated left to right, so callers
// must pass the smaller endpoint's statistics first for reproducibility.
func (w Weigher) Weight(common, bu, bv, du, dv int32, arcs, entropySum float64) float64 {
	buF := float64(bu)
	bvF := float64(bv)
	commonF := float64(common)
	var out float64
	switch w.scheme.Kind {
	case CBS:
		out = commonF
	case ECBS:
		out = commonF * safeLog(w.totalBlocks/buF) * safeLog(w.totalBlocks/bvF)
	case ARCS:
		out = arcs
	case JS:
		if d := buF + bvF - commonF; d > 0 {
			out = commonF / d
		}
	case EJS:
		var js float64
		if d := buF + bvF - commonF; d > 0 {
			js = commonF / d
		}
		out = js * safeLog(w.numEdges/float64(du)) * safeLog(w.numEdges/float64(dv))
	case ChiSquared:
		tab := stats.NewContingency(int(common), int(bu), int(bv), w.totalBlocksInt)
		out = tab.PositiveAssociation()
	default:
		panic(fmt.Sprintf("weights: unknown kind %d", int(w.scheme.Kind)))
	}
	if w.scheme.Entropy {
		// h(B_uv), 1 when the edge has no recorded entropy mass — the
		// same convention as Edge.EntropyMean.
		h := 1.0
		if common != 0 && entropySum != 0 {
			h = entropySum / commonF
		}
		out *= h
	}
	return out
}

// Apply computes the weight of every edge of g in place.
func (s Scheme) Apply(g *graph.Graph) {
	w := s.Weigher(g.NumEdges(), g.TotalBlocks)
	for i := range g.Edges {
		e := &g.Edges[i]
		e.Weight = w.Weight(e.Common,
			g.BlockCounts[e.U], g.BlockCounts[e.V],
			g.Degrees[e.U], g.Degrees[e.V],
			e.ARCS, e.EntropySum)
	}
}

// ApplyCSR computes the weight of every adjacency entry of g in place.
// Each undirected edge is weighted once, from its canonical (u < v)
// entry, and mirrored into the reverse entry, so per-node passes observe
// the same value from either endpoint.
//
// A spilled graph is weighted through its streaming pass instead: every
// entry independently, arguments in canonical orientation — the
// ApplyOwnedCSR argument shows both evaluations are bit-identical. A
// spilled weighting failure is sticky on the graph (graph.CSR.Err), as
// all spilled I/O failures are.
func (s Scheme) ApplyCSR(g *graph.CSR) {
	w := s.Weigher(g.NumEdges(), g.TotalBlocks)
	if g.Spilled() {
		g.WeighSpilled(func(u, v int32, common int32, arcs, entropySum float64) float64 {
			lo, hi := u, v
			if hi < lo {
				lo, hi = hi, lo
			}
			return w.Weight(common,
				g.BlockCounts[lo], g.BlockCounts[hi],
				int32(g.Degree(int(lo))), int32(g.Degree(int(hi))),
				arcs, entropySum)
		})
		return
	}
	g.CanonicalMirror(func(u, v int32, p, mp int64) {
		wt := w.Weight(g.Common[p],
			g.BlockCounts[u], g.BlockCounts[v],
			int32(g.Degree(int(u))), int32(g.Degree(int(v))),
			g.ARCS[p], g.EntropySum[p])
		g.Weights[p] = wt
		g.Weights[mp] = wt
	})
}

// ApplyOwnedCSR computes the weight of every adjacency entry of an
// owned-rows CSR (graph.BuildOwnedCSR) in place. g carries full-length
// Offsets but adjacency runs only for the rows one shard owns, so
// neighbor degrees are not derivable locally: degrees is the global
// per-node degree vector and numEdges the global edge count, both
// resolved by the cross-shard aggregate exchange. Every entry is
// weighted with its arguments in canonical (u < v) orientation — the
// same orientation ApplyCSR uses before mirroring — so an edge's two
// entries, weighted independently on two shards, carry bit-identical
// values.
func (s Scheme) ApplyOwnedCSR(g *graph.CSR, degrees []int32, numEdges int) {
	w := s.Weigher(numEdges, g.TotalBlocks)
	for u := 0; u < g.NumProfiles; u++ {
		for p := g.Offsets[u]; p < g.Offsets[u+1]; p++ {
			v := g.Neighbors[p]
			lo, hi := int32(u), v
			if hi < lo {
				lo, hi = hi, lo
			}
			g.Weights[p] = w.Weight(g.Common[p],
				g.BlockCounts[lo], g.BlockCounts[hi],
				degrees[lo], degrees[hi],
				g.ARCS[p], g.EntropySum[p])
		}
	}
}

// safeLog returns log(x) clamped to 0 for x <= 1, keeping the
// ECBS/EJS discount factors non-negative on degenerate inputs (profiles
// appearing in every block, nodes adjacent to every edge).
func safeLog(x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Log(x)
}
