package experiments

import (
	"fmt"
	"math"
	"strings"

	"blast/internal/attr"
	"blast/internal/blocking"
	"blast/internal/datasets"
	"blast/internal/graph"
	"blast/internal/lsh"
	"blast/internal/metablocking"
	"blast/internal/metrics"
	"blast/internal/text"
	"blast/internal/weights"
)

// lshThreshold wraps lsh.Threshold for table labeling.
func lshThreshold(rows, bands int) float64 { return lsh.Threshold(rows, bands) }

// SeriesPoint is one (x, y) point of a figure series.
type SeriesPoint struct {
	X, Y float64
}

// Figure5 regenerates the LSH S-curve of Figure 5 (r=5, b=30): the
// analytic candidate probability as a function of Jaccard similarity,
// with the estimated threshold (1/b)^(1/r).
func Figure5() (curve []SeriesPoint, threshold float64) {
	for s := 0.0; s <= 1.0+1e-9; s += 0.02 {
		curve = append(curve, SeriesPoint{X: s, Y: lsh.SCurve(s, 5, 30)})
	}
	return curve, lsh.Threshold(5, 30)
}

// RenderFigure5 renders the S-curve as an ASCII plot.
func RenderFigure5(curve []SeriesPoint, threshold float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "LSH S-curve, r=5 b=30 (threshold ~ %.3f)\n", threshold)
	for _, p := range curve {
		if int(p.X*100)%10 != 0 {
			continue
		}
		bar := strings.Repeat("#", int(p.Y*50+0.5))
		fmt.Fprintf(&b, "s=%.2f %6.3f |%s\n", p.X, p.Y, bar)
	}
	return b.String()
}

// Figure8Row is one dataset/variant point of the component ablation.
type Figure8Row struct {
	Dataset string
	Variant string // wnp | chi | wsh | bch
	PC, PQ  float64
}

// Figure8 regenerates the component evaluation of Figure 8 on LMI+Token
// Blocking collections:
//
//	wnp — classical WNP (average of wnp1 and wnp2 over the five classic
//	      weighting schemes);
//	chi — BLAST with the aggregate entropy switched off (pure chi2);
//	wsh — BLAST pruning with the classic weighting schemes adapted to
//	      aggregate entropy (average over schemes);
//	bch — full BLAST (chi2 * h).
func Figure8(cfg Config, names []string) ([]Figure8Row, error) {
	if names == nil {
		names = datasets.CleanCleanNames()
	}
	var out []Figure8Row
	for _, name := range names {
		ds, err := cfg.load(name)
		if err != nil {
			return nil, err
		}
		blocks, _ := buildBlocks(ds, "L", nil)
		g := graph.Build(blocks)

		// wnp: average of wnp1 and wnp2 across classic schemes.
		w1 := averageClassic(g, metablocking.WNP1, ds.Truth)
		w2 := averageClassic(g, metablocking.WNP2, ds.Truth)
		out = append(out, Figure8Row{Dataset: name, Variant: "wnp",
			PC: (w1.PC + w2.PC) / 2, PQ: (w1.PQ + w2.PQ) / 2})

		// chi: BLAST weighting without entropy.
		res := metablocking.RunOnGraph(g, metablocking.Config{
			Scheme:  weights.Scheme{Kind: weights.ChiSquared},
			Pruning: metablocking.BlastWNP, C: 2, D: 2,
		})
		q := metrics.EvaluatePairs(res.Pairs, ds.Truth)
		out = append(out, Figure8Row{Dataset: name, Variant: "chi", PC: q.PC, PQ: q.PQ})

		// wsh: classic schemes scaled by entropy, BLAST pruning, averaged.
		var pc, pq float64
		for _, k := range weights.Classic() {
			res := metablocking.RunOnGraph(g, metablocking.Config{
				Scheme:  weights.Scheme{Kind: k, Entropy: true},
				Pruning: metablocking.BlastWNP, C: 2, D: 2,
			})
			q := metrics.EvaluatePairs(res.Pairs, ds.Truth)
			pc += q.PC
			pq += q.PQ
		}
		n := float64(len(weights.Classic()))
		out = append(out, Figure8Row{Dataset: name, Variant: "wsh", PC: pc / n, PQ: pq / n})

		// bch: full BLAST.
		res = metablocking.RunOnGraph(g, metablocking.Config{
			Scheme: weights.Blast(), Pruning: metablocking.BlastWNP, C: 2, D: 2,
		})
		q = metrics.EvaluatePairs(res.Pairs, ds.Truth)
		out = append(out, Figure8Row{Dataset: name, Variant: "bch", PC: q.PC, PQ: q.PQ})
	}
	return out, nil
}

// RenderFigure8 formats the ablation series.
func RenderFigure8(rows []Figure8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-5s %8s %10s\n", "dataset", "var", "PC(%)", "PQ(%)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-5s %8.2f %10.4f\n", r.Dataset, r.Variant, r.PC*100, r.PQ*100)
	}
	return b.String()
}

// Figure9Row compares LMI and AC on one dataset.
type Figure9Row struct {
	Dataset string
	PCLMI   float64
	PCAC    float64
	// DeltaPQ is (PQ_LMI - PQ_AC) / PQ_AC, positive when LMI wins.
	DeltaPQ float64
}

// Figure9 regenerates the LMI-vs-AC comparison: full BLAST runs whose
// Phase 1 uses LMI or AC respectively.
func Figure9(cfg Config, names []string) ([]Figure9Row, error) {
	if names == nil {
		names = datasets.CleanCleanNames()
	}
	var out []Figure9Row
	for _, name := range names {
		ds, err := cfg.load(name)
		if err != nil {
			return nil, err
		}
		run := func(induction func([]attr.Profile) *attr.Partitioning) metrics.Quality {
			profiles := attr.ExtractProfiles(ds, text.NewTokenizer())
			part := induction(profiles)
			c := blocking.Build(ds, text.NewTokenizer(), part.KeyFunc())
			c = blocking.CleanWorkflow(c, 0.5, 0.8)
			res := metablocking.Run(c, metablocking.DefaultConfig())
			return metrics.EvaluatePairs(res.Pairs, ds.Truth)
		}
		lmiQ := run(func(p []attr.Profile) *attr.Partitioning {
			return attr.LMI(p, ds.Kind, attr.DefaultConfig())
		})
		acQ := run(func(p []attr.Profile) *attr.Partitioning {
			return attr.AC(p, ds.Kind, attr.DefaultConfig())
		})
		row := Figure9Row{Dataset: name, PCLMI: lmiQ.PC, PCAC: acQ.PC}
		if acQ.PQ > 0 {
			row.DeltaPQ = (lmiQ.PQ - acQ.PQ) / acQ.PQ
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderFigure9 formats the comparison.
func RenderFigure9(rows []Figure9Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %10s %10s %10s\n", "dataset", "PC LMI(%)", "PC AC(%)", "dPQ(%)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %10.2f %10.2f %+10.2f\n", r.Dataset, r.PCLMI*100, r.PCAC*100, r.DeltaPQ*100)
	}
	return b.String()
}

// Figure10Row is one LSH configuration point of the threshold sweep.
type Figure10Row struct {
	Rows, Bands int
	Threshold   float64
	PC          float64
}

// Figure10 regenerates the LSH threshold sweep of Figure 10: PC of the
// block collection produced by LSH-LMI + Token Blocking with the glue
// cluster DISABLED, as the estimated threshold grows. Below the safe
// threshold PC holds; above it, LMI misses similar attributes, tokens
// are dropped with their attributes, and PC degrades.
func Figure10(cfg Config) ([]Figure10Row, error) {
	ds, err := cfg.load("dbp")
	if err != nil {
		return nil, err
	}
	profiles := attr.ExtractProfiles(ds, text.NewTokenizer())
	var out []Figure10Row
	for _, rb := range [][2]int{{2, 100}, {3, 90}, {4, 80}, {5, 60}, {5, 30}, {6, 35}, {7, 25}, {8, 18}, {10, 15}} {
		r, bn := rb[0], rb[1]
		c := attr.Config{Alpha: 0.9, Glue: false, LSH: &attr.LSHConfig{Rows: r, Bands: bn, Seed: cfg.Seed}}
		part := attr.LMI(profiles, ds.Kind, c)
		blocks := blocking.Build(ds, text.NewTokenizer(), part.KeyFunc())
		q := metrics.EvaluateBlocks(blocks, ds.Truth)
		out = append(out, Figure10Row{Rows: r, Bands: bn, Threshold: lsh.Threshold(r, bn), PC: q.PC})
	}
	return out, nil
}

// RenderFigure10 formats the sweep.
func RenderFigure10(rows []Figure10Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %8s\n", "(r,b)", "threshold", "PC(%)")
	for _, r := range rows {
		fmt.Fprintf(&b, "(%2d,%3d)     %10.3f %8.2f\n", r.Rows, r.Bands, r.Threshold, r.PC*100)
	}
	return b.String()
}

// Monotone reports whether ys are non-increasing within tolerance eps —
// the qualitative shape check of Figure 10 (PC never improves as the
// threshold rises).
func Monotone(rows []Figure10Row, eps float64) bool {
	for i := 1; i < len(rows); i++ {
		if rows[i].Threshold < rows[i-1].Threshold {
			continue
		}
		if rows[i].PC > rows[i-1].PC+eps {
			return false
		}
	}
	return true
}

// round2 rounds to two decimals (report helpers).
func round2(x float64) float64 { return math.Round(x*100) / 100 }
