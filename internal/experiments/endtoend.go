package experiments

import (
	"fmt"
	"strings"
	"time"

	"blast"
	"blast/internal/match"
	"blast/internal/model"
	"blast/internal/text"
)

// EndToEndResult quantifies the Section 4.2.2 argument: the time spent
// restructuring a block collection is repaid by the comparisons it
// removes downstream.
type EndToEndResult struct {
	Dataset string

	// Original is the comparison count and matcher wall time of resolving
	// the cleaned block collection directly.
	OriginalComparisons int64
	OriginalTime        time.Duration
	OriginalF1          float64

	// Blast is the same for the BLAST-restructured collection, plus the
	// meta-blocking overhead it took to get there.
	BlastComparisons int64
	BlastOverhead    time.Duration
	BlastTime        time.Duration
	BlastF1          float64
}

// EndToEnd runs the full pipeline plus the Jaccard matcher on a dataset,
// comparing entity-resolution cost with and without BLAST.
func EndToEnd(cfg Config, dataset string, simThreshold float64) (*EndToEndResult, error) {
	ds, err := cfg.load(dataset)
	if err != nil {
		return nil, err
	}
	res, err := blast.Run(ds, blast.DefaultOptions())
	if err != nil {
		return nil, err
	}
	matcher := match.NewJaccard(ds, text.NewTokenizer())

	// Original: all distinct pairs of the cleaned block collection.
	var originalPairs []model.IDPair
	for k := range res.Blocks.DistinctPairs() {
		originalPairs = append(originalPairs, model.PairFromKey(k))
	}
	t0 := time.Now()
	origRes := match.Resolve(matcher, originalPairs, simThreshold)
	origTime := time.Since(t0)
	_, _, origF1 := match.Evaluate(origRes.Matches, ds.Truth)

	t1 := time.Now()
	blastRes := match.Resolve(matcher, res.Pairs, simThreshold)
	blastTime := time.Since(t1)
	_, _, blastF1 := match.Evaluate(blastRes.Matches, ds.Truth)

	return &EndToEndResult{
		Dataset:             dataset,
		OriginalComparisons: int64(len(originalPairs)),
		OriginalTime:        origTime,
		OriginalF1:          origF1,
		BlastComparisons:    int64(len(res.Pairs)),
		BlastOverhead:       res.Overhead(),
		BlastTime:           blastTime,
		BlastF1:             blastF1,
	}, nil
}

// Render formats the end-to-end comparison.
func (r *EndToEndResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "end-to-end ER on %s (Jaccard matcher)\n", r.Dataset)
	fmt.Fprintf(&b, "  original blocks: %d comparisons, match time %s, F1 %.3f\n",
		r.OriginalComparisons, r.OriginalTime.Round(time.Millisecond), round2(r.OriginalF1))
	fmt.Fprintf(&b, "  blast blocks:    %d comparisons, match time %s (+%s overhead), F1 %.3f\n",
		r.BlastComparisons, r.BlastTime.Round(time.Millisecond),
		r.BlastOverhead.Round(time.Millisecond), round2(r.BlastF1))
	if r.BlastComparisons > 0 {
		fmt.Fprintf(&b, "  comparison reduction: %.1fx\n",
			float64(r.OriginalComparisons)/float64(r.BlastComparisons))
	}
	return b.String()
}
