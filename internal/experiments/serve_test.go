package experiments

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestServeShapesAndRender(t *testing.T) {
	rows, err := Serve(tiny(), "ar1", []int{1, 2}, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// One baseline row plus one per shard count.
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[0].Mode != "index" || rows[0].Readers != 2 {
		t.Errorf("baseline row = %+v", rows[0])
	}
	var sawOne, sawTwo bool
	for _, r := range rows[1:] {
		if r.Mode != "server" {
			t.Errorf("server row mode = %q", r.Mode)
		}
		if !r.PairsMatch {
			t.Errorf("shards=%d diverged", r.Shards)
		}
		if r.ReadThroughput <= 0 {
			t.Errorf("shards=%d read throughput %v", r.Shards, r.ReadThroughput)
		}
		if r.GOMAXPROCS < 1 || r.Streamed == 0 || r.BaseProfiles == 0 {
			t.Errorf("row shape: %+v", r)
		}
		switch r.Shards {
		case 1:
			sawOne = true
			if r.ScalingVs1 != 1 {
				t.Errorf("1-shard scaling = %v", r.ScalingVs1)
			}
		case 2:
			sawTwo = true
			if r.ScalingVs1 <= 0 {
				t.Errorf("2-shard scaling = %v", r.ScalingVs1)
			}
		}
	}
	if !sawOne || !sawTwo {
		t.Error("missing shard-count rows")
	}
	out := RenderServe(rows)
	for _, want := range []string{"ar1", "server", "index", "reads/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	js, err := ServeJSON(rows)
	if err != nil {
		t.Fatal(err)
	}
	var back []ServeRow
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatalf("artifact does not round-trip: %v", err)
	}
	if len(back) != len(rows) || back[1].ReadThroughput != rows[1].ReadThroughput {
		t.Error("artifact round-trip mismatch")
	}
}

func TestServeUnknownDataset(t *testing.T) {
	if _, err := Serve(tiny(), "nope", []int{1}, time.Millisecond); err == nil {
		t.Error("unknown dataset should error")
	}
}
