package experiments

import (
	"fmt"
	"strings"
	"time"

	"blast/internal/attr"
	"blast/internal/blocking"
	"blast/internal/datasets"
	"blast/internal/graph"
	"blast/internal/metablocking"
	"blast/internal/metrics"
	"blast/internal/model"
	"blast/internal/supervised"
	"blast/internal/text"
	"blast/internal/weights"
)

// Table2 regenerates the dataset characteristics table.
func Table2(cfg Config) ([]datasets.Stats, error) {
	var out []datasets.Stats
	for _, name := range datasets.CleanCleanNames() {
		ds, err := cfg.load(name)
		if err != nil {
			return nil, err
		}
		out = append(out, datasets.Describe(ds))
	}
	return out, nil
}

// RenderTable2 formats the stats like Table 2.
func RenderTable2(rows []datasets.Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %12s %12s %16s %8s\n", "", "|E1|-|E2|", "|A1|-|A2|", "nvp", "|D|")
	for _, s := range rows {
		fmt.Fprintf(&b, "%-6s %5d-%6d %5d-%6d %7d-%8d %8d\n",
			s.Name, s.E1, s.E2, s.A1, s.A2, s.NVP1, s.NVP2, s.Dups)
	}
	return b.String()
}

// Table3Row is one dataset/variant row of Table 3: the block collection
// before ("baseline") and after Block Purging + Block Filtering.
type Table3Row struct {
	Dataset string
	Variant string // "T" (Token Blocking) or "L" (Token Blocking + LMI)

	BasePC, BasePQ float64
	BaseCard       int64
	FiltPC, FiltPQ float64
	FiltCard       int64
}

// Table3 regenerates the block-collection characteristics of Table 3 for
// the given datasets (default: all clean-clean benchmarks).
func Table3(cfg Config, names []string) ([]Table3Row, error) {
	if names == nil {
		names = datasets.CleanCleanNames()
	}
	var out []Table3Row
	for _, name := range names {
		ds, err := cfg.load(name)
		if err != nil {
			return nil, err
		}
		for _, variant := range []string{"T", "L"} {
			key := blocking.TokenKey
			if variant == "L" {
				profiles := attr.ExtractProfiles(ds, text.NewTokenizer())
				part := attr.LMI(profiles, ds.Kind, attr.DefaultConfig())
				key = part.KeyFunc()
			}
			base := blocking.Build(ds, text.NewTokenizer(), key)
			baseQ := metrics.EvaluateBlocks(base, ds.Truth)
			filt := blocking.CleanWorkflow(base, 0.5, 0.8)
			filtQ := metrics.EvaluateBlocks(filt, ds.Truth)
			out = append(out, Table3Row{
				Dataset: name, Variant: variant,
				BasePC: baseQ.PC, BasePQ: baseQ.PQ, BaseCard: baseQ.Comparisons,
				FiltPC: filtQ.PC, FiltPQ: filtQ.PQ, FiltCard: filtQ.Comparisons,
			})
		}
	}
	return out, nil
}

// RenderTable3 formats rows like Table 3.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-2s | %8s %10s %10s | %8s %10s %10s\n",
		"", "", "PC(%)", "PQ(%)", "||Bo||", "PC(%)", "PQ(%)", "||Bf||")
	fmt.Fprintf(&b, "%-8s | %30s | %30s\n", "", "baseline", "after block filtering")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s %-2s | %8.1f %10.2e %10.1e | %8.1f %10.2e %10.1e\n",
			r.Dataset, r.Variant, r.BasePC*100, r.BasePQ*100, float64(r.BaseCard),
			r.FiltPC*100, r.FiltPQ*100, float64(r.FiltCard))
	}
	return b.String()
}

// CompareRow is one method row of Tables 4, 5 and 7: a meta-blocking
// technique with its blocking quality, overhead and output cardinality.
type CompareRow struct {
	Method      string
	PC, PQ, F1  float64
	Overhead    time.Duration
	Comparisons int64
}

// RenderCompare formats CompareRows like Tables 4/5/7.
func RenderCompare(title string, rows []CompareRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- %s --\n", title)
	fmt.Fprintf(&b, "%-18s %8s %9s %7s %10s %10s\n", "method", "PC(%)", "PQ(%)", "F1", "to", "||B||")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %8.2f %9.4f %7.3f %10s %10.1e\n",
			r.Method, r.PC*100, r.PQ*100, r.F1, r.Overhead.Round(time.Millisecond), float64(r.Comparisons))
	}
	return b.String()
}

// buildBlocks constructs the cleaned block collection for a variant:
// Token Blocking alone ("T") or with LMI ("L"/LSH-accelerated "L*").
func buildBlocks(ds *model.Dataset, variant string, lshCfg *attr.LSHConfig) (*blocking.Collection, time.Duration) {
	start := time.Now()
	key := blocking.TokenKey
	if variant != "T" {
		cfg := attr.DefaultConfig()
		cfg.LSH = lshCfg
		profiles := attr.ExtractProfiles(ds, text.NewTokenizer())
		part := attr.LMI(profiles, ds.Kind, cfg)
		key = part.KeyFunc()
	}
	c := blocking.Build(ds, text.NewTokenizer(), key)
	c = blocking.CleanWorkflow(c, 0.5, 0.8)
	return c, time.Since(start)
}

// averageClassic runs a pruning over the five classic weighting schemes
// and averages the quality metrics (the paper lists scheme-averaged rows
// for wnp1/wnp2/cnp1/cnp2).
func averageClassic(g *graph.Graph, pruning metablocking.Pruning, truth *model.GroundTruth) CompareRow {
	var acc CompareRow
	for _, k := range weights.Classic() {
		res := metablocking.RunOnGraph(g, metablocking.Config{
			Scheme:  weights.Scheme{Kind: k},
			Pruning: pruning,
		})
		q := metrics.EvaluatePairs(res.Pairs, truth)
		acc.PC += q.PC
		acc.PQ += q.PQ
		acc.F1 += q.F1
		acc.Overhead += res.Overhead()
		acc.Comparisons += q.Comparisons
	}
	n := float64(len(weights.Classic()))
	acc.PC /= n
	acc.PQ /= n
	acc.F1 /= n
	acc.Overhead /= time.Duration(n)
	acc.Comparisons /= int64(n)
	return acc
}

// Table4 regenerates one comparison table (Tables 4a-4d): traditional
// unsupervised meta-blocking (wnp1/wnp2/cnp1/cnp2, averaged over the
// five classic schemes, on both "T" and "L" blocks), the chi2h-weighted
// CNP adaptations, supervised meta-blocking, and BLAST.
func Table4(cfg Config, dataset string) ([]CompareRow, error) {
	ds, err := cfg.load(dataset)
	if err != nil {
		return nil, err
	}
	return compareAll(cfg, ds, nil)
}

// Table5 regenerates the dbp comparison, including the LSH-accelerated
// variants (the starred rows).
func Table5(cfg Config) ([]CompareRow, error) {
	ds, err := cfg.load("dbp")
	if err != nil {
		return nil, err
	}
	lsh := &attr.LSHConfig{Rows: 5, Bands: 30, Seed: cfg.Seed}
	return compareAll(cfg, ds, lsh)
}

// compareAll produces the shared method rows of Tables 4/5. When lshCfg
// is non-nil, "L*" and "Blast*" rows are appended.
func compareAll(cfg Config, ds *model.Dataset, lshCfg *attr.LSHConfig) ([]CompareRow, error) {
	tBlocks, tTime := buildBlocks(ds, "T", nil)
	lBlocks, lTime := buildBlocks(ds, "L", nil)
	tGraph := graph.Build(tBlocks)
	lGraph := graph.Build(lBlocks)

	var rows []CompareRow
	addAvg := func(method string, g *graph.Graph, pruning metablocking.Pruning, base time.Duration) {
		r := averageClassic(g, pruning, ds.Truth)
		r.Method = method
		r.Overhead += base
		rows = append(rows, r)
	}
	addOne := func(method string, g *graph.Graph, mcfg metablocking.Config, base time.Duration) {
		res := metablocking.RunOnGraph(g, mcfg)
		q := metrics.EvaluatePairs(res.Pairs, ds.Truth)
		rows = append(rows, CompareRow{
			Method: method, PC: q.PC, PQ: q.PQ, F1: q.F1,
			Overhead: base + res.Overhead(), Comparisons: q.Comparisons,
		})
	}

	for _, p := range []struct {
		name    string
		pruning metablocking.Pruning
	}{
		{"wnp1", metablocking.WNP1},
		{"wnp2", metablocking.WNP2},
		{"cnp1", metablocking.CNP1},
		{"cnp2", metablocking.CNP2},
	} {
		addAvg(p.name+" T", tGraph, p.pruning, tTime)
		addAvg(p.name+" L", lGraph, p.pruning, lTime)
		if p.pruning == metablocking.CNP1 || p.pruning == metablocking.CNP2 {
			addOne(p.name+" Lchi2h", lGraph, metablocking.Config{
				Scheme: weights.Blast(), Pruning: p.pruning,
			}, lTime)
		}
	}

	// Supervised meta-blocking (WEP-style SVM classification, T blocks).
	supStart := time.Now()
	sup := supervised.Run(tGraph, ds.Truth, supervised.Config{
		TrainFraction: 0.10, NegativeRatio: 1, Seed: cfg.Seed,
	})
	q := metrics.EvaluatePairs(sup.Pairs, ds.Truth)
	rows = append(rows, CompareRow{
		Method: "sup. MB", PC: q.PC, PQ: q.PQ, F1: q.F1,
		Overhead: tTime + time.Since(supStart), Comparisons: q.Comparisons,
	})

	// BLAST.
	addOne("Blast", lGraph, metablocking.Config{
		Scheme: weights.Blast(), Pruning: metablocking.BlastWNP, C: 2, D: 2,
	}, lTime)

	if lshCfg != nil {
		lsBlocks, lsTime := buildBlocks(ds, "L*", lshCfg)
		lsGraph := graph.Build(lsBlocks)
		addAvg("wnp1 L*", lsGraph, metablocking.WNP1, lsTime)
		addAvg("cnp2 L*", lsGraph, metablocking.CNP2, lsTime)
		addOne("Blast*", lsGraph, metablocking.Config{
			Scheme: weights.Blast(), Pruning: metablocking.BlastWNP, C: 2, D: 2,
		}, lsTime)
	}
	return rows, nil
}

// Table7 regenerates the dirty-ER comparison (Tables 7a-7c): BLAST vs
// traditional WNP/CNP, all in combination with LMI, on one dirty
// benchmark.
func Table7(cfg Config, dataset string) ([]CompareRow, error) {
	ds, err := cfg.load(dataset)
	if err != nil {
		return nil, err
	}
	lBlocks, lTime := buildBlocks(ds, "L", nil)
	lGraph := graph.Build(lBlocks)

	var rows []CompareRow
	addOne := func(method string, mcfg metablocking.Config) {
		res := metablocking.RunOnGraph(lGraph, mcfg)
		q := metrics.EvaluatePairs(res.Pairs, ds.Truth)
		rows = append(rows, CompareRow{
			Method: method, PC: q.PC, PQ: q.PQ, F1: q.F1,
			Overhead: lTime + res.Overhead(), Comparisons: q.Comparisons,
		})
	}
	addOne("Blast", metablocking.Config{Scheme: weights.Blast(), Pruning: metablocking.BlastWNP, C: 2, D: 2})
	r := averageClassic(lGraph, metablocking.WNP1, ds.Truth)
	r.Method, r.Overhead = "wnp1", r.Overhead+lTime
	rows = append(rows, r)
	r = averageClassic(lGraph, metablocking.WNP2, ds.Truth)
	r.Method, r.Overhead = "wnp2", r.Overhead+lTime
	rows = append(rows, r)
	r = averageClassic(lGraph, metablocking.CNP1, ds.Truth)
	r.Method, r.Overhead = "cnp1", r.Overhead+lTime
	rows = append(rows, r)
	r = averageClassic(lGraph, metablocking.CNP2, ds.Truth)
	r.Method, r.Overhead = "cnp2", r.Overhead+lTime
	rows = append(rows, r)
	return rows, nil
}

// Table6Row is one LSH configuration of Table 6: the LMI runtime at an
// estimated Jaccard threshold.
type Table6Row struct {
	Label     string
	Rows      int
	Bands     int
	Threshold float64
	Duration  time.Duration
	Clusters  int
}

// Table6 regenerates the LMI runtime table: exhaustive LMI ("-") versus
// LSH-accelerated LMI at increasing thresholds, on the dbp attribute
// space.
func Table6(cfg Config) ([]Table6Row, error) {
	ds, err := cfg.load("dbp")
	if err != nil {
		return nil, err
	}
	profiles := attr.ExtractProfiles(ds, text.NewTokenizer())

	var out []Table6Row
	run := func(label string, lcfg *attr.LSHConfig, rows, bands int, th float64) {
		c := attr.DefaultConfig()
		c.LSH = lcfg
		start := time.Now()
		part := attr.LMI(profiles, ds.Kind, c)
		out = append(out, Table6Row{
			Label: label, Rows: rows, Bands: bands, Threshold: th,
			Duration: time.Since(start), Clusters: part.NumClusters(),
		})
	}
	run("-", nil, 0, 0, 0)
	// (rows, bands) chosen so thresholds track the paper's sweep
	// (.10 .22 .32 .41 .55 .64).
	for _, rb := range [][2]int{{2, 100}, {3, 90}, {4, 80}, {5, 60}, {6, 35}, {7, 25}} {
		r, b := rb[0], rb[1]
		run(fmt.Sprintf("LSH r=%d b=%d", r, b), &attr.LSHConfig{Rows: r, Bands: b, Seed: cfg.Seed}, r, b, lshThreshold(r, b))
	}
	return out, nil
}

// RenderTable6 formats the LMI runtimes like Table 6.
func RenderTable6(rows []Table6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %12s %9s\n", "config", "threshold", "LMI time", "clusters")
	for _, r := range rows {
		th := "-"
		if r.Threshold > 0 {
			th = fmt.Sprintf("%.2f", r.Threshold)
		}
		fmt.Fprintf(&b, "%-14s %10s %12s %9d\n", r.Label, th, r.Duration.Round(time.Millisecond), r.Clusters)
	}
	return b.String()
}
