package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"slices"
	"strings"
	"time"

	"blast"
	"blast/internal/model"
)

// PartitionRow summarizes one Topology x shard-count configuration of
// blast.Server under a pure write stream on one registry dataset: the
// write throughput (stream admitted, applied and published on every
// shard), and the per-shard state residency afterward. Under the
// replicated topology every shard holds the full index, so per-shard
// residency is flat in the shard count; under the partitioned topology
// each shard holds only its owned rows' slice, so the per-shard maximum
// must shrink as shards are added — that shrinking series is what the
// CI gate checks.
type PartitionRow struct {
	Dataset      string `json:"dataset"`
	Topology     string `json:"topology"` // "replicated" or "partitioned"
	Shards       int    `json:"shards"`
	GOMAXPROCS   int    `json:"gomaxprocs"`
	BaseProfiles int    `json:"base_profiles"`
	Streamed     int    `json:"streamed"`

	// InsertThroughput is streamed profiles per second of wall clock,
	// measured from the first insert to a completed Quiesce (every shard
	// applied and published the stream).
	InsertThroughput float64 `json:"inserts_per_sec"`

	// MaxOwnedRows and MaxResidentBytes are the maximum over the shards
	// of the published snapshot's row count and approximate heap
	// footprint. TotalResidentBytes sums the per-shard footprints: flat
	// for partitioned (the rows are divided, not copied), linear in the
	// shard count for replicated.
	MaxOwnedRows       int   `json:"max_owned_rows"`
	MaxResidentBytes   int64 `json:"max_resident_bytes"`
	TotalResidentBytes int64 `json:"total_resident_bytes"`

	// MemVs1 is MaxResidentBytes over the same topology's 1-shard row
	// (1 for that row itself) — the per-shard memory scaling series.
	MemVs1 float64 `json:"mem_vs_1shard"`

	// PairsMatch records the differential check against a cold
	// IndexBlocks over the union collection (true where not run; it runs
	// on the largest shard count of each topology and a divergence fails
	// the experiment).
	PairsMatch bool `json:"pairs_match"`
}

// partitionSwapOps keeps publication churn high enough that the
// partitioned aggregate exchange runs many rounds per configuration.
const partitionSwapOps = 64

// Partition measures write throughput and per-shard state residency of
// the replicated and partitioned topologies on one registry dataset
// (default: dbp, the largest) across shard counts (default 1, 2, 4).
// The largest configuration of each topology is differentially checked
// against a cold rebuild over the union collection; a divergence fails
// the run.
func Partition(cfg Config, name string, shardCounts []int) ([]PartitionRow, error) {
	if name == "" {
		name = "dbp"
	}
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4}
	}
	full, err := cfg.load(name)
	if err != nil {
		return nil, err
	}
	base, stream := splitStream(full)
	p, err := blast.NewPipeline(blast.DefaultOptions())
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	sch, err := p.InduceSchema(ctx, base)
	if err != nil {
		return nil, err
	}
	blocks, err := p.Block(ctx, base, sch)
	if err != nil {
		return nil, err
	}

	maxShards := slices.Max(shardCounts)
	rows := make([]PartitionRow, 0, 2*len(shardCounts))
	for _, topo := range []blast.Topology{blast.TopologyReplicated, blast.TopologyPartitioned} {
		for _, sc := range shardCounts {
			row, err := partitionOne(p, blocks, base, stream, topo, sc, sc == maxShards)
			if err != nil {
				return nil, fmt.Errorf("%s %s shards=%d: %w", name, topo, sc, err)
			}
			row.Dataset = name
			rows = append(rows, row)
		}
	}
	// Per-topology memory scaling vs the 1-shard row.
	for _, topo := range []blast.Topology{blast.TopologyReplicated, blast.TopologyPartitioned} {
		var m1 int64
		for _, r := range rows {
			if r.Topology == topo.String() && r.Shards == 1 {
				m1 = r.MaxResidentBytes
			}
		}
		if m1 <= 0 {
			continue
		}
		for i := range rows {
			if rows[i].Topology == topo.String() {
				rows[i].MemVs1 = float64(rows[i].MaxResidentBytes) / float64(m1)
			}
		}
	}
	return rows, nil
}

// partitionOne measures one Topology x shard-count configuration.
func partitionOne(p *blast.Pipeline, blocks *blast.Blocks, base *model.Dataset, stream []model.Profile, topo blast.Topology, shards int, verify bool) (PartitionRow, error) {
	ctx := context.Background()
	srv, err := p.ServeBlocks(ctx, blocks, blast.ServerOptions{
		Shards:   shards,
		Topology: topo,
		SwapOps:  partitionSwapOps,
	})
	if err != nil {
		return PartitionRow{}, err
	}
	defer srv.Close()

	t0 := time.Now()
	if err := insertBatches(stream, func(b []model.Profile) error {
		_, err := srv.InsertAll(ctx, b)
		return err
	}); err != nil {
		return PartitionRow{}, err
	}
	if err := srv.Quiesce(ctx); err != nil {
		return PartitionRow{}, err
	}
	elapsed := time.Since(t0)

	row := PartitionRow{
		Topology:     topo.String(),
		Shards:       shards,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		BaseProfiles: base.NumProfiles(),
		Streamed:     len(stream),
		PairsMatch:   true,
	}
	if elapsed > 0 {
		row.InsertThroughput = float64(len(stream)) / elapsed.Seconds()
	}
	for _, st := range srv.Stats() {
		row.TotalResidentBytes += st.ResidentBytes
		if st.OwnedRows > row.MaxOwnedRows {
			row.MaxOwnedRows = st.OwnedRows
		}
		if st.ResidentBytes > row.MaxResidentBytes {
			row.MaxResidentBytes = st.ResidentBytes
		}
	}
	if verify {
		cold, err := p.IndexBlocks(ctx, &blast.Blocks{Collection: srv.Blocks().Clone(), Schema: srv.Schema()})
		if err != nil {
			return PartitionRow{}, fmt.Errorf("cold rebuild: %w", err)
		}
		got, err := srv.Pairs(ctx)
		if err != nil {
			return PartitionRow{}, err
		}
		row.PairsMatch = slices.Equal(cold.Pairs(), got)
		if !row.PairsMatch {
			// The experiment doubles as a real-dataset differential check;
			// a divergence must fail the run (and CI), not annotate a row.
			return PartitionRow{}, fmt.Errorf("%s server diverged from the cold rebuild (%d vs %d pairs)",
				topo, len(got), cold.NumRetained())
		}
	}
	return row, nil
}

// RenderPartition formats the topology series.
func RenderPartition(rows []PartitionRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "topology comparison: replicated shards vs partitioned row ownership (write stream)\n")
	fmt.Fprintf(&b, "%-8s %-12s %7s %8s %10s %10s %12s %12s %8s %7s\n",
		"dataset", "topology", "shards", "streamed", "ins/s", "max rows", "max bytes", "total bytes", "mem/1shd", "match")
	for _, r := range rows {
		mem := "-"
		if r.MemVs1 > 0 {
			mem = fmt.Sprintf("%.2fx", r.MemVs1)
		}
		fmt.Fprintf(&b, "%-8s %-12s %7d %8d %10.0f %10d %12d %12d %8s %7v\n",
			r.Dataset, r.Topology, r.Shards, r.Streamed, r.InsertThroughput,
			r.MaxOwnedRows, r.MaxResidentBytes, r.TotalResidentBytes, mem, r.PairsMatch)
	}
	return b.String()
}

// PartitionJSON renders the rows as indented JSON (the CI artifact
// BENCH_partition.json).
func PartitionJSON(rows []PartitionRow) ([]byte, error) {
	return json.MarshalIndent(rows, "", "  ")
}
