package experiments

import (
	"strings"
	"testing"

	"blast/internal/datasets"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config { return Config{Scale: 0.25, Seed: 42} }

func TestTable2(t *testing.T) {
	rows, err := Table2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(datasets.CleanCleanNames()) {
		t.Fatalf("rows = %d, want %d", len(rows), len(datasets.CleanCleanNames()))
	}
	// ar1 keeps the 4-4 attribute shape at any scale.
	if rows[0].Name != "ar1" || rows[0].A1 != 4 || rows[0].A2 != 4 {
		t.Errorf("ar1 row = %+v", rows[0])
	}
	if out := RenderTable2(rows); !strings.Contains(out, "ar1") {
		t.Error("render missing ar1")
	}
}

func TestTable3ShapesAndRender(t *testing.T) {
	rows, err := Table3(tiny(), []string{"ar1", "prd"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 datasets x {T, L}
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		// Block Purging + Filtering must shrink ||B|| and raise PQ.
		if r.FiltCard > r.BaseCard {
			t.Errorf("%s/%s: filtering grew ||B||: %d -> %d", r.Dataset, r.Variant, r.BaseCard, r.FiltCard)
		}
		if r.FiltPQ < r.BasePQ {
			t.Errorf("%s/%s: filtering lowered PQ: %v -> %v", r.Dataset, r.Variant, r.BasePQ, r.FiltPQ)
		}
		// PC stays high through the cleaning workflow.
		if r.FiltPC < r.BasePC-0.05 {
			t.Errorf("%s/%s: filtering destroyed PC: %v -> %v", r.Dataset, r.Variant, r.BasePC, r.FiltPC)
		}
		if r.BasePC < 0.9 {
			t.Errorf("%s/%s: baseline PC = %v, want high (redundancy-positive blocking)", r.Dataset, r.Variant, r.BasePC)
		}
	}
	// The L variant must not have lower PQ than T at equal stage.
	var tRow, lRow *Table3Row
	for i := range rows {
		if rows[i].Dataset == "ar1" && rows[i].Variant == "T" {
			tRow = &rows[i]
		}
		if rows[i].Dataset == "ar1" && rows[i].Variant == "L" {
			lRow = &rows[i]
		}
	}
	if lRow.BaseCard > tRow.BaseCard {
		t.Errorf("LMI should not increase ||B||: T=%d L=%d", tRow.BaseCard, lRow.BaseCard)
	}
	if out := RenderTable3(rows); !strings.Contains(out, "ar1") {
		t.Error("render missing dataset")
	}
}

func TestTable4ComparativeStructure(t *testing.T) {
	rows, err := Table4(tiny(), "ar1")
	if err != nil {
		t.Fatal(err)
	}
	byMethod := make(map[string]CompareRow)
	for _, r := range rows {
		byMethod[r.Method] = r
	}
	for _, m := range []string{"wnp1 T", "wnp1 L", "wnp2 T", "wnp2 L", "cnp1 T", "cnp1 L",
		"cnp1 Lchi2h", "cnp2 T", "cnp2 L", "cnp2 Lchi2h", "sup. MB", "Blast"} {
		if _, ok := byMethod[m]; !ok {
			t.Fatalf("method %q missing; have %v", m, rows)
		}
	}
	bl := byMethod["Blast"]
	// The paper's headline: BLAST beats traditional WNP in PQ by a large
	// factor with dPC >= -6%.
	for _, m := range []string{"wnp1 T", "wnp1 L", "wnp2 T", "wnp2 L"} {
		w := byMethod[m]
		if bl.PQ <= w.PQ {
			t.Errorf("Blast PQ %v should beat %s PQ %v", bl.PQ, m, w.PQ)
		}
		if dpc := (bl.PC - w.PC) / w.PC; dpc < -0.06 {
			t.Errorf("dPC(%s, Blast) = %v, want >= -6%%", m, dpc)
		}
	}
	// chi2h-weighted CNP must hold PC at least as well as plain CNP2 L.
	if byMethod["cnp2 Lchi2h"].PC < byMethod["cnp2 L"].PC-0.02 {
		t.Errorf("cnp2 chi2h PC %v < cnp2 L PC %v", byMethod["cnp2 Lchi2h"].PC, byMethod["cnp2 L"].PC)
	}
	if out := RenderCompare("ar1", rows); !strings.Contains(out, "Blast") {
		t.Error("render missing Blast row")
	}
}

func TestTable5IncludesLSHRows(t *testing.T) {
	cfg := Config{Scale: 0.1, Seed: 42} // dbp is the heavy one
	rows, err := Table5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var blast, blastStar *CompareRow
	for i := range rows {
		switch rows[i].Method {
		case "Blast":
			blast = &rows[i]
		case "Blast*":
			blastStar = &rows[i]
		}
	}
	if blast == nil || blastStar == nil {
		t.Fatal("Blast/Blast* rows missing")
	}
	// LSH must preserve quality within a small tolerance (Section 4.2.2:
	// "identical results in terms of PC and PQ").
	if d := blastStar.PC - blast.PC; d < -0.05 || d > 0.05 {
		t.Errorf("LSH changed PC: %v vs %v", blastStar.PC, blast.PC)
	}
}

func TestTable6LSHSpeedsUpLMI(t *testing.T) {
	rows, err := Table6(Config{Scale: 0.15, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Label != "-" {
		t.Fatal("first row should be exhaustive LMI")
	}
	exhaustive := rows[0].Duration
	faster := 0
	for _, r := range rows[1:] {
		if r.Duration < exhaustive {
			faster++
		}
		if r.Threshold <= 0 || r.Threshold >= 1 {
			t.Errorf("row %s threshold %v out of range", r.Label, r.Threshold)
		}
	}
	// Timing-based: under instrumentation (-cover, -race) the constant
	// signing cost grows, so require only a majority of configurations
	// to beat the exhaustive scan, and the cheapest one always.
	if faster < (len(rows)-1)/2 {
		t.Errorf("only %d/%d LSH configs faster than exhaustive %v", faster, len(rows)-1, exhaustive)
	}
	if last := rows[len(rows)-1]; last.Duration >= exhaustive {
		t.Errorf("highest-threshold LSH (%v) not faster than exhaustive (%v)", last.Duration, exhaustive)
	}
	// Thresholds increase along the sweep.
	for i := 2; i < len(rows); i++ {
		if rows[i].Threshold <= rows[i-1].Threshold {
			t.Errorf("thresholds not increasing: %v then %v", rows[i-1].Threshold, rows[i].Threshold)
		}
	}
	if out := RenderTable6(rows); !strings.Contains(out, "LSH") {
		t.Error("render missing LSH rows")
	}
}

func TestTable7DirtyStructure(t *testing.T) {
	rows, err := Table7(tiny(), "census")
	if err != nil {
		t.Fatal(err)
	}
	byMethod := make(map[string]CompareRow)
	for _, r := range rows {
		byMethod[r.Method] = r
	}
	bl, ok := byMethod["Blast"]
	if !ok {
		t.Fatal("Blast row missing")
	}
	// Table 7 shape: BLAST achieves higher PQ than wnp1 (recall can dip).
	if w := byMethod["wnp1"]; bl.PQ <= w.PQ {
		t.Errorf("Blast PQ %v should beat wnp1 PQ %v on census", bl.PQ, w.PQ)
	}
}

func TestFigure5Shape(t *testing.T) {
	curve, th := Figure5()
	if len(curve) < 40 {
		t.Fatalf("curve too sparse: %d points", len(curve))
	}
	if th < 0.4 || th > 0.6 {
		t.Errorf("threshold = %v, want ~0.5 for r=5,b=30", th)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Y < curve[i-1].Y-1e-9 {
			t.Fatal("S-curve not monotone")
		}
	}
	if curve[0].Y != 0 || curve[len(curve)-1].Y < 0.999 {
		t.Error("curve endpoints wrong")
	}
	if out := RenderFigure5(curve, th); !strings.Contains(out, "S-curve") {
		t.Error("render broken")
	}
}

func TestFigure8AblationStructure(t *testing.T) {
	rows, err := Figure8(tiny(), []string{"ar1", "prd"})
	if err != nil {
		t.Fatal(err)
	}
	get := func(ds, v string) Figure8Row {
		for _, r := range rows {
			if r.Dataset == ds && r.Variant == v {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", ds, v)
		return Figure8Row{}
	}
	for _, ds := range []string{"ar1", "prd"} {
		wnp := get(ds, "wnp")
		bch := get(ds, "bch")
		chi := get(ds, "chi")
		wsh := get(ds, "wsh")
		// Full BLAST beats classical WNP on PQ (the figure's headline).
		if bch.PQ <= wnp.PQ {
			t.Errorf("%s: bch PQ %v <= wnp PQ %v", ds, bch.PQ, wnp.PQ)
		}
		// PC stays comparable across variants (within 10%).
		for _, v := range []Figure8Row{chi, wsh, bch} {
			if v.PC < wnp.PC-0.10 {
				t.Errorf("%s/%s: PC %v collapsed vs wnp %v", ds, v.Variant, v.PC, wnp.PC)
			}
		}
	}
	if out := RenderFigure8(rows); !strings.Contains(out, "bch") {
		t.Error("render missing variant")
	}
}

func TestFigure9LMIvsAC(t *testing.T) {
	rows, err := Figure9(tiny(), []string{"ar1", "prd"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Both inductions keep PC high; the figure's claim is comparable
		// PC with LMI's PQ advantage on small datasets.
		if r.PCLMI < 0.85 || r.PCAC < 0.85 {
			t.Errorf("%s: PC LMI=%v AC=%v, want both high", r.Dataset, r.PCLMI, r.PCAC)
		}
	}
	if out := RenderFigure9(rows); !strings.Contains(out, "dPQ") {
		t.Error("render broken")
	}
}

func TestFigure10ThresholdSweep(t *testing.T) {
	rows, err := Figure10(Config{Scale: 0.1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 5 {
		t.Fatalf("sweep too short: %d", len(rows))
	}
	// Low thresholds keep PC high; the highest thresholds degrade it.
	if rows[0].PC < 0.5 {
		t.Errorf("lowest threshold PC = %v, want >= 0.5", rows[0].PC)
	}
	last := rows[len(rows)-1]
	if last.PC > rows[0].PC {
		t.Errorf("PC should not improve at high thresholds: %v -> %v", rows[0].PC, last.PC)
	}
	if out := RenderFigure10(rows); !strings.Contains(out, "threshold") {
		t.Error("render broken")
	}
}

func TestMonotoneHelper(t *testing.T) {
	rows := []Figure10Row{{Threshold: 0.1, PC: 0.9}, {Threshold: 0.5, PC: 0.9}, {Threshold: 0.8, PC: 0.5}}
	if !Monotone(rows, 0.01) {
		t.Error("monotone rows misreported")
	}
	rows[2].PC = 0.95
	if Monotone(rows, 0.01) {
		t.Error("non-monotone rows misreported")
	}
}

func TestEndToEndSavesComparisons(t *testing.T) {
	res, err := EndToEnd(tiny(), "ar1", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlastComparisons >= res.OriginalComparisons {
		t.Errorf("BLAST should cut comparisons: %d vs %d", res.BlastComparisons, res.OriginalComparisons)
	}
	if res.BlastF1 < res.OriginalF1-0.1 {
		t.Errorf("BLAST F1 %v collapsed vs %v", res.BlastF1, res.OriginalF1)
	}
	if !strings.Contains(res.Render(), "reduction") {
		t.Error("render broken")
	}
}

func TestLoadUnknownDataset(t *testing.T) {
	if _, err := tiny().load("nope"); err == nil {
		t.Error("unknown dataset should error")
	}
	bad := Config{Scale: 0, Seed: 1}
	if _, err := bad.load("ar1"); err == nil {
		t.Error("zero scale should error")
	}
}

func TestScalabilitySeries(t *testing.T) {
	rows, err := Scalability(Config{Scale: 0.1, Seed: 42}, "ar1", []float64{1, 2, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Profiles <= rows[i-1].Profiles {
			t.Errorf("profiles not growing: %d then %d", rows[i-1].Profiles, rows[i].Profiles)
		}
		if rows[i].Comparisons <= rows[i-1].Comparisons {
			t.Errorf("comparisons not growing with scale")
		}
	}
	for _, r := range rows {
		if r.PC < 0.9 {
			t.Errorf("scale %v: PC = %v", r.Scale, r.PC)
		}
	}
	if out := RenderScalability("ar1", rows); !strings.Contains(out, "scalability") {
		t.Error("render broken")
	}
	// Default multipliers and unknown dataset paths.
	if _, err := Scalability(Config{Scale: 0.05, Seed: 1}, "nope", nil, 0); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestBaselinesComposeWithMetaBlocking(t *testing.T) {
	rows, err := Baselines(Config{Scale: 0.3, Seed: 42}, "ar1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7 blocking families", len(rows))
	}
	byName := make(map[string]BaselineRow)
	for _, r := range rows {
		byName[r.Blocking] = r
		if r.PC < 0 || r.PC > 1 || r.PQ < 0 || r.PQ > 1 {
			t.Errorf("%s: metrics out of range: %+v", r.Blocking, r)
		}
	}
	// The redundancy-positive token families keep high recall through
	// meta-blocking on the easy ar1 workload.
	for _, name := range []string{"token", "token+lmi", "qgram3", "stem"} {
		if byName[name].PC < 0.9 {
			t.Errorf("%s PC = %v, want >= 0.9", name, byName[name].PC)
		}
	}
	if out := RenderBaselines("ar1", rows); !strings.Contains(out, "canopy") {
		t.Error("render missing a family")
	}
	if _, err := Baselines(Config{Scale: 0.3, Seed: 1}, "nope"); err == nil {
		t.Error("unknown dataset should error")
	}
}

// TestStandardBlockingMatchesLMI reproduces the Section 4.1 claim: on
// fully mappable datasets BLAST over LMI and BLAST over schema-based
// Standard Blocking achieve (nearly) the same PC and PQ, because the
// induced partitioning equals the manual alignment.
func TestStandardBlockingMatchesLMI(t *testing.T) {
	rows, err := StandardBlocking(Config{Scale: 0.4, Seed: 42}, []string{"ar1", "prd"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if d := r.LMI.PC - r.Standard.PC; d < -0.02 || d > 0.02 {
			t.Errorf("%s: PC differs: LMI %.4f vs standard %.4f", r.Dataset, r.LMI.PC, r.Standard.PC)
		}
		// PQ within 20%% relative: the glue cluster gives LMI slightly
		// different token scoping than the strict manual alignment.
		if r.Standard.PQ > 0 {
			rel := (r.LMI.PQ - r.Standard.PQ) / r.Standard.PQ
			if rel < -0.2 || rel > 0.2 {
				t.Errorf("%s: PQ differs: LMI %.4f vs standard %.4f", r.Dataset, r.LMI.PQ, r.Standard.PQ)
			}
		}
	}
	if out := RenderStandard(rows); !strings.Contains(out, "standard") {
		t.Error("render broken")
	}
	if _, err := StandardBlocking(Config{Scale: 0.4, Seed: 1}, []string{"mov"}); err == nil {
		t.Error("partially mappable dataset should error")
	}
}
