package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"slices"
	"strings"
	"time"

	"blast/internal/blocking"
	"blast/internal/graph"
	"blast/internal/metablocking"
	"blast/internal/model"
	"blast/internal/weights"
)

// PruneRow measures one streaming pruning scheme at one worker count on
// one registry dataset: wall-clock of the full pruning (thresholds /
// histogram selection + retention emission), allocation during the
// pass, and the speedup over the serial (Workers = 1) run of the same
// scheme. EqualSerial records the determinism contract — the retained
// pairs must be byte-identical to the serial run — and is gated by
// cmd/benchdiff, as is the speedup floor on multi-core hosts.
type PruneRow struct {
	Dataset     string        `json:"dataset"`
	Pruning     string        `json:"pruning"`
	Workers     int           `json:"workers"`
	Edges       int           `json:"edges"`
	Retained    int           `json:"retained_pairs"`
	PruneTime   time.Duration `json:"prune_ns"`
	SpeedupVs1  float64       `json:"speedup_vs_1"`
	AllocBytes  uint64        `json:"alloc_bytes"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	EqualSerial bool          `json:"equal_serial"`
}

// pruneWorkerCounts is the Workers series of the experiment; the last
// entry is the one the benchdiff speedup floor judges.
var pruneWorkerCounts = []int{1, 2, 4}

// prunePrunings are the schemes the experiment times: BLAST's own
// pruning (threshold + retention passes), the two global schemes whose
// scratch the histogram cut eliminated, and one cardinality node
// scheme (mark + mirror-resolution passes).
var prunePrunings = []metablocking.Pruning{
	metablocking.BlastWNP, metablocking.WEP, metablocking.CEP, metablocking.CNP1,
}

// pruneReps re-runs each timed pass and keeps the minimum, damping
// scheduler noise without inflating the experiment's runtime.
const pruneReps = 3

// Prune benchmarks the parallel streaming pruning schemes on one
// registry dataset (default dbp, the largest): the blocking graph is
// built and weighted once, then every Pruning x Workers cell times
// metablocking.PruneCSR over the shared CSR and byte-compares its
// output against the serial run of the same scheme.
func Prune(cfg Config, name string) ([]PruneRow, error) {
	if name == "" {
		name = "dbp"
	}
	ds, err := cfg.load(name)
	if err != nil {
		return nil, err
	}
	c := blocking.CleanWorkflow(blocking.TokenBlocking(ds), 0.5, 0.8)
	csr := graph.BuildCSRParallel(c, 0)
	weights.Blast().ApplyCSR(csr)
	csr.ReleaseStats()

	ctx := context.Background()
	var out []PruneRow
	for _, pruning := range prunePrunings {
		mcfg := metablocking.Config{Scheme: weights.Blast(), Pruning: pruning, C: 2, D: 2}
		var serialPairs []model.IDPair
		var serialTime time.Duration
		for _, workers := range pruneWorkerCounts {
			mcfg.Workers = workers
			var best time.Duration
			var pairs []model.IDPair
			var alloc uint64
			for rep := 0; rep < pruneReps; rep++ {
				var m0, m1 runtime.MemStats
				runtime.ReadMemStats(&m0)
				t0 := time.Now()
				p, err := metablocking.PruneCSR(ctx, csr, mcfg)
				d := time.Since(t0)
				if err != nil {
					return nil, fmt.Errorf("%s/%v/workers=%d: %w", name, pruning, workers, err)
				}
				runtime.ReadMemStats(&m1)
				if rep == 0 {
					pairs = p
					alloc = m1.TotalAlloc - m0.TotalAlloc
					best = d
				} else if d < best {
					best = d
				}
			}
			row := PruneRow{
				Dataset:    name,
				Pruning:    pruning.String(),
				Workers:    workers,
				Edges:      csr.NumEdges(),
				Retained:   len(pairs),
				PruneTime:  best,
				AllocBytes: alloc,
				GOMAXPROCS: runtime.GOMAXPROCS(0),
			}
			if workers == 1 {
				serialPairs, serialTime = pairs, best
				row.SpeedupVs1 = 1
				row.EqualSerial = true
			} else {
				row.EqualSerial = slices.Equal(pairs, serialPairs)
				if best > 0 {
					row.SpeedupVs1 = float64(serialTime) / float64(best)
				}
				if !row.EqualSerial {
					// The experiment doubles as a real-dataset differential
					// check; a divergence must fail the run, not just
					// annotate a row.
					return nil, fmt.Errorf("%s/%v: workers=%d diverged from the serial scheme (%d vs %d pairs)",
						name, pruning, workers, len(pairs), len(serialPairs))
				}
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// RenderPrune formats the parallel-pruning series.
func RenderPrune(name string, rows []PruneRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "parallel streaming pruning on %s (shared weighted CSR, GOMAXPROCS=%d)\n",
		name, runtime.GOMAXPROCS(0))
	fmt.Fprintf(&b, "%-10s %8s %10s %9s %12s %9s %12s %6s\n",
		"pruning", "workers", "edges", "pairs", "prune", "speedup", "alloc", "equal")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8d %10d %9d %12s %8.2fx %12d %6v\n",
			r.Pruning, r.Workers, r.Edges, r.Retained,
			r.PruneTime.Round(time.Microsecond), r.SpeedupVs1, r.AllocBytes, r.EqualSerial)
	}
	return b.String()
}

// PruneJSON renders the rows as indented JSON (the CI artifact
// BENCH_prune.json).
func PruneJSON(rows []PruneRow) ([]byte, error) {
	return json.MarshalIndent(rows, "", "  ")
}
