package experiments

import (
	"testing"
	"time"
)

func TestLoadSmoke(t *testing.T) {
	cfg := Config{Scale: 0.02, Seed: 7}
	rows, err := Load(cfg, "census", []int{2}, 2, 40*time.Millisecond)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	r := rows[0]
	if r.Dataset != "census" || r.Clients != 2 || r.Shards != 2 {
		t.Errorf("row mislabeled: %+v", r)
	}
	if !r.Match {
		t.Error("HTTP responses diverge from in-process Server calls")
	}
	if r.Streamed <= 0 || r.InsertThroughput <= 0 {
		t.Errorf("insert side did not run: streamed=%d throughput=%f", r.Streamed, r.InsertThroughput)
	}
	if r.Batches <= 0 {
		t.Errorf("no insert batches committed: %+v", r)
	}
	if r.ReadThroughput <= 0 {
		t.Errorf("read-only window measured nothing: %+v", r)
	}
	if r.ReadP50 < 0 || r.ReadP95 < r.ReadP50 || r.ReadP99 < r.ReadP95 {
		t.Errorf("latency percentiles not monotone: p50=%v p95=%v p99=%v", r.ReadP50, r.ReadP95, r.ReadP99)
	}
	if out := RenderLoad(rows); out == "" {
		t.Error("RenderLoad returned nothing")
	}
	if _, err := LoadJSON(rows); err != nil {
		t.Errorf("LoadJSON: %v", err)
	}
}
