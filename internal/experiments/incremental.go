package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"slices"
	"sort"
	"strings"
	"time"

	"blast"
	"blast/internal/datasets"
	"blast/internal/model"
)

// IncrementalRow summarizes the incremental-insert path on one registry
// dataset: an index is built over a prefix of the dataset, the held-out
// tail is streamed through Index.Insert one profile at a time, and the
// amortized per-insert cost is compared against a cold rebuild of the
// index over the final collection (the exact operation Insert replaces).
type IncrementalRow struct {
	Dataset      string        `json:"dataset"`
	BaseProfiles int           `json:"base_profiles"`
	Streamed     int           `json:"streamed"`
	Edges        int           `json:"edges"`
	BuildTime    time.Duration `json:"build_ns"`

	InsertP50   time.Duration `json:"insert_p50_ns"`
	InsertP95   time.Duration `json:"insert_p95_ns"`
	InsertP99   time.Duration `json:"insert_p99_ns"`
	InsertMax   time.Duration `json:"insert_max_ns"`
	InsertMean  time.Duration `json:"insert_mean_ns"`
	TotalInsert time.Duration `json:"insert_total_ns"`

	// RebuildTime is one cold IndexBlocks over the final collection; the
	// amortized speedup is RebuildTime / InsertMean — how many times
	// cheaper absorbing one arrival is than rebuilding for it.
	RebuildTime      time.Duration `json:"rebuild_ns"`
	AmortizedSpeedup float64       `json:"amortized_speedup"`

	LocalizedBatches int  `json:"localized_batches"`
	RebuiltBatches   int  `json:"rebuilt_batches"`
	Compactions      int  `json:"compactions"`
	PendingKeys      int  `json:"pending_keys"`
	PairsMatch       bool `json:"pairs_match"`
}

// incrementalHoldout picks how many profiles of the streamed source to
// hold out: a tenth, clamped to [16, 400].
func incrementalHoldout(sourceLen int) int {
	h := sourceLen / 10
	if h < 16 {
		h = 16
	}
	if h > 400 {
		h = 400
	}
	if h >= sourceLen {
		h = sourceLen / 2
	}
	return h
}

// splitStream cuts a holdout tail off a dataset for streaming-insert
// experiments: for dirty datasets the tail of E1, for clean-clean the
// tail of E2 (new entities arriving against a fixed reference
// collection). Returns the truncated base dataset and the held-out
// profiles in arrival order.
func splitStream(full *model.Dataset) (*model.Dataset, []model.Profile) {
	if full.Kind == model.CleanClean {
		h := incrementalHoldout(full.E2.Len())
		cut := full.E2.Len() - h
		base := &model.Dataset{
			Name: full.Name, Kind: model.CleanClean,
			E1:    full.E1,
			E2:    &model.Collection{Name: full.E2.Name, Profiles: full.E2.Profiles[:cut]},
			Truth: model.NewGroundTruth(),
		}
		return base, full.E2.Profiles[cut:]
	}
	h := incrementalHoldout(full.E1.Len())
	cut := full.E1.Len() - h
	base := &model.Dataset{
		Name: full.Name, Kind: model.Dirty,
		E1:    &model.Collection{Name: full.E1.Name, Profiles: full.E1.Profiles[:cut]},
		Truth: model.NewGroundTruth(),
	}
	return base, full.E1.Profiles[cut:]
}

// Incremental measures the insert path for each named registry dataset
// (default: all of them); see splitStream for how the stream is cut.
func Incremental(cfg Config, names []string) ([]IncrementalRow, error) {
	if len(names) == 0 {
		names = datasets.AllNames()
	}
	ctx := context.Background()
	var out []IncrementalRow
	for _, name := range names {
		full, err := cfg.load(name)
		if err != nil {
			return nil, err
		}
		base, stream := splitStream(full)

		p, err := blast.NewPipeline(blast.DefaultOptions())
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		ix, err := p.BuildIndex(ctx, base)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		build := time.Since(t0)

		durs := make([]time.Duration, 0, len(stream))
		var total time.Duration
		for i := range stream {
			q0 := time.Now()
			if _, err := ix.Insert(ctx, &stream[i]); err != nil {
				return nil, fmt.Errorf("%s: insert %d: %w", name, i, err)
			}
			d := time.Since(q0)
			durs = append(durs, d)
			total += d
		}

		r0 := time.Now()
		cold, err := p.IndexBlocks(ctx, &blast.Blocks{Collection: ix.Blocks().Clone(), Schema: ix.Schema()})
		if err != nil {
			return nil, fmt.Errorf("%s: cold rebuild: %w", name, err)
		}
		rebuild := time.Since(r0)

		st := ix.Stats()
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		row := IncrementalRow{
			Dataset:          name,
			BaseProfiles:     base.NumProfiles(),
			Streamed:         len(stream),
			Edges:            ix.NumEdges(),
			BuildTime:        build,
			InsertP50:        percentile(durs, 0.50),
			InsertP95:        percentile(durs, 0.95),
			InsertP99:        percentile(durs, 0.99),
			TotalInsert:      total,
			RebuildTime:      rebuild,
			LocalizedBatches: st.LocalizedBatches,
			RebuiltBatches:   st.RebuiltBatches,
			Compactions:      st.Compactions,
			PendingKeys:      st.PendingKeys,
			PairsMatch:       slices.Equal(cold.Pairs(), ix.Pairs()),
		}
		if len(durs) > 0 {
			row.InsertMax = durs[len(durs)-1]
			row.InsertMean = total / time.Duration(len(durs))
		}
		if row.InsertMean > 0 {
			row.AmortizedSpeedup = float64(rebuild) / float64(row.InsertMean)
		}
		if !row.PairsMatch {
			// The experiment doubles as a real-dataset differential check;
			// a divergence must fail the run (and CI), not just annotate
			// a row.
			return nil, fmt.Errorf("%s: incremental index diverged from the cold rebuild (%d vs %d pairs)",
				name, ix.NumRetained(), cold.NumRetained())
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderIncremental formats the incremental-insert series.
func RenderIncremental(rows []IncrementalRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "incremental Index.Insert vs cold rebuild (default options, per-profile stream)\n")
	fmt.Fprintf(&b, "%-8s %9s %8s %10s %9s %9s %9s %10s %9s %8s %6s\n",
		"dataset", "base", "streamed", "build", "p50", "p95", "p99", "rebuild", "amortized", "local", "match")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %9d %8d %10s %9s %9s %9s %10s %8.1fx %8d %6v\n",
			r.Dataset, r.BaseProfiles, r.Streamed,
			r.BuildTime.Round(time.Millisecond),
			r.InsertP50, r.InsertP95, r.InsertP99,
			r.RebuildTime.Round(time.Millisecond),
			r.AmortizedSpeedup, r.LocalizedBatches, r.PairsMatch)
	}
	return b.String()
}

// IncrementalJSON renders the rows as indented JSON (the CI artifact
// BENCH_incremental.json).
func IncrementalJSON(rows []IncrementalRow) ([]byte, error) {
	return json.MarshalIndent(rows, "", "  ")
}
