package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestPruneExperiment smoke-runs the parallel-pruning experiment at a
// tiny scale: full Pruning x Workers grid, every parallel cell equal to
// its serial run, JSON artifact round-trips.
func TestPruneExperiment(t *testing.T) {
	rows, err := Prune(Config{Scale: 0.02, Seed: 7}, "ar1")
	if err != nil {
		t.Fatal(err)
	}
	if want := len(prunePrunings) * len(pruneWorkerCounts); len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	for _, r := range rows {
		if !r.EqualSerial {
			t.Errorf("%s/%s workers=%d diverged from serial", r.Dataset, r.Pruning, r.Workers)
		}
		if r.Workers == 1 && r.SpeedupVs1 != 1 {
			t.Errorf("%s serial row speedup = %v", r.Pruning, r.SpeedupVs1)
		}
		if r.Edges <= 0 || r.PruneTime <= 0 {
			t.Errorf("degenerate row: %+v", r)
		}
	}
	js, err := PruneJSON(rows)
	if err != nil {
		t.Fatal(err)
	}
	var back []PruneRow
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatalf("artifact does not round-trip: %v", err)
	}
	if len(back) != len(rows) {
		t.Fatalf("round-trip rows = %d, want %d", len(back), len(rows))
	}
	out := RenderPrune("ar1", rows)
	for _, want := range []string{"blast-wnp", "wep", "cep", "cnp1", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
