package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestPartitionShapesAndRender(t *testing.T) {
	rows, err := Partition(tiny(), "ar1", []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// One row per topology x shard count.
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	byKey := map[string]PartitionRow{}
	for _, r := range rows {
		if !r.PairsMatch {
			t.Errorf("%s shards=%d diverged", r.Topology, r.Shards)
		}
		if r.InsertThroughput <= 0 || r.MaxOwnedRows <= 0 || r.MaxResidentBytes <= 0 {
			t.Errorf("row shape: %+v", r)
		}
		if r.GOMAXPROCS < 1 || r.Streamed == 0 || r.BaseProfiles == 0 {
			t.Errorf("row shape: %+v", r)
		}
		byKey[r.Topology+"/"+string(rune('0'+r.Shards))] = r
	}
	rep1, rep2 := byKey["replicated/1"], byKey["replicated/2"]
	par1, par2 := byKey["partitioned/1"], byKey["partitioned/2"]
	// Replicated shards each hold the full index; partitioned shards
	// split it, so the 2-shard per-shard residency must come in under
	// the 1-shard row's.
	total := rep1.BaseProfiles + rep1.Streamed
	if rep2.MaxOwnedRows != total || par1.MaxOwnedRows != total {
		t.Errorf("full-residency rows: replicated/2 owns %d, partitioned/1 owns %d, want %d",
			rep2.MaxOwnedRows, par1.MaxOwnedRows, total)
	}
	if par2.MaxOwnedRows >= total {
		t.Errorf("partitioned/2 owns %d rows, want < %d", par2.MaxOwnedRows, total)
	}
	if par2.MaxResidentBytes >= par1.MaxResidentBytes {
		t.Errorf("partitioned per-shard memory did not shrink: 1 shard %d, 2 shards %d",
			par1.MaxResidentBytes, par2.MaxResidentBytes)
	}
	if par1.MemVs1 != 1 || par2.MemVs1 <= 0 || par2.MemVs1 >= 1 {
		t.Errorf("memory scaling series: 1-shard %v, 2-shard %v", par1.MemVs1, par2.MemVs1)
	}
	out := RenderPartition(rows)
	for _, want := range []string{"ar1", "replicated", "partitioned", "mem/1shd"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	js, err := PartitionJSON(rows)
	if err != nil {
		t.Fatal(err)
	}
	var back []PartitionRow
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatalf("artifact does not round-trip: %v", err)
	}
	if len(back) != len(rows) || back[1].InsertThroughput != rows[1].InsertThroughput {
		t.Error("artifact round-trip mismatch")
	}
}

func TestPartitionUnknownDataset(t *testing.T) {
	if _, err := Partition(tiny(), "nope", []int{1}); err == nil {
		t.Error("unknown dataset should error")
	}
}
