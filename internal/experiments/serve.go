package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"blast"
	"blast/internal/model"
	"blast/internal/stats"
)

// ServeRow summarizes sharded snapshot-swap serving on one registry
// dataset under a mixed read/write load, for one configuration: either
// the single mutable Index baseline (mode "index": readers share the
// RWMutex with the insert path) or a blast.Server (mode "server":
// readers are wait-free on per-shard published snapshots).
//
// The harness drives one reader goroutine per shard (per-partition
// serving loops), so aggregate read throughput reflects shard
// parallelism up to the host's core count; GOMAXPROCS is recorded
// because the attainable 1->N scaling is bounded by it (the CI
// regression gate only enforces the scaling floor on hosts with enough
// cores to express it).
type ServeRow struct {
	Dataset      string `json:"dataset"`
	Mode         string `json:"mode"` // "index" (baseline) or "server"
	Shards       int    `json:"shards"`
	Readers      int    `json:"readers"`
	GOMAXPROCS   int    `json:"gomaxprocs"`
	BaseProfiles int    `json:"base_profiles"`
	Streamed     int    `json:"streamed"`

	// InsertPerShard is the per-shard apply rate during the mixed phase:
	// every shard applies the full stream, so this is streamed profiles
	// over the mixed-phase wall clock.
	InsertPerShard float64 `json:"insert_per_shard_per_sec"`

	// Mixed-phase read latency distribution (reads racing the writers).
	MixedP50 time.Duration `json:"mixed_read_p50_ns"`
	MixedP95 time.Duration `json:"mixed_read_p95_ns"`
	MixedP99 time.Duration `json:"mixed_read_p99_ns"`

	// ReadThroughput is the aggregate reads/sec of the read-only window
	// after quiescing — the shard-scaling metric.
	ReadThroughput float64 `json:"reads_per_sec"`
	// ScalingVs1 is ReadThroughput over the 1-shard server row's (1 for
	// that row itself; 0 for the baseline row).
	ScalingVs1 float64 `json:"scaling_vs_1shard"`

	Swaps       int64         `json:"swaps"`
	QuiesceTime time.Duration `json:"quiesce_ns"`
	// PairsMatch records the differential check of the largest server
	// configuration against a cold IndexBlocks over the union collection
	// (true for rows where the check was not run).
	PairsMatch bool `json:"pairs_match"`
}

// serveSwapOps is the op-count swap cadence of the serve experiment:
// frequent enough that the mixed phase actually exercises snapshot
// churn on every dataset scale.
const serveSwapOps = 64

// Serve measures sharded snapshot-swap serving on one registry dataset
// (default: dbp, the largest) across shard counts (default 1, 2, 4),
// against the single mutable Index baseline. window is the length of
// the read-only measurement phase per configuration (0 selects 250ms).
// The largest server configuration is differentially checked against a
// cold rebuild; a divergence fails the run.
func Serve(cfg Config, name string, shardCounts []int, window time.Duration) ([]ServeRow, error) {
	if name == "" {
		name = "dbp"
	}
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4}
	}
	if window <= 0 {
		window = 250 * time.Millisecond
	}
	full, err := cfg.load(name)
	if err != nil {
		return nil, err
	}
	base, stream := splitStream(full)
	p, err := blast.NewPipeline(blast.DefaultOptions())
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	sch, err := p.InduceSchema(ctx, base)
	if err != nil {
		return nil, err
	}
	blocks, err := p.Block(ctx, base, sch)
	if err != nil {
		return nil, err
	}

	maxShards := slices.Max(shardCounts)
	rows := make([]ServeRow, 0, len(shardCounts)+1)
	baseline, err := serveBaseline(p, blocks, base, stream, maxShards, window)
	if err != nil {
		return nil, fmt.Errorf("%s baseline: %w", name, err)
	}
	baseline.Dataset = name
	rows = append(rows, baseline)
	for _, sc := range shardCounts {
		row, err := serveSharded(p, blocks, base, stream, sc, window, sc == maxShards)
		if err != nil {
			return nil, fmt.Errorf("%s shards=%d: %w", name, sc, err)
		}
		row.Dataset = name
		rows = append(rows, row)
	}
	var t1 float64
	for _, r := range rows {
		if r.Mode == "server" && r.Shards == 1 {
			t1 = r.ReadThroughput
		}
	}
	if t1 > 0 {
		for i := range rows {
			if rows[i].Mode == "server" {
				rows[i].ScalingVs1 = rows[i].ReadThroughput / t1
			}
		}
	}
	return rows, nil
}

// candidateReader is the read half of both harnesses: a function
// serving one profile's candidates into a reused buffer.
type candidateReader func(buf []blast.Candidate, profile int) []blast.Candidate

// mixedLoad runs readers (one goroutine each) against read while the
// writer function streams inserts, returning the merged read latency
// samples and the mixed-phase duration.
func mixedLoad(readers, numProfiles int, read candidateReader, write func() error) ([]time.Duration, time.Duration, error) {
	var stop atomic.Bool
	lat := make([][]time.Duration, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := stats.NewRNG(uint64(r)*7919 + 1)
			buf := make([]blast.Candidate, 0, 1024)
			for !stop.Load() {
				q0 := time.Now()
				buf = read(buf[:0], rng.Intn(numProfiles))
				lat[r] = append(lat[r], time.Since(q0))
			}
		}(r)
	}
	t0 := time.Now()
	err := write()
	elapsed := time.Since(t0)
	stop.Store(true)
	wg.Wait()
	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all, elapsed, err
}

// readOnlyLoad measures aggregate read throughput over a fixed window
// with one goroutine per reader.
func readOnlyLoad(readers, numProfiles int, read candidateReader, window time.Duration) float64 {
	var total atomic.Int64
	var wg sync.WaitGroup
	deadline := time.Now().Add(window)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := stats.NewRNG(uint64(r)*104729 + 3)
			buf := make([]blast.Candidate, 0, 1024)
			n := int64(0)
			// Check the clock every few reads so its cost stays off the
			// measured path.
			for time.Now().Before(deadline) {
				for k := 0; k < 64; k++ {
					buf = read(buf[:0], rng.Intn(numProfiles))
				}
				n += 64
			}
			total.Add(n)
		}(r)
	}
	wg.Wait()
	return float64(total.Load()) / window.Seconds()
}

// insertBatches streams the profiles through insert in batches of 8.
func insertBatches(stream []model.Profile, insert func([]model.Profile) error) error {
	const batch = 8
	for off := 0; off < len(stream); off += batch {
		end := off + batch
		if end > len(stream) {
			end = len(stream)
		}
		if err := insert(stream[off:end]); err != nil {
			return err
		}
	}
	return nil
}

// serveSharded measures one blast.Server configuration.
func serveSharded(p *blast.Pipeline, blocks *blast.Blocks, base *model.Dataset, stream []model.Profile, shards int, window time.Duration, verify bool) (ServeRow, error) {
	ctx := context.Background()
	srv, err := p.ServeBlocks(ctx, blocks, blast.ServerOptions{Shards: shards, SwapOps: serveSwapOps})
	if err != nil {
		return ServeRow{}, err
	}
	defer srv.Close()
	n0 := base.NumProfiles()
	read := func(buf []blast.Candidate, profile int) []blast.Candidate {
		return srv.AppendCandidates(buf, profile)
	}
	write := func() error {
		if err := insertBatches(stream, func(b []model.Profile) error {
			_, err := srv.InsertAll(ctx, b)
			return err
		}); err != nil {
			return err
		}
		// The mixed phase ends only when every shard has applied the
		// stream, so the apply rate is wall-clock honest.
		return srv.Quiesce(ctx)
	}
	lat, mixed, err := mixedLoad(shards, n0, read, write)
	if err != nil {
		return ServeRow{}, err
	}
	q0 := time.Now()
	if err := srv.Quiesce(ctx); err != nil {
		return ServeRow{}, err
	}
	quiesce := time.Since(q0)

	row := ServeRow{
		Mode:           "server",
		Shards:         shards,
		Readers:        shards,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		BaseProfiles:   n0,
		Streamed:       len(stream),
		MixedP50:       percentile(lat, 0.50),
		MixedP95:       percentile(lat, 0.95),
		MixedP99:       percentile(lat, 0.99),
		ReadThroughput: readOnlyLoad(shards, srv.NumProfiles(), read, window),
		QuiesceTime:    quiesce,
		PairsMatch:     true,
	}
	if mixed > 0 {
		row.InsertPerShard = float64(len(stream)) / mixed.Seconds()
	}
	for _, st := range srv.Stats() {
		row.Swaps += st.Swaps
	}
	if verify {
		cold, err := p.IndexBlocks(ctx, &blast.Blocks{Collection: srv.Blocks().Clone(), Schema: srv.Schema()})
		if err != nil {
			return ServeRow{}, fmt.Errorf("cold rebuild: %w", err)
		}
		got, err := srv.Pairs(ctx)
		if err != nil {
			return ServeRow{}, err
		}
		row.PairsMatch = slices.Equal(cold.Pairs(), got)
		if !row.PairsMatch {
			// The experiment doubles as a real-dataset differential check;
			// a divergence must fail the run (and CI), not annotate a row.
			return ServeRow{}, fmt.Errorf("sharded server diverged from the cold rebuild (%d vs %d pairs)",
				len(got), cold.NumRetained())
		}
	}
	return row, nil
}

// serveBaseline measures the single mutable Index under the same mixed
// load shape: one writer streaming InsertAll against readers sharing
// the index's RWMutex.
func serveBaseline(p *blast.Pipeline, blocks *blast.Blocks, base *model.Dataset, stream []model.Profile, readers int, window time.Duration) (ServeRow, error) {
	ctx := context.Background()
	ix, err := p.IndexBlocks(ctx, &blast.Blocks{Collection: blocks.Collection.Clone(), Schema: blocks.Schema})
	if err != nil {
		return ServeRow{}, err
	}
	n0 := base.NumProfiles()
	read := func(buf []blast.Candidate, profile int) []blast.Candidate {
		return ix.AppendCandidates(buf, profile)
	}
	write := func() error {
		return insertBatches(stream, func(b []model.Profile) error {
			_, err := ix.InsertAll(ctx, b)
			return err
		})
	}
	lat, mixed, err := mixedLoad(readers, n0, read, write)
	if err != nil {
		return ServeRow{}, err
	}
	row := ServeRow{
		Mode:           "index",
		Shards:         1,
		Readers:        readers,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		BaseProfiles:   n0,
		Streamed:       len(stream),
		MixedP50:       percentile(lat, 0.50),
		MixedP95:       percentile(lat, 0.95),
		MixedP99:       percentile(lat, 0.99),
		ReadThroughput: readOnlyLoad(readers, ix.NumProfiles(), read, window),
		PairsMatch:     true,
	}
	if mixed > 0 {
		row.InsertPerShard = float64(len(stream)) / mixed.Seconds()
	}
	return row, nil
}

// RenderServe formats the serving series.
func RenderServe(rows []ServeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "sharded snapshot-swap serving vs single mutable Index (mixed read/write load)\n")
	fmt.Fprintf(&b, "%-8s %-7s %7s %8s %10s %9s %9s %9s %12s %8s %6s %7s\n",
		"dataset", "mode", "shards", "streamed", "ins/s/shd", "p50", "p95", "p99", "reads/s", "scaling", "swaps", "match")
	for _, r := range rows {
		scaling := "-"
		if r.ScalingVs1 > 0 {
			scaling = fmt.Sprintf("%.2fx", r.ScalingVs1)
		}
		fmt.Fprintf(&b, "%-8s %-7s %7d %8d %10.0f %9s %9s %9s %12.0f %8s %6d %7v\n",
			r.Dataset, r.Mode, r.Shards, r.Streamed, r.InsertPerShard,
			r.MixedP50, r.MixedP95, r.MixedP99, r.ReadThroughput, scaling, r.Swaps, r.PairsMatch)
	}
	return b.String()
}

// ServeJSON renders the rows as indented JSON (the CI artifact
// BENCH_serve.json).
func ServeJSON(rows []ServeRow) ([]byte, error) {
	return json.MarshalIndent(rows, "", "  ")
}
