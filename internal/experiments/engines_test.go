package experiments

import "testing"

// TestEnginesEquivalenceAndAllocation is the allocation-delta acceptance
// check: on the largest scale point of the series the node-centric
// engine must allocate less than the edge-list engine (it never builds
// the global edge accumulator), while returning identical pairs.
func TestEnginesEquivalenceAndAllocation(t *testing.T) {
	rows, err := Engines(Config{Scale: 0.8, Seed: 42}, "ar1", []float64{0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if !r.Equal {
			t.Errorf("scale %.3f: engines disagree on retained pairs", r.Scale)
		}
		if r.Edges == 0 || r.Pairs == 0 {
			t.Errorf("scale %.3f: degenerate run (edges=%d pairs=%d)", r.Scale, r.Edges, r.Pairs)
		}
	}
	last := rows[len(rows)-1]
	if last.NodeCentricBytes >= last.EdgeListBytes {
		t.Errorf("largest scale: node-centric allocated %d bytes, edge-list %d — streaming engine must allocate less",
			last.NodeCentricBytes, last.EdgeListBytes)
	}
}

func TestEnginesUnknownDataset(t *testing.T) {
	if _, err := Engines(Config{Scale: 1, Seed: 1}, "nope", nil); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestEnginesRender(t *testing.T) {
	rows, err := Engines(Config{Scale: 0.2, Seed: 42}, "ar1", []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if s := RenderEngines("ar1", rows); s == "" {
		t.Error("empty render")
	}
	js, err := EnginesJSON(rows)
	if err != nil || len(js) == 0 {
		t.Errorf("EnginesJSON: %v (%d bytes)", err, len(js))
	}
}
