package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"strings"
	"time"

	"blast"
	"blast/internal/model"
)

// RecoverRow summarizes durable serving and crash recovery on one
// registry dataset for one configuration: shard count x recovery mode.
// Mode "snapshot" persists a snapshot every few batches so recovery is
// newest-snapshot + WAL-suffix replay; mode "walreplay" disables
// snapshot persistence so recovery replays the full WAL against a cold
// build — the two bounds of the recovery cost spectrum.
type RecoverRow struct {
	Dataset      string `json:"dataset"`
	Mode         string `json:"mode"` // "snapshot" or "walreplay"
	Shards       int    `json:"shards"`
	GOMAXPROCS   int    `json:"gomaxprocs"`
	BaseProfiles int    `json:"base_profiles"`
	Streamed     int    `json:"streamed"`
	Batches      int    `json:"batches"`

	// On-disk footprint after the stream: every shard's WAL holds the
	// full batch sequence (WALBytes sums them), snapshots per policy.
	WALBytes      int64 `json:"wal_bytes"`
	SnapshotBytes int64 `json:"snapshot_bytes"`

	// ColdServeTime is the first durable open over the empty directory
	// (index build + shard start), the baseline recovery competes with.
	ColdServeTime time.Duration `json:"cold_serve_ns"`
	// RecoveryTime is the reopen over the populated directory: WAL scan
	// and cut, snapshot restore or cold rebuild, suffix replay, shard
	// start. The CI gate tracks it against the committed baseline.
	RecoveryTime time.Duration `json:"recovery_ns"`

	// Match records the differential check: the recovered server's Pairs
	// must be byte-identical to the pre-close quiesced server's. A false
	// value fails the run (and the benchdiff gate, by name).
	Match bool `json:"match"`
}

// recoverSnapshotEvery is the snapshot cadence of the "snapshot" mode:
// small enough that a snapshot actually lands even at the reduced CI
// scale (a handful of streamed batches) and the replayed WAL suffix
// stays a fraction of the stream.
const recoverSnapshotEvery = 2

// Recover measures durable serving on one registry dataset (default
// census: recovery cost is dominated by the rebuild, so the mid-size
// dataset keeps CI honest and fast) across shard counts (default 1, 2)
// and both recovery modes.
func Recover(cfg Config, name string, shardCounts []int) ([]RecoverRow, error) {
	if name == "" {
		name = "census"
	}
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2}
	}
	full, err := cfg.load(name)
	if err != nil {
		return nil, err
	}
	base, stream := splitStream(full)
	p, err := blast.NewPipeline(blast.DefaultOptions())
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	sch, err := p.InduceSchema(ctx, base)
	if err != nil {
		return nil, err
	}
	blocks, err := p.Block(ctx, base, sch)
	if err != nil {
		return nil, err
	}
	var rows []RecoverRow
	for _, sc := range shardCounts {
		for _, mode := range []string{"snapshot", "walreplay"} {
			row, err := recoverOne(p, blocks, base, stream, sc, mode)
			if err != nil {
				return nil, fmt.Errorf("%s shards=%d mode=%s: %w", name, sc, mode, err)
			}
			row.Dataset = name
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// recoverOne runs one open -> stream -> close -> reopen cycle and
// checks the recovered state against the pre-close one.
func recoverOne(p *blast.Pipeline, blocks *blast.Blocks, base *model.Dataset, stream []model.Profile, shards int, mode string) (RecoverRow, error) {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "blast-recover-*")
	if err != nil {
		return RecoverRow{}, err
	}
	defer os.RemoveAll(dir)
	snapEvery := recoverSnapshotEvery
	if mode == "walreplay" {
		snapEvery = -1
	}
	sopt := blast.ServerOptions{
		Shards: shards, SwapOps: serveSwapOps,
		Dir: dir, SyncEvery: 1, SnapshotEvery: snapEvery,
	}
	t0 := time.Now()
	srv, err := p.ServeBlocks(ctx, blocks, sopt)
	if err != nil {
		return RecoverRow{}, err
	}
	row := RecoverRow{
		Mode:          mode,
		Shards:        shards,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		BaseProfiles:  base.NumProfiles(),
		Streamed:      len(stream),
		ColdServeTime: time.Since(t0),
	}
	if err := insertBatches(stream, func(b []model.Profile) error {
		row.Batches++
		_, err := srv.InsertAll(ctx, b)
		return err
	}); err != nil {
		srv.Close()
		return RecoverRow{}, err
	}
	if err := srv.Quiesce(ctx); err != nil {
		srv.Close()
		return RecoverRow{}, err
	}
	want, err := srv.Pairs(ctx)
	if err != nil {
		srv.Close()
		return RecoverRow{}, err
	}
	if err := srv.Close(); err != nil {
		return RecoverRow{}, err
	}
	row.WALBytes = dirBytes(filepath.Join(dir, "wal"))
	row.SnapshotBytes = dirBytes(filepath.Join(dir, "snap"))

	t1 := time.Now()
	srv2, err := p.ServeBlocks(ctx, blocks, sopt)
	if err != nil {
		return RecoverRow{}, fmt.Errorf("reopen: %w", err)
	}
	row.RecoveryTime = time.Since(t1)
	defer srv2.Close()
	got, err := srv2.Pairs(ctx)
	if err != nil {
		return RecoverRow{}, err
	}
	row.Match = slices.Equal(want, got)
	if !row.Match {
		// The experiment doubles as a real-dataset recovery check; a
		// divergence must fail the run, not annotate a row.
		return RecoverRow{}, fmt.Errorf("recovered server diverged (%d vs %d pairs)", len(got), len(want))
	}
	return row, nil
}

// dirBytes sums the file sizes under a directory tree.
func dirBytes(dir string) int64 {
	var total int64
	filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if info, err := d.Info(); err == nil {
			total += info.Size()
		}
		return nil
	})
	return total
}

// RenderRecover formats the recovery series.
func RenderRecover(rows []RecoverRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "durable serving: WAL + snapshot persistence and crash recovery\n")
	fmt.Fprintf(&b, "%-8s %-10s %7s %8s %8s %10s %10s %12s %12s %6s\n",
		"dataset", "mode", "shards", "streamed", "batches", "wal", "snap", "cold-serve", "recovery", "match")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-10s %7d %8d %8d %9dK %9dK %12s %12s %6v\n",
			r.Dataset, r.Mode, r.Shards, r.Streamed, r.Batches,
			r.WALBytes/1024, r.SnapshotBytes/1024, r.ColdServeTime, r.RecoveryTime, r.Match)
	}
	return b.String()
}

// RecoverJSON renders the rows as indented JSON (the CI artifact
// BENCH_recover.json).
func RecoverJSON(rows []RecoverRow) ([]byte, error) {
	return json.MarshalIndent(rows, "", "  ")
}
