package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"slices"
	"strings"

	"blast"
	"blast/internal/datasets"
	"blast/internal/metablocking"
)

// SpillRow summarizes one corpus-size point of the beyond-RAM storage
// comparison: the same datagen-streamed corpus is indexed twice, once
// resident (StorageMemory) and once file-backed (StorageFile) under a
// MemoryBudget the corpus exceeds, and the row records the heap each
// build holds at serving time, the on-disk segment footprint, the
// page-cache hit rate of a full candidate sweep, and the differential
// check that the two builds retain identical pairs.
type SpillRow struct {
	Profiles     int   `json:"profiles"`
	GOMAXPROCS   int   `json:"gomaxprocs"`
	MemoryBudget int64 `json:"memory_budget_bytes"`

	// Spilled confirms the corpus actually exceeded the budget (a
	// resident "spill" row would make every other column vacuous).
	Spilled bool `json:"spilled"`
	// SpillBytes is the on-disk segment footprint of the spilled build.
	SpillBytes int64 `json:"spill_bytes"`

	// HeapSpilledBytes / HeapResidentBytes are the live-heap deltas each
	// build holds after a forced GC — the RSS-ceiling claim in process
	// terms: the spilled build's serving heap must come in under the
	// resident build's, because the adjacency entry arrays moved to disk.
	// HeapVsResident is their ratio, the metric the CI gate ceilings.
	HeapSpilledBytes  int64   `json:"heap_spilled_bytes"`
	HeapResidentBytes int64   `json:"heap_resident_bytes"`
	HeapVsResident    float64 `json:"heap_vs_resident"`

	// CacheHitRate is the page-cache hit rate over two full candidate
	// sweeps of the spilled index (the second sweep re-reads pages the
	// first faulted in).
	CacheHitRate float64 `json:"cache_hit_rate"`

	// PairsMatch records the spilled-vs-resident differential; a
	// divergence fails the experiment rather than annotating the row.
	PairsMatch bool `json:"pairs_match"`
}

// spillBudgetBytes is the per-build adjacency budget. It is deliberately
// tiny against every corpus point so the build spills from early pages —
// the experiment measures beyond-RAM serving, not the budget heuristic.
const spillBudgetBytes = 16 << 10

// Spill measures the file-backed storage mode on datagen-streamed
// corpora of increasing size (default 1500, 3000, 6000 profiles at
// Scale 1). Every corpus exceeds the fixed MemoryBudget, so each point
// compares a genuinely spilled build against the resident twin.
func Spill(cfg Config, sizes []int) ([]SpillRow, error) {
	if len(sizes) == 0 {
		sizes = []int{1500, 3000, 6000}
	}
	rows := make([]SpillRow, 0, len(sizes))
	for _, base := range sizes {
		n := int(float64(base) * cfg.Scale)
		if n < 100 {
			n = 100
		}
		row, err := spillOne(cfg, n)
		if err != nil {
			return nil, fmt.Errorf("profiles=%d: %w", n, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// liveHeap forces a collection and returns the live heap bytes.
func liveHeap() int64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// spillOne runs one corpus-size point.
func spillOne(cfg Config, n int) (SpillRow, error) {
	ctx := context.Background()
	ds := datasets.NewStream(n, cfg.Seed).Dataset()

	memOpt := blast.DefaultOptions()
	memOpt.Engine = metablocking.NodeCentric
	fileOpt := memOpt
	fileOpt.Storage = blast.StorageFile
	fileOpt.MemoryBudget = spillBudgetBytes
	pMem, err := blast.NewPipeline(memOpt)
	if err != nil {
		return SpillRow{}, err
	}
	pFile, err := blast.NewPipeline(fileOpt)
	if err != nil {
		return SpillRow{}, err
	}

	row := SpillRow{
		Profiles:     n,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		MemoryBudget: spillBudgetBytes,
	}

	// Resident twin first: record its pairs and serving heap, then drop
	// it so the spilled measurement does not sit on top of it.
	heap0 := liveHeap()
	memIx, err := pMem.BuildIndex(ctx, ds)
	if err != nil {
		return SpillRow{}, err
	}
	row.HeapResidentBytes = liveHeap() - heap0
	memPairs := slices.Clone(memIx.Pairs())
	memIx = nil

	heap0 = liveHeap()
	fileIx, err := pFile.BuildIndex(ctx, ds)
	if err != nil {
		return SpillRow{}, err
	}
	defer fileIx.Close()
	row.HeapSpilledBytes = liveHeap() - heap0
	row.Spilled = fileIx.Spilled()
	if !row.Spilled {
		return SpillRow{}, fmt.Errorf("corpus of %d profiles stayed under the %d-byte budget", n, int64(spillBudgetBytes))
	}
	if row.HeapResidentBytes > 0 {
		row.HeapVsResident = float64(row.HeapSpilledBytes) / float64(row.HeapResidentBytes)
	}

	// Two full candidate sweeps: the first faults every page in, the
	// second measures how much of the working set the cache holds.
	var buf []blast.Candidate
	for sweep := 0; sweep < 2; sweep++ {
		for i := 0; i < fileIx.NumProfiles(); i++ {
			buf = fileIx.AppendCandidates(buf[:0], i)
		}
	}
	var cache = func() (spill int64, hit float64) {
		spill, cs := fileIx.StorageStats()
		return spill, cs.HitRate()
	}
	row.SpillBytes, row.CacheHitRate = cache()

	row.PairsMatch = slices.Equal(memPairs, fileIx.Pairs())
	if !row.PairsMatch {
		// The experiment doubles as a real-corpus differential check; a
		// divergence must fail the run (and CI), not annotate a row.
		return SpillRow{}, fmt.Errorf("spilled build diverged from the resident build (%d vs %d pairs)",
			len(fileIx.Pairs()), len(memPairs))
	}
	return row, nil
}

// RenderSpill formats the corpus-size series.
func RenderSpill(rows []SpillRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "beyond-RAM storage: file-backed (spilled) vs resident index build\n")
	fmt.Fprintf(&b, "%9s %12s %8s %12s %12s %12s %9s %8s %7s\n",
		"profiles", "budget", "spilled", "spill bytes", "heap spill", "heap resid", "heap/res", "cache", "match")
	for _, r := range rows {
		fmt.Fprintf(&b, "%9d %12d %8v %12d %12d %12d %8.2fx %7.1f%% %7v\n",
			r.Profiles, r.MemoryBudget, r.Spilled, r.SpillBytes,
			r.HeapSpilledBytes, r.HeapResidentBytes, r.HeapVsResident,
			100*r.CacheHitRate, r.PairsMatch)
	}
	return b.String()
}

// SpillJSON renders the rows as indented JSON (the CI artifact
// BENCH_spill.json).
func SpillJSON(rows []SpillRow) ([]byte, error) {
	return json.MarshalIndent(rows, "", "  ")
}
