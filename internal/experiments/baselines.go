package experiments

import (
	"fmt"
	"strings"
	"time"

	"blast/internal/attr"
	"blast/internal/blocking"
	"blast/internal/metablocking"
	"blast/internal/metrics"
	"blast/internal/text"
)

// BaselineRow compares one blocking family feeding the same BLAST
// meta-blocking: the "your favorite blocking" slot of the paper's title
// claim, extended beyond Token Blocking.
type BaselineRow struct {
	Blocking    string
	PC, PQ, F1  float64
	BlockTime   time.Duration
	Comparisons int64
}

// Baselines builds blocks with each implemented blocking technique —
// Token Blocking (± LMI), q-grams, suffix, Sorted Neighborhood, Canopy
// Clustering — applies the same cleaning workflow and BLAST
// meta-blocking, and reports the final quality. It demonstrates that the
// meta-blocking layer composes with any redundancy-positive substrate.
func Baselines(cfg Config, dataset string) ([]BaselineRow, error) {
	ds, err := cfg.load(dataset)
	if err != nil {
		return nil, err
	}

	type builder struct {
		name string
		fn   func() (*blocking.Collection, error)
	}
	builders := []builder{
		{"token", func() (*blocking.Collection, error) {
			return blocking.TokenBlocking(ds), nil
		}},
		{"token+lmi", func() (*blocking.Collection, error) {
			profiles := attr.ExtractProfiles(ds, text.NewTokenizer())
			part := attr.LMI(profiles, ds.Kind, attr.DefaultConfig())
			return blocking.Build(ds, text.NewTokenizer(), part.KeyFunc()), nil
		}},
		{"qgram3", func() (*blocking.Collection, error) {
			return blocking.QGramBlocking(ds, 3), nil
		}},
		{"suffix3", func() (*blocking.Collection, error) {
			return blocking.SuffixBlocking(ds, 3), nil
		}},
		{"stem", func() (*blocking.Collection, error) {
			return blocking.Build(ds, text.NewStemmingTokenizer(), blocking.TokenKey), nil
		}},
		{"sortedngbh", func() (*blocking.Collection, error) {
			return blocking.SortedNeighborhood(ds, nil, 8, 2)
		}},
		{"canopy", func() (*blocking.Collection, error) {
			return blocking.Canopy(ds, nil, 0.2, 0.6, cfg.Seed)
		}},
	}

	var out []BaselineRow
	for _, b := range builders {
		start := time.Now()
		blocks, err := b.fn()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.name, err)
		}
		blocks = blocking.CleanWorkflow(blocks, 0.5, 0.8)
		blockTime := time.Since(start)
		res := metablocking.Run(blocks, metablocking.DefaultConfig())
		q := metrics.EvaluatePairs(res.Pairs, ds.Truth)
		out = append(out, BaselineRow{
			Blocking: b.name, PC: q.PC, PQ: q.PQ, F1: q.F1,
			BlockTime: blockTime, Comparisons: q.Comparisons,
		})
	}
	return out, nil
}

// RenderBaselines formats the comparison.
func RenderBaselines(dataset string, rows []BaselineRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "blocking substrates + BLAST meta-blocking on %s\n", dataset)
	fmt.Fprintf(&b, "%-12s %8s %9s %8s %10s %12s\n", "blocking", "PC(%)", "PQ(%)", "F1", "time", "comparisons")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8.2f %9.4f %8.3f %10s %12d\n",
			r.Blocking, r.PC*100, r.PQ*100, r.F1, r.BlockTime.Round(time.Millisecond), r.Comparisons)
	}
	return b.String()
}
