package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"blast"
	"blast/internal/datasets"
)

// QueryRow summarizes the online candidate-serving path on one registry
// dataset: the cost of freezing the Index and the latency distribution
// of single-profile Index.Candidates lookups.
type QueryRow struct {
	Dataset        string        `json:"dataset"`
	Profiles       int           `json:"profiles"`
	Edges          int           `json:"edges"`
	RetainedPairs  int           `json:"retained_pairs"`
	BuildTime      time.Duration `json:"build_ns"`
	Queries        int           `json:"queries"`
	MeanCandidates float64       `json:"mean_candidates"`
	P50            time.Duration `json:"p50_ns"`
	P95            time.Duration `json:"p95_ns"`
	P99            time.Duration `json:"p99_ns"`
	Max            time.Duration `json:"max_ns"`
	Throughput     float64       `json:"queries_per_sec"`
}

// queryMaxSamples caps the number of profiles queried per dataset; above
// it, profiles are sampled with a uniform stride so the distribution
// still covers the whole id space.
const queryMaxSamples = 4096

// Query builds a candidate-serving Index for each named registry dataset
// (default: all of them) and measures single-profile Candidates()
// latency and throughput over a stride sample of the profiles. Queries
// run through AppendCandidates with one reused buffer — the allocation
// discipline of a serving loop — so the reported latency is the lookup,
// not the garbage.
func Query(cfg Config, names []string) ([]QueryRow, error) {
	if len(names) == 0 {
		names = datasets.AllNames()
	}
	ctx := context.Background()
	var out []QueryRow
	for _, name := range names {
		ds, err := cfg.load(name)
		if err != nil {
			return nil, err
		}
		p, err := blast.NewPipeline(blast.DefaultOptions())
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		ix, err := p.BuildIndex(ctx, ds)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		build := time.Since(t0)

		n := ix.NumProfiles()
		stride := 1
		if n > queryMaxSamples {
			stride = (n + queryMaxSamples - 1) / queryMaxSamples
		}
		durs := make([]time.Duration, 0, queryMaxSamples)
		var candidates int64
		var total time.Duration
		buf := make([]blast.Candidate, 0, 1024)
		for i := 0; i < n; i += stride {
			q0 := time.Now()
			buf = ix.AppendCandidates(buf[:0], i)
			d := time.Since(q0)
			durs = append(durs, d)
			total += d
			candidates += int64(len(buf))
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		row := QueryRow{
			Dataset:       name,
			Profiles:      n,
			Edges:         ix.NumEdges(),
			RetainedPairs: ix.NumRetained(),
			BuildTime:     build,
			Queries:       len(durs),
			P50:           percentile(durs, 0.50),
			P95:           percentile(durs, 0.95),
			P99:           percentile(durs, 0.99),
		}
		if len(durs) > 0 {
			row.Max = durs[len(durs)-1]
			row.MeanCandidates = float64(candidates) / float64(len(durs))
		}
		if total > 0 {
			row.Throughput = float64(len(durs)) / total.Seconds()
		}
		out = append(out, row)
	}
	return out, nil
}

// percentile returns the q-quantile of sorted durations (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// RenderQuery formats the serving-latency series.
func RenderQuery(rows []QueryRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "single-profile Index.Candidates latency (default options)\n")
	fmt.Fprintf(&b, "%-8s %9s %10s %9s %10s %8s %9s %9s %9s %12s\n",
		"dataset", "profiles", "edges", "pairs", "build", "queries", "p50", "p95", "p99", "queries/s")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %9d %10d %9d %10s %8d %9s %9s %9s %12.0f\n",
			r.Dataset, r.Profiles, r.Edges, r.RetainedPairs,
			r.BuildTime.Round(time.Millisecond), r.Queries,
			r.P50, r.P95, r.P99, r.Throughput)
	}
	return b.String()
}

// QueryJSON renders the rows as indented JSON (the CI latency artifact
// BENCH_query.json).
func QueryJSON(rows []QueryRow) ([]byte, error) {
	return json.MarshalIndent(rows, "", "  ")
}
