package experiments

// load.go: the network serving-tier load experiment. Where serve.go
// measures the in-process Server under mixed load, this experiment
// drives the blasthttp front end over real loopback HTTP: concurrent
// writer clients POSTing insert batches (profiles from the streaming
// synthesizer) race concurrent reader clients GETting candidates, and
// the run ends with a differential check that every HTTP response body
// is byte-identical to the in-process Server call it fronts. The CI
// gate (cmd/benchdiff) checks insert throughput and read p99 against a
// committed baseline and fails by name on Match=false.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"blast"
	"blast/blasthttp"
	"blast/internal/datasets"
	"blast/internal/model"
	"blast/internal/stats"
)

// LoadRow summarizes one HTTP load configuration: c writer clients and
// c reader clients against a blasthttp handler over a sharded Server.
type LoadRow struct {
	Dataset      string `json:"dataset"`
	Clients      int    `json:"clients"`
	Shards       int    `json:"shards"`
	GOMAXPROCS   int    `json:"gomaxprocs"`
	BaseProfiles int    `json:"base_profiles"`
	Streamed     int    `json:"streamed"`

	// InsertThroughput is admitted profiles per second over the mixed
	// phase (writer wall clock, durability receipts included).
	InsertThroughput float64 `json:"inserts_per_sec"`
	// Rejected429 counts insert requests shed by backpressure (each was
	// retried until admission, so Streamed profiles always land).
	Rejected429 int64 `json:"rejected_429"`
	// Batches is the number of InsertAll commits the write path
	// coalesced the insert requests into.
	Batches int64 `json:"batches"`

	// Read latency distribution during the mixed phase (whole HTTP
	// round trips, racing the writers).
	ReadP50 time.Duration `json:"read_p50_ns"`
	ReadP95 time.Duration `json:"read_p95_ns"`
	ReadP99 time.Duration `json:"read_p99_ns"`
	// ReadThroughput is aggregate HTTP reads/sec over the post-quiesce
	// read-only window.
	ReadThroughput float64 `json:"reads_per_sec"`

	// Match records the post-run differential: candidates, threshold
	// and pairs responses over HTTP byte-identical to the in-process
	// Server encodings. The benchdiff gate fails by name when false.
	Match bool `json:"match"`
}

// loadInsertBatch is the profiles-per-POST of the writer clients.
const loadInsertBatch = 4

// Load drives mixed read/write HTTP traffic against the blasthttp
// front end on one registry dataset (default census) for each client
// count (default 2 and 4; c means c writers + c readers). window is
// the read-only measurement phase (0 selects 150ms).
func Load(cfg Config, name string, clientCounts []int, shards int, window time.Duration) ([]LoadRow, error) {
	if name == "" {
		name = "census"
	}
	if len(clientCounts) == 0 {
		clientCounts = []int{2, 4}
	}
	if shards <= 0 {
		shards = 2
	}
	if window <= 0 {
		window = 150 * time.Millisecond
	}
	full, err := cfg.load(name)
	if err != nil {
		return nil, err
	}
	p, err := blast.NewPipeline(blast.DefaultOptions())
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	sch, err := p.InduceSchema(ctx, full)
	if err != nil {
		return nil, err
	}
	blocks, err := p.Block(ctx, full, sch)
	if err != nil {
		return nil, err
	}
	rows := make([]LoadRow, 0, len(clientCounts))
	for _, c := range clientCounts {
		row, err := loadConfig(cfg, p, blocks, full.NumProfiles(), c, shards, window)
		if err != nil {
			return nil, fmt.Errorf("%s clients=%d: %w", name, c, err)
		}
		row.Dataset = name
		rows = append(rows, row)
	}
	return rows, nil
}

// loadConfig measures one client count against a fresh server.
func loadConfig(cfg Config, p *blast.Pipeline, blocks *blast.Blocks, baseProfiles, clients, shards int, window time.Duration) (LoadRow, error) {
	ctx := context.Background()
	srv, err := p.ServeBlocks(ctx, blocks, blast.ServerOptions{Shards: shards, SwapOps: serveSwapOps})
	if err != nil {
		return LoadRow{}, err
	}
	defer srv.Close()
	h := blasthttp.NewHandler(srv, blasthttp.Options{})
	defer h.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return LoadRow{}, err
	}
	hs := &http.Server{Handler: h}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	// One shared keep-alive client: the load should measure the serving
	// tier, not TCP handshakes.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        4 * clients,
		MaxIdleConnsPerHost: 4 * clients,
	}}
	defer client.CloseIdleConnections()

	// The insert stream: synthetic profiles from the streaming source,
	// split contiguously among the writer clients.
	perClientStream := int(600 * cfg.Scale)
	if perClientStream < 8*loadInsertBatch {
		perClientStream = 8 * loadInsertBatch
	}
	streamed := perClientStream * clients
	stream := datasets.NewStream(streamed, cfg.Seed^0x10ad)

	var rejected atomic.Int64
	writer := func(lo, hi int) error {
		for off := lo; off < hi; off += loadInsertBatch {
			end := min(off+loadInsertBatch, hi)
			body, err := insertRequestBody(stream.Profiles(off, end))
			if err != nil {
				return err
			}
			for {
				resp, err := client.Post(base+"/v1/insert", "application/json", bytes.NewReader(body))
				if err != nil {
					return err
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
				if resp.StatusCode != http.StatusTooManyRequests {
					return fmt.Errorf("insert: status %d", resp.StatusCode)
				}
				// Shed by backpressure: honor the server's Retry-After
				// hint, then re-offer the same batch.
				rejected.Add(1)
				sleepRetryAfter(resp)
			}
		}
		return nil
	}

	// Mixed phase: readers sample whole HTTP round trips while the
	// writers drive the insert stream to completion.
	var stop atomic.Bool
	var readErr atomic.Value
	lat := make([][]time.Duration, clients)
	var readers sync.WaitGroup
	for r := 0; r < clients; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := stats.NewRNG(uint64(r)*6151 + 11)
			for !stop.Load() {
				q0 := time.Now()
				if err := getDiscard(client, base+"/v1/candidates?profile="+strconv.Itoa(rng.Intn(baseProfiles))); err != nil {
					readErr.CompareAndSwap(nil, err)
					return
				}
				lat[r] = append(lat[r], time.Since(q0))
			}
		}(r)
	}
	perClient := streamed / clients
	var writers sync.WaitGroup
	writerErrs := make([]error, clients)
	t0 := time.Now()
	for wtr := 0; wtr < clients; wtr++ {
		writers.Add(1)
		go func(wtr int) {
			defer writers.Done()
			lo := wtr * perClient
			hi := lo + perClient
			if wtr == clients-1 {
				hi = streamed
			}
			writerErrs[wtr] = writer(lo, hi)
		}(wtr)
	}
	writers.Wait()
	mixed := time.Since(t0)
	stop.Store(true)
	readers.Wait()
	for _, err := range writerErrs {
		if err != nil {
			return LoadRow{}, err
		}
	}
	if err, _ := readErr.Load().(error); err != nil {
		return LoadRow{}, err
	}

	// Quiesce over the wire, then measure read-only throughput.
	resp, err := client.Post(base+"/v1/quiesce", "application/json", nil)
	if err != nil {
		return LoadRow{}, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return LoadRow{}, fmt.Errorf("quiesce: status %d", resp.StatusCode)
	}

	var total atomic.Int64
	var ro sync.WaitGroup
	deadline := time.Now().Add(window)
	for r := 0; r < clients; r++ {
		ro.Add(1)
		go func(r int) {
			defer ro.Done()
			rng := stats.NewRNG(uint64(r)*7877 + 5)
			n := int64(0)
			for time.Now().Before(deadline) {
				if err := getDiscard(client, base+"/v1/candidates?profile="+strconv.Itoa(rng.Intn(srv.NumProfiles()))); err != nil {
					readErr.CompareAndSwap(nil, err)
					return
				}
				n++
			}
			total.Add(n)
		}(r)
	}
	ro.Wait()
	if err, _ := readErr.Load().(error); err != nil {
		return LoadRow{}, err
	}

	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	st := h.Stats()
	row := LoadRow{
		Clients:        clients,
		Shards:         shards,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		BaseProfiles:   baseProfiles,
		Streamed:       streamed,
		Rejected429:    st.Rejected,
		Batches:        st.Batches,
		ReadP50:        percentile(all, 0.50),
		ReadP95:        percentile(all, 0.95),
		ReadP99:        percentile(all, 0.99),
		ReadThroughput: float64(total.Load()) / window.Seconds(),
	}
	if mixed > 0 {
		row.InsertThroughput = float64(streamed) / mixed.Seconds()
	}
	match, err := loadDifferential(client, base, srv)
	if err != nil {
		return LoadRow{}, err
	}
	row.Match = match
	return row, nil
}

// loadDifferential byte-compares HTTP responses against the in-process
// encodings on a sample of profile ids (boundaries and out-of-range ids
// included) plus the full pairs body. The quiesced, writer-free server
// makes the comparison exact.
func loadDifferential(client *http.Client, base string, srv *blast.Server) (bool, error) {
	n := srv.NumProfiles()
	ids := []int{-1, 0, n - 1, n, n + 1, 2 * n}
	for i := 0; i < n; i += max(1, n/128) {
		ids = append(ids, i)
	}
	for _, id := range ids {
		got, err := getBytes(client, base+"/v1/candidates?profile="+strconv.Itoa(id))
		if err != nil {
			return false, err
		}
		want, err := blasthttp.CandidatesBody(context.Background(), srv, id)
		if err != nil {
			return false, err
		}
		if !bytes.Equal(got, want) {
			return false, nil
		}
		got, err = getBytes(client, base+"/v1/threshold?profile="+strconv.Itoa(id))
		if err != nil {
			return false, err
		}
		want, err = blasthttp.ThresholdBody(context.Background(), srv, id)
		if err != nil {
			return false, err
		}
		if !bytes.Equal(got, want) {
			return false, nil
		}
	}
	got, err := getBytes(client, base+"/v1/pairs")
	if err != nil {
		return false, err
	}
	want, err := blasthttp.PairsBody(context.Background(), srv)
	if err != nil {
		return false, err
	}
	return bytes.Equal(got, want), nil
}

// insertRequestBody renders one writer POST body.
func insertRequestBody(profiles []model.Profile) ([]byte, error) {
	req := blasthttp.InsertRequest{Profiles: make([]blasthttp.ProfileJSON, len(profiles))}
	for i, p := range profiles {
		req.Profiles[i] = blasthttp.FromProfile(p)
	}
	return json.Marshal(req)
}

// sleepRetryAfter honors a 429's Retry-After header (seconds), with a
// short floor so a missing header cannot busy-spin the writer.
func sleepRetryAfter(resp *http.Response) {
	d := 5 * time.Millisecond
	if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
		d = time.Duration(s) * time.Second
	}
	time.Sleep(d)
}

// getDiscard performs one GET, draining and closing the body.
func getDiscard(client *http.Client, url string) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return nil
}

// getBytes performs one GET and returns the full body.
func getBytes(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// RenderLoad formats the load series.
func RenderLoad(rows []LoadRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "HTTP serving tier under concurrent mixed load (loopback, writers+readers per client count)\n")
	fmt.Fprintf(&b, "%-8s %7s %7s %8s %10s %7s %8s %9s %9s %9s %12s %6s\n",
		"dataset", "clients", "shards", "streamed", "inserts/s", "429s", "batches", "p50", "p95", "p99", "reads/s", "match")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %7d %7d %8d %10.0f %7d %8d %9s %9s %9s %12.0f %6v\n",
			r.Dataset, r.Clients, r.Shards, r.Streamed, r.InsertThroughput, r.Rejected429,
			r.Batches, r.ReadP50, r.ReadP95, r.ReadP99, r.ReadThroughput, r.Match)
	}
	return b.String()
}

// LoadJSON renders the rows as indented JSON (the CI artifact
// BENCH_load.json).
func LoadJSON(rows []LoadRow) ([]byte, error) {
	return json.MarshalIndent(rows, "", "  ")
}
