package experiments

import (
	"fmt"
	"strings"

	"blast/internal/attr"
	"blast/internal/blocking"
	"blast/internal/datasets"
	"blast/internal/metablocking"
	"blast/internal/metrics"
	"blast/internal/text"
)

// StandardRow compares BLAST over LMI blocks against BLAST adapted to
// schema-based Standard Blocking (manual alignment) on one fully
// mappable dataset — the "Blast vs. Schema-based Blocking" paragraph of
// Section 4.1, where the paper reports "the exact same PC and PQ"
// because LMI's partitioning is equivalent to the manual alignment.
type StandardRow struct {
	Dataset  string
	LMI      metrics.Quality
	Standard metrics.Quality
}

// StandardBlocking runs the comparison on the fully mappable benchmarks.
func StandardBlocking(cfg Config, names []string) ([]StandardRow, error) {
	if names == nil {
		names = []string{"ar1", "ar2", "prd"}
	}
	var out []StandardRow
	for _, name := range names {
		align, ok := datasets.ManualAlignment(name)
		if !ok {
			return nil, fmt.Errorf("experiments: %s has no manual alignment", name)
		}
		ds, err := cfg.load(name)
		if err != nil {
			return nil, err
		}

		runOn := func(key blocking.KeyFunc) metrics.Quality {
			c := blocking.Build(ds, text.NewTokenizer(), key)
			c = blocking.CleanWorkflow(c, 0.5, 0.8)
			res := metablocking.Run(c, metablocking.DefaultConfig())
			return metrics.EvaluatePairs(res.Pairs, ds.Truth)
		}

		profiles := attr.ExtractProfiles(ds, text.NewTokenizer())
		part := attr.LMI(profiles, ds.Kind, attr.DefaultConfig())
		out = append(out, StandardRow{
			Dataset:  name,
			LMI:      runOn(part.KeyFunc()),
			Standard: runOn(blocking.SchemaKey(align)),
		})
	}
	return out, nil
}

// RenderStandard formats the comparison.
func RenderStandard(rows []StandardRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s | %8s %9s | %8s %9s\n", "", "LMI", "", "standard", "")
	fmt.Fprintf(&b, "%-8s | %8s %9s | %8s %9s\n", "dataset", "PC(%)", "PQ(%)", "PC(%)", "PQ(%)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s | %8.2f %9.4f | %8.2f %9.4f\n",
			r.Dataset, r.LMI.PC*100, r.LMI.PQ*100, r.Standard.PC*100, r.Standard.PQ*100)
	}
	return b.String()
}
