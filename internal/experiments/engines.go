package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"blast/internal/blocking"
	"blast/internal/metablocking"
)

// EngineRow compares the two meta-blocking engines at one scale point of
// a synthetic benchmark: wall-clock time, bytes allocated during the run
// (the memory-wall metric the node-centric engine exists to lower), and
// whether the retained pair lists are identical.
type EngineRow struct {
	Scale            float64       `json:"scale"`
	Profiles         int           `json:"profiles"`
	Comparisons      int64         `json:"comparisons"` // ||B|| of the cleaned blocks
	Edges            int           `json:"edges"`
	Pairs            int           `json:"pairs"`
	EdgeListTime     time.Duration `json:"edge_list_ns"`
	NodeCentricTime  time.Duration `json:"node_centric_ns"`
	EdgeListBytes    uint64        `json:"edge_list_bytes"`
	NodeCentricBytes uint64        `json:"node_centric_bytes"`
	Equal            bool          `json:"equal"`
}

// measureEngine executes one meta-blocking run, timing it and measuring
// the bytes it allocates (MemStats TotalAlloc delta, after a GC so prior
// garbage does not blur the reading). Single-run readings are
// deterministic enough for the engine comparison because both engines
// run serially here.
func measureEngine(blocks *blocking.Collection, cfg metablocking.Config) (*metablocking.Result, time.Duration, uint64) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	res := metablocking.Run(blocks, cfg)
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)
	return res, elapsed, m1.TotalAlloc - m0.TotalAlloc
}

// Engines runs both meta-blocking engines on a benchmark at increasing
// scales and reports their time, allocation and output-equality. Both
// engines run with Workers = 1 so the comparison isolates the
// representation, not the parallelism.
func Engines(cfg Config, dataset string, multipliers []float64) ([]EngineRow, error) {
	if len(multipliers) == 0 {
		multipliers = []float64{0.5, 1, 2}
	}
	var out []EngineRow
	for _, m := range multipliers {
		sub := cfg
		sub.Scale = cfg.Scale * m
		ds, err := sub.load(dataset)
		if err != nil {
			return nil, err
		}
		blocks := blocking.CleanWorkflow(blocking.TokenBlocking(ds), 0.5, 0.8)

		mcfg := metablocking.DefaultConfig()
		mcfg.Workers = 1
		legacy, legacyTime, legacyBytes := measureEngine(blocks, mcfg)
		// Keep only what the row needs and drop the legacy result —
		// above all its materialized graph, the largest structure under
		// comparison — so the node-centric run is not measured under the
		// edge-list graph's heap pressure.
		legacyPairs := legacy.Pairs
		edges := legacy.Graph.NumEdges()
		legacy = nil

		ncfg := mcfg
		ncfg.Engine = metablocking.NodeCentric
		stream, streamTime, streamBytes := measureEngine(blocks, ncfg)

		equal := len(legacyPairs) == len(stream.Pairs)
		for i := 0; equal && i < len(legacyPairs); i++ {
			equal = legacyPairs[i] == stream.Pairs[i]
		}
		out = append(out, EngineRow{
			Scale:            sub.Scale,
			Profiles:         ds.NumProfiles(),
			Comparisons:      blocks.AggregateCardinality(),
			Edges:            edges,
			Pairs:            len(legacyPairs),
			EdgeListTime:     legacyTime,
			NodeCentricTime:  streamTime,
			EdgeListBytes:    legacyBytes,
			NodeCentricBytes: streamBytes,
			Equal:            equal,
		})
	}
	return out, nil
}

// RenderEngines formats the comparison series.
func RenderEngines(dataset string, rows []EngineRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine comparison on %s (serial builds)\n", dataset)
	fmt.Fprintf(&b, "%8s %9s %12s %10s %8s | %10s %12s | %10s %12s | %6s\n",
		"scale", "profiles", "||B||", "edges", "pairs",
		"edge-list", "alloc", "node-cent", "alloc", "equal")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8.3f %9d %12d %10d %8d | %10s %12d | %10s %12d | %6v\n",
			r.Scale, r.Profiles, r.Comparisons, r.Edges, r.Pairs,
			r.EdgeListTime.Round(time.Millisecond), r.EdgeListBytes,
			r.NodeCentricTime.Round(time.Millisecond), r.NodeCentricBytes,
			r.Equal)
	}
	return b.String()
}

// EnginesJSON renders the rows as indented JSON (the CI benchmark
// artifact BENCH_metablocking.json).
func EnginesJSON(rows []EngineRow) ([]byte, error) {
	return json.MarshalIndent(rows, "", "  ")
}
