package experiments

import (
	"fmt"
	"strings"
	"time"

	"blast"
)

// ScalabilityRow is one scale point of the overhead-vs-volume series:
// how the pipeline's phase times and output quality evolve as the
// dataset grows (the t_o discussion of Section 4).
type ScalabilityRow struct {
	Scale       float64
	Profiles    int
	Comparisons int64 // ||B|| of the cleaned block collection
	Induction   time.Duration
	Blocking    time.Duration
	Meta        time.Duration
	PC, PQ      float64
}

// Scalability runs BLAST on one benchmark at increasing scales and
// reports the phase timings. workers follows the blast.Options contract
// (0 = one per CPU, 1 = serial, n = exactly n); pass 1 for a
// machine-independent serial baseline.
func Scalability(cfg Config, dataset string, multipliers []float64, workers int) ([]ScalabilityRow, error) {
	if len(multipliers) == 0 {
		multipliers = []float64{0.5, 1, 2, 4}
	}
	var out []ScalabilityRow
	for _, m := range multipliers {
		sub := cfg
		sub.Scale = cfg.Scale * m
		ds, err := sub.load(dataset)
		if err != nil {
			return nil, err
		}
		opt := blast.DefaultOptions()
		opt.Workers = workers
		res, err := blast.Run(ds, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, ScalabilityRow{
			Scale:       sub.Scale,
			Profiles:    ds.NumProfiles(),
			Comparisons: res.Blocks.AggregateCardinality(),
			Induction:   res.InductionTime,
			Blocking:    res.BlockTime,
			Meta:        res.MetaTime,
			PC:          res.Quality.PC,
			PQ:          res.Quality.PQ,
		})
	}
	return out, nil
}

// RenderScalability formats the series.
func RenderScalability(dataset string, rows []ScalabilityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scalability on %s\n", dataset)
	fmt.Fprintf(&b, "%8s %9s %12s %10s %10s %10s %7s %8s\n",
		"scale", "profiles", "||B||", "induction", "blocking", "meta", "PC(%)", "PQ(%)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8.3f %9d %12d %10s %10s %10s %7.2f %8.4f\n",
			r.Scale, r.Profiles, r.Comparisons,
			r.Induction.Round(time.Millisecond), r.Blocking.Round(time.Millisecond),
			r.Meta.Round(time.Millisecond), r.PC*100, r.PQ*100)
	}
	return b.String()
}
