// Package experiments regenerates every table and figure of the BLAST
// paper's evaluation (Section 4) on the synthetic benchmark workloads of
// internal/datasets. Each experiment returns typed rows and can render
// itself as an aligned text table whose columns mirror the paper's.
//
// Absolute numbers differ from the paper — the workloads are synthetic
// reproductions of the benchmark shapes and the scale is configurable —
// but the comparative structure (who wins, by roughly what factor, where
// the crossovers fall) is the reproduction target. EXPERIMENTS.md records
// paper-vs-measured for every experiment.
package experiments

import (
	"fmt"

	"blast/internal/datasets"
	"blast/internal/model"
)

// Config controls an experiment run.
type Config struct {
	// Scale multiplies the per-dataset default scales below (1.0 = the
	// defaults, chosen to keep the full suite minutes-fast on a laptop).
	Scale float64
	// Seed drives dataset generation and all stochastic steps.
	Seed uint64
}

// DefaultConfig returns the standard experiment configuration.
func DefaultConfig() Config { return Config{Scale: 1, Seed: 42} }

// defaultScales maps each benchmark to the fraction of its paper-scale
// size used at Config.Scale == 1. The ratios preserve each dataset's
// character (ar2's asymmetry, dbp's width) while keeping the largest
// runs tractable.
var defaultScales = map[string]float64{
	"ar1":    0.10,
	"ar2":    0.02,
	"prd":    0.20,
	"mov":    0.02,
	"dbp":    0.10,
	"census": 0.40,
	"cora":   0.40,
	"cddb":   0.05,
}

// load generates a benchmark dataset under the configuration.
func (c Config) load(name string) (*model.Dataset, error) {
	gen, err := datasets.ByName(name)
	if err != nil {
		return nil, err
	}
	base, ok := defaultScales[name]
	if !ok {
		base = 0.1
	}
	scale := base * c.Scale
	if scale <= 0 {
		return nil, fmt.Errorf("experiments: non-positive scale for %s", name)
	}
	return gen(scale, c.Seed), nil
}
