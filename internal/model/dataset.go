package model

import "fmt"

// Kind distinguishes the two Entity Resolution settings considered by the
// paper (Section 2): clean-clean ER matches two duplicate-free collections;
// dirty ER deduplicates a single collection.
type Kind int

const (
	// CleanClean ER takes two duplicate-free collections E1, E2 and only
	// pairs across them are comparable.
	CleanClean Kind = iota
	// Dirty ER takes a single collection Es that contains duplicates; all
	// unordered pairs are comparable.
	Dirty
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case CleanClean:
		return "clean-clean"
	case Dirty:
		return "dirty"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Dataset bundles the input of one ER task: one (dirty) or two
// (clean-clean) entity collections plus the ground truth of matching pairs.
//
// Profiles are addressed by *global ids*: profiles of E1 keep their index,
// profiles of E2 (clean-clean only) are shifted by |E1|. All blocking and
// meta-blocking structures operate on global ids.
type Dataset struct {
	Name  string
	Kind  Kind
	E1    *Collection
	E2    *Collection // nil for dirty ER
	Truth *GroundTruth
}

// NumProfiles returns the total number of profiles across the sources.
func (d *Dataset) NumProfiles() int {
	n := d.E1.Len()
	if d.Kind == CleanClean {
		n += d.E2.Len()
	}
	return n
}

// Split returns the global id of the first profile of E2 (the boundary
// between the two sources). For dirty ER it equals NumProfiles().
func (d *Dataset) Split() int {
	if d.Kind == CleanClean {
		return d.E1.Len()
	}
	return d.E1.Len()
}

// SourceOf reports which source a global id belongs to: 0 for E1, 1 for E2.
// Dirty datasets always return 0.
func (d *Dataset) SourceOf(global int) int {
	if d.Kind == CleanClean && global >= d.E1.Len() {
		return 1
	}
	return 0
}

// Profile returns the profile with the given global id.
func (d *Dataset) Profile(global int) *Profile {
	if d.Kind == CleanClean && global >= d.E1.Len() {
		return &d.E2.Profiles[global-d.E1.Len()]
	}
	return &d.E1.Profiles[global]
}

// Comparable reports whether the unordered pair (u, v) is a valid
// comparison for the dataset kind: distinct profiles, and, for clean-clean
// ER, profiles from different sources.
func (d *Dataset) Comparable(u, v int) bool {
	if u == v {
		return false
	}
	if d.Kind == CleanClean {
		return d.SourceOf(u) != d.SourceOf(v)
	}
	return true
}

// TotalComparisons returns the number of comparisons the naive (brute
// force) solution would execute: |E1|*|E2| for clean-clean and
// n*(n-1)/2 for dirty ER.
func (d *Dataset) TotalComparisons() int64 {
	if d.Kind == CleanClean {
		return int64(d.E1.Len()) * int64(d.E2.Len())
	}
	n := int64(d.E1.Len())
	return n * (n - 1) / 2
}

// Sources returns the collections of the dataset: {E1} for dirty,
// {E1, E2} for clean-clean.
func (d *Dataset) Sources() []*Collection {
	if d.Kind == CleanClean {
		return []*Collection{d.E1, d.E2}
	}
	return []*Collection{d.E1}
}

// Validate checks structural invariants of the dataset: non-nil
// collections, truth pairs referring to existing, comparable profiles.
func (d *Dataset) Validate() error {
	if d.E1 == nil {
		return fmt.Errorf("model: dataset %q has nil E1", d.Name)
	}
	if d.Kind == CleanClean && d.E2 == nil {
		return fmt.Errorf("model: clean-clean dataset %q has nil E2", d.Name)
	}
	if d.Kind == Dirty && d.E2 != nil {
		return fmt.Errorf("model: dirty dataset %q has non-nil E2", d.Name)
	}
	n := d.NumProfiles()
	var err error
	if d.Truth != nil {
		// ForEach, not Pairs: validation only needs membership, so the
		// sorted materialization would be pure overhead on every call.
		d.Truth.ForEach(func(p IDPair) bool {
			u, v := int(p.U), int(p.V)
			if u < 0 || u >= n || v < 0 || v >= n {
				err = fmt.Errorf("model: dataset %q truth pair (%d,%d) out of range [0,%d)", d.Name, u, v, n)
				return false
			}
			if !d.Comparable(u, v) {
				err = fmt.Errorf("model: dataset %q truth pair (%d,%d) is not a valid comparison", d.Name, u, v)
				return false
			}
			return true
		})
	}
	return err
}
