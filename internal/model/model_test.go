package model

import (
	"testing"
	"testing/quick"
)

func TestProfileAddValue(t *testing.T) {
	var p Profile
	p.ID = "p1"
	p.Add("name", "John Abram Jr")
	p.Add("profession", "car seller")
	p.Add("name", "J. Abram")

	if v, ok := p.Value("name"); !ok || v != "John Abram Jr" {
		t.Errorf("Value(name) = %q, %v; want first value", v, ok)
	}
	if _, ok := p.Value("missing"); ok {
		t.Error("Value(missing) reported present")
	}
	if got := p.Values("name"); len(got) != 2 {
		t.Errorf("Values(name) = %v; want 2 values", got)
	}
	names := p.AttributeNames()
	if len(names) != 2 || names[0] != "name" || names[1] != "profession" {
		t.Errorf("AttributeNames = %v; want [name profession] in appearance order", names)
	}
}

func TestProfileString(t *testing.T) {
	var p Profile
	p.ID = "x"
	p.Add("a", "1")
	p.Add("b", "2")
	if got, want := p.String(), "x{a=1, b=2}"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestCollectionAttributeIndex(t *testing.T) {
	c := NewCollection("src")
	p1 := Profile{ID: "1"}
	p1.Add("zeta", "v")
	p1.Add("alpha", "v")
	c.Append(p1)
	p2 := Profile{ID: "2"}
	p2.Add("mid", "v")
	c.Append(p2)

	if got := c.NumAttributes(); got != 3 {
		t.Fatalf("NumAttributes = %d, want 3", got)
	}
	names := c.AttributeNames()
	want := []string{"alpha", "mid", "zeta"}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("AttributeNames[%d] = %q, want %q", i, names[i], n)
		}
	}
	for i, n := range want {
		id, ok := c.AttributeID(n)
		if !ok || id != i {
			t.Errorf("AttributeID(%q) = %d, %v; want %d, true", n, id, ok, i)
		}
	}
	if _, ok := c.AttributeID("nope"); ok {
		t.Error("AttributeID(nope) reported present")
	}
}

func TestCollectionAppendInvalidatesIndex(t *testing.T) {
	c := NewCollection("src")
	p := Profile{ID: "1"}
	p.Add("a", "v")
	c.Append(p)
	if c.NumAttributes() != 1 {
		t.Fatal("precondition failed")
	}
	q := Profile{ID: "2"}
	q.Add("b", "v")
	c.Append(q)
	if got := c.NumAttributes(); got != 2 {
		t.Errorf("NumAttributes after append = %d, want 2", got)
	}
}

func TestCollectionNVP(t *testing.T) {
	c := NewCollection("src")
	p := Profile{ID: "1"}
	p.Add("a", "v")
	p.Add("b", "v")
	c.Append(p)
	c.Append(Profile{ID: "2"})
	if got := c.NVP(); got != 2 {
		t.Errorf("NVP = %d, want 2", got)
	}
}

func TestMakePairCanonical(t *testing.T) {
	p := MakePair(7, 3)
	if p.U != 3 || p.V != 7 {
		t.Errorf("MakePair(7,3) = %+v, want {3 7}", p)
	}
	if q := MakePair(3, 7); q != p {
		t.Errorf("MakePair not symmetric: %+v vs %+v", p, q)
	}
}

func TestPairKeyRoundTrip(t *testing.T) {
	f := func(u, v int32) bool {
		if u < 0 {
			u = -u
		}
		if v < 0 {
			v = -v
		}
		p := MakePair(int(u), int(v))
		return PairFromKey(p.Key()) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPairKeyOrderPreserving(t *testing.T) {
	a := MakePair(1, 2)
	b := MakePair(1, 3)
	c := MakePair(2, 3)
	if !(a.Key() < b.Key() && b.Key() < c.Key()) {
		t.Errorf("keys not ordered: %d %d %d", a.Key(), b.Key(), c.Key())
	}
}

func TestGroundTruth(t *testing.T) {
	g := NewGroundTruth()
	g.Add(1, 5)
	g.Add(5, 1) // duplicate in reverse order
	g.Add(2, 2) // self pair ignored
	g.Add(0, 9)

	if got := g.Size(); got != 2 {
		t.Fatalf("Size = %d, want 2", got)
	}
	if !g.Contains(5, 1) || !g.Contains(1, 5) {
		t.Error("Contains should be order-insensitive")
	}
	if g.Contains(1, 2) {
		t.Error("Contains(1,2) = true, want false")
	}
	ps := g.Pairs()
	if len(ps) != 2 || ps[0] != MakePair(0, 9) || ps[1] != MakePair(1, 5) {
		t.Errorf("Pairs = %v, want sorted [{0 9} {1 5}]", ps)
	}
}

func TestGroundTruthCountIn(t *testing.T) {
	g := NewGroundTruth()
	g.Add(1, 2)
	g.Add(3, 4)
	g.Add(5, 6)

	cand := map[uint64]struct{}{
		MakePair(1, 2).Key(): {},
		MakePair(9, 8).Key(): {},
		MakePair(4, 3).Key(): {},
	}
	if got := g.CountIn(cand); got != 2 {
		t.Errorf("CountIn = %d, want 2", got)
	}
	// Exercise the branch iterating over the ground truth (candidates larger).
	for i := 10; i < 40; i += 2 {
		cand[MakePair(i, i+1).Key()] = struct{}{}
	}
	if got := g.CountIn(cand); got != 2 {
		t.Errorf("CountIn (large candidates) = %d, want 2", got)
	}
}

func newCleanDataset(t *testing.T) *Dataset {
	t.Helper()
	e1 := NewCollection("a")
	e2 := NewCollection("b")
	for i := 0; i < 3; i++ {
		p := Profile{ID: string(rune('a' + i))}
		p.Add("x", "v")
		e1.Append(p)
	}
	for i := 0; i < 2; i++ {
		p := Profile{ID: string(rune('p' + i))}
		p.Add("y", "v")
		e2.Append(p)
	}
	g := NewGroundTruth()
	g.Add(0, 3)
	return &Dataset{Name: "t", Kind: CleanClean, E1: e1, E2: e2, Truth: g}
}

func TestDatasetCleanClean(t *testing.T) {
	d := newCleanDataset(t)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := d.NumProfiles(); got != 5 {
		t.Errorf("NumProfiles = %d, want 5", got)
	}
	if got := d.Split(); got != 3 {
		t.Errorf("Split = %d, want 3", got)
	}
	if d.SourceOf(2) != 0 || d.SourceOf(3) != 1 {
		t.Error("SourceOf boundary wrong")
	}
	if d.Profile(3).ID != "p" {
		t.Errorf("Profile(3).ID = %q, want p", d.Profile(3).ID)
	}
	if d.Comparable(0, 1) {
		t.Error("same-source pair reported comparable in clean-clean ER")
	}
	if !d.Comparable(0, 4) {
		t.Error("cross-source pair reported not comparable")
	}
	if d.Comparable(2, 2) {
		t.Error("self pair comparable")
	}
	if got := d.TotalComparisons(); got != 6 {
		t.Errorf("TotalComparisons = %d, want 6", got)
	}
	if got := len(d.Sources()); got != 2 {
		t.Errorf("Sources len = %d, want 2", got)
	}
}

func TestDatasetDirty(t *testing.T) {
	e := NewCollection("s")
	for i := 0; i < 4; i++ {
		p := Profile{ID: string(rune('a' + i))}
		p.Add("x", "v")
		e.Append(p)
	}
	g := NewGroundTruth()
	g.Add(0, 2)
	d := &Dataset{Name: "dirty", Kind: Dirty, E1: e, Truth: g}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !d.Comparable(0, 1) || !d.Comparable(1, 3) {
		t.Error("dirty pairs should all be comparable")
	}
	if got := d.TotalComparisons(); got != 6 {
		t.Errorf("TotalComparisons = %d, want 6", got)
	}
	if got := len(d.Sources()); got != 1 {
		t.Errorf("Sources len = %d, want 1", got)
	}
}

func TestDatasetValidateErrors(t *testing.T) {
	// Truth pair within the same source of a clean-clean dataset.
	d := newCleanDataset(t)
	d.Truth.Add(0, 1)
	if err := d.Validate(); err == nil {
		t.Error("Validate accepted same-source truth pair")
	}
	// Out-of-range pair.
	d2 := newCleanDataset(t)
	d2.Truth.Add(0, 99)
	if err := d2.Validate(); err == nil {
		t.Error("Validate accepted out-of-range truth pair")
	}
	// Missing E2.
	d3 := newCleanDataset(t)
	d3.E2 = nil
	if err := d3.Validate(); err == nil {
		t.Error("Validate accepted clean-clean dataset without E2")
	}
	// Dirty with E2.
	d4 := newCleanDataset(t)
	d4.Kind = Dirty
	if err := d4.Validate(); err == nil {
		t.Error("Validate accepted dirty dataset with E2")
	}
	// Nil E1.
	d5 := &Dataset{Name: "x", Kind: Dirty}
	if err := d5.Validate(); err == nil {
		t.Error("Validate accepted nil E1")
	}
}

func TestKindString(t *testing.T) {
	if CleanClean.String() != "clean-clean" || Dirty.String() != "dirty" {
		t.Error("Kind.String mismatch")
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind should still render")
	}
}
