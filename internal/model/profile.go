// Package model defines the core data types of the BLAST reproduction:
// entity profiles, entity collections, datasets (clean-clean and dirty ER
// inputs) and ground-truth pair sets.
//
// Terminology follows the paper (Simonini et al., PVLDB 9(12), 2016):
// an entity profile is a tuple of a unique identifier and a set of
// name-value pairs; an entity collection is a set of profiles; two profiles
// match if they refer to the same real-world object.
package model

import (
	"fmt"
	"sort"
	"strings"
)

// Pair is a single name-value pair of an entity profile.
type Pair struct {
	Name  string
	Value string
}

// Profile is an entity profile: a unique identifier plus name-value pairs.
// The zero value is an empty profile.
type Profile struct {
	// ID is the external identifier of the profile (unique within its
	// collection). It is never interpreted by the algorithms.
	ID string
	// Pairs holds the name-value pairs describing the entity.
	Pairs []Pair
}

// Add appends a name-value pair to the profile. Empty values are kept;
// blocking-level transformations decide how to treat them.
func (p *Profile) Add(name, value string) {
	p.Pairs = append(p.Pairs, Pair{Name: name, Value: value})
}

// Value returns the first value associated with the attribute name and
// whether the attribute is present.
func (p *Profile) Value(name string) (string, bool) {
	for _, pr := range p.Pairs {
		if pr.Name == name {
			return pr.Value, true
		}
	}
	return "", false
}

// Values returns all values associated with the attribute name.
func (p *Profile) Values(name string) []string {
	var vs []string
	for _, pr := range p.Pairs {
		if pr.Name == name {
			vs = append(vs, pr.Value)
		}
	}
	return vs
}

// AttributeNames returns the distinct attribute names of the profile in
// first-appearance order.
func (p *Profile) AttributeNames() []string {
	seen := make(map[string]bool, len(p.Pairs))
	var names []string
	for _, pr := range p.Pairs {
		if !seen[pr.Name] {
			seen[pr.Name] = true
			names = append(names, pr.Name)
		}
	}
	return names
}

// String renders the profile as "id{name=value, ...}". Intended for
// debugging and examples, not for serialization.
func (p *Profile) String() string {
	var b strings.Builder
	b.WriteString(p.ID)
	b.WriteByte('{')
	for i, pr := range p.Pairs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", pr.Name, pr.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Collection is an entity collection: an ordered set of entity profiles
// from a single data source. Order is significant only in that profile
// indexes (positions) are used as compact internal identifiers.
type Collection struct {
	// Name identifies the data source (e.g. "dblp").
	Name string
	// Profiles holds the entity profiles of the collection.
	Profiles []Profile

	attrIndex map[string]int // lazily built attribute name -> dense id
	attrNames []string       // dense id -> attribute name
}

// NewCollection returns an empty collection with the given source name.
func NewCollection(name string) *Collection {
	return &Collection{Name: name}
}

// Append adds a profile to the collection and returns its index.
// It invalidates any previously built attribute index.
func (c *Collection) Append(p Profile) int {
	c.Profiles = append(c.Profiles, p)
	c.attrIndex = nil
	c.attrNames = nil
	return len(c.Profiles) - 1
}

// Len returns the number of profiles in the collection.
func (c *Collection) Len() int { return len(c.Profiles) }

// NVP returns the total number of name-value pairs in the collection
// (the "nvp" column of Table 2 in the paper).
func (c *Collection) NVP() int {
	n := 0
	for i := range c.Profiles {
		n += len(c.Profiles[i].Pairs)
	}
	return n
}

// buildAttrIndex assigns dense ids to the distinct attribute names of the
// collection, in deterministic (sorted) order.
func (c *Collection) buildAttrIndex() {
	if c.attrIndex != nil {
		return
	}
	set := make(map[string]bool)
	for i := range c.Profiles {
		for _, pr := range c.Profiles[i].Pairs {
			set[pr.Name] = true
		}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	idx := make(map[string]int, len(names))
	for i, n := range names {
		idx[n] = i
	}
	c.attrIndex = idx
	c.attrNames = names
}

// AttributeNames returns the distinct attribute names of the collection in
// sorted order. The returned slice must not be modified.
func (c *Collection) AttributeNames() []string {
	c.buildAttrIndex()
	return c.attrNames
}

// NumAttributes returns |A|, the number of distinct attribute names.
func (c *Collection) NumAttributes() int {
	c.buildAttrIndex()
	return len(c.attrNames)
}

// AttributeID returns the dense id of an attribute name and whether the
// attribute occurs in the collection. Dense ids are stable for a given
// collection content and span [0, NumAttributes()).
func (c *Collection) AttributeID(name string) (int, bool) {
	c.buildAttrIndex()
	id, ok := c.attrIndex[name]
	return id, ok
}
