package model

import "sort"

// IDPair is an unordered pair of profiles identified by global ids, stored
// canonically with U < V.
type IDPair struct {
	U, V int32
}

// MakePair returns the canonical form of the unordered pair (u, v).
func MakePair(u, v int) IDPair {
	if u > v {
		u, v = v, u
	}
	return IDPair{U: int32(u), V: int32(v)}
}

// Key packs the pair into a single uint64 suitable for map keys and
// sorting. Canonical order is preserved: Key(a) < Key(b) iff a < b in
// (U, V) lexicographic order.
func (p IDPair) Key() uint64 {
	return uint64(uint32(p.U))<<32 | uint64(uint32(p.V))
}

// PairFromKey is the inverse of IDPair.Key.
func PairFromKey(k uint64) IDPair {
	return IDPair{U: int32(k >> 32), V: int32(uint32(k))}
}

// GroundTruth is the set of matching profile pairs of a dataset, i.e. the
// duplicates D_E of the paper's metrics section. Pairs are stored in
// canonical order.
type GroundTruth struct {
	set map[uint64]struct{}
}

// NewGroundTruth returns an empty ground truth.
func NewGroundTruth() *GroundTruth {
	return &GroundTruth{set: make(map[uint64]struct{})}
}

// Add records the unordered pair (u, v) as a match. Self-pairs are ignored.
func (g *GroundTruth) Add(u, v int) {
	if u == v {
		return
	}
	g.set[MakePair(u, v).Key()] = struct{}{}
}

// Contains reports whether (u, v) is a known match.
func (g *GroundTruth) Contains(u, v int) bool {
	_, ok := g.set[MakePair(u, v).Key()]
	return ok
}

// Size returns |D_E|, the number of matching pairs.
func (g *GroundTruth) Size() int { return len(g.set) }

// Pairs returns all matching pairs sorted canonically. The slice is owned
// by the caller.
func (g *GroundTruth) Pairs() []IDPair {
	keys := make([]uint64, 0, len(g.set))
	for k := range g.set {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	ps := make([]IDPair, len(keys))
	for i, k := range keys {
		ps[i] = PairFromKey(k)
	}
	return ps
}

// ForEach invokes fn for every matching pair in unspecified order until
// fn returns false. Unlike Pairs it allocates and sorts nothing — the
// right iteration for validation and membership scans.
func (g *GroundTruth) ForEach(fn func(IDPair) bool) {
	for k := range g.set {
		if !fn(PairFromKey(k)) {
			return
		}
	}
}

// CountIn returns how many ground-truth pairs appear in the given set of
// candidate pair keys (as produced by IDPair.Key). It is the |D_B| term of
// PC and PQ.
func (g *GroundTruth) CountIn(candidates map[uint64]struct{}) int {
	// Iterate over the smaller set.
	if len(candidates) < len(g.set) {
		n := 0
		for k := range candidates {
			if _, ok := g.set[k]; ok {
				n++
			}
		}
		return n
	}
	n := 0
	for k := range g.set {
		if _, ok := candidates[k]; ok {
			n++
		}
	}
	return n
}
