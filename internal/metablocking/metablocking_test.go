package metablocking

import (
	"testing"

	"blast/internal/blocking"
	"blast/internal/datasets"
	"blast/internal/graph"
	"blast/internal/metrics"
	"blast/internal/model"
	"blast/internal/weights"
)

func paperBlocks() *blocking.Collection {
	return blocking.TokenBlocking(datasets.PaperExample())
}

func TestRunBlastOnPaperExample(t *testing.T) {
	ds := datasets.PaperExample()
	res := Run(paperBlocks(), DefaultConfig())
	q := metrics.EvaluatePairs(res.Pairs, ds.Truth)
	if q.PC != 1 || q.PQ != 1 {
		t.Errorf("BLAST on Figure 1: PC=%v PQ=%v, want perfect", q.PC, q.PQ)
	}
	if res.Comparisons() != 2 {
		t.Errorf("comparisons = %d, want 2", res.Comparisons())
	}
}

func TestRunAllPruningsProduceSubsetOfGraph(t *testing.T) {
	c := paperBlocks()
	all := graph.Build(c)
	valid := make(map[uint64]bool)
	for i := range all.Edges {
		valid[all.Edges[i].Pair().Key()] = true
	}
	for _, p := range []Pruning{WEP, CEP, WNP1, WNP2, CNP1, CNP2, BlastWNP} {
		cfg := DefaultConfig()
		cfg.Pruning = p
		res := Run(c, cfg)
		if int64(len(res.Pairs)) > all.TotalComparisons {
			t.Errorf("%v retained more pairs than ||B||", p)
		}
		seen := make(map[uint64]bool)
		for _, pair := range res.Pairs {
			if !valid[pair.Key()] {
				t.Errorf("%v invented pair %v", p, pair)
			}
			if seen[pair.Key()] {
				t.Errorf("%v repeated pair %v (redundant comparison)", p, pair)
			}
			seen[pair.Key()] = true
		}
	}
}

func TestMetaBlockingNeverIncreasesComparisons(t *testing.T) {
	c := paperBlocks()
	base := c.AggregateCardinality()
	for _, p := range []Pruning{WEP, CEP, WNP1, WNP2, CNP1, CNP2, BlastWNP} {
		cfg := DefaultConfig()
		cfg.Pruning = p
		res := Run(c, cfg)
		if res.Comparisons() > base {
			t.Errorf("%v: %d comparisons > input %d", p, res.Comparisons(), base)
		}
	}
}

func TestRunOnGraphMatchesRun(t *testing.T) {
	c := paperBlocks()
	cfg := DefaultConfig()
	a := Run(c, cfg)
	g := graph.Build(c)
	b := RunOnGraph(g, cfg)
	if len(a.Pairs) != len(b.Pairs) {
		t.Fatalf("Run %d pairs vs RunOnGraph %d", len(a.Pairs), len(b.Pairs))
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			t.Fatalf("pair %d differs", i)
		}
	}
}

func TestConfigVariants(t *testing.T) {
	c := paperBlocks()
	// CBS + WNP1 reproduces Figure 1d: 4 retained edges.
	res := Run(c, Config{Scheme: weights.Scheme{Kind: weights.CBS}, Pruning: WNP1})
	if len(res.Pairs) != 4 {
		t.Errorf("CBS+wnp1 retained %d, want 4", len(res.Pairs))
	}
	// CEP with explicit K.
	res = Run(c, Config{Scheme: weights.Scheme{Kind: weights.CBS}, Pruning: CEP, K: 2})
	if len(res.Pairs) != 2 {
		t.Errorf("CEP K=2 retained %d", len(res.Pairs))
	}
}

func TestOverheadAccounting(t *testing.T) {
	res := Run(paperBlocks(), DefaultConfig())
	if res.Overhead() != res.GraphTime+res.WeightTime+res.PruneTime {
		t.Error("Overhead mismatch")
	}
	if res.Overhead() < 0 {
		t.Error("negative overhead")
	}
}

func TestPairSet(t *testing.T) {
	res := Run(paperBlocks(), DefaultConfig())
	set := res.PairSet()
	if len(set) != len(res.Pairs) {
		t.Errorf("PairSet size %d != %d", len(set), len(res.Pairs))
	}
	for _, p := range res.Pairs {
		if _, ok := set[p.Key()]; !ok {
			t.Errorf("pair %v missing from set", p)
		}
	}
}

func TestPruningString(t *testing.T) {
	names := map[Pruning]string{
		WEP: "wep", CEP: "cep", WNP1: "wnp1", WNP2: "wnp2",
		CNP1: "cnp1", CNP2: "cnp2", BlastWNP: "blast-wnp",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
	if Pruning(42).String() == "" {
		t.Error("unknown pruning should render")
	}
}

func TestRunPanicsOnUnknownPruning(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown pruning should panic")
		}
	}()
	Run(paperBlocks(), Config{Scheme: weights.Blast(), Pruning: Pruning(42)})
}

func TestPairsCanonicalOrder(t *testing.T) {
	res := Run(paperBlocks(), Config{Scheme: weights.Scheme{Kind: weights.CBS}, Pruning: WNP1})
	for i, p := range res.Pairs {
		if p.U >= p.V {
			t.Errorf("pair %d not canonical: %v", i, p)
		}
		if i > 0 && res.Pairs[i-1].Key() >= p.Key() {
			t.Error("pairs not sorted")
		}
	}
}

func TestCleanCleanMetaBlocking(t *testing.T) {
	// A small clean-clean dataset: meta-blocking only emits cross pairs.
	e1 := model.NewCollection("A")
	for _, s := range []string{"alpha beta gamma", "delta epsilon zeta"} {
		p := model.Profile{ID: s[:2]}
		p.Add("t", s)
		e1.Append(p)
	}
	e2 := model.NewCollection("B")
	for _, s := range []string{"alpha beta gamma", "delta theta iota"} {
		p := model.Profile{ID: s[:2]}
		p.Add("t", s)
		e2.Append(p)
	}
	g := model.NewGroundTruth()
	g.Add(0, 2)
	g.Add(1, 3)
	ds := &model.Dataset{Name: "cc", Kind: model.CleanClean, E1: e1, E2: e2, Truth: g}
	res := Run(blocking.TokenBlocking(ds), DefaultConfig())
	for _, p := range res.Pairs {
		if !ds.Comparable(int(p.U), int(p.V)) {
			t.Errorf("non-comparable pair %v emitted", p)
		}
	}
	q := metrics.EvaluatePairs(res.Pairs, ds.Truth)
	if q.PC != 1 {
		t.Errorf("PC = %v, want 1 (matches share whole profiles)", q.PC)
	}
}

func TestRunOnGraphAllPrunings(t *testing.T) {
	c := paperBlocks()
	for _, p := range []Pruning{WEP, CEP, WNP1, WNP2, CNP1, CNP2, BlastWNP} {
		g := graph.Build(c)
		res := RunOnGraph(g, Config{Scheme: weights.Scheme{Kind: weights.CBS}, Pruning: p, K: 3, C: 2, D: 2})
		if res.Graph != g {
			t.Errorf("%v: result should carry the graph", p)
		}
		for _, pair := range res.Pairs {
			if g.EdgeBetween(int(pair.U), int(pair.V)) == nil {
				t.Errorf("%v: pair %v not an edge", p, pair)
			}
		}
	}
}

func TestRunOnGraphPanicsOnUnknownPruning(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown pruning should panic")
		}
	}()
	g := graph.Build(paperBlocks())
	RunOnGraph(g, Config{Scheme: weights.Blast(), Pruning: Pruning(77)})
}

func TestRunWithWorkersMatchesSerial(t *testing.T) {
	c := paperBlocks()
	serial := Run(c, DefaultConfig())
	cfg := DefaultConfig()
	cfg.Workers = 4
	par := Run(c, cfg)
	if len(serial.Pairs) != len(par.Pairs) {
		t.Fatalf("workers changed result: %d vs %d", len(serial.Pairs), len(par.Pairs))
	}
	for i := range serial.Pairs {
		if serial.Pairs[i] != par.Pairs[i] {
			t.Fatal("workers changed pairs")
		}
	}
}
