// Package metablocking orchestrates graph-based meta-blocking: it builds
// the blocking graph of a block collection, applies a weighting scheme,
// prunes edges, and materializes the restructured block collection (each
// retained edge becomes a block of two profiles, so redundant comparisons
// are impossible by construction — Definition 2 of the paper).
package metablocking

import (
	"fmt"
	"time"

	"blast/internal/blocking"
	"blast/internal/graph"
	"blast/internal/model"
	"blast/internal/prune"
	"blast/internal/weights"
)

// Pruning enumerates the pruning algorithms.
type Pruning int

const (
	// WEP discards edges below the global mean weight.
	WEP Pruning = iota
	// CEP keeps the globally top-K edges.
	CEP
	// WNP1 is redefined weight node pruning (either endpoint).
	WNP1
	// WNP2 is reciprocal weight node pruning (both endpoints).
	WNP2
	// CNP1 is redefined cardinality node pruning.
	CNP1
	// CNP2 is reciprocal cardinality node pruning.
	CNP2
	// BlastWNP is the paper's pruning: theta_i = M_i/c, edge threshold
	// (theta_u + theta_v)/d.
	BlastWNP
)

// String implements fmt.Stringer.
func (p Pruning) String() string {
	switch p {
	case WEP:
		return "wep"
	case CEP:
		return "cep"
	case WNP1:
		return "wnp1"
	case WNP2:
		return "wnp2"
	case CNP1:
		return "cnp1"
	case CNP2:
		return "cnp2"
	case BlastWNP:
		return "blast-wnp"
	default:
		return fmt.Sprintf("Pruning(%d)", int(p))
	}
}

// Config selects the weighting scheme and pruning algorithm.
type Config struct {
	// Scheme is the edge weighting (default: BLAST chi2*h).
	Scheme weights.Scheme
	// Pruning is the pruning algorithm (default BlastWNP).
	Pruning Pruning
	// C is BLAST's local threshold divisor theta_i = M_i / C (default 2).
	C float64
	// D is BLAST's threshold combiner (theta_u + theta_v) / D (default 2).
	D float64
	// K overrides the cardinality of CEP/CNP; <= 0 uses their defaults.
	K int
	// Workers parallelizes blocking-graph construction: 0/1 builds
	// serially, >1 shards pair accumulation across goroutines (see
	// graph.BuildParallel). Output is identical either way.
	Workers int
}

// DefaultConfig returns BLAST's meta-blocking configuration.
func DefaultConfig() Config {
	return Config{Scheme: weights.Blast(), Pruning: BlastWNP, C: 2, D: 2}
}

// Result is the outcome of a meta-blocking run.
type Result struct {
	// Pairs are the retained comparisons in canonical order; each is a
	// block of two profiles in the restructured collection.
	Pairs []model.IDPair
	// Graph is the weighted blocking graph (weights as of the run).
	Graph *graph.Graph
	// GraphTime, WeightTime and PruneTime decompose the overhead time to.
	GraphTime  time.Duration
	WeightTime time.Duration
	PruneTime  time.Duration
}

// Overhead returns the total meta-blocking overhead time (the paper's
// t_o, excluding the underlying blocking).
func (r *Result) Overhead() time.Duration {
	return r.GraphTime + r.WeightTime + r.PruneTime
}

// Comparisons returns the aggregate cardinality of the restructured
// collection, which equals the number of retained pairs.
func (r *Result) Comparisons() int64 { return int64(len(r.Pairs)) }

// PairSet returns the retained pairs keyed by IDPair.Key.
func (r *Result) PairSet() map[uint64]struct{} {
	set := make(map[uint64]struct{}, len(r.Pairs))
	for _, p := range r.Pairs {
		set[p.Key()] = struct{}{}
	}
	return set
}

// Run executes meta-blocking over the block collection.
func Run(c *blocking.Collection, cfg Config) *Result {
	t0 := time.Now()
	var g *graph.Graph
	if cfg.Workers > 1 {
		g = graph.BuildParallel(c, cfg.Workers)
	} else {
		g = graph.Build(c)
	}
	t1 := time.Now()
	cfg.Scheme.Apply(g)
	t2 := time.Now()

	var retained []int
	switch cfg.Pruning {
	case WEP:
		retained = prune.WEP(g)
	case CEP:
		retained = prune.CEP(g, cfg.K)
	case WNP1:
		retained = prune.WNP(g, prune.Redefined)
	case WNP2:
		retained = prune.WNP(g, prune.Reciprocal)
	case CNP1:
		retained = prune.CNP(g, cfg.K, prune.Redefined)
	case CNP2:
		retained = prune.CNP(g, cfg.K, prune.Reciprocal)
	case BlastWNP:
		retained = prune.BlastWNP(g, cfg.C, cfg.D)
	default:
		panic(fmt.Sprintf("metablocking: unknown pruning %d", int(cfg.Pruning)))
	}
	t3 := time.Now()

	pairs := make([]model.IDPair, len(retained))
	for i, idx := range retained {
		pairs[i] = g.Edges[idx].Pair()
	}
	return &Result{
		Pairs:      pairs,
		Graph:      g,
		GraphTime:  t1.Sub(t0),
		WeightTime: t2.Sub(t1),
		PruneTime:  t3.Sub(t2),
	}
}

// RunOnGraph executes weighting and pruning on a prebuilt graph. The
// graph's weights are overwritten. Useful for ablations that reuse one
// graph across schemes.
func RunOnGraph(g *graph.Graph, cfg Config) *Result {
	t1 := time.Now()
	cfg.Scheme.Apply(g)
	t2 := time.Now()
	var retained []int
	switch cfg.Pruning {
	case WEP:
		retained = prune.WEP(g)
	case CEP:
		retained = prune.CEP(g, cfg.K)
	case WNP1:
		retained = prune.WNP(g, prune.Redefined)
	case WNP2:
		retained = prune.WNP(g, prune.Reciprocal)
	case CNP1:
		retained = prune.CNP(g, cfg.K, prune.Redefined)
	case CNP2:
		retained = prune.CNP(g, cfg.K, prune.Reciprocal)
	case BlastWNP:
		retained = prune.BlastWNP(g, cfg.C, cfg.D)
	default:
		panic(fmt.Sprintf("metablocking: unknown pruning %d", int(cfg.Pruning)))
	}
	t3 := time.Now()
	pairs := make([]model.IDPair, len(retained))
	for i, idx := range retained {
		pairs[i] = g.Edges[idx].Pair()
	}
	return &Result{Pairs: pairs, Graph: g, WeightTime: t2.Sub(t1), PruneTime: t3.Sub(t2)}
}
