// Package metablocking orchestrates graph-based meta-blocking: it builds
// the blocking graph of a block collection, applies a weighting scheme,
// prunes edges, and materializes the restructured block collection (each
// retained edge becomes a block of two profiles, so redundant comparisons
// are impossible by construction — Definition 2 of the paper).
//
// Two execution engines are available. EdgeList materializes the full
// edge list (graph.Build) before weighting and pruning; NodeCentric
// streams over a CSR adjacency (graph.BuildCSR) and never allocates a
// global edge accumulator, which keeps peak memory proportional to the
// adjacency itself on large collections. Both produce identical Pairs.
package metablocking

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"blast/internal/blocking"
	"blast/internal/graph"
	"blast/internal/model"
	"blast/internal/prune"
	"blast/internal/weights"
)

// Pruning enumerates the pruning algorithms.
type Pruning int

const (
	// WEP discards edges below the global mean weight.
	WEP Pruning = iota
	// CEP keeps the globally top-K edges.
	CEP
	// WNP1 is redefined weight node pruning (either endpoint).
	WNP1
	// WNP2 is reciprocal weight node pruning (both endpoints).
	WNP2
	// CNP1 is redefined cardinality node pruning.
	CNP1
	// CNP2 is reciprocal cardinality node pruning.
	CNP2
	// BlastWNP is the paper's pruning: theta_i = M_i/c, edge threshold
	// (theta_u + theta_v)/d.
	BlastWNP
)

// String implements fmt.Stringer.
func (p Pruning) String() string {
	switch p {
	case WEP:
		return "wep"
	case CEP:
		return "cep"
	case WNP1:
		return "wnp1"
	case WNP2:
		return "wnp2"
	case CNP1:
		return "cnp1"
	case CNP2:
		return "cnp2"
	case BlastWNP:
		return "blast-wnp"
	default:
		return fmt.Sprintf("Pruning(%d)", int(p))
	}
}

// NodeLocal reports whether the scheme's retention decision for an edge
// depends only on the edge's weight and its two endpoints' node-local
// thresholds (theta_i), with no collection-size-derived budget: BlastWNP
// and the two WNP variants. For these schemes an insertion re-evaluates
// only the runs whose weights or thresholds actually changed; the global
// and cardinality schemes (WEP, CEP, CNP — whose default budgets shift
// with every profile) require a full re-evaluation instead.
func (p Pruning) NodeLocal() bool {
	switch p {
	case WNP1, WNP2, BlastWNP:
		return true
	default:
		return false
	}
}

// Engine selects the blocking-graph execution strategy of Run.
type Engine int

const (
	// EdgeList materializes the deduplicated edge list before weighting
	// and pruning — the default engine, required by RunOnGraph and by
	// consumers that inspect Result.Graph.
	EdgeList Engine = iota
	// NodeCentric builds a CSR adjacency per node from the block index
	// and streams the pruning schemes over it in two passes (thresholds,
	// then retention). No global edge map or edge slice is ever
	// allocated; Result.Graph is nil and Result.CSR carries the
	// adjacency. Retained pairs are identical to EdgeList.
	NodeCentric
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EdgeList:
		return "edge-list"
	case NodeCentric:
		return "node-centric"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Config selects the weighting scheme and pruning algorithm.
type Config struct {
	// Scheme is the edge weighting (default: BLAST chi2*h).
	Scheme weights.Scheme
	// Pruning is the pruning algorithm (default BlastWNP).
	Pruning Pruning
	// Engine selects the execution strategy (default EdgeList).
	Engine Engine
	// C is BLAST's local threshold divisor theta_i = M_i / C (default 2).
	C float64
	// D is BLAST's threshold combiner (theta_u + theta_v) / D (default 2).
	D float64
	// K overrides the cardinality of CEP/CNP; <= 0 uses their defaults.
	K int
	// Workers parallelizes blocking-graph construction and, on the
	// NodeCentric path, the streaming pruning passes (see PruneCSR): 0
	// uses one worker per CPU (GOMAXPROCS), 1 runs serially, >1 uses
	// exactly that many goroutines. Output is byte-identical either way.
	// For the EdgeList engine the automatic default only engages on
	// collections with at least ~4M aggregate comparisons: its sharded
	// builder makes every worker scan every pair, so parallelism below
	// that scale multiplies CPU for little wall-clock gain (an explicit
	// Workers > 1 is always honored). The NodeCentric builder partitions
	// work without duplication and parallelizes at any scale, as do the
	// pruning passes.
	Workers int
	// OnStage, when non-nil, is invoked synchronously as each internal
	// stage of a run completes ("graph", "weight", "prune") with the
	// stage's wall-clock duration. It must be fast and must not retain
	// the run's structures.
	OnStage func(stage string, d time.Duration)
	// Spill, when non-nil, selects the beyond-RAM NodeCentric path: the
	// blocking graph is built through graph.BuildCSRSpillCtx, spilling
	// its adjacency to segment files under Spill.Dir once the resident
	// footprint exceeds Spill.MemoryBudget. The retained pairs are
	// byte-identical to the resident build; the Result carries no CSR
	// (the spilled graph is closed, its segments deleted). Only the
	// NodeCentric engine supports spilling.
	Spill *graph.SpillOptions
}

// stage reports a completed stage to the OnStage observer, if any.
func (c *Config) stage(name string, d time.Duration) {
	if c.OnStage != nil {
		c.OnStage(name, d)
	}
}

// DefaultConfig returns BLAST's meta-blocking configuration.
func DefaultConfig() Config {
	return Config{Scheme: weights.Blast(), Pruning: BlastWNP, C: 2, D: 2}
}

// resolveWorkers maps the Config.Workers contract to a concrete worker
// count: 0 (or negative) means one worker per CPU.
func resolveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// autoParallelMinComparisons gates the EdgeList engine's automatic
// (Workers == 0) parallelism: graph.BuildParallel's sharding has every
// worker enumerate all ||B|| pairs, so below this aggregate cardinality
// the duplicated scanning outweighs the shared map work it divides (the
// builder's own guidance is "tens of millions").
const autoParallelMinComparisons = 4 << 20

// Result is the outcome of a meta-blocking run.
type Result struct {
	// Pairs are the retained comparisons in canonical order; each is a
	// block of two profiles in the restructured collection.
	Pairs []model.IDPair
	// Graph is the weighted blocking graph (weights as of the run). It
	// is nil for NodeCentric runs, which never materialize an edge list;
	// see CSR instead.
	Graph *graph.Graph
	// CSR is the node-centric adjacency of a NodeCentric run (nil for
	// EdgeList runs). Its co-occurrence stat arrays are released after
	// weighting; Weights remain valid.
	CSR *graph.CSR
	// Workers is the resolved worker count requested of the graph
	// builder (0 and negatives resolve to GOMAXPROCS). The builders may
	// still fall back to a serial build on collections too small to
	// shard; RunOnGraph, which builds no graph, leaves it 0.
	Workers int
	// GraphTime, WeightTime and PruneTime decompose the overhead time to.
	GraphTime  time.Duration
	WeightTime time.Duration
	PruneTime  time.Duration
}

// Overhead returns the total meta-blocking overhead time (the paper's
// t_o, excluding the underlying blocking).
func (r *Result) Overhead() time.Duration {
	return r.GraphTime + r.WeightTime + r.PruneTime
}

// Comparisons returns the aggregate cardinality of the restructured
// collection, which equals the number of retained pairs.
func (r *Result) Comparisons() int64 { return int64(len(r.Pairs)) }

// PairSet returns the retained pairs keyed by IDPair.Key.
func (r *Result) PairSet() map[uint64]struct{} {
	set := make(map[uint64]struct{}, len(r.Pairs))
	for _, p := range r.Pairs {
		set[p.Key()] = struct{}{}
	}
	return set
}

// pruneGraph dispatches the configured pruning over an edge-list graph,
// returning the indexes of the retained edges.
func pruneGraph(g *graph.Graph, cfg Config) []int {
	switch cfg.Pruning {
	case WEP:
		return prune.WEP(g)
	case CEP:
		return prune.CEP(g, cfg.K)
	case WNP1:
		return prune.WNP(g, prune.Redefined)
	case WNP2:
		return prune.WNP(g, prune.Reciprocal)
	case CNP1:
		return prune.CNP(g, cfg.K, prune.Redefined)
	case CNP2:
		return prune.CNP(g, cfg.K, prune.Reciprocal)
	case BlastWNP:
		return prune.BlastWNP(g, cfg.C, cfg.D)
	default:
		panic(fmt.Sprintf("metablocking: unknown pruning %d", int(cfg.Pruning)))
	}
}

// PruneCSR dispatches the configured pruning over a weighted CSR graph,
// emitting the retained pairs directly in canonical order. It is the
// streaming counterpart of the edge-list pruning dispatch and is exported
// for consumers (the candidate-serving index) that weight a CSR
// themselves and only need the retention decision. Cfg.Workers selects
// the pruning parallelism (0 = GOMAXPROCS, 1 = serial); the retained
// pairs are byte-identical at every worker count. Cancellation is
// observed at the edge-segment granularity of the streaming schemes.
func PruneCSR(ctx context.Context, g *graph.CSR, cfg Config) ([]model.IDPair, error) {
	workers := cfg.Workers
	switch cfg.Pruning {
	case WEP:
		return prune.WEPStream(ctx, g, workers)
	case CEP:
		return prune.CEPStream(ctx, g, cfg.K, workers)
	case WNP1:
		return prune.WNPStream(ctx, g, prune.Redefined, workers)
	case WNP2:
		return prune.WNPStream(ctx, g, prune.Reciprocal, workers)
	case CNP1:
		return prune.CNPStream(ctx, g, cfg.K, prune.Redefined, workers)
	case CNP2:
		return prune.CNPStream(ctx, g, cfg.K, prune.Reciprocal, workers)
	case BlastWNP:
		return prune.BlastWNPStream(ctx, g, cfg.C, cfg.D, workers)
	default:
		panic(fmt.Sprintf("metablocking: unknown pruning %d", int(cfg.Pruning)))
	}
}

// Run executes meta-blocking over the block collection.
func Run(c *blocking.Collection, cfg Config) *Result {
	res, err := RunCtx(context.Background(), c, cfg)
	if err != nil {
		// The background context never cancels and cancellation is the
		// only error source of the staged path.
		panic(fmt.Sprintf("metablocking: unexpected error without cancellation: %v", err))
	}
	return res
}

// RunCtx is Run with cooperative cancellation: graph construction polls
// ctx at worker-chunk granularity, pruning at node-chunk granularity, and
// the run returns ctx.Err() at the first stage boundary (or chunk) that
// observes cancellation. The retained pairs are identical to Run's.
func RunCtx(ctx context.Context, c *blocking.Collection, cfg Config) (*Result, error) {
	switch cfg.Engine {
	case EdgeList:
		if cfg.Spill != nil {
			panic("metablocking: Spill requires the NodeCentric engine")
		}
		// fall through to the edge-list path below
	case NodeCentric:
		return runNodeCentric(ctx, c, cfg)
	default:
		panic(fmt.Sprintf("metablocking: unknown engine %d", int(cfg.Engine)))
	}
	workers := resolveWorkers(cfg.Workers)
	if cfg.Workers <= 0 && workers > 1 && c.AggregateCardinality() < autoParallelMinComparisons {
		workers = 1 // auto-parallelism not worth W x the pair scanning here
	}
	t0 := telemetryNow()
	var g *graph.Graph
	var err error
	if workers > 1 {
		g, err = graph.BuildParallelCtx(ctx, c, workers)
	} else {
		g, err = graph.BuildCtx(ctx, c)
	}
	if err != nil {
		return nil, err
	}
	t1 := telemetryNow()
	cfg.stage("graph", t1.Sub(t0))
	cfg.Scheme.Apply(g)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t2 := telemetryNow()
	cfg.stage("weight", t2.Sub(t1))
	retained := pruneGraph(g, cfg)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t3 := telemetryNow()
	cfg.stage("prune", t3.Sub(t2))

	pairs := make([]model.IDPair, len(retained))
	for i, idx := range retained {
		pairs[i] = g.Edges[idx].Pair()
	}
	return &Result{
		Pairs:      pairs,
		Graph:      g,
		Workers:    workers,
		GraphTime:  t1.Sub(t0),
		WeightTime: t2.Sub(t1),
		PruneTime:  t3.Sub(t2),
	}, nil
}

// runNodeCentric is the streaming path of RunCtx: CSR construction,
// per-adjacency weighting, and two-pass pruning, with no edge list.
func runNodeCentric(ctx context.Context, c *blocking.Collection, cfg Config) (*Result, error) {
	workers := resolveWorkers(cfg.Workers)
	t0 := telemetryNow()
	var g *graph.CSR
	var err error
	switch {
	case cfg.Spill != nil:
		g, err = graph.BuildCSRSpillCtx(ctx, c, *cfg.Spill)
	case workers > 1:
		g, err = graph.BuildCSRParallelCtx(ctx, c, workers)
	default:
		g, err = graph.BuildCSRCtx(ctx, c)
	}
	if err != nil {
		return nil, err
	}
	// A spilled graph is temporary to the run: its segments are deleted
	// on every exit path, and the Result carries no CSR.
	spilled := g.Spilled()
	if spilled {
		defer g.Close()
	}
	t1 := telemetryNow()
	cfg.stage("graph", t1.Sub(t0))
	cfg.Scheme.ApplyCSR(g)
	g.ReleaseStats()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t2 := telemetryNow()
	cfg.stage("weight", t2.Sub(t1))
	pairs, err := PruneCSR(ctx, g, cfg)
	if err != nil {
		return nil, err
	}
	// Spilled reads fail closed through the graph's sticky error: a
	// pruning pass over corrupt or truncated segments produced zeroed
	// runs, not silent wrong answers — reject the run.
	if err := g.Err(); err != nil {
		return nil, err
	}
	t3 := telemetryNow()
	cfg.stage("prune", t3.Sub(t2))
	if pairs == nil {
		pairs = make([]model.IDPair, 0)
	}
	res := &Result{
		Pairs:      pairs,
		Workers:    workers,
		GraphTime:  t1.Sub(t0),
		WeightTime: t2.Sub(t1),
		PruneTime:  t3.Sub(t2),
	}
	if !spilled {
		res.CSR = g
	}
	return res, nil
}

// RunOnGraph executes weighting and pruning on a prebuilt edge-list
// graph (always the EdgeList engine). The graph's weights are
// overwritten. Useful for ablations that reuse one graph across schemes.
func RunOnGraph(g *graph.Graph, cfg Config) *Result {
	t1 := telemetryNow()
	cfg.Scheme.Apply(g)
	t2 := telemetryNow()
	retained := pruneGraph(g, cfg)
	t3 := telemetryNow()
	pairs := make([]model.IDPair, len(retained))
	for i, idx := range retained {
		pairs[i] = g.Edges[idx].Pair()
	}
	return &Result{Pairs: pairs, Graph: g, WeightTime: t2.Sub(t1), PruneTime: t3.Sub(t2)}
}

// telemetryNow reads the wall clock for the per-stage timing telemetry
// (Result.GraphTime/WeightTime/PruneTime and the stage progress hook).
// It is the package's single audited wall-clock read: stage durations
// are reported to callers, never folded into any computed pair set, so
// the determinism contract is untouched.
func telemetryNow() time.Time {
	//blast:allow wallclock -- telemetry clock: stage durations are reported, never feed a pinned computation
	return time.Now()
}
