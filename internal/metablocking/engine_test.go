package metablocking

// The engine-equivalence harness: the edge-list engine (serial and
// parallel graph build) and the node-centric streaming engine must
// produce byte-identical retained pair lists for every Pruning x Scheme
// combination, on randomized block collections of both kinds and on the
// registry benchmarks. This is the contract that lets callers switch
// engines purely on resource considerations.

import (
	"fmt"
	"runtime"
	"testing"

	"blast/internal/blocking"
	"blast/internal/datasets"
	"blast/internal/model"
	"blast/internal/stats"
	"blast/internal/weights"
)

var allPrunings = []Pruning{WEP, CEP, WNP1, WNP2, CNP1, CNP2, BlastWNP}

func allSchemes() []weights.Scheme {
	kinds := []weights.Kind{
		weights.CBS, weights.ECBS, weights.ARCS,
		weights.JS, weights.EJS, weights.ChiSquared,
	}
	var out []weights.Scheme
	for _, k := range kinds {
		out = append(out, weights.Scheme{Kind: k}, weights.Scheme{Kind: k, Entropy: true})
	}
	return out
}

// samePairs fails the test unless the two runs retained byte-identical
// pair lists.
func samePairs(t *testing.T, label string, want, got []model.IDPair) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: pair %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// engineWorkersAxis is the Workers matrix the node-centric engine is
// held to: automatic (0 = GOMAXPROCS), serial, and explicit counts —
// graph build AND pruning must be byte-identical at every value.
var engineWorkersAxis = []int{0, 1, 2, 4}

// checkEngineEquivalence runs one configuration through every execution
// path — edge-list serial and parallel, node-centric across the full
// Workers axis — and asserts identical output.
func checkEngineEquivalence(t *testing.T, c *blocking.Collection, cfg Config) {
	t.Helper()
	base := cfg
	base.Engine = EdgeList
	base.Workers = 1
	want := Run(c, base)

	parallel := base
	parallel.Workers = 3
	label := cfg.Scheme.Name() + "+" + cfg.Pruning.String()
	samePairs(t, label+" parallel-build", want.Pairs, Run(c, parallel).Pairs)

	stream := base
	stream.Engine = NodeCentric
	for _, workers := range engineWorkersAxis {
		stream.Workers = workers
		samePairs(t, fmt.Sprintf("%s node-centric workers=%d", label, workers),
			want.Pairs, Run(c, stream).Pairs)
	}
}

// TestEngineEquivalenceRandomized is the property harness of the issue:
// seeded random collections, every Workers x Pruning x Scheme
// combination across both engines, byte-identical results.
func TestEngineEquivalenceRandomized(t *testing.T) {
	schemes := allSchemes()
	for seed := uint64(1); seed <= 3; seed++ {
		rng := stats.NewRNG(seed)
		for _, kind := range []model.Kind{model.Dirty, model.CleanClean} {
			c := blocking.RandomCollection(rng, kind, 50+rng.Intn(70), 30+rng.Intn(50))
			if err := c.Validate(); err != nil {
				t.Fatalf("seed %d: invalid random collection: %v", seed, err)
			}
			for _, p := range allPrunings {
				for _, s := range schemes {
					checkEngineEquivalence(t, c, Config{
						Scheme: s, Pruning: p, C: 2, D: 2,
					})
				}
			}
		}
	}
}

// TestEngineEquivalenceConfigKnobs varies the scheme-independent knobs
// (explicit K budgets, non-default C/D) on one random collection.
func TestEngineEquivalenceConfigKnobs(t *testing.T) {
	rng := stats.NewRNG(99)
	c := blocking.RandomCollection(rng, model.Dirty, 80, 60)
	for _, cfg := range []Config{
		{Scheme: weights.Blast(), Pruning: BlastWNP, C: 1, D: 2},
		{Scheme: weights.Blast(), Pruning: BlastWNP, C: 4, D: 1},
		{Scheme: weights.Scheme{Kind: weights.CBS}, Pruning: CEP, K: 1},
		{Scheme: weights.Scheme{Kind: weights.CBS}, Pruning: CEP, K: 7},
		{Scheme: weights.Scheme{Kind: weights.JS}, Pruning: CNP1, K: 2},
		{Scheme: weights.Scheme{Kind: weights.JS}, Pruning: CNP2, K: 3},
	} {
		checkEngineEquivalence(t, c, cfg)
	}
}

// TestEngineEquivalenceRegistryDatasets is the acceptance criterion: on
// every registry benchmark (token-blocked and cleaned at small scale),
// the node-centric engine returns byte-identical pairs to the edge-list
// engine.
func TestEngineEquivalenceRegistryDatasets(t *testing.T) {
	scales := map[string]float64{"dbp": 0.02, "mov": 0.01, "ar2": 0.02, "cddb": 0.03}
	for _, name := range datasets.AllNames() {
		gen, err := datasets.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		scale, ok := scales[name]
		if !ok {
			scale = 0.05
		}
		c := blocking.CleanWorkflow(blocking.TokenBlocking(gen(scale, 42)), 0.5, 0.8)
		for _, cfg := range []Config{
			DefaultConfig(),
			{Scheme: weights.Scheme{Kind: weights.JS}, Pruning: WNP2},
			{Scheme: weights.Scheme{Kind: weights.CBS}, Pruning: CNP1},
		} {
			t.Run(name+"/"+cfg.Pruning.String(), func(t *testing.T) {
				checkEngineEquivalence(t, c, cfg)
			})
		}
	}
}

// TestNodeCentricResultShape: the streaming result must carry the CSR
// (not an edge-list graph) and canonical sorted pairs.
func TestNodeCentricResultShape(t *testing.T) {
	c := paperBlocks()
	cfg := DefaultConfig()
	cfg.Engine = NodeCentric
	res := Run(c, cfg)
	if res.Graph != nil {
		t.Error("node-centric run must not materialize an edge-list graph")
	}
	if res.CSR == nil {
		t.Fatal("node-centric run must carry the CSR")
	}
	if res.CSR.Common != nil || res.CSR.ARCS != nil || res.CSR.EntropySum != nil {
		t.Error("CSR stats should be released after weighting")
	}
	for i, p := range res.Pairs {
		if p.U >= p.V {
			t.Errorf("pair %d not canonical: %v", i, p)
		}
		if i > 0 && res.Pairs[i-1].Key() >= p.Key() {
			t.Error("pairs not sorted")
		}
	}
}

func TestNodeCentricPanicsOnUnknownPruning(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown pruning should panic")
		}
	}()
	Run(paperBlocks(), Config{Scheme: weights.Blast(), Pruning: Pruning(42), Engine: NodeCentric})
}

func TestRunPanicsOnUnknownEngine(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown engine should panic, not silently pick one")
		}
	}()
	Run(paperBlocks(), Config{Scheme: weights.Blast(), Pruning: BlastWNP, Engine: Engine(7)})
}

func TestEngineString(t *testing.T) {
	if EdgeList.String() != "edge-list" || NodeCentric.String() != "node-centric" {
		t.Error("Engine.String mismatch")
	}
	if Engine(9).String() == "" {
		t.Error("unknown engine should render")
	}
}

// TestResolveWorkers is the regression test for the documented
// workers=0 -> GOMAXPROCS contract: Run must not silently fall back to
// the serial path when Workers is left zero.
func TestResolveWorkers(t *testing.T) {
	if got, want := resolveWorkers(0), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("resolveWorkers(0) = %d, want GOMAXPROCS = %d", got, want)
	}
	if got, want := resolveWorkers(-3), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("resolveWorkers(-3) = %d, want GOMAXPROCS = %d", got, want)
	}
	if resolveWorkers(1) != 1 || resolveWorkers(5) != 5 {
		t.Error("explicit worker counts must pass through")
	}
}

func TestRunResolvesZeroWorkers(t *testing.T) {
	// NodeCentric: the CSR builder partitions work without duplication,
	// so Workers=0 auto-parallelizes at any scale.
	cfg := DefaultConfig()
	cfg.Engine = NodeCentric
	res := Run(paperBlocks(), cfg)
	if want := runtime.GOMAXPROCS(0); res.Workers != want {
		t.Errorf("node-centric: Workers = %d, want GOMAXPROCS = %d", res.Workers, want)
	}
	// EdgeList: Workers=0 resolves to GOMAXPROCS but the automatic
	// default declines parallelism below autoParallelMinComparisons
	// (the sharded builder would scan all pairs once per worker), so
	// the tiny paper example builds serially...
	cfg = DefaultConfig()
	if res := Run(paperBlocks(), cfg); runtime.GOMAXPROCS(0) > 1 && res.Workers != 1 {
		t.Errorf("edge-list auto: Workers = %d, want 1 on a tiny collection", res.Workers)
	}
	// ...while an explicit request is always honored.
	cfg.Workers = 4
	if res := Run(paperBlocks(), cfg); res.Workers != 4 {
		t.Errorf("edge-list explicit: Workers = %d, want 4", res.Workers)
	}
	for _, engine := range []Engine{EdgeList, NodeCentric} {
		cfg := DefaultConfig()
		cfg.Engine = engine
		cfg.Workers = 1
		if res := Run(paperBlocks(), cfg); res.Workers != 1 {
			t.Errorf("%v: Workers = %d, want 1", engine, res.Workers)
		}
	}
}
