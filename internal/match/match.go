// Package match provides the entity-matching substrate used downstream
// of blocking: a Jaccard matcher over whole-profile token sets, as in the
// paper's end-to-end timing argument (Section 4.2.2: "profiles are
// treated as strings ... we compute the Jaccard coefficient of the
// profiles"). BLAST itself is independent of the matcher; this package
// exists so examples and the end-to-end experiment can close the loop
// from blocks to resolved entities.
package match

import (
	"sort"

	"blast/internal/lsh"
	"blast/internal/model"
	"blast/internal/text"
)

// Matcher decides whether two profiles refer to the same entity.
type Matcher interface {
	// Similarity returns a score in [0,1] for the pair of global ids.
	Similarity(u, v int) float64
}

// Jaccard is a Matcher computing the Jaccard coefficient of the token
// sets of entire profiles (attribute values concatenated, metadata
// ignored). Token sets are precomputed per profile.
type Jaccard struct {
	tokens [][]uint64
}

// NewJaccard precomputes profile token sets for the dataset.
func NewJaccard(ds *model.Dataset, tr text.Transform) *Jaccard {
	m := &Jaccard{tokens: make([][]uint64, ds.NumProfiles())}
	for i := 0; i < ds.NumProfiles(); i++ {
		p := ds.Profile(i)
		set := make(map[uint64]struct{})
		for _, pair := range p.Pairs {
			for _, tok := range tr.Terms(pair.Value) {
				set[lsh.TokenHash(tok)] = struct{}{}
			}
		}
		ts := make([]uint64, 0, len(set))
		for h := range set {
			ts = append(ts, h)
		}
		sort.Slice(ts, func(a, b int) bool { return ts[a] < ts[b] })
		m.tokens[i] = ts
	}
	return m
}

// Similarity implements Matcher.
func (m *Jaccard) Similarity(u, v int) float64 {
	a, b := m.tokens[u], m.tokens[v]
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}

// Result reports the outcome of resolving a comparison list.
type Result struct {
	// Matches are the pairs whose similarity reached the threshold.
	Matches []model.IDPair
	// Compared is the number of similarity computations executed.
	Compared int
}

// Resolve runs the matcher over a list of comparisons and returns the
// pairs at or above threshold. It is the "favorite ER algorithm" slot of
// the paper's pipeline.
func Resolve(m Matcher, pairs []model.IDPair, threshold float64) *Result {
	res := &Result{}
	for _, p := range pairs {
		res.Compared++
		if m.Similarity(int(p.U), int(p.V)) >= threshold {
			res.Matches = append(res.Matches, p)
		}
	}
	return res
}

// Evaluate scores predicted matches against the ground truth with
// classic precision/recall/F1 over pairs.
func Evaluate(predicted []model.IDPair, truth *model.GroundTruth) (precision, recall, f1 float64) {
	if len(predicted) == 0 {
		return 0, 0, 0
	}
	tp := 0
	seen := make(map[uint64]struct{}, len(predicted))
	for _, p := range predicted {
		if _, dup := seen[p.Key()]; dup {
			continue
		}
		seen[p.Key()] = struct{}{}
		if truth.Contains(int(p.U), int(p.V)) {
			tp++
		}
	}
	precision = float64(tp) / float64(len(seen))
	if truth.Size() > 0 {
		recall = float64(tp) / float64(truth.Size())
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return
}
