package match

import (
	"math"
	"testing"

	"blast/internal/datasets"
	"blast/internal/model"
	"blast/internal/text"
)

func TestJaccardSimilarity(t *testing.T) {
	ds := datasets.PaperExample()
	m := NewJaccard(ds, text.NewTokenizer())
	// p2 ("Ellen Smith ... retail ... Abram st 30 NY") vs p4 ("Ellen
	// Smith ... 1985 retailer Abram street NY"): overlapping tokens
	// ellen, smith, abram, ny. Note that the *non-match* p2-p3 is
	// token-wise slightly more similar than this true match (4/12 vs
	// 4/13) — precisely the schema ambiguity BLAST exists to fix — so the
	// ordering test uses the clearly unrelated p1-p2 pair.
	simMatch := m.Similarity(1, 3)
	simNon := m.Similarity(0, 1) // p1 vs p2: only "abram" in common
	if simMatch <= simNon {
		t.Errorf("match similarity %v should exceed non-match %v", simMatch, simNon)
	}
	if simMatch <= 0 || simMatch > 1 {
		t.Errorf("similarity out of range: %v", simMatch)
	}
	// Symmetry and identity.
	if m.Similarity(1, 3) != m.Similarity(3, 1) {
		t.Error("similarity not symmetric")
	}
	if m.Similarity(2, 2) != 1 {
		t.Error("self similarity should be 1")
	}
}

func TestJaccardEmptyProfile(t *testing.T) {
	e := model.NewCollection("s")
	e.Append(model.Profile{ID: "empty"})
	p := model.Profile{ID: "full"}
	p.Add("a", "words here")
	e.Append(p)
	ds := &model.Dataset{Name: "d", Kind: model.Dirty, E1: e, Truth: model.NewGroundTruth()}
	m := NewJaccard(ds, text.NewTokenizer())
	if got := m.Similarity(0, 1); got != 0 {
		t.Errorf("empty profile similarity = %v, want 0", got)
	}
}

func TestResolve(t *testing.T) {
	ds := datasets.PaperExample()
	m := NewJaccard(ds, text.NewTokenizer())
	all := []model.IDPair{
		model.MakePair(0, 1), model.MakePair(0, 2), model.MakePair(0, 3),
		model.MakePair(1, 2), model.MakePair(1, 3), model.MakePair(2, 3),
	}
	res := Resolve(m, all, 0.25)
	if res.Compared != 6 {
		t.Errorf("Compared = %d, want 6", res.Compared)
	}
	found := make(map[model.IDPair]bool)
	for _, p := range res.Matches {
		found[p] = true
	}
	if !found[model.MakePair(1, 3)] {
		t.Error("p2-p4 should match at threshold 0.25")
	}
	if found[model.MakePair(0, 1)] {
		t.Error("p1-p2 should not match")
	}
}

func TestEvaluate(t *testing.T) {
	truth := model.NewGroundTruth()
	truth.Add(0, 1)
	truth.Add(2, 3)
	pred := []model.IDPair{
		model.MakePair(0, 1), // TP
		model.MakePair(4, 5), // FP
		model.MakePair(0, 1), // duplicate ignored
	}
	p, r, f := Evaluate(pred, truth)
	if p != 0.5 || r != 0.5 {
		t.Errorf("precision/recall = %v/%v, want 0.5/0.5", p, r)
	}
	if math.Abs(f-0.5) > 1e-12 {
		t.Errorf("f1 = %v, want 0.5", f)
	}
	p, r, f = Evaluate(nil, truth)
	if p != 0 || r != 0 || f != 0 {
		t.Error("empty prediction should score 0")
	}
}

func TestEndToEndPaperExample(t *testing.T) {
	// Blocking+matching closes the loop: resolving only the two pairs
	// BLAST retains finds both duplicates with precision 1.
	ds := datasets.PaperExample()
	m := NewJaccard(ds, text.NewTokenizer())
	retained := []model.IDPair{model.MakePair(0, 2), model.MakePair(1, 3)}
	res := Resolve(m, retained, 0.2)
	p, r, _ := Evaluate(res.Matches, ds.Truth)
	if p != 1 || r != 1 {
		t.Errorf("end-to-end precision/recall = %v/%v, want 1/1", p, r)
	}
}
