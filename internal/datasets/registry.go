package datasets

import (
	"fmt"
	"sort"

	"blast/internal/model"
)

// Generator builds a dataset at the given scale with the given seed.
type Generator func(scale float64, seed uint64) *model.Dataset

// CleanCleanNames lists the clean-clean benchmarks in paper order
// (Table 2).
func CleanCleanNames() []string { return []string{"ar1", "ar2", "prd", "mov", "dbp"} }

// DirtyNames lists the dirty benchmarks in paper order (Table 7).
func DirtyNames() []string { return []string{"census", "cora", "cddb"} }

// ByName returns the generator of a benchmark dataset.
func ByName(name string) (Generator, error) {
	switch name {
	case "ar1":
		return AR1, nil
	case "ar2":
		return AR2, nil
	case "prd":
		return PRD, nil
	case "mov":
		return MOV, nil
	case "dbp":
		return DBP, nil
	case "census":
		return Census, nil
	case "cora":
		return Cora, nil
	case "cddb":
		return CDDB, nil
	case "paper-fig1":
		return func(float64, uint64) *model.Dataset { return PaperExample() }, nil
	default:
		return nil, fmt.Errorf("datasets: unknown dataset %q (have %v + %v)",
			name, CleanCleanNames(), DirtyNames())
	}
}

// Stats summarizes a dataset in the shape of the paper's Table 2 row:
// |E1|-|E2|, |A1|-|A2|, nvp and |D_E|.
type Stats struct {
	Name   string
	Kind   model.Kind
	E1, E2 int
	A1, A2 int
	NVP1   int
	NVP2   int
	Dups   int
}

// Describe computes the Table 2 statistics of a dataset.
func Describe(ds *model.Dataset) Stats {
	s := Stats{
		Name: ds.Name,
		Kind: ds.Kind,
		E1:   ds.E1.Len(),
		A1:   ds.E1.NumAttributes(),
		NVP1: ds.E1.NVP(),
		Dups: ds.Truth.Size(),
	}
	if ds.Kind == model.CleanClean {
		s.E2 = ds.E2.Len()
		s.A2 = ds.E2.NumAttributes()
		s.NVP2 = ds.E2.NVP()
	}
	return s
}

// String renders the stats as a Table 2 style row.
func (s Stats) String() string {
	if s.Kind == model.CleanClean {
		return fmt.Sprintf("%-6s |E|=%d-%d |A|=%d-%d nvp=%d-%d |D|=%d",
			s.Name, s.E1, s.E2, s.A1, s.A2, s.NVP1, s.NVP2, s.Dups)
	}
	return fmt.Sprintf("%-6s |E|=%d |A|=%d nvp=%d |D|=%d", s.Name, s.E1, s.A1, s.NVP1, s.Dups)
}

// ManualAlignment returns the ground-truth schema alignment of a fully
// mappable generated dataset, in the map shape blocking.SchemaKey
// expects. It inspects the known generator schemas; datasets without a
// 1:1 alignment return ok = false.
func ManualAlignment(name string) (map[[2]string]string, bool) {
	var pairs [][2]string
	switch name {
	case "ar1":
		pairs = [][2]string{
			{"title", "name"}, {"authors", "author list"},
			{"venue", "booktitle"}, {"year", "date"},
		}
	case "ar2":
		pairs = [][2]string{
			{"title", "title"}, {"authors", "author"},
			{"venue", "publication"}, {"year", "year"},
		}
	case "prd":
		pairs = [][2]string{
			{"name", "title"}, {"description", "features"},
			{"manufacturer", "brand"}, {"price", "cost"},
		}
	default:
		return nil, false
	}
	align := make(map[[2]string]string, 2*len(pairs))
	for i, p := range pairs {
		id := fmt.Sprintf("f%d", i)
		align[[2]string{"0", p[0]}] = id
		align[[2]string{"1", p[1]}] = id
	}
	return align, true
}

// AllNames returns every benchmark name, clean-clean first.
func AllNames() []string {
	names := append([]string{}, CleanCleanNames()...)
	names = append(names, DirtyNames()...)
	sort.Strings(names[len(CleanCleanNames()):]) // dirty names sorted for stability
	return names
}
