package datasets

import (
	"strconv"

	"blast/internal/stats"
)

// vocab is a pool of synthetic words with a Zipfian rank distribution,
// mirroring the frequency skew of real text (a few very common tokens —
// the stop-word-like blocking keys Block Purging removes — and a long
// tail of rare, highly selective ones).
type vocab struct {
	words []string
	zipf  *stats.Zipf
}

// syllables used to synthesize pronounceable deterministic pseudo-words.
var (
	onsets  = []string{"b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "z", "br", "ch", "cl", "gr", "pr", "sh", "st", "th", "tr"}
	nuclei  = []string{"a", "e", "i", "o", "u", "ai", "ea", "io", "ou"}
	codas   = []string{"", "", "", "n", "r", "s", "t", "l", "m", "nd", "rt", "st"}
	minSyll = 2
)

// synthWord deterministically builds the i-th word of a namespace. Words
// of different namespaces never collide because the namespace is mixed
// into the syllable selection.
func synthWord(namespace uint64, i int) string {
	r := stats.NewRNG(namespace*0x9e3779b97f4a7c15 + uint64(i) + 1)
	n := minSyll + r.Intn(2)
	var w []byte
	for s := 0; s < n; s++ {
		w = append(w, onsets[r.Intn(len(onsets))]...)
		w = append(w, nuclei[r.Intn(len(nuclei))]...)
		w = append(w, codas[r.Intn(len(codas))]...)
	}
	// Suffix the namespace and index so vocabularies are disjoint by
	// construction even on syllable collisions; the suffix also keeps
	// every word unique within its vocabulary.
	return string(w) + strconv.FormatUint(namespace%97, 36) + strconv.Itoa(i)
}

// newVocab builds a vocabulary of size words under the given namespace
// with Zipf exponent s (1.0 ~ natural text; smaller = flatter).
func newVocab(rng *stats.RNG, namespace uint64, size int, s float64) *vocab {
	if size < 1 {
		size = 1
	}
	words := make([]string, size)
	for i := range words {
		words[i] = synthWord(namespace, i)
	}
	return &vocab{words: words, zipf: stats.NewZipf(rng, s, size)}
}

// draw samples one word (Zipfian).
func (v *vocab) draw() string { return v.words[v.zipf.Draw()] }

// at returns the i-th word (for deterministic identities such as person
// names attached to a latent entity).
func (v *vocab) at(i int) string { return v.words[i%len(v.words)] }

// size returns the vocabulary size.
func (v *vocab) size() int { return len(v.words) }
