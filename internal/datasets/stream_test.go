package datasets

import (
	"bytes"
	"testing"
)

func TestStreamPurityAndDeterminism(t *testing.T) {
	s1 := NewStream(500, 42)
	s2 := NewStream(500, 42)
	// Same (seed, i) → identical profile, regardless of access order.
	for _, i := range []int{499, 0, 250, 1, 11, 250} {
		a, b := s1.Profile(i), s2.Profile(i)
		if a.String() != b.String() {
			t.Fatalf("profile %d diverges between identical streams:\n%s\n%s", i, a, b)
		}
	}
	// A different seed changes the corpus.
	other, same := NewStream(500, 43).Profile(7), s1.Profile(7)
	if other.String() == same.String() {
		t.Error("seed does not influence the stream")
	}
	// IDs are unique and positional.
	if got := s1.Profile(123).ID; got != "s123" {
		t.Errorf("profile 123 has ID %q", got)
	}
}

func TestStreamDuplicates(t *testing.T) {
	s := NewStream(200, 7)
	dups := 0
	for i := 0; i < s.Len(); i++ {
		d, ok := s.Duplicate(i)
		if !ok {
			continue
		}
		dups++
		if d != i-1 {
			t.Fatalf("Duplicate(%d) = %d, want %d", i, d, i-1)
		}
		// The duplicate must share tokens with its original (same latent
		// entity) without being byte-identical (independent noise) —
		// byte-identical pairs would make the matching task trivial.
		a, b := s.Profile(d), s.Profile(i)
		at, _ := a.Value("title")
		bt, _ := b.Value("title")
		if at == "" || bt == "" {
			t.Fatalf("profiles %d/%d lack titles", d, i)
		}
		if a.String() == b.String() {
			t.Errorf("duplicate %d is byte-identical to %d", i, d)
		}
	}
	if want := s.Len() / streamDupEvery; dups != want {
		t.Errorf("%d duplicates in %d profiles, want %d", dups, s.Len(), want)
	}
	// Out-of-range and boundary indices never report duplicates.
	for _, i := range []int{0, -1, s.Len(), s.Len() + 1} {
		if _, ok := s.Duplicate(i); ok {
			t.Errorf("Duplicate(%d) reported a pair", i)
		}
	}
}

func TestStreamProfilesRange(t *testing.T) {
	s := NewStream(50, 3)
	batch := s.Profiles(10, 20)
	if len(batch) != 10 {
		t.Fatalf("Profiles(10,20) returned %d", len(batch))
	}
	for k, p := range batch {
		if want := s.Profile(10 + k); p.String() != want.String() {
			t.Errorf("batch[%d] != Profile(%d)", k, 10+k)
		}
	}
	if got := s.Profiles(45, 99); len(got) != 5 {
		t.Errorf("clamped range returned %d, want 5", len(got))
	}
	if got := s.Profiles(-5, 3); len(got) != 3 {
		t.Errorf("negative lo returned %d, want 3", len(got))
	}
	if got := s.Profiles(30, 10); got != nil {
		t.Errorf("inverted range returned %d profiles", len(got))
	}
}

// TestStreamCSVMatchesDataset checks the streaming CSV writers emit
// exactly what the materialized dataset would: the files round-trip
// through the ordinary loaders to the same collection and truth.
func TestStreamCSVMatchesDataset(t *testing.T) {
	s := NewStream(120, 11)
	ds := s.Dataset()

	var e1 bytes.Buffer
	if err := s.WriteE1(&e1); err != nil {
		t.Fatal(err)
	}
	var mat bytes.Buffer
	if err := WriteCollection(&mat, ds.E1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(e1.Bytes(), mat.Bytes()) {
		t.Error("streamed E1 CSV differs from the materialized encoding")
	}

	var tr bytes.Buffer
	if err := s.WriteTruth(&tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTruth(bytes.NewReader(tr.Bytes()), ds)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != ds.Truth.Size() {
		t.Errorf("streamed truth has %d pairs, want %d", got.Size(), ds.Truth.Size())
	}

	back, err := ReadCollection(bytes.NewReader(e1.Bytes()), "stream")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != ds.E1.Len() {
		t.Errorf("round trip: %d profiles, want %d", back.Len(), ds.E1.Len())
	}
}
