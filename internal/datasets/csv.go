package datasets

import (
	"encoding/csv"
	"fmt"
	"io"

	"blast/internal/model"
)

// WriteCollection serializes a collection as long-form CSV triples
// (id, attribute, value), the interchange format of cmd/datagen. The
// format handles heterogeneous schemas naturally: profiles simply emit
// one row per name-value pair.
func WriteCollection(w io.Writer, c *model.Collection) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "attribute", "value"}); err != nil {
		return fmt.Errorf("datasets: write header: %w", err)
	}
	for i := range c.Profiles {
		p := &c.Profiles[i]
		if len(p.Pairs) == 0 {
			// Preserve empty profiles with a sentinel row.
			if err := cw.Write([]string{p.ID, "", ""}); err != nil {
				return fmt.Errorf("datasets: write profile %q: %w", p.ID, err)
			}
			continue
		}
		for _, pair := range p.Pairs {
			if err := cw.Write([]string{p.ID, pair.Name, pair.Value}); err != nil {
				return fmt.Errorf("datasets: write profile %q: %w", p.ID, err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCollection parses long-form CSV triples back into a collection.
// Rows with the same id must be contiguous or not — grouping is by id
// value, first-appearance order is preserved.
func ReadCollection(r io.Reader, name string) (*model.Collection, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("datasets: read csv: %w", err)
	}
	if len(rows) == 0 {
		return model.NewCollection(name), nil
	}
	start := 0
	if rows[0][0] == "id" && rows[0][1] == "attribute" {
		start = 1
	}
	c := model.NewCollection(name)
	index := make(map[string]int)
	for _, row := range rows[start:] {
		id := row[0]
		pos, ok := index[id]
		if !ok {
			pos = c.Append(model.Profile{ID: id})
			index[id] = pos
		}
		if row[1] == "" && row[2] == "" {
			continue // empty-profile sentinel
		}
		c.Profiles[pos].Add(row[1], row[2])
	}
	return c, nil
}

// WriteTruth serializes ground truth as (id1, id2) external-ID pairs.
func WriteTruth(w io.Writer, ds *model.Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id1", "id2"}); err != nil {
		return fmt.Errorf("datasets: write truth header: %w", err)
	}
	for _, p := range ds.Truth.Pairs() {
		a := ds.Profile(int(p.U)).ID
		b := ds.Profile(int(p.V)).ID
		if err := cw.Write([]string{a, b}); err != nil {
			return fmt.Errorf("datasets: write truth pair: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTruth parses external-ID pairs into a ground truth over the global
// ids of the dataset's collections. Unknown ids are an error.
func ReadTruth(r io.Reader, ds *model.Dataset) (*model.GroundTruth, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("datasets: read truth: %w", err)
	}
	lookup := make(map[string]int, ds.NumProfiles())
	for i := 0; i < ds.NumProfiles(); i++ {
		lookup[ds.Profile(i).ID] = i
	}
	start := 0
	if len(rows) > 0 && rows[0][0] == "id1" {
		start = 1
	}
	g := model.NewGroundTruth()
	for _, row := range rows[start:] {
		u, ok1 := lookup[row[0]]
		v, ok2 := lookup[row[1]]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("datasets: truth references unknown id %q/%q", row[0], row[1])
		}
		g.Add(u, v)
	}
	return g, nil
}
