package datasets

import (
	"strconv"
	"strings"

	"blast/internal/model"
	"blast/internal/stats"
)

// field describes one canonical field of a latent entity: how many tokens
// a value has and which vocabulary they come from. Latent entities hold
// the clean values; sources render them through their own schema with
// noise.
type field struct {
	// name is the canonical field name (not the attribute name — those
	// are per-source).
	name string
	// vocab supplies the tokens.
	vocab *vocab
	// minTokens/maxTokens bound the value length.
	minTokens, maxTokens int
	// numeric, when true, renders values as numbers from vocabRange
	// instead of words (e.g. year, price).
	numeric bool
	numLo   int
	numHi   int
	// identity, when true, draws tokens uniquely per entity (names,
	// model numbers) rather than Zipfian (descriptions).
	identity bool
}

// latent is one real-world entity: clean token lists per field.
type latent struct {
	values map[string][]string
}

// noise is the per-source perturbation profile. Probabilities are
// applied per token or per attribute as noted.
type noise struct {
	dropToken    float64 // token omitted
	abbreviate   float64 // token truncated to a 1-3 letter prefix
	typo         float64 // two adjacent letters swapped
	dropAttr     float64 // whole attribute missing from the profile
	twoDigitYear float64 // numeric year rendered as two digits
	extraToken   float64 // stray token from the ambient vocabulary
}

// attrMap projects a canonical field into a source attribute. merge
// lists additional fields concatenated into the same attribute ("full
// name" style); an empty field with ambient=true yields source-private
// attributes filled from the ambient vocabulary (unmappable attributes
// of partially-mappable datasets).
type attrMap struct {
	attr    string
	field   string
	merge   []string
	ambient bool
}

// generator carries the shared machinery for building one dataset.
type generator struct {
	rng *stats.RNG
	// fields is insertion-ordered: entity synthesis draws from the RNG
	// per field, so iteration order must be deterministic (a map's is
	// not).
	fields  []*field
	ambient *vocab // cross-field vocabulary creating token collisions
	counter int
}

func newGenerator(seed uint64) *generator {
	rng := stats.NewRNG(seed)
	return &generator{
		rng:     rng,
		ambient: newVocab(rng, 0xa3b1e7, 400, 0.9),
	}
}

// addField registers a canonical field.
func (g *generator) addField(f *field) { g.fields = append(g.fields, f) }

// entity synthesizes one latent entity: clean values for every field.
func (g *generator) entity() *latent {
	g.counter++
	l := &latent{values: make(map[string][]string, len(g.fields))}
	for _, f := range g.fields {
		name := f.name
		n := f.minTokens
		if f.maxTokens > f.minTokens {
			n += g.rng.Intn(f.maxTokens - f.minTokens + 1)
		}
		if f.numeric {
			v := f.numLo
			if f.numHi > f.numLo {
				v += g.rng.Intn(f.numHi - f.numLo + 1)
			}
			l.values[name] = []string{strconv.Itoa(v)}
			continue
		}
		toks := make([]string, 0, n)
		for i := 0; i < n; i++ {
			if f.identity {
				// Unique-ish identity tokens: spread entities across the
				// vocabulary with a per-entity offset.
				toks = append(toks, f.vocab.at(g.counter*7+i*13+g.rng.Intn(3)))
			} else {
				toks = append(toks, f.vocab.draw())
			}
		}
		l.values[name] = toks
	}
	return l
}

// render projects a latent entity into a profile under a source schema,
// applying noise. The profile ID encodes the source and a running index.
func (g *generator) render(l *latent, schema []attrMap, nz noise, id string) model.Profile {
	p := model.Profile{ID: id}
	for _, am := range schema {
		if nz.dropAttr > 0 && g.rng.Float64() < nz.dropAttr {
			continue
		}
		var toks []string
		if am.ambient {
			n := 1 + g.rng.Intn(3)
			for i := 0; i < n; i++ {
				toks = append(toks, g.ambient.draw())
			}
		} else {
			toks = append(toks, l.values[am.field]...)
			for _, m := range am.merge {
				toks = append(toks, l.values[m]...)
			}
		}
		out := make([]string, 0, len(toks)+1)
		for _, tok := range toks {
			if nz.dropToken > 0 && len(toks) > 1 && g.rng.Float64() < nz.dropToken {
				continue
			}
			if isYear(tok) && nz.twoDigitYear > 0 && g.rng.Float64() < nz.twoDigitYear {
				tok = tok[2:]
			} else if nz.abbreviate > 0 && len(tok) > 3 && g.rng.Float64() < nz.abbreviate {
				tok = tok[:1+g.rng.Intn(3)]
			} else if nz.typo > 0 && len(tok) > 3 && g.rng.Float64() < nz.typo {
				b := []byte(tok)
				i := 1 + g.rng.Intn(len(b)-2)
				b[i], b[i+1] = b[i+1], b[i]
				tok = string(b)
			}
			out = append(out, tok)
		}
		if nz.extraToken > 0 && g.rng.Float64() < nz.extraToken {
			out = append(out, g.ambient.draw())
		}
		if len(out) == 0 {
			continue
		}
		p.Add(am.attr, strings.Join(out, " "))
	}
	return p
}

// isYear reports whether tok looks like a 4-digit year.
func isYear(tok string) bool {
	if len(tok) != 4 {
		return false
	}
	for _, c := range tok {
		if c < '0' || c > '9' {
			return false
		}
	}
	return tok[0] == '1' || tok[0] == '2'
}

// scaled returns max(1, round(n*scale)).
func scaled(n int, scale float64) int {
	v := int(float64(n)*scale + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}
