package datasets

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"blast/internal/model"
	"blast/internal/stats"
)

// Stream synthesizes an arbitrarily large dirty corpus profile by
// profile: profile i is a pure function of (seed, i), so generation
// costs O(vocabulary) memory no matter how many profiles are drawn and
// any index range can be produced independently and in any order. This
// is the source cmd/datagen -profiles uses to write millions of
// profiles without materializing them, and the load experiment uses to
// drive sustained insert traffic.
//
// Every profile whose index ends the duplicate cadence re-describes the
// entity of the preceding profile under independent noise (dropped or
// misspelled tokens), so the corpus carries ground truth that can be
// emitted streamingly too: the matching pair (i-1, i) is known the
// moment i is.
type Stream struct {
	seed    uint64
	n       int
	title   *vocab
	venue   *vocab
	ambient *vocab
}

// streamDupEvery is the duplicate cadence: profile i duplicates profile
// i-1 whenever i % streamDupEvery == 1 (so ~10% of profiles are
// re-descriptions, in line with the dirty benchmark datasets).
const streamDupEvery = 10

// NewStream builds a streaming corpus of n profiles. Vocabularies are
// sized sublinearly in n (bounded below and above) so token collisions
// across distinct entities — the hard case for blocking — stay present
// at every scale.
func NewStream(n int, seed uint64) *Stream {
	if n < 0 {
		n = 0
	}
	vsize := 1000
	if n > 100_000 {
		vsize = 8000
	}
	rng := stats.NewRNG(seed ^ 0x57ea3)
	return &Stream{
		seed:    seed,
		n:       n,
		title:   newVocab(rng, 0x57ea3+1, vsize, 0.8),
		venue:   newVocab(rng, 0x57ea3+2, vsize/10, 0.8),
		ambient: newVocab(rng, 0x57ea3+3, 400, 0.8),
	}
}

// Len returns the number of profiles in the stream.
func (s *Stream) Len() int { return s.n }

// Duplicate reports the earlier profile that profile i re-describes,
// if any — the streaming ground truth.
func (s *Stream) Duplicate(i int) (int, bool) {
	if i > 0 && i < s.n && i%streamDupEvery == 1 {
		return i - 1, true
	}
	return 0, false
}

// streamMix derives the per-index RNG seed.
func streamMix(seed uint64, i int) uint64 {
	return (seed + uint64(i) + 1) * 0x9e3779b97f4a7c15
}

// skewDraw samples a vocabulary rank with a power-law-ish skew toward
// low ranks using only the per-profile RNG (the shared Zipf sampler is
// stateful and would break per-index purity).
func skewDraw(r *stats.RNG, size int) int {
	f := r.Float64() * r.Float64()
	i := int(f * float64(size))
	if i >= size {
		i = size - 1
	}
	return i
}

// Profile synthesizes profile i. Pure: the same (seed, i) always yields
// the same profile, byte for byte.
func (s *Stream) Profile(i int) model.Profile {
	entity := i
	dup := false
	if d, ok := s.Duplicate(i); ok {
		entity, dup = d, true
	}
	// Entity tokens come from the ENTITY's stream so both descriptions
	// share them; the duplicate perturbs the rendering with its own.
	er := stats.NewRNG(streamMix(s.seed, entity))
	nt := 3 + er.Intn(3)
	title := make([]string, nt)
	for k := range title {
		title[k] = s.title.at(skewDraw(er, s.title.size()))
	}
	venue := s.venue.at(skewDraw(er, s.venue.size()))
	year := 1970 + er.Intn(55)

	p := model.Profile{ID: "s" + strconv.Itoa(i)}
	if dup {
		nr := stats.NewRNG(streamMix(s.seed, i) ^ 0xd0b)
		out := make([]string, 0, len(title))
		for _, tok := range title {
			switch {
			case len(out) > 0 && nr.Float64() < 0.2: // drop a token (never all)
				continue
			case len(tok) > 3 && nr.Float64() < 0.2: // adjacent-letter typo
				b := []byte(tok)
				k := 1 + nr.Intn(len(b)-2)
				b[k], b[k+1] = b[k+1], b[k]
				tok = string(b)
			}
			out = append(out, tok)
		}
		title = out
		if nr.Float64() < 0.3 {
			title = append(title, s.ambient.at(nr.Intn(s.ambient.size())))
		}
		if nr.Float64() < 0.3 {
			venue = ""
		}
	}
	p.Add("title", strings.Join(title, " "))
	if venue != "" {
		p.Add("venue", venue)
	}
	p.Add("year", strconv.Itoa(year))
	return p
}

// Profiles materializes the index range [lo, hi) — the batching helper
// for insert drivers.
func (s *Stream) Profiles(lo, hi int) []model.Profile {
	if lo < 0 {
		lo = 0
	}
	if hi > s.n {
		hi = s.n
	}
	if hi <= lo {
		return nil
	}
	out := make([]model.Profile, hi-lo)
	for i := range out {
		out[i] = s.Profile(lo + i)
	}
	return out
}

// Dataset materializes the whole stream as a dirty dataset — for
// small n only (tests, serving bootstraps); large corpora should be
// consumed through Profile/WriteE1 instead.
func (s *Stream) Dataset() *model.Dataset {
	e := model.NewCollection("stream")
	g := model.NewGroundTruth()
	for i := 0; i < s.n; i++ {
		e.Append(s.Profile(i))
		if d, ok := s.Duplicate(i); ok {
			g.Add(d, i)
		}
	}
	return &model.Dataset{Name: "stream", Kind: model.Dirty, E1: e, Truth: g}
}

// WriteE1 emits the whole stream as long-form CSV triples (the
// WriteCollection format) without materializing it: memory stays
// bounded at one profile regardless of Len.
func (s *Stream) WriteE1(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "attribute", "value"}); err != nil {
		return fmt.Errorf("datasets: write header: %w", err)
	}
	for i := 0; i < s.n; i++ {
		p := s.Profile(i)
		for _, pair := range p.Pairs {
			if err := cw.Write([]string{p.ID, pair.Name, pair.Value}); err != nil {
				return fmt.Errorf("datasets: write profile %q: %w", p.ID, err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTruth emits the stream's matching pairs as (id1, id2) rows (the
// WriteTruth format), streamingly.
func (s *Stream) WriteTruth(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id1", "id2"}); err != nil {
		return fmt.Errorf("datasets: write truth header: %w", err)
	}
	for i := 0; i < s.n; i++ {
		d, ok := s.Duplicate(i)
		if !ok {
			continue
		}
		if err := cw.Write([]string{"s" + strconv.Itoa(d), "s" + strconv.Itoa(i)}); err != nil {
			return fmt.Errorf("datasets: write truth pair: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
