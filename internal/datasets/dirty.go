package datasets

import (
	"fmt"

	"blast/internal/model"
)

// buildDirty assembles a dirty-ER dataset: latent entities are duplicated
// according to clusterSizes (a size of 1 is a singleton), every copy is
// rendered with per-copy noise, all copies of a cluster are pairwise
// matches, and the final collection is shuffled.
func (g *generator) buildDirty(name string, clusterSizes []int, schema []attrMap, nz noise) *model.Dataset {
	var profiles []model.Profile
	var owner []int
	for ci, size := range clusterSizes {
		l := g.entity()
		for c := 0; c < size; c++ {
			profiles = append(profiles, g.render(l, schema, nz, fmt.Sprintf("%s-%d-%d", name, ci, c)))
			if size > 1 {
				owner = append(owner, ci)
			} else {
				owner = append(owner, -1)
			}
		}
	}
	g.rng.Shuffle(len(profiles), func(a, b int) {
		profiles[a], profiles[b] = profiles[b], profiles[a]
		owner[a], owner[b] = owner[b], owner[a]
	})
	for i := range profiles {
		profiles[i].ID = fmt.Sprintf("%s-%d", name, i)
	}
	byCluster := make(map[int][]int)
	for i, o := range owner {
		if o >= 0 {
			byCluster[o] = append(byCluster[o], i)
		}
	}
	truth := model.NewGroundTruth()
	for _, members := range byCluster {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				truth.Add(members[i], members[j])
			}
		}
	}
	e := model.NewCollection(name)
	e.Profiles = profiles
	return &model.Dataset{Name: name, Kind: model.Dirty, E1: e, Truth: truth}
}

// clusterPlan builds cluster sizes totalling ~profiles with the given
// number of duplicated clusters of duplicated size copies each; the rest
// are singletons. Copies are shrunk if they cannot fit, so small scales
// still produce at least one duplicate cluster.
func clusterPlan(profiles, clusters, copies int) []int {
	if copies < 2 {
		copies = 2
	}
	if copies > profiles {
		copies = profiles
	}
	if copies < 2 {
		return []int{1}
	}
	sizes := make([]int, 0, profiles)
	used := 0
	for i := 0; i < clusters && used+copies <= profiles; i++ {
		sizes = append(sizes, copies)
		used += copies
	}
	if len(sizes) == 0 { // at least one duplicated cluster
		sizes = append(sizes, copies)
		used += copies
	}
	for used < profiles {
		sizes = append(sizes, 1)
		used++
	}
	return sizes
}

// Census reproduces the dirty census benchmark of Table 7a: ~1k person
// records over 5 attributes with ~300 matching pairs. Duplicates are
// pairs (one re-entry per duplicated person) with typo/abbreviation
// noise.
func Census(scale float64, seed uint64) *model.Dataset {
	g := newGenerator(seed ^ 0xce0)
	g.addField(&field{name: "first", vocab: newVocab(g.rng, 61, 400, 0.8), minTokens: 1, maxTokens: 1, identity: true})
	g.addField(&field{name: "last", vocab: newVocab(g.rng, 62, 600, 0.8), minTokens: 1, maxTokens: 1, identity: true})
	g.addField(&field{name: "middle", vocab: newVocab(g.rng, 63, 26, 0.9), minTokens: 1, maxTokens: 1})
	g.addField(&field{name: "street", vocab: newVocab(g.rng, 64, 300, 0.9), minTokens: 1, maxTokens: 2})
	g.addField(&field{name: "number", numeric: true, numLo: 1, numHi: 9999})

	schema := []attrMap{
		{attr: "first name", field: "first"},
		{attr: "last name", field: "last"},
		{attr: "middle initial", field: "middle"},
		{attr: "street", field: "street"},
		{attr: "house number", field: "number"},
	}
	nz := noise{abbreviate: 0.10, typo: 0.08, dropAttr: 0.08, extraToken: 0.03}
	// 300 duplicate pairs = 300 clusters of 2 among ~1000 profiles.
	sizes := clusterPlan(scaled(1000, scale), scaled(300, scale), 2)
	return g.buildDirty("census", sizes, schema, nz)
}

// Cora reproduces Table 7b: ~1k bibliographic records over 12 attributes
// with a very dense ground truth (~17k matching pairs) — entities are
// duplicated in large clusters (citations of the same paper).
func Cora(scale float64, seed uint64) *model.Dataset {
	g := newGenerator(seed ^ 0xc04a)
	g.addField(&field{name: "authors", vocab: newVocab(g.rng, 71, 500, 0.7), minTokens: 2, maxTokens: 5, identity: true})
	g.addField(&field{name: "title", vocab: newVocab(g.rng, 72, 700, 1.0), minTokens: 4, maxTokens: 9})
	g.addField(&field{name: "venue", vocab: newVocab(g.rng, 73, 60, 0.8), minTokens: 1, maxTokens: 4})
	g.addField(&field{name: "editor", vocab: newVocab(g.rng, 74, 120, 0.8), minTokens: 1, maxTokens: 2})
	g.addField(&field{name: "publisher", vocab: newVocab(g.rng, 75, 50, 0.8), minTokens: 1, maxTokens: 2})
	g.addField(&field{name: "address", vocab: newVocab(g.rng, 76, 100, 0.9), minTokens: 1, maxTokens: 2})
	g.addField(&field{name: "pages", numeric: true, numLo: 1, numHi: 900})
	g.addField(&field{name: "volume", numeric: true, numLo: 1, numHi: 60})
	g.addField(&field{name: "year", numeric: true, numLo: 1970, numHi: 2003})
	g.addField(&field{name: "month", vocab: newVocab(g.rng, 77, 12, 0.9), minTokens: 1, maxTokens: 1})
	g.addField(&field{name: "note", vocab: newVocab(g.rng, 78, 200, 1.0), minTokens: 1, maxTokens: 4})
	g.addField(&field{name: "tech", vocab: newVocab(g.rng, 79, 80, 0.9), minTokens: 1, maxTokens: 2})

	schema := []attrMap{
		{attr: "author", field: "authors"},
		{attr: "title", field: "title"},
		{attr: "venue", field: "venue"},
		{attr: "editor", field: "editor"},
		{attr: "publisher", field: "publisher"},
		{attr: "address", field: "address"},
		{attr: "pages", field: "pages"},
		{attr: "volume", field: "volume"},
		{attr: "year", field: "year"},
		{attr: "month", field: "month"},
		{attr: "note", field: "note"},
		{attr: "institution", field: "tech"},
	}
	nz := noise{dropToken: 0.10, abbreviate: 0.12, typo: 0.05, dropAttr: 0.30, twoDigitYear: 0.2, extraToken: 0.05}
	// Real cora duplicates papers in clusters of wildly varying size (a
	// few cited dozens of times, many cited twice): repeat a mixed-size
	// pattern over ~85% of the profiles, singletons for the rest. At
	// scale 1 (~1000 profiles) this yields ~10k matching pairs, the same
	// dense-truth regime as the benchmark's 17k.
	n := scaled(1000, scale)
	pattern := []int{40, 20, 20, 12, 12, 8, 8, 5, 5, 3, 3, 2, 2}
	var sizes []int
	used := 0
	budget := n * 85 / 100
	for i := 0; used < budget; i++ {
		s := pattern[i%len(pattern)]
		if used+s > n {
			break
		}
		sizes = append(sizes, s)
		used += s
	}
	if len(sizes) == 0 && n >= 2 {
		sizes = append(sizes, min(n, 5))
		used += sizes[0]
	}
	for ; used < n; used++ {
		sizes = append(sizes, 1)
	}
	return g.buildDirty("cora", sizes, schema, nz)
}

// CDDB reproduces Table 7c: ~10k audio-disc records over ~106 sparse
// attributes with only ~600 matching pairs. A core of 6 dense attributes
// carries the signal; a 100-attribute sparse tail mimics the freetext
// CDDB submission fields.
func CDDB(scale float64, seed uint64) *model.Dataset {
	g := newGenerator(seed ^ 0xcddb)
	g.addField(&field{name: "artist", vocab: newVocab(g.rng, 81, 3000, 0.8), minTokens: 1, maxTokens: 3, identity: true})
	g.addField(&field{name: "dtitle", vocab: newVocab(g.rng, 82, 5000, 1.0), minTokens: 1, maxTokens: 5, identity: true})
	g.addField(&field{name: "category", vocab: newVocab(g.rng, 83, 25, 0.9), minTokens: 1, maxTokens: 1})
	g.addField(&field{name: "genre", vocab: newVocab(g.rng, 84, 40, 0.9), minTokens: 1, maxTokens: 2})
	g.addField(&field{name: "year", numeric: true, numLo: 1955, numHi: 2005})
	g.addField(&field{name: "tracks", vocab: newVocab(g.rng, 85, 8000, 1.1), minTokens: 6, maxTokens: 16})

	schema := []attrMap{
		{attr: "artist", field: "artist"},
		{attr: "dtitle", field: "dtitle"},
		{attr: "category", field: "category"},
		{attr: "genre", field: "genre"},
		{attr: "year", field: "year"},
		{attr: "tracks", field: "tracks"},
	}
	nz := noise{dropToken: 0.08, abbreviate: 0.06, typo: 0.05, dropAttr: 0.20, twoDigitYear: 0.15, extraToken: 0.06}
	n := scaled(10000, scale)
	sizes := clusterPlan(n, scaled(600, scale), 2)
	ds := g.buildDirty("cddb", sizes, schema, nz)

	// Sparse tail: ~100 extra attribute names, each profile holding a
	// couple of them.
	pool := make([]string, 100)
	for i := range pool {
		pool[i] = "ext " + synthWord(86, i)
	}
	for i := range ds.E1.Profiles {
		k := g.rng.Intn(3)
		for j := 0; j < k; j++ {
			attr := pool[g.rng.Intn(len(pool))]
			ds.E1.Profiles[i].Add(attr, g.ambient.draw())
		}
	}
	return ds
}
