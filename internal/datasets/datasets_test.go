package datasets

import (
	"bytes"
	"testing"

	"blast/internal/model"
)

func TestPaperExampleShape(t *testing.T) {
	ds := PaperExample()
	if err := ds.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if ds.E1.Len() != 4 || ds.Truth.Size() != 2 {
		t.Errorf("|E|=%d |D|=%d, want 4/2", ds.E1.Len(), ds.Truth.Size())
	}
	if !ds.Truth.Contains(0, 2) || !ds.Truth.Contains(1, 3) {
		t.Error("truth should be p1~p3, p2~p4")
	}
}

func TestPaperExampleNameCluster(t *testing.T) {
	m := PaperExampleNameCluster()
	if m["Name"] != 1 || m["full name"] != 1 {
		t.Error("name attributes should be cluster 1")
	}
	if m["mail"] != 0 {
		t.Error("mail should be glue")
	}
}

func TestAllGeneratorsValidate(t *testing.T) {
	for _, name := range AllNames() {
		gen, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		ds := gen(0.02, 42)
		if err := ds.Validate(); err != nil {
			t.Errorf("%s: Validate: %v", name, err)
		}
		if ds.Truth.Size() == 0 {
			t.Errorf("%s: empty ground truth", name)
		}
		if ds.E1.Len() == 0 {
			t.Errorf("%s: empty E1", name)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name should error")
	}
	if gen, err := ByName("paper-fig1"); err != nil || gen(1, 1).Name != "paper-fig1" {
		t.Error("paper-fig1 should resolve")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := AR1(0.02, 7)
	b := AR1(0.02, 7)
	if a.E1.Len() != b.E1.Len() || a.Truth.Size() != b.Truth.Size() {
		t.Fatal("same seed, different shapes")
	}
	for i := range a.E1.Profiles {
		if a.E1.Profiles[i].String() != b.E1.Profiles[i].String() {
			t.Fatalf("profile %d differs between runs", i)
		}
	}
	c := AR1(0.02, 8)
	same := true
	for i := range a.E1.Profiles {
		if i < len(c.E1.Profiles) && a.E1.Profiles[i].String() != c.E1.Profiles[i].String() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestScaleControlsSize(t *testing.T) {
	small := AR1(0.02, 1)
	big := AR1(0.1, 1)
	if small.E1.Len() >= big.E1.Len() {
		t.Errorf("scale not monotone: %d vs %d", small.E1.Len(), big.E1.Len())
	}
	// Table 2 proportions at scale 1 would be 2600/2300/2200.
	if got := small.E1.Len(); got != 52 {
		t.Errorf("ar1 E1 at 0.02 = %d, want 52", got)
	}
	if got := small.E2.Len(); got != 46 {
		t.Errorf("ar1 E2 at 0.02 = %d, want 46", got)
	}
	if got := small.Truth.Size(); got != 44 {
		t.Errorf("ar1 |D| at 0.02 = %d, want 44", got)
	}
}

func TestTable2Shapes(t *testing.T) {
	// Attribute counts must match the paper's shapes at any scale.
	ar1 := AR1(0.02, 3)
	s := Describe(ar1)
	if s.A1 != 4 || s.A2 != 4 {
		t.Errorf("ar1 |A| = %d-%d, want 4-4", s.A1, s.A2)
	}
	mov := MOV(0.005, 3)
	s = Describe(mov)
	if s.A1 != 4 || s.A2 != 7 {
		t.Errorf("mov |A| = %d-%d, want 4-7", s.A1, s.A2)
	}
	cen := Census(0.1, 3)
	s = Describe(cen)
	if s.A1 != 5 {
		t.Errorf("census |A| = %d, want 5", s.A1)
	}
	cora := Cora(0.1, 3)
	s = Describe(cora)
	if s.A1 != 12 {
		t.Errorf("cora |A| = %d, want 12", s.A1)
	}
	if s.String() == "" {
		t.Error("Stats.String should render")
	}
}

func TestDBPWideSchema(t *testing.T) {
	ds := DBP(0.01, 5)
	s := Describe(ds)
	// Wide, sparse schemas on both sides; E2 wider than E1.
	if s.A1 < 40 || s.A2 < 60 {
		t.Errorf("dbp |A| = %d-%d, want wide schemas", s.A1, s.A2)
	}
	if s.A2 <= s.A1 {
		t.Errorf("dbp A2 (%d) should exceed A1 (%d)", s.A2, s.A1)
	}
	if s.E2 <= s.E1 {
		t.Errorf("dbp E2 (%d) should exceed E1 (%d)", s.E2, s.E1)
	}
}

func TestCoraDenseTruth(t *testing.T) {
	ds := Cora(0.2, 9)
	// Dense clusters: matches far exceed profile count / 2.
	if ds.Truth.Size() < ds.E1.Len() {
		t.Errorf("cora truth %d should exceed |E| %d (large clusters)", ds.Truth.Size(), ds.E1.Len())
	}
}

func TestCDDBSparseTruth(t *testing.T) {
	ds := CDDB(0.05, 9)
	// Sparse: ~600 matches for ~10k profiles at scale 1.
	if ds.Truth.Size() > ds.E1.Len()/4 {
		t.Errorf("cddb truth %d too dense for |E| %d", ds.Truth.Size(), ds.E1.Len())
	}
}

func TestManualAlignment(t *testing.T) {
	for _, name := range []string{"ar1", "ar2", "prd"} {
		align, ok := ManualAlignment(name)
		if !ok || len(align) != 8 {
			t.Errorf("%s: alignment missing or wrong size %d", name, len(align))
		}
	}
	if _, ok := ManualAlignment("mov"); ok {
		t.Error("mov is partially mappable: no manual 1:1 alignment")
	}
}

func TestClusterPlan(t *testing.T) {
	sizes := clusterPlan(100, 10, 3)
	total := 0
	clusters := 0
	for _, s := range sizes {
		total += s
		if s > 1 {
			clusters++
		}
	}
	if total != 100 {
		t.Errorf("plan total = %d, want 100", total)
	}
	if clusters != 10 {
		t.Errorf("plan clusters = %d, want 10", clusters)
	}
	// copies clamp
	sizes = clusterPlan(10, 2, 1)
	for _, s := range sizes {
		if s != 1 && s != 2 {
			t.Errorf("unexpected cluster size %d", s)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := AR1(0.02, 11)
	var buf bytes.Buffer
	if err := WriteCollection(&buf, ds.E1); err != nil {
		t.Fatalf("WriteCollection: %v", err)
	}
	back, err := ReadCollection(bytes.NewReader(buf.Bytes()), ds.E1.Name)
	if err != nil {
		t.Fatalf("ReadCollection: %v", err)
	}
	if back.Len() != ds.E1.Len() {
		t.Fatalf("round trip: %d profiles, want %d", back.Len(), ds.E1.Len())
	}
	for i := range back.Profiles {
		if back.Profiles[i].String() != ds.E1.Profiles[i].String() {
			t.Fatalf("profile %d differs after round trip", i)
		}
	}
}

func TestCSVEmptyProfile(t *testing.T) {
	c := model.NewCollection("s")
	c.Append(model.Profile{ID: "lonely"})
	p := model.Profile{ID: "full"}
	p.Add("a", "v")
	c.Append(p)
	var buf bytes.Buffer
	if err := WriteCollection(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCollection(bytes.NewReader(buf.Bytes()), "s")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 || len(back.Profiles[0].Pairs) != 0 {
		t.Errorf("empty profile lost in round trip: %d profiles", back.Len())
	}
}

func TestTruthRoundTrip(t *testing.T) {
	ds := PRD(0.05, 13)
	var buf bytes.Buffer
	if err := WriteTruth(&buf, ds); err != nil {
		t.Fatalf("WriteTruth: %v", err)
	}
	back, err := ReadTruth(bytes.NewReader(buf.Bytes()), ds)
	if err != nil {
		t.Fatalf("ReadTruth: %v", err)
	}
	if back.Size() != ds.Truth.Size() {
		t.Fatalf("truth round trip: %d, want %d", back.Size(), ds.Truth.Size())
	}
	for _, p := range ds.Truth.Pairs() {
		if !back.Contains(int(p.U), int(p.V)) {
			t.Fatalf("pair %v lost", p)
		}
	}
}

func TestReadTruthUnknownID(t *testing.T) {
	ds := PaperExample()
	if _, err := ReadTruth(bytes.NewReader([]byte("id1,id2\nghost,p1\n")), ds); err == nil {
		t.Error("unknown id should error")
	}
}

func TestReadCollectionEmpty(t *testing.T) {
	c, err := ReadCollection(bytes.NewReader(nil), "x")
	if err != nil || c.Len() != 0 {
		t.Errorf("empty reader: %v, %d profiles", err, c.Len())
	}
}

func TestSynthWordDisjointNamespaces(t *testing.T) {
	seen := make(map[string]uint64)
	for ns := uint64(1); ns <= 3; ns++ {
		for i := 0; i < 200; i++ {
			w := synthWord(ns, i)
			if prev, dup := seen[w]; dup && prev != ns {
				t.Fatalf("word %q appears in namespaces %d and %d", w, prev, ns)
			}
			seen[w] = ns
		}
	}
}

func TestVocabDraw(t *testing.T) {
	g := newGenerator(5)
	v := newVocab(g.rng, 99, 50, 1.0)
	if v.size() != 50 {
		t.Fatalf("size = %d", v.size())
	}
	counts := make(map[string]int)
	for i := 0; i < 5000; i++ {
		counts[v.draw()]++
	}
	// Zipf: the most common word should dominate the median one.
	if counts[v.at(0)] < counts[v.at(25)] {
		t.Error("vocab draw not Zipf-skewed")
	}
}

// TestGeneratorInvariantsAcrossSeedsAndScales: every generator, at
// several seeds and scales, produces a structurally valid dataset whose
// Token Blocking retains most matches (the redundancy-positive property
// all BLAST experiments assume).
func TestGeneratorInvariantsAcrossSeedsAndScales(t *testing.T) {
	scales := map[string]float64{
		"ar1": 0.03, "ar2": 0.005, "prd": 0.05, "mov": 0.005, "dbp": 0.01,
		"census": 0.1, "cora": 0.1, "cddb": 0.01,
	}
	for _, name := range AllNames() {
		for _, seed := range []uint64{1, 2} {
			gen, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			ds := gen(scales[name], seed)
			if err := ds.Validate(); err != nil {
				t.Errorf("%s seed %d: %v", name, seed, err)
			}
			s := Describe(ds)
			if s.Dups == 0 || s.NVP1 == 0 {
				t.Errorf("%s seed %d: degenerate stats %+v", name, seed, s)
			}
			// Every profile should carry at least one name-value pair on
			// average (sparse schemas allowed, empty datasets not).
			if s.NVP1 < s.E1/2 {
				t.Errorf("%s seed %d: nvp %d too sparse for %d profiles", name, seed, s.NVP1, s.E1)
			}
		}
	}
}

// TestNoiseMonotonicity: rendering with heavier noise must not increase
// the exact-token overlap between duplicate profiles, on average.
func TestNoiseMonotonicity(t *testing.T) {
	overlap := func(dropToken float64) float64 {
		g := newGenerator(11)
		g.addField(&field{name: "f", vocab: newVocab(g.rng, 5, 500, 1.0), minTokens: 8, maxTokens: 8})
		schema := []attrMap{{attr: "a", field: "f"}}
		total := 0.0
		for i := 0; i < 200; i++ {
			l := g.entity()
			p1 := g.render(l, schema, noise{dropToken: dropToken}, "x")
			p2 := g.render(l, schema, noise{dropToken: dropToken}, "y")
			v1, _ := p1.Value("a")
			v2, _ := p2.Value("a")
			set := make(map[string]bool)
			for _, tok := range splitTokens(v1) {
				set[tok] = true
			}
			inter := 0
			for _, tok := range splitTokens(v2) {
				if set[tok] {
					inter++
				}
			}
			total += float64(inter)
		}
		return total / 200
	}
	clean := overlap(0)
	noisy := overlap(0.4)
	if noisy >= clean {
		t.Errorf("noise did not reduce overlap: clean %v vs noisy %v", clean, noisy)
	}
}

func splitTokens(v string) []string {
	var out []string
	cur := ""
	for _, r := range v {
		if r == ' ' {
			if cur != "" {
				out = append(out, cur)
			}
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

// TestIsYear covers the numeric-format noise helper.
func TestIsYear(t *testing.T) {
	yes := []string{"1985", "2009", "1800"}
	no := []string{"85", "12345", "198a", "0985", "", "3000"}
	for _, v := range yes {
		if !isYear(v) {
			t.Errorf("isYear(%q) = false", v)
		}
	}
	for _, v := range no {
		if isYear(v) {
			t.Errorf("isYear(%q) = true", v)
		}
	}
}
