// Package datasets provides the workloads of the reproduction: the
// paper's Figure 1 worked example, synthetic generators that reproduce
// the shape of the evaluation benchmarks of Table 2 (clean-clean: ar1,
// ar2, prd, mov, dbp) and Table 7 (dirty: census, cora, cddb), and CSV
// loaders for external data.
//
// The original benchmark files are not redistributable and cannot be
// downloaded in this offline environment; the generators reproduce their
// published structure — entity counts (scalable), attribute counts,
// schema mappability (1:1 vs 0:n), name-value-pair volumes, duplicate
// counts and token-level noise — so every algorithm exercises the same
// code paths on data with the same qualitative characteristics. See
// DESIGN.md ("Substitutions") for the mapping.
package datasets

import "blast/internal/model"

// PaperExample returns the four-profile entity collection of Figure 1 of
// the paper, as a dirty ER dataset. Token Blocking over it yields exactly
// the 12 blocks of Figure 1b, and the derived blocking graph matches
// Figure 1c (p1-p3 and p2-p4 are the matching pairs).
//
// Global ids: p1=0, p2=1, p3=2, p4=3.
func PaperExample() *model.Dataset {
	e := model.NewCollection("figure1")

	p1 := model.Profile{ID: "p1"}
	p1.Add("Name", "John Abram Jr")
	p1.Add("profession", "car seller")
	p1.Add("year", "1985")
	p1.Add("Addr.", "Main street")
	e.Append(p1)

	p2 := model.Profile{ID: "p2"}
	p2.Add("FirstName", "Ellen")
	p2.Add("SecondName", "Smith")
	p2.Add("year", "85")
	p2.Add("occupation", "retail")
	p2.Add("mail", "Abram st. 30 NY")
	e.Append(p2)

	p3 := model.Profile{ID: "p3"}
	p3.Add("name1", "Jon Jr")
	p3.Add("name2", "Abram")
	p3.Add("birth year", "85")
	p3.Add("job", "car retail")
	p3.Add("Loc", "Main st.")
	e.Append(p3)

	p4 := model.Profile{ID: "p4"}
	p4.Add("full name", "Ellen Smith")
	p4.Add("b. date", "May 10 1985")
	p4.Add("work info", "retailer")
	p4.Add("loc", "Abram street NY")
	e.Append(p4)

	g := model.NewGroundTruth()
	g.Add(0, 2) // p1 ~ p3 (John Abram Jr / Jon Jr Abram)
	g.Add(1, 3) // p2 ~ p4 (Ellen Smith)

	return &model.Dataset{Name: "paper-fig1", Kind: model.Dirty, E1: e, Truth: g}
}

// PaperExampleNameCluster returns the loose schema partitioning the paper
// derives for the Figure 1 example (Figure 2): the person-name attributes
// form one cluster and everything else falls in the glue cluster. The map
// is keyed by attribute name (the example has one source).
func PaperExampleNameCluster() map[string]int {
	return map[string]int{
		"Name":       1,
		"FirstName":  1,
		"SecondName": 1,
		"name1":      1,
		"name2":      1,
		"full name":  1,
		// glue cluster (id 0): all remaining attributes
		"profession": 0, "year": 0, "Addr.": 0, "occupation": 0,
		"mail": 0, "birth year": 0, "job": 0, "Loc": 0,
		"b. date": 0, "work info": 0, "loc": 0,
	}
}
