package datasets

import (
	"fmt"
	"math"

	"blast/internal/model"
)

// buildClean assembles a clean-clean dataset: m latent entities appear in
// both sources (the duplicates D_E), the remainder of each source is
// filled with singletons. Profiles are shuffled so ids carry no signal.
func (g *generator) buildClean(name string, n1, n2, m int, schema1, schema2 []attrMap, nz1, nz2 noise) *model.Dataset {
	if m > n1 {
		m = n1
	}
	if m > n2 {
		m = n2
	}
	matched := make([]*latent, m)
	for i := range matched {
		matched[i] = g.entity()
	}

	mk := func(src string, n int, schema []attrMap, nz noise) (*model.Collection, []int) {
		profiles := make([]model.Profile, 0, n)
		owner := make([]int, 0, n) // latent index, or -1 for singleton
		for i := 0; i < m; i++ {
			profiles = append(profiles, g.render(matched[i], schema, nz, fmt.Sprintf("%s-%s-%d", name, src, i)))
			owner = append(owner, i)
		}
		for i := m; i < n; i++ {
			l := g.entity()
			profiles = append(profiles, g.render(l, schema, nz, fmt.Sprintf("%s-%s-%d", name, src, i)))
			owner = append(owner, -1)
		}
		g.rng.Shuffle(len(profiles), func(a, b int) {
			profiles[a], profiles[b] = profiles[b], profiles[a]
			owner[a], owner[b] = owner[b], owner[a]
		})
		// Re-identify by final position so external ids carry no hint of
		// which profiles match.
		for i := range profiles {
			profiles[i].ID = fmt.Sprintf("%s-%d", src, i)
		}
		c := model.NewCollection(src)
		c.Profiles = profiles
		return c, owner
	}

	e1, own1 := mk(name+"A", n1, schema1, nz1)
	e2, own2 := mk(name+"B", n2, schema2, nz2)

	pos1 := make([]int, m)
	pos2 := make([]int, m)
	for i, o := range own1 {
		if o >= 0 {
			pos1[o] = i
		}
	}
	for i, o := range own2 {
		if o >= 0 {
			pos2[o] = i
		}
	}
	truth := model.NewGroundTruth()
	for i := 0; i < m; i++ {
		truth.Add(pos1[i], n1+pos2[i])
	}
	return &model.Dataset{Name: name, Kind: model.CleanClean, E1: e1, E2: e2, Truth: truth}
}

// AR1 reproduces the shape of the DBLP-ACM benchmark (Table 2 "ar1"):
// fully mappable bibliographic schemas of 4 attributes each, 2.6k x 2.3k
// profiles and 2.2k duplicates at scale 1. Clean, low-noise data.
func AR1(scale float64, seed uint64) *model.Dataset {
	g := newGenerator(seed ^ 0xa51)
	g.addField(&field{name: "title", vocab: newVocab(g.rng, 11, 2200, 1.0), minTokens: 5, maxTokens: 10})
	g.addField(&field{name: "authors", vocab: newVocab(g.rng, 12, 900, 0.7), minTokens: 2, maxTokens: 5, identity: true})
	g.addField(&field{name: "venue", vocab: newVocab(g.rng, 13, 60, 0.8), minTokens: 1, maxTokens: 3})
	g.addField(&field{name: "year", numeric: true, numLo: 1975, numHi: 2009})

	s1 := []attrMap{
		{attr: "title", field: "title"},
		{attr: "authors", field: "authors"},
		{attr: "venue", field: "venue"},
		{attr: "year", field: "year"},
	}
	s2 := []attrMap{
		{attr: "name", field: "title"},
		{attr: "author list", field: "authors"},
		{attr: "booktitle", field: "venue"},
		{attr: "date", field: "year"},
	}
	nz1 := noise{dropToken: 0.03, typo: 0.02, extraToken: 0.05}
	nz2 := noise{dropToken: 0.06, abbreviate: 0.05, typo: 0.03, twoDigitYear: 0.2, extraToken: 0.05}
	return g.buildClean("ar1", scaled(2600, scale), scaled(2300, scale), scaled(2200, scale), s1, s2, nz1, nz2)
}

// AR2 reproduces DBLP-Scholar ("ar2"): fully mappable, but the second
// source is an order of magnitude larger (2.5k x 61k, 2.3k duplicates at
// scale 1) and much noisier (Scholar's crawled metadata: abbreviations,
// missing venues, truncated author lists).
func AR2(scale float64, seed uint64) *model.Dataset {
	g := newGenerator(seed ^ 0xa52)
	g.addField(&field{name: "title", vocab: newVocab(g.rng, 21, 6000, 1.0), minTokens: 5, maxTokens: 11})
	g.addField(&field{name: "authors", vocab: newVocab(g.rng, 22, 2500, 0.7), minTokens: 2, maxTokens: 5, identity: true})
	g.addField(&field{name: "venue", vocab: newVocab(g.rng, 23, 120, 0.8), minTokens: 1, maxTokens: 3})
	g.addField(&field{name: "year", numeric: true, numLo: 1970, numHi: 2010})

	s1 := []attrMap{
		{attr: "title", field: "title"},
		{attr: "authors", field: "authors"},
		{attr: "venue", field: "venue"},
		{attr: "year", field: "year"},
	}
	s2 := []attrMap{
		{attr: "title", field: "title"},
		{attr: "author", field: "authors"},
		{attr: "publication", field: "venue"},
		{attr: "year", field: "year"},
	}
	nz1 := noise{dropToken: 0.03, typo: 0.02, extraToken: 0.04}
	nz2 := noise{dropToken: 0.12, abbreviate: 0.15, typo: 0.05, dropAttr: 0.15, twoDigitYear: 0.25, extraToken: 0.08}
	return g.buildClean("ar2", scaled(2500, scale), scaled(61000, scale), scaled(2300, scale), s1, s2, nz1, nz2)
}

// PRD reproduces Abt-Buy ("prd"): fully mappable e-commerce catalogs,
// 1.1k x 1.1k with 1.1k duplicates at scale 1. Short names, verbose
// descriptions, brand vocabulary shared across many products (low
// selectivity), prices rarely matching exactly.
func PRD(scale float64, seed uint64) *model.Dataset {
	g := newGenerator(seed ^ 0xbdd)
	g.addField(&field{name: "pname", vocab: newVocab(g.rng, 31, 1400, 0.8), minTokens: 2, maxTokens: 5, identity: true})
	g.addField(&field{name: "descr", vocab: newVocab(g.rng, 32, 2600, 1.1), minTokens: 8, maxTokens: 18})
	g.addField(&field{name: "brand", vocab: newVocab(g.rng, 33, 40, 0.9), minTokens: 1, maxTokens: 1})
	g.addField(&field{name: "price", numeric: true, numLo: 10, numHi: 2500})

	s1 := []attrMap{
		{attr: "name", field: "pname", merge: []string{"brand"}},
		{attr: "description", field: "descr"},
		{attr: "manufacturer", field: "brand"},
		{attr: "price", field: "price"},
	}
	s2 := []attrMap{
		{attr: "title", field: "pname", merge: []string{"brand"}},
		{attr: "features", field: "descr"},
		{attr: "brand", field: "brand"},
		{attr: "cost", field: "price"},
	}
	nz1 := noise{dropToken: 0.08, typo: 0.03, extraToken: 0.10}
	nz2 := noise{dropToken: 0.15, abbreviate: 0.06, typo: 0.04, dropAttr: 0.10, extraToken: 0.12}
	return g.buildClean("prd", scaled(1100, scale), scaled(1100, scale), scaled(1100, scale), s1, s2, nz1, nz2)
}

// MOV reproduces IMDB-DBpedia ("mov"): partially mappable (4 vs 7
// attributes, 0:n associations), 28k x 23k with 23k duplicates at
// scale 1. The DBpedia side carries attributes with no IMDB counterpart,
// filled from the ambient vocabulary.
func MOV(scale float64, seed uint64) *model.Dataset {
	g := newGenerator(seed ^ 0x30f)
	g.addField(&field{name: "title", vocab: newVocab(g.rng, 41, 8000, 1.0), minTokens: 1, maxTokens: 4, identity: true})
	g.addField(&field{name: "director", vocab: newVocab(g.rng, 42, 3000, 0.7), minTokens: 2, maxTokens: 2, identity: true})
	g.addField(&field{name: "actors", vocab: newVocab(g.rng, 43, 6000, 0.7), minTokens: 4, maxTokens: 8, identity: true})
	g.addField(&field{name: "year", numeric: true, numLo: 1925, numHi: 2012})

	s1 := []attrMap{
		{attr: "title", field: "title"},
		{attr: "director", field: "director"},
		{attr: "cast", field: "actors"},
		{attr: "year", field: "year"},
	}
	s2 := []attrMap{
		{attr: "name", field: "title"},
		{attr: "directed by", field: "director"},
		{attr: "starring", field: "actors"},
		{attr: "released", field: "year"},
		{attr: "runtime", ambient: true},
		{attr: "genre", ambient: true},
		{attr: "country", ambient: true},
	}
	nz1 := noise{dropToken: 0.05, typo: 0.02, extraToken: 0.05}
	nz2 := noise{dropToken: 0.10, abbreviate: 0.04, typo: 0.04, dropAttr: 0.12, twoDigitYear: 0.1, extraToken: 0.08}
	return g.buildClean("mov", scaled(28000, scale), scaled(23000, scale), scaled(23000, scale), s1, s2, nz1, nz2)
}

// DBP reproduces the DBpedia 2007-2009 snapshots ("dbp"): both sides are
// wide, sparse infobox-style schemas (30k and 50k attributes at paper
// scale; the generator scales attribute counts with the square root of
// scale to keep per-attribute support realistic), only ~25% of nvp
// shared, 1.2M x 2.2M profiles and 893k duplicates at scale 1. A core of
// mappable fields carries the matching signal; every profile additionally
// holds several source-private attributes.
func DBP(scale float64, seed uint64) *model.Dataset {
	g := newGenerator(seed ^ 0xdb9)
	core := []string{"label", "type", "place", "person", "work", "date"}
	vocSizes := []int{9000, 80, 2500, 5000, 6000, 0}
	for i, name := range core {
		if name == "date" {
			g.addField(&field{name: name, numeric: true, numLo: 1800, numHi: 2009})
			continue
		}
		g.addField(&field{
			name: name, vocab: newVocab(g.rng, uint64(50+i), vocSizes[i], 0.9),
			minTokens: 1, maxTokens: 4, identity: i != 1,
		})
	}

	// Attribute pools: names for the long tail of infobox properties.
	// Attribute counts grow with sqrt(scale) so per-attribute support
	// stays realistic as profile counts shrink.
	sqrtScale := math.Sqrt(math.Max(scale, 1e-4))
	nAttrs1 := clamp(scaled(30000, sqrtScale*0.08), 40, 3000)
	nAttrs2 := clamp(scaled(50000, sqrtScale*0.08), 60, 5000)
	pool1 := make([]string, nAttrs1)
	for i := range pool1 {
		pool1[i] = "prop07 " + synthWord(71, i)
	}
	pool2 := make([]string, nAttrs2)
	for i := range pool2 {
		pool2[i] = "prop09 " + synthWord(72, i)
	}
	// A fraction of the 2009 pool aliases the 2007 pool (shared
	// properties surviving the snapshot change).
	for i := 0; i < nAttrs2/4 && i < nAttrs1; i++ {
		pool2[i] = pool1[i]
	}

	s1 := []attrMap{
		{attr: "rdfs:label", field: "label"},
		{attr: "rdf:type", field: "type"},
		{attr: "dbp:place", field: "place"},
		{attr: "dbp:person", field: "person"},
		{attr: "dbp:work", field: "work"},
		{attr: "dbp:date", field: "date"},
	}
	s2 := []attrMap{
		{attr: "label", field: "label"},
		{attr: "22-rdf-syntax-ns#type", field: "type"},
		{attr: "ontology/place", field: "place"},
		{attr: "ontology/person", field: "person"},
		{attr: "ontology/work", field: "work"},
		{attr: "ontology/date", field: "date"},
	}
	nz1 := noise{dropToken: 0.05, typo: 0.02, dropAttr: 0.25, extraToken: 0.06}
	nz2 := noise{dropToken: 0.10, abbreviate: 0.03, typo: 0.04, dropAttr: 0.35, extraToken: 0.08}

	// Profile counts: capped so that scale 1 stays laptop-runnable; the
	// published sizes are unreachable without the paper's 40 GB heap.
	n1 := clamp(scaled(1200000, scale*0.02), 60, 40000)
	n2 := clamp(scaled(2200000, scale*0.02), 80, 70000)
	m := clamp(scaled(893000, scale*0.02), 40, 30000)
	ds := g.buildClean("dbp", n1, n2, m, s1, s2, nz1, nz2)

	// Append the sparse private attributes per profile.
	appendTail := func(c *model.Collection, pool []string) {
		for i := range c.Profiles {
			k := 2 + g.rng.Intn(6)
			for j := 0; j < k; j++ {
				attr := pool[g.rng.Intn(len(pool))]
				n := 1 + g.rng.Intn(3)
				toks := make([]string, n)
				for t := 0; t < n; t++ {
					toks[t] = g.ambient.draw()
				}
				c.Profiles[i].Add(attr, joinTokens(toks))
			}
		}
	}
	appendTail(ds.E1, pool1)
	appendTail(ds.E2, pool2)
	return ds
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func joinTokens(toks []string) string {
	out := ""
	for i, t := range toks {
		if i > 0 {
			out += " "
		}
		out += t
	}
	return out
}
