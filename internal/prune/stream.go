// Streaming (node-centric) implementations of the pruning schemes over
// the CSR blocking graph. Unlike the edge-list functions, which return
// indexes into Graph.Edges, these consume graph.CSR — where no edge list
// exists — and emit the retained pairs directly, in canonical (u, v)
// order. For every scheme the retained set is identical to its edge-list
// counterpart.
//
// Every streaming scheme runs its passes — per-node thresholds, top-k
// marking, histogram counting, retention emission — over the fixed node
// chunks of parallel.go on `workers` goroutines (0 selects GOMAXPROCS),
// and the output is byte-identical for every worker count: chunk
// boundaries are a pure function of the node count, per-chunk float
// partials are combined in chunk order, and per-chunk output buffers
// are stitched in canonical order. Even the global schemes WEP/CEP now
// run in O(adjacency-run) scratch: WEP's mean is a chunked sum and
// CEP's cut comes from the bounded histogram selection of select.go
// instead of a flat O(|E|) weight sort.
//
// Every streaming scheme takes a context and supports cooperative
// cancellation: each pass polls ctx at edge-segment granularity — even
// inside a single hub node's adjacency run — and returns ctx.Err() as
// soon as cancellation is observed, discarding partial output.
package prune

import (
	"context"
	"slices"

	"blast/internal/graph"
	"blast/internal/model"
)

// WEPStream is WEP over the CSR graph: discard every edge whose weight
// is below the mean edge weight. The mean's numerator is the chunked
// canonical weight sum (combined in chunk order), shared bit for bit
// with the edge-list WEP.
func WEPStream(ctx context.Context, g *graph.CSR, workers int) ([]model.IDPair, error) {
	if g.NumEdges() == 0 {
		return nil, ctx.Err()
	}
	sums, counts, err := chunkPartialSums(ctx, g, workers)
	if err != nil {
		return nil, err
	}
	theta := combinePartials(sums, counts) / float64(g.NumEdges())
	return emitChunked(ctx, g, workers, func(_, _ int32, _ int64, wt float64) bool {
		return wt >= theta
	})
}

// CEPStream is CEP over the CSR graph: retain the globally top-k edges
// by weight (k <= 0 uses the block-membership budget), breaking ties at
// the cut in favor of canonically smaller pairs — the same tie rule as
// the stable sort of the edge-list CEP. The cut is located by the
// bounded histogram selection of select.go; no O(|E|) weight scratch is
// ever allocated.
func CEPStream(ctx context.Context, g *graph.CSR, k, workers int) ([]model.IDPair, error) {
	ne := g.NumEdges()
	if ne == 0 {
		return nil, ctx.Err()
	}
	if k <= 0 {
		k = cepBudget(g.BlockCounts)
	}
	if k > ne {
		k = ne
	}
	if k <= 0 {
		return nil, ctx.Err()
	}
	cut, greater, ties, err := selectCut(ctx, g, workers, k)
	if err != nil {
		return nil, err
	}
	// How many budget slots remain for edges that tie with the cut;
	// edges strictly above it are always in. Ties consume their slots in
	// canonical order (and even when zero-filtered below). When the
	// budget covers every tie — the common case of distinct weights,
	// where the single tie IS the k-th edge — or covers none, no
	// per-edge tie ordinal is needed and one emission pass suffices.
	rem := int64(k - greater)
	if rem >= int64(ties) {
		return emitChunked(ctx, g, workers, func(_, _ int32, _ int64, wt float64) bool {
			return wt >= cut
		})
	}
	if rem <= 0 {
		return emitChunked(ctx, g, workers, func(_, _ int32, _ int64, wt float64) bool {
			return wt > cut
		})
	}
	// Partial tie budget: count ties per chunk, prefix-sum the counts in
	// chunk order to give every chunk its starting tie ordinal, then
	// emit.
	nch := numChunks(g.NumProfiles)
	tiesPerChunk := make([]int64, nch)
	err = runChunks(ctx, workers, nch, func(w *pruneWorker, chunk int) error {
		n := int64(0)
		err := forChunkCanonical(g, w, chunk, func(_, _ int32, _ int64, wt float64) {
			if wt == cut {
				n++
			}
		})
		tiesPerChunk[chunk] = n
		return err
	})
	if err != nil {
		return nil, err
	}
	tieBase := make([]int64, nch)
	base := int64(0)
	for i, n := range tiesPerChunk {
		tieBase[i] = base
		base += n
	}
	bufs := make([][]model.IDPair, nch)
	err = runChunks(ctx, workers, nch, func(w *pruneWorker, chunk int) error {
		tie := tieBase[chunk]
		var out []model.IDPair
		err := forChunkCanonical(g, w, chunk, func(u, v int32, _ int64, wt float64) {
			take := wt > cut
			if !take && wt == cut {
				take = tie < rem
				tie++
			}
			if take && wt > 0 {
				out = append(out, model.IDPair{U: u, V: v})
			}
		})
		bufs[chunk] = out
		return err
	})
	if err != nil {
		return nil, err
	}
	return stitchPairs(bufs), nil
}

// runReducer reduces one adjacency run to a per-node threshold, polling
// the worker's cancellation budget between edge segments. Implementations
// must be bit-identical to their whole-run counterparts (MeanThresholdOf,
// BlastThresholdOf): segmentation pauses the loop, it never reorders the
// arithmetic.
type runReducer func(w *pruneWorker, ws []float64) (float64, error)

// meanReducer is MeanThresholdOf with in-run cancellation polls.
func meanReducer(w *pruneWorker, ws []float64) (float64, error) {
	n := len(ws)
	s := 0.0
	for len(ws) > 0 {
		seg := len(ws)
		if seg > streamCancelCheckEdges {
			seg = streamCancelCheckEdges
		}
		for _, x := range ws[:seg] {
			s += x
		}
		ws = ws[seg:]
		if err := w.tick(seg); err != nil {
			return 0, err
		}
	}
	return s / float64(n), nil
}

// blastReducer is BlastThresholdOf with in-run cancellation polls.
func blastReducer(c float64) runReducer {
	if c <= 0 {
		c = 2
	}
	return func(w *pruneWorker, ws []float64) (float64, error) {
		m := ws[0]
		for len(ws) > 0 {
			seg := len(ws)
			if seg > streamCancelCheckEdges {
				seg = streamCancelCheckEdges
			}
			for _, x := range ws[:seg] {
				if x > m {
					m = x
				}
			}
			ws = ws[seg:]
			if err := w.tick(seg); err != nil {
				return 0, err
			}
		}
		return m / c, nil
	}
}

// nodeThresholdsCSR computes a per-node threshold by reducing each
// node's adjacent weights; nodes without edges get 0. Each run is
// reduced in adjacency order, matching the edge-list nodeThresholds.
// Chunks run on `workers` goroutines, writing disjoint index ranges of
// the result; the values are per-node, so the worker count cannot
// change a single bit.
func nodeThresholdsCSR(ctx context.Context, g *graph.CSR, workers int, reduce runReducer) ([]float64, error) {
	th := make([]float64, g.NumProfiles)
	err := runChunks(ctx, workers, numChunks(g.NumProfiles), func(w *pruneWorker, chunk int) error {
		lo, hi := chunkBounds(chunk, g.NumProfiles)
		for n := lo; n < hi; n++ {
			if g.Offsets[n] == g.Offsets[n+1] {
				continue
			}
			_, ws := g.Run(n)
			v, err := reduce(w, ws)
			if err != nil {
				return err
			}
			th[n] = v
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return th, nil
}

// MeanThresholdOf is WNP's per-node reducer over one adjacency run: the
// mean adjacent weight, summed in run order so the value is bit-identical
// whether computed by a full pass (MeanThresholds) or by an incremental
// re-reduction of a single spliced run. Empty runs yield 0.
func MeanThresholdOf(ws []float64) float64 {
	if len(ws) == 0 {
		return 0
	}
	s := 0.0
	for _, w := range ws {
		s += w
	}
	return s / float64(len(ws))
}

// BlastThresholdOf is BLAST's per-node reducer over one adjacency run:
// theta_i = M_i/c (c <= 0 defaults to 2). Empty runs yield 0.
func BlastThresholdOf(ws []float64, c float64) float64 {
	if len(ws) == 0 {
		return 0
	}
	if c <= 0 {
		c = 2
	}
	m := ws[0]
	for _, w := range ws[1:] {
		if w > m {
			m = w
		}
	}
	return m / c
}

// MeanThresholds returns WNP's per-node thresholds over the CSR graph:
// the mean adjacent weight of every node (0 for edgeless nodes). It is
// the exact reducer WNPStream prunes with, exported so index consumers
// expose the same values the retention decision used. workers selects
// the goroutine count (0 = GOMAXPROCS); the values are identical either
// way.
func MeanThresholds(ctx context.Context, g *graph.CSR, workers int) ([]float64, error) {
	return nodeThresholdsCSR(ctx, g, workers, meanReducer)
}

// BlastThresholds returns BLAST's per-node thresholds theta_i = M_i/c
// over the CSR graph (0 for edgeless nodes; c <= 0 defaults to 2). It is
// the exact reducer BlastWNPStream prunes with, exported so index
// consumers expose the same values the retention decision used. workers
// selects the goroutine count (0 = GOMAXPROCS); the values are identical
// either way.
func BlastThresholds(ctx context.Context, g *graph.CSR, c float64, workers int) ([]float64, error) {
	return nodeThresholdsCSR(ctx, g, workers, blastReducer(c))
}

// WNPStream is WNP over the CSR graph: per-node mean-weight thresholds,
// resolved per edge according to mode.
func WNPStream(ctx context.Context, g *graph.CSR, mode Mode, workers int) ([]model.IDPair, error) {
	th, err := MeanThresholds(ctx, g, workers)
	if err != nil {
		return nil, err
	}
	return emitByThreshold(ctx, g, workers, func(w, thU, thV float64) bool {
		overU := w >= thU
		overV := w >= thV
		if mode == Redefined {
			return overU || overV
		}
		return overU && overV
	}, th)
}

// BlastWNPStream is BLAST's pruning (Section 3.3.2) over the CSR graph:
// theta_i = M_i / c per node, retain iff w >= (theta_u + theta_v) / d.
func BlastWNPStream(ctx context.Context, g *graph.CSR, c, d float64, workers int) ([]model.IDPair, error) {
	if d <= 0 {
		d = 2
	}
	th, err := BlastThresholds(ctx, g, c, workers)
	if err != nil {
		return nil, err
	}
	return emitByThreshold(ctx, g, workers, func(w, thU, thV float64) bool {
		return w >= (thU+thV)/d
	}, th)
}

// emitByThreshold runs the retention pass shared by the weight-based
// node-centric schemes: every positive-weight canonical edge is tested
// against its endpoints' thresholds.
func emitByThreshold(ctx context.Context, g *graph.CSR, workers int, keep func(w, thU, thV float64) bool, th []float64) ([]model.IDPair, error) {
	return emitChunked(ctx, g, workers, func(u, v int32, _ int64, wt float64) bool {
		return keep(wt, th[u], th[v])
	})
}

// CNPStream is CNP over the CSR graph: each node marks its top-k
// adjacent edges by weight (stable on the adjacency order, like the
// edge-list CNP), and an edge is retained if the marks of its endpoints
// satisfy the mode. The mark pass writes only positions inside its
// chunk's runs, so chunks never race; the retention pass locates each
// edge's mirror entry by binary search instead of the serial cursor
// sweep, which lets chunks resolve marks independently.
func CNPStream(ctx context.Context, g *graph.CSR, k int, mode Mode, workers int) ([]model.IDPair, error) {
	if g.NumEdges() == 0 {
		return nil, ctx.Err()
	}
	if k <= 0 {
		k = cnpBudget(g.BlockCounts)
		if k == 0 {
			return nil, ctx.Err()
		}
	}
	mark := make([]bool, g.NumEntries())
	err := runChunks(ctx, workers, numChunks(g.NumProfiles), func(w *pruneWorker, chunk int) error {
		lo, hi := chunkBounds(chunk, g.NumProfiles)
		for n := lo; n < hi; n++ {
			rlo, rhi := g.Offsets[n], g.Offsets[n+1]
			if rlo == rhi {
				continue
			}
			_, ws := g.Run(n)
			order := w.order[:0]
			for p := rlo; p < rhi; {
				seg := rhi - p
				if seg > streamCancelCheckEdges {
					seg = streamCancelCheckEdges
				}
				for stop := p + seg; p < stop; p++ {
					order = append(order, p)
				}
				w.order = order
				if err := w.tick(int(seg)); err != nil {
					return err
				}
			}
			slices.SortStableFunc(order, func(a, b int64) int {
				switch wa, wb := ws[a-rlo], ws[b-rlo]; {
				case wa > wb:
					return -1
				case wa < wb:
					return 1
				default:
					return 0
				}
			})
			limit := k
			if limit > len(order) {
				limit = len(order)
			}
			for _, p := range order[:limit] {
				mark[p] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return emitChunked(ctx, g, workers, func(u, v int32, p int64, _ float64) bool {
		mp := g.MirrorEntry(u, v)
		if mode == Reciprocal {
			return mark[p] && mark[mp]
		}
		return mark[p] || mark[mp]
	})
}
