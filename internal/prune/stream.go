// Streaming (node-centric) implementations of the pruning schemes over
// the CSR blocking graph. Unlike the edge-list functions, which return
// indexes into Graph.Edges, these consume graph.CSR — where no edge list
// exists — and emit the retained pairs directly, in canonical (u, v)
// order. For every scheme the retained set is identical to its edge-list
// counterpart; the node-centric schemes run in two passes (thresholds
// from each node's adjacency run, then retention), and even the global
// schemes WEP/CEP need only an O(|E|) scalar scratch rather than a
// materialized edge list.
//
// Every streaming scheme takes a context and supports cooperative
// cancellation: each pass polls ctx at node-chunk granularity (via the
// CSR's ctx-aware iterators) and returns ctx.Err() as soon as
// cancellation is observed, discarding partial output.
package prune

import (
	"context"
	"slices"
	"sort"

	"blast/internal/graph"
	"blast/internal/model"
)

// streamCancelCheckEvery is the node-chunk granularity at which the
// pruning passes that iterate nodes directly poll for cancellation.
const streamCancelCheckEvery = 1024

// WEPStream is WEP over the CSR graph: discard every edge whose weight
// is below the mean edge weight.
func WEPStream(ctx context.Context, g *graph.CSR) ([]model.IDPair, error) {
	if g.NumEdges() == 0 {
		return nil, ctx.Err()
	}
	sum := 0.0
	if err := g.CanonicalCtx(ctx, func(_, _ int32, p int64) { sum += g.Weights[p] }); err != nil {
		return nil, err
	}
	theta := sum / float64(g.NumEdges())
	var out []model.IDPair
	err := g.CanonicalCtx(ctx, func(u, v int32, p int64) {
		if w := g.Weights[p]; w >= theta && w > 0 {
			out = append(out, model.IDPair{U: u, V: v})
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CEPStream is CEP over the CSR graph: retain the globally top-k edges
// by weight (k <= 0 uses the block-membership budget), breaking ties at
// the cut in favor of canonically smaller pairs — the same tie rule as
// the stable sort of the edge-list CEP. Only a flat weight scratch is
// allocated, never the edges themselves.
func CEPStream(ctx context.Context, g *graph.CSR, k int) ([]model.IDPair, error) {
	ne := g.NumEdges()
	if ne == 0 {
		return nil, ctx.Err()
	}
	if k <= 0 {
		k = cepBudget(g.BlockCounts)
	}
	if k > ne {
		k = ne
	}
	if k <= 0 {
		return nil, ctx.Err()
	}
	ws := make([]float64, 0, ne)
	if err := g.CanonicalCtx(ctx, func(_, _ int32, p int64) { ws = append(ws, g.Weights[p]) }); err != nil {
		return nil, err
	}
	sort.Float64s(ws)
	// The cut weight and how many budget slots remain for edges that tie
	// with it; edges strictly above the cut are always in.
	cut := ws[ne-k]
	greater := ne - sort.Search(ne, func(i int) bool { return ws[i] > cut })
	rem := k - greater
	var out []model.IDPair
	err := g.CanonicalCtx(ctx, func(u, v int32, p int64) {
		w := g.Weights[p]
		take := w > cut
		if !take && w == cut && rem > 0 {
			take = true
			rem-- // ties consume budget slots even if zero-filtered below
		}
		if take && w > 0 {
			out = append(out, model.IDPair{U: u, V: v})
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// nodeThresholdsCSR computes a per-node threshold by reducing each
// node's adjacent weights; nodes without edges get 0. The run is passed
// in adjacency order, matching the edge-list nodeThresholds. Polls ctx
// at node-chunk granularity.
func nodeThresholdsCSR(ctx context.Context, g *graph.CSR, reduce func(ws []float64) float64) ([]float64, error) {
	th := make([]float64, g.NumProfiles)
	for n := 0; n < g.NumProfiles; n++ {
		if n%streamCancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		lo, hi := g.Offsets[n], g.Offsets[n+1]
		if lo == hi {
			continue
		}
		th[n] = reduce(g.Weights[lo:hi])
	}
	return th, nil
}

// MeanThresholdOf is WNP's per-node reducer over one adjacency run: the
// mean adjacent weight, summed in run order so the value is bit-identical
// whether computed by a full pass (MeanThresholds) or by an incremental
// re-reduction of a single spliced run. Empty runs yield 0.
func MeanThresholdOf(ws []float64) float64 {
	if len(ws) == 0 {
		return 0
	}
	s := 0.0
	for _, w := range ws {
		s += w
	}
	return s / float64(len(ws))
}

// BlastThresholdOf is BLAST's per-node reducer over one adjacency run:
// theta_i = M_i/c (c <= 0 defaults to 2). Empty runs yield 0.
func BlastThresholdOf(ws []float64, c float64) float64 {
	if len(ws) == 0 {
		return 0
	}
	if c <= 0 {
		c = 2
	}
	m := ws[0]
	for _, w := range ws[1:] {
		if w > m {
			m = w
		}
	}
	return m / c
}

// MeanThresholds returns WNP's per-node thresholds over the CSR graph:
// the mean adjacent weight of every node (0 for edgeless nodes). It is
// the exact reducer WNPStream prunes with, exported so index consumers
// expose the same values the retention decision used.
func MeanThresholds(ctx context.Context, g *graph.CSR) ([]float64, error) {
	return nodeThresholdsCSR(ctx, g, MeanThresholdOf)
}

// BlastThresholds returns BLAST's per-node thresholds theta_i = M_i/c
// over the CSR graph (0 for edgeless nodes; c <= 0 defaults to 2). It is
// the exact reducer BlastWNPStream prunes with, exported so index
// consumers expose the same values the retention decision used.
func BlastThresholds(ctx context.Context, g *graph.CSR, c float64) ([]float64, error) {
	return nodeThresholdsCSR(ctx, g, func(ws []float64) float64 {
		return BlastThresholdOf(ws, c)
	})
}

// WNPStream is WNP over the CSR graph: per-node mean-weight thresholds,
// resolved per edge according to mode.
func WNPStream(ctx context.Context, g *graph.CSR, mode Mode) ([]model.IDPair, error) {
	th, err := MeanThresholds(ctx, g)
	if err != nil {
		return nil, err
	}
	return emitByThreshold(ctx, g, func(w, thU, thV float64) bool {
		overU := w >= thU
		overV := w >= thV
		if mode == Redefined {
			return overU || overV
		}
		return overU && overV
	}, th)
}

// BlastWNPStream is BLAST's pruning (Section 3.3.2) over the CSR graph:
// theta_i = M_i / c per node, retain iff w >= (theta_u + theta_v) / d.
func BlastWNPStream(ctx context.Context, g *graph.CSR, c, d float64) ([]model.IDPair, error) {
	if d <= 0 {
		d = 2
	}
	th, err := BlastThresholds(ctx, g, c)
	if err != nil {
		return nil, err
	}
	return emitByThreshold(ctx, g, func(w, thU, thV float64) bool {
		return w >= (thU+thV)/d
	}, th)
}

// emitByThreshold runs the retention pass shared by the weight-based
// node-centric schemes: every positive-weight canonical edge is tested
// against its endpoints' thresholds.
func emitByThreshold(ctx context.Context, g *graph.CSR, keep func(w, thU, thV float64) bool, th []float64) ([]model.IDPair, error) {
	var out []model.IDPair
	err := g.CanonicalCtx(ctx, func(u, v int32, p int64) {
		w := g.Weights[p]
		if w <= 0 {
			return
		}
		if keep(w, th[u], th[v]) {
			out = append(out, model.IDPair{U: u, V: v})
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CNPStream is CNP over the CSR graph: each node marks its top-k
// adjacent edges by weight (stable on the adjacency order, like the
// edge-list CNP), and an edge is retained if the marks of its endpoints
// satisfy the mode.
func CNPStream(ctx context.Context, g *graph.CSR, k int, mode Mode) ([]model.IDPair, error) {
	if g.NumEdges() == 0 {
		return nil, ctx.Err()
	}
	if k <= 0 {
		k = cnpBudget(g.BlockCounts)
		if k == 0 {
			return nil, ctx.Err()
		}
	}
	mark := make([]bool, len(g.Neighbors))
	var order []int64
	for n := 0; n < g.NumProfiles; n++ {
		if n%streamCancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		lo, hi := g.Offsets[n], g.Offsets[n+1]
		if lo == hi {
			continue
		}
		order = order[:0]
		for p := lo; p < hi; p++ {
			order = append(order, p)
		}
		slices.SortStableFunc(order, func(a, b int64) int {
			switch wa, wb := g.Weights[a], g.Weights[b]; {
			case wa > wb:
				return -1
			case wa < wb:
				return 1
			default:
				return 0
			}
		})
		limit := k
		if limit > len(order) {
			limit = len(order)
		}
		for _, p := range order[:limit] {
			mark[p] = true
		}
	}

	var out []model.IDPair
	err := g.CanonicalMirrorCtx(ctx, func(u, v int32, p, mp int64) {
		if g.Weights[p] <= 0 {
			return
		}
		keep := mark[p] || mark[mp]
		if mode == Reciprocal {
			keep = mark[p] && mark[mp]
		}
		if keep {
			out = append(out, model.IDPair{U: u, V: v})
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
