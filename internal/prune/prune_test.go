package prune

import (
	"fmt"
	"testing"

	"blast/internal/blocking"
	"blast/internal/datasets"
	"blast/internal/graph"
	"blast/internal/model"
	"blast/internal/stats"
	"blast/internal/weights"
)

// figure1Graph returns the paper's blocking graph with CBS weights
// (Figure 1c): p1p2=1, p1p3=4, p1p4=3, p2p3=4, p2p4=4, p3p4=1.
func figure1Graph() *graph.Graph {
	g := graph.Build(blocking.TokenBlocking(datasets.PaperExample()))
	weights.Scheme{Kind: weights.CBS}.Apply(g)
	return g
}

func retainedPairs(g *graph.Graph, idx []int) map[model.IDPair]bool {
	out := make(map[model.IDPair]bool, len(idx))
	for _, i := range idx {
		out[g.Edges[i].Pair()] = true
	}
	return out
}

// TestWNPFigure1d: traditional WNP with local-average thresholds on the
// Figure 1c graph retains p1-p3, p2-p4 and the two "red" superfluous
// edges p1-p4, p2-p3, and prunes the weight-1 edges (dashed in Fig. 1d).
func TestWNPFigure1d(t *testing.T) {
	g := figure1Graph()
	for _, mode := range []Mode{Redefined, Reciprocal} {
		got := retainedPairs(g, WNP(g, mode))
		want := []model.IDPair{
			model.MakePair(0, 2), model.MakePair(1, 3),
			model.MakePair(0, 3), model.MakePair(1, 2),
		}
		if len(got) != len(want) {
			t.Fatalf("%v retained %d edges, want %d: %v", mode, len(got), len(want), got)
		}
		for _, p := range want {
			if !got[p] {
				t.Errorf("%v should retain %v", mode, p)
			}
		}
		if got[model.MakePair(0, 1)] || got[model.MakePair(2, 3)] {
			t.Errorf("%v should prune the weight-1 edges", mode)
		}
	}
}

func TestWEPGlobalAverage(t *testing.T) {
	g := figure1Graph()
	// Mean weight = 17/6 = 2.83: keeps the 3s and 4s.
	got := retainedPairs(g, WEP(g))
	if len(got) != 4 {
		t.Fatalf("WEP retained %d, want 4", len(got))
	}
	if got[model.MakePair(0, 1)] || got[model.MakePair(2, 3)] {
		t.Error("WEP kept a below-average edge")
	}
}

func TestCEPTopK(t *testing.T) {
	g := figure1Graph()
	got := CEP(g, 3)
	if len(got) != 3 {
		t.Fatalf("CEP(3) retained %d", len(got))
	}
	for _, i := range got {
		if g.Edges[i].Weight < 3 {
			t.Errorf("CEP kept weight %v while heavier edges exist", g.Edges[i].Weight)
		}
	}
	// k larger than edges: everything with positive weight.
	if got := CEP(g, 100); len(got) != 6 {
		t.Errorf("CEP(100) = %d, want all 6", len(got))
	}
	// Default k = sum|B_i|/2 = 26/2 = 13 > 6: all edges.
	if got := CEP(g, 0); len(got) != 6 {
		t.Errorf("CEP(default) = %d, want 6", len(got))
	}
}

func TestCNPModes(t *testing.T) {
	g := figure1Graph()
	// k=1: each node marks its single best edge (stable order for ties).
	red := retainedPairs(g, CNP(g, 1, Redefined))
	rec := retainedPairs(g, CNP(g, 1, Reciprocal))
	// Reciprocal must be a subset of redefined.
	for p := range rec {
		if !red[p] {
			t.Errorf("reciprocal edge %v missing from redefined", p)
		}
	}
	// p1's best is p1-p3 (4) and p3's best (stable) is p1-p3 too: it is
	// mutual and must survive reciprocal pruning.
	if !rec[model.MakePair(0, 2)] {
		t.Error("mutual best edge p1-p3 should survive reciprocal CNP")
	}
	// The weight-1 edges are nobody's top-1.
	if red[model.MakePair(0, 1)] || red[model.MakePair(2, 3)] {
		t.Error("weight-1 edge in a top-1 list")
	}
}

func TestCNPDefaultK(t *testing.T) {
	g := figure1Graph()
	// Default k = round(26/4) = 7 >= degree: keeps all positive edges.
	if got := CNP(g, 0, Redefined); len(got) != 6 {
		t.Errorf("CNP(default) = %d, want 6", len(got))
	}
}

// TestBlastWNPFigure1: theta_i = M_i/2 = 2 for every node; the unique
// edge threshold is 2, retaining the four heavy edges.
func TestBlastWNPFigure1(t *testing.T) {
	g := figure1Graph()
	got := retainedPairs(g, BlastWNP(g, 2, 2))
	if len(got) != 4 {
		t.Fatalf("BlastWNP retained %d, want 4", len(got))
	}
	if got[model.MakePair(0, 1)] || got[model.MakePair(2, 3)] {
		t.Error("BlastWNP kept a weight-1 edge")
	}
}

// TestBlastWNPWithBlastWeighting: with chi2*h weights the Figure 1
// example leaves only the true matches with positive weight; pruning
// yields exactly PC=1, PQ=1.
func TestBlastWNPWithBlastWeighting(t *testing.T) {
	g := graph.Build(blocking.TokenBlocking(datasets.PaperExample()))
	weights.Blast().Apply(g)
	got := retainedPairs(g, BlastWNP(g, 2, 2))
	if len(got) != 2 {
		t.Fatalf("retained %d, want exactly the 2 matches: %v", len(got), got)
	}
	if !got[model.MakePair(0, 2)] || !got[model.MakePair(1, 3)] {
		t.Errorf("retained = %v, want p1-p3 and p2-p4", got)
	}
}

// TestBlastWNPThresholdIndependence reproduces the Figure 6 argument: the
// local-average threshold changes when low-weight neighbors are added,
// while BLAST's max-based threshold does not.
func TestBlastWNPThresholdIndependence(t *testing.T) {
	// Node 0 with edges of weight 4 (to 1), 2 (to 2), 1 (to 3).
	base := &blocking.Collection{Kind: model.Dirty, NumProfiles: 8}
	addPairBlocks := func(c *blocking.Collection, u, v int32, n int, key string) {
		for i := 0; i < n; i++ {
			c.Blocks = append(c.Blocks, blocking.Block{
				Key: key + string(rune('a'+i)), P1: []int32{u, v}, Entropy: 1,
			})
		}
	}
	addPairBlocks(base, 0, 1, 4, "x")
	addPairBlocks(base, 0, 2, 2, "y")
	addPairBlocks(base, 0, 3, 1, "z")

	decide := func(c *blocking.Collection, prune func(*graph.Graph) []int) map[model.IDPair]bool {
		g := graph.Build(c)
		weights.Scheme{Kind: weights.CBS}.Apply(g)
		return retainedPairs(g, prune(g))
	}

	// Reciprocal mode isolates node 0's threshold: the other endpoints are
	// leaves whose only edge always passes their own threshold.
	blastBefore := decide(base, func(g *graph.Graph) []int { return BlastWNP(g, 2, 2) })
	wnpBefore := decide(base, func(g *graph.Graph) []int { return WNP(g, Reciprocal) })

	// Add two more weight-1 neighbors (the p5, p6 of Figure 6a).
	extended := base.Clone()
	addPairBlocks(extended, 0, 4, 1, "w")
	addPairBlocks(extended, 0, 5, 1, "v")

	blastAfter := decide(extended, func(g *graph.Graph) []int { return BlastWNP(g, 2, 2) })
	wnpAfter := decide(extended, func(g *graph.Graph) []int { return WNP(g, Reciprocal) })

	target := model.MakePair(0, 2) // the weight-2 edge
	if blastBefore[target] != blastAfter[target] {
		t.Errorf("BLAST decision on (0,2) changed with unrelated neighbors: %v -> %v",
			blastBefore[target], blastAfter[target])
	}
	// The traditional average threshold is sensitive: before avg=7/3=2.33
	// (edge dropped), after avg=9/5=1.8 (edge kept).
	if wnpBefore[target] == wnpAfter[target] {
		t.Errorf("expected traditional WNP to flip on (0,2); before=%v after=%v",
			wnpBefore[target], wnpAfter[target])
	}
}

func TestBlastWNPDefaults(t *testing.T) {
	g := figure1Graph()
	a := BlastWNP(g, 0, 0) // defaults c=2, d=2
	b := BlastWNP(g, 2, 2)
	if len(a) != len(b) {
		t.Errorf("default params differ: %d vs %d", len(a), len(b))
	}
}

func TestBlastWNPHigherCRetainsMore(t *testing.T) {
	g := figure1Graph()
	strict := BlastWNP(g, 1, 2)  // theta_i = M_i
	def := BlastWNP(g, 2, 2)     // theta_i = M_i/2
	loose := BlastWNP(g, 100, 2) // theta_i ~ 0
	if !(len(strict) <= len(def) && len(def) <= len(loose)) {
		t.Errorf("retention not monotone in c: %d, %d, %d", len(strict), len(def), len(loose))
	}
	if len(loose) != 6 {
		t.Errorf("c=100 should keep all positive edges, got %d", len(loose))
	}
}

func TestZeroWeightEdgesNeverRetained(t *testing.T) {
	g := figure1Graph()
	// Zero out two edges.
	for i := range g.Edges {
		e := &g.Edges[i]
		if e.Pair() == model.MakePair(0, 1) || e.Pair() == model.MakePair(2, 3) {
			e.Weight = 0
		}
	}
	checks := map[string][]int{
		"WEP":      WEP(g),
		"CEP":      CEP(g, 100),
		"WNP1":     WNP(g, Redefined),
		"WNP2":     WNP(g, Reciprocal),
		"CNP1":     CNP(g, 10, Redefined),
		"CNP2":     CNP(g, 10, Reciprocal),
		"BlastWNP": BlastWNP(g, 2, 2),
	}
	for name, idx := range checks {
		for _, i := range idx {
			if g.Edges[i].Weight <= 0 {
				t.Errorf("%s retained zero-weight edge %v", name, g.Edges[i].Pair())
			}
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := &graph.Graph{NumProfiles: 3, Degrees: make([]int32, 3), BlockCounts: make([]int32, 3)}
	if WEP(g) != nil || CEP(g, 5) != nil || WNP(g, Redefined) != nil ||
		CNP(g, 2, Reciprocal) != nil || BlastWNP(g, 2, 2) != nil {
		t.Error("empty graph should prune to nothing")
	}
}

func TestReciprocalSubsetOfRedefined(t *testing.T) {
	g := figure1Graph()
	redW := retainedPairs(g, WNP(g, Redefined))
	recW := retainedPairs(g, WNP(g, Reciprocal))
	for p := range recW {
		if !redW[p] {
			t.Errorf("WNP reciprocal edge %v not in redefined set", p)
		}
	}
}

// TestWNPRetainsLocalMaximum: in redefined WNP every node with edges
// keeps at least its maximum-weight edge (it is >= the node average).
func TestWNPRetainsLocalMaximum(t *testing.T) {
	g := figure1Graph()
	kept := retainedPairs(g, WNP(g, Redefined))
	adj := g.Adjacency()
	for node, edges := range adj {
		if len(edges) == 0 {
			continue
		}
		best := edges[0]
		for _, ei := range edges[1:] {
			if g.Edges[ei].Weight > g.Edges[best].Weight {
				best = ei
			}
		}
		if !kept[g.Edges[best].Pair()] {
			t.Errorf("node %d max edge %v pruned by redefined WNP", node, g.Edges[best].Pair())
		}
	}
}

func TestGlobalMaximumSurvivesBlastWNP(t *testing.T) {
	g := figure1Graph()
	kept := retainedPairs(g, BlastWNP(g, 2, 2))
	var best *graph.Edge
	for i := range g.Edges {
		if best == nil || g.Edges[i].Weight > best.Weight {
			best = &g.Edges[i]
		}
	}
	if !kept[best.Pair()] {
		t.Error("global maximum edge pruned")
	}
}

func TestModeString(t *testing.T) {
	if Redefined.String() != "redefined" || Reciprocal.String() != "reciprocal" {
		t.Error("Mode.String mismatch")
	}
}

// randomGraph builds a random weighted blocking graph for property tests.
func randomGraph(seed uint64, nodes, blocks int) *graph.Graph {
	rng := stats.NewRNG(seed)
	c := &blocking.Collection{Kind: model.Dirty, NumProfiles: nodes}
	for b := 0; b < blocks; b++ {
		size := 2 + rng.Intn(4)
		seen := make(map[int32]bool)
		var members []int32
		for len(members) < size {
			id := int32(rng.Intn(nodes))
			if !seen[id] {
				seen[id] = true
				members = append(members, id)
			}
		}
		c.Blocks = append(c.Blocks, blocking.Block{
			Key: fmt.Sprintf("b%04d", b), P1: members, Entropy: 1,
		})
	}
	g := graph.Build(c)
	weights.Scheme{Kind: weights.CBS}.Apply(g)
	return g
}

// TestPruningInvariantsRandomGraphs: on arbitrary graphs, (1) reciprocal
// node-centric results are subsets of redefined ones, (2) retained
// indexes are sorted and valid, (3) CEP(k) retains at most k edges,
// (4) WNP redefined keeps every node's maximum edge.
func TestPruningInvariantsRandomGraphs(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		g := randomGraph(seed, 12+int(seed)%20, 30+int(seed*3)%40)
		if g.NumEdges() == 0 {
			continue
		}
		checkSorted := func(name string, idx []int) {
			for i := range idx {
				if idx[i] < 0 || idx[i] >= g.NumEdges() {
					t.Fatalf("seed %d %s: index %d out of range", seed, name, idx[i])
				}
				if i > 0 && idx[i] <= idx[i-1] {
					t.Fatalf("seed %d %s: indexes not strictly sorted", seed, name)
				}
			}
		}
		wnpR := WNP(g, Redefined)
		wnpC := WNP(g, Reciprocal)
		cnpR := CNP(g, 3, Redefined)
		cnpC := CNP(g, 3, Reciprocal)
		wep := WEP(g)
		cep := CEP(g, 5)
		bl := BlastWNP(g, 2, 2)
		for name, idx := range map[string][]int{
			"wnp1": wnpR, "wnp2": wnpC, "cnp1": cnpR, "cnp2": cnpC,
			"wep": wep, "cep": cep, "blast": bl,
		} {
			checkSorted(name, idx)
		}
		inSet := func(idx []int) map[int]bool {
			m := make(map[int]bool, len(idx))
			for _, i := range idx {
				m[i] = true
			}
			return m
		}
		redW := inSet(wnpR)
		for _, i := range wnpC {
			if !redW[i] {
				t.Fatalf("seed %d: wnp2 edge %d not in wnp1", seed, i)
			}
		}
		redC := inSet(cnpR)
		for _, i := range cnpC {
			if !redC[i] {
				t.Fatalf("seed %d: cnp2 edge %d not in cnp1", seed, i)
			}
		}
		if len(cep) > 5 {
			t.Fatalf("seed %d: CEP(5) kept %d", seed, len(cep))
		}
		// Redefined WNP keeps every node's max-weight edge.
		kept := inSet(wnpR)
		adj := g.Adjacency()
		for node, edges := range adj {
			if len(edges) == 0 {
				continue
			}
			best := int(edges[0])
			for _, ei := range edges[1:] {
				if g.Edges[ei].Weight > g.Edges[best].Weight {
					best = int(ei)
				}
			}
			if g.Edges[best].Weight > 0 && !kept[best] {
				t.Fatalf("seed %d: node %d max edge pruned by wnp1", seed, node)
			}
		}
	}
}

// TestBlastWNPSubsetOfLooserD: for fixed c, growing d loosens the
// combined threshold, so retained sets grow monotonically.
func TestBlastWNPSubsetOfLooserD(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		g := randomGraph(seed, 15, 40)
		tight := BlastWNP(g, 2, 1)
		def := BlastWNP(g, 2, 2)
		loose := BlastWNP(g, 2, 4)
		in := func(idx []int) map[int]bool {
			m := make(map[int]bool)
			for _, i := range idx {
				m[i] = true
			}
			return m
		}
		defSet, looseSet := in(def), in(loose)
		for _, i := range tight {
			if !defSet[i] {
				t.Fatalf("seed %d: d=1 edge missing at d=2", seed)
			}
		}
		for _, i := range def {
			if !looseSet[i] {
				t.Fatalf("seed %d: d=2 edge missing at d=4", seed)
			}
		}
	}
}
