// Parallel execution substrate of the streaming pruning schemes.
//
// Every streaming scheme decomposes into passes over the CSR that are
// node-local (per-node thresholds, per-node top-k marks) or that emit
// canonical edges grouped by their smaller endpoint (retention). Both
// shapes parallelize over node ranges — but determinism, not speed, is
// the contract here: the retained pairs must be byte-identical to the
// serial scheme for every worker count and GOMAXPROCS. Three rules
// enforce it, designed in rather than bolted on (the PR 4 entropy
// ordering bug is the precedent for what happens otherwise):
//
//  1. Chunk boundaries are a pure function of (NumProfiles, chunkNodes).
//     They never depend on the worker count, the weight distribution or
//     load balancing, so every execution — serial included — reduces
//     over exactly the same partition.
//  2. Partial floating-point sums are produced per chunk and combined
//     in ascending chunk order. Workers race only for *which* chunk
//     they compute, never for the order results are folded.
//  3. Integer accumulators (histogram counts, tie counts) commute and
//     may be merged in any worker order; min/max merges likewise.
//
// Output buffers are per-chunk and stitched in chunk order, which is
// canonical (u, v) order because chunks partition the node space in
// ascending ranges.
package prune

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"blast/internal/graph"
	"blast/internal/model"
)

const (
	// chunkNodes is the fixed node width of a pruning chunk. It is part
	// of the determinism contract: chunk boundaries derive only from
	// NumProfiles and this constant, so the chunked float reductions are
	// identical for every worker count.
	chunkNodes = 2048
	// streamCancelCheckEdges is the edge granularity at which every
	// pruning pass polls for cancellation — including *inside* a single
	// adjacency run, so one hub node with a multi-million-edge run
	// cannot delay cancellation arbitrarily.
	streamCancelCheckEdges = 8192
)

// numChunks returns the number of fixed node chunks of a graph.
func numChunks(nodes int) int {
	if nodes <= 0 {
		return 0
	}
	return (nodes + chunkNodes - 1) / chunkNodes
}

// chunkBounds returns the half-open node range [lo, hi) of a chunk.
func chunkBounds(chunk, nodes int) (lo, hi int) {
	lo = chunk * chunkNodes
	hi = lo + chunkNodes
	if hi > nodes {
		hi = nodes
	}
	return lo, hi
}

// resolvePruneWorkers maps the Workers contract onto a concrete count:
// 0 (or negative) means one worker per CPU.
func resolvePruneWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// pruneWorker is the per-goroutine state of a chunked pruning pass: the
// worker's stable id (for passes accumulating into per-worker state,
// like the CEP selection histograms), the cancellation budget, and
// reusable scratch. It is never shared between goroutines.
type pruneWorker struct {
	ctx    context.Context
	id     int
	budget int
	// order is the reusable per-node sort scratch of the CNP mark pass.
	order []int64
}

// tick spends n edges of the cancellation budget and polls ctx when the
// budget is exhausted. Passes call it between edge segments, so polling
// never perturbs the arithmetic order of a reduction.
func (w *pruneWorker) tick(n int) error {
	w.budget -= n
	if w.budget <= 0 {
		w.budget = streamCancelCheckEdges
		return w.ctx.Err()
	}
	return nil
}

// pruneWorkerCount resolves how many workers runChunks will actually
// use for a pass over `chunks` chunks.
func pruneWorkerCount(workers, chunks int) int {
	workers = resolvePruneWorkers(workers)
	if workers > chunks {
		workers = chunks
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// runChunks executes fn(worker, chunk) for every chunk using at most
// `workers` goroutines (<= 0 selects GOMAXPROCS). Which worker computes
// which chunk is racy by design; callers must write results into
// per-chunk (or per-node or per-worker) slots so the output is
// independent of the assignment. Returns the first error observed
// (cancellation is the only error source; every worker returns the same
// ctx.Err()).
func runChunks(ctx context.Context, workers, chunks int, fn func(w *pruneWorker, chunk int) error) error {
	// Poll before any work: graphs smaller than one tick budget would
	// otherwise never observe an already-cancelled context, and every
	// pass must fail fast on one (the contract the serial schemes always
	// honored by polling at loop entry).
	if err := ctx.Err(); err != nil {
		return err
	}
	if chunks == 0 {
		return nil
	}
	workers = pruneWorkerCount(workers, chunks)
	if workers <= 1 {
		w := &pruneWorker{ctx: ctx, budget: streamCancelCheckEdges}
		for c := 0; c < chunks; c++ {
			if err := fn(w, c); err != nil {
				return err
			}
		}
		return nil
	}
	var next atomic.Int64
	var failed atomic.Bool
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &pruneWorker{ctx: ctx, id: i, budget: streamCancelCheckEdges}
			for !failed.Load() {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				if err := fn(w, c); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// forChunkCanonical invokes fn for every canonical (u < v) entry whose
// smaller endpoint lies in the chunk, in canonical order, polling ctx at
// edge-segment granularity even inside a single long run. Runs are read
// through the CSR's run accessor — the one seam both the resident and
// the spilled (paged) backings serve byte-identical data through — and
// each entry's weight rides along so passes never index a flat weight
// array that may not be resident.
func forChunkCanonical(g *graph.CSR, w *pruneWorker, chunk int, fn func(u, v int32, p int64, wt float64)) error {
	lo, hi := chunkBounds(chunk, g.NumProfiles)
	for u := lo; u < hi; u++ {
		base, end := g.Offsets[u], g.Offsets[u+1]
		if base == end {
			continue
		}
		nbr, wts := g.Run(u)
		for p := base; p < end; {
			seg := end - p
			if seg > streamCancelCheckEdges {
				seg = streamCancelCheckEdges
			}
			for stop := p + seg; p < stop; p++ {
				if v := nbr[p-base]; int(v) > u {
					fn(int32(u), v, p, wts[p-base])
				}
			}
			if err := w.tick(int(seg)); err != nil {
				return err
			}
		}
	}
	return nil
}

// emitChunked runs a chunked retention pass: keep decides each positive-
// weight canonical edge, per-chunk buffers collect the retained pairs,
// and the buffers are stitched in chunk order (= canonical order).
func emitChunked(ctx context.Context, g *graph.CSR, workers int, keep func(u, v int32, p int64, wt float64) bool) ([]model.IDPair, error) {
	nch := numChunks(g.NumProfiles)
	bufs := make([][]model.IDPair, nch)
	err := runChunks(ctx, workers, nch, func(w *pruneWorker, chunk int) error {
		var out []model.IDPair
		err := forChunkCanonical(g, w, chunk, func(u, v int32, p int64, wt float64) {
			if wt > 0 && keep(u, v, p, wt) {
				out = append(out, model.IDPair{U: u, V: v})
			}
		})
		bufs[chunk] = out
		return err
	})
	if err != nil {
		return nil, err
	}
	return stitchPairs(bufs), nil
}

// stitchPairs concatenates per-chunk pair buffers in chunk order into an
// exactly sized slice (nil when nothing was retained, matching the
// serial schemes).
func stitchPairs(bufs [][]model.IDPair) []model.IDPair {
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	if total == 0 {
		return nil
	}
	out := make([]model.IDPair, 0, total)
	for _, b := range bufs {
		out = append(out, b...)
	}
	return out
}

// chunkPartialSums computes, per chunk, the sum of the canonical edge
// weights owned by the chunk plus the number of canonical edges it
// holds. The chunk sum is itself associated per row: each smaller-
// endpoint row is summed left to right into its own partial, and the
// row partials fold in ascending row order. Combined in chunk order by
// combinePartials, the result is THE canonical edge-weight sum of the
// graph — the edge-list WEP computes bit-identical partials from its
// sorted edge slice (see canonicalWeightSum in prune.go), and a
// partitioned server refolds the identical total from exchanged
// per-row sums (see RowWeightSums).
func chunkPartialSums(ctx context.Context, g *graph.CSR, workers int) (sums []float64, counts []int64, err error) {
	nch := numChunks(g.NumProfiles)
	sums = make([]float64, nch)
	counts = make([]int64, nch)
	err = runChunks(ctx, workers, nch, func(w *pruneWorker, chunk int) error {
		s, n := 0.0, int64(0)
		rowSum, row := 0.0, int32(-1)
		err := forChunkCanonical(g, w, chunk, func(u, _ int32, _ int64, wt float64) {
			if u != row {
				if row >= 0 {
					s += rowSum
				}
				rowSum, row = 0, u
			}
			rowSum += wt
			n++
		})
		if row >= 0 {
			s += rowSum
		}
		sums[chunk], counts[chunk] = s, n
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	return sums, counts, nil
}

// combinePartials folds per-chunk partial sums in ascending chunk order,
// skipping chunks that hold no edges — the fixed reduction shape shared
// with the edge-list WEP, whose edge iteration never visits empty
// chunks.
func combinePartials(sums []float64, counts []int64) float64 {
	total := 0.0
	for i, s := range sums {
		if counts[i] > 0 {
			total += s
		}
	}
	return total
}
