package prune

// Tests of the parallel, scratch-free pruning passes: the worker-count
// determinism contract (byte-identical output for every Workers value),
// the histogram-cut selection against the sort it replaced, the CEP
// tie-at-the-cut boundaries, and the edge-granular cancellation
// contract (polls proportional to edges, not nodes, even inside one
// adjacency run).

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"testing"

	"blast/internal/blocking"
	"blast/internal/graph"
	"blast/internal/model"
	"blast/internal/stats"
	"blast/internal/weights"
)

// csrFromEdges builds a CSR over n profiles from an explicit canonical
// edge list with controlled weights (both entries of every edge carry
// the weight), plus an equivalent edge-list graph — the two inputs the
// equivalence assertions need.
func csrFromEdges(n int, edges []graph.Edge) (*graph.CSR, *graph.Graph) {
	adj := make([][]graph.Edge, n)
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], e)
		adj[e.V] = append(adj[e.V], graph.Edge{U: e.V, V: e.U, Weight: e.Weight})
	}
	csr := &graph.CSR{
		NumProfiles: n,
		Offsets:     make([]int64, n+1),
		BlockCounts: make([]int32, n),
	}
	for u := 0; u < n; u++ {
		sort.Slice(adj[u], func(i, j int) bool { return adj[u][i].V < adj[u][j].V })
		for _, e := range adj[u] {
			csr.Neighbors = append(csr.Neighbors, e.V)
			csr.Weights = append(csr.Weights, e.Weight)
		}
		csr.Offsets[u+1] = int64(len(csr.Neighbors))
	}
	g := &graph.Graph{
		NumProfiles: n,
		Edges:       append([]graph.Edge(nil), edges...),
		BlockCounts: make([]int32, n),
	}
	sort.Slice(g.Edges, func(i, j int) bool {
		return g.Edges[i].U < g.Edges[j].U ||
			(g.Edges[i].U == g.Edges[j].U && g.Edges[i].V < g.Edges[j].V)
	})
	return csr, g
}

// pruneWorkersAxis is the Workers matrix of the determinism contract:
// automatic (0 = GOMAXPROCS), serial, and several explicit counts
// including ones exceeding the chunk count of small graphs.
var pruneWorkersAxis = []int{0, 1, 2, 3, 4, 7}

// runAllSchemes executes every streaming scheme at one worker count.
func runAllSchemes(t *testing.T, ctx context.Context, csr *graph.CSR, workers int) map[string][]model.IDPair {
	t.Helper()
	must := muster(t)
	out := map[string][]model.IDPair{
		"wep":     must(WEPStream(ctx, csr, workers)),
		"cep":     must(CEPStream(ctx, csr, 0, workers)),
		"cep5":    must(CEPStream(ctx, csr, 5, workers)),
		"wnp1":    must(WNPStream(ctx, csr, Redefined, workers)),
		"wnp2":    must(WNPStream(ctx, csr, Reciprocal, workers)),
		"cnp1":    must(CNPStream(ctx, csr, 0, Redefined, workers)),
		"cnp2":    must(CNPStream(ctx, csr, 0, Reciprocal, workers)),
		"blast":   must(BlastWNPStream(ctx, csr, 2, 2, workers)),
		"blast41": must(BlastWNPStream(ctx, csr, 4, 1, workers)),
	}
	return out
}

// TestPruneParallelMatchesSerial is the determinism matrix of the
// tentpole: for every scheme and worker count, the parallel pruning
// output must be byte-identical to the serial streaming scheme, and the
// exported per-node thresholds must match entry for entry.
func TestPruneParallelMatchesSerial(t *testing.T) {
	ctx := context.Background()
	for seed := uint64(1); seed <= 6; seed++ {
		rng := stats.NewRNG(seed * 104729)
		for _, kind := range []model.Kind{model.Dirty, model.CleanClean} {
			c := blocking.RandomCollection(rng, kind, 40+rng.Intn(60), 30+rng.Intn(40))
			for _, s := range []weights.Scheme{
				{Kind: weights.CBS},
				{Kind: weights.ChiSquared, Entropy: true},
			} {
				csr := graph.BuildCSR(c)
				s.ApplyCSR(csr)
				serial := runAllSchemes(t, ctx, csr, 1)
				serialMean, _ := MeanThresholds(ctx, csr, 1)
				serialBlast, _ := BlastThresholds(ctx, csr, 2, 1)
				for _, workers := range pruneWorkersAxis[1:] {
					got := runAllSchemes(t, ctx, csr, workers)
					for name, want := range serial {
						label := fmt.Sprintf("seed=%d kind=%v %s %s workers=%d", seed, kind, s.Name(), name, workers)
						comparePairs(t, label, want, got[name])
					}
					gotMean, _ := MeanThresholds(ctx, csr, workers)
					gotBlast, _ := BlastThresholds(ctx, csr, 2, workers)
					for i := range serialMean {
						if serialMean[i] != gotMean[i] || serialBlast[i] != gotBlast[i] {
							t.Fatalf("workers=%d: threshold %d drifted: mean %v vs %v, blast %v vs %v",
								workers, i, gotMean[i], serialMean[i], gotBlast[i], serialBlast[i])
						}
					}
				}
				// Workers=0 (GOMAXPROCS) is part of the contract too.
				got := runAllSchemes(t, ctx, csr, 0)
				for name, want := range serial {
					comparePairs(t, fmt.Sprintf("seed=%d %s workers=0", seed, name), want, got[name])
				}
			}
		}
	}
}

// TestSelectCutMatchesSort pins the histogram-cut selection against the
// flat sort it replaced, on weight distributions with heavy ties,
// negatives, zeros and denormal-scale values.
func TestSelectCutMatchesSort(t *testing.T) {
	ctx := context.Background()
	rng := stats.NewRNG(271828)
	pools := [][]float64{
		{0, 0.25, 0.25, 0.25, 1, 2, 2, 2, 2, 3},
		{0, 0, 0, 0, 0.5},
		{-1, -0.5, 0, 0.5, 1},
		{1e-310, 2e-310, 3e-310, 1e-300, 0.1}, // denormal-scale ties
		{math.Pi, math.E, math.Sqrt2, 0.7071067811865476},
	}
	for pi, pool := range pools {
		for trial := 0; trial < 4; trial++ {
			n := 30 + rng.Intn(40)
			var edges []graph.Edge
			for u := 0; u < n; u++ {
				for v := u + 1; v < n; v++ {
					if rng.Intn(3) == 0 {
						edges = append(edges, graph.Edge{U: int32(u), V: int32(v), Weight: pool[rng.Intn(len(pool))]})
					}
				}
			}
			if len(edges) == 0 {
				continue
			}
			csr, _ := csrFromEdges(n, edges)
			ws := make([]float64, 0, len(edges))
			for _, e := range edges {
				ws = append(ws, e.Weight)
			}
			sort.Float64s(ws)
			for _, k := range []int{1, 2, len(edges) / 2, len(edges) - 1, len(edges)} {
				if k < 1 {
					continue
				}
				wantCut := ws[len(ws)-k]
				wantGreater := len(ws) - sort.Search(len(ws), func(i int) bool { return ws[i] > wantCut })
				wantTies := 0
				for _, w := range ws {
					if w == wantCut {
						wantTies++
					}
				}
				for _, workers := range []int{1, 3} {
					cut, greater, ties, err := selectCut(ctx, csr, workers, k)
					if err != nil {
						t.Fatal(err)
					}
					if cut != wantCut || greater != wantGreater || ties != wantTies {
						t.Fatalf("pool %d k=%d workers=%d: selectCut = (%v, %d, %d), want (%v, %d, %d)",
							pi, k, workers, cut, greater, ties, wantCut, wantGreater, wantTies)
					}
				}
			}
		}
	}
}

// TestCEPTieBoundaries is the tie-at-the-cut regression suite: the rem
// budget accounting must stay byte-identical across the edge-list CEP,
// the serial stream and every parallel worker count when many edges tie
// exactly at the cut, when the ties sit at weight 0, and when k exceeds
// the positive-weight edge count.
func TestCEPTieBoundaries(t *testing.T) {
	ctx := context.Background()
	must := muster(t)
	mk := func(ws ...float64) (*graph.CSR, *graph.Graph) {
		// A path graph 0-1, 1-2, ... keeps the canonical edge order
		// aligned with the weight list.
		edges := make([]graph.Edge, len(ws))
		for i, w := range ws {
			edges[i] = graph.Edge{U: int32(i), V: int32(i + 1), Weight: w}
		}
		return csrFromEdges(len(ws)+1, edges)
	}
	cases := []struct {
		name string
		ws   []float64
		ks   []int
	}{
		{"all-tie", []float64{1, 1, 1, 1, 1, 1}, []int{1, 3, 5, 6}},
		{"tie-at-cut", []float64{3, 1, 1, 2, 1, 3, 1, 2}, []int{2, 3, 4, 5, 7}},
		{"ties-at-zero", []float64{0, 0, 2, 0, 1, 0}, []int{1, 2, 3, 4, 6}},
		{"k-exceeds-positive", []float64{0, 0, 1, 0, 2}, []int{3, 4, 5}},
		{"all-zero", []float64{0, 0, 0, 0}, []int{1, 4}},
		{"negative-and-zero", []float64{-1, 0, 2, -1, 0}, []int{1, 2, 4, 5}},
	}
	for _, tc := range cases {
		csr, g := mk(tc.ws...)
		for _, k := range tc.ks {
			want := pairsOf(g, CEP(g, k))
			for _, workers := range []int{1, 2, 4} {
				got := must(CEPStream(ctx, csr, k, workers))
				comparePairs(t, fmt.Sprintf("%s k=%d workers=%d", tc.name, k, workers), want, got)
			}
		}
	}
}

// TestReducersMatchWholeRun pins the segmented (cancellation-polling)
// reducers to their whole-run counterparts bit for bit, on runs longer
// than the poll stride — the arithmetic order must not change.
func TestReducersMatchWholeRun(t *testing.T) {
	rng := stats.NewRNG(17)
	w := &pruneWorker{ctx: context.Background(), budget: streamCancelCheckEdges}
	for _, n := range []int{1, 7, streamCancelCheckEdges, streamCancelCheckEdges + 1, 3*streamCancelCheckEdges + 5} {
		ws := make([]float64, n)
		for i := range ws {
			ws[i] = rng.Float64() * float64(i%13)
		}
		if got, _ := meanReducer(w, ws); got != MeanThresholdOf(ws) {
			t.Fatalf("n=%d: meanReducer = %v, want %v", n, got, MeanThresholdOf(ws))
		}
		for _, c := range []float64{1, 2, 4} {
			red := blastReducer(c)
			if got, _ := red(w, ws); got != BlastThresholdOf(ws, c) {
				t.Fatalf("n=%d c=%v: blastReducer = %v, want %v", n, c, got, BlastThresholdOf(ws, c))
			}
		}
	}
}

// pollCountCtx is a context whose Err() counts how often it is polled
// and, optionally, starts reporting cancellation after a fixed number of
// polls — a deterministic probe of polling granularity that needs no
// timing assumptions. Err is safe for concurrent use.
type pollCountCtx struct {
	context.Context
	polls     atomic.Int64
	failAfter int64 // 0: never fail
}

func (c *pollCountCtx) Err() error {
	n := c.polls.Add(1)
	if c.failAfter > 0 && n > c.failAfter {
		return context.Canceled
	}
	return c.Context.Err()
}

// denseCSR builds the complete graph on n nodes with synthetic weights.
func denseCSR(n int) *graph.CSR {
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: int32(u), V: int32(v), Weight: float64((u*31+v)%17) + 0.5})
		}
	}
	csr, _ := csrFromEdges(n, edges)
	return csr
}

// TestCancellationPollsPerEdge asserts the edge-granular polling
// contract: on a dense graph whose node count fits well under the old
// 1024-node polling stride (which would have polled exactly once), the
// threshold, mark and retention passes must poll in proportion to the
// edges they process.
func TestCancellationPollsPerEdge(t *testing.T) {
	csr := denseCSR(256) // 32640 edges, 65280 entries, one old-style poll
	minPolls := int64(len(csr.Neighbors) / streamCancelCheckEdges / 2)
	if minPolls < 2 {
		t.Fatalf("test graph too small to observe polling: %d entries", len(csr.Neighbors))
	}
	run := func(name string, fn func(ctx context.Context) error) {
		ctx := &pollCountCtx{Context: context.Background()}
		if err := fn(ctx); err != nil {
			t.Fatalf("%s: unexpected error %v", name, err)
		}
		if got := ctx.polls.Load(); got < minPolls {
			t.Errorf("%s: polled ctx %d times, want >= %d (edge-granular polling)", name, got, minPolls)
		}
	}
	run("thresholds", func(ctx context.Context) error {
		_, err := MeanThresholds(ctx, csr, 1)
		return err
	})
	run("cnp", func(ctx context.Context) error {
		_, err := CNPStream(ctx, csr, 3, Redefined, 1)
		return err
	})
	run("cep", func(ctx context.Context) error {
		_, err := CEPStream(ctx, csr, 100, 1)
		return err
	})
	run("wep", func(ctx context.Context) error {
		_, err := WEPStream(ctx, csr, 1)
		return err
	})

	// And the abort side: once the context reports cancellation, every
	// pass must surface it instead of completing.
	for name, fn := range map[string]func(ctx context.Context) error{
		"thresholds": func(ctx context.Context) error { _, err := BlastThresholds(ctx, csr, 2, 1); return err },
		"cnp":        func(ctx context.Context) error { _, err := CNPStream(ctx, csr, 3, Reciprocal, 1); return err },
		"cep":        func(ctx context.Context) error { _, err := CEPStream(ctx, csr, 100, 1); return err },
		"blast":      func(ctx context.Context) error { _, err := BlastWNPStream(ctx, csr, 2, 2, 1); return err },
	} {
		ctx := &pollCountCtx{Context: context.Background(), failAfter: 2}
		if err := fn(ctx); err != context.Canceled {
			t.Errorf("%s: err = %v after forced cancellation, want context.Canceled", name, err)
		}
	}
}

// TestCancellationTinyGraph is the regression test for fail-fast on
// graphs smaller than one poll budget: a pre-cancelled context must
// surface from every scheme even when no tick would ever fire.
func TestCancellationTinyGraph(t *testing.T) {
	csr, _ := csrFromEdges(4, []graph.Edge{
		{U: 0, V: 1, Weight: 2}, {U: 1, V: 2, Weight: 1}, {U: 2, V: 3, Weight: 3},
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, fn := range map[string]func() error{
		"wep":        func() error { _, err := WEPStream(ctx, csr, 1); return err },
		"cep":        func() error { _, err := CEPStream(ctx, csr, 2, 1); return err },
		"wnp1":       func() error { _, err := WNPStream(ctx, csr, Redefined, 1); return err },
		"cnp1":       func() error { _, err := CNPStream(ctx, csr, 1, Redefined, 1); return err },
		"blast":      func() error { _, err := BlastWNPStream(ctx, csr, 2, 2, 1); return err },
		"thresholds": func() error { _, err := MeanThresholds(ctx, csr, 1); return err },
	} {
		if err := fn(); err != context.Canceled {
			t.Errorf("%s: err = %v on a tiny graph with a cancelled ctx, want context.Canceled", name, err)
		}
	}
}

// hubCSR builds a skewed (hub-heavy) graph: node 0 is adjacent to every
// other node — one adjacency run longer than the poll stride — plus a
// ring of light edges among the leaves.
func hubCSR(n int) *graph.CSR {
	edges := make([]graph.Edge, 0, n+n/8)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{U: 0, V: int32(v), Weight: float64(v%11) + 0.25})
	}
	for v := 1; v+8 < n; v += 8 {
		edges = append(edges, graph.Edge{U: int32(v), V: int32(v + 8), Weight: 0.75})
	}
	csr, _ := csrFromEdges(n, edges)
	return csr
}

// TestCancellationHubRace is the -race cancellation test of the
// satellite: concurrent cancellation against every scheme on a
// hub-heavy graph whose hub run exceeds the poll stride. The schemes
// must return ctx.Err() (from whatever pass observes it) without
// panicking, racing or deadlocking; in-run polling is exercised because
// the hub's run alone exceeds streamCancelCheckEdges.
func TestCancellationHubRace(t *testing.T) {
	csr := hubCSR(2*streamCancelCheckEdges + 100)
	schemes := map[string]func(ctx context.Context, workers int) error{
		"wep":   func(ctx context.Context, w int) error { _, err := WEPStream(ctx, csr, w); return err },
		"cep":   func(ctx context.Context, w int) error { _, err := CEPStream(ctx, csr, 1000, w); return err },
		"wnp1":  func(ctx context.Context, w int) error { _, err := WNPStream(ctx, csr, Redefined, w); return err },
		"cnp2":  func(ctx context.Context, w int) error { _, err := CNPStream(ctx, csr, 2, Reciprocal, w); return err },
		"blast": func(ctx context.Context, w int) error { _, err := BlastWNPStream(ctx, csr, 2, 2, w); return err },
	}
	for name, fn := range schemes {
		for _, workers := range []int{1, 4} {
			// Pre-cancelled: must fail fast with no output.
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if err := fn(ctx, workers); err != context.Canceled {
				t.Errorf("%s workers=%d: pre-cancelled err = %v", name, workers, err)
			}
			// Cancelled mid-flight from another goroutine (the -race
			// exercise): the pass must terminate either way, and any
			// error it reports must be the context's.
			ctx2, cancel2 := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() { done <- fn(ctx2, workers) }()
			cancel2()
			if err := <-done; err != nil && err != context.Canceled {
				t.Errorf("%s workers=%d: mid-flight err = %v", name, workers, err)
			}
		}
	}
}

// TestChunkBoundsPure pins the chunk geometry: boundaries cover the node
// space exactly once and depend only on the node count.
func TestChunkBoundsPure(t *testing.T) {
	for _, n := range []int{0, 1, chunkNodes - 1, chunkNodes, chunkNodes + 1, 5*chunkNodes + 13} {
		nch := numChunks(n)
		prev := 0
		for c := 0; c < nch; c++ {
			lo, hi := chunkBounds(c, n)
			if lo != prev || hi <= lo || hi > n {
				t.Fatalf("n=%d chunk %d: bounds [%d, %d) after %d", n, c, lo, hi, prev)
			}
			prev = hi
		}
		if prev != n {
			t.Fatalf("n=%d: chunks cover %d nodes", n, prev)
		}
	}
}

// TestWeightKeyOrder pins the order-preserving key mapping, including
// the zero collapse and NaN floor.
func TestWeightKeyOrder(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -1, -1e-310, 0, 1e-310, 0.5, 1, 2, 1e300, math.Inf(1)}
	for i := 0; i < len(vals); i++ {
		for j := 0; j < len(vals); j++ {
			ki, kj := weightKey(vals[i]), weightKey(vals[j])
			if (vals[i] < vals[j]) != (ki < kj) || (vals[i] == vals[j]) != (ki == kj) {
				t.Fatalf("key order broken for (%v, %v)", vals[i], vals[j])
			}
		}
	}
	if weightKey(math.Copysign(0, -1)) != weightKey(0) {
		t.Error("-0 and +0 must share a key")
	}
	if weightKey(math.NaN()) != 0 {
		t.Error("NaN must map to the smallest key")
	}
	for _, v := range vals {
		if got := keyWeight(weightKey(v)); got != v && !(got == 0 && v == 0) {
			t.Errorf("keyWeight(weightKey(%v)) = %v", v, got)
		}
	}
}
