// Package prune implements the edge-pruning schemes of graph-based
// meta-blocking (Section 2.2 of the paper): the four classic schemes —
// WEP, CEP, WNP and CNP, the node-centric ones in both their redefined
// (retain if either endpoint keeps the edge) and reciprocal (both
// endpoints) variants (Papadakis et al., EDBT'16) — plus BLAST's
// weight-based node pruning with its edge-count-independent threshold
// theta_i = M_i / c and unique per-edge threshold (theta_u + theta_v) / d
// (Section 3.3.2).
//
// Every scheme takes a weighted graph (weights already applied) and
// returns the indexes of the retained edges, sorted ascending. Zero- and
// negative-weight edges are never retained: a zero weight means the
// weighting scheme found no evidence for the pair.
package prune

import (
	"sort"

	"blast/internal/graph"
)

// Mode selects how node-centric schemes resolve the two thresholds an
// edge is subject to (Figure 7 of the paper).
type Mode int

const (
	// Redefined retains an edge that satisfies the criterion of at least
	// one of its endpoints (wnp1/cnp1 in the paper's tables).
	Redefined Mode = iota
	// Reciprocal retains an edge only if it satisfies the criterion of
	// both endpoints (wnp2/cnp2).
	Reciprocal
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Reciprocal {
		return "reciprocal"
	}
	return "redefined"
}

// cepBudget is CEP's default comparison budget: half the total number of
// block memberships (sum |B_i| / 2), as in the meta-blocking literature.
func cepBudget(blockCounts []int32) int {
	total := 0
	for _, c := range blockCounts {
		total += int(c)
	}
	return total / 2
}

// cnpBudget is CNP's default per-node budget: the average number of
// blocks per profile, max(1, round(sum |B_i| / |V|)) over the profiles
// that appear in at least one block. Returns 0 when no profile does.
func cnpBudget(blockCounts []int32) int {
	total := 0
	active := 0
	for _, c := range blockCounts {
		total += int(c)
		if c > 0 {
			active++
		}
	}
	if active == 0 {
		return 0
	}
	k := (total + active/2) / active
	if k < 1 {
		k = 1
	}
	return k
}

// retained builds the sorted result slice from a keep mask.
func retained(keep []bool) []int {
	var out []int
	for i, k := range keep {
		if k {
			out = append(out, i)
		}
	}
	return out
}

// canonicalWeightSum sums the weights of a canonically sorted edge list
// with the fixed row-within-chunk reduction of the streaming schemes:
// one partial per smaller-endpoint row, rows folded in ascending order
// into one partial per node chunk, chunk partials combined in chunk
// order. It is bit-identical to chunkPartialSums+combinePartials over
// the CSR form of the same graph, which is what keeps the edge-list and
// streaming WEP byte-identical at every worker count (the chunk
// boundaries depend only on NumProfiles, never on workers) — and the
// per-row association is what lets partitioned shards exchange row sums
// and refold the identical total.
func canonicalWeightSum(edges []graph.Edge) float64 {
	sum, chunkPartial, rowPartial := 0.0, 0.0, 0.0
	chunk, row := -1, int32(-1)
	for i := range edges {
		u := edges[i].U
		if u != row {
			if row >= 0 {
				chunkPartial += rowPartial
			}
			rowPartial = 0
			if c := int(u) / chunkNodes; c != chunk {
				if chunk >= 0 {
					sum += chunkPartial
				}
				chunkPartial, chunk = 0, c
			}
			row = u
		}
		rowPartial += edges[i].Weight
	}
	if row >= 0 {
		chunkPartial += rowPartial
		sum += chunkPartial
	}
	return sum
}

// WEP (Weight Edge Pruning) discards every edge whose weight is below
// the global threshold Theta = the mean edge weight.
func WEP(g *graph.Graph) []int {
	if len(g.Edges) == 0 {
		return nil
	}
	theta := canonicalWeightSum(g.Edges) / float64(len(g.Edges))
	keep := make([]bool, len(g.Edges))
	for i := range g.Edges {
		w := g.Edges[i].Weight
		keep[i] = w >= theta && w > 0
	}
	return retained(keep)
}

// CEP (Cardinality Edge Pruning) sorts edges by descending weight and
// retains the top k. If k <= 0 it defaults to half the total number of
// block memberships (sum |B_i| / 2), the budget used in the meta-blocking
// literature. Ties at the cut keep the earlier (smaller index) edges for
// determinism.
func CEP(g *graph.Graph, k int) []int {
	if len(g.Edges) == 0 {
		return nil
	}
	if k <= 0 {
		k = cepBudget(g.BlockCounts)
	}
	if k > len(g.Edges) {
		k = len(g.Edges)
	}
	order := make([]int, len(g.Edges))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return g.Edges[order[a]].Weight > g.Edges[order[b]].Weight
	})
	keep := make([]bool, len(g.Edges))
	for _, idx := range order[:k] {
		if g.Edges[idx].Weight > 0 {
			keep[idx] = true
		}
	}
	return retained(keep)
}

// nodeThresholds computes, for every node, a threshold from its adjacent
// edge weights using reduce (e.g. mean or max/c). Nodes without edges get
// threshold 0.
func nodeThresholds(g *graph.Graph, adj [][]int32, reduce func(ws []float64) float64) []float64 {
	th := make([]float64, g.NumProfiles)
	var buf []float64
	for node, edges := range adj {
		if len(edges) == 0 {
			continue
		}
		buf = buf[:0]
		for _, ei := range edges {
			buf = append(buf, g.Edges[ei].Weight)
		}
		th[node] = reduce(buf)
	}
	return th
}

// WNP (Weight Node Pruning) applies a per-node weight threshold — the
// mean weight of the node's adjacent edges, as in the traditional
// meta-blocking of [20] — and resolves the two thresholds of each edge
// according to mode.
func WNP(g *graph.Graph, mode Mode) []int {
	adj := g.Adjacency()
	th := nodeThresholds(g, adj, func(ws []float64) float64 {
		s := 0.0
		for _, w := range ws {
			s += w
		}
		return s / float64(len(ws))
	})
	keep := make([]bool, len(g.Edges))
	for i := range g.Edges {
		e := &g.Edges[i]
		if e.Weight <= 0 {
			continue
		}
		overU := e.Weight >= th[e.U]
		overV := e.Weight >= th[e.V]
		if mode == Redefined {
			keep[i] = overU || overV
		} else {
			keep[i] = overU && overV
		}
	}
	return retained(keep)
}

// CNP (Cardinality Node Pruning) retains, per node, its top-k adjacent
// edges by weight, resolved by mode. If k <= 0 it defaults to the average
// number of blocks per profile, max(1, round(sum |B_i| / |V|)) — the
// node-centric comparison budget of the meta-blocking literature.
func CNP(g *graph.Graph, k int, mode Mode) []int {
	if len(g.Edges) == 0 {
		return nil
	}
	if k <= 0 {
		k = cnpBudget(g.BlockCounts)
		if k == 0 {
			return nil
		}
	}
	adj := g.Adjacency()
	inTop := make([][]bool, 2) // [0] = of U side? we mark per (edge, endpoint)
	inTop[0] = make([]bool, len(g.Edges))
	inTop[1] = make([]bool, len(g.Edges))

	var order []int32
	for node, edges := range adj {
		if len(edges) == 0 {
			continue
		}
		order = append(order[:0], edges...)
		sort.SliceStable(order, func(a, b int) bool {
			return g.Edges[order[a]].Weight > g.Edges[order[b]].Weight
		})
		limit := k
		if limit > len(order) {
			limit = len(order)
		}
		for _, ei := range order[:limit] {
			e := &g.Edges[ei]
			if int(e.U) == node {
				inTop[0][ei] = true
			} else {
				inTop[1][ei] = true
			}
		}
	}

	keep := make([]bool, len(g.Edges))
	for i := range g.Edges {
		if g.Edges[i].Weight <= 0 {
			continue
		}
		if mode == Redefined {
			keep[i] = inTop[0][i] || inTop[1][i]
		} else {
			keep[i] = inTop[0][i] && inTop[1][i]
		}
	}
	return retained(keep)
}

// BlastWNP is the pruning scheme of Section 3.3.2: each node's threshold
// is a fraction of its local maximum edge weight, theta_i = M_i / c,
// making the threshold independent of the node's number of adjacent
// edges; each edge is then retained iff its weight reaches the unique
// combined threshold (theta_u + theta_v) / d. The paper's defaults are
// c = 2 and d = 2 (the mean of the two local thresholds).
func BlastWNP(g *graph.Graph, c, d float64) []int {
	if c <= 0 {
		c = 2
	}
	if d <= 0 {
		d = 2
	}
	adj := g.Adjacency()
	th := nodeThresholds(g, adj, func(ws []float64) float64 {
		m := ws[0]
		for _, w := range ws[1:] {
			if w > m {
				m = w
			}
		}
		return m / c
	})
	keep := make([]bool, len(g.Edges))
	for i := range g.Edges {
		e := &g.Edges[i]
		if e.Weight <= 0 {
			continue
		}
		keep[i] = e.Weight >= (th[e.U]+th[e.V])/d
	}
	return retained(keep)
}
