// Histogram-cut selection for CEP: find the k-th largest edge weight
// (the cut) and the count of edges strictly above it without ever
// materializing the O(|E|) weight array the old CEPStream sorted.
//
// Weights are mapped onto order-preserving 64-bit keys and the cut key
// is located by MSB-first 16-bit histogram passes: a pass counts the
// candidate keys into 2^16 fixed-boundary buckets (tracking per-bucket
// key min/max), the bucket containing the k-th largest key becomes the
// new candidate prefix, and the refinement stops as soon as the cut
// bucket holds a single distinct key — immediately, in the common case
// of massive ties at the cut — or after at most four passes, when the
// full 64 bits are resolved. Scratch is O(2^16) per worker regardless
// of |E|.
//
// Counting passes parallelize over the fixed node chunks; histogram
// counts and key min/max merge commutatively, so the selected cut is
// byte-identical for every worker count (determinism rule 3 of
// parallel.go).
package prune

import (
	"context"
	"math"

	"blast/internal/graph"
)

const (
	selBucketBits = 16
	selBuckets    = 1 << selBucketBits
	selBucketMask = selBuckets - 1
)

// weightKey maps a float64 weight onto a uint64 whose unsigned order
// matches the float order. Both zeros collapse onto +0 so key equality
// matches float equality (the tie rule compares floats); NaNs map to
// the smallest key, mirroring their position under sort.Float64s.
func weightKey(w float64) uint64 {
	if math.IsNaN(w) {
		return 0
	}
	if w == 0 {
		w = 0 // collapse -0 onto +0
	}
	b := math.Float64bits(w)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | 1<<63
}

// keyWeight inverts weightKey for keys produced from non-NaN weights.
func keyWeight(k uint64) float64 {
	if k&(1<<63) != 0 {
		return math.Float64frombits(k &^ (1 << 63))
	}
	return math.Float64frombits(^k)
}

// selHist is one worker's histogram of a counting pass.
type selHist struct {
	counts [selBuckets]int64
	kmin   [selBuckets]uint64
	kmax   [selBuckets]uint64
}

func (h *selHist) reset() {
	for i := range h.counts {
		h.counts[i] = 0
		h.kmin[i] = ^uint64(0)
		h.kmax[i] = 0
	}
}

// CountCutHist runs one counting pass of the histogram selection over
// the graph's canonical entries: every canonical weight key matching the
// candidate prefix (key>>(shift+16) == prefix) is counted into its
// 16-bit bucket, tracking per-bucket key min/max. The returned slices
// are the merged histogram of all workers (length 2^16 each); counts
// and min/max merge commutatively across workers — and across shards of
// a partitioned server, whose owned-rows graphs partition the canonical
// entries, which is why element-wise merging per-shard histograms in
// any order reproduces the whole-graph histogram exactly.
func CountCutHist(ctx context.Context, g *graph.CSR, workers int, prefix uint64, shift uint) (counts []int64, kmin, kmax []uint64, err error) {
	nch := numChunks(g.NumProfiles)
	nw := pruneWorkerCount(workers, nch)
	hists := make([]*selHist, nw)
	for i := range hists {
		hists[i] = &selHist{}
		hists[i].reset()
	}
	// hists[w.id] belongs to its goroutine alone; the merge below is
	// commutative, so the racy chunk assignment cannot influence the
	// outcome.
	err = runChunks(ctx, workers, nch, func(w *pruneWorker, chunk int) error {
		h := hists[w.id]
		return forChunkCanonical(g, w, chunk, func(_, _ int32, _ int64, wt float64) {
			key := weightKey(wt)
			if key>>(shift+selBucketBits) != prefix {
				return
			}
			b := (key >> shift) & selBucketMask
			h.counts[b]++
			if key < h.kmin[b] {
				h.kmin[b] = key
			}
			if key > h.kmax[b] {
				h.kmax[b] = key
			}
		})
	})
	if err != nil {
		return nil, nil, nil, err
	}
	merged := hists[0]
	for _, h := range hists[1:] {
		MergeCutHist(merged.counts[:], merged.kmin[:], merged.kmax[:],
			h.counts[:], h.kmin[:], h.kmax[:])
	}
	return merged.counts[:], merged.kmin[:], merged.kmax[:], nil
}

// MergeCutHist folds one counting histogram into another in place:
// counts add, key minima/maxima tighten. The merge is commutative and
// associative, so any fold order — worker order, shard order — yields
// the identical merged histogram.
func MergeCutHist(counts []int64, kmin, kmax []uint64, ocounts []int64, okmin, okmax []uint64) {
	for b := range counts {
		if ocounts[b] == 0 {
			continue
		}
		counts[b] += ocounts[b]
		if okmin[b] < kmin[b] {
			kmin[b] = okmin[b]
		}
		if okmax[b] > kmax[b] {
			kmax[b] = okmax[b]
		}
	}
}

// NewCutHist returns an empty counting histogram (counts zero, minima
// saturated high, maxima low) ready to be a MergeCutHist accumulator.
func NewCutHist() (counts []int64, kmin, kmax []uint64) {
	h := &selHist{}
	h.reset()
	return h.counts[:], h.kmin[:], h.kmax[:]
}

// CutScan is the refinement state of the histogram selection: it
// consumes one merged counting histogram per Step and narrows the
// candidate prefix until the bucket holding the k-th largest key is a
// single distinct key. It carries no graph state, so a partitioned
// server drives the identical scan from shard-merged histograms: each
// round, every shard counts its owned rows at the scan's Prefix/Shift,
// the histograms merge in shard order, and one Step advances the scan —
// at most four rounds, exactly like the local selectCut.
type CutScan struct {
	rank    int64  // rank of the cut within the candidate set, from the top
	above   int64  // resolved count of keys strictly above the candidates
	prefix  uint64 // candidates satisfy key>>(shift+16) == prefix
	shift   uint
	done    bool
	cut     float64
	greater int
	ties    int
}

// NewCutScan starts a scan for the k-th largest canonical weight
// (callers guarantee 1 <= k <= the number of canonical edges).
func NewCutScan(k int) *CutScan {
	return &CutScan{rank: int64(k), shift: 48}
}

// Shift returns the bucket shift of the next counting pass.
func (cs *CutScan) Shift() uint { return cs.shift }

// Prefix returns the candidate prefix of the next counting pass.
func (cs *CutScan) Prefix() uint64 { return cs.prefix }

// Step consumes the merged histogram of one counting pass at the scan's
// current Prefix/Shift and either resolves the cut (returning true —
// read it with Cut) or narrows the prefix for the next pass.
func (cs *CutScan) Step(counts []int64, kmin, kmax []uint64) bool {
	// Find the bucket holding the rank-th largest candidate key.
	cum := int64(0)
	b := selBuckets - 1
	for ; b > 0; b-- {
		if c := counts[b]; c > 0 {
			cum += c
			if cum >= cs.rank {
				break
			}
		}
	}
	if b == 0 {
		cum += counts[0]
	}
	cs.above += cum - counts[b]
	cs.rank -= cum - counts[b]
	if kmin[b] == kmax[b] || cs.shift == 0 {
		// Every remaining candidate in the cut bucket carries the same
		// key (always true at shift 0, where a bucket is one exact
		// key): it is the cut, nothing inside it ties above, and the
		// bucket's population is the global tie count.
		cs.done = true
		cs.cut = keyWeight(kmin[b])
		cs.greater = int(cs.above)
		cs.ties = int(counts[b])
		return true
	}
	cs.prefix = cs.prefix<<selBucketBits | uint64(b)
	cs.shift -= selBucketBits
	return false
}

// Cut returns the resolved cut weight, the count of canonical edges
// strictly above it, and the count tying exactly at it. Valid once Step
// has returned true.
func (cs *CutScan) Cut() (cut float64, greater, ties int) {
	return cs.cut, cs.greater, cs.ties
}

// selectCut returns the k-th largest canonical edge weight of the graph
// (callers guarantee 1 <= k <= NumEdges), the number of edges whose
// weight is strictly greater — exactly the cut and `greater` the
// sort-based CEPStream derived from its flat weight array — and the
// total number of edges tying exactly at the cut (the final cut
// bucket's population, free from the selection's own bookkeeping; the
// caller uses it to skip tie-ordinal accounting when every tie or no
// tie fits the budget).
func selectCut(ctx context.Context, g *graph.CSR, workers, k int) (cut float64, greater, ties int, err error) {
	cs := NewCutScan(k)
	for {
		counts, kmin, kmax, err := CountCutHist(ctx, g, workers, cs.Prefix(), cs.Shift())
		if err != nil {
			return 0, 0, 0, err
		}
		if cs.Step(counts, kmin, kmax) {
			cut, greater, ties = cs.Cut()
			return cut, greater, ties, nil
		}
	}
}
