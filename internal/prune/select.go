// Histogram-cut selection for CEP: find the k-th largest edge weight
// (the cut) and the count of edges strictly above it without ever
// materializing the O(|E|) weight array the old CEPStream sorted.
//
// Weights are mapped onto order-preserving 64-bit keys and the cut key
// is located by MSB-first 16-bit histogram passes: a pass counts the
// candidate keys into 2^16 fixed-boundary buckets (tracking per-bucket
// key min/max), the bucket containing the k-th largest key becomes the
// new candidate prefix, and the refinement stops as soon as the cut
// bucket holds a single distinct key — immediately, in the common case
// of massive ties at the cut — or after at most four passes, when the
// full 64 bits are resolved. Scratch is O(2^16) per worker regardless
// of |E|.
//
// Counting passes parallelize over the fixed node chunks; histogram
// counts and key min/max merge commutatively, so the selected cut is
// byte-identical for every worker count (determinism rule 3 of
// parallel.go).
package prune

import (
	"context"
	"math"

	"blast/internal/graph"
)

const (
	selBucketBits = 16
	selBuckets    = 1 << selBucketBits
	selBucketMask = selBuckets - 1
)

// weightKey maps a float64 weight onto a uint64 whose unsigned order
// matches the float order. Both zeros collapse onto +0 so key equality
// matches float equality (the tie rule compares floats); NaNs map to
// the smallest key, mirroring their position under sort.Float64s.
func weightKey(w float64) uint64 {
	if math.IsNaN(w) {
		return 0
	}
	if w == 0 {
		w = 0 // collapse -0 onto +0
	}
	b := math.Float64bits(w)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | 1<<63
}

// keyWeight inverts weightKey for keys produced from non-NaN weights.
func keyWeight(k uint64) float64 {
	if k&(1<<63) != 0 {
		return math.Float64frombits(k &^ (1 << 63))
	}
	return math.Float64frombits(^k)
}

// selHist is one worker's histogram of a counting pass.
type selHist struct {
	counts [selBuckets]int64
	kmin   [selBuckets]uint64
	kmax   [selBuckets]uint64
}

func (h *selHist) reset() {
	for i := range h.counts {
		h.counts[i] = 0
		h.kmin[i] = ^uint64(0)
		h.kmax[i] = 0
	}
}

// selectCut returns the k-th largest canonical edge weight of the graph
// (callers guarantee 1 <= k <= NumEdges), the number of edges whose
// weight is strictly greater — exactly the cut and `greater` the
// sort-based CEPStream derived from its flat weight array — and the
// total number of edges tying exactly at the cut (the final cut
// bucket's population, free from the selection's own bookkeeping; the
// caller uses it to skip tie-ordinal accounting when every tie or no
// tie fits the budget).
func selectCut(ctx context.Context, g *graph.CSR, workers, k int) (cut float64, greater, ties int, err error) {
	nch := numChunks(g.NumProfiles)
	nw := pruneWorkerCount(workers, nch)
	hists := make([]*selHist, nw)
	for i := range hists {
		hists[i] = &selHist{}
	}

	rank := int64(k) // rank of the cut within the candidate set, from the top
	above := int64(0)
	prefix := uint64(0) // candidates satisfy key>>(shift+16) == prefix
	for shift := uint(48); ; shift -= selBucketBits {
		for _, h := range hists {
			h.reset()
		}
		// One counting pass over the candidate keys. hists[w.id] belongs
		// to its goroutine alone; the merge below is commutative, so the
		// racy chunk assignment cannot influence the outcome.
		err := runChunks(ctx, workers, nch, func(w *pruneWorker, chunk int) error {
			h := hists[w.id]
			return forChunkCanonical(g, w, chunk, func(_, _ int32, p int64) {
				key := weightKey(g.Weights[p])
				if key>>(shift+selBucketBits) != prefix {
					return
				}
				b := (key >> shift) & selBucketMask
				h.counts[b]++
				if key < h.kmin[b] {
					h.kmin[b] = key
				}
				if key > h.kmax[b] {
					h.kmax[b] = key
				}
			})
		})
		if err != nil {
			return 0, 0, 0, err
		}
		merged := hists[0]
		for _, h := range hists[1:] {
			for b := 0; b < selBuckets; b++ {
				if h.counts[b] == 0 {
					continue
				}
				merged.counts[b] += h.counts[b]
				if h.kmin[b] < merged.kmin[b] {
					merged.kmin[b] = h.kmin[b]
				}
				if h.kmax[b] > merged.kmax[b] {
					merged.kmax[b] = h.kmax[b]
				}
			}
		}
		// Find the bucket holding the rank-th largest candidate key.
		cum := int64(0)
		b := selBuckets - 1
		for ; b > 0; b-- {
			if c := merged.counts[b]; c > 0 {
				cum += c
				if cum >= rank {
					break
				}
			}
		}
		if b == 0 {
			cum += merged.counts[0]
		}
		above += cum - merged.counts[b]
		rank -= cum - merged.counts[b]
		if merged.kmin[b] == merged.kmax[b] || shift == 0 {
			// Every remaining candidate in the cut bucket carries the same
			// key (always true at shift 0, where a bucket is one exact
			// key): it is the cut, nothing inside it ties above, and the
			// bucket's population is the global tie count.
			return keyWeight(merged.kmin[b]), int(above), int(merged.counts[b]), nil
		}
		prefix = prefix<<selBucketBits | uint64(b)
	}
}
