// Distributed pruning primitives for partitioned sharding. A
// partitioned shard holds an owned-rows CSR (graph.BuildOwnedCSR):
// full-length Offsets, adjacency runs only for the rows it owns. The
// global pruning decisions — WEP's mean, CEP's cut, the node-centric
// thresholds and top-k marks of the rows a canonical edge touches — are
// resolved by exchanging the compact per-row aggregates below in
// deterministic shard order and refolding them with the exact reduction
// shapes of the whole-graph schemes, so the union of every shard's
// retention marks is byte-identical to the single-graph streaming
// scheme:
//
//   - WEP:  per-row weight sums + counts (RowWeightSums), refolded row-
//     within-chunk, chunk order (FoldRowSums) → the identical theta.
//   - CEP:  per-shard counting histograms (CountCutHist, select.go)
//     merged commutatively, one CutScan step per round; partial tie
//     budgets settle via per-row tie counts (RowTieCounts) prefix-
//     summed into global tie ordinals, and the shards exchange the
//     resulting taken-tie pair set (CEPTakenTies) so every owner can
//     mark ties on both entry orientations.
//   - WNP / BlastWNP: per-node thresholds are row-local (an owned row
//     carries its node's complete adjacency), so shards exchange their
//     owned rows of the threshold vector (MeanThresholds,
//     BlastThresholds) and mark against the merged one.
//   - CNP:  per-row top-k marked-neighbor lists (RowTopKMarks), merged
//     into one global list; retention consults both endpoints' lists by
//     binary search, equivalent to the mirror-entry probe of CNPStream.
//
// The final retention mask is produced by MarkOwned: every entry of an
// owned row — both orientations, so a row's served candidates are
// complete — is decided by a keep predicate closed over the globally
// merged aggregates. Because each row's run is its node's full
// adjacency, each owner can decide every entry it holds locally once
// the aggregates are merged; no per-edge exchange is ever needed.
package prune

import (
	"context"
	"slices"

	"blast/internal/graph"
	"blast/internal/model"
)

// CEPBudget is CEP's default comparison budget (k <= 0): half the total
// number of block memberships. Exported for partitioned servers, which
// must resolve the budget from the (globally replicated) block counts
// before driving the distributed selection.
func CEPBudget(blockCounts []int32) int { return cepBudget(blockCounts) }

// CNPBudget is CNP's default per-node budget (k <= 0): the average
// number of blocks per profile over the profiles appearing in at least
// one block, 0 when none does. Exported for the same reason as
// CEPBudget; RowTopKMarks also resolves it internally.
func CNPBudget(blockCounts []int32) int { return cnpBudget(blockCounts) }

// RowWeightSums computes, per row, the left-to-right weight sum and
// count of the canonical entries whose smaller endpoint is the row.
// Over an owned-rows CSR only owned rows are populated; the per-shard
// vectors of a partitioned server are disjoint, so scattering them by
// ownership (in any shard order) yields the whole graph's row vectors.
func RowWeightSums(ctx context.Context, g *graph.CSR, workers int) (sums []float64, counts []int64, err error) {
	sums = make([]float64, g.NumProfiles)
	counts = make([]int64, g.NumProfiles)
	err = runChunks(ctx, workers, numChunks(g.NumProfiles), func(w *pruneWorker, chunk int) error {
		// Chunks own disjoint row ranges, so these writes never race.
		return forChunkCanonical(g, w, chunk, func(u, _ int32, _ int64, wt float64) {
			sums[u] += wt
			counts[u]++
		})
	})
	if err != nil {
		return nil, nil, err
	}
	return sums, counts, nil
}

// FoldRowSums folds whole-graph per-row weight sums with the fixed
// row-within-chunk reduction of chunkPartialSums + combinePartials:
// rows with at least one canonical entry fold in ascending row order
// into per-chunk partials, chunk partials combine in chunk order. The
// total is bit-identical to the streaming WEP's numerator, and edges is
// the graph's canonical edge count (= NumEdges of the whole graph).
func FoldRowSums(sums []float64, counts []int64) (total float64, edges int64) {
	chunk := -1
	partial := 0.0
	for u := range sums {
		if counts[u] == 0 {
			// Rows without canonical entries never contribute a fold —
			// skipping them (rather than adding their 0) is what keeps
			// the reconstruction exact even for signed zeros.
			continue
		}
		edges += counts[u]
		if c := u / chunkNodes; c != chunk {
			if chunk >= 0 {
				total += partial
			}
			partial, chunk = 0, c
		}
		partial += sums[u]
	}
	if chunk >= 0 {
		total += partial
	}
	return total, edges
}

// RowTieCounts computes, per row, how many of the row's canonical
// entries carry exactly the cut weight — the per-row decomposition of
// CEPStream's per-chunk tie counts. Prefix sums over the merged whole-
// graph vector assign every tie its global canonical ordinal.
func RowTieCounts(ctx context.Context, g *graph.CSR, workers int, cut float64) ([]int64, error) {
	ties := make([]int64, g.NumProfiles)
	err := runChunks(ctx, workers, numChunks(g.NumProfiles), func(w *pruneWorker, chunk int) error {
		return forChunkCanonical(g, w, chunk, func(u, _ int32, _ int64, wt float64) {
			if wt == cut {
				ties[u]++
			}
		})
	})
	if err != nil {
		return nil, err
	}
	return ties, nil
}

// CEPTakenTies collects the canonical pairs of the shard's owned rows
// that tie exactly at the cut AND fall inside the remaining budget rem,
// in global canonical tie order. The order is resolved through tieBase
// — per row, the ordinal of the row's first tie among all the graph's
// ties (the prefix sum of the merged RowTieCounts) — so on the whole
// graph this reproduces CEPStream's partial tie pass exactly: a chunk's
// starting ordinal is its first row's. Ties are collected regardless of
// weight sign (ordinals count every tying entry, exactly as the stream
// does; the positive-weight gate lives in the retention mark pass), and
// the per-shard slices are disjoint and canonically sorted, so merging
// them in any order yields THE global taken-tie set. Callers with
// rem >= ties or rem <= 0 need no tie set at all — the cut alone
// decides (weight >= cut, weight > cut).
func CEPTakenTies(ctx context.Context, g *graph.CSR, workers int, cut float64, rem int64, tieBase []int64) ([]model.IDPair, error) {
	nch := numChunks(g.NumProfiles)
	bufs := make([][]model.IDPair, nch)
	err := runChunks(ctx, workers, nch, func(w *pruneWorker, chunk int) error {
		tie, row := int64(0), int32(-1)
		var out []model.IDPair
		err := forChunkCanonical(g, w, chunk, func(u, v int32, _ int64, wt float64) {
			if wt != cut {
				return
			}
			if u != row {
				tie, row = tieBase[u], u
			}
			if tie < rem {
				out = append(out, model.IDPair{U: u, V: v})
			}
			tie++
		})
		bufs[chunk] = out
		return err
	})
	if err != nil {
		return nil, err
	}
	return stitchPairs(bufs), nil
}

// MarkOwned runs the retention mark pass over every entry of the
// graph's populated rows: each positive-weight entry (u, v) — u the row,
// v the neighbor, in BOTH orientations of every edge the row holds — is
// decided by keep, and marks counts the entries marked. Over an
// owned-rows CSR the populated rows are exactly the owned ones, and
// since each shard's rows are disjoint, summing the per-shard marks
// counts every retained edge exactly twice (once per endpoint, whoever
// owns it): the global RetainedPairs is the exchanged sum over two.
// keep must be a pure function of its arguments and globally merged
// state, so both owners of an edge decide it identically.
func MarkOwned(ctx context.Context, g *graph.CSR, workers int, keep func(u, v int32, w float64) bool) (retained []bool, marks int64, err error) {
	retained = make([]bool, g.NumEntries())
	nch := numChunks(g.NumProfiles)
	perChunk := make([]int64, nch)
	err = runChunks(ctx, workers, nch, func(w *pruneWorker, chunk int) error {
		lo, hi := chunkBounds(chunk, g.NumProfiles)
		n := int64(0)
		for u := lo; u < hi; u++ {
			base, end := g.Offsets[u], g.Offsets[u+1]
			if base == end {
				continue
			}
			nbr, wts := g.Run(u)
			for p := base; p < end; {
				seg := end - p
				if seg > streamCancelCheckEdges {
					seg = streamCancelCheckEdges
				}
				for stop := p + seg; p < stop; p++ {
					if wt := wts[p-base]; wt > 0 && keep(int32(u), nbr[p-base], wt) {
						retained[p] = true
						n++
					}
				}
				if err := w.tick(int(seg)); err != nil {
					return err
				}
			}
		}
		perChunk[chunk] = n
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	for _, n := range perChunk {
		marks += n
	}
	return retained, marks, nil
}

// RowTopKMarks runs CNP's mark pass over the shard's owned rows — each
// row marks its top-k adjacent entries by weight, stable on the
// adjacency order, exactly as CNPStream — and returns the marks as
// per-row neighbor-id lists: ids[offsets[u]:offsets[u+1]] are row u's
// marked neighbors, ascending (adjacency runs are sorted). k <= 0
// resolves to CNPBudget of the graph's (global) block counts; a zero
// budget marks nothing. Owned rows across shards are disjoint, so
// scattering the lists by ownership rebuilds the whole graph's marks.
func RowTopKMarks(ctx context.Context, g *graph.CSR, k, workers int) (offsets []int64, ids []int32, err error) {
	if k <= 0 {
		k = cnpBudget(g.BlockCounts)
	}
	mark := make([]bool, g.NumEntries())
	if k > 0 {
		err := runChunks(ctx, workers, numChunks(g.NumProfiles), func(w *pruneWorker, chunk int) error {
			lo, hi := chunkBounds(chunk, g.NumProfiles)
			for n := lo; n < hi; n++ {
				rlo, rhi := g.Offsets[n], g.Offsets[n+1]
				if rlo == rhi {
					continue
				}
				_, ws := g.Run(n)
				order := w.order[:0]
				for p := rlo; p < rhi; {
					seg := rhi - p
					if seg > streamCancelCheckEdges {
						seg = streamCancelCheckEdges
					}
					for stop := p + seg; p < stop; p++ {
						order = append(order, p)
					}
					w.order = order
					if err := w.tick(int(seg)); err != nil {
						return err
					}
				}
				slices.SortStableFunc(order, func(a, b int64) int {
					switch wa, wb := ws[a-rlo], ws[b-rlo]; {
					case wa > wb:
						return -1
					case wa < wb:
						return 1
					default:
						return 0
					}
				})
				limit := k
				if limit > len(order) {
					limit = len(order)
				}
				for _, p := range order[:limit] {
					mark[p] = true
				}
			}
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
	}
	offsets = make([]int64, g.NumProfiles+1)
	total := 0
	for _, m := range mark {
		if m {
			total++
		}
	}
	ids = make([]int32, 0, total)
	for n := 0; n < g.NumProfiles; n++ {
		base, end := g.Offsets[n], g.Offsets[n+1]
		if base == end {
			offsets[n+1] = int64(len(ids))
			continue
		}
		nbr, _ := g.Run(n)
		for p := base; p < end; {
			seg := end - p
			if seg > streamCancelCheckEdges {
				seg = streamCancelCheckEdges
			}
			for stop := p + seg; p < stop; p++ {
				if mark[p] {
					ids = append(ids, nbr[p-base])
				}
			}
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		offsets[n+1] = int64(len(ids))
	}
	return offsets, ids, nil
}
