package prune

import (
	"context"
	"fmt"
	"testing"

	"blast/internal/blocking"
	"blast/internal/datasets"
	"blast/internal/graph"
	"blast/internal/model"
	"blast/internal/stats"
	"blast/internal/weights"
)

// muster returns an unwrapper for a streaming scheme's (pairs, error)
// return; the background context never cancels, so an error is a test
// bug.
func muster(t *testing.T) func([]model.IDPair, error) []model.IDPair {
	return func(pairs []model.IDPair, err error) []model.IDPair {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected stream error: %v", err)
		}
		return pairs
	}
}

// weightedPair builds both graph representations of a collection with
// the same scheme applied.
func weightedPairReps(c *blocking.Collection, s weights.Scheme) (*graph.Graph, *graph.CSR) {
	g := graph.Build(c)
	s.Apply(g)
	csr := graph.BuildCSR(c)
	s.ApplyCSR(csr)
	return g, csr
}

// pairsOf materializes the pairs of retained edge indexes.
func pairsOf(g *graph.Graph, idx []int) []model.IDPair {
	out := make([]model.IDPair, len(idx))
	for i, e := range idx {
		out[i] = g.Edges[e].Pair()
	}
	return out
}

func comparePairs(t *testing.T, label string, want, got []model.IDPair) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: pair %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// TestStreamMatchesEdgeListOnRandomCollections drives every streaming
// scheme against its edge-list counterpart on random collections.
func TestStreamMatchesEdgeListOnRandomCollections(t *testing.T) {
	ctx := context.Background()
	must := muster(t)
	for seed := uint64(1); seed <= 8; seed++ {
		rng := stats.NewRNG(seed)
		for _, kind := range []model.Kind{model.Dirty, model.CleanClean} {
			c := blocking.RandomCollection(rng, kind, 40+rng.Intn(50), 30+rng.Intn(30))
			for _, s := range []weights.Scheme{
				{Kind: weights.CBS},
				{Kind: weights.EJS},
				{Kind: weights.ChiSquared, Entropy: true},
			} {
				g, csr := weightedPairReps(c, s)
				label := fmt.Sprintf("seed=%d kind=%v %s", seed, kind, s.Name())
				comparePairs(t, label+" wep", pairsOf(g, WEP(g)), must(WEPStream(ctx, csr, 1)))
				comparePairs(t, label+" cep", pairsOf(g, CEP(g, 0)), must(CEPStream(ctx, csr, 0, 1)))
				comparePairs(t, label+" cep5", pairsOf(g, CEP(g, 5)), must(CEPStream(ctx, csr, 5, 1)))
				for _, mode := range []Mode{Redefined, Reciprocal} {
					comparePairs(t, label+" wnp", pairsOf(g, WNP(g, mode)), must(WNPStream(ctx, csr, mode, 1)))
					comparePairs(t, label+" cnp", pairsOf(g, CNP(g, 0, mode)), must(CNPStream(ctx, csr, 0, mode, 1)))
					comparePairs(t, label+" cnp2", pairsOf(g, CNP(g, 2, mode)), must(CNPStream(ctx, csr, 2, mode, 1)))
				}
				comparePairs(t, label+" blast", pairsOf(g, BlastWNP(g, 2, 2)), must(BlastWNPStream(ctx, csr, 2, 2, 1)))
				comparePairs(t, label+" blast41", pairsOf(g, BlastWNP(g, 4, 1)), must(BlastWNPStream(ctx, csr, 4, 1, 1)))
			}
		}
	}
}

// TestStreamFigure1: the streaming BLAST pruning reproduces the paper
// example exactly, like the edge-list one.
func TestStreamFigure1(t *testing.T) {
	must := muster(t)
	ds := datasets.PaperExample()
	c := blocking.TokenBlocking(ds)
	csr := graph.BuildCSR(c)
	weights.Blast().ApplyCSR(csr)
	pairs := must(BlastWNPStream(context.Background(), csr, 2, 2, 1))
	if len(pairs) != 2 {
		t.Fatalf("retained %d pairs, want 2", len(pairs))
	}
	for _, p := range pairs {
		if !ds.Truth.Contains(int(p.U), int(p.V)) {
			t.Errorf("retained non-match %v", p)
		}
	}
}

// TestStreamEmptyGraph: every streaming scheme must cope with an
// edgeless graph.
func TestStreamEmptyGraph(t *testing.T) {
	ctx := context.Background()
	must := muster(t)
	c := &blocking.Collection{Kind: model.Dirty, NumProfiles: 3}
	csr := graph.BuildCSR(c)
	if must(WEPStream(ctx, csr, 1)) != nil || must(CEPStream(ctx, csr, 0, 1)) != nil ||
		must(WNPStream(ctx, csr, Redefined, 1)) != nil || must(CNPStream(ctx, csr, 0, Reciprocal, 1)) != nil ||
		must(BlastWNPStream(ctx, csr, 2, 2, 1)) != nil {
		t.Error("empty graph must prune to nothing")
	}
}

// TestStreamZeroWeightsNeverRetained mirrors the edge-list contract: a
// zero weight means no evidence, so nothing is emitted even though the
// thresholds degenerate to zero.
func TestStreamZeroWeightsNeverRetained(t *testing.T) {
	ctx := context.Background()
	must := muster(t)
	rng := stats.NewRNG(5)
	c := blocking.RandomCollection(rng, model.Dirty, 30, 20)
	csr := graph.BuildCSR(c) // weights left at zero
	for name, pairs := range map[string][]model.IDPair{
		"wep":   must(WEPStream(ctx, csr, 1)),
		"cep":   must(CEPStream(ctx, csr, 0, 1)),
		"wnp":   must(WNPStream(ctx, csr, Redefined, 1)),
		"cnp":   must(CNPStream(ctx, csr, 0, Redefined, 1)),
		"blast": must(BlastWNPStream(ctx, csr, 2, 2, 1)),
	} {
		if len(pairs) != 0 {
			t.Errorf("%s retained %d zero-weight pairs", name, len(pairs))
		}
	}
}
