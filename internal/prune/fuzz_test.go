package prune

// FuzzPruneParallel is the serial-vs-parallel differential fuzzer of
// the parallel pruning passes: the fuzz input derives a random block
// collection, a weighting scheme, a pruning scheme with its knobs, and
// a worker count, and the parallel output must be byte-identical to the
// serial streaming scheme. Registered in CI's fuzz smoke matrix.

import (
	"context"
	"testing"

	"blast/internal/blocking"
	"blast/internal/graph"
	"blast/internal/model"
	"blast/internal/stats"
	"blast/internal/weights"
)

func FuzzPruneParallel(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(0), uint8(0), uint8(3))
	f.Add(uint64(42), uint8(1), uint8(2), uint8(1), uint8(0))
	f.Add(uint64(7919), uint8(0), uint8(5), uint8(3), uint8(7))
	f.Add(uint64(2654435761), uint8(1), uint8(6), uint8(4), uint8(16))
	f.Fuzz(func(t *testing.T, seed uint64, kindB, pruneB, schemeB, workersB uint8) {
		ctx := context.Background()
		rng := stats.NewRNG(seed | 1)
		kind := model.Dirty
		if kindB%2 == 1 {
			kind = model.CleanClean
		}
		c := blocking.RandomCollection(rng, kind, 20+rng.Intn(80), 15+rng.Intn(45))
		schemes := []weights.Scheme{
			{Kind: weights.CBS},
			{Kind: weights.ECBS},
			{Kind: weights.ARCS, Entropy: true},
			{Kind: weights.JS},
			{Kind: weights.EJS},
			{Kind: weights.ChiSquared, Entropy: true},
		}
		s := schemes[int(schemeB)%len(schemes)]
		csr := graph.BuildCSR(c)
		s.ApplyCSR(csr)
		// Workers spans serial, small counts, and counts far beyond the
		// chunk count of these small graphs.
		workers := 2 + int(workersB)%15
		k := int(seed % 11) // 0 selects the scheme budgets

		type scheme struct {
			name string
			run  func(workers int) ([]model.IDPair, error)
		}
		all := []scheme{
			{"wep", func(w int) ([]model.IDPair, error) { return WEPStream(ctx, csr, w) }},
			{"cep", func(w int) ([]model.IDPair, error) { return CEPStream(ctx, csr, k, w) }},
			{"wnp1", func(w int) ([]model.IDPair, error) { return WNPStream(ctx, csr, Redefined, w) }},
			{"wnp2", func(w int) ([]model.IDPair, error) { return WNPStream(ctx, csr, Reciprocal, w) }},
			{"cnp1", func(w int) ([]model.IDPair, error) { return CNPStream(ctx, csr, k, Redefined, w) }},
			{"cnp2", func(w int) ([]model.IDPair, error) { return CNPStream(ctx, csr, k, Reciprocal, w) }},
			{"blast", func(w int) ([]model.IDPair, error) { return BlastWNPStream(ctx, csr, 2, 2, w) }},
		}
		sc := all[int(pruneB)%len(all)]
		want, err := sc.run(1)
		if err != nil {
			t.Fatalf("%s serial: %v", sc.name, err)
		}
		got, err := sc.run(workers)
		if err != nil {
			t.Fatalf("%s workers=%d: %v", sc.name, workers, err)
		}
		if len(want) != len(got) {
			t.Fatalf("%s workers=%d: %d pairs, want %d", sc.name, workers, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s workers=%d: pair %d = %v, want %v", sc.name, workers, i, got[i], want[i])
			}
		}
	})
}
