package lsh

import "sort"

// CandidatePair is an unordered pair of item ids that collided in at
// least one band, stored with A < B.
type CandidatePair struct {
	A, B int32
}

// Index is a banded LSH index: signatures are split into Bands bands of
// Rows rows each; items whose signature agrees on every row of at least
// one band become candidate pairs. Signatures added to an index must come
// from the same Signer and have length >= Bands*Rows (extra positions are
// ignored).
type Index struct {
	Rows  int
	Bands int

	// buckets[band] maps a band hash to the item ids in that bucket.
	buckets []map[uint64][]int32
	n       int
}

// NewIndex returns an empty banded index. It panics on non-positive
// parameters.
func NewIndex(rows, bands int) *Index {
	if rows <= 0 || bands <= 0 {
		panic("lsh: NewIndex needs rows > 0 and bands > 0")
	}
	bk := make([]map[uint64][]int32, bands)
	for i := range bk {
		bk[i] = make(map[uint64][]int32)
	}
	return &Index{Rows: rows, Bands: bands, buckets: bk}
}

// Len returns the number of items added.
func (ix *Index) Len() int { return ix.n }

// bandHash combines the rows of one band into a single bucket key.
func bandHash(rows []uint64) uint64 {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	for _, r := range rows {
		h ^= r
		h *= 1099511628211
		h = mix64(h)
	}
	return h
}

// Add inserts an item with its signature. It panics if the signature is
// shorter than Rows*Bands.
func (ix *Index) Add(id int32, sig []uint64) {
	need := ix.Rows * ix.Bands
	if len(sig) < need {
		panic("lsh: signature shorter than rows*bands")
	}
	for b := 0; b < ix.Bands; b++ {
		key := bandHash(sig[b*ix.Rows : (b+1)*ix.Rows])
		ix.buckets[b][key] = append(ix.buckets[b][key], id)
	}
	ix.n++
}

// Candidates returns the deduplicated candidate pairs: items sharing a
// bucket in at least one band. If crossOnly is non-nil, only pairs for
// which crossOnly(a, b) is true are returned (used to keep only
// cross-collection attribute pairs in clean-clean ER).
func (ix *Index) Candidates(crossOnly func(a, b int32) bool) []CandidatePair {
	seen := make(map[uint64]struct{})
	var out []CandidatePair
	for _, band := range ix.buckets {
		for _, bucket := range band {
			if len(bucket) < 2 {
				continue
			}
			for i := 0; i < len(bucket); i++ {
				for j := i + 1; j < len(bucket); j++ {
					a, b := bucket[i], bucket[j]
					if a == b {
						continue
					}
					if a > b {
						a, b = b, a
					}
					if crossOnly != nil && !crossOnly(a, b) {
						continue
					}
					key := uint64(uint32(a))<<32 | uint64(uint32(b))
					if _, dup := seen[key]; dup {
						continue
					}
					seen[key] = struct{}{}
					out = append(out, CandidatePair{A: a, B: b})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}
