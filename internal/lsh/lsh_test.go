package lsh

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"blast/internal/stats"
)

func TestTokenHashDeterministic(t *testing.T) {
	if TokenHash("abram") != TokenHash("abram") {
		t.Error("TokenHash not deterministic")
	}
	if TokenHash("abram") == TokenHash("ellen") {
		t.Error("distinct tokens should hash differently (with overwhelming probability)")
	}
}

func TestSignerDeterministic(t *testing.T) {
	s1 := NewSigner(16, 42)
	s2 := NewSigner(16, 42)
	a := s1.Sign([]string{"a", "b", "c"})
	b := s2.Sign([]string{"a", "b", "c"})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed signers differ")
		}
	}
	s3 := NewSigner(16, 43)
	c := s3.Sign([]string{"a", "b", "c"})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical signatures")
	}
}

func TestSignerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSigner(0) should panic")
		}
	}()
	NewSigner(0, 1)
}

func TestSignatureOrderInvariance(t *testing.T) {
	s := NewSigner(32, 7)
	a := s.Sign([]string{"x", "y", "z", "w"})
	b := s.Sign([]string{"w", "z", "y", "x"})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("signature depends on token order; it must not")
		}
	}
}

func TestEmptySetSignature(t *testing.T) {
	s := NewSigner(8, 7)
	sig := s.Sign(nil)
	for _, v := range sig {
		if v != math.MaxUint64 {
			t.Fatal("empty set signature must be all MaxUint64")
		}
	}
}

func TestIdenticalSetsEstimateOne(t *testing.T) {
	s := NewSigner(64, 3)
	a := s.Sign([]string{"p", "q", "r"})
	b := s.Sign([]string{"p", "q", "r"})
	if got := EstimateJaccard(a, b); got != 1 {
		t.Errorf("identical sets estimate = %v, want 1", got)
	}
}

func TestDisjointSetsEstimateNearZero(t *testing.T) {
	s := NewSigner(128, 3)
	a := s.Sign([]string{"aa", "bb", "cc", "dd"})
	b := s.Sign([]string{"ee", "ff", "gg", "hh"})
	if got := EstimateJaccard(a, b); got > 0.05 {
		t.Errorf("disjoint sets estimate = %v, want ~0", got)
	}
}

func TestEstimateJaccardPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	EstimateJaccard([]uint64{1}, []uint64{1, 2})
}

func TestEstimateJaccardEmpty(t *testing.T) {
	if got := EstimateJaccard(nil, nil); got != 0 {
		t.Errorf("empty signatures = %v, want 0", got)
	}
}

// trueJaccard computes exact Jaccard of two string sets.
func trueJaccard(a, b []string) float64 {
	sa := make(map[string]bool)
	for _, x := range a {
		sa[x] = true
	}
	inter := 0
	sb := make(map[string]bool)
	for _, x := range b {
		if sb[x] {
			continue
		}
		sb[x] = true
		if sa[x] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

func TestMinHashEstimatesJaccard(t *testing.T) {
	// Statistical test: with 512 hashes the estimator's standard error is
	// sqrt(J(1-J)/512) <= 0.0221; tolerate 5 sigma.
	s := NewSigner(512, 99)
	mk := func(from, to int) []string {
		var xs []string
		for i := from; i < to; i++ {
			xs = append(xs, fmt.Sprintf("tok%04d", i))
		}
		return xs
	}
	cases := []struct{ a, b []string }{
		{mk(0, 100), mk(50, 150)},  // J = 50/150 = 1/3
		{mk(0, 100), mk(90, 190)},  // J = 10/190
		{mk(0, 40), mk(20, 60)},    // J = 20/60 = 1/3
		{mk(0, 100), mk(0, 100)},   // J = 1
		{mk(0, 100), mk(100, 200)}, // J = 0
	}
	for i, c := range cases {
		want := trueJaccard(c.a, c.b)
		got := EstimateJaccard(s.Sign(c.a), s.Sign(c.b))
		tol := 5 * math.Sqrt(want*(1-want)/512)
		if tol < 0.02 {
			tol = 0.02
		}
		if math.Abs(got-want) > tol {
			t.Errorf("case %d: estimate %v, true %v (tol %v)", i, got, want, tol)
		}
	}
}

func TestSCurveShape(t *testing.T) {
	// Monotone increasing, 0 at 0, 1 at 1.
	if SCurve(0, 5, 30) != 0 || SCurve(1, 5, 30) != 1 {
		t.Error("S-curve endpoints wrong")
	}
	prev := -1.0
	for s := 0.0; s <= 1.0; s += 0.01 {
		v := SCurve(s, 5, 30)
		if v < prev-1e-12 {
			t.Fatalf("S-curve not monotone at %v", s)
		}
		prev = v
	}
}

func TestSCurvePaperConfiguration(t *testing.T) {
	// Paper Figure 5: r=5, b=30 -> threshold ~0.5.
	th := Threshold(5, 30)
	if math.Abs(th-0.506) > 0.01 {
		t.Errorf("Threshold(5,30) = %v, want ~0.506", th)
	}
	// At the threshold the curve should be in its steep middle region.
	p := SCurve(th, 5, 30)
	if p < 0.3 || p > 0.9 {
		t.Errorf("SCurve at threshold = %v, want mid-range", p)
	}
	// Far below the threshold candidates are unlikely; far above, likely.
	if SCurve(0.2, 5, 30) > 0.05 {
		t.Errorf("SCurve(0.2) = %v, want < 0.05", SCurve(0.2, 5, 30))
	}
	if SCurve(0.8, 5, 30) < 0.99 {
		t.Errorf("SCurve(0.8) = %v, want > 0.99", SCurve(0.8, 5, 30))
	}
}

func TestThresholdProperties(t *testing.T) {
	f := func(r8, b8 uint8) bool {
		r := int(r8%10) + 1
		b := int(b8%40) + 1
		th := Threshold(r, b)
		return th > 0 && th <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Threshold(0, 10) != 1 || Threshold(10, 0) != 1 {
		t.Error("degenerate threshold should be 1")
	}
}

func TestParams(t *testing.T) {
	r, b, th := Params(0.5, 150)
	if r*b > 150 {
		t.Fatalf("Params exceeded hash budget: r=%d b=%d", r, b)
	}
	if math.Abs(th-0.5) > 0.1 {
		t.Errorf("Params(0.5,150) threshold = %v (r=%d b=%d), want ~0.5", th, r, b)
	}
	r, b, th = Params(0.9, 150)
	if math.Abs(th-0.9) > 0.1 {
		t.Errorf("Params(0.9,150) threshold = %v (r=%d b=%d)", th, r, b)
	}
	r, b, th = Params(0.5, 1)
	if r != 1 || b != 1 || th != 1 {
		t.Errorf("tiny budget should degrade to (1,1,1), got (%d,%d,%v)", r, b, th)
	}
}

func TestIndexCandidatesSimilarPairs(t *testing.T) {
	// Attributes: 0 and 1 nearly identical, 2 unrelated.
	sets := [][]string{
		{"ellen", "smith", "john", "mary", "kate", "lucy", "anna", "rose"},
		{"ellen", "smith", "john", "mary", "kate", "lucy", "anna", "jane"},
		{"volt", "amp", "watt", "ohm", "tesla", "henry", "farad", "weber"},
	}
	signer := NewSigner(150, 17)
	ix := NewIndex(5, 30)
	for i, s := range sets {
		ix.Add(int32(i), signer.Sign(s))
	}
	cands := ix.Candidates(nil)
	found01 := false
	for _, c := range cands {
		if c.A == 0 && c.B == 1 {
			found01 = true
		}
		if c.A == 0 && c.B == 2 || c.A == 1 && c.B == 2 {
			t.Errorf("unrelated pair (%d,%d) became candidate", c.A, c.B)
		}
	}
	if !found01 {
		t.Error("near-identical pair (0,1) not a candidate")
	}
}

func TestIndexCrossOnlyFilter(t *testing.T) {
	signer := NewSigner(150, 17)
	ix := NewIndex(5, 30)
	same := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < 4; i++ {
		ix.Add(int32(i), signer.Sign(same))
	}
	// Only allow pairs crossing the boundary at 2.
	cross := func(a, b int32) bool { return (a < 2) != (b < 2) }
	cands := ix.Candidates(cross)
	if len(cands) != 4 {
		t.Fatalf("cross candidates = %d, want 4 (2x2)", len(cands))
	}
	for _, c := range cands {
		if !cross(c.A, c.B) {
			t.Errorf("pair (%d,%d) violates cross filter", c.A, c.B)
		}
	}
}

func TestIndexCandidatesDeduplicated(t *testing.T) {
	signer := NewSigner(150, 17)
	ix := NewIndex(5, 30)
	same := []string{"x", "y", "z", "q", "r"}
	ix.Add(0, signer.Sign(same))
	ix.Add(1, signer.Sign(same))
	cands := ix.Candidates(nil)
	if len(cands) != 1 {
		t.Fatalf("identical signatures collide in every band; want 1 deduplicated pair, got %d", len(cands))
	}
	if cands[0].A != 0 || cands[0].B != 1 {
		t.Errorf("candidate = %+v, want {0 1}", cands[0])
	}
}

func TestIndexPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewIndex(0,1) should panic")
			}
		}()
		NewIndex(0, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("short signature should panic")
			}
		}()
		ix := NewIndex(2, 2)
		ix.Add(0, []uint64{1, 2, 3})
	}()
}

func TestBandingRecallStatistical(t *testing.T) {
	// Empirical check of the S-curve: generate many pairs with controlled
	// Jaccard and verify candidate rates bracket the analytic curve.
	const rows, bands = 5, 30
	signer := NewSigner(rows*bands, 123)
	rng := stats.NewRNG(9)

	makePair := func(overlap, size int) ([]uint64, []uint64) {
		// Two sets sharing `overlap` of `size` tokens each.
		var a, b []uint64
		for i := 0; i < overlap; i++ {
			tok := rng.Uint64()
			a = append(a, tok)
			b = append(b, tok)
		}
		for i := overlap; i < size; i++ {
			a = append(a, rng.Uint64())
			b = append(b, rng.Uint64())
		}
		return a, b
	}

	run := func(overlap, size, trials int) float64 {
		hits := 0
		for i := 0; i < trials; i++ {
			sa, sb := makePair(overlap, size)
			ix := NewIndex(rows, bands)
			ix.Add(0, signer.SignHashes(sa))
			ix.Add(1, signer.SignHashes(sb))
			if len(ix.Candidates(nil)) > 0 {
				hits++
			}
		}
		return float64(hits) / float64(trials)
	}

	// J = 60/(2*100-60) = 0.428...; curve ~0.26. J=80/120=0.667; curve ~0.98.
	low := run(60, 100, 60)
	high := run(80, 100, 60)
	if low >= high {
		t.Errorf("candidate rate should increase with similarity: low=%v high=%v", low, high)
	}
	if high < 0.8 {
		t.Errorf("high-similarity candidate rate %v, want > 0.8", high)
	}
}
