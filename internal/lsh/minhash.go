// Package lsh implements the Locality-Sensitive Hashing substrate of
// BLAST (Section 3.1.2): MinHash signatures over token sets, banded
// indexing for candidate-pair generation, and the S-curve analysis used
// to pick the (rows, bands) configuration for a target Jaccard threshold.
package lsh

import (
	"hash/fnv"
	"math"

	"blast/internal/stats"
)

// TokenHash maps a token to a 64-bit point of the MinHash universe. All
// signatures must be built from the same token hashing, so it is exported
// and deterministic.
func TokenHash(token string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(token))
	return h.Sum64()
}

// Signer computes MinHash signatures of n hash functions, simulating n
// independent row permutations of the characteristic matrix (Leskovec,
// Rajaraman, Ullman; Mining of Massive Datasets). The n functions are
// derived from two strong base hashes by double hashing,
// h_i(t) = h1(t) + i*h2(t), which costs two mixes plus n additions per
// token instead of n mixes — the standard construction for large-scale
// MinHash (Kirsch & Mitzenmacher).
type Signer struct {
	n            int
	seedA, seedB uint64
}

// NewSigner returns a Signer with n hash functions drawn deterministically
// from seed.
func NewSigner(n int, seed uint64) *Signer {
	if n <= 0 {
		panic("lsh: NewSigner needs n > 0")
	}
	rng := stats.NewRNG(seed)
	return &Signer{n: n, seedA: rng.Uint64(), seedB: rng.Uint64()}
}

// Size returns the signature length n.
func (s *Signer) Size() int { return s.n }

// mix64 is a strong 64-bit finalizer (splitmix64's output stage).
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SignHashes returns the MinHash signature of a set of pre-hashed tokens.
// An empty set yields a signature of all math.MaxUint64, which never
// collides into a band bucket with a non-empty set's signature in
// practice and estimates Jaccard 0 against everything non-empty.
func (s *Signer) SignHashes(tokens []uint64) []uint64 {
	sig := make([]uint64, s.n)
	for i := range sig {
		sig[i] = math.MaxUint64
	}
	for _, t := range tokens {
		h1 := mix64(t ^ s.seedA)
		h2 := mix64(t^s.seedB) | 1
		x := h1
		for i := range sig {
			if x < sig[i] {
				sig[i] = x
			}
			x += h2
		}
	}
	return sig
}

// Sign hashes the tokens and returns their MinHash signature.
func (s *Signer) Sign(tokens []string) []uint64 {
	hs := make([]uint64, len(tokens))
	for i, t := range tokens {
		hs[i] = TokenHash(t)
	}
	return s.SignHashes(hs)
}

// EstimateJaccard returns the fraction of agreeing signature positions,
// an unbiased estimator of the Jaccard similarity of the underlying sets.
// It panics if the signatures have different lengths.
func EstimateJaccard(a, b []uint64) float64 {
	if len(a) != len(b) {
		panic("lsh: signature length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	agree := 0
	for i := range a {
		if a[i] == b[i] {
			agree++
		}
	}
	return float64(agree) / float64(len(a))
}

// SCurve returns the probability that two sets with Jaccard similarity s
// become a candidate pair under banding with r rows per band and b bands:
// 1 - (1 - s^r)^b (Figure 5 of the paper).
func SCurve(s float64, r, b int) float64 {
	if s <= 0 {
		return 0
	}
	if s >= 1 {
		return 1
	}
	return 1 - math.Pow(1-math.Pow(s, float64(r)), float64(b))
}

// Threshold approximates the similarity at the S-curve inflection point,
// (1/b)^(1/r): pairs above it are likely candidates, pairs below are not.
func Threshold(r, b int) float64 {
	if r <= 0 || b <= 0 {
		return 1
	}
	return math.Pow(1/float64(b), 1/float64(r))
}

// Params picks (rows, bands) whose S-curve threshold best approximates
// target, subject to rows*bands <= maxHashes, preferring configurations
// that use more of the hash budget (sharper curves). It returns the chosen
// rows, bands and the achieved threshold.
func Params(target float64, maxHashes int) (rows, bands int, threshold float64) {
	if maxHashes < 2 {
		return 1, 1, 1
	}
	best := math.Inf(1)
	for r := 1; r <= maxHashes; r++ {
		b := maxHashes / r
		if b < 1 {
			break
		}
		th := Threshold(r, b)
		d := math.Abs(th - target)
		// Prefer closer thresholds; break ties toward more hashes used.
		if d < best-1e-12 {
			best = d
			rows, bands, threshold = r, b, th
		}
	}
	return rows, bands, threshold
}
