package graph

import (
	"math"
	"testing"

	"blast/internal/blocking"
	"blast/internal/datasets"
)

// graphsEqual compares two graphs field by field.
func graphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumProfiles != b.NumProfiles || a.TotalBlocks != b.TotalBlocks ||
		a.TotalComparisons != b.TotalComparisons {
		t.Fatalf("graph headers differ: %+v vs %+v", a, b)
	}
	if len(a.Edges) != len(b.Edges) {
		t.Fatalf("edge counts differ: %d vs %d", len(a.Edges), len(b.Edges))
	}
	for i := range a.Edges {
		ea, eb := a.Edges[i], b.Edges[i]
		if ea.U != eb.U || ea.V != eb.V || ea.Common != eb.Common {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ea, eb)
		}
		if math.Abs(ea.ARCS-eb.ARCS) > 1e-9 || math.Abs(ea.EntropySum-eb.EntropySum) > 1e-9 {
			t.Fatalf("edge %d stats differ: %+v vs %+v", i, ea, eb)
		}
	}
	for i := range a.Degrees {
		if a.Degrees[i] != b.Degrees[i] {
			t.Fatalf("degree %d differs", i)
		}
	}
	for i := range a.BlockCounts {
		if a.BlockCounts[i] != b.BlockCounts[i] {
			t.Fatalf("block count %d differs", i)
		}
	}
}

func TestBuildParallelMatchesSerial(t *testing.T) {
	ds := datasets.AR1(0.1, 5)
	blocks := blocking.CleanWorkflow(blocking.TokenBlocking(ds), 0.5, 0.8)
	serial := Build(blocks)
	for _, workers := range []int{2, 3, 4, 8} {
		par := BuildParallel(blocks, workers)
		graphsEqual(t, serial, par)
	}
}

func TestBuildParallelDirty(t *testing.T) {
	ds := datasets.Census(0.3, 5)
	blocks := blocking.CleanWorkflow(blocking.TokenBlocking(ds), 0.5, 0.8)
	graphsEqual(t, Build(blocks), BuildParallel(blocks, 4))
}

func TestBuildParallelSmallInputFallsBack(t *testing.T) {
	ds := datasets.PaperExample()
	blocks := blocking.TokenBlocking(ds)
	// 12 blocks with 8 workers triggers the serial fallback; result must
	// still be identical.
	graphsEqual(t, Build(blocks), BuildParallel(blocks, 8))
	graphsEqual(t, Build(blocks), BuildParallel(blocks, 0)) // GOMAXPROCS default
	graphsEqual(t, Build(blocks), BuildParallel(blocks, 1))
}

func TestBuildParallelDeterministic(t *testing.T) {
	ds := datasets.PRD(0.2, 9)
	blocks := blocking.CleanWorkflow(blocking.TokenBlocking(ds), 0.5, 0.8)
	a := BuildParallel(blocks, 4)
	b := BuildParallel(blocks, 4)
	graphsEqual(t, a, b)
}
