package graph

import (
	"testing"

	"blast/internal/blocking"
	"blast/internal/datasets"
	"blast/internal/model"
	"blast/internal/stats"
)

// checkCSRMatchesGraph asserts that the CSR carries exactly the edges
// and (bit-identical) accumulators of the edge-list graph.
func checkCSRMatchesGraph(t *testing.T, g *Graph, csr *CSR) {
	t.Helper()
	if csr.NumProfiles != g.NumProfiles {
		t.Fatalf("NumProfiles = %d, want %d", csr.NumProfiles, g.NumProfiles)
	}
	if csr.NumEdges() != g.NumEdges() {
		t.Fatalf("NumEdges = %d, want %d", csr.NumEdges(), g.NumEdges())
	}
	if csr.TotalBlocks != g.TotalBlocks || csr.TotalComparisons != g.TotalComparisons {
		t.Fatalf("totals = (%d, %d), want (%d, %d)",
			csr.TotalBlocks, csr.TotalComparisons, g.TotalBlocks, g.TotalComparisons)
	}
	for i := range g.BlockCounts {
		if csr.BlockCounts[i] != g.BlockCounts[i] {
			t.Fatalf("BlockCounts[%d] = %d, want %d", i, csr.BlockCounts[i], g.BlockCounts[i])
		}
	}
	for n := 0; n < g.NumProfiles; n++ {
		if csr.Degree(n) != int(g.Degrees[n]) {
			t.Fatalf("Degree(%d) = %d, want %d", n, csr.Degree(n), g.Degrees[n])
		}
	}
	// Every entry must mirror the corresponding edge's accumulators,
	// with runs sorted by ascending neighbor.
	for n := 0; n < csr.NumProfiles; n++ {
		prev := int32(-1)
		for p := csr.Offsets[n]; p < csr.Offsets[n+1]; p++ {
			v := csr.Neighbors[p]
			if v <= prev {
				t.Fatalf("node %d: neighbors not strictly ascending (%d after %d)", n, v, prev)
			}
			prev = v
			e := g.EdgeBetween(n, int(v))
			if e == nil {
				t.Fatalf("CSR edge (%d,%d) missing from Graph", n, v)
			}
			if csr.Common[p] != e.Common || csr.ARCS[p] != e.ARCS || csr.EntropySum[p] != e.EntropySum {
				t.Fatalf("edge (%d,%d): CSR stats (%d, %v, %v) != Graph (%d, %v, %v)",
					n, v, csr.Common[p], csr.ARCS[p], csr.EntropySum[p],
					e.Common, e.ARCS, e.EntropySum)
			}
		}
	}
	// Canonical iteration must enumerate exactly Edges, in order.
	i := 0
	csr.Canonical(func(u, v int32, p int64) {
		if i >= len(g.Edges) {
			t.Fatalf("Canonical enumerated more than %d edges", len(g.Edges))
		}
		if e := &g.Edges[i]; e.U != u || e.V != v {
			t.Fatalf("canonical edge %d = (%d,%d), want (%d,%d)", i, u, v, e.U, e.V)
		}
		i++
	})
	if i != len(g.Edges) {
		t.Fatalf("Canonical enumerated %d edges, want %d", i, len(g.Edges))
	}
}

func TestBuildCSRMatchesBuildOnPaperExample(t *testing.T) {
	c := blocking.TokenBlocking(datasets.PaperExample())
	checkCSRMatchesGraph(t, Build(c), BuildCSR(c))
}

func TestBuildCSRMatchesBuildOnRandomCollections(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		rng := stats.NewRNG(seed)
		for _, kind := range []model.Kind{model.Dirty, model.CleanClean} {
			c := blocking.RandomCollection(rng, kind, 40+rng.Intn(60), 25+rng.Intn(40))
			if err := c.Validate(); err != nil {
				t.Fatalf("seed %d: invalid random collection: %v", seed, err)
			}
			checkCSRMatchesGraph(t, Build(c), BuildCSR(c))
		}
	}
}

func TestBuildCSRParallelMatchesSerial(t *testing.T) {
	rng := stats.NewRNG(7)
	for _, kind := range []model.Kind{model.Dirty, model.CleanClean} {
		c := blocking.RandomCollection(rng, kind, 200, 150)
		serial := BuildCSR(c)
		for _, workers := range []int{0, 2, 3, 8} {
			par := BuildCSRParallel(c, workers)
			if len(par.Neighbors) != len(serial.Neighbors) {
				t.Fatalf("workers=%d: %d entries, want %d", workers, len(par.Neighbors), len(serial.Neighbors))
			}
			for i := range serial.Offsets {
				if par.Offsets[i] != serial.Offsets[i] {
					t.Fatalf("workers=%d: Offsets[%d] = %d, want %d", workers, i, par.Offsets[i], serial.Offsets[i])
				}
			}
			for i := range serial.Neighbors {
				if par.Neighbors[i] != serial.Neighbors[i] ||
					par.Common[i] != serial.Common[i] ||
					par.ARCS[i] != serial.ARCS[i] ||
					par.EntropySum[i] != serial.EntropySum[i] {
					t.Fatalf("workers=%d: entry %d differs", workers, i)
				}
			}
		}
	}
}

func TestBuildCSRSkipsComparisonFreeBlocks(t *testing.T) {
	c := &blocking.Collection{Kind: model.Dirty, NumProfiles: 4}
	c.Blocks = []blocking.Block{
		{Key: "single", P1: []int32{2}, Entropy: 1},   // no comparisons
		{Key: "pair", P1: []int32{0, 1}, Entropy: 1},  // one comparison
		{Key: "lonely", P1: []int32{3}, Entropy: 0.5}, // no comparisons
	}
	g := BuildCSR(c)
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
	if g.Degree(2) != 0 || g.Degree(3) != 0 {
		t.Error("singleton blocks should produce no adjacency")
	}
}

func TestBuildCSRRegistryDatasets(t *testing.T) {
	// Paper-shaped data at tiny scale: the CSR must agree with the
	// edge-list graph on a real token-blocked workload of each kind.
	for _, name := range []string{"ar1", "census"} {
		gen, err := datasets.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		c := blocking.CleanWorkflow(blocking.TokenBlocking(gen(0.05, 42)), 0.5, 0.8)
		checkCSRMatchesGraph(t, Build(c), BuildCSR(c))
	}
}

func TestReleaseStats(t *testing.T) {
	c := blocking.TokenBlocking(datasets.PaperExample())
	g := BuildCSR(c)
	g.ReleaseStats()
	if g.Common != nil || g.ARCS != nil || g.EntropySum != nil {
		t.Error("ReleaseStats should drop the accumulator arrays")
	}
	if len(g.Weights) != len(g.Neighbors) {
		t.Error("Weights must survive ReleaseStats")
	}
}

func TestCutRangesCoverAndBalance(t *testing.T) {
	rng := stats.NewRNG(3)
	offsets := make([]int64, 101)
	for i := 1; i < len(offsets); i++ {
		offsets[i] = offsets[i-1] + int64(rng.Intn(20))
	}
	n := len(offsets) - 1
	for _, workers := range []int{1, 2, 3, 7, 100} {
		bounds := cutRanges(offsets, workers)
		if bounds[0] != 0 || bounds[workers] != n {
			t.Fatalf("workers=%d: bounds do not cover: %v", workers, bounds)
		}
		for w := 0; w < workers; w++ {
			if bounds[w] > bounds[w+1] {
				t.Fatalf("workers=%d: bounds not monotone: %v", workers, bounds)
			}
		}
	}
}

// TestMirrorEntryMatchesCursor pins the two sanctioned mirror
// accessors to each other: the binary-search MirrorEntry must locate
// exactly the entry the CanonicalMirror cursor sweep yields, for every
// edge, in both directions.
func TestMirrorEntryMatchesCursor(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		rng := stats.NewRNG(seed * 31337)
		for _, kind := range []model.Kind{model.Dirty, model.CleanClean} {
			c := blocking.RandomCollection(rng, kind, 30+rng.Intn(50), 25+rng.Intn(25))
			g := BuildCSR(c)
			g.CanonicalMirror(func(u, v int32, p, mp int64) {
				if got := g.MirrorEntry(u, v); got != mp {
					t.Fatalf("MirrorEntry(%d,%d) = %d, cursor says %d", u, v, got, mp)
				}
				if got := g.MirrorEntry(v, u); got != p {
					t.Fatalf("MirrorEntry(%d,%d) = %d, canonical entry is %d", v, u, got, p)
				}
			})
		}
	}
}
