package graph

// Overlay is the mutable form of a CSR blocking graph: a frozen base plus
// copy-on-write row patches. Incremental meta-blocking needs three
// structural operations a flat CSR cannot do in place — append a new
// node's adjacency run, splice a new neighbor into an existing run, and
// replace a run's co-occurrence statistics after a block grows — so the
// overlay materializes only the touched rows, leaves the base arrays
// untouched for everything structural, and writes value changes
// (weights, retention marks) through to wherever a run currently lives.
// Once the materialized rows exceed a caller-chosen fraction of the base
// the overlay is compacted into a fresh flat CSR, restoring pure-array
// locality for the serving path.
//
// The overlay also carries the live collection-level statistics (block
// counts, |B|, ||B||) that weighting schemes consume, so a compacted
// overlay is byte-identical to a cold BuildCSR over the live collection
// — the invariant the incremental differential tests enforce.

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sort"
)

// Row is the materialized adjacency run of one node: the per-entry
// arrays of the CSR, row-local. Neighbors are sorted ascending, the
// invariant every CSR consumer relies on. Retained carries the caller's
// per-entry retention marks through splices and compaction; the graph
// package never interprets it.
type Row struct {
	Neighbors  []int32
	Common     []int32
	ARCS       []float64
	EntropySum []float64
	Weights    []float64
	Retained   []bool
}

// Len returns the number of entries of the row.
func (r *Row) Len() int { return len(r.Neighbors) }

// validate checks the structural invariants of a row owned by node
// `owner` in a graph of `nodes` profiles: parallel array lengths,
// strictly ascending in-range neighbors, no self loop.
func (r *Row) validate(owner int32, nodes int) error {
	n := len(r.Neighbors)
	if len(r.Common) != n || len(r.ARCS) != n || len(r.EntropySum) != n ||
		len(r.Weights) != n || len(r.Retained) != n {
		return fmt.Errorf("graph: row of node %d has unequal array lengths", owner)
	}
	for i, v := range r.Neighbors {
		if int(v) < 0 || int(v) >= nodes {
			return fmt.Errorf("graph: row of node %d: neighbor %d out of range [0,%d)", owner, v, nodes)
		}
		if v == owner {
			return fmt.Errorf("graph: row of node %d: self loop", owner)
		}
		if i > 0 && v <= r.Neighbors[i-1] {
			return fmt.Errorf("graph: row of node %d: neighbors not strictly ascending at %d", owner, i)
		}
	}
	return nil
}

// RunView is a read-only view of one node's adjacency run, uniform over
// base runs and overlay rows. The slices alias live storage and must not
// be retained across mutations.
type RunView struct {
	Neighbors  []int32
	Common     []int32
	ARCS       []float64
	EntropySum []float64
	Weights    []float64
	Retained   []bool
}

// Overlay wraps a base CSR with copy-on-write row patches and live
// collection-level statistics. It is not safe for concurrent use;
// callers serialize access.
type Overlay struct {
	base     *CSR
	retained []bool // base per-entry retention marks, parallel to base.Neighbors
	rows     map[int32]*Row

	numProfiles    int
	numEntries     int64 // live total entries (2x the edge count)
	overlayEntries int64 // sum of materialized row lengths

	blockCounts      []int32
	totalBlocks      int
	totalComparisons int64
}

// NewOverlay wraps a base CSR. retained is the caller's per-entry
// retention mask, parallel to base.Neighbors; the overlay takes
// ownership of it (write-through mutations target it directly). The
// base's collection-level statistics are copied and evolve with the
// overlay; the base's per-entry arrays are only written through SetWeight
// on unpatched runs.
func NewOverlay(base *CSR, retained []bool) *Overlay {
	if base.Spilled() {
		// The overlay's splice/write-through paths index the resident
		// arrays directly; a spilled base must be materialized first
		// (the index's mutation path does exactly that).
		panic("graph: NewOverlay over a spilled CSR")
	}
	return &Overlay{
		base:             base,
		retained:         retained,
		rows:             make(map[int32]*Row),
		numProfiles:      base.NumProfiles,
		numEntries:       int64(len(base.Neighbors)),
		blockCounts:      append([]int32(nil), base.BlockCounts...),
		totalBlocks:      base.TotalBlocks,
		totalComparisons: base.TotalComparisons,
	}
}

// Base returns the frozen base CSR.
func (o *Overlay) Base() *CSR { return o.base }

// NumProfiles returns the live node count (base plus appended rows).
func (o *Overlay) NumProfiles() int { return o.numProfiles }

// NumEdges returns the live number of distinct comparisons.
func (o *Overlay) NumEdges() int { return int(o.numEntries / 2) }

// TotalBlocks returns the live |B|.
func (o *Overlay) TotalBlocks() int { return o.totalBlocks }

// TotalComparisons returns the live ||B||.
func (o *Overlay) TotalComparisons() int64 { return o.totalComparisons }

// BlockCount returns the live |B_i| of a node.
func (o *Overlay) BlockCount(n int32) int32 { return o.blockCounts[n] }

// AddBlocks records newly created blocks in the live |B|.
func (o *Overlay) AddBlocks(n int) { o.totalBlocks += n }

// AddComparisons records a change of the live aggregate cardinality.
func (o *Overlay) AddComparisons(d int64) { o.totalComparisons += d }

// IncBlockCount records that an existing node joined one more block
// (a pending key materialized around it).
func (o *Overlay) IncBlockCount(n int32) { o.blockCounts[n]++ }

// OverlayEntries returns the number of entries held in materialized rows.
func (o *Overlay) OverlayEntries() int { return int(o.overlayEntries) }

// OverlayLoad returns the materialized-row entry count as a fraction of
// the base entry count (1 when the base is empty but rows exist) — the
// compaction trigger metric.
func (o *Overlay) OverlayLoad() float64 {
	if o.overlayEntries == 0 {
		return 0
	}
	if len(o.base.Neighbors) == 0 {
		return 1
	}
	return float64(o.overlayEntries) / float64(len(o.base.Neighbors))
}

// Degree returns the live |v_n|.
func (o *Overlay) Degree(n int32) int {
	if r, ok := o.rows[n]; ok {
		return r.Len()
	}
	return o.base.Degree(int(n))
}

// Run returns the live adjacency run of a node. Base runs with released
// co-occurrence statistics view nil stat slices.
func (o *Overlay) Run(n int32) RunView {
	if r, ok := o.rows[n]; ok {
		return RunView{
			Neighbors: r.Neighbors, Common: r.Common, ARCS: r.ARCS,
			EntropySum: r.EntropySum, Weights: r.Weights, Retained: r.Retained,
		}
	}
	lo, hi := o.base.Offsets[n], o.base.Offsets[n+1]
	v := RunView{
		Neighbors: o.base.Neighbors[lo:hi],
		Weights:   o.base.Weights[lo:hi],
		Retained:  o.retained[lo:hi],
	}
	if o.base.Common != nil {
		v.Common = o.base.Common[lo:hi]
		v.ARCS = o.base.ARCS[lo:hi]
		v.EntropySum = o.base.EntropySum[lo:hi]
	}
	return v
}

// FindNeighbor locates v in n's live run, returning its run-relative
// position.
func (o *Overlay) FindNeighbor(n, v int32) (int, bool) {
	neigh := o.Run(n).Neighbors
	i := sort.Search(len(neigh), func(i int) bool { return neigh[i] >= v })
	return i, i < len(neigh) && neigh[i] == v
}

// editableRow materializes (copy-on-write) the row of an existing node.
func (o *Overlay) editableRow(n int32) *Row {
	if r, ok := o.rows[n]; ok {
		return r
	}
	lo, hi := o.base.Offsets[n], o.base.Offsets[n+1]
	deg := int(hi - lo)
	r := &Row{
		Neighbors:  append(make([]int32, 0, deg+1), o.base.Neighbors[lo:hi]...),
		Common:     make([]int32, deg, deg+1),
		ARCS:       make([]float64, deg, deg+1),
		EntropySum: make([]float64, deg, deg+1),
		Weights:    append(make([]float64, 0, deg+1), o.base.Weights[lo:hi]...),
		Retained:   append(make([]bool, 0, deg+1), o.retained[lo:hi]...),
	}
	if o.base.Common != nil {
		copy(r.Common, o.base.Common[lo:hi])
		copy(r.ARCS, o.base.ARCS[lo:hi])
		copy(r.EntropySum, o.base.EntropySum[lo:hi])
	}
	o.rows[n] = r
	o.overlayEntries += int64(deg)
	return r
}

// AppendRow adds a new node with the given adjacency run and block
// count, returning the assigned node id (always the current NumProfiles).
// The row must reference only existing nodes; it is validated and the
// overlay takes ownership of it.
func (o *Overlay) AppendRow(r *Row, blockCount int32) (int32, error) {
	id := int32(o.numProfiles)
	if err := r.validate(id, o.numProfiles); err != nil {
		return 0, err
	}
	o.rows[id] = r
	o.numProfiles++
	o.numEntries += int64(r.Len())
	o.overlayEntries += int64(r.Len())
	o.blockCounts = append(o.blockCounts, blockCount)
	return id, nil
}

// Splice inserts neighbor v into u's run with the given co-occurrence
// statistics, preserving ascending neighbor order; the new entry starts
// with zero weight and a false retention mark. If v is already present
// its statistics are replaced and its weight and mark are preserved.
// Returns the run-relative position and whether a new entry was created.
func (o *Overlay) Splice(u, v int32, common int32, arcs, entropySum float64) (int, bool, error) {
	if int(u) < 0 || int(u) >= o.numProfiles {
		return 0, false, fmt.Errorf("graph: splice into out-of-range node %d", u)
	}
	if int(v) < 0 || int(v) >= o.numProfiles {
		return 0, false, fmt.Errorf("graph: splice of out-of-range neighbor %d", v)
	}
	if u == v {
		return 0, false, fmt.Errorf("graph: splice of self loop on node %d", u)
	}
	r := o.editableRow(u)
	i := sort.Search(len(r.Neighbors), func(i int) bool { return r.Neighbors[i] >= v })
	if i < len(r.Neighbors) && r.Neighbors[i] == v {
		r.Common[i], r.ARCS[i], r.EntropySum[i] = common, arcs, entropySum
		return i, false, nil
	}
	r.Neighbors = slices.Insert(r.Neighbors, i, v)
	r.Common = slices.Insert(r.Common, i, common)
	r.ARCS = slices.Insert(r.ARCS, i, arcs)
	r.EntropySum = slices.Insert(r.EntropySum, i, entropySum)
	r.Weights = slices.Insert(r.Weights, i, 0)
	r.Retained = slices.Insert(r.Retained, i, false)
	o.numEntries++
	o.overlayEntries++
	return i, true, nil
}

// ReplaceStats overwrites the co-occurrence statistics of a node's run
// (after blocks it belongs to grew), keeping weights and retention marks.
// The replacement arrays must cover exactly the run's current entries.
func (o *Overlay) ReplaceStats(n int32, common []int32, arcs, entropySum []float64) error {
	deg := o.Degree(n)
	if len(common) != deg || len(arcs) != deg || len(entropySum) != deg {
		return fmt.Errorf("graph: ReplaceStats(%d): %d stats for a run of %d entries", n, len(common), deg)
	}
	r := o.editableRow(n)
	copy(r.Common, common)
	copy(r.ARCS, arcs)
	copy(r.EntropySum, entropySum)
	return nil
}

// WeightAt returns the live weight of entry pos of node n's run.
func (o *Overlay) WeightAt(n int32, pos int) float64 { return o.Run(n).Weights[pos] }

// SetWeight writes a weight, through to the base arrays when the run is
// not materialized.
func (o *Overlay) SetWeight(n int32, pos int, w float64) {
	if r, ok := o.rows[n]; ok {
		r.Weights[pos] = w
		return
	}
	o.base.Weights[o.base.Offsets[n]+int64(pos)] = w
}

// RetainedAt returns the live retention mark of entry pos of node n.
func (o *Overlay) RetainedAt(n int32, pos int) bool { return o.Run(n).Retained[pos] }

// SetRetained writes a retention mark (write-through like SetWeight) and
// returns the previous value.
func (o *Overlay) SetRetained(n int32, pos int, v bool) bool {
	if r, ok := o.rows[n]; ok {
		old := r.Retained[pos]
		r.Retained[pos] = v
		return old
	}
	p := o.base.Offsets[n] + int64(pos)
	old := o.retained[p]
	o.retained[p] = v
	return old
}

// ForEachCanonical invokes fn for every canonical (u < v) live entry in
// ascending (u, v) order with its weight and retention mark — the order
// Pairs materialization and the streaming pruners use. Polls ctx at
// node-chunk granularity and at edge-segment granularity inside each
// run, so a hub row cannot delay cancellation arbitrarily.
func (o *Overlay) ForEachCanonical(ctx context.Context, fn func(u, v int32, w float64, retained bool)) error {
	budget := csrCancelCheckEvery
	for n := 0; n < o.numProfiles; n++ {
		if n%csrCancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		run := o.Run(int32(n))
		for i := 0; i < len(run.Neighbors); {
			seg := len(run.Neighbors) - i
			if seg > budget {
				seg = budget
			}
			for stop := i + seg; i < stop; i++ {
				if v := run.Neighbors[i]; int(v) > n {
					fn(int32(n), v, run.Weights[i], run.Retained[i])
				}
			}
			if budget -= seg; budget == 0 {
				budget = csrCancelCheckEvery
				if err := ctx.Err(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// errNoStats reports a base whose co-occurrence statistics were released:
// a mutable overlay cannot reweigh without them.
var errNoStats = errors.New("graph: overlay base has released co-occurrence statistics")

// Compact folds the base and the materialized rows into a fresh flat CSR
// (with live collection-level statistics) plus the flat retention mask
// parallel to its entries. The overlay is left unchanged; callers
// typically rewrap the result in a new overlay. The base must still
// carry its co-occurrence statistics.
func (o *Overlay) Compact(ctx context.Context) (*CSR, []bool, error) {
	if o.base.Common == nil && len(o.base.Neighbors) > 0 {
		return nil, nil, errNoStats
	}
	np := o.numProfiles
	g := &CSR{
		NumProfiles:      np,
		Offsets:          make([]int64, np+1),
		Neighbors:        make([]int32, 0, o.numEntries),
		Common:           make([]int32, 0, o.numEntries),
		ARCS:             make([]float64, 0, o.numEntries),
		EntropySum:       make([]float64, 0, o.numEntries),
		Weights:          make([]float64, 0, o.numEntries),
		BlockCounts:      append([]int32(nil), o.blockCounts...),
		TotalBlocks:      o.totalBlocks,
		TotalComparisons: o.totalComparisons,
	}
	retained := make([]bool, 0, o.numEntries)
	for n := 0; n < np; n++ {
		if n%csrCancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		run := o.Run(int32(n))
		g.Neighbors = append(g.Neighbors, run.Neighbors...)
		if run.Common != nil {
			g.Common = append(g.Common, run.Common...)
			g.ARCS = append(g.ARCS, run.ARCS...)
			g.EntropySum = append(g.EntropySum, run.EntropySum...)
		} else {
			// Empty base run with released stats: nothing to copy.
			//blast:allow ctxpoll -- zero-fill over one already-materialized run; the node-granularity poll above bounds the delay and this is memory-bandwidth work, not comparison work
			for range run.Neighbors {
				g.Common = append(g.Common, 0)
				g.ARCS = append(g.ARCS, 0)
				g.EntropySum = append(g.EntropySum, 0)
			}
		}
		g.Weights = append(g.Weights, run.Weights...)
		retained = append(retained, run.Retained...)
		g.Offsets[n+1] = int64(len(g.Neighbors))
	}
	return g, retained, nil
}
