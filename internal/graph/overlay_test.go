package graph

// Tests and fuzz targets for the mutable CSR overlay: structural
// invariants under run splices, row appends and compaction, checked
// against a map-based model graph. The fuzz targets drive randomized op
// streams — including malformed ones (out-of-range neighbors, self
// loops, duplicate splices, empty rows) — and assert that valid ops keep
// the overlay equal to the model while invalid ops error without
// mutating state.

import (
	"context"
	"testing"

	"blast/internal/blocking"
	"blast/internal/model"
	"blast/internal/stats"
)

// modelEntry mirrors one directed adjacency entry.
type modelEntry struct {
	common   int32
	arcs     float64
	entropy  float64
	weight   float64
	retained bool
}

// modelGraph is the reference implementation: directed entries keyed by
// (node, neighbor).
type modelGraph map[[2]int32]*modelEntry

// modelFromCSR seeds the model from a base CSR and retention mask.
func modelFromCSR(g *CSR, retained []bool) modelGraph {
	m := make(modelGraph)
	for n := 0; n < g.NumProfiles; n++ {
		for p := g.Offsets[n]; p < g.Offsets[n+1]; p++ {
			e := &modelEntry{weight: g.Weights[p], retained: retained[p]}
			if g.Common != nil {
				e.common, e.arcs, e.entropy = g.Common[p], g.ARCS[p], g.EntropySum[p]
			}
			m[[2]int32{int32(n), g.Neighbors[p]}] = e
		}
	}
	return m
}

// checkOverlayMatchesModel asserts every live run equals the model:
// strictly ascending neighbors, exact stats, weights and marks.
func checkOverlayMatchesModel(t *testing.T, o *Overlay, m modelGraph, nodes int) {
	t.Helper()
	if o.NumProfiles() != nodes {
		t.Fatalf("NumProfiles = %d, want %d", o.NumProfiles(), nodes)
	}
	entries := 0
	for n := 0; n < nodes; n++ {
		run := o.Run(int32(n))
		deg := 0
		for k := range m {
			if k[0] == int32(n) {
				deg++
			}
		}
		if len(run.Neighbors) != deg || o.Degree(int32(n)) != deg {
			t.Fatalf("node %d: run length %d, want %d", n, len(run.Neighbors), deg)
		}
		prev := int32(-1)
		for i, v := range run.Neighbors {
			if v <= prev {
				t.Fatalf("node %d: run not strictly ascending at %d", n, i)
			}
			prev = v
			e := m[[2]int32{int32(n), v}]
			if e == nil {
				t.Fatalf("node %d: unexpected neighbor %d", n, v)
			}
			if run.Common != nil && (run.Common[i] != e.common || run.ARCS[i] != e.arcs || run.EntropySum[i] != e.entropy) {
				t.Fatalf("entry (%d,%d): stats (%d,%v,%v), want (%d,%v,%v)",
					n, v, run.Common[i], run.ARCS[i], run.EntropySum[i], e.common, e.arcs, e.entropy)
			}
			if run.Weights[i] != e.weight || run.Retained[i] != e.retained {
				t.Fatalf("entry (%d,%d): w/ret (%v,%v), want (%v,%v)",
					n, v, run.Weights[i], run.Retained[i], e.weight, e.retained)
			}
			pos, ok := o.FindNeighbor(int32(n), v)
			if !ok || pos != i {
				t.Fatalf("FindNeighbor(%d,%d) = (%d,%v), want (%d,true)", n, v, pos, ok, i)
			}
			entries++
		}
	}
	if int64(entries) != 2*int64(o.NumEdges()) && entries != int(2*int64(o.NumEdges()))+entries%2 {
		// numEntries is directed-entry count; NumEdges floors halves.
		t.Fatalf("entry count %d inconsistent with NumEdges %d", entries, o.NumEdges())
	}
}

// checkCompacted compacts the overlay and asserts the flat CSR carries
// the same graph (offsets monotone, runs ascending, model equality), and
// that a rewrapped overlay still matches.
func checkCompacted(t *testing.T, o *Overlay, m modelGraph) (*Overlay, *CSR) {
	t.Helper()
	csr, retained, err := o.Compact(context.Background())
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if len(retained) != len(csr.Neighbors) {
		t.Fatalf("retained length %d, entries %d", len(retained), len(csr.Neighbors))
	}
	if csr.Offsets[0] != 0 || csr.Offsets[csr.NumProfiles] != int64(len(csr.Neighbors)) {
		t.Fatalf("offsets endpoints wrong: %d..%d of %d", csr.Offsets[0], csr.Offsets[csr.NumProfiles], len(csr.Neighbors))
	}
	for n := 0; n < csr.NumProfiles; n++ {
		if csr.Offsets[n+1] < csr.Offsets[n] {
			t.Fatalf("offsets not monotone at %d", n)
		}
	}
	no := NewOverlay(csr, retained)
	checkOverlayMatchesModel(t, no, m, csr.NumProfiles)
	return no, csr
}

// fuzzBase builds a small random base graph with weights and marks.
func fuzzBase(seed uint64, profiles, blocks int) (*CSR, []bool) {
	rng := stats.NewRNG(seed)
	c := blocking.RandomCollection(rng, model.Dirty, profiles, blocks)
	g := BuildCSR(c)
	retained := make([]bool, len(g.Neighbors))
	for i := range g.Weights {
		g.Weights[i] = rng.Float64() * 10
		retained[i] = rng.Intn(2) == 0
	}
	return g, retained
}

// byteCursor consumes fuzz bytes as bounded integers; exhaustion sets
// done and yields zeros so in-flight ops stay valid.
type byteCursor struct {
	data []byte
	pos  int
	done bool
}

func (b *byteCursor) next(n int) int {
	if b.pos >= len(b.data) {
		b.done = true
		return 0
	}
	if n <= 0 {
		return 0
	}
	v := int(b.data[b.pos]) % n
	b.pos++
	return v
}

// runOverlayOps drives an op stream derived from fuzz bytes against an
// overlay and its model, checking equality after every op.
func runOverlayOps(t *testing.T, data []byte, compactible bool) {
	if len(data) < 2 {
		return
	}
	cur := &byteCursor{data: data}
	g, retained := fuzzBase(uint64(data[0])<<8|uint64(data[1]), 6+cur.next(10), 4+cur.next(12))
	m := modelFromCSR(g, retained)
	o := NewOverlay(g, retained)
	nodes := o.NumProfiles()

	for !cur.done {
		switch cur.next(8) {
		case 0: // append a new node's row (sometimes empty)
			deg := cur.next(5)
			row := &Row{}
			prev := -1
			for i := 0; i < deg; i++ {
				v := prev + 1 + cur.next(3)
				if v >= nodes {
					break
				}
				prev = v
				row.Neighbors = append(row.Neighbors, int32(v))
				row.Common = append(row.Common, int32(1+cur.next(3)))
				row.ARCS = append(row.ARCS, float64(cur.next(16)))
				row.EntropySum = append(row.EntropySum, float64(cur.next(8)))
				row.Weights = append(row.Weights, 0)
				row.Retained = append(row.Retained, false)
			}
			id, err := o.AppendRow(row, int32(row.Len()))
			if err != nil {
				t.Fatalf("valid AppendRow failed: %v", err)
			}
			if int(id) != nodes {
				t.Fatalf("AppendRow id = %d, want %d", id, nodes)
			}
			for i, v := range row.Neighbors {
				m[[2]int32{id, v}] = &modelEntry{common: row.Common[i], arcs: row.ARCS[i], entropy: row.EntropySum[i]}
			}
			nodes++
		case 1: // malformed append: self loop / out of range / unsorted
			bad := &Row{
				Neighbors:  []int32{int32(nodes + cur.next(3))},
				Common:     []int32{1},
				ARCS:       []float64{1},
				EntropySum: []float64{0},
				Weights:    []float64{0},
				Retained:   []bool{false},
			}
			if cur.next(2) == 0 && nodes >= 2 {
				bad.Neighbors = []int32{1, 0} // unsorted, wrong array lengths too
			}
			if _, err := o.AppendRow(bad, 1); err == nil {
				t.Fatal("malformed AppendRow accepted")
			}
			if o.NumProfiles() != nodes {
				t.Fatal("failed AppendRow mutated the overlay")
			}
		case 2: // valid splice (replace when present)
			if nodes < 2 {
				continue
			}
			u := int32(cur.next(nodes))
			v := int32(cur.next(nodes))
			if u == v {
				continue
			}
			common := int32(1 + cur.next(4))
			arcs := float64(cur.next(16))
			h := float64(cur.next(4))
			pos, inserted, err := o.Splice(u, v, common, arcs, h)
			if err != nil {
				t.Fatalf("valid Splice(%d,%d): %v", u, v, err)
			}
			key := [2]int32{u, v}
			if e := m[key]; e == nil {
				if !inserted {
					t.Fatalf("Splice(%d,%d) reported replace of a missing entry", u, v)
				}
				m[key] = &modelEntry{common: common, arcs: arcs, entropy: h}
			} else {
				if inserted {
					t.Fatalf("Splice(%d,%d) duplicated an entry", u, v)
				}
				e.common, e.arcs, e.entropy = common, arcs, h
			}
			if got := o.Run(u).Neighbors[pos]; got != v {
				t.Fatalf("Splice position %d holds %d, want %d", pos, got, v)
			}
		case 3: // malformed splice: self loop or out-of-range endpoint
			u := int32(cur.next(nodes))
			v := u
			if cur.next(2) == 0 {
				v = int32(nodes + cur.next(5))
			}
			if _, _, err := o.Splice(u, v, 1, 0, 0); err == nil {
				t.Fatalf("malformed Splice(%d,%d) accepted", u, v)
			}
		case 4: // write-through weight
			u := int32(cur.next(nodes))
			run := o.Run(u)
			if len(run.Neighbors) == 0 {
				continue
			}
			pos := cur.next(len(run.Neighbors))
			w := float64(cur.next(32))
			o.SetWeight(u, pos, w)
			m[[2]int32{u, run.Neighbors[pos]}].weight = w
			if o.WeightAt(u, pos) != w {
				t.Fatal("SetWeight not observed")
			}
		case 5: // write-through retention mark
			u := int32(cur.next(nodes))
			run := o.Run(u)
			if len(run.Neighbors) == 0 {
				continue
			}
			pos := cur.next(len(run.Neighbors))
			val := cur.next(2) == 0
			e := m[[2]int32{u, run.Neighbors[pos]}]
			if old := o.SetRetained(u, pos, val); old != e.retained {
				t.Fatalf("SetRetained returned %v, want %v", old, e.retained)
			}
			e.retained = val
			if o.RetainedAt(u, pos) != val {
				t.Fatal("SetRetained not observed")
			}
		case 6: // stats bookkeeping ops
			o.AddBlocks(cur.next(3))
			o.AddComparisons(int64(cur.next(5)))
			o.IncBlockCount(int32(cur.next(nodes)))
		case 7: // compaction checkpoint
			if compactible {
				o, _ = checkCompacted(t, o, m)
			}
		}
	}
	checkOverlayMatchesModel(t, o, m, nodes)
	checkCompacted(t, o, m)
}

// FuzzOverlaySplice fuzzes the run-splice and row-append ops (with
// malformed variants) against the model graph.
func FuzzOverlaySplice(f *testing.F) {
	f.Add([]byte{1, 2, 0, 2, 4, 2, 0, 0, 2, 2, 2})
	f.Add([]byte{9, 0, 2, 2, 2, 3, 3, 1, 0, 5, 4, 6, 2, 2})
	f.Add([]byte{200, 17, 0, 4, 1, 1, 2, 5, 4, 3, 2, 2, 2, 2, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		runOverlayOps(t, data, false)
	})
}

// FuzzOverlayCompaction interleaves compaction checkpoints into the op
// stream, so base/overlay boundaries land in arbitrary states.
func FuzzOverlayCompaction(f *testing.F) {
	f.Add([]byte{3, 4, 2, 2, 7, 2, 0, 7, 2, 5, 7})
	f.Add([]byte{77, 1, 0, 0, 7, 2, 2, 7, 4, 5, 6, 7, 2, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		runOverlayOps(t, data, true)
	})
}

// TestOverlayOpsDeterministic replays the fuzz corpus shapes as ordinary
// tests (the fuzz engine only runs them under -fuzz).
func TestOverlayOpsDeterministic(t *testing.T) {
	seeds := [][]byte{
		{1, 2, 0, 2, 4, 2, 0, 0, 2, 2, 2},
		{9, 0, 2, 2, 2, 3, 3, 1, 0, 5, 4, 6, 2, 2},
		{200, 17, 0, 4, 1, 1, 2, 5, 4, 3, 2, 2, 2, 2, 0},
		{3, 4, 2, 2, 7, 2, 0, 7, 2, 5, 7},
		{77, 1, 0, 0, 7, 2, 2, 7, 4, 5, 6, 7, 2, 7},
		{42, 42, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 7, 0, 0, 0, 7, 5, 5, 5},
	}
	for i, s := range seeds {
		s := s
		t.Run(string(rune('a'+i)), func(t *testing.T) {
			runOverlayOps(t, s, true)
		})
	}
	// Longer pseudo-random streams for coverage breadth.
	rng := stats.NewRNG(1234)
	for i := 0; i < 20; i++ {
		data := make([]byte, 40+rng.Intn(120))
		for j := range data {
			data[j] = byte(rng.Intn(256))
		}
		runOverlayOps(t, data, true)
	}
}

// TestOverlayViewsMatchBase: a fresh overlay must serve exactly the base
// runs, and overlay bookkeeping must start at the base totals.
func TestOverlayViewsMatchBase(t *testing.T) {
	g, retained := fuzzBase(7, 12, 20)
	o := NewOverlay(g, retained)
	if o.NumProfiles() != g.NumProfiles || o.NumEdges() != g.NumEdges() {
		t.Fatalf("overlay totals (%d,%d) != base (%d,%d)", o.NumProfiles(), o.NumEdges(), g.NumProfiles, g.NumEdges())
	}
	if o.TotalBlocks() != g.TotalBlocks || o.TotalComparisons() != g.TotalComparisons {
		t.Fatal("collection totals not copied")
	}
	if o.OverlayEntries() != 0 || o.OverlayLoad() != 0 {
		t.Fatal("fresh overlay reports materialized rows")
	}
	checkOverlayMatchesModel(t, o, modelFromCSR(g, retained), g.NumProfiles)
	// Canonical iteration covers each edge exactly once with u < v.
	seen := 0
	err := o.ForEachCanonical(context.Background(), func(u, v int32, w float64, ret bool) {
		if u >= v {
			t.Fatalf("non-canonical visit (%d,%d)", u, v)
		}
		seen++
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != g.NumEdges() {
		t.Fatalf("canonical visits %d, want %d", seen, g.NumEdges())
	}
}

// TestOverlayReplaceStats validates the length contract and value
// replacement of ReplaceStats.
func TestOverlayReplaceStats(t *testing.T) {
	g, retained := fuzzBase(11, 8, 14)
	o := NewOverlay(g, retained)
	var n int32 = -1
	for i := 0; i < g.NumProfiles; i++ {
		if g.Degree(i) > 0 {
			n = int32(i)
			break
		}
	}
	if n < 0 {
		t.Skip("no edges in base")
	}
	deg := o.Degree(n)
	if err := o.ReplaceStats(n, make([]int32, deg+1), make([]float64, deg+1), make([]float64, deg+1)); err == nil {
		t.Fatal("length mismatch accepted")
	}
	common := make([]int32, deg)
	arcs := make([]float64, deg)
	h := make([]float64, deg)
	for i := range common {
		common[i] = int32(i + 1)
		arcs[i] = float64(i) * 0.5
		h[i] = float64(i) * 0.25
	}
	oldW := append([]float64(nil), o.Run(n).Weights...)
	if err := o.ReplaceStats(n, common, arcs, h); err != nil {
		t.Fatal(err)
	}
	run := o.Run(n)
	for i := range common {
		if run.Common[i] != common[i] || run.ARCS[i] != arcs[i] || run.EntropySum[i] != h[i] {
			t.Fatalf("stats not replaced at %d", i)
		}
		if run.Weights[i] != oldW[i] {
			t.Fatal("ReplaceStats disturbed weights")
		}
	}
}

// TestOverlayCompactReleasedStats: a base whose co-occurrence stats were
// released cannot compact (the mutable index never releases them).
func TestOverlayCompactReleasedStats(t *testing.T) {
	g, retained := fuzzBase(13, 10, 16)
	if g.NumEdges() == 0 {
		t.Skip("no edges")
	}
	g.ReleaseStats()
	o := NewOverlay(g, retained)
	if _, _, err := o.Compact(context.Background()); err == nil {
		t.Fatal("Compact over released stats should error")
	}
}

// TestOverlayCompactCancellation: a cancelled context aborts compaction.
func TestOverlayCompactCancellation(t *testing.T) {
	g, retained := fuzzBase(17, 2100, 300)
	o := NewOverlay(g, retained)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := o.Compact(ctx); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
