package graph

// Beyond-RAM CSR: the spilled form of the blocking graph. The per-entry
// arrays (Neighbors, the co-occurrence stats, Weights) are cut into
// node-aligned pages and written as CRC-framed segments (internal/
// store); Offsets, BlockCounts and all node-level state stay resident.
// Pages load back through a bounded LRU cache, so the resident footprint
// of a spilled graph is O(nodes) + the cache capacity instead of
// O(entries).
//
// Pages are cut only at node boundaries, so one adjacency run never
// straddles two pages and Run(u) is always a sub-slice of a single
// decoded page — which is exactly the access shape of the streaming
// pruning passes (ascending node sweeps) and of the chunked parallel
// pruner (contiguous node ranges). A hub node whose run exceeds the
// page target simply gets a larger page of its own.
//
// Read failures are sticky: a page that fails validation (a named
// internal/store error — corruption fails closed, never yields
// plausible bytes) records itself on the CSR, the failing access
// observes zeroed entries, and every build/prune entry point checks
// Err() before trusting its output. That keeps the hot accessors free
// of error returns without ever letting a corrupt build complete
// silently.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"sync"

	"blast/internal/blocking"
	"blast/internal/store"
)

// SpillOptions configures BuildCSRSpillCtx.
type SpillOptions struct {
	// Dir is the directory that hosts the spill segment files; each
	// build creates a unique subdirectory inside it, removed by Close.
	// Empty uses the operating system's temp directory.
	Dir string
	// MemoryBudget bounds the resident per-entry adjacency bytes of the
	// build: the builder accumulates in memory exactly like BuildCSR
	// until the adjacency would exceed the budget, then flushes every
	// page to disk and streams the rest. <= 0 spills from the first
	// page. A build that never exceeds the budget returns a plain
	// resident CSR.
	MemoryBudget int64
	// PageEntries is the target adjacency entries per page (pages are
	// cut at the first node boundary at or past it); 0 uses 64Ki.
	PageEntries int
	// CacheBytes bounds the decoded-page LRU cache; 0 derives a default
	// from MemoryBudget (a quarter of it, clamped to [1MiB, 256MiB]).
	CacheBytes int64
}

const defaultPageEntries = 1 << 16

func (o SpillOptions) pageEntries() int {
	if o.PageEntries > 0 {
		return o.PageEntries
	}
	return defaultPageEntries
}

func (o SpillOptions) cacheBytes() int64 {
	if o.CacheBytes > 0 {
		return o.CacheBytes
	}
	const mib = 1 << 20
	c := o.MemoryBudget / 4
	if c < mib {
		c = mib
	}
	if c > 256*mib {
		c = 256 * mib
	}
	return c
}

// spillEntryBytes is the resident per-entry cost the memory budget is
// compared against during a build: neighbor id + common count + ARCS +
// entropy sum (weights do not exist yet at build time).
const spillEntryBytes = 4 + 4 + 8 + 8

// Streams of a spilled CSR; each is one segment file, page i of the
// graph = frame i of every stream.
const (
	streamNbr = iota
	streamCommon
	streamARCS
	streamEnt
	streamWts
	numStreams
)

var streamNames = [numStreams]string{"neighbors", "common", "arcs", "entropy", "weights"}

// pagedEntries is the spilled backing of a CSR's per-entry arrays.
type pagedEntries struct {
	dir     string
	ownsDir bool
	arenas  [numStreams]*store.FileArena
	cache   *store.Cache
	// Page p covers nodes [startNode[p], startNode[p+1]) and entries
	// [startEntry[p], startEntry[p+1]); nodePage maps node -> page.
	startNode  []int32
	startEntry []int64
	nodePage   []int32

	mu  sync.Mutex
	err error
}

func (pg *pagedEntries) pages() int { return len(pg.startEntry) - 1 }

func (pg *pagedEntries) noteErr(err error) {
	pg.mu.Lock()
	if pg.err == nil {
		pg.err = err
	}
	pg.mu.Unlock()
}

func (pg *pagedEntries) readErr() error {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	return pg.err
}

func cacheKey(stream, page int) uint64 {
	return uint64(stream)<<48 | uint64(uint32(page))
}

func (pg *pagedEntries) pageLen(page int) int {
	return int(pg.startEntry[page+1] - pg.startEntry[page])
}

// loadInt32s loads and decodes one page of an int32 stream, bypassing
// the cache (used by the streaming weigh pass).
func (pg *pagedEntries) loadInt32s(stream, page int, scratch []byte) ([]int32, []byte, error) {
	buf, err := pg.arenas[stream].Load(page, scratch)
	if err != nil {
		return nil, scratch, err
	}
	n := pg.pageLen(page)
	s, err := decodeInt32s(buf, n)
	if err != nil {
		return nil, buf, fmt.Errorf("%s page %d: %w", streamNames[stream], page, err)
	}
	return s, buf, nil
}

func (pg *pagedEntries) loadFloat64s(stream, page int, scratch []byte) ([]float64, []byte, error) {
	buf, err := pg.arenas[stream].Load(page, scratch)
	if err != nil {
		return nil, scratch, err
	}
	n := pg.pageLen(page)
	s, err := decodeFloat64s(buf, n)
	if err != nil {
		return nil, buf, fmt.Errorf("%s page %d: %w", streamNames[stream], page, err)
	}
	return s, buf, nil
}

// pageInt32s returns one decoded page of an int32 stream through the
// shared cache. On a read failure it records the sticky error and
// returns a zeroed page so callers keep their shape.
func (pg *pagedEntries) pageInt32s(stream, page int) []int32 {
	v, err := pg.cache.Get(cacheKey(stream, page), func() (any, int64, error) {
		s, _, err := pg.loadInt32s(stream, page, nil)
		if err != nil {
			return nil, 0, err
		}
		return s, int64(len(s)) * 4, nil
	})
	if err != nil {
		pg.noteErr(err)
		return make([]int32, pg.pageLen(page))
	}
	return v.([]int32)
}

func (pg *pagedEntries) pageFloat64s(stream, page int) []float64 {
	v, err := pg.cache.Get(cacheKey(stream, page), func() (any, int64, error) {
		s, _, err := pg.loadFloat64s(stream, page, nil)
		if err != nil {
			return nil, 0, err
		}
		return s, int64(len(s)) * 8, nil
	})
	if err != nil {
		pg.noteErr(err)
		return make([]float64, pg.pageLen(page))
	}
	return v.([]float64)
}

// run returns node u's adjacency slices out of its page. wts is nil
// until the graph has been weighted.
func (pg *pagedEntries) run(u int, lo, hi int64) (nbr []int32, wts []float64) {
	if lo == hi {
		return nil, nil
	}
	p := int(pg.nodePage[u])
	base := pg.startEntry[p]
	nbr = pg.pageInt32s(streamNbr, p)[lo-base : hi-base]
	if pg.arenas[streamWts] != nil {
		wts = pg.pageFloat64s(streamWts, p)[lo-base : hi-base]
	}
	return nbr, wts
}

func (pg *pagedEntries) close() error {
	var errs []error
	for i, a := range pg.arenas {
		if a == nil {
			continue
		}
		pg.arenas[i] = nil
		if err := a.CloseAndRemove(); err != nil {
			errs = append(errs, err)
		}
	}
	if pg.ownsDir && pg.dir != "" {
		if err := os.Remove(pg.dir); err != nil && !os.IsNotExist(err) {
			errs = append(errs, err)
		}
		pg.dir = ""
	}
	return errors.Join(errs...)
}

// releaseStats closes and deletes the co-occurrence stat streams; the
// adjacency and weights streams stay.
func (pg *pagedEntries) releaseStats() {
	for _, s := range []int{streamCommon, streamARCS, streamEnt} {
		if a := pg.arenas[s]; a != nil {
			pg.arenas[s] = nil
			if err := a.CloseAndRemove(); err != nil {
				pg.noteErr(err)
			}
		}
	}
}

// ---- typed payload codec ------------------------------------------------

func appendInt32s(dst []byte, s []int32) []byte {
	for _, v := range s {
		u := uint32(v)
		dst = append(dst, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
	}
	return dst
}

func appendFloat64s(dst []byte, s []float64) []byte {
	for _, v := range s {
		u := math.Float64bits(v)
		dst = append(dst, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	}
	return dst
}

func decodeInt32s(b []byte, n int) ([]int32, error) {
	if len(b) != n*4 {
		return nil, fmt.Errorf("%w: %d payload bytes for %d int32 entries", store.ErrCorruptSegment, len(b), n)
	}
	s := make([]int32, n)
	for i := range s {
		o := i * 4
		s[i] = int32(uint32(b[o]) | uint32(b[o+1])<<8 | uint32(b[o+2])<<16 | uint32(b[o+3])<<24)
	}
	return s, nil
}

func decodeFloat64s(b []byte, n int) ([]float64, error) {
	if len(b) != n*8 {
		return nil, fmt.Errorf("%w: %d payload bytes for %d float64 entries", store.ErrCorruptSegment, len(b), n)
	}
	s := make([]float64, n)
	for i := range s {
		o := i * 8
		s[i] = math.Float64frombits(uint64(b[o]) | uint64(b[o+1])<<8 | uint64(b[o+2])<<16 |
			uint64(b[o+3])<<24 | uint64(b[o+4])<<32 | uint64(b[o+5])<<40 |
			uint64(b[o+6])<<48 | uint64(b[o+7])<<56)
	}
	return s, nil
}

// ---- spilled accessors on CSR -------------------------------------------

// Spilled reports whether the per-entry arrays are file-backed. The
// node-level arrays (Offsets, BlockCounts) are always resident.
func (g *CSR) Spilled() bool { return g.pages != nil }

// Err returns the first page read/decode failure observed on a spilled
// graph (nil for resident graphs and healthy spilled ones). Reads from
// a failing page observe zeroed entries so hot accessors stay free of
// error returns; every pass that consumes a spilled graph must check
// Err before trusting its output — the build and prune entry points do.
func (g *CSR) Err() error {
	if g.pages == nil {
		return nil
	}
	return g.pages.readErr()
}

// Close releases the spill segment files of a file-backed graph (no-op
// for resident graphs). The graph must not be accessed afterwards.
func (g *CSR) Close() error {
	if g.pages == nil {
		return nil
	}
	pg := g.pages
	g.pages = nil
	return pg.close()
}

// CacheStats returns the page-cache counters of a spilled graph (zero
// for resident graphs, which have no cache).
func (g *CSR) CacheStats() store.CacheStats {
	if g.pages == nil {
		return store.CacheStats{}
	}
	return g.pages.cache.Stats()
}

// SpillBytes returns the on-disk footprint of a spilled graph's open
// segment files (0 for resident graphs).
func (g *CSR) SpillBytes() int64 {
	if g.pages == nil {
		return 0
	}
	var total int64
	for _, a := range g.pages.arenas {
		if a == nil {
			continue
		}
		if fi, err := os.Stat(a.Path()); err == nil {
			total += fi.Size()
		}
	}
	return total
}

// MaterializeWeights returns the full per-entry weight array, reading
// every weights page of a spilled graph (for resident graphs it is
// simply Weights). It is the bridge back to residency: the first
// mutation of a spilled index rebuilds a resident CSR and carries the
// weights over through this call.
func (g *CSR) MaterializeWeights() ([]float64, error) {
	if g.pages == nil {
		return g.Weights, nil
	}
	if g.pages.arenas[streamWts] == nil {
		return nil, errors.New("graph: spilled CSR has no weights stream")
	}
	out := make([]float64, g.NumEntries())
	var scratch []byte
	for p := 0; p < g.pages.pages(); p++ {
		s, sc, err := g.pages.loadFloat64s(streamWts, p, scratch)
		if err != nil {
			return nil, err
		}
		scratch = sc
		copy(out[g.pages.startEntry[p]:], s)
	}
	return out, nil
}

// WeighSpilled streams every adjacency entry of a spilled graph through
// fn — in storage order, with the entry's co-occurrence statistics —
// and persists the returned weights page by page. It is the spilled
// counterpart of a weighting scheme's in-place resident pass
// (weights.Scheme.ApplyCSR): fn must compute the weight with its
// arguments in canonical (u < v) orientation so both entries of an edge
// carry bit-identical values, exactly as ApplyOwnedCSR already does for
// owned-rows graphs.
func (g *CSR) WeighSpilled(fn func(u, v int32, common int32, arcs, entropySum float64) float64) error {
	pg := g.pages
	if pg == nil {
		return errors.New("graph: WeighSpilled on a resident CSR")
	}
	// Failures are sticky (Err) in addition to being returned: weighting
	// runs inside passes whose callers consult Err once at the end.
	err := g.weighSpilled(pg, fn)
	if err != nil {
		pg.noteErr(err)
	}
	return err
}

func (g *CSR) weighSpilled(pg *pagedEntries, fn func(u, v int32, common int32, arcs, entropySum float64) float64) error {
	wts, err := store.CreateFile(pg.arenas[streamNbr].Path() + ".wts")
	if err != nil {
		return err
	}
	var nbrScratch, comScratch, arcsScratch, entScratch, encBuf []byte
	wbuf := make([]float64, 0, defaultPageEntries)
	for p := 0; p < pg.pages(); p++ {
		nbr, sc1, err := pg.loadInt32s(streamNbr, p, nbrScratch)
		if err != nil {
			return errors.Join(err, wts.CloseAndRemove())
		}
		nbrScratch = sc1
		com, sc2, err := pg.loadInt32s(streamCommon, p, comScratch)
		if err != nil {
			return errors.Join(err, wts.CloseAndRemove())
		}
		comScratch = sc2
		arcs, sc3, err := pg.loadFloat64s(streamARCS, p, arcsScratch)
		if err != nil {
			return errors.Join(err, wts.CloseAndRemove())
		}
		arcsScratch = sc3
		ent, sc4, err := pg.loadFloat64s(streamEnt, p, entScratch)
		if err != nil {
			return errors.Join(err, wts.CloseAndRemove())
		}
		entScratch = sc4

		wbuf = wbuf[:0]
		base := pg.startEntry[p]
		for u := int(pg.startNode[p]); u < int(pg.startNode[p+1]); u++ {
			for e := g.Offsets[u]; e < g.Offsets[u+1]; e++ {
				i := e - base
				wbuf = append(wbuf, fn(int32(u), nbr[i], com[i], arcs[i], ent[i]))
			}
		}
		encBuf = appendFloat64s(encBuf[:0], wbuf)
		if _, err := wts.Append(encBuf); err != nil {
			return errors.Join(err, wts.CloseAndRemove())
		}
	}
	pg.arenas[streamWts] = wts
	return nil
}

// ---- spill builder -------------------------------------------------------

// spillBuilder accumulates node-aligned pages during a build: resident
// page buffers until the memory budget is exceeded, segment files from
// then on.
type spillBuilder struct {
	opt     SpillOptions
	target  int
	g       *CSR
	pg      *pagedEntries
	spilled bool

	// Completed pages still resident (pre-spill), in page order.
	done []pageBuf
	// The open page.
	cur pageBuf
	// Total entries appended (across done, flushed and cur).
	entries int64
	encBuf  []byte
}

type pageBuf struct {
	nbr    []int32
	common []int32
	arcs   []float64
	ent    []float64
}

func (b *pageBuf) len() int { return len(b.nbr) }

// appendRun appends one node's accumulated run to the open page.
func (sb *spillBuilder) appendRun(acc *nodeAcc) error {
	for _, j := range acc.touched {
		sb.cur.nbr = append(sb.cur.nbr, j)
		sb.cur.common = append(sb.cur.common, acc.common[j])
		sb.cur.arcs = append(sb.cur.arcs, acc.arcs[j])
		sb.cur.ent = append(sb.cur.ent, acc.entropy[j])
	}
	sb.entries += int64(len(acc.touched))
	return nil
}

// closeNode seals the node boundary after node u's run was appended:
// the open page is cut if it reached the target, and the build switches
// to spilling if the resident adjacency exceeded the budget.
func (sb *spillBuilder) closeNode(u int) error {
	cut := sb.cur.len() >= sb.target
	if cut {
		if err := sb.sealPage(u + 1); err != nil {
			return err
		}
	}
	if !sb.spilled && sb.entries*spillEntryBytes > sb.opt.MemoryBudget {
		if err := sb.beginSpill(); err != nil {
			return err
		}
	}
	return nil
}

// sealPage closes the open page at node boundary nextNode.
func (sb *spillBuilder) sealPage(nextNode int) error {
	sb.pg.startNode = append(sb.pg.startNode, int32(nextNode))
	sb.pg.startEntry = append(sb.pg.startEntry, sb.pg.startEntry[len(sb.pg.startEntry)-1]+int64(sb.cur.len()))
	if sb.spilled {
		if err := sb.flushPage(&sb.cur); err != nil {
			return err
		}
		sb.cur = pageBuf{nbr: sb.cur.nbr[:0], common: sb.cur.common[:0], arcs: sb.cur.arcs[:0], ent: sb.cur.ent[:0]}
	} else {
		sb.done = append(sb.done, sb.cur)
		sb.cur = pageBuf{}
	}
	return nil
}

func (sb *spillBuilder) flushPage(p *pageBuf) error {
	sb.encBuf = appendInt32s(sb.encBuf[:0], p.nbr)
	if _, err := sb.pg.arenas[streamNbr].Append(sb.encBuf); err != nil {
		return err
	}
	sb.encBuf = appendInt32s(sb.encBuf[:0], p.common)
	if _, err := sb.pg.arenas[streamCommon].Append(sb.encBuf); err != nil {
		return err
	}
	sb.encBuf = appendFloat64s(sb.encBuf[:0], p.arcs)
	if _, err := sb.pg.arenas[streamARCS].Append(sb.encBuf); err != nil {
		return err
	}
	sb.encBuf = appendFloat64s(sb.encBuf[:0], p.ent)
	if _, err := sb.pg.arenas[streamEnt].Append(sb.encBuf); err != nil {
		return err
	}
	return nil
}

// beginSpill creates the segment files and flushes every page built so
// far, releasing their resident buffers.
func (sb *spillBuilder) beginSpill() error {
	dir, err := os.MkdirTemp(sb.opt.Dir, "blast-spill-*")
	if err != nil {
		return err
	}
	sb.pg.dir, sb.pg.ownsDir = dir, true
	for _, s := range []int{streamNbr, streamCommon, streamARCS, streamEnt} {
		a, err := store.CreateFile(dir + "/" + streamNames[s] + ".seg")
		if err != nil {
			return err
		}
		sb.pg.arenas[s] = a
	}
	sb.spilled = true
	for i := range sb.done {
		if err := sb.flushPage(&sb.done[i]); err != nil {
			return err
		}
		sb.done[i] = pageBuf{}
	}
	sb.done = nil
	return nil
}

// abort releases everything a failed build accumulated.
func (sb *spillBuilder) abort() {
	if sb.pg != nil {
		_ = sb.pg.close()
	}
}

// BuildCSRSpill is BuildCSRSpillCtx with a background context.
func BuildCSRSpill(c *blocking.Collection, opt SpillOptions) (*CSR, error) {
	return BuildCSRSpillCtx(context.Background(), c, opt)
}

// BuildCSRSpillCtx constructs the same graph as BuildCSR — per-entry
// values bit-identical, since the per-node accumulation loop is shared
// — under a resident-memory budget: the adjacency accumulates in
// node-aligned pages that spill to CRC-framed segment files once the
// budget is exceeded. A build that stays under the budget returns a
// plain resident CSR; one that exceeds it returns a spilled CSR whose
// per-entry arrays page in through a bounded cache (see SpillOptions).
// Spilled graphs must be Closed to release their segment files.
func BuildCSRSpillCtx(ctx context.Context, c *blocking.Collection, opt SpillOptions) (*CSR, error) {
	g := newCSRHeader(c)
	ix := buildBlockIndex(c, g.BlockCounts)
	inv := blockInverses(c)
	acc := newNodeAcc(c.NumProfiles)
	sb := &spillBuilder{
		opt:    opt,
		target: opt.pageEntries(),
		g:      g,
		pg:     &pagedEntries{startNode: []int32{0}, startEntry: []int64{0}},
	}
	if opt.MemoryBudget <= 0 {
		// Spill from the start: create the arenas before the first page.
		if err := sb.beginSpill(); err != nil {
			sb.abort()
			return nil, err
		}
	}
	for n := 0; n < c.NumProfiles; n++ {
		if n%csrCancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				sb.abort()
				return nil, err
			}
		}
		acc.accumulate(c, inv, &ix, int32(n))
		if err := sb.appendRun(acc); err != nil {
			sb.abort()
			return nil, err
		}
		g.Offsets[n+1] = sb.entries
		acc.reset()
		if err := sb.closeNode(n); err != nil {
			sb.abort()
			return nil, err
		}
	}
	if !sb.spilled {
		// The budget was never exceeded: concatenate the page buffers
		// into the flat resident arrays of a plain BuildCSR result.
		g.Neighbors = make([]int32, 0, sb.entries)
		g.Common = make([]int32, 0, sb.entries)
		g.ARCS = make([]float64, 0, sb.entries)
		g.EntropySum = make([]float64, 0, sb.entries)
		for i := range sb.done {
			g.Neighbors = append(g.Neighbors, sb.done[i].nbr...)
			g.Common = append(g.Common, sb.done[i].common...)
			g.ARCS = append(g.ARCS, sb.done[i].arcs...)
			g.EntropySum = append(g.EntropySum, sb.done[i].ent...)
			sb.done[i] = pageBuf{}
		}
		g.Neighbors = append(g.Neighbors, sb.cur.nbr...)
		g.Common = append(g.Common, sb.cur.common...)
		g.ARCS = append(g.ARCS, sb.cur.arcs...)
		g.EntropySum = append(g.EntropySum, sb.cur.ent...)
		g.Weights = make([]float64, len(g.Neighbors))
		return g, nil
	}
	if sb.cur.len() > 0 || len(sb.pg.startNode) == 1 {
		if err := sb.sealPage(c.NumProfiles); err != nil {
			sb.abort()
			return nil, err
		}
	}
	// Patch the final boundary to cover trailing edgeless nodes.
	sb.pg.startNode[len(sb.pg.startNode)-1] = int32(c.NumProfiles)
	pg := sb.pg
	pg.cache = store.NewCache(opt.cacheBytes())
	pg.nodePage = make([]int32, c.NumProfiles)
	for p := 0; p+1 < len(pg.startNode); p++ {
		for u := pg.startNode[p]; u < pg.startNode[p+1]; u++ {
			pg.nodePage[u] = int32(p)
		}
	}
	g.pages = pg
	return g, nil
}
