package graph

import (
	"context"
	"runtime"
	"slices"
	"sort"
	"sync"

	"blast/internal/blocking"
)

// CSR is the node-centric (compressed sparse row) representation of the
// blocking graph: for every profile, a neighbor-sorted adjacency run in
// flat parallel arrays. Each undirected edge (u, v) appears twice — once
// in u's run and once in v's — so node-local computations (the theta_i
// thresholds of Section 3.3.2, per-node top-k) never consult anything
// beyond a node's own run.
//
// The representation exists for scale: Build/BuildParallel accumulate
// every edge in a global map keyed by the pair, which dominates memory
// and allocation churn once ||B|| reaches tens of millions. BuildCSR
// instead builds each node's run independently from the block index with
// an O(|profiles|) scratch accumulator, so peak allocation stays
// proportional to the output adjacency rather than to a hash table over
// it. The streaming pruning schemes (package prune) consume this form
// directly and never materialize an edge list.
type CSR struct {
	// NumProfiles is the number of nodes (profiles of the dataset,
	// whether or not they have edges).
	NumProfiles int
	// Offsets indexes the entry arrays: node i's adjacency run occupies
	// positions [Offsets[i], Offsets[i+1]).
	Offsets []int64
	// Neighbors holds the neighbor profile id of every entry. Within a
	// node's run entries are sorted by ascending neighbor id — the same
	// order in which Graph.Adjacency lists a node's incident edges.
	Neighbors []int32
	// Common, ARCS and EntropySum mirror the co-occurrence accumulators
	// of Edge, per entry (both entries of an undirected edge carry
	// identical values). They are only needed to compute Weights;
	// ReleaseStats drops them once weighting is done.
	Common     []int32
	ARCS       []float64
	EntropySum []float64
	// Weights is filled in by a weighting scheme (weights.Scheme.ApplyCSR),
	// one value per entry, mirrored across the two entries of an edge.
	Weights []float64

	// BlockCounts is |B_i| per profile in the underlying collection.
	BlockCounts []int32
	// TotalBlocks is |B|, the number of blocks of the collection.
	TotalBlocks int
	// TotalComparisons is ||B||, the aggregate cardinality.
	TotalComparisons int64

	// pages, when non-nil, backs the per-entry arrays with file-backed
	// node-aligned pages instead of the resident slices above (which are
	// then nil); see paged.go. Offsets and BlockCounts stay resident in
	// both modes. All access to Neighbors/Weights must go through the
	// run accessors (Run, Canonical*, MirrorEntry) so both backings
	// serve the identical bytes.
	pages *pagedEntries
}

// NumEntries returns the number of adjacency entries (2x the edges).
func (g *CSR) NumEntries() int64 {
	if n := len(g.Offsets); n > 0 {
		return g.Offsets[n-1]
	}
	return int64(len(g.Neighbors))
}

// NumEdges returns the number of distinct comparisons the graph entails.
func (g *CSR) NumEdges() int { return int(g.NumEntries() / 2) }

// Degree returns |v_i|, the number of edges adjacent to node i.
func (g *CSR) Degree(i int) int { return int(g.Offsets[i+1] - g.Offsets[i]) }

// Run returns node u's adjacency run: its neighbor ids and, once a
// weighting scheme has run, the matching per-entry weights (nil
// before). Entry i of the run sits at global position Offsets[u]+i in
// the entry arrays. The slices alias the graph's backing store — a
// resident sub-slice or a cached page — and must not be mutated or
// retained across other graph operations. This is the one accessor
// every pruning and serving pass iterates runs through, so the resident
// and spilled backings serve byte-identical data.
func (g *CSR) Run(u int) (nbr []int32, wts []float64) {
	lo, hi := g.Offsets[u], g.Offsets[u+1]
	if g.pages != nil {
		return g.pages.run(u, lo, hi)
	}
	nbr = g.Neighbors[lo:hi]
	if g.Weights != nil {
		wts = g.Weights[lo:hi]
	}
	return nbr, wts
}

// ReleaseStats drops the co-occurrence accumulators, keeping only the
// adjacency structure and Weights. Call after weighting when the graph
// will only be pruned: it returns roughly half the per-entry memory to
// the allocator before the pruning passes run. On a spilled graph the
// stat segment files are deleted.
func (g *CSR) ReleaseStats() {
	g.Common, g.ARCS, g.EntropySum = nil, nil, nil
	if g.pages != nil {
		g.pages.releaseStats()
	}
}

// ReleaseBlockCounts drops the per-profile block counts. They are
// weighting/budget inputs only — every serving read (Candidates,
// Pairs, thresholds) works without them — so a frozen query-only index
// releases them after its decisions are final; like the released
// co-occurrence stats, the first mutation re-derives them with a graph
// rebuild.
func (g *CSR) ReleaseBlockCounts() { g.BlockCounts = nil }

// csrCancelCheckEvery is the granularity at which the CSR builders and
// ctx-aware iterators poll for cancellation: every so many nodes on the
// outer walk AND every so many entries inside a single adjacency run,
// so one hub node with a multi-million-entry run cannot delay
// cancellation arbitrarily (the same edge-segment contract the chunked
// pruning passes honor).
const csrCancelCheckEvery = 1024

// Canonical invokes fn for every canonical (u < v) entry in ascending
// (u, v) order — exactly the order of Graph.Edges — passing the entry's
// position p into the entry arrays.
func (g *CSR) Canonical(fn func(u, v int32, p int64)) {
	_ = g.CanonicalCtx(context.Background(), fn)
}

// CanonicalCtx is Canonical with cooperative cancellation: it polls ctx
// every few thousand nodes and at edge-segment granularity inside each
// adjacency run, stopping early with ctx.Err(). Entries already visited
// have been passed to fn; callers must discard partial results on
// error.
func (g *CSR) CanonicalCtx(ctx context.Context, fn func(u, v int32, p int64)) error {
	budget := int64(csrCancelCheckEvery)
	for u := 0; u < g.NumProfiles; u++ {
		if u%csrCancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		base, end := g.Offsets[u], g.Offsets[u+1]
		nbr, _ := g.Run(u)
		for p := base; p < end; {
			seg := end - p
			if seg > budget {
				seg = budget
			}
			for stop := p + seg; p < stop; p++ {
				if v := nbr[p-base]; int(v) > u {
					fn(int32(u), v, p)
				}
			}
			if budget -= seg; budget == 0 {
				budget = csrCancelCheckEvery
				if err := ctx.Err(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// CanonicalMirror is Canonical plus the position mp of each edge's
// reverse entry (the one in v's run pointing back at u), located in O(1)
// per edge: because the sub-v neighbors of any node v form the prefix of
// v's run in ascending order — the same order in which their canonical
// entries are visited — a per-node cursor into that prefix always lands
// on the current edge's mirror. Every consumer that needs both entries
// of an edge (weight mirroring, per-endpoint mark resolution) must go
// through this iterator or MirrorEntry rather than re-derive the
// invariant.
func (g *CSR) CanonicalMirror(fn func(u, v int32, p, mp int64)) {
	_ = g.CanonicalMirrorCtx(context.Background(), fn)
}

// MirrorEntry locates the reverse entry of edge (u, v) — the position
// of u in v's neighbor-sorted run — by binary search, O(log degree(v)).
// It is the random-access counterpart of CanonicalMirror's cursor sweep
// (both resolve the same unique entry; the sorted-unique run layout is
// owned here, next to the iterator): chunked parallel passes use it
// because per-node cursors only work when one sweep visits every node
// in ascending order. The edge must exist.
func (g *CSR) MirrorEntry(u, v int32) int64 {
	base := g.Offsets[v]
	nbr, _ := g.Run(int(v))
	lo, hi := 0, len(nbr)
	for lo < hi {
		mid := (lo + hi) / 2
		if nbr[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return base + int64(lo)
}

// CanonicalMirrorCtx is CanonicalMirror with cooperative cancellation,
// with the same early-stop contract as CanonicalCtx.
func (g *CSR) CanonicalMirrorCtx(ctx context.Context, fn func(u, v int32, p, mp int64)) error {
	cursors := make([]int64, g.NumProfiles)
	budget := int64(csrCancelCheckEvery)
	for u := 0; u < g.NumProfiles; u++ {
		if u%csrCancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		base, end := g.Offsets[u], g.Offsets[u+1]
		nbr, _ := g.Run(u)
		for p := base; p < end; {
			seg := end - p
			if seg > budget {
				seg = budget
			}
			for stop := p + seg; p < stop; p++ {
				v := nbr[p-base]
				if int(v) < u {
					continue // reverse entry; visited from its canonical side
				}
				mp := g.Offsets[v] + cursors[v]
				cursors[v]++
				fn(int32(u), v, p, mp)
			}
			if budget -= seg; budget == 0 {
				budget = csrCancelCheckEvery
				if err := ctx.Err(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// newCSRHeader fills in the collection-level statistics shared by the
// serial and parallel builders.
func newCSRHeader(c *blocking.Collection) *CSR {
	return &CSR{
		NumProfiles:      c.NumProfiles,
		Offsets:          make([]int64, c.NumProfiles+1),
		BlockCounts:      c.ProfileBlockCounts(),
		TotalBlocks:      c.Len(),
		TotalComparisons: c.AggregateCardinality(),
	}
}

// blockInverses precomputes 1/||b|| per block (0 for blocks that entail
// no comparisons, which accumulation then skips).
func blockInverses(c *blocking.Collection) []float64 {
	inv := make([]float64, len(c.Blocks))
	for i := range c.Blocks {
		if cmp := c.Blocks[i].Comparisons(); cmp > 0 {
			inv[i] = 1 / float64(cmp)
		}
	}
	return inv
}

// blockIndex is the exact-sized flat inverted index profile -> block ids
// (ascending): node i's blocks occupy blocks[offsets[i]:offsets[i+1]].
// Equivalent to Collection.BlocksOfProfiles but allocation-exact — two
// flat arrays instead of per-profile slices — because the node-centric
// builder exists to keep peak allocation tight.
type blockIndex struct {
	offsets []int64
	blocks  []int32
}

func (ix *blockIndex) of(node int32) []int32 {
	return ix.blocks[ix.offsets[node]:ix.offsets[node+1]]
}

func buildBlockIndex(c *blocking.Collection, counts []int32) blockIndex {
	n := len(counts)
	offsets := make([]int64, n+1)
	for i, ct := range counts {
		offsets[i+1] = offsets[i] + int64(ct)
	}
	blocks := make([]int32, offsets[n])
	cursor := make([]int64, n)
	add := func(ids []int32, bi int32) {
		for _, p := range ids {
			blocks[offsets[p]+cursor[p]] = bi
			cursor[p]++
		}
	}
	for i := range c.Blocks {
		add(c.Blocks[i].P1, int32(i))
		add(c.Blocks[i].P2, int32(i))
	}
	return blockIndex{offsets: offsets, blocks: blocks}
}

// nodeAcc is the reusable sparse accumulator of one node's adjacency:
// dense arrays indexed by neighbor id plus the list of touched ids. The
// arrays are O(NumProfiles) but are allocated once per builder (per
// worker for the parallel builder) and reset in O(degree) per node.
type nodeAcc struct {
	common  []int32
	arcs    []float64
	entropy []float64
	touched []int32
}

func newNodeAcc(n int) *nodeAcc {
	return &nodeAcc{
		common:  make([]int32, n),
		arcs:    make([]float64, n),
		entropy: make([]float64, n),
	}
}

func (a *nodeAcc) add(j int32, inv, entropy float64) {
	if a.common[j] == 0 {
		a.touched = append(a.touched, j)
	}
	a.common[j]++
	a.arcs[j] += inv
	a.entropy[j] += entropy
}

// accumulate fills the accumulator with node's co-occurrence statistics,
// visiting the node's blocks in ascending block order so that per-edge
// floating-point sums are bit-identical to the edge-list builders (which
// also accumulate in block order). Touched neighbor ids end up sorted.
func (a *nodeAcc) accumulate(c *blocking.Collection, inv []float64, ix *blockIndex, node int32) {
	for _, bi := range ix.of(node) {
		w := inv[bi]
		if w == 0 {
			continue
		}
		b := &c.Blocks[bi]
		if b.P2 != nil {
			// Clean-clean: only cross-source comparisons are valid.
			others := b.P2
			if int(node) >= c.Split {
				others = b.P1
			}
			for _, j := range others {
				a.add(j, w, b.Entropy)
			}
			continue
		}
		for _, j := range b.P1 {
			if j != node {
				a.add(j, w, b.Entropy)
			}
		}
	}
	slices.Sort(a.touched)
}

// reset clears the touched entries in O(degree).
func (a *nodeAcc) reset() {
	for _, j := range a.touched {
		a.common[j], a.arcs[j], a.entropy[j] = 0, 0, 0
	}
	a.touched = a.touched[:0]
}

// entryStore accumulates adjacency entries with doubling growth. Plain
// append grows large slices by ~1.25x, which allocates roughly 5x the
// final size over a build; doubling caps total churn at ~2x. These
// arrays dominate the engine's footprint, so the growth policy is the
// difference between beating the edge-list builder on allocation and
// merely matching it.
type entryStore struct {
	neighbors  []int32
	common     []int32
	arcs       []float64
	entropySum []float64
}

func growTo[T any](s []T, newCap int) []T {
	ns := make([]T, len(s), newCap)
	copy(ns, s)
	return ns
}

// appendNode flushes the accumulator's touched entries into the store.
func (st *entryStore) appendNode(acc *nodeAcc) {
	if need := len(st.neighbors) + len(acc.touched); need > cap(st.neighbors) {
		newCap := 2 * cap(st.neighbors)
		if newCap < need {
			newCap = need
		}
		if newCap < 1024 {
			newCap = 1024
		}
		st.neighbors = growTo(st.neighbors, newCap)
		st.common = growTo(st.common, newCap)
		st.arcs = growTo(st.arcs, newCap)
		st.entropySum = growTo(st.entropySum, newCap)
	}
	for _, j := range acc.touched {
		st.neighbors = append(st.neighbors, j)
		st.common = append(st.common, acc.common[j])
		st.arcs = append(st.arcs, acc.arcs[j])
		st.entropySum = append(st.entropySum, acc.entropy[j])
	}
}

// BuildCSR constructs the node-centric blocking graph of a block
// collection. It visits each block once per member profile, so the cost
// is proportional to 2*||B|| — the same asymptotics as Build — but no
// global edge map is ever allocated: memory is the output adjacency plus
// an O(NumProfiles) scratch accumulator. The resulting graph carries
// exactly the statistics of Build (per-edge values are bit-identical).
func BuildCSR(c *blocking.Collection) *CSR {
	g, _ := BuildCSRCtx(context.Background(), c)
	return g
}

// BuildCSRCtx is BuildCSR with cooperative cancellation: the per-node
// accumulation loop checks ctx every few thousand nodes and returns
// ctx.Err() as soon as cancellation is observed, discarding the partial
// adjacency.
func BuildCSRCtx(ctx context.Context, c *blocking.Collection) (*CSR, error) {
	g := newCSRHeader(c)
	ix := buildBlockIndex(c, g.BlockCounts)
	inv := blockInverses(c)
	acc := newNodeAcc(c.NumProfiles)
	var st entryStore
	for n := 0; n < c.NumProfiles; n++ {
		if n%csrCancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		acc.accumulate(c, inv, &ix, int32(n))
		st.appendNode(acc)
		g.Offsets[n+1] = int64(len(st.neighbors))
		acc.reset()
	}
	g.Neighbors, g.Common, g.ARCS, g.EntropySum =
		st.neighbors, st.common, st.arcs, st.entropySum
	g.Weights = make([]float64, len(g.Neighbors))
	return g, nil
}

// BuildCSRParallel constructs the same graph as BuildCSR using workers
// goroutines (0 = GOMAXPROCS). Nodes are cut into contiguous ranges of
// roughly equal block-membership mass; each worker builds its range's
// adjacency independently (per-node computation touches only that
// worker's scratch), and the per-range chunks are concatenated in node
// order, so the result is byte-identical to the serial build.
func BuildCSRParallel(c *blocking.Collection, workers int) *CSR {
	g, _ := BuildCSRParallelCtx(context.Background(), c, workers)
	return g
}

// BuildCSRParallelCtx is BuildCSRParallel with cooperative cancellation:
// every worker polls ctx at node-chunk granularity and abandons its
// range, and the build returns ctx.Err() after the join, discarding the
// partial chunks.
func BuildCSRParallelCtx(ctx context.Context, c *blocking.Collection, workers int) (*CSR, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || c.NumProfiles < 2*workers {
		return BuildCSRCtx(ctx, c)
	}
	g := newCSRHeader(c)
	ix := buildBlockIndex(c, g.BlockCounts)
	inv := blockInverses(c)
	bounds := cutRanges(ix.offsets, workers)

	chunks := make([]entryStore, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acc := newNodeAcc(c.NumProfiles)
			ch := &chunks[w]
			for n := bounds[w]; n < bounds[w+1]; n++ {
				if (n-bounds[w])%csrCancelCheckEvery == 0 && ctx.Err() != nil {
					return
				}
				acc.accumulate(c, inv, &ix, int32(n))
				ch.appendNode(acc)
				// Chunk-local offset; rebased after the join. Ranges are
				// disjoint, so these writes do not race.
				g.Offsets[n+1] = int64(len(ch.neighbors))
				acc.reset()
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	total := 0
	for w := range chunks {
		total += len(chunks[w].neighbors)
	}
	g.Neighbors = make([]int32, 0, total)
	g.Common = make([]int32, 0, total)
	g.ARCS = make([]float64, 0, total)
	g.EntropySum = make([]float64, 0, total)
	base := int64(0)
	for w := range chunks {
		for n := bounds[w]; n < bounds[w+1]; n++ {
			g.Offsets[n+1] += base
		}
		g.Neighbors = append(g.Neighbors, chunks[w].neighbors...)
		g.Common = append(g.Common, chunks[w].common...)
		g.ARCS = append(g.ARCS, chunks[w].arcs...)
		g.EntropySum = append(g.EntropySum, chunks[w].entropySum...)
		base += int64(len(chunks[w].neighbors))
		// Release each chunk as soon as it is stitched. The peak — final
		// arrays plus all chunks, ~2x the adjacency — is unavoidable at
		// the start of the merge, but this makes memory fall back toward
		// 1x as the merge proceeds instead of holding 2x throughout.
		chunks[w] = entryStore{}
	}
	g.Weights = make([]float64, len(g.Neighbors))
	return g, nil
}

// cutRanges splits the node space into `workers` contiguous ranges of
// roughly equal total block membership (the cost driver of per-node
// accumulation), using the block index's prefix sums. Returns workers+1
// boundaries with bounds[0] = 0 and bounds[workers] = the node count.
func cutRanges(offsets []int64, workers int) []int {
	n := len(offsets) - 1
	total := offsets[n]
	bounds := make([]int, workers+1)
	bounds[workers] = n
	for w := 1; w < workers; w++ {
		target := total * int64(w) / int64(workers)
		bounds[w] = sort.Search(n, func(i int) bool { return offsets[i+1] >= target })
		if bounds[w] < bounds[w-1] {
			bounds[w] = bounds[w-1]
		}
	}
	return bounds
}
