package graph

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"blast/internal/blocking"
	"blast/internal/model"
)

// BuildParallel constructs the same blocking graph as Build using
// workers goroutines (0 = GOMAXPROCS). Pairs are sharded by a hash of
// the canonical pair key, so each worker owns a disjoint slice of the
// accumulator space and no locking is needed during accumulation; shards
// are merged and sorted at the end. The result is identical to Build
// (deterministic), the wall-clock cost on large collections is roughly
// divided by the worker count.
//
// This mirrors how the meta-blocking literature scales graph
// construction (blocks are processed independently); it is worth using
// once ||B|| reaches tens of millions.
func BuildParallel(c *blocking.Collection, workers int) *Graph {
	g, _ := BuildParallelCtx(context.Background(), c, workers)
	return g
}

// BuildParallelCtx is BuildParallel with cooperative cancellation: every
// worker polls ctx at block-chunk granularity and abandons its shard, and
// the build returns ctx.Err() after the join, discarding partial shards.
func BuildParallelCtx(ctx context.Context, c *blocking.Collection, workers int) (*Graph, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(c.Blocks) < 2*workers {
		return BuildCtx(ctx, c)
	}

	type acc struct {
		common  int32
		arcs    float64
		entropy float64
	}
	type shard struct {
		index map[uint64]int32
		accs  []acc
		keys  []uint64
	}
	shards := make([]shard, workers)
	for i := range shards {
		shards[i] = shard{index: make(map[uint64]int32)}
	}

	// Each worker scans EVERY block but only accumulates the pairs that
	// hash into its shard. Scanning is cheap relative to map updates, and
	// this keeps shards fully independent (no merge conflicts).
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := &shards[w]
			mod := uint64(workers)
			for i := range c.Blocks {
				if i%graphCancelCheckEvery == 0 && ctx.Err() != nil {
					return
				}
				b := &c.Blocks[i]
				cmp := b.Comparisons()
				if cmp == 0 {
					continue
				}
				inv := 1 / float64(cmp)
				b.ForEachPair(func(u, v int32) {
					k := model.MakePair(int(u), int(v)).Key()
					// splitmix-style spread so shards stay balanced even
					// for clustered id ranges.
					h := k
					h ^= h >> 33
					h *= 0xff51afd7ed558ccd
					if h%mod != uint64(w) {
						return
					}
					idx, ok := sh.index[k]
					if !ok {
						idx = int32(len(sh.accs))
						sh.index[k] = idx
						sh.accs = append(sh.accs, acc{})
						sh.keys = append(sh.keys, k)
					}
					a := &sh.accs[idx]
					a.common++
					a.arcs += inv
					a.entropy += b.Entropy
				})
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	total := 0
	for i := range shards {
		total += len(shards[i].keys)
	}
	g := &Graph{
		NumProfiles:      c.NumProfiles,
		BlockCounts:      c.ProfileBlockCounts(),
		TotalBlocks:      c.Len(),
		TotalComparisons: c.AggregateCardinality(),
	}
	g.Edges = make([]Edge, 0, total)
	for i := range shards {
		sh := &shards[i]
		for j, k := range sh.keys {
			p := model.PairFromKey(k)
			a := sh.accs[j]
			g.Edges = append(g.Edges, Edge{
				U: p.U, V: p.V,
				Common:     a.common,
				ARCS:       a.arcs,
				EntropySum: a.entropy,
			})
		}
	}
	sort.Slice(g.Edges, func(a, b int) bool {
		return g.Edges[a].Pair().Key() < g.Edges[b].Pair().Key()
	})
	g.Degrees = make([]int32, c.NumProfiles)
	for i := range g.Edges {
		if i%csrCancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		g.Degrees[g.Edges[i].U]++
		g.Degrees[g.Edges[i].V]++
	}
	return g, nil
}
