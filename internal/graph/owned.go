package graph

import (
	"context"
	"runtime"
	"sync"

	"blast/internal/blocking"
)

// BuildOwnedCSR constructs the owned-rows slice of the node-centric
// blocking graph: Offsets spans every profile of the collection, but
// adjacency runs are accumulated only for the rows owns selects — every
// other row is an empty run. This is the build primitive of partitioned
// sharding: each shard materializes 1/N of the adjacency (its owned
// rows) from the shared compact block collection, and the per-entry
// statistics (Common, ARCS, EntropySum) are bit-identical to the same
// rows of a full BuildCSR, because per-node accumulation never consults
// anything beyond the collection and the node's own block list.
//
// The collection-level header statistics (BlockCounts, TotalBlocks,
// TotalComparisons) are global, exactly as in BuildCSR: they derive
// from the collection, which every shard holds in full. Weights is
// allocated to the owned-entry count; NumEdges() of the result counts
// owned entries over two, which is NOT the global edge count — the
// global count is resolved by exchanging owned degrees across shards.
func BuildOwnedCSR(ctx context.Context, c *blocking.Collection, owns func(int32) bool, workers int) (*CSR, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	g := newCSRHeader(c)
	ix := buildBlockIndex(c, g.BlockCounts)
	inv := blockInverses(c)
	if workers == 1 || c.NumProfiles < 2*workers {
		acc := newNodeAcc(c.NumProfiles)
		var st entryStore
		for n := 0; n < c.NumProfiles; n++ {
			if n%csrCancelCheckEvery == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			if owns(int32(n)) {
				acc.accumulate(c, inv, &ix, int32(n))
				st.appendNode(acc)
				acc.reset()
			}
			g.Offsets[n+1] = int64(len(st.neighbors))
		}
		g.Neighbors, g.Common, g.ARCS, g.EntropySum =
			st.neighbors, st.common, st.arcs, st.entropySum
		g.Weights = make([]float64, len(g.Neighbors))
		return g, nil
	}

	bounds := cutRanges(ix.offsets, workers)
	chunks := make([]entryStore, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acc := newNodeAcc(c.NumProfiles)
			ch := &chunks[w]
			for n := bounds[w]; n < bounds[w+1]; n++ {
				if (n-bounds[w])%csrCancelCheckEvery == 0 && ctx.Err() != nil {
					return
				}
				if owns(int32(n)) {
					acc.accumulate(c, inv, &ix, int32(n))
					ch.appendNode(acc)
					acc.reset()
				}
				// Chunk-local offset; rebased after the join (disjoint
				// ranges, so these writes do not race).
				g.Offsets[n+1] = int64(len(ch.neighbors))
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	total := 0
	for w := range chunks {
		total += len(chunks[w].neighbors)
	}
	g.Neighbors = make([]int32, 0, total)
	g.Common = make([]int32, 0, total)
	g.ARCS = make([]float64, 0, total)
	g.EntropySum = make([]float64, 0, total)
	base := int64(0)
	for w := range chunks {
		for n := bounds[w]; n < bounds[w+1]; n++ {
			g.Offsets[n+1] += base
		}
		g.Neighbors = append(g.Neighbors, chunks[w].neighbors...)
		g.Common = append(g.Common, chunks[w].common...)
		g.ARCS = append(g.ARCS, chunks[w].arcs...)
		g.EntropySum = append(g.EntropySum, chunks[w].entropySum...)
		base += int64(len(chunks[w].neighbors))
		chunks[w] = entryStore{}
	}
	g.Weights = make([]float64, len(g.Neighbors))
	return g, nil
}
