package graph

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"blast/internal/blocking"
	"blast/internal/model"
	"blast/internal/stats"
	"blast/internal/store"
)

// tinySpill forces the file-backed path on any non-empty collection:
// zero budget, small pages, a cache that holds only a few pages.
var tinySpill = SpillOptions{MemoryBudget: -1, PageEntries: 64, CacheBytes: 4 * 1024}

// testWeigh is an arbitrary orientation-symmetric weighting used to
// exercise the spilled weigh/read path without importing the weights
// package (which depends on this one).
func testWeigh(common int32, arcs, ent float64) float64 {
	return float64(common)*3 + arcs*7 + ent
}

func buildSpilledPair(t *testing.T, c *blocking.Collection) (resident, spilled *CSR) {
	t.Helper()
	resident = BuildCSR(c)
	opt := tinySpill
	opt.Dir = t.TempDir()
	spilled, err := BuildCSRSpillCtx(context.Background(), c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !spilled.Spilled() {
		t.Fatal("zero-budget build did not spill")
	}
	t.Cleanup(func() {
		if err := spilled.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return resident, spilled
}

func TestBuildCSRSpillMatchesResident(t *testing.T) {
	rng := stats.NewRNG(11)
	for _, kind := range []model.Kind{model.Dirty, model.CleanClean} {
		c := blocking.RandomCollection(rng, kind, 300, 200)
		resident, spilled := buildSpilledPair(t, c)

		if spilled.NumProfiles != resident.NumProfiles ||
			spilled.NumEntries() != resident.NumEntries() ||
			spilled.NumEdges() != resident.NumEdges() {
			t.Fatalf("shape mismatch: %d/%d/%d vs %d/%d/%d",
				spilled.NumProfiles, spilled.NumEntries(), spilled.NumEdges(),
				resident.NumProfiles, resident.NumEntries(), resident.NumEdges())
		}
		for i := range resident.Offsets {
			if spilled.Offsets[i] != resident.Offsets[i] {
				t.Fatalf("Offsets[%d] = %d, want %d", i, spilled.Offsets[i], resident.Offsets[i])
			}
		}

		// The spilled stats streams must carry bit-identical values;
		// WeighSpilled observes them entry by entry.
		var pos int64
		err := spilled.WeighSpilled(func(u, v int32, common int32, arcs, ent float64) float64 {
			if resident.Neighbors[pos] != v || resident.Common[pos] != common ||
				resident.ARCS[pos] != arcs || resident.EntropySum[pos] != ent {
				t.Fatalf("entry %d: spilled (%d,%d,%v,%v) vs resident (%d,%d,%v,%v)",
					pos, v, common, arcs, ent,
					resident.Neighbors[pos], resident.Common[pos], resident.ARCS[pos], resident.EntropySum[pos])
			}
			pos++
			return testWeigh(common, arcs, ent)
		})
		if err != nil {
			t.Fatal(err)
		}
		if pos != resident.NumEntries() {
			t.Fatalf("WeighSpilled visited %d entries, want %d", pos, resident.NumEntries())
		}
		for p := range resident.Weights {
			resident.Weights[p] = testWeigh(resident.Common[p], resident.ARCS[p], resident.EntropySum[p])
		}

		// Run accessors serve identical bytes in both modes, including
		// under cache pressure (the tiny cache evicts constantly).
		for round := 0; round < 2; round++ {
			for u := 0; u < resident.NumProfiles; u++ {
				rn, rw := resident.Run(u)
				sn, sw := spilled.Run(u)
				if len(rn) != len(sn) {
					t.Fatalf("node %d run length %d vs %d", u, len(sn), len(rn))
				}
				for i := range rn {
					if rn[i] != sn[i] || rw[i] != sw[i] {
						t.Fatalf("node %d entry %d: (%d,%v) vs (%d,%v)", u, i, sn[i], sw[i], rn[i], rw[i])
					}
				}
			}
		}

		// Mirror resolution agrees across backings.
		resident.Canonical(func(u, v int32, p int64) {
			if rm, sm := resident.MirrorEntry(u, v), spilled.MirrorEntry(u, v); rm != sm {
				t.Fatalf("MirrorEntry(%d,%d) = %d spilled, %d resident", u, v, sm, rm)
			}
		})

		// CanonicalMirror sweeps visit identical (u, v, p, mp) tuples.
		type quad struct {
			u, v  int32
			p, mp int64
		}
		var want []quad
		resident.CanonicalMirror(func(u, v int32, p, mp int64) { want = append(want, quad{u, v, p, mp}) })
		i := 0
		spilled.CanonicalMirror(func(u, v int32, p, mp int64) {
			if i >= len(want) || want[i] != (quad{u, v, p, mp}) {
				t.Fatalf("mirror sweep diverged at %d", i)
			}
			i++
		})
		if i != len(want) {
			t.Fatalf("mirror sweep visited %d edges, want %d", i, len(want))
		}

		// MaterializeWeights restores the full resident weight array.
		mw, err := spilled.MaterializeWeights()
		if err != nil {
			t.Fatal(err)
		}
		for p := range resident.Weights {
			if mw[p] != resident.Weights[p] {
				t.Fatalf("materialized weight %d = %v, want %v", p, mw[p], resident.Weights[p])
			}
		}

		// ReleaseStats drops the stat segment files but adjacency and
		// weights keep serving.
		spilled.ReleaseStats()
		if n, w := spilled.Run(1); len(n) != len(w) {
			t.Fatalf("post-release run lengths differ: %d vs %d", len(n), len(w))
		}
		if err := spilled.Err(); err != nil {
			t.Fatalf("spilled graph unhealthy: %v", err)
		}
		if st := spilled.CacheStats(); st.Hits+st.Misses == 0 {
			t.Fatal("page cache never consulted")
		}
	}
}

func TestBuildCSRSpillUnderBudgetStaysResident(t *testing.T) {
	rng := stats.NewRNG(5)
	c := blocking.RandomCollection(rng, model.Dirty, 120, 80)
	want := BuildCSR(c)
	got, err := BuildCSRSpillCtx(context.Background(), c, SpillOptions{MemoryBudget: 1 << 30, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if got.Spilled() {
		t.Fatal("build under budget spilled")
	}
	if len(got.Neighbors) != len(want.Neighbors) {
		t.Fatalf("%d entries, want %d", len(got.Neighbors), len(want.Neighbors))
	}
	for i := range want.Neighbors {
		if got.Neighbors[i] != want.Neighbors[i] || got.Common[i] != want.Common[i] ||
			got.ARCS[i] != want.ARCS[i] || got.EntropySum[i] != want.EntropySum[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
	for i := range want.Offsets {
		if got.Offsets[i] != want.Offsets[i] {
			t.Fatalf("Offsets[%d] differs", i)
		}
	}
}

func TestSpillCloseRemovesSegments(t *testing.T) {
	rng := stats.NewRNG(9)
	c := blocking.RandomCollection(rng, model.Dirty, 100, 60)
	dir := t.TempDir()
	opt := tinySpill
	opt.Dir = dir
	g, err := BuildCSRSpillCtx(context.Background(), c, opt)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := os.ReadDir(dir)
	if err != nil || len(sub) != 1 {
		t.Fatalf("spill subdirectory: %v (%d entries)", err, len(sub))
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if left, _ := os.ReadDir(dir); len(left) != 0 {
		t.Fatalf("%d entries left after Close", len(left))
	}
	if err := g.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestSpillFaultInjection corrupts a spilled segment file in place and
// verifies the graph fails closed: the sticky Err reports the named
// store error instead of serving mangled adjacency silently.
func TestSpillFaultInjection(t *testing.T) {
	rng := stats.NewRNG(13)
	c := blocking.RandomCollection(rng, model.Dirty, 200, 120)
	dir := t.TempDir()
	opt := tinySpill
	opt.Dir = dir
	g, err := BuildCSRSpillCtx(context.Background(), c, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	matches, err := filepath.Glob(filepath.Join(dir, "*", "neighbors.seg"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("neighbors segment: %v (%d matches)", err, len(matches))
	}
	f, err := os.OpenFile(matches[0], os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte well inside the payload region.
	var b [1]byte
	off := int64(len(store.Magic) + 32)
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g.Canonical(func(u, v int32, p int64) {})
	err = g.Err()
	if !errors.Is(err, store.ErrCorruptSegment) && !errors.Is(err, store.ErrTruncatedSegment) {
		t.Fatalf("Err() = %v, want a named segment error", err)
	}
}

func TestSpillEmptyAndEdgelessTails(t *testing.T) {
	// A collection whose blocks entail no comparisons: zero entries.
	c := &blocking.Collection{Kind: model.Dirty, NumProfiles: 6}
	c.Blocks = []blocking.Block{{P1: []int32{2}}}
	opt := tinySpill
	opt.Dir = t.TempDir()
	g, err := BuildCSRSpillCtx(context.Background(), c, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.NumEntries() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has %d entries", g.NumEntries())
	}
	for u := 0; u < 6; u++ {
		if n, _ := g.Run(u); len(n) != 0 {
			t.Fatalf("node %d run non-empty", u)
		}
	}
	if err := g.Err(); err != nil {
		t.Fatal(err)
	}
}
