// Package graph builds the blocking graph of graph-based meta-blocking
// (Section 2.2 of the paper): nodes are entity profiles, and an edge
// connects two profiles that co-occur in at least one block. Each edge
// carries the co-occurrence statistics every weighting scheme needs —
// |B_uv|, ARCS mass, and the entropy sum that BLAST's h(B_uv) term
// averages — while per-node block counts |B_i| and the block-collection
// totals live on the graph.
package graph

import (
	"context"
	"sort"

	"blast/internal/blocking"
	"blast/internal/model"
)

// Edge is one blocking-graph edge between profiles U < V.
type Edge struct {
	U, V int32
	// Common is |B_uv|: the number of blocks shared by U and V.
	Common int32
	// ARCS accumulates sum over shared blocks of 1/||b||.
	ARCS float64
	// EntropySum accumulates sum over shared blocks of h(b), the block's
	// cluster aggregate entropy; h(B_uv) = EntropySum / Common.
	EntropySum float64
	// Weight is filled in by a weighting scheme (package weights).
	Weight float64
}

// Pair returns the canonical id pair of the edge.
func (e *Edge) Pair() model.IDPair { return model.IDPair{U: e.U, V: e.V} }

// EntropyMean returns h(B_uv), the mean entropy of the shared blocking
// keys (1 if the edge has no recorded entropy mass).
func (e *Edge) EntropyMean() float64 {
	if e.Common == 0 || e.EntropySum == 0 {
		return 1
	}
	return e.EntropySum / float64(e.Common)
}

// Graph is a blocking graph in edge-list form with per-node statistics.
type Graph struct {
	// NumProfiles is the number of nodes (profiles of the dataset,
	// whether or not they have edges).
	NumProfiles int
	// Edges holds the deduplicated edges sorted by (U, V).
	Edges []Edge
	// BlockCounts is |B_i| per profile in the underlying collection.
	BlockCounts []int32
	// Degrees is the number of adjacent edges per node (|v_i|, used by
	// EJS).
	Degrees []int32
	// TotalBlocks is |B|, the number of blocks of the collection.
	TotalBlocks int
	// TotalComparisons is ||B||, the aggregate cardinality.
	TotalComparisons int64
}

// graphCancelCheckEvery is the block-chunk granularity at which the
// edge-list builders poll for cancellation.
const graphCancelCheckEvery = 256

// Build constructs the blocking graph of a block collection. Cost is
// proportional to the aggregate cardinality ||B||.
func Build(c *blocking.Collection) *Graph {
	g, _ := BuildCtx(context.Background(), c)
	return g
}

// BuildCtx is Build with cooperative cancellation: the block accumulation
// loop checks ctx every few hundred blocks and returns ctx.Err() as soon
// as cancellation is observed, discarding the partial graph.
func BuildCtx(ctx context.Context, c *blocking.Collection) (*Graph, error) {
	type acc struct {
		common  int32
		arcs    float64
		entropy float64
	}
	index := make(map[uint64]int32)
	var accs []acc
	var keys []uint64

	for i := range c.Blocks {
		if i%graphCancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		b := &c.Blocks[i]
		cmp := b.Comparisons()
		if cmp == 0 {
			continue
		}
		inv := 1 / float64(cmp)
		b.ForEachPair(func(u, v int32) {
			k := model.MakePair(int(u), int(v)).Key()
			idx, ok := index[k]
			if !ok {
				idx = int32(len(accs))
				index[k] = idx
				accs = append(accs, acc{})
				keys = append(keys, k)
			}
			a := &accs[idx]
			a.common++
			a.arcs += inv
			a.entropy += b.Entropy
		})
	}

	g := &Graph{
		NumProfiles:      c.NumProfiles,
		BlockCounts:      c.ProfileBlockCounts(),
		TotalBlocks:      c.Len(),
		TotalComparisons: c.AggregateCardinality(),
	}
	order := make([]int32, len(keys))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool { return keys[order[i]] < keys[order[j]] })

	g.Edges = make([]Edge, len(order))
	g.Degrees = make([]int32, c.NumProfiles)
	for i, idx := range order {
		p := model.PairFromKey(keys[idx])
		a := accs[idx]
		g.Edges[i] = Edge{
			U: p.U, V: p.V,
			Common:     a.common,
			ARCS:       a.arcs,
			EntropySum: a.entropy,
		}
		g.Degrees[p.U]++
		g.Degrees[p.V]++
	}
	return g, nil
}

// Adjacency returns, for every node, the indexes (into Edges) of its
// incident edges. The node-centric pruning schemes consume this view.
func (g *Graph) Adjacency() [][]int32 {
	adj := make([][]int32, g.NumProfiles)
	for i := range adj {
		if d := g.Degrees[i]; d > 0 {
			adj[i] = make([]int32, 0, d)
		}
	}
	for i := range g.Edges {
		e := &g.Edges[i]
		adj[e.U] = append(adj[e.U], int32(i))
		adj[e.V] = append(adj[e.V], int32(i))
	}
	return adj
}

// EdgeBetween returns the edge connecting u and v, or nil. Linear scan of
// the smaller endpoint's edges via binary search on the sorted edge list.
func (g *Graph) EdgeBetween(u, v int) *Edge {
	k := model.MakePair(u, v).Key()
	lo, hi := 0, len(g.Edges)
	for lo < hi {
		mid := (lo + hi) / 2
		e := &g.Edges[mid]
		ek := e.Pair().Key()
		switch {
		case ek == k:
			return e
		case ek < k:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return nil
}

// NumEdges returns the number of distinct comparisons the graph entails.
func (g *Graph) NumEdges() int { return len(g.Edges) }
