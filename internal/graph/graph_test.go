package graph

import (
	"math"
	"testing"

	"blast/internal/blocking"
	"blast/internal/datasets"
	"blast/internal/model"
)

func paperGraph(t *testing.T) *Graph {
	t.Helper()
	ds := datasets.PaperExample()
	return Build(blocking.TokenBlocking(ds))
}

// TestBuildPaperFigure1c: the blocking graph of Figure 1c has 6 edges
// with CBS weights 4 (p1-p3), 4 (p2-p4), 3 (p1-p4), 4 (p2-p3),
// 1 (p1-p2), 1 (p3-p4).
func TestBuildPaperFigure1c(t *testing.T) {
	g := paperGraph(t)
	if g.NumEdges() != 6 {
		t.Fatalf("edges = %d, want 6 (complete graph on p1..p4)", g.NumEdges())
	}
	wantCommon := map[model.IDPair]int32{
		model.MakePair(0, 2): 4, // p1-p3: car, main, abram, jr
		model.MakePair(1, 3): 4, // p2-p4: ellen, smith, ny, abram
		model.MakePair(0, 3): 3, // p1-p4: 1985, street, abram
		model.MakePair(1, 2): 4, // p2-p3: 85, st, retail, abram
		model.MakePair(0, 1): 1, // p1-p2: abram
		model.MakePair(2, 3): 1, // p3-p4: abram
	}
	for pair, want := range wantCommon {
		e := g.EdgeBetween(int(pair.U), int(pair.V))
		if e == nil {
			t.Fatalf("edge %v missing", pair)
		}
		if e.Common != want {
			t.Errorf("edge %v common = %d, want %d", pair, e.Common, want)
		}
	}
}

func TestBuildStatistics(t *testing.T) {
	g := paperGraph(t)
	if g.TotalBlocks != 12 {
		t.Errorf("TotalBlocks = %d, want 12", g.TotalBlocks)
	}
	if g.TotalComparisons != 17 {
		t.Errorf("TotalComparisons = %d, want 17", g.TotalComparisons)
	}
	// |B_p1| = 6 and |B_p3| = 7 are the Table 1 marginals; p2 and p4
	// follow by direct count (p2: ellen smith 85 retail abram st ny;
	// p4: ellen smith 1985 abram street ny).
	want := []int32{6, 7, 7, 6}
	for i, w := range want {
		if g.BlockCounts[i] != w {
			t.Errorf("BlockCounts[%d] = %d, want %d", i, g.BlockCounts[i], w)
		}
	}
	// Complete graph on 4 nodes: degree 3 each.
	for i, d := range g.Degrees {
		if d != 3 {
			t.Errorf("Degrees[%d] = %d, want 3", i, d)
		}
	}
}

func TestEdgesSortedAndCanonical(t *testing.T) {
	g := paperGraph(t)
	for i := range g.Edges {
		e := &g.Edges[i]
		if e.U >= e.V {
			t.Errorf("edge %d not canonical: (%d,%d)", i, e.U, e.V)
		}
		if i > 0 {
			prev := g.Edges[i-1].Pair().Key()
			if prev >= e.Pair().Key() {
				t.Error("edges not sorted")
			}
		}
	}
}

func TestARCSAccumulation(t *testing.T) {
	g := paperGraph(t)
	// p1-p3 share car(1 cmp), main(1), jr(1) and abram(6 cmps):
	// ARCS = 3*1 + 1/6.
	e := g.EdgeBetween(0, 2)
	want := 3 + 1.0/6
	if math.Abs(e.ARCS-want) > 1e-12 {
		t.Errorf("ARCS(p1,p3) = %v, want %v", e.ARCS, want)
	}
	// p1-p2 share only abram: ARCS = 1/6.
	e = g.EdgeBetween(0, 1)
	if math.Abs(e.ARCS-1.0/6) > 1e-12 {
		t.Errorf("ARCS(p1,p2) = %v, want 1/6", e.ARCS)
	}
}

func TestEntropyMeanDefaultBlocks(t *testing.T) {
	g := paperGraph(t)
	// Token Blocking sets block entropy 1, so every edge's mean is 1.
	for i := range g.Edges {
		if got := g.Edges[i].EntropyMean(); got != 1 {
			t.Errorf("edge %d entropy mean = %v, want 1", i, got)
		}
	}
	// A zero-common edge must degrade to 1, not NaN.
	var zero Edge
	if zero.EntropyMean() != 1 {
		t.Error("zero edge entropy mean should be 1")
	}
}

func TestEntropyMeanWithClusterEntropy(t *testing.T) {
	// Hand-built collection: two blocks with different entropies sharing
	// the pair (0,1).
	c := &blocking.Collection{
		Kind:        model.Dirty,
		NumProfiles: 2,
		Blocks: []blocking.Block{
			{Key: "a", P1: []int32{0, 1}, Entropy: 3.5},
			{Key: "b", P1: []int32{0, 1}, Entropy: 2.0},
		},
	}
	g := Build(c)
	e := g.EdgeBetween(0, 1)
	if e == nil {
		t.Fatal("edge missing")
	}
	if got := e.EntropyMean(); math.Abs(got-2.75) > 1e-12 {
		t.Errorf("entropy mean = %v, want 2.75", got)
	}
}

func TestEdgeBetweenMissing(t *testing.T) {
	g := paperGraph(t)
	if g.EdgeBetween(0, 0) != nil {
		t.Error("self edge should not exist")
	}
	c := &blocking.Collection{Kind: model.Dirty, NumProfiles: 5, Blocks: []blocking.Block{
		{Key: "k", P1: []int32{0, 1}},
	}}
	g2 := Build(c)
	if g2.EdgeBetween(2, 3) != nil {
		t.Error("absent edge should be nil")
	}
	if g2.EdgeBetween(0, 1) == nil {
		t.Error("present edge should be found")
	}
}

func TestAdjacencyConsistent(t *testing.T) {
	g := paperGraph(t)
	adj := g.Adjacency()
	for node, edges := range adj {
		if len(edges) != int(g.Degrees[node]) {
			t.Errorf("node %d adjacency %d != degree %d", node, len(edges), g.Degrees[node])
		}
		for _, ei := range edges {
			e := &g.Edges[ei]
			if int(e.U) != node && int(e.V) != node {
				t.Errorf("edge %d listed for node %d but connects (%d,%d)", ei, node, e.U, e.V)
			}
		}
	}
}

func TestCleanCleanGraphOnlyCrossEdges(t *testing.T) {
	e1 := model.NewCollection("A")
	p := model.Profile{ID: "a"}
	p.Add("t", "x y")
	e1.Append(p)
	q := model.Profile{ID: "b"}
	q.Add("t", "x z")
	e1.Append(q)
	e2 := model.NewCollection("B")
	r := model.Profile{ID: "c"}
	r.Add("t", "x y z")
	e2.Append(r)
	ds := &model.Dataset{Name: "d", Kind: model.CleanClean, E1: e1, E2: e2, Truth: model.NewGroundTruth()}
	g := Build(blocking.TokenBlocking(ds))
	// a-b co-occur in block "x" but are same-source: clean-clean blocks
	// never pair them.
	for i := range g.Edges {
		e := &g.Edges[i]
		if e.U < 2 && e.V < 2 {
			t.Errorf("same-source edge (%d,%d) in clean-clean graph", e.U, e.V)
		}
	}
	if g.NumEdges() != 2 {
		t.Errorf("edges = %d, want 2 (a-c, b-c)", g.NumEdges())
	}
}

func TestBuildEmptyCollection(t *testing.T) {
	c := &blocking.Collection{Kind: model.Dirty, NumProfiles: 3}
	g := Build(c)
	if g.NumEdges() != 0 || g.TotalBlocks != 0 {
		t.Error("empty collection should build empty graph")
	}
	if len(g.BlockCounts) != 3 || len(g.Degrees) != 3 {
		t.Error("per-node slices should still be sized")
	}
}
