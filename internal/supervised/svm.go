// Package supervised implements supervised meta-blocking (Papadakis,
// Papastefanatos, Koutrika; PVLDB 7(14), 2014), the learned comparator
// BLAST is evaluated against: every blocking-graph edge is described by a
// vector of schema-agnostic features and a binary classifier decides
// which comparisons to retain (a WEP-style global decision). The paper
// uses an SVM with a linear kernel; this package provides a linear SVM
// trained with Pegasos-style stochastic sub-gradient descent on the hinge
// loss — no external ML dependency.
package supervised

import (
	"math"

	"blast/internal/stats"
)

// SVM is a linear classifier w.x + b with feature standardization folded
// into the stored weights at training time.
type SVM struct {
	W    []float64
	B    float64
	mean []float64
	std  []float64
}

// TrainConfig controls the Pegasos optimizer.
type TrainConfig struct {
	// Lambda is the L2 regularization strength (default 1e-4).
	Lambda float64
	// Epochs is the number of passes over the training set (default 40).
	Epochs int
	// Seed drives the sampling order (deterministic).
	Seed uint64
}

// Train fits a linear SVM on feature vectors xs with labels ys (+1/-1).
// Features are standardized to zero mean / unit variance internally, so
// callers can mix scales freely. It panics on empty or ragged input.
func Train(xs [][]float64, ys []int, cfg TrainConfig) *SVM {
	if len(xs) == 0 || len(xs) != len(ys) {
		panic("supervised: bad training set")
	}
	dim := len(xs[0])
	for _, x := range xs {
		if len(x) != dim {
			panic("supervised: ragged features")
		}
	}
	if cfg.Lambda <= 0 {
		cfg.Lambda = 1e-4
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 40
	}

	mean := make([]float64, dim)
	std := make([]float64, dim)
	for _, x := range xs {
		for j, v := range x {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(xs))
	}
	for _, x := range xs {
		for j, v := range x {
			d := v - mean[j]
			std[j] += d * d
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(len(xs)))
		if std[j] < 1e-12 {
			std[j] = 1
		}
	}
	norm := func(x []float64, j int) float64 { return (x[j] - mean[j]) / std[j] }

	// Pegasos on the augmented space [standardized x, 1]: the bias is the
	// last weight, regularized like the rest, which keeps the 1/(lambda*t)
	// step schedule stable.
	w := make([]float64, dim+1)
	avg := make([]float64, dim+1)
	avgCount := 0
	rng := stats.NewRNG(cfg.Seed + 1)
	t := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for range xs {
			t++
			i := rng.Intn(len(xs))
			eta := 1 / (cfg.Lambda * float64(t))
			x, y := xs[i], float64(ys[i])
			score := w[dim]
			for j := 0; j < dim; j++ {
				score += w[j] * norm(x, j)
			}
			// Sub-gradient step: shrink + (on margin violation) push.
			shrink := 1 - eta*cfg.Lambda
			for j := range w {
				w[j] *= shrink
			}
			if y*score < 1 {
				for j := 0; j < dim; j++ {
					w[j] += eta * y * norm(x, j)
				}
				w[dim] += eta * y
			}
			// Average the iterates of the second half of training
			// (averaged Pegasos: lower-variance final model).
			if epoch >= cfg.Epochs/2 {
				for j := range w {
					avg[j] += w[j]
				}
				avgCount++
			}
		}
	}
	if avgCount > 0 {
		for j := range avg {
			avg[j] /= float64(avgCount)
		}
		w = avg
	}
	return &SVM{W: w[:dim], B: w[dim], mean: mean, std: std}
}

// Score returns the signed margin of a feature vector.
func (m *SVM) Score(x []float64) float64 {
	s := m.B
	for j, w := range m.W {
		s += w * (x[j] - m.mean[j]) / m.std[j]
	}
	return s
}

// Predict classifies a feature vector: true = retain the comparison.
func (m *SVM) Predict(x []float64) bool { return m.Score(x) > 0 }
