package supervised

import (
	"fmt"
	"testing"

	"blast/internal/blocking"
	"blast/internal/datasets"
	"blast/internal/graph"
	"blast/internal/metrics"
	"blast/internal/model"
	"blast/internal/stats"
)

func TestSVMLearnsLinearlySeparable(t *testing.T) {
	// y = +1 iff x0 + x1 > 1 with a margin.
	rng := stats.NewRNG(3)
	var xs [][]float64
	var ys []int
	for i := 0; i < 400; i++ {
		a, b := rng.Float64()*2, rng.Float64()*2
		s := a + b
		if s > 0.8 && s < 1.2 {
			continue // margin gap
		}
		xs = append(xs, []float64{a, b})
		if s > 1 {
			ys = append(ys, 1)
		} else {
			ys = append(ys, -1)
		}
	}
	m := Train(xs, ys, TrainConfig{Seed: 7})
	errs := 0
	for i, x := range xs {
		if m.Predict(x) != (ys[i] > 0) {
			errs++
		}
	}
	if rate := float64(errs) / float64(len(xs)); rate > 0.03 {
		t.Errorf("training error %.3f, want <= 0.03", rate)
	}
}

func TestSVMHandlesConstantFeature(t *testing.T) {
	xs := [][]float64{{1, 5}, {2, 5}, {3, 5}, {4, 5}}
	ys := []int{-1, -1, 1, 1}
	m := Train(xs, ys, TrainConfig{Seed: 1})
	if !m.Predict([]float64{4, 5}) || m.Predict([]float64{1, 5}) {
		t.Error("constant feature broke training")
	}
}

func TestTrainPanicsOnBadInput(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":  func() { Train(nil, nil, TrainConfig{}) },
		"ragged": func() { Train([][]float64{{1, 2}, {1}}, []int{1, -1}, TrainConfig{}) },
		"len":    func() { Train([][]float64{{1}}, []int{1, -1}, TrainConfig{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s input should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFeaturesPaperExample(t *testing.T) {
	g := graph.Build(blocking.TokenBlocking(datasets.PaperExample()))
	e := g.EdgeBetween(0, 2) // p1-p3
	f := Features(g, e, nil)
	if len(f) != NumFeatures {
		t.Fatalf("features len = %d, want %d", len(f), NumFeatures)
	}
	if f[3] != 4 { // CBS
		t.Errorf("CBS feature = %v, want 4", f[3])
	}
	if f[2] <= 0 || f[2] > 1 { // JS
		t.Errorf("JS feature = %v, want in (0,1]", f[2])
	}
	if f[1] <= 3 { // ARCS = 3 + 1/6
		t.Errorf("ARCS feature = %v, want > 3", f[1])
	}
	for i, v := range f {
		if v < 0 {
			t.Errorf("feature %d negative: %v", i, v)
		}
	}
	// Buffer reuse.
	buf := make([]float64, NumFeatures)
	f2 := Features(g, e, buf)
	for i := range f {
		if f[i] != f2[i] {
			t.Error("buffer reuse changed features")
		}
	}
}

// syntheticGraph builds a dirty block collection with `n` matching pairs
// (5 private blocks each) and `n` superfluous pairs (1 shared block
// each), returning the graph and truth.
func syntheticGraph(n int) (*graph.Graph, *model.GroundTruth) {
	c := &blocking.Collection{Kind: model.Dirty, NumProfiles: 4 * n}
	truth := model.NewGroundTruth()
	for i := 0; i < n; i++ {
		u, v := int32(2*i), int32(2*i+1)
		truth.Add(int(u), int(v))
		for b := 0; b < 5; b++ {
			c.Blocks = append(c.Blocks, blocking.Block{
				Key: fmt.Sprintf("m%03d_%d", i, b), P1: []int32{u, v}, Entropy: 1,
			})
		}
	}
	for i := 0; i < n; i++ {
		u, v := int32(2*n+2*i), int32(2*n+2*i+1)
		c.Blocks = append(c.Blocks, blocking.Block{
			Key: fmt.Sprintf("s%03d", i), P1: []int32{u, v}, Entropy: 1,
		})
	}
	return graph.Build(c), truth
}

func TestRunSeparatesMatchesFromSuperfluous(t *testing.T) {
	g, truth := syntheticGraph(60)
	res := Run(g, truth, defaultConfig())
	q := metrics.EvaluatePairs(res.Pairs, truth)
	if q.PC < 0.95 {
		t.Errorf("supervised PC = %v, want >= 0.95", q.PC)
	}
	if q.PQ < 0.9 {
		t.Errorf("supervised PQ = %v, want >= 0.9 (easy separation)", q.PQ)
	}
	if res.TrainSize == 0 || res.Model == nil {
		t.Error("training should have happened")
	}
	// 10% of 60 positives = 6, balanced: 12 examples.
	if res.TrainSize != 12 {
		t.Errorf("TrainSize = %d, want 12", res.TrainSize)
	}
}

func TestRunDegenerateNoPositives(t *testing.T) {
	g, _ := syntheticGraph(5)
	empty := model.NewGroundTruth()
	res := Run(g, empty, defaultConfig())
	if len(res.Pairs) != g.NumEdges() {
		t.Errorf("degenerate run should retain all %d edges, got %d", g.NumEdges(), len(res.Pairs))
	}
	if res.Model != nil {
		t.Error("no model should be trained without labels")
	}
}

func TestRunDegenerateAllPositives(t *testing.T) {
	c := &blocking.Collection{Kind: model.Dirty, NumProfiles: 4, Blocks: []blocking.Block{
		{Key: "a", P1: []int32{0, 1}}, {Key: "b", P1: []int32{2, 3}},
	}}
	g := graph.Build(c)
	truth := model.NewGroundTruth()
	truth.Add(0, 1)
	truth.Add(2, 3)
	res := Run(g, truth, defaultConfig())
	if len(res.Pairs) != 2 {
		t.Errorf("all-positive graph should retain everything, got %d", len(res.Pairs))
	}
}

func TestRunDeterministic(t *testing.T) {
	g, truth := syntheticGraph(40)
	a := Run(g, truth, defaultConfig())
	b := Run(g, truth, defaultConfig())
	if len(a.Pairs) != len(b.Pairs) {
		t.Fatalf("nondeterministic: %d vs %d pairs", len(a.Pairs), len(b.Pairs))
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			t.Fatal("nondeterministic pair order")
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	g, truth := syntheticGraph(30)
	res := Run(g, truth, Config{TrainFraction: -1, NegativeRatio: 0, Seed: 2})
	if res.TrainSize == 0 {
		t.Error("defaults should be applied and training performed")
	}
}

// defaultConfig mirrors the paper's setup (10% of matches for training,
// balanced negatives). The exported DefaultConfig is quarantined behind
// the blast_supervised_future build tag until the learned-pruning PR
// gives it a cross-package caller; the tests pin its values here.
func defaultConfig() Config {
	return Config{TrainFraction: 0.10, NegativeRatio: 1, Seed: 1}
}
