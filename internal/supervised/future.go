//go:build blast_supervised_future

package supervised

// DefaultConfig mirrors the paper's setup: 10% of matches for training,
// balanced negatives.
//
// Quarantined: no cross-package caller exists yet — pipeline.go and the
// experiment tables construct their Config explicitly. The intended
// consumer is the learned-pruning roadmap item (training a pruning
// threshold on a labeled sample); until that PR lands, the export lives
// behind this tag so the default build carries no dead API surface.
// Re-enable by building with -tags blast_supervised_future, or drop the
// constraint when the caller arrives.
func DefaultConfig() Config {
	return Config{TrainFraction: 0.10, NegativeRatio: 1, Seed: 1}
}
