package supervised

import (
	"math"
	"time"

	"blast/internal/graph"
	"blast/internal/model"
	"blast/internal/stats"
)

// NumFeatures is the dimensionality of the per-edge feature vector.
const NumFeatures = 6

// Features computes the schema-agnostic feature vector of edge e, the
// feature set of the supervised meta-blocking paper adapted to this
// graph representation:
//
//	0: CFIBF  — co-occurrence frequency * inverse block frequency
//	            (|B_uv| * log(|B|/|B_u|) * log(|B|/|B_v|), i.e. ECBS);
//	1: RACCB  — reciprocal aggregate cardinality of common blocks
//	            (sum over shared blocks of 1/||b||, i.e. ARCS);
//	2: JS     — Jaccard coefficient of the block sets;
//	3: |B_uv| — raw co-occurrence count (CBS);
//	4: NodeDegree(u)+NodeDegree(v), normalized by the number of edges;
//	5: |B_u|+|B_v|, normalized by the number of blocks.
func Features(g *graph.Graph, e *graph.Edge, out []float64) []float64 {
	if cap(out) < NumFeatures {
		out = make([]float64, NumFeatures)
	}
	out = out[:NumFeatures]
	bu := float64(g.BlockCounts[e.U])
	bv := float64(g.BlockCounts[e.V])
	common := float64(e.Common)
	total := float64(g.TotalBlocks)

	logf := func(x float64) float64 {
		if x <= 1 {
			return 0
		}
		return math.Log(x)
	}
	out[0] = common * logf(total/bu) * logf(total/bv)
	out[1] = e.ARCS
	if d := bu + bv - common; d > 0 {
		out[2] = common / d
	} else {
		out[2] = 0
	}
	out[3] = common
	if ne := float64(g.NumEdges()); ne > 0 {
		out[4] = (float64(g.Degrees[e.U]) + float64(g.Degrees[e.V])) / ne
	} else {
		out[4] = 0
	}
	if total > 0 {
		out[5] = (bu + bv) / total
	} else {
		out[5] = 0
	}
	return out
}

// Config controls supervised meta-blocking.
type Config struct {
	// TrainFraction is the fraction of ground-truth matches used as
	// positive examples (paper: 0.10).
	TrainFraction float64
	// NegativeRatio is the number of negative samples per positive
	// (default 1: balanced, as in the supervised meta-blocking paper).
	NegativeRatio int
	// Seed drives sampling and SGD (deterministic).
	Seed uint64
	// Train overrides the SVM optimizer settings.
	Train TrainConfig
}

// Result is the outcome of a supervised meta-blocking run.
type Result struct {
	// Pairs are the retained comparisons (classified positive), sorted.
	Pairs []model.IDPair
	// Model is the trained classifier.
	Model *SVM
	// TrainSize is the number of labeled examples used.
	TrainSize int
	// Overhead is the total time spent extracting features, training and
	// classifying.
	Overhead time.Duration
}

// Run trains on a sample of the ground truth and classifies every edge
// of the (already built) blocking graph, returning the retained pairs.
// Edges used for training are classified like any other (the paper's
// setting evaluates the final block collection as a whole).
func Run(g *graph.Graph, truth *model.GroundTruth, cfg Config) *Result {
	start := time.Now()
	if cfg.TrainFraction <= 0 || cfg.TrainFraction > 1 {
		cfg.TrainFraction = 0.10
	}
	if cfg.NegativeRatio <= 0 {
		cfg.NegativeRatio = 1
	}
	rng := stats.NewRNG(cfg.Seed)

	// Index edges by match/non-match.
	var posIdx, negIdx []int
	for i := range g.Edges {
		e := &g.Edges[i]
		if truth.Contains(int(e.U), int(e.V)) {
			posIdx = append(posIdx, i)
		} else {
			negIdx = append(negIdx, i)
		}
	}

	res := &Result{}
	if len(posIdx) == 0 || len(negIdx) == 0 {
		// Degenerate graph: no training signal; retain every edge (the
		// conservative choice preserves PC).
		res.Pairs = allPairs(g)
		res.Overhead = time.Since(start)
		return res
	}

	nPos := int(math.Ceil(cfg.TrainFraction * float64(len(posIdx))))
	if nPos < 1 {
		nPos = 1
	}
	if nPos > len(posIdx) {
		nPos = len(posIdx)
	}
	nNeg := nPos * cfg.NegativeRatio
	if nNeg > len(negIdx) {
		nNeg = len(negIdx)
	}

	rng.Shuffle(len(posIdx), func(i, j int) { posIdx[i], posIdx[j] = posIdx[j], posIdx[i] })
	rng.Shuffle(len(negIdx), func(i, j int) { negIdx[i], negIdx[j] = negIdx[j], negIdx[i] })

	xs := make([][]float64, 0, nPos+nNeg)
	ys := make([]int, 0, nPos+nNeg)
	for _, i := range posIdx[:nPos] {
		xs = append(xs, Features(g, &g.Edges[i], nil))
		ys = append(ys, +1)
	}
	for _, i := range negIdx[:nNeg] {
		xs = append(xs, Features(g, &g.Edges[i], nil))
		ys = append(ys, -1)
	}
	cfg.Train.Seed = cfg.Seed
	svm := Train(xs, ys, cfg.Train)

	var pairs []model.IDPair
	buf := make([]float64, NumFeatures)
	for i := range g.Edges {
		buf = Features(g, &g.Edges[i], buf)
		if svm.Predict(buf) {
			pairs = append(pairs, g.Edges[i].Pair())
		}
	}
	res.Pairs = pairs
	res.Model = svm
	res.TrainSize = len(xs)
	res.Overhead = time.Since(start)
	return res
}

func allPairs(g *graph.Graph) []model.IDPair {
	out := make([]model.IDPair, len(g.Edges))
	for i := range g.Edges {
		out[i] = g.Edges[i].Pair()
	}
	return out
}
