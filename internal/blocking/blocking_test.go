package blocking

import (
	"sort"
	"testing"
	"testing/quick"

	"blast/internal/datasets"
	"blast/internal/model"
	"blast/internal/text"
)

// blockByKey finds a block by key.
func blockByKey(t *testing.T, c *Collection, key string) *Block {
	t.Helper()
	for i := range c.Blocks {
		if c.Blocks[i].Key == key {
			return &c.Blocks[i]
		}
	}
	t.Fatalf("block %q not found; have %d blocks", key, len(c.Blocks))
	return nil
}

func ids(xs []int32) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = int(x)
	}
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTokenBlockingPaperFigure1 verifies that Token Blocking over the
// Figure 1 profiles produces exactly the 12 blocks of Figure 1b.
func TestTokenBlockingPaperFigure1(t *testing.T) {
	ds := datasets.PaperExample()
	c := TokenBlocking(ds)

	want := map[string][]int{
		"ellen":  {1, 3},
		"smith":  {1, 3},
		"1985":   {0, 3},
		"car":    {0, 2},
		"ny":     {1, 3},
		"main":   {0, 2},
		"abram":  {0, 1, 2, 3},
		"street": {0, 3},
		"jr":     {0, 2},
		"85":     {1, 2},
		"st":     {1, 2},
		"retail": {1, 2},
	}
	if got := c.Len(); got != len(want) {
		keys := make([]string, 0, c.Len())
		for i := range c.Blocks {
			keys = append(keys, c.Blocks[i].Key)
		}
		t.Fatalf("got %d blocks %v, want %d", got, keys, len(want))
	}
	for key, profiles := range want {
		b := blockByKey(t, c, key)
		if !equalInts(ids(b.P1), profiles) {
			t.Errorf("block %q = %v, want %v", key, ids(b.P1), profiles)
		}
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Table 1 of the paper: n++ = 12 blocks, |B_p1| = 6, |B_p3| = 7.
	counts := c.ProfileBlockCounts()
	if counts[0] != 6 || counts[2] != 7 {
		t.Errorf("|B_p1| = %d, |B_p3| = %d; want 6 and 7", counts[0], counts[2])
	}
}

func TestBlockComparisonsDirty(t *testing.T) {
	b := Block{P1: []int32{1, 2, 3, 4}}
	if got := b.Comparisons(); got != 6 {
		t.Errorf("dirty comparisons = %d, want 6", got)
	}
	var pairs int
	b.ForEachPair(func(u, v int32) {
		if u >= v {
			t.Errorf("dirty pair (%d,%d) not ordered", u, v)
		}
		pairs++
	})
	if int64(pairs) != b.Comparisons() {
		t.Errorf("ForEachPair visited %d, want %d", pairs, b.Comparisons())
	}
}

func TestBlockComparisonsCleanClean(t *testing.T) {
	b := Block{P1: []int32{1, 2}, P2: []int32{10, 11, 12}}
	if got := b.Comparisons(); got != 6 {
		t.Errorf("clean-clean comparisons = %d, want 6", got)
	}
	var pairs int
	b.ForEachPair(func(u, v int32) { pairs++ })
	if pairs != 6 {
		t.Errorf("ForEachPair visited %d, want 6", pairs)
	}
}

func cleanDataset() *model.Dataset {
	e1 := model.NewCollection("A")
	pa := model.Profile{ID: "a0"}
	pa.Add("title", "deep learning methods")
	e1.Append(pa)
	pb := model.Profile{ID: "a1"}
	pb.Add("title", "database systems")
	e1.Append(pb)

	e2 := model.NewCollection("B")
	pc := model.Profile{ID: "b0"}
	pc.Add("name", "deep learning")
	e2.Append(pc)
	pd := model.Profile{ID: "b1"}
	pd.Add("name", "graph systems")
	e2.Append(pd)

	g := model.NewGroundTruth()
	g.Add(0, 2)
	return &model.Dataset{Name: "mini", Kind: model.CleanClean, E1: e1, E2: e2, Truth: g}
}

func TestTokenBlockingCleanClean(t *testing.T) {
	ds := cleanDataset()
	c := TokenBlocking(ds)
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// "deep" and "learning" bridge a0-b0; "systems" bridges a1-b1.
	// "database", "methods", "graph" are one-sided and must be dropped.
	for _, key := range []string{"database", "methods", "graph"} {
		for i := range c.Blocks {
			if c.Blocks[i].Key == key {
				t.Errorf("one-sided block %q survived", key)
			}
		}
	}
	deep := blockByKey(t, c, "deep")
	if !equalInts(ids(deep.P1), []int{0}) || !equalInts(ids(deep.P2), []int{2}) {
		t.Errorf("deep block = %v | %v", ids(deep.P1), ids(deep.P2))
	}
	systems := blockByKey(t, c, "systems")
	if systems.Comparisons() != 1 {
		t.Errorf("systems comparisons = %d, want 1", systems.Comparisons())
	}
}

func TestBuildDeduplicatesWithinProfile(t *testing.T) {
	e := model.NewCollection("s")
	p := model.Profile{ID: "p"}
	p.Add("a", "apple apple apple")
	p.Add("b", "apple")
	e.Append(p)
	q := model.Profile{ID: "q"}
	q.Add("a", "apple pie")
	e.Append(q)
	ds := &model.Dataset{Name: "d", Kind: model.Dirty, E1: e, Truth: model.NewGroundTruth()}
	c := TokenBlocking(ds)
	b := blockByKey(t, c, "apple")
	if len(b.P1) != 2 {
		t.Errorf("apple block has %d entries, want 2 (deduplicated)", len(b.P1))
	}
}

func TestSchemaKeyStandardBlocking(t *testing.T) {
	ds := cleanDataset()
	align := map[[2]string]string{
		{"0", "title"}: "t",
		{"1", "name"}:  "t",
	}
	c := Build(ds, text.NewTokenizer(), SchemaKey(align))
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Same pairs as token blocking here, but keys carry the alignment id.
	for i := range c.Blocks {
		if c.Blocks[i].Key == "deep" {
			t.Error("SchemaKey should qualify keys, found bare token")
		}
	}
	b := blockByKey(t, c, "deep\x1ft")
	if b.Comparisons() != 1 {
		t.Errorf("aligned deep block comparisons = %d, want 1", b.Comparisons())
	}
}

func TestSchemaKeySkipsUnalignedAttributes(t *testing.T) {
	ds := cleanDataset()
	align := map[[2]string]string{{"0", "title"}: "t"} // E2's name not aligned
	c := Build(ds, text.NewTokenizer(), SchemaKey(align))
	if c.Len() != 0 {
		t.Errorf("unaligned E2 should yield no cross blocks, got %d", c.Len())
	}
}

func TestAggregateCardinality(t *testing.T) {
	ds := datasets.PaperExample()
	c := TokenBlocking(ds)
	// 11 blocks of 2 profiles (1 comparison) + abram with 4 profiles (6).
	if got := c.AggregateCardinality(); got != 17 {
		t.Errorf("AggregateCardinality = %d, want 17", got)
	}
}

func TestDistinctPairs(t *testing.T) {
	ds := datasets.PaperExample()
	c := TokenBlocking(ds)
	pairs := c.DistinctPairs()
	if len(pairs) != 6 {
		t.Errorf("distinct pairs = %d, want 6 (complete graph on 4 nodes)", len(pairs))
	}
}

func TestPurgeDropsHugeBlocks(t *testing.T) {
	ds := datasets.PaperExample()
	c := TokenBlocking(ds)
	// abram contains all 4 profiles = 100% > 50%.
	p := Purge(c, 0.5)
	for i := range p.Blocks {
		if p.Blocks[i].Key == "abram" {
			t.Error("Purge kept the abram block (4/4 profiles)")
		}
	}
	if p.Len() != c.Len()-1 {
		t.Errorf("Purge dropped %d blocks, want 1", c.Len()-p.Len())
	}
	// Input untouched.
	if c.Len() != 12 {
		t.Error("Purge modified its input")
	}
}

func TestPurgeDefaultRatio(t *testing.T) {
	ds := datasets.PaperExample()
	c := TokenBlocking(ds)
	if got, want := Purge(c, 0).Len(), Purge(c, 0.5).Len(); got != want {
		t.Errorf("default ratio mismatch: %d vs %d", got, want)
	}
}

func TestPurgeByCardinality(t *testing.T) {
	ds := datasets.PaperExample()
	c := TokenBlocking(ds)
	p := PurgeByCardinality(c, 1)
	for i := range p.Blocks {
		if p.Blocks[i].Comparisons() > 1 {
			t.Errorf("block %q with %d comparisons survived", p.Blocks[i].Key, p.Blocks[i].Comparisons())
		}
	}
	if got := PurgeByCardinality(c, 0).Len(); got != c.Len() {
		t.Errorf("non-positive limit should clone, got %d blocks", got)
	}
}

func TestFilterNeverIncreasesCardinality(t *testing.T) {
	ds := datasets.PaperExample()
	c := TokenBlocking(ds)
	f := Filter(c, 0.8)
	if f.AggregateCardinality() > c.AggregateCardinality() {
		t.Errorf("Filter increased ||B||: %d -> %d", c.AggregateCardinality(), f.AggregateCardinality())
	}
	if err := f.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestFilterRemovesLeastImportantBlocks(t *testing.T) {
	// p appears in blocks of size 2 and one huge block; with a tight
	// ratio the huge (least important) membership goes first.
	e := model.NewCollection("s")
	mk := func(id, val string) {
		p := model.Profile{ID: id}
		p.Add("a", val)
		e.Append(p)
	}
	mk("p0", "rare shared") // rare: p0,p1 ; shared: everyone
	mk("p1", "rare shared")
	mk("p2", "shared")
	mk("p3", "shared")
	mk("p4", "shared")
	ds := &model.Dataset{Name: "d", Kind: model.Dirty, E1: e, Truth: model.NewGroundTruth()}
	c := TokenBlocking(ds)
	f := Filter(c, 0.5)
	// p0 and p1 keep only their smallest block: "rare".
	for i := range f.Blocks {
		b := &f.Blocks[i]
		if b.Key == "shared" {
			for _, p := range b.P1 {
				if p == 0 || p == 1 {
					t.Errorf("profile %d kept its least-important membership", p)
				}
			}
		}
	}
	rare := blockByKey(t, f, "rare")
	if len(rare.P1) != 2 {
		t.Errorf("rare block = %v, want both members kept", ids(rare.P1))
	}
}

func TestFilterKeepsAtLeastOneBlockPerProfile(t *testing.T) {
	ds := datasets.PaperExample()
	c := TokenBlocking(ds)
	f := Filter(c, 0.01) // pathological ratio
	counts := f.ProfileBlockCounts()
	for p, n := range counts {
		if n < 1 {
			t.Errorf("profile %d lost all blocks", p)
		}
	}
}

func TestFilterDefaultRatio(t *testing.T) {
	ds := datasets.PaperExample()
	c := TokenBlocking(ds)
	if got, want := Filter(c, -1).AggregateCardinality(), Filter(c, 0.8).AggregateCardinality(); got != want {
		t.Errorf("default ratio mismatch: %d vs %d", got, want)
	}
}

func TestCleanWorkflow(t *testing.T) {
	ds := datasets.PaperExample()
	c := TokenBlocking(ds)
	w := CleanWorkflow(c, 0.5, 0.8)
	if w.AggregateCardinality() >= c.AggregateCardinality() {
		t.Errorf("workflow should reduce ||B||: %d -> %d", c.AggregateCardinality(), w.AggregateCardinality())
	}
	if err := w.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	ds := datasets.PaperExample()
	c := TokenBlocking(ds)
	cl := c.Clone()
	cl.Blocks[0].P1[0] = 99
	cl.Blocks[0].Key = "mutated"
	if c.Blocks[0].Key == "mutated" || c.Blocks[0].P1[0] == 99 {
		t.Error("Clone shares state with the original")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	ds := datasets.PaperExample()
	c := TokenBlocking(ds)
	c.Blocks[0].P1 = append(c.Blocks[0].P1, 999)
	if err := c.Validate(); err == nil {
		t.Error("Validate accepted out-of-range id")
	}

	c2 := TokenBlocking(ds)
	c2.Blocks[0].P1 = append(c2.Blocks[0].P1, c2.Blocks[0].P1[0])
	if err := c2.Validate(); err == nil {
		t.Error("Validate accepted duplicate id in block")
	}

	c3 := TokenBlocking(ds)
	c3.Blocks[0].P2 = []int32{1}
	if err := c3.Validate(); err == nil {
		t.Error("Validate accepted P2 on dirty block")
	}
}

func TestBlocksOfProfilesConsistent(t *testing.T) {
	ds := datasets.PaperExample()
	c := TokenBlocking(ds)
	per := c.BlocksOfProfiles()
	counts := c.ProfileBlockCounts()
	for p := range per {
		if len(per[p]) != int(counts[p]) {
			t.Errorf("profile %d: lists %d blocks, counts %d", p, len(per[p]), counts[p])
		}
		for _, bid := range per[p] {
			b := &c.Blocks[bid]
			found := false
			for _, q := range b.P1 {
				if int(q) == p {
					found = true
				}
			}
			for _, q := range b.P2 {
				if int(q) == p {
					found = true
				}
			}
			if !found {
				t.Errorf("profile %d listed in block %d but absent", p, bid)
			}
		}
	}
}

// TestPurgeFilterMonotonicityProperty: purging and filtering never
// increase the number of blocks or the aggregate cardinality, for
// arbitrary small dirty datasets.
func TestPurgeFilterMonotonicityProperty(t *testing.T) {
	f := func(vals []string, ratioPct uint8) bool {
		e := model.NewCollection("s")
		for i, v := range vals {
			p := model.Profile{ID: string(rune('a' + i%26))}
			p.Add("x", v)
			e.Append(p)
		}
		if e.Len() == 0 {
			return true
		}
		ds := &model.Dataset{Name: "d", Kind: model.Dirty, E1: e, Truth: model.NewGroundTruth()}
		c := TokenBlocking(ds)
		ratio := float64(ratioPct%100+1) / 100
		p := Purge(c, ratio)
		fl := Filter(c, ratio)
		return p.Len() <= c.Len() &&
			p.AggregateCardinality() <= c.AggregateCardinality() &&
			fl.AggregateCardinality() <= c.AggregateCardinality() &&
			p.Validate() == nil && fl.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBuildSortedDeterministic(t *testing.T) {
	ds := datasets.PaperExample()
	a := TokenBlocking(ds)
	b := TokenBlocking(ds)
	if a.Len() != b.Len() {
		t.Fatal("nondeterministic block count")
	}
	for i := range a.Blocks {
		if a.Blocks[i].Key != b.Blocks[i].Key {
			t.Fatal("nondeterministic block order")
		}
	}
	for i := 1; i < a.Len(); i++ {
		if a.Blocks[i-1].Key >= a.Blocks[i].Key {
			t.Fatal("blocks not sorted by key")
		}
	}
}
