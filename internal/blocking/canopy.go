package blocking

import (
	"fmt"
	"sort"

	"blast/internal/lsh"
	"blast/internal/model"
	"blast/internal/stats"
	"blast/internal/text"
)

// Canopy implements Canopy Clustering (McCallum, Nigam, Ungar; KDD 2000
// — cited as [14] by the BLAST paper): profiles are grouped into
// overlapping canopies using a cheap similarity. Starting from a random
// unprocessed profile, every profile with Jaccard similarity >= loose
// joins the canopy, and those with similarity >= tight are removed from
// the candidate pool. Each canopy becomes a block, so the result plugs
// into the same meta-blocking pipeline as Token Blocking.
//
// The cheap similarity is token-set Jaccard computed through an inverted
// index: only profiles sharing at least one token with the seed are
// scored, which is the "cheap distance" the method calls for.
//
// It requires 0 < tight and loose <= tight is rejected (loose must be
// the smaller threshold, admitting more profiles than tight removes).
func Canopy(ds *model.Dataset, tr text.Transform, loose, tight float64, seed uint64) (*Collection, error) {
	if tr == nil {
		tr = text.NewTokenizer()
	}
	if loose <= 0 || tight <= 0 || loose > tight || tight > 1 {
		return nil, fmt.Errorf("blocking: canopy needs 0 < loose <= tight <= 1, got %v/%v", loose, tight)
	}

	n := ds.NumProfiles()
	tokens := make([][]uint64, n) // sorted unique token hashes per profile
	inverted := make(map[uint64][]int32)
	for i := 0; i < n; i++ {
		set := make(map[uint64]struct{})
		for _, pair := range ds.Profile(i).Pairs {
			for _, tok := range tr.Terms(pair.Value) {
				set[lsh.TokenHash(tok)] = struct{}{}
			}
		}
		ts := make([]uint64, 0, len(set))
		for h := range set {
			ts = append(ts, h)
		}
		sort.Slice(ts, func(a, b int) bool { return ts[a] < ts[b] })
		tokens[i] = ts
		for _, h := range ts {
			inverted[h] = append(inverted[h], int32(i))
		}
	}

	rng := stats.NewRNG(seed)
	order := rng.Perm(n)
	inPool := make([]bool, n)
	for i := range inPool {
		inPool[i] = true
	}

	c := &Collection{Kind: ds.Kind, NumProfiles: n, Split: ds.Split()}
	overlap := make(map[int32]int, 64)
	blockID := 0
	for _, seedIdx := range order {
		if !inPool[seedIdx] {
			continue
		}
		st := tokens[seedIdx]
		if len(st) == 0 {
			inPool[seedIdx] = false
			continue
		}
		// Count token overlaps with pool members via the inverted index.
		clear(overlap)
		for _, h := range st {
			for _, other := range inverted[h] {
				if inPool[other] {
					overlap[other]++
				}
			}
		}
		var members []int32
		for other, inter := range overlap {
			union := len(st) + len(tokens[other]) - inter
			sim := float64(inter) / float64(union)
			if sim >= loose {
				members = append(members, other)
				if sim >= tight {
					inPool[other] = false
				}
			}
		}
		inPool[seedIdx] = false
		if len(members) < 2 {
			continue
		}
		sort.Slice(members, func(a, b int) bool { return members[a] < members[b] })
		b := Block{Key: fmt.Sprintf("canopy-%04d", blockID)}
		blockID++
		if ds.Kind == model.CleanClean {
			b.P2 = []int32{}
			for _, m := range members {
				if int(m) < c.Split {
					b.P1 = append(b.P1, m)
				} else {
					b.P2 = append(b.P2, m)
				}
			}
		} else {
			b.P1 = members
		}
		if b.Comparisons() == 0 {
			continue
		}
		b.Entropy = 1
		c.Blocks = append(c.Blocks, b)
	}
	c.sortBlocks()
	return c, nil
}

// QGramBlocking builds blocks with overlapping character q-grams as
// blocking keys (Gravano et al., VLDB 2001 — the [9]/[7] alternative the
// paper mentions in Section 3.2). More robust to typos than Token
// Blocking, at the cost of many more blocks.
func QGramBlocking(ds *model.Dataset, q int) *Collection {
	return Build(ds, text.NewQGram(q), TokenKey)
}

// SuffixBlocking builds blocks keyed by token suffixes of length >=
// minLength (Suffix Array blocking, de Vries et al.). Combine with
// Purge to drop the huge short-suffix blocks, as the original method's
// maximum-block-size parameter does.
func SuffixBlocking(ds *model.Dataset, minLength int) *Collection {
	return Build(ds, text.NewSuffix(minLength), TokenKey)
}
