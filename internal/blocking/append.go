package blocking

// Appendable block collections: the substrate of incremental
// meta-blocking. A batch run freezes the cleaned collection once;
// append-heavy streams (the open scaling case of the blocking surveys)
// then need new profiles folded into that frozen collection without
// re-running blocking. An Appender maintains the inverted structures a
// cold build derives from scratch — key -> block, profile -> blocks,
// per-profile block counts, the aggregate cardinality — and keeps them
// consistent with the collection under profile appends, so graph-level
// consumers can splice instead of rebuilding.
//
// Append semantics are deliberately "cleaning-frozen": Block Purging and
// Block Filtering decisions made when the collection was built are never
// revisited. A key that was purged or filtered away simply no longer
// exists; new profiles carrying it accumulate under a fresh pending key
// instead of resurrecting the old block's members.

import (
	"sort"

	"blast/internal/model"
)

// KeyEntropy is one blocking key of a profile being appended, together
// with the entropy h(b) its blocks inherit (1 for schema-agnostic keys).
type KeyEntropy struct {
	Key     string
	Entropy float64
}

// AppendResult describes how one Append changed the collection.
type AppendResult struct {
	// ID is the global id assigned to the appended profile.
	ID int32
	// Joined lists the indexes of the blocks the profile became a member
	// of, ascending. It includes Created and equals the profile's |B_i|.
	Joined []int32
	// Created is the subset of Joined that are new blocks, materialized
	// from pending keys that reached their first valid comparison.
	Created []int32
	// CountChanged lists previously existing profiles whose block count
	// |B_i| grew — members of pending keys that materialized into a
	// block alongside the new profile. One entry per newly joined block,
	// so a profile appears once per unit of |B_i| increase. Ascending.
	CountChanged []int32
	// ComparisonsDelta is the change in the collection's aggregate
	// cardinality ||B||.
	ComparisonsDelta int64
}

// pendingKey accumulates the members of a key that does not (yet) form a
// block entailing at least one comparison. Singleton keys never enter
// the collection: a comparison-free block would distort |B| and |B_i|
// relative to what the key contributes, and could never be pruned away.
// Only dirty collections keep pending keys — clean-clean appends are
// E2-only, so an unknown key can never entail a cross-source comparison
// and is dropped outright.
type pendingKey struct {
	entropy float64
	p1      []int32
}

// Appender folds new profiles into an existing block collection. It owns
// the collection it wraps: between NewAppender and the last Append no
// other code may mutate the collection. It is not safe for concurrent
// use; callers serialize access (the blast.Index does so under its own
// lock).
type Appender struct {
	c       *Collection
	byKey   map[string]int32
	pending map[string]*pendingKey
	perProf [][]int32 // profile -> ascending block indexes
}

// NewAppender indexes a collection for appends: key -> block and
// profile -> blocks. Cost is one pass over the block memberships.
func NewAppender(c *Collection) *Appender {
	a := &Appender{
		c:       c,
		byKey:   make(map[string]int32, len(c.Blocks)),
		pending: make(map[string]*pendingKey),
		perProf: c.BlocksOfProfiles(),
	}
	for i := range c.Blocks {
		a.byKey[c.Blocks[i].Key] = int32(i)
	}
	return a
}

// Collection returns the live collection the appender maintains.
func (a *Appender) Collection() *Collection { return a.c }

// BlocksOf returns the ascending block indexes of a profile. The slice
// is owned by the appender and must not be modified.
func (a *Appender) BlocksOf(p int32) []int32 { return a.perProf[p] }

// BlockCount returns |B_p| under the live collection.
func (a *Appender) BlockCount(p int32) int32 { return int32(len(a.perProf[p])) }

// PendingKeys returns the number of keys waiting for their first valid
// comparison before materializing into blocks.
func (a *Appender) PendingKeys() int { return len(a.pending) }

// Append adds a profile with the given blocking keys to the collection
// and returns the assigned global id together with the structural
// changes. Keys are deduplicated and processed in sorted order, so a
// given (collection state, key set) always yields the same collection.
//
// For clean-clean collections the profile joins E2 (ids at the end of
// the global id space); appending to E1 would shift every E2 id and is
// not supported. For dirty collections there is only one source.
func (a *Appender) Append(keys []KeyEntropy) AppendResult {
	c := a.c
	id := int32(c.NumProfiles)
	res := AppendResult{ID: id}

	// Deterministic key order: sort, then drop duplicates (first wins).
	ks := append([]KeyEntropy(nil), keys...)
	sort.Slice(ks, func(i, j int) bool { return ks[i].Key < ks[j].Key })
	for i, ke := range ks {
		if i > 0 && ke.Key == ks[i-1].Key {
			continue
		}
		if bi, ok := a.byKey[ke.Key]; ok {
			b := &c.Blocks[bi]
			old := b.Comparisons()
			if c.Kind == model.CleanClean {
				b.P2 = append(b.P2, id)
			} else {
				b.P1 = append(b.P1, id)
			}
			res.ComparisonsDelta += b.Comparisons() - old
			res.Joined = append(res.Joined, bi)
			continue
		}
		if c.Kind == model.CleanClean {
			// Appends only ever add E2 members, so a key unknown to the
			// collection can never entail a cross-source comparison:
			// accumulating it as pending would only leak memory.
			continue
		}
		pk := a.pending[ke.Key]
		if pk == nil {
			pk = &pendingKey{entropy: ke.Entropy}
			a.pending[ke.Key] = pk
		}
		pk.p1 = append(pk.p1, id)
		nb := Block{Key: ke.Key, Entropy: pk.entropy, P1: pk.p1}
		if nb.Comparisons() == 0 {
			continue // still pending
		}
		// Materialize: the key's members finally entail a comparison.
		bi := int32(len(c.Blocks))
		c.Blocks = append(c.Blocks, nb)
		a.byKey[ke.Key] = bi
		delete(a.pending, ke.Key)
		res.ComparisonsDelta += nb.Comparisons()
		res.Joined = append(res.Joined, bi)
		res.Created = append(res.Created, bi)
		for _, m := range nb.P1 {
			if m == id {
				continue
			}
			// A new block index is always the largest, so appending keeps
			// the member's block list ascending.
			a.perProf[m] = append(a.perProf[m], bi)
			res.CountChanged = append(res.CountChanged, m)
		}
	}
	c.NumProfiles++
	sort.Slice(res.Joined, func(i, j int) bool { return res.Joined[i] < res.Joined[j] })
	a.perProf = append(a.perProf, append([]int32(nil), res.Joined...))
	sort.Slice(res.CountChanged, func(i, j int) bool { return res.CountChanged[i] < res.CountChanged[j] })
	return res
}
