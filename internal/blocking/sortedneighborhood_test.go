package blocking_test

import (
	"testing"

	"blast/internal/blocking"
	"blast/internal/datasets"
	"blast/internal/metrics"
	"blast/internal/model"
)

func TestSortedNeighborhoodWindow(t *testing.T) {
	// Profiles keyed a,b,c,d,e: window 3 -> 3 blocks, adjacent profiles
	// co-occur, distance >= 3 never does.
	e := model.NewCollection("s")
	for _, v := range []string{"alpha", "bravo", "charlie", "delta", "echo"} {
		p := model.Profile{ID: v}
		p.Add("k", v)
		e.Append(p)
	}
	ds := &model.Dataset{Name: "d", Kind: model.Dirty, E1: e, Truth: model.NewGroundTruth()}
	c, err := blocking.SortedNeighborhood(ds, nil, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if c.Len() != 3 {
		t.Fatalf("blocks = %d, want 3 (5 - 3 + 1)", c.Len())
	}
	pairs := c.DistinctPairs()
	if _, ok := pairs[model.MakePair(0, 1).Key()]; !ok {
		t.Error("adjacent pair missing")
	}
	if _, ok := pairs[model.MakePair(0, 4).Key()]; ok {
		t.Error("distance-4 pair should not co-occur with window 3")
	}
}

func TestSortedNeighborhoodFindsNearDuplicates(t *testing.T) {
	ds := datasets.Census(0.2, 9)
	c, err := blocking.SortedNeighborhood(ds, nil, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := metrics.EvaluateBlocks(c, ds.Truth)
	// SN with the smallest-token key catches a decent share of the
	// duplicates (classic behaviour: good but not complete recall).
	if q.PC < 0.3 {
		t.Errorf("SN PC = %v, want >= 0.3", q.PC)
	}
	if q.Comparisons >= ds.TotalComparisons() {
		t.Error("SN should compare far fewer than brute force")
	}
}

func TestSortedNeighborhoodCleanClean(t *testing.T) {
	ds := datasets.AR1(0.05, 3)
	c, err := blocking.SortedNeighborhood(ds, nil, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Clean-clean windows containing a single side entail no comparison
	// and must have been dropped.
	for i := range c.Blocks {
		if c.Blocks[i].Comparisons() == 0 {
			t.Fatal("zero-comparison window survived")
		}
	}
}

func TestSortedNeighborhoodByKeyCustom(t *testing.T) {
	ds := datasets.PaperExample()
	c, err := blocking.SortedNeighborhoodByKey(ds, 2, func(p *model.Profile) string {
		if v, ok := p.Value("year"); ok {
			return v
		}
		return p.ID
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() == 0 {
		t.Fatal("no windows")
	}
}

func TestSortedNeighborhoodValidation(t *testing.T) {
	ds := datasets.PaperExample()
	if _, err := blocking.SortedNeighborhood(ds, nil, 1, 1); err == nil {
		t.Error("window < 2 should error")
	}
	if _, err := blocking.SortedNeighborhoodByKey(ds, 3, nil); err == nil {
		t.Error("nil key should error")
	}
	if _, err := blocking.SortedNeighborhoodByKey(ds, 0, func(*model.Profile) string { return "" }); err == nil {
		t.Error("window < 2 should error")
	}
}

func TestSortedNeighborhoodSkipsEmptyKeys(t *testing.T) {
	e := model.NewCollection("s")
	e.Append(model.Profile{ID: "empty"})
	for _, v := range []string{"aa", "ab"} {
		p := model.Profile{ID: v}
		p.Add("k", v)
		e.Append(p)
	}
	ds := &model.Dataset{Name: "d", Kind: model.Dirty, E1: e, Truth: model.NewGroundTruth()}
	c, err := blocking.SortedNeighborhood(ds, nil, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Blocks {
		for _, id := range c.Blocks[i].P1 {
			if id == 0 {
				t.Error("keyless profile entered a window")
			}
		}
	}
}
