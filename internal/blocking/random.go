package blocking

import (
	"fmt"

	"blast/internal/model"
	"blast/internal/stats"
)

// RandomCollection builds a randomized, structurally valid (Validate-clean)
// block collection: profiles scattered over blocks of varying size, with
// varied entropies including zero. It exists for property-style tests and
// benchmarks — notably the engine-equivalence harness, which asserts that
// every graph builder and pruning engine agrees on arbitrary collections —
// and draws all randomness from the caller's seeded generator, so a given
// (rng state, shape) is fully reproducible.
//
// For clean-clean collections the profile space is split in half: ids
// below the split belong to E1, the rest to E2, and every block gets at
// least one profile from each side.
func RandomCollection(rng *stats.RNG, kind model.Kind, profiles, blocks int) *Collection {
	c := &Collection{Kind: kind, NumProfiles: profiles}
	if kind == model.CleanClean {
		c.Split = profiles / 2
	}
	// sample draws n distinct ids from [lo, hi).
	sample := func(lo, hi, n int) []int32 {
		if n > hi-lo {
			n = hi - lo
		}
		seen := make(map[int32]bool, n)
		out := make([]int32, 0, n)
		for len(out) < n {
			id := int32(lo + rng.Intn(hi-lo))
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
		return out
	}
	for b := 0; b < blocks; b++ {
		// Entropy 0 every few blocks exercises the EntropySum == 0 path
		// of the entropy-scaled weighting schemes.
		entropy := 0.0
		if rng.Intn(4) > 0 {
			entropy = 0.1 + 2*rng.Float64()
		}
		blk := Block{Key: fmt.Sprintf("b%05d", b), Entropy: entropy}
		if kind == model.CleanClean {
			blk.P1 = sample(0, c.Split, 1+rng.Intn(5))
			blk.P2 = sample(c.Split, profiles, 1+rng.Intn(5))
		} else {
			blk.P1 = sample(0, profiles, 2+rng.Intn(6))
		}
		c.Blocks = append(c.Blocks, blk)
	}
	return c
}
