package blocking

// Tests of the appendable-Collection invariants: after any sequence of
// appends, the appender-maintained structures (key index, per-profile
// block lists, cardinality deltas) must agree with a fresh recomputation
// over the collection, the collection must stay Validate-clean, and
// pending keys must materialize exactly when they first entail a
// comparison.

import (
	"fmt"
	"reflect"
	"testing"

	"blast/internal/model"
	"blast/internal/stats"
)

// randomKeys draws a random key set (some existing, some fresh) for one
// append.
func randomKeys(rng *stats.RNG, existing []string) []KeyEntropy {
	var out []KeyEntropy
	n := 1 + rng.Intn(6)
	for i := 0; i < n; i++ {
		if len(existing) > 0 && rng.Intn(3) > 0 {
			out = append(out, KeyEntropy{Key: existing[rng.Intn(len(existing))], Entropy: 1})
		} else {
			out = append(out, KeyEntropy{Key: fmt.Sprintf("fresh%03d", rng.Intn(40)), Entropy: 0.5})
		}
	}
	// Occasionally duplicate a key within the call: Append must dedupe.
	if len(out) > 1 && rng.Intn(3) == 0 {
		out = append(out, out[0])
	}
	return out
}

// checkAppenderInvariants compares every appender-maintained statistic
// against a fresh recomputation over the live collection.
func checkAppenderInvariants(t *testing.T, a *Appender, wantComparisons int64) {
	t.Helper()
	c := a.Collection()
	if err := c.Validate(); err != nil {
		t.Fatalf("collection invalid after appends: %v", err)
	}
	if got := c.AggregateCardinality(); got != wantComparisons {
		t.Fatalf("||B|| = %d, tracked deltas say %d", got, wantComparisons)
	}
	counts := c.ProfileBlockCounts()
	perProf := c.BlocksOfProfiles()
	for p := 0; p < c.NumProfiles; p++ {
		if a.BlockCount(int32(p)) != counts[p] {
			t.Fatalf("profile %d: appender |B_i| = %d, recomputed %d", p, a.BlockCount(int32(p)), counts[p])
		}
		got := a.BlocksOf(int32(p))
		if len(got) != len(perProf[p]) {
			t.Fatalf("profile %d: appender lists %d blocks, recomputed %d", p, len(got), len(perProf[p]))
		}
		for i := range got {
			if got[i] != perProf[p][i] {
				t.Fatalf("profile %d: block list diverges at %d: %d vs %d", p, i, got[i], perProf[p][i])
			}
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("profile %d: block list not ascending", p)
			}
		}
	}
	// No materialized block may be comparison-free, and every block key
	// must be unique and indexed.
	seen := make(map[string]bool)
	for i := range c.Blocks {
		b := &c.Blocks[i]
		if b.Comparisons() == 0 {
			t.Fatalf("block %q entails no comparisons", b.Key)
		}
		if seen[b.Key] {
			t.Fatalf("duplicate block key %q", b.Key)
		}
		seen[b.Key] = true
	}
}

// baseCollection builds a small cleaned dirty collection to append onto.
func baseCollection(rng *stats.RNG, profiles, blocks int) *Collection {
	c := RandomCollection(rng, model.Dirty, profiles, blocks)
	// Give blocks realistic keys and run the cleaning workflow so the
	// appender starts from the same shape the pipeline produces.
	return CleanWorkflow(c, 0.8, 0.9)
}

func TestAppenderRandomizedInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		rng := stats.NewRNG(seed * 7919)
		c := baseCollection(rng, 20+rng.Intn(30), 15+rng.Intn(30))
		existing := make([]string, 0, len(c.Blocks))
		for i := range c.Blocks {
			existing = append(existing, c.Blocks[i].Key)
		}
		a := NewAppender(c)
		comparisons := c.AggregateCardinality()
		for step := 0; step < 25; step++ {
			before := c.NumProfiles
			res := a.Append(randomKeys(rng, existing))
			if int(res.ID) != before || c.NumProfiles != before+1 {
				t.Fatalf("seed %d step %d: id %d, profiles %d -> %d", seed, step, res.ID, before, c.NumProfiles)
			}
			comparisons += res.ComparisonsDelta
			if len(res.Joined) != len(a.BlocksOf(res.ID)) {
				t.Fatalf("seed %d step %d: Joined %d vs recorded %d", seed, step, len(res.Joined), len(a.BlocksOf(res.ID)))
			}
			for _, bi := range res.Created {
				found := false
				for _, ji := range res.Joined {
					if ji == bi {
						found = true
					}
				}
				if !found {
					t.Fatalf("seed %d step %d: created block %d not in Joined", seed, step, bi)
				}
			}
		}
		checkAppenderInvariants(t, a, comparisons)
	}
}

func TestAppenderPendingMaterialization(t *testing.T) {
	rng := stats.NewRNG(3)
	c := baseCollection(rng, 12, 10)
	a := NewAppender(c)
	comparisons := c.AggregateCardinality()
	blocksBefore := c.Len()

	// First carrier of a fresh key: pending, no block, |B_i| excludes it.
	r1 := a.Append([]KeyEntropy{{Key: "unique-xyz", Entropy: 2}})
	comparisons += r1.ComparisonsDelta
	if len(r1.Joined) != 0 || len(r1.Created) != 0 || r1.ComparisonsDelta != 0 {
		t.Fatalf("first carrier joined %v created %v", r1.Joined, r1.Created)
	}
	if a.PendingKeys() != 1 || c.Len() != blocksBefore {
		t.Fatalf("pending %d, blocks %d -> %d", a.PendingKeys(), blocksBefore, c.Len())
	}
	if a.BlockCount(r1.ID) != 0 {
		t.Fatalf("pending key counted in |B_i| = %d", a.BlockCount(r1.ID))
	}

	// Second carrier: the key materializes into a two-member block, and
	// the first carrier's block count grows (reported via CountChanged).
	r2 := a.Append([]KeyEntropy{{Key: "unique-xyz", Entropy: 2}})
	comparisons += r2.ComparisonsDelta
	if len(r2.Created) != 1 || r2.ComparisonsDelta != 1 {
		t.Fatalf("second carrier created %v delta %d", r2.Created, r2.ComparisonsDelta)
	}
	if a.PendingKeys() != 0 {
		t.Fatalf("pending keys left: %d", a.PendingKeys())
	}
	if len(r2.CountChanged) != 1 || r2.CountChanged[0] != r1.ID {
		t.Fatalf("CountChanged = %v, want [%d]", r2.CountChanged, r1.ID)
	}
	nb := &c.Blocks[r2.Created[0]]
	if nb.Entropy != 2 || len(nb.P1) != 2 {
		t.Fatalf("materialized block %+v", nb)
	}

	// A profile joining several pending keys at once: CountChanged lists
	// the earlier member once per materialized block.
	r3 := a.Append([]KeyEntropy{{Key: "pair-a", Entropy: 1}, {Key: "pair-b", Entropy: 1}})
	comparisons += r3.ComparisonsDelta
	r4 := a.Append([]KeyEntropy{{Key: "pair-a", Entropy: 1}, {Key: "pair-b", Entropy: 1}})
	comparisons += r4.ComparisonsDelta
	if len(r4.Created) != 2 || len(r4.CountChanged) != 2 {
		t.Fatalf("double materialization: created %v countChanged %v", r4.Created, r4.CountChanged)
	}
	if r4.CountChanged[0] != r3.ID || r4.CountChanged[1] != r3.ID {
		t.Fatalf("CountChanged = %v, want [%d %d]", r4.CountChanged, r3.ID, r3.ID)
	}
	checkAppenderInvariants(t, a, comparisons)
}

func TestAppenderCleanClean(t *testing.T) {
	rng := stats.NewRNG(5)
	c := RandomCollection(rng, model.CleanClean, 20, 16)
	a := NewAppender(c)
	comparisons := c.AggregateCardinality()
	existing := []string{c.Blocks[0].Key, c.Blocks[1].Key}
	split := c.Split

	for i := 0; i < 10; i++ {
		res := a.Append(randomKeys(rng, existing))
		comparisons += res.ComparisonsDelta
		if int(res.ID) < split {
			t.Fatalf("appended profile %d below split %d", res.ID, split)
		}
		// Appended profiles are E2-side: they must land in P2 only.
		for _, bi := range res.Joined {
			b := &c.Blocks[bi]
			for _, p := range b.P1 {
				if p == res.ID {
					t.Fatalf("appended profile %d on E1 side of block %q", res.ID, b.Key)
				}
			}
		}
	}
	// Fresh keys among E2-only arrivals can never entail a cross-source
	// comparison, so they stay pending forever.
	if c.Split != split {
		t.Fatalf("split moved: %d -> %d", c.Split, split)
	}
	checkAppenderInvariants(t, a, comparisons)
}

func TestAppenderDeterminism(t *testing.T) {
	build := func() *Collection {
		rng := stats.NewRNG(11)
		c := baseCollection(rng, 18, 14)
		a := NewAppender(c)
		for i := 0; i < 12; i++ {
			a.Append(randomKeys(rng, []string{c.Blocks[0].Key, c.Blocks[2].Key}))
		}
		return c
	}
	c1, c2 := build(), build()
	if !reflect.DeepEqual(c1, c2) {
		t.Fatal("identical append sequences produced different collections")
	}
}
