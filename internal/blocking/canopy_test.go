package blocking_test

import (
	"testing"

	"blast/internal/blocking"
	"blast/internal/datasets"
	"blast/internal/metrics"
	"blast/internal/model"
	"blast/internal/text"
)

func TestCanopyPaperExample(t *testing.T) {
	ds := datasets.PaperExample()
	c, err := blocking.Canopy(ds, text.NewTokenizer(), 0.15, 0.5, 7)
	if err != nil {
		t.Fatalf("Canopy: %v", err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// The loose threshold 0.15 groups the overlapping profiles; both true
	// matches must co-occur in at least one canopy.
	q := metrics.EvaluateBlocks(c, ds.Truth)
	if q.PC < 1 {
		t.Errorf("canopy PC = %v, want 1 on the example", q.PC)
	}
}

func TestCanopyThresholdValidation(t *testing.T) {
	ds := datasets.PaperExample()
	for _, bad := range [][2]float64{{0, 0.5}, {0.5, 0}, {0.8, 0.5}, {0.5, 1.5}} {
		if _, err := blocking.Canopy(ds, nil, bad[0], bad[1], 1); err == nil {
			t.Errorf("thresholds %v should be rejected", bad)
		}
	}
}

func TestCanopyTightRemovesFromPool(t *testing.T) {
	// Three near-identical profiles and one outlier: with tight=loose
	// every member is removed with its first canopy, so each profile
	// appears in exactly one canopy.
	e := model.NewCollection("s")
	for _, v := range []string{"aa bb cc dd", "aa bb cc dd", "aa bb cc dd", "zz yy xx"} {
		p := model.Profile{ID: v[:2]}
		p.Add("x", v)
		e.Append(p)
	}
	ds := &model.Dataset{Name: "d", Kind: model.Dirty, E1: e, Truth: model.NewGroundTruth()}
	c, err := blocking.Canopy(ds, nil, 0.9, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := c.ProfileBlockCounts()
	for p, n := range counts[:3] {
		if n > 1 {
			t.Errorf("profile %d in %d canopies, want <= 1 with tight removal", p, n)
		}
	}
	if c.Len() != 1 {
		t.Errorf("blocks = %d, want 1 (identical trio)", c.Len())
	}
}

func TestCanopyLooseOverlaps(t *testing.T) {
	// loose << tight: profiles stay in the pool and may join several
	// canopies — the overlapping-canopy property of the method.
	e := model.NewCollection("s")
	for _, v := range []string{"aa bb cc dd ee", "aa bb cc dd ff", "aa bb gg hh ii"} {
		p := model.Profile{ID: v[:2]}
		p.Add("x", v)
		e.Append(p)
	}
	ds := &model.Dataset{Name: "d", Kind: model.Dirty, E1: e, Truth: model.NewGroundTruth()}
	c, err := blocking.Canopy(ds, nil, 0.2, 0.95, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := c.ProfileBlockCounts()
	multi := 0
	for _, n := range counts {
		if n > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("expected at least one profile in overlapping canopies")
	}
}

func TestCanopyCleanCleanSides(t *testing.T) {
	ds := datasets.AR1(0.03, 5)
	c, err := blocking.Canopy(ds, nil, 0.2, 0.6, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if c.Len() == 0 {
		t.Fatal("no canopies formed")
	}
	q := metrics.EvaluateBlocks(c, ds.Truth)
	if q.PC < 0.7 {
		t.Errorf("canopy PC on ar1 = %v, want reasonable recall", q.PC)
	}
}

func TestCanopyDeterministicForSeed(t *testing.T) {
	ds := datasets.PRD(0.05, 5)
	a, _ := blocking.Canopy(ds, nil, 0.2, 0.6, 9)
	b, _ := blocking.Canopy(ds, nil, 0.2, 0.6, 9)
	if a.Len() != b.Len() {
		t.Fatalf("nondeterministic canopy count: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Blocks {
		if a.Blocks[i].Key != b.Blocks[i].Key || a.Blocks[i].Size() != b.Blocks[i].Size() {
			t.Fatal("nondeterministic canopy content")
		}
	}
}

func TestQGramBlocking(t *testing.T) {
	ds := datasets.PaperExample()
	c := blocking.QGramBlocking(ds, 3)
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Q-grams are more redundant than tokens: at least as many blocks.
	tk := blocking.TokenBlocking(ds)
	if c.Len() < tk.Len() {
		t.Errorf("qgram blocks %d < token blocks %d", c.Len(), tk.Len())
	}
	q := metrics.EvaluateBlocks(c, ds.Truth)
	if q.PC < 1 {
		t.Errorf("qgram PC = %v, want 1 (typo robustness adds recall)", q.PC)
	}
}

func TestSuffixBlockingRecallUnderTypos(t *testing.T) {
	// Tokens differing in their first letters still share suffixes.
	e := model.NewCollection("s")
	p := model.Profile{ID: "a"}
	p.Add("name", "moeller")
	e.Append(p)
	q := model.Profile{ID: "b"}
	q.Add("name", "mueller")
	e.Append(q)
	ds := &model.Dataset{Name: "d", Kind: model.Dirty, E1: e, Truth: model.NewGroundTruth()}

	tk := blocking.TokenBlocking(ds)
	if tk.Len() != 0 {
		t.Fatalf("token blocking should not pair them, got %d blocks", tk.Len())
	}
	sf := blocking.SuffixBlocking(ds, 3)
	if sf.Len() == 0 {
		t.Fatal("suffix blocking should pair them via shared suffixes (eller, ller, ...)")
	}
	found := false
	for i := range sf.Blocks {
		if sf.Blocks[i].Key == "eller" {
			found = true
		}
	}
	if !found {
		t.Error("shared suffix block 'eller' missing")
	}
}
