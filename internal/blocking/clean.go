package blocking

import (
	"math"
	"sort"
)

// Purge implements Block Purging as described in Section 4.1 of the BLAST
// paper: it discards every block that contains more than maxRatio of the
// entity profiles of the dataset (default 0.5 — "more than half"),
// removing the blocks that correspond to highly frequent, stop-word-like
// blocking keys. It returns a new collection; the input is not modified.
func Purge(c *Collection, maxRatio float64) *Collection {
	if maxRatio <= 0 {
		maxRatio = 0.5
	}
	limit := maxRatio * float64(c.NumProfiles)
	out := &Collection{Kind: c.Kind, NumProfiles: c.NumProfiles, Split: c.Split}
	for i := range c.Blocks {
		b := c.Blocks[i]
		if float64(b.Size()) > limit {
			continue
		}
		out.Blocks = append(out.Blocks, b)
	}
	return out
}

// PurgeByCardinality is the comparison-cardinality-driven Block Purging of
// Papadakis et al. (TKDE'13): blocks are processed in order of decreasing
// ||b|| and a cutoff is chosen where the marginal gain in comparison count
// stops paying for itself — concretely, it finds the smallest cardinality
// limit such that dropping all blocks with ||b|| above it loses no block
// whose ||b|| is below maxPairsPerBlock. It is provided as an extension
// point; the BLAST evaluation uses the size-ratio Purge above.
func PurgeByCardinality(c *Collection, maxPairsPerBlock int64) *Collection {
	if maxPairsPerBlock <= 0 {
		return c.Clone()
	}
	out := &Collection{Kind: c.Kind, NumProfiles: c.NumProfiles, Split: c.Split}
	for i := range c.Blocks {
		b := c.Blocks[i]
		if b.Comparisons() > maxPairsPerBlock {
			continue
		}
		out.Blocks = append(out.Blocks, b)
	}
	return out
}

// Filter implements Block Filtering (Papadakis et al., EDBT'16; used by
// BLAST with ratio 0.8): each profile keeps only the keepRatio most
// important of its blocks — importance being inverse block cardinality,
// i.e. smaller blocks are more significant — and is removed from the
// rest. Blocks left with no valid comparison are dropped. It returns a
// new collection; the input is not modified.
func Filter(c *Collection, keepRatio float64) *Collection {
	if keepRatio <= 0 || keepRatio > 1 {
		keepRatio = 0.8
	}
	// Rank blocks by ascending comparison cardinality; ties by key order
	// (block index) for determinism.
	order := make([]int32, len(c.Blocks))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		bi, bj := &c.Blocks[order[i]], &c.Blocks[order[j]]
		ci, cj := bi.Comparisons(), bj.Comparisons()
		if ci != cj {
			return ci < cj
		}
		return order[i] < order[j]
	})
	rank := make([]int32, len(c.Blocks))
	for r, id := range order {
		rank[id] = int32(r)
	}

	// For every profile, sort its block list by the global rank and keep
	// the first ceil(keepRatio * |B_i|).
	perProfile := c.BlocksOfProfiles()
	keep := make(map[int64]struct{}) // (blockID<<32 | profileID) memberships kept
	for p, blocks := range perProfile {
		if len(blocks) == 0 {
			continue
		}
		sort.Slice(blocks, func(i, j int) bool { return rank[blocks[i]] < rank[blocks[j]] })
		k := int(math.Ceil(keepRatio * float64(len(blocks))))
		if k < 1 {
			k = 1
		}
		if k > len(blocks) {
			k = len(blocks)
		}
		for _, bid := range blocks[:k] {
			keep[int64(bid)<<32|int64(p)] = struct{}{}
		}
	}

	out := &Collection{Kind: c.Kind, NumProfiles: c.NumProfiles, Split: c.Split}
	for i := range c.Blocks {
		b := &c.Blocks[i]
		nb := Block{Key: b.Key, Entropy: b.Entropy}
		for _, p := range b.P1 {
			if _, ok := keep[int64(i)<<32|int64(p)]; ok {
				nb.P1 = append(nb.P1, p)
			}
		}
		if b.P2 != nil {
			nb.P2 = []int32{}
			for _, p := range b.P2 {
				if _, ok := keep[int64(i)<<32|int64(p)]; ok {
					nb.P2 = append(nb.P2, p)
				}
			}
		}
		if nb.Comparisons() == 0 {
			continue
		}
		out.Blocks = append(out.Blocks, nb)
	}
	return out
}

// CleanWorkflow applies the paper's preprocessing pipeline to a freshly
// built block collection: Block Purging (ratio purgeRatio, default 0.5)
// followed by Block Filtering (ratio filterRatio, default 0.8).
func CleanWorkflow(c *Collection, purgeRatio, filterRatio float64) *Collection {
	return Filter(Purge(c, purgeRatio), filterRatio)
}
