package blocking

import (
	"context"

	"blast/internal/model"
	"blast/internal/text"
)

// KeyFunc maps a token occurrence to a blocking key. source is the index
// of the collection the profile belongs to (0 for E1, 1 for E2), attr the
// attribute name the token was extracted from. It returns the key, the
// entropy h(b) to associate with the key's blocks, and whether the token
// should be indexed at all.
//
// Three key functions cover the paper's blocking techniques:
//
//   - Token Blocking: key = token (TokenKey);
//   - loosely schema-aware Token Blocking: key = token qualified by the
//     attribute cluster id, entropy = cluster aggregate entropy
//     (attr.Partitioning.KeyFunc);
//   - Standard Blocking: key = token qualified by the aligned schema
//     attribute (SchemaKey).
type KeyFunc func(source int, attr, token string) (key string, entropy float64, ok bool)

// TokenKey is the schema-agnostic Token Blocking key function: every token
// is its own key, regardless of the attribute it appears in.
func TokenKey(source int, attr, token string) (string, float64, bool) {
	return token, 1, true
}

// SchemaKey returns a KeyFunc implementing Standard Blocking over a manual
// schema alignment: tokens are qualified by the aligned attribute id of
// the attribute they appear in, so only tokens from aligned attributes
// co-occur in blocks. align maps (source, attribute name) to an alignment
// id; attributes missing from the map are not indexed.
func SchemaKey(align map[[2]string]string) KeyFunc {
	return func(source int, attr, token string) (string, float64, bool) {
		src := "0"
		if source == 1 {
			src = "1"
		}
		id, ok := align[[2]string{src, attr}]
		if !ok {
			return "", 0, false
		}
		return token + "\x1f" + id, 1, true
	}
}

// Build constructs a block collection from the dataset by applying the
// value transformation tr to every attribute value and indexing the
// resulting terms with key. Each profile enters a block at most once
// (re-occurrences of a key within a profile are deduplicated). Blocks that
// entail no comparison — fewer than two profiles, or a one-sided block in
// clean-clean ER — are dropped. Blocks are returned sorted by key.
func Build(ds *model.Dataset, tr text.Transform, key KeyFunc) *Collection {
	c, _ := BuildCtx(context.Background(), ds, tr, key)
	return c
}

// buildCancelCheckEvery is the profile-chunk granularity at which BuildCtx
// polls for cancellation: fine enough that a cancelled build stops within
// a few hundred profiles, coarse enough that the check never shows up in a
// profile.
const buildCancelCheckEvery = 512

// BuildCtx is Build with cooperative cancellation: the profile-indexing
// loop checks ctx every few hundred profiles and returns ctx.Err() as soon
// as cancellation is observed, discarding the partial collection.
func BuildCtx(ctx context.Context, ds *model.Dataset, tr text.Transform, key KeyFunc) (*Collection, error) {
	type acc struct {
		p1, p2  []int32
		entropy float64
	}
	index := make(map[string]*acc)

	addProfile := func(global int, source int, p *model.Profile) {
		seen := make(map[string]bool)
		for _, pair := range p.Pairs {
			for _, tok := range tr.Terms(pair.Value) {
				k, h, ok := key(source, pair.Name, tok)
				if !ok || seen[k] {
					continue
				}
				seen[k] = true
				a := index[k]
				if a == nil {
					a = &acc{entropy: h}
					index[k] = a
				}
				if source == 0 {
					a.p1 = append(a.p1, int32(global))
				} else {
					a.p2 = append(a.p2, int32(global))
				}
			}
		}
	}

	for i := range ds.E1.Profiles {
		if i%buildCancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		addProfile(i, 0, &ds.E1.Profiles[i])
	}
	if ds.Kind == model.CleanClean {
		off := ds.E1.Len()
		for i := range ds.E2.Profiles {
			if i%buildCancelCheckEvery == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			addProfile(off+i, 1, &ds.E2.Profiles[i])
		}
	}

	c := &Collection{
		Kind:        ds.Kind,
		NumProfiles: ds.NumProfiles(),
		Split:       ds.Split(),
	}
	for k, a := range index {
		b := Block{Key: k, P1: a.p1, Entropy: a.entropy}
		if ds.Kind == model.CleanClean {
			b.P2 = a.p2
			if b.P2 == nil {
				b.P2 = []int32{}
			}
		}
		if b.Comparisons() == 0 {
			continue
		}
		c.Blocks = append(c.Blocks, b)
	}
	c.sortBlocks()
	return c, nil
}

// TokenBlocking builds the paper's baseline: schema-agnostic Token
// Blocking with the default tokenizer.
func TokenBlocking(ds *model.Dataset) *Collection {
	return Build(ds, text.NewTokenizer(), TokenKey)
}
