// Package blocking implements the redundancy-positive blocking substrate
// of BLAST: Token Blocking (schema-agnostic), its loosely schema-aware and
// schema-based variants (driven by a pluggable key function), and the two
// block-cleaning steps of the paper's workflow, Block Purging and Block
// Filtering (Section 4.1).
package blocking

import (
	"fmt"
	"sort"

	"blast/internal/model"
)

// Block is a set of profiles indexed under one blocking key. For
// clean-clean ER the two sides are kept separate (P1 from E1, P2 from E2)
// because only cross-source comparisons are valid; dirty ER uses P1 only.
type Block struct {
	// Key is the blocking key that produced the block.
	Key string
	// P1 holds global profile ids from E1 (or all profiles for dirty ER).
	P1 []int32
	// P2 holds global profile ids from E2; nil for dirty ER.
	P2 []int32
	// Entropy is h(b): the aggregate entropy of the attribute cluster the
	// key was derived from (Section 3.1.3). Schema-agnostic blocking sets
	// it to 1 so that entropy-weighted schemes degrade gracefully.
	Entropy float64
}

// Size returns the number of profiles in the block.
func (b *Block) Size() int { return len(b.P1) + len(b.P2) }

// Comparisons returns ||b||, the number of comparisons the block entails:
// |P1|*|P2| for clean-clean blocks, n*(n-1)/2 for dirty blocks.
func (b *Block) Comparisons() int64 {
	if b.P2 != nil {
		return int64(len(b.P1)) * int64(len(b.P2))
	}
	n := int64(len(b.P1))
	return n * (n - 1) / 2
}

// ForEachPair invokes fn for every comparison (u, v) entailed by the
// block, with u < v in global-id order for dirty blocks and u from E1,
// v from E2 for clean-clean blocks.
func (b *Block) ForEachPair(fn func(u, v int32)) {
	if b.P2 != nil {
		for _, u := range b.P1 {
			for _, v := range b.P2 {
				fn(u, v)
			}
		}
		return
	}
	for i := 0; i < len(b.P1); i++ {
		for j := i + 1; j < len(b.P1); j++ {
			fn(b.P1[i], b.P1[j])
		}
	}
}

// Collection is a block collection B together with the dataset geometry
// needed to interpret profile ids.
type Collection struct {
	// Kind records whether blocks are clean-clean or dirty.
	Kind model.Kind
	// NumProfiles is the total number of profiles of the dataset.
	NumProfiles int
	// Split is the global id of the first E2 profile (clean-clean only).
	Split int
	// Blocks holds the blocks sorted by key (deterministic order).
	Blocks []Block
}

// Len returns |B|, the number of blocks.
func (c *Collection) Len() int { return len(c.Blocks) }

// AggregateCardinality returns ||B|| = sum of per-block comparisons
// (double-counting pairs that co-occur in several blocks, as the paper's
// PQ denominator does).
func (c *Collection) AggregateCardinality() int64 {
	var n int64
	for i := range c.Blocks {
		n += c.Blocks[i].Comparisons()
	}
	return n
}

// ProfileBlockCounts returns |B_i| for every profile: the number of blocks
// each profile appears in.
func (c *Collection) ProfileBlockCounts() []int32 {
	counts := make([]int32, c.NumProfiles)
	for i := range c.Blocks {
		b := &c.Blocks[i]
		for _, p := range b.P1 {
			counts[p]++
		}
		for _, p := range b.P2 {
			counts[p]++
		}
	}
	return counts
}

// BlocksOfProfiles returns, for every profile, the indexes of the blocks
// it belongs to.
func (c *Collection) BlocksOfProfiles() [][]int32 {
	out := make([][]int32, c.NumProfiles)
	for i := range c.Blocks {
		b := &c.Blocks[i]
		for _, p := range b.P1 {
			out[p] = append(out[p], int32(i))
		}
		for _, p := range b.P2 {
			out[p] = append(out[p], int32(i))
		}
	}
	return out
}

// DistinctPairs returns the set of distinct comparisons entailed by the
// collection, keyed by model.IDPair.Key. Useful for PC computation and
// small-scale analyses; cost is proportional to ||B||.
func (c *Collection) DistinctPairs() map[uint64]struct{} {
	set := make(map[uint64]struct{})
	for i := range c.Blocks {
		c.Blocks[i].ForEachPair(func(u, v int32) {
			set[model.MakePair(int(u), int(v)).Key()] = struct{}{}
		})
	}
	return set
}

// Clone returns a deep copy of the collection (blocks and id slices).
func (c *Collection) Clone() *Collection {
	out := &Collection{Kind: c.Kind, NumProfiles: c.NumProfiles, Split: c.Split}
	out.Blocks = make([]Block, len(c.Blocks))
	for i := range c.Blocks {
		b := c.Blocks[i]
		nb := Block{Key: b.Key, Entropy: b.Entropy}
		nb.P1 = append([]int32(nil), b.P1...)
		if b.P2 != nil {
			nb.P2 = append([]int32(nil), b.P2...)
		}
		out.Blocks[i] = nb
	}
	return out
}

// sortBlocks orders blocks by key for deterministic output.
func (c *Collection) sortBlocks() {
	sort.Slice(c.Blocks, func(i, j int) bool { return c.Blocks[i].Key < c.Blocks[j].Key })
}

// Validate checks structural invariants: ids in range, sides consistent
// with the kind, no duplicate profile within a block side.
func (c *Collection) Validate() error {
	for i := range c.Blocks {
		b := &c.Blocks[i]
		if c.Kind == model.Dirty && b.P2 != nil {
			return fmt.Errorf("blocking: dirty block %q has P2", b.Key)
		}
		if c.Kind == model.CleanClean && b.P2 == nil {
			return fmt.Errorf("blocking: clean-clean block %q lacks P2", b.Key)
		}
		seen := make(map[int32]bool, b.Size())
		check := func(ids []int32, side int) error {
			for _, p := range ids {
				if int(p) < 0 || int(p) >= c.NumProfiles {
					return fmt.Errorf("blocking: block %q id %d out of range", b.Key, p)
				}
				if c.Kind == model.CleanClean {
					inE2 := int(p) >= c.Split
					if (side == 1) != inE2 {
						return fmt.Errorf("blocking: block %q id %d on wrong side", b.Key, p)
					}
				}
				if seen[p] {
					return fmt.Errorf("blocking: block %q repeats id %d", b.Key, p)
				}
				seen[p] = true
			}
			return nil
		}
		if err := check(b.P1, 0); err != nil {
			return err
		}
		if err := check(b.P2, 1); err != nil {
			return err
		}
	}
	return nil
}
