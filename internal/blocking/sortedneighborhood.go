package blocking

import (
	"fmt"
	"sort"
	"strings"

	"blast/internal/model"
	"blast/internal/text"
)

// SortedNeighborhood implements the Sorted Neighborhood method
// (Hernández & Stolfo, SIGMOD 1995; surveyed by Christen [5], one of the
// classic schema-based techniques the BLAST paper positions against):
// profiles are sorted by a blocking key and a window of size w slides
// over the sorted order; each window position becomes a block, so
// profiles within w-1 positions of each other are compared.
//
// This schema-agnostic adaptation derives the sort key from the
// profile's lexicographically smallest tokens (keyTokens of them,
// concatenated), which needs no schema knowledge; pass a custom key
// function for the classic attribute-based variant.
func SortedNeighborhood(ds *model.Dataset, tr text.Transform, window, keyTokens int) (*Collection, error) {
	if window < 2 {
		return nil, fmt.Errorf("blocking: sorted neighborhood needs window >= 2, got %d", window)
	}
	if keyTokens < 1 {
		keyTokens = 2
	}
	if tr == nil {
		tr = text.NewTokenizer()
	}
	return sortedNeighborhoodByKey(ds, window, func(p *model.Profile) string {
		var toks []string
		for _, pair := range p.Pairs {
			toks = append(toks, tr.Terms(pair.Value)...)
		}
		if len(toks) == 0 {
			return ""
		}
		sort.Strings(toks)
		if len(toks) > keyTokens {
			toks = toks[:keyTokens]
		}
		return strings.Join(toks, "\x1f")
	})
}

// SortedNeighborhoodByKey is the classic variant: key extracts the sort
// key from each profile (e.g. concatenated name fields).
func SortedNeighborhoodByKey(ds *model.Dataset, window int, key func(p *model.Profile) string) (*Collection, error) {
	if window < 2 {
		return nil, fmt.Errorf("blocking: sorted neighborhood needs window >= 2, got %d", window)
	}
	if key == nil {
		return nil, fmt.Errorf("blocking: nil key function")
	}
	return sortedNeighborhoodByKey(ds, window, key)
}

func sortedNeighborhoodByKey(ds *model.Dataset, window int, key func(p *model.Profile) string) (*Collection, error) {
	n := ds.NumProfiles()
	type entry struct {
		id  int32
		key string
	}
	entries := make([]entry, 0, n)
	for i := 0; i < n; i++ {
		k := key(ds.Profile(i))
		if k == "" {
			continue // profiles without a key cannot be sorted meaningfully
		}
		entries = append(entries, entry{id: int32(i), key: k})
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].key != entries[b].key {
			return entries[a].key < entries[b].key
		}
		return entries[a].id < entries[b].id
	})

	c := &Collection{Kind: ds.Kind, NumProfiles: n, Split: ds.Split()}
	for start := 0; start+window <= len(entries); start++ {
		members := entries[start : start+window]
		b := Block{Key: fmt.Sprintf("sn-%06d", start), Entropy: 1}
		if ds.Kind == model.CleanClean {
			b.P2 = []int32{}
			for _, e := range members {
				if int(e.id) < c.Split {
					b.P1 = append(b.P1, e.id)
				} else {
					b.P2 = append(b.P2, e.id)
				}
			}
		} else {
			for _, e := range members {
				b.P1 = append(b.P1, e.id)
			}
			sort.Slice(b.P1, func(x, y int) bool { return b.P1[x] < b.P1[y] })
		}
		if b.Comparisons() == 0 {
			continue
		}
		c.Blocks = append(c.Blocks, b)
	}
	return c, nil
}
