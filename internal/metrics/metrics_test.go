package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"blast/internal/blocking"
	"blast/internal/datasets"
	"blast/internal/model"
)

func TestEvaluateBlocksPaperExample(t *testing.T) {
	ds := datasets.PaperExample()
	c := blocking.TokenBlocking(ds)
	q := EvaluateBlocks(c, ds.Truth)
	// Both matches co-occur; ||B|| = 17.
	if q.PC != 1 {
		t.Errorf("PC = %v, want 1", q.PC)
	}
	if q.Detected != 2 || q.Comparisons != 17 {
		t.Errorf("Detected=%d Comparisons=%d, want 2/17", q.Detected, q.Comparisons)
	}
	if math.Abs(q.PQ-2.0/17) > 1e-12 {
		t.Errorf("PQ = %v, want 2/17", q.PQ)
	}
	wantF1 := 2 * 1 * (2.0 / 17) / (1 + 2.0/17)
	if math.Abs(q.F1-wantF1) > 1e-12 {
		t.Errorf("F1 = %v, want %v", q.F1, wantF1)
	}
}

func TestEvaluateBlocksCountsDistinctMatches(t *testing.T) {
	// A match co-occurring in many blocks counts once in |D_B| but its
	// comparisons inflate ||B||.
	c := &blocking.Collection{Kind: model.Dirty, NumProfiles: 2, Blocks: []blocking.Block{
		{Key: "a", P1: []int32{0, 1}},
		{Key: "b", P1: []int32{0, 1}},
		{Key: "c", P1: []int32{0, 1}},
	}}
	truth := model.NewGroundTruth()
	truth.Add(0, 1)
	q := EvaluateBlocks(c, truth)
	if q.Detected != 1 {
		t.Errorf("Detected = %d, want 1", q.Detected)
	}
	if q.Comparisons != 3 {
		t.Errorf("Comparisons = %d, want 3 (redundancy)", q.Comparisons)
	}
	if math.Abs(q.PQ-1.0/3) > 1e-12 {
		t.Errorf("PQ = %v, want 1/3", q.PQ)
	}
}

func TestEvaluatePairs(t *testing.T) {
	truth := model.NewGroundTruth()
	truth.Add(0, 1)
	truth.Add(2, 3)
	pairs := []model.IDPair{
		model.MakePair(0, 1),
		model.MakePair(1, 2), // superfluous
		model.MakePair(0, 1), // duplicate: ignored
	}
	q := EvaluatePairs(pairs, truth)
	if q.Detected != 1 || q.Comparisons != 2 {
		t.Errorf("Detected=%d Comparisons=%d, want 1/2", q.Detected, q.Comparisons)
	}
	if q.PC != 0.5 || q.PQ != 0.5 {
		t.Errorf("PC=%v PQ=%v, want 0.5/0.5", q.PC, q.PQ)
	}
	if q.F1 != 0.5 {
		t.Errorf("F1 = %v, want 0.5", q.F1)
	}
}

func TestEvaluatePairsEmpty(t *testing.T) {
	truth := model.NewGroundTruth()
	truth.Add(0, 1)
	q := EvaluatePairs(nil, truth)
	if q.PC != 0 || q.PQ != 0 || q.F1 != 0 {
		t.Errorf("empty pairs should be all-zero, got %+v", q)
	}
}

func TestEvaluateEmptyTruth(t *testing.T) {
	truth := model.NewGroundTruth()
	q := EvaluatePairs([]model.IDPair{model.MakePair(0, 1)}, truth)
	if q.PC != 0 {
		t.Errorf("PC with empty truth = %v", q.PC)
	}
	c := &blocking.Collection{Kind: model.Dirty, NumProfiles: 2, Blocks: []blocking.Block{
		{Key: "a", P1: []int32{0, 1}},
	}}
	qb := EvaluateBlocks(c, truth)
	if qb.PC != 0 || qb.PQ != 0 {
		t.Errorf("block eval with empty truth = %+v", qb)
	}
}

func TestDeltas(t *testing.T) {
	base := Quality{PC: 0.8, PQ: 0.1}
	other := Quality{PC: 0.76, PQ: 0.3}
	if got := DeltaPC(base, other); math.Abs(got+0.05) > 1e-12 {
		t.Errorf("DeltaPC = %v, want -0.05", got)
	}
	if got := DeltaPQ(base, other); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("DeltaPQ = %v, want 2.0", got)
	}
	if DeltaPC(Quality{}, other) != 0 || DeltaPQ(Quality{}, other) != 0 {
		t.Error("zero baseline should give 0 delta")
	}
}

func TestQualityBoundsProperty(t *testing.T) {
	f := func(detected, truthSize, comparisons uint8) bool {
		d := int(detected % 50)
		ts := d + int(truthSize%50)
		cmp := int64(d) + int64(comparisons%50)
		if ts == 0 || cmp == 0 {
			return true
		}
		pc := float64(d) / float64(ts)
		pq := float64(d) / float64(cmp)
		f := f1(pc, pq)
		return pc >= 0 && pc <= 1 && pq >= 0 && pq <= 1 && f >= 0 && f <= 1 &&
			f <= math.Max(pc, pq)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQualityString(t *testing.T) {
	q := Quality{PC: 0.5, PQ: 0.25, F1: 0.333, Comparisons: 42}
	if q.String() == "" {
		t.Error("String should render")
	}
}
