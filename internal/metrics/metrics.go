// Package metrics implements the blocking-quality measures of the paper
// (Section 2): Pair Completeness (PC, a recall surrogate), Pair Quality
// (PQ, a precision surrogate), their F1 combination, and the ΔPC/ΔPQ
// comparative notation of the evaluation section.
package metrics

import (
	"fmt"

	"blast/internal/blocking"
	"blast/internal/model"
)

// Quality gathers the quality measures of one block collection (or pair
// list) against a ground truth.
type Quality struct {
	// PC = |D_B| / |D_E|: fraction of true matches with at least one
	// co-occurrence.
	PC float64
	// PQ = |D_B| / ||B||: fraction of comparisons that are matches.
	PQ float64
	// F1 is the harmonic mean of PC and PQ.
	F1 float64
	// Detected is |D_B|, the number of ground-truth pairs covered.
	Detected int
	// Comparisons is ||B||, the aggregate cardinality used for PQ.
	Comparisons int64
}

// String renders the quality in the paper's units (percentages for PC
// and PQ).
func (q Quality) String() string {
	return fmt.Sprintf("PC=%.2f%% PQ=%.4f%% F1=%.4f ||B||=%d", q.PC*100, q.PQ*100, q.F1, q.Comparisons)
}

// f1 returns the harmonic mean, 0 when both inputs are 0.
func f1(pc, pq float64) float64 {
	if pc+pq == 0 {
		return 0
	}
	return 2 * pc * pq / (pc + pq)
}

// EvaluateBlocks measures a block collection against the ground truth.
// |D_B| counts ground-truth pairs co-occurring in at least one block;
// ||B|| is the aggregate cardinality (comparisons counted per block, so
// redundant comparisons depress PQ, as in the paper).
func EvaluateBlocks(c *blocking.Collection, truth *model.GroundTruth) Quality {
	detected := 0
	if truth.Size() > 0 {
		seen := make(map[uint64]struct{})
		for i := range c.Blocks {
			c.Blocks[i].ForEachPair(func(u, v int32) {
				k := model.MakePair(int(u), int(v)).Key()
				if _, dup := seen[k]; dup {
					return
				}
				if truth.Contains(int(u), int(v)) {
					seen[k] = struct{}{}
				}
			})
		}
		detected = len(seen)
	}
	comparisons := c.AggregateCardinality()
	q := Quality{Detected: detected, Comparisons: comparisons}
	if truth.Size() > 0 {
		q.PC = float64(detected) / float64(truth.Size())
	}
	if comparisons > 0 {
		q.PQ = float64(detected) / float64(comparisons)
	}
	q.F1 = f1(q.PC, q.PQ)
	return q
}

// EvaluatePairs measures a deduplicated comparison list (e.g. the output
// of meta-blocking, where each pair is a block of two) against the truth.
func EvaluatePairs(pairs []model.IDPair, truth *model.GroundTruth) Quality {
	detected := 0
	seen := make(map[uint64]struct{}, len(pairs))
	for _, p := range pairs {
		k := p.Key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		if truth.Contains(int(p.U), int(p.V)) {
			detected++
		}
	}
	q := Quality{Detected: detected, Comparisons: int64(len(seen))}
	if truth.Size() > 0 {
		q.PC = float64(detected) / float64(truth.Size())
	}
	if q.Comparisons > 0 {
		q.PQ = float64(detected) / float64(q.Comparisons)
	}
	q.F1 = f1(q.PC, q.PQ)
	return q
}

// DeltaPC returns (PC(B') - PC(B)) / PC(B), the relative recall change of
// B' versus baseline B (Section 4 notation). Zero baseline yields 0.
func DeltaPC(base, other Quality) float64 {
	if base.PC == 0 {
		return 0
	}
	return (other.PC - base.PC) / base.PC
}

// DeltaPQ returns (PQ(B') - PQ(B)) / PQ(B), the relative precision change.
func DeltaPQ(base, other Quality) float64 {
	if base.PQ == 0 {
		return 0
	}
	return (other.PQ - base.PQ) / base.PQ
}
