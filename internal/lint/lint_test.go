package lint

import (
	"path/filepath"
	"testing"
)

// Per-analyzer golden tests: each fixture seeds the violation the
// analyzer exists for, the fixed idiom it must stay silent on, and a
// justified //blast:allow suppression.

func TestMapOrderGolden(t *testing.T)    { runGolden(t, []*Analyzer{MapOrder}, "maporder") }
func TestSyncErrGolden(t *testing.T)     { runGolden(t, []*Analyzer{SyncErr}, "syncerr") }
func TestSnapshotMutGolden(t *testing.T) { runGolden(t, []*Analyzer{SnapshotMut}, "snapshotmut") }
func TestCtxPollGolden(t *testing.T)     { runGolden(t, []*Analyzer{CtxPoll}, "ctxpoll") }
func TestWallClockGolden(t *testing.T)   { runGolden(t, []*Analyzer{WallClock}, "wallclock") }

// TestSmokeMultichecker runs the full suite over one fixture package
// that trips several analyzers at once and exercises every way a
// blast:allow comment can be wrong: missing justification, unknown
// analyzer name, and a stale allow that suppresses nothing. Each of
// those is itself a diagnostic, which is what makes "delete a
// justification" a build break rather than a silent widening.
func TestSmokeMultichecker(t *testing.T) { runGolden(t, All(), "smoke") }

// TestScopeTable pins the runner's scope decisions: which analyzer
// applies to which package (and file) of the real module.
func TestScopeTable(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		pkg      string
		file     string
		want     bool
	}{
		{MapOrder, "blast/internal/stats", "entropy.go", true},
		{MapOrder, "blast/internal/attr", "profile.go", true},
		{MapOrder, "blast/internal/wal", "wal.go", false},
		{MapOrder, "blast/internal/experiments", "tables.go", false},
		{WallClock, "blast/internal/metablocking", "metablocking.go", true},
		{WallClock, "blast/internal/shard", "shard.go", true},
		{WallClock, "blast", "pipeline.go", false},
		{CtxPoll, "blast/internal/prune", "parallel.go", true},
		{CtxPoll, "blast/internal/graph", "csr.go", true},
		{CtxPoll, "blast/internal/attr", "profile.go", false},
		{SyncErr, "blast/internal/wal", "wal.go", true},
		{SyncErr, "blast/internal/store", "store.go", true},
		{SyncErr, "blast/internal/shard", "persist.go", true},
		{SyncErr, "blast/internal/shard", "shard.go", false},
		{SyncErr, "blast", "durable.go", true},
		{SyncErr, "blast", "pipeline.go", false},
		{SyncErr, "blast/blasthttp", "blasthttp.go", true},
		{SyncErr, "blast/cmd/datagen", "main.go", true},
		{SyncErr, "blast/cmd/blastserve", "main.go", true},
		{SyncErr, "blast/internal/experiments", "load.go", false},
		{SnapshotMut, "blast/internal/shard", "shard.go", true},
		{SnapshotMut, "blast/internal/shard", "persist.go", false},
		{SnapshotMut, "blast", "durable.go", true},
	}
	for _, c := range cases {
		if got := inScope(c.analyzer, c.pkg, filepath.Join("any", "dir", c.file)); got != c.want {
			t.Errorf("inScope(%s, %s, %s) = %v, want %v", c.analyzer.Name, c.pkg, c.file, got, c.want)
		}
	}
}

// TestRepoClean runs the full scoped suite over the real module — the
// same pass CI runs via cmd/blastlint — and demands zero diagnostics.
// Any regression against the determinism or durability contracts turns
// `go test ./internal/lint` red even before the CI step runs.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := DiscoverDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			t.Fatal(err)
		}
		if rel == "." {
			paths = append(paths, "blast")
			continue
		}
		paths = append(paths, "blast/"+filepath.ToSlash(rel))
	}
	loader := NewLoader(map[string]string{"blast": root})
	diags, err := RunDirs(loader, paths, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		pos := loader.Fset().Position(d.Pos)
		t.Errorf("%s:%d:%d: [%s] %s", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
}
