package lint

// This file is the golden-diagnostic harness, modeled on
// golang.org/x/tools/go/analysis/analysistest: fixture packages under
// testdata/src carry `// want `+"`regex`"+` comments on the lines where
// diagnostics must appear, and a test fails on any unexpected or
// missing diagnostic. Fixtures are loaded through a catch-all mount at
// testdata/src, so they can import stub dependency packages (such as
// blast/internal/shard) by their real paths, and analyzers run
// unscoped — the scope table is the runner's concern, tested
// separately.

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantPatternRE extracts the quoted patterns of one want comment:
// backquoted or double-quoted strings after the "want " marker.
var wantPatternRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// expectation is one unmatched want pattern at a file:line.
type expectation struct {
	pattern *regexp.Regexp
	matched bool
}

// runGolden loads the fixture package at testdata/src/<pkgPath>, runs
// the analyzers unscoped, and checks the diagnostics against the
// fixture's want comments.
func runGolden(t *testing.T, analyzers []*Analyzer, pkgPath string) {
	t.Helper()
	src, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader(map[string]string{"": src})
	pkg, err := loader.Load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}
	diags, err := RunPackage(pkg, analyzers, false)
	if err != nil {
		t.Fatalf("running %s: %v", pkgPath, err)
	}
	wants := collectWants(t, pkg)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.pattern.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", key, d.Analyzer, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matched want %q", key, w.pattern)
			}
		}
	}
}

// collectWants parses every want comment in the package into
// expectations keyed by "filename:line".
func collectWants(t *testing.T, pkg *Package) map[string][]*expectation {
	t.Helper()
	wants := map[string][]*expectation{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, raw := range wantPatternRE.FindAllString(c.Text[idx+len("want "):], -1) {
					text := raw
					if strings.HasPrefix(raw, `"`) {
						unq, err := strconv.Unquote(raw)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", key, raw, err)
						}
						text = unq
					} else {
						text = strings.Trim(raw, "`")
					}
					re, err := regexp.Compile(text)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, text, err)
					}
					wants[key] = append(wants[key], &expectation{pattern: re})
				}
			}
		}
	}
	return wants
}
