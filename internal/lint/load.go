package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("blast/internal/prune").
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Fset  *token.FileSet
}

// A Loader parses and type-checks packages without the go/packages
// machinery (which would drag in x/tools): import paths under a mounted
// prefix resolve to directories inside the mount, everything else is
// delegated to the standard library's source importer, which compiles
// std packages from GOROOT. One loader shares a fileset and a package
// cache across every load.
type Loader struct {
	fset   *token.FileSet
	mounts []mount
	std    types.ImporterFrom
	pkgs   map[string]*loadEntry
}

type mount struct {
	prefix string // import-path prefix, e.g. "blast"
	dir    string // directory it maps to
}

type loadEntry struct {
	pkg *Package
	err error
	// loading marks an in-flight load so import cycles fail instead of
	// recursing forever.
	loading bool
}

// NewLoader returns a loader with the given import-path mounts. For the
// repo itself a single {"blast": moduleRoot} mount suffices; golden
// tests mount their testdata/src directory at "" so fixtures can import
// stub dependency packages by any path.
func NewLoader(mounts map[string]string) *Loader {
	fset := token.NewFileSet()
	l := &Loader{
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs: map[string]*loadEntry{},
	}
	for prefix, dir := range mounts {
		l.mounts = append(l.mounts, mount{prefix: prefix, dir: dir})
	}
	// Longest prefix wins, so a "" catch-all mount never shadows "blast".
	sort.Slice(l.mounts, func(i, j int) bool { return len(l.mounts[i].prefix) > len(l.mounts[j].prefix) })
	return l
}

// Fset returns the loader's shared fileset.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// dirFor resolves an import path against the mounts; ok is false when
// the path belongs to the standard library (or is simply not mounted).
func (l *Loader) dirFor(path string) (string, bool) {
	for _, m := range l.mounts {
		if m.prefix == "" {
			// Catch-all: anything that is not resolvable as std. Std
			// detection by first path element: std paths never contain a
			// dot before the first slash and are present under GOROOT —
			// cheaper and robust enough here: try the mount only if the
			// directory exists.
			if dirExists(filepath.Join(m.dir, path)) {
				return filepath.Join(m.dir, path), true
			}
			continue
		}
		if path == m.prefix {
			return m.dir, true
		}
		if strings.HasPrefix(path, m.prefix+"/") {
			return filepath.Join(m.dir, filepath.FromSlash(strings.TrimPrefix(path, m.prefix+"/"))), true
		}
	}
	return "", false
}

func dirExists(dir string) bool {
	fi, err := os.Stat(dir)
	return err == nil && fi.IsDir()
}

// Load type-checks the package at the given import path (which must
// resolve through a mount) and returns it, cached.
func (l *Loader) Load(path string) (*Package, error) {
	if e, ok := l.pkgs[path]; ok {
		if e.loading {
			return nil, fmt.Errorf("lint: import cycle through %q", path)
		}
		return e.pkg, e.err
	}
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("lint: %q does not resolve through any mount", path)
	}
	e := &loadEntry{loading: true}
	l.pkgs[path] = e
	e.pkg, e.err = l.loadDir(path, dir)
	e.loading = false
	return e.pkg, e.err
}

// loadDir parses and type-checks one directory as the package at path.
func (l *Loader) loadDir(path, dir string) (*Package, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: &loaderImporter{l: l}}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info, Fset: l.fset}, nil
}

// loaderImporter routes mounted import paths back through the loader
// and everything else to the source importer.
type loaderImporter struct {
	l *Loader
}

func (i *loaderImporter) Import(path string) (*types.Package, error) {
	return i.ImportFrom(path, "", 0)
}

func (i *loaderImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if _, ok := i.l.dirFor(path); ok {
		pkg, err := i.l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return i.l.std.ImportFrom(path, srcDir, mode)
}

// DiscoverDirs returns the directories under root holding at least one
// buildable non-test Go file, sorted, skipping testdata, hidden
// directories and nested modules.
func DiscoverDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root {
			if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(p, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		if hasBuildableGo(p) {
			dirs = append(dirs, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasBuildableGo reports whether dir holds at least one buildable
// non-test Go file. Directories whose files are all excluded (build
// tags) are simply not discovered.
func hasBuildableGo(dir string) bool {
	bp, err := build.ImportDir(dir, 0)
	return err == nil && len(bp.GoFiles) > 0
}
