package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxPoll flags loops over CSR adjacency or edge ranges whose body
// never polls for cancellation, in functions that have a cancellation
// source available. PR 5 pinned polling at edge-segment granularity —
// even inside a single hub node's multi-million-entry adjacency run —
// so a pruning or graph pass can never delay cancellation arbitrarily.
// A loop bounded by adjacency extent (Offsets/Neighbors/Edges/NumEdges)
// re-opens that window unless it ticks the cancellation budget or
// checks ctx.Err in its body. Functions without a context (or a worker
// carrying one) are exempt: they cannot poll.
var CtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc: "flags CSR adjacency/edge loops with no cancellation poll in " +
		"the loop body, in functions that carry a context",
	Run: runCtxPoll,
}

// adjacencySelectors are the field/method names whose appearance in a
// loop extent marks it as iterating adjacency or edge ranges.
var adjacencySelectors = map[string]bool{
	"Offsets": true, "Neighbors": true, "Edges": true, "NumEdges": true,
}

func runCtxPoll(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasCancellationSource(pass, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				var extent []ast.Expr
				var body *ast.BlockStmt
				switch loop := n.(type) {
				case *ast.ForStmt:
					if loop.Init != nil {
						if as, ok := loop.Init.(*ast.AssignStmt); ok {
							extent = append(extent, as.Rhs...)
						}
					}
					if loop.Cond != nil {
						extent = append(extent, loop.Cond)
					}
					body = loop.Body
				case *ast.RangeStmt:
					extent = append(extent, loop.X)
					body = loop.Body
				default:
					return true
				}
				if !mentionsAdjacency(extent) || pollsCancellation(body) {
					return true
				}
				pass.Reportf(n.Pos(), "loop over CSR adjacency/edge range never polls for cancellation; tick the budget or check ctx.Err at edge-segment granularity (or annotate a justified //blast:allow ctxpoll)")
				return true
			})
		}
	}
	return nil
}

// mentionsAdjacency reports whether any extent expression selects an
// adjacency array or edge count.
func mentionsAdjacency(exprs []ast.Expr) bool {
	found := false
	for _, e := range exprs {
		ast.Inspect(e, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok && adjacencySelectors[sel.Sel.Name] {
				found = true
				return false
			}
			return !found
		})
	}
	return found
}

// pollsCancellation reports whether the body (including nested calls'
// names) contains a cancellation poll: ctx.Err(), a tick() call on a
// worker budget, or a call to a helper whose name mentions polling.
func pollsCancellation(body *ast.BlockStmt) bool {
	polls := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !polls
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			if name == "Err" || name == "tick" || strings.Contains(strings.ToLower(name), "poll") {
				polls = true
			}
		case *ast.Ident:
			if fun.Name == "tick" || strings.Contains(strings.ToLower(fun.Name), "poll") {
				polls = true
			}
		}
		return !polls
	})
	return polls
}

// hasCancellationSource reports whether the function can observe
// cancellation: a receiver or parameter of type context.Context, or one
// whose (deref'd) struct type carries a context.Context field — the
// pruneWorker pattern, where the budgeted ticker wraps the ctx.
func hasCancellationSource(pass *Pass, fd *ast.FuncDecl) bool {
	var fields []*ast.Field
	if fd.Recv != nil {
		fields = append(fields, fd.Recv.List...)
	}
	if fd.Type.Params != nil {
		fields = append(fields, fd.Type.Params.List...)
	}
	for _, f := range fields {
		tv, ok := pass.TypesInfo.Types[f.Type]
		if !ok || tv.Type == nil {
			continue
		}
		if carriesContext(tv.Type, 0) {
			return true
		}
	}
	return false
}

// carriesContext reports whether t is context.Context or a struct (one
// pointer-deref deep) with a context.Context field.
func carriesContext(t types.Type, depth int) bool {
	if t == nil || depth > 2 {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		return carriesContext(p.Elem(), depth)
	}
	if isContextType(t) {
		return true
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isContextType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
