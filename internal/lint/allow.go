package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// AllowAnalyzerName is the pseudo-analyzer that reports malformed or
// stale suppression comments. It is not suppressible.
const AllowAnalyzerName = "allow"

// An allowComment is one parsed //blast:allow directive.
type allowComment struct {
	pos      token.Pos
	file     string
	line     int
	analyzer string
	// justification is the mandatory text after "--". An allow without
	// one is invalid: it suppresses nothing and is itself reported, so
	// deleting a justification turns the build red.
	justification string
	used          bool
}

// collectAllows parses every //blast:allow comment in the files.
func collectAllows(fset *token.FileSet, files []*ast.File) []*allowComment {
	var out []*allowComment
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "blast:allow") {
					continue
				}
				rest := strings.TrimPrefix(text, "blast:allow")
				a := &allowComment{pos: c.Pos()}
				pos := fset.Position(c.Pos())
				a.file, a.line = pos.Filename, pos.Line
				if cut := strings.Index(rest, "--"); cut >= 0 {
					a.analyzer = firstField(rest[:cut])
					a.justification = strings.TrimSpace(rest[cut+2:])
				} else {
					// No justification separator: the analyzer name is the
					// first token; anything after it (including trailing
					// comment text) does not make the allow valid.
					a.analyzer = firstField(rest)
				}
				out = append(out, a)
			}
		}
	}
	return out
}

// applySuppressions drops diagnostics covered by a valid allow comment
// on the same line or the line immediately above, then appends
// validation diagnostics for malformed, unknown or unused allows.
func applySuppressions(fset *token.FileSet, allows []*allowComment, diags []Diagnostic, known map[string]bool) []Diagnostic {
	type key struct {
		file     string
		line     int
		analyzer string
	}
	index := make(map[key]*allowComment, len(allows))
	for _, a := range allows {
		if a.analyzer == "" || a.justification == "" || !known[a.analyzer] {
			continue // invalid allows never suppress
		}
		// The comment covers its own line (end-of-line form) and the
		// next line (standalone form above the flagged statement).
		index[key{a.file, a.line, a.analyzer}] = a
		index[key{a.file, a.line + 1, a.analyzer}] = a
	}
	kept := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if a, ok := index[key{pos.Filename, pos.Line, d.Analyzer}]; ok {
			a.used = true
			continue
		}
		kept = append(kept, d)
	}
	for _, a := range allows {
		switch {
		case a.analyzer == "" || !known[a.analyzer]:
			kept = append(kept, Diagnostic{
				Analyzer: AllowAnalyzerName,
				Pos:      a.pos,
				Message:  "blast:allow names unknown analyzer " + quoteName(a.analyzer),
			})
		case a.justification == "":
			kept = append(kept, Diagnostic{
				Analyzer: AllowAnalyzerName,
				Pos:      a.pos,
				Message:  "blast:allow " + a.analyzer + " requires a justification: //blast:allow " + a.analyzer + " -- <why this site is exempt>",
			})
		case !a.used:
			kept = append(kept, Diagnostic{
				Analyzer: AllowAnalyzerName,
				Pos:      a.pos,
				Message:  "blast:allow " + a.analyzer + " suppresses nothing here; delete the stale exception",
			})
		}
	}
	return kept
}

// firstField returns the first whitespace-separated token of s, or "".
func firstField(s string) string {
	if fields := strings.Fields(s); len(fields) > 0 {
		return fields[0]
	}
	return ""
}

// quoteName quotes a possibly-empty analyzer name for a message.
func quoteName(s string) string {
	if s == "" {
		return `"" (missing name)`
	}
	return `"` + s + `"`
}
