package lint

import (
	"go/ast"
	"go/types"
)

// WallClock flags wall-clock reads (time.Now, time.Since) and global
// math/rand state in the deterministic packages. Those packages are
// pinned byte-identical across runs, engines and worker counts; a
// timestamp or an unseeded random draw folded into any computed value
// breaks that silently. Timing telemetry that never feeds a computed
// value carries a //blast:allow wallclock justification; cmd/,
// examples/, internal/experiments and tests are out of scope entirely.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "flags time.Now/time.Since and unseeded math/rand in the " +
		"deterministic packages",
	Run: runWallClock,
}

// seededRandConstructors are the math/rand entry points that take an
// explicit source or seed and are therefore reproducible.
var seededRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runWallClock(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, isPkg := lookupObj(pass.TypesInfo, pkgID).(*types.PkgName)
			if !isPkg {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
					pass.Reportf(sel.Pos(), "time.%s in a deterministic package; wall-clock values must never feed a pinned computation (or annotate telemetry with a justified //blast:allow wallclock)", sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				if !seededRandConstructors[sel.Sel.Name] {
					pass.Reportf(sel.Pos(), "rand.%s uses the global math/rand state in a deterministic package; draw from an explicitly seeded *rand.Rand (or the stats RNG) instead", sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}
