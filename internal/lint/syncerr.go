package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SyncErr flags discarded errors from Sync, Close, Truncate, Rename and
// Write* calls on the durability path. Every byte the server
// acknowledges is a durability receipt: an fsync or close whose error
// vanishes silently voids that contract — the write may never have
// reached stable storage, and the next recovery replays a log the
// caller believed was longer. Both plain discards (`f.Close()` as a
// statement, including under defer/go) and explicit blank assignments
// (`_ = f.Close()`, `n, _ := f.Write(p)`) are flagged; genuinely
// best-effort sites carry a //blast:allow syncerr justification.
var SyncErr = &Analyzer{
	Name: "syncerr",
	Doc: "flags discarded errors from Sync/Close/Truncate/Rename/Write* " +
		"on the durability path",
	Run: runSyncErr,
}

func runSyncErr(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDiscardedCall(pass, call)
				}
			case *ast.DeferStmt:
				checkDiscardedCall(pass, n.Call)
			case *ast.GoStmt:
				checkDiscardedCall(pass, n.Call)
			case *ast.AssignStmt:
				checkBlankError(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkDiscardedCall reports a durability call used as a bare statement
// (all results dropped).
func checkDiscardedCall(pass *Pass, call *ast.CallExpr) {
	name, ok := durabilityCall(pass, call)
	if !ok {
		return
	}
	if errIndex(pass, call) < 0 {
		return
	}
	pass.Reportf(call.Pos(), "error from %s is discarded on the durability path; check it (or annotate a justified //blast:allow syncerr)", name)
}

// checkBlankError reports a durability call whose error result is
// assigned to the blank identifier.
func checkBlankError(pass *Pass, as *ast.AssignStmt) {
	// Only the single-call forms matter: x, y := f() or _ = f().
	if len(as.Rhs) != 1 {
		// Parallel assignment a, b = f1(), f2(): each RHS is single-valued.
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || i >= len(as.Lhs) || !isBlank(as.Lhs[i]) {
				continue
			}
			if name, ok := durabilityCall(pass, call); ok && errIndex(pass, call) == 0 {
				pass.Reportf(as.Pos(), "error from %s is assigned to _ on the durability path; check it (or annotate a justified //blast:allow syncerr)", name)
			}
		}
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, isDur := durabilityCall(pass, call)
	if !isDur {
		return
	}
	ei := errIndex(pass, call)
	if ei < 0 || ei >= len(as.Lhs) {
		return
	}
	if isBlank(as.Lhs[ei]) {
		pass.Reportf(as.Pos(), "error from %s is assigned to _ on the durability path; check it (or annotate a justified //blast:allow syncerr)", name)
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// durabilityVerb reports whether a callee name is one of the durability
// verbs: Sync, Close, Truncate, Rename, or any Write*.
func durabilityVerb(name string) bool {
	switch name {
	case "Sync", "Close", "Truncate", "Rename":
		return true
	}
	return strings.HasPrefix(name, "Write")
}

// durabilityCall classifies a call as durability-relevant: a method
// whose name is a durability verb (on any receiver except the hash
// packages, whose Write never fails), or an os.* package function with
// a durability-verb name (os.Rename, os.WriteFile, ...).
func durabilityCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !durabilityVerb(sel.Sel.Name) {
		return "", false
	}
	if s := pass.TypesInfo.Selections[sel]; s != nil {
		recv := s.Recv()
		if p := namedPkgPath(recv); p == "hash" || strings.HasPrefix(p, "hash/") {
			return "", false
		}
		return exprText(sel.X) + "." + sel.Sel.Name, true
	}
	// Package-qualified function call.
	if pkgID, ok := sel.X.(*ast.Ident); ok {
		if pn, isPkg := lookupObj(pass.TypesInfo, pkgID).(*types.PkgName); isPkg {
			if pn.Imported().Path() == "os" {
				return "os." + sel.Sel.Name, true
			}
		}
	}
	return "", false
}

// errIndex returns the result index of type error in the call's
// signature, or -1 when the call cannot fail.
func errIndex(pass *Pass, call *ast.CallExpr) int {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return -1
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return i
		}
	}
	return -1
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

// namedPkgPath returns the defining package path of a (possibly
// pointer-wrapped) named type, or "".
func namedPkgPath(t types.Type) string {
	for {
		switch v := t.(type) {
		case *types.Pointer:
			t = v.Elem()
		case *types.Named:
			if v.Obj().Pkg() == nil {
				return ""
			}
			return v.Obj().Pkg().Path()
		default:
			return ""
		}
	}
}

// exprText renders a short receiver expression for a message.
func exprText(e ast.Expr) string {
	if r := rootIdent(e); r != nil {
		return r.Name
	}
	return "receiver"
}
