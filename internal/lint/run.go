package lint

import (
	"fmt"
	"go/token"
	"io"
	"sort"
)

// RunPackage executes the analyzers over one loaded package, applies
// the scope table (unless scoped is false, as in golden tests over
// fixture packages) and the allow-comment suppressions, and returns the
// surviving diagnostics sorted by position.
func RunPackage(pkg *Package, analyzers []*Analyzer, scoped bool) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		pass.report = func(d Diagnostic) {
			file := pkg.Fset.Position(d.Pos).Filename
			if scoped && !inScope(a, pkg.Path, file) {
				return
			}
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	allows := collectAllows(pkg.Fset, pkg.Files)
	diags = applySuppressions(pkg.Fset, allows, diags, byName(analyzers))
	sortDiags(pkg.Fset, diags)
	return diags, nil
}

// RunDirs loads every directory as its import path under the mounts and
// runs the full scoped suite, returning all diagnostics with the fileset
// to print them against.
func RunDirs(loader *Loader, paths []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			return nil, err
		}
		ds, err := RunPackage(pkg, analyzers, true)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	sortDiags(loader.Fset(), diags)
	return diags, nil
}

// sortDiags orders diagnostics by file, line, column, analyzer.
func sortDiags(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// Print writes diagnostics in the conventional file:line:col form.
func Print(w io.Writer, fset *token.FileSet, diags []Diagnostic) {
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
}
