package lint

import (
	"go/ast"
	"go/types"
)

// SnapshotMut flags writes to shard.Snapshot fields, or stores through
// its slice fields, anywhere outside the constructor/decode files. A
// published snapshot is read wait-free by every serving goroutine and
// shares its structural CSR arrays (Offsets, Neighbors) with the live
// index across epochs; a single in-place store tears that contract
// without any lock or race report to show for it. Construction sites
// (composite literals, the persist.go decoder) are exempt; the two
// pre-publication re-tag sites carry //blast:allow justifications.
var SnapshotMut = &Analyzer{
	Name: "snapshotmut",
	Doc: "flags writes to shard.Snapshot fields or stores through its " +
		"slices outside the constructor/decode files",
	Run: runSnapshotMut,
}

// snapshotTypePath/Name identify the protected type.
const (
	snapshotTypePath = "blast/internal/shard"
	snapshotTypeName = "Snapshot"
)

func runSnapshotMut(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkSnapshotWrite(pass, lhs)
				}
			case *ast.IncDecStmt:
				checkSnapshotWrite(pass, n.X)
			}
			return true
		})
	}
	return nil
}

// checkSnapshotWrite reports lhs when it denotes a Snapshot field or an
// element of a Snapshot slice field.
func checkSnapshotWrite(pass *Pass, lhs ast.Expr) {
	switch v := lhs.(type) {
	case *ast.SelectorExpr:
		if isSnapshotType(pass.TypesInfo.Types[v.X].Type) {
			pass.Reportf(lhs.Pos(), "write to shard.Snapshot field %s outside the constructor/decode files; published snapshots are immutable and share arrays with wait-free readers", v.Sel.Name)
		}
	case *ast.IndexExpr:
		if sel, ok := v.X.(*ast.SelectorExpr); ok && isSnapshotType(pass.TypesInfo.Types[sel.X].Type) {
			pass.Reportf(lhs.Pos(), "store through shard.Snapshot slice %s outside the constructor/decode files; published snapshots are immutable and share arrays with wait-free readers", sel.Sel.Name)
		}
	}
}

// isSnapshotType reports whether t (deref'd) is shard.Snapshot.
func isSnapshotType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == snapshotTypeName && obj.Pkg() != nil && obj.Pkg().Path() == snapshotTypePath
}
