package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags order-sensitive work performed inside `for range` over
// a map in the deterministic packages: floating-point accumulation,
// ordered-output building (append to a slice that outlives the loop and
// is never sorted afterwards), and hashing or writing into an
// accumulator that outlives the loop. Go's map iteration order is
// deliberately randomized, so any of these makes the result vary from
// run to run over identical data — the exact EntropyFromCounts bug class
// PR 4 tripped over. Integer accumulation is exempt: it commutes
// exactly.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flags float accumulation, ordered-output building and hashing " +
		"inside for-range over a map, where iteration order is randomized",
	Run: runMapOrder,
}

// orderSinkMethods are method names that fold their argument into an
// order-sensitive accumulator (hashes, writers, string builders).
var orderSinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Sum": true, "Sum32": true, "Sum64": true,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, f, rs)
			return true
		})
	}
	return nil
}

func checkMapRangeBody(pass *Pass, file *ast.File, rs *ast.RangeStmt) {
	info := pass.TypesInfo
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, file, rs, n)
		case *ast.CallExpr:
			// Hash/writer accumulation: h.Write(...), b.WriteString(...)
			// on a receiver that outlives the loop.
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || !orderSinkMethods[sel.Sel.Name] {
				return true
			}
			if info.Selections[sel] == nil {
				return true // package-qualified call, not a method
			}
			if root := rootIdent(sel.X); root != nil && declaredOutside(info, root, rs) {
				pass.Reportf(n.Pos(), "%s.%s inside range over a map accumulates in iteration order; iterate a sorted key slice instead", root.Name, sel.Sel.Name)
			}
		}
		return true
	})
}

func checkMapRangeAssign(pass *Pass, file *ast.File, rs *ast.RangeStmt, as *ast.AssignStmt) {
	info := pass.TypesInfo
	// Float accumulation: x += e, x -= e, x *= e, x /= e.
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(as.Lhs) != 1 {
			return
		}
		lhs := as.Lhs[0]
		if !isFloat(info.Types[lhs].Type) {
			return
		}
		if root := rootIdent(lhs); root != nil && declaredOutside(info, root, rs) {
			pass.Reportf(as.Pos(), "floating-point accumulation into %s across map iteration order is nondeterministic (float addition is not associative); materialize and sort the keys first", root.Name)
		}
		return
	case token.ASSIGN, token.DEFINE:
	default:
		return
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		rhs := as.Rhs[i]
		// x = x + e (and -, *, /) on floats is accumulation too.
		if bin, ok := rhs.(*ast.BinaryExpr); ok && as.Tok == token.ASSIGN {
			switch bin.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
				root := rootIdent(lhs)
				if root != nil && isFloat(info.Types[lhs].Type) && declaredOutside(info, root, rs) &&
					(sameObject(info, root, rootIdent(bin.X)) || sameObject(info, root, rootIdent(bin.Y))) {
					pass.Reportf(as.Pos(), "floating-point accumulation into %s across map iteration order is nondeterministic (float addition is not associative); materialize and sort the keys first", root.Name)
					return
				}
			}
		}
		// Ordered-output building: s = append(s, ...) into a slice that
		// outlives the loop and is never sorted afterwards.
		if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(info, call) {
			root := rootIdent(lhs)
			if root == nil || !declaredOutside(info, root, rs) {
				continue
			}
			if sortedAfter(info, file, root, rs.End()) {
				continue
			}
			pass.Reportf(as.Pos(), "appending to %s inside range over a map builds output in iteration order; sort %s afterwards or iterate sorted keys", root.Name, root.Name)
		}
	}
}

// isFloat reports whether t's core type is a floating-point scalar.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// rootIdent returns the base identifier of an lvalue-ish expression:
// x, x.f, x[i], *x all root at x.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether the object id refers to was declared
// outside the node rng (so mutations inside the loop survive it).
func declaredOutside(info *types.Info, id *ast.Ident, rng ast.Node) bool {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() < rng.Pos() || obj.Pos() >= rng.End()
}

// sameObject reports whether two identifiers resolve to one object.
func sameObject(info *types.Info, a, b *ast.Ident) bool {
	if a == nil || b == nil {
		return false
	}
	oa, ob := lookupObj(info, a), lookupObj(info, b)
	return oa != nil && oa == ob
}

func lookupObj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := lookupObj(info, id).(*types.Builtin)
	return isBuiltin
}

// sortedAfter reports whether, somewhere after pos in the function (or
// file) enclosing the loop, the object named by id is handed to a
// sort.* or slices.Sort* call — the collect-then-sort idiom, which is
// deterministic no matter the collection order.
func sortedAfter(info *types.Info, file *ast.File, id *ast.Ident, pos token.Pos) bool {
	target := lookupObj(info, id)
	if target == nil {
		return false
	}
	sorted := false
	ast.Inspect(file, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pn, isPkg := lookupObj(info, pkgID).(*types.PkgName); !isPkg ||
			(pn.Imported().Path() != "sort" && pn.Imported().Path() != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if r := rootIdent(arg); r != nil && lookupObj(info, r) == target {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}
