// Package snapshotmut is the golden fixture for the snapshotmut
// analyzer: in-place writes to published shard.Snapshot state.
package snapshotmut

import "blast/internal/shard"

// mutate writes a snapshot in place — every flagged form.
func mutate(s *shard.Snapshot, w []float64) {
	s.Epoch = 7        // want `write to shard.Snapshot field Epoch`
	s.Epoch++          // want `write to shard.Snapshot field Epoch`
	s.Weights = w      // want `write to shard.Snapshot field Weights`
	s.Weights[0] = 0.5 // want `store through shard.Snapshot slice Weights`
}

// construct builds a fresh snapshot; composite literals are not writes.
func construct(w []float64) *shard.Snapshot {
	return &shard.Snapshot{Weights: w}
}

// read only loads; loads are always safe.
func read(s *shard.Snapshot) float64 {
	return s.Weights[0] + float64(s.Epoch)
}

// retag is the justified pre-publication pattern: tagging a snapshot no
// reader can hold yet.
func retag(s *shard.Snapshot) {
	//blast:allow snapshotmut -- fixture: pre-publication tag before any reader can hold the snapshot
	s.Epoch = 1
}
