// Package wallclock is the golden fixture for the wallclock analyzer:
// wall-clock reads and global math/rand state in deterministic code.
package wallclock

import (
	"math/rand"
	"time"
)

// stamp reads the wall clock.
func stamp() time.Time {
	return time.Now() // want `time.Now in a deterministic package`
}

// elapsed derives a duration from the wall clock.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since in a deterministic package`
}

// draw pulls from the global math/rand state.
func draw() int {
	return rand.Intn(10) // want `rand.Intn uses the global math/rand state`
}

// seeded draws are reproducible; the seeded constructors are exempt,
// and methods on an explicit *rand.Rand are not package-level calls.
func seeded() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(10)
}

// double does arithmetic on time values; only clock reads are flagged.
func double(d time.Duration) time.Duration {
	return 2 * d
}

// telemetry is the justified pattern: a clock read that is reported,
// never folded into a pinned computation.
func telemetry() time.Time {
	//blast:allow wallclock -- fixture: telemetry only, reported not computed with
	return time.Now()
}
