// Package ctxpoll is the golden fixture for the ctxpoll analyzer:
// adjacency-extent loops that never poll for cancellation despite
// having a context in reach.
package ctxpoll

import "context"

// CSR mimics the adjacency shape the analyzer keys on.
type CSR struct {
	NumProfiles int
	Offsets     []int64
	Neighbors   []int32
}

// unpolled walks full adjacency runs with a context in hand and never
// polls it. Only the inner loop is bounded by adjacency extent.
func unpolled(ctx context.Context, g *CSR) int {
	n := 0
	for u := 0; u < g.NumProfiles; u++ {
		for p := g.Offsets[u]; p < g.Offsets[u+1]; p++ { // want `never polls for cancellation`
			n += int(g.Neighbors[p])
		}
	}
	return n
}

// polled checks ctx.Err on a budget inside the run; nothing to flag.
func polled(ctx context.Context, g *CSR) (int, error) {
	n := 0
	for u := 0; u < g.NumProfiles; u++ {
		for p := g.Offsets[u]; p < g.Offsets[u+1]; p++ {
			if p%1024 == 0 {
				if err := ctx.Err(); err != nil {
					return 0, err
				}
			}
			n += int(g.Neighbors[p])
		}
	}
	return n, nil
}

// worker carries its context inside a budgeted ticker, the prune-worker
// pattern.
type worker struct {
	ctx    context.Context
	budget int
}

func (w *worker) tick(n int) error {
	w.budget -= n
	if w.budget > 0 {
		return nil
	}
	w.budget = 1024
	return w.ctx.Err()
}

// workerPolled ticks the budget; the ticker wraps the ctx.
func (w *worker) workerPolled(g *CSR) error {
	for range g.Neighbors {
		if err := w.tick(1); err != nil {
			return err
		}
	}
	return nil
}

// workerUnpolled has the ctx (inside w) but never ticks the budget.
func (w *worker) workerUnpolled(g *CSR) int {
	n := 0
	for _, v := range g.Neighbors { // want `never polls for cancellation`
		n += int(v)
	}
	return n
}

// noSource cannot poll — functions without a context are exempt.
func noSource(g *CSR) int {
	n := 0
	for _, v := range g.Neighbors {
		n += int(v)
	}
	return n
}

// suppressed is a justified bounded run.
func suppressed(ctx context.Context, g *CSR) int {
	n := 0
	//blast:allow ctxpoll -- fixture: bounded zero-fill over one already-materialized run
	for _, v := range g.Neighbors {
		n += int(v)
	}
	return n
}
