// Package syncerr is the golden fixture for the syncerr analyzer:
// durability-verb errors dropped on the floor.
package syncerr

import (
	"hash/fnv"
	"os"
)

// discards drops durability errors in every form the analyzer knows:
// bare statement, defer, package function, blank assignment.
func discards(f *os.File, path string) {
	f.Sync()                     // want `error from f.Sync is discarded`
	defer f.Close()              // want `error from f.Close is discarded`
	os.Rename(path, path+".bak") // want `error from os.Rename is discarded`
	_ = f.Close()                // want `error from f.Close is assigned to _`
}

// blankWrite keeps the byte count but discards the write error.
func blankWrite(f *os.File, p []byte) int {
	n, _ := f.Write(p) // want `error from f.Write is assigned to _`
	return n
}

// checked propagates every durability receipt; nothing to flag.
func checked(f *os.File, p []byte) error {
	if _, err := f.Write(p); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// hashWrite never fails; hash-package receivers are exempt.
func hashWrite(p []byte) uint64 {
	h := fnv.New64a()
	h.Write(p)
	return h.Sum64()
}

// suppressed is a justified best-effort close.
func suppressed(f *os.File) {
	//blast:allow syncerr -- fixture: best-effort descriptor release on an already-failing path
	f.Close()
}
