// Package maporder is the golden fixture for the maporder analyzer:
// order-sensitive work inside for-range over a map.
package maporder

import (
	"hash/fnv"
	"sort"
)

// floatAccumOpAssign accumulates a float across map iteration order.
func floatAccumOpAssign(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want `floating-point accumulation into total`
	}
	return total
}

// floatAccumRebind spells the same accumulation as x = x + v.
func floatAccumRebind(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want `floating-point accumulation into total`
	}
	return total
}

// intAccum commutes exactly; integer sums are order-insensitive.
func intAccum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// appendUnsorted builds ordered output in iteration order.
func appendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `appending to keys inside range over a map`
	}
	return keys
}

// appendThenSort is the deterministic collect-then-sort idiom.
func appendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// hashOutliving folds map values into a hash that outlives the loop.
func hashOutliving(m map[string][]byte) uint64 {
	h := fnv.New64a()
	for _, v := range m {
		h.Write(v) // want `h.Write inside range over a map`
	}
	return h.Sum64()
}

// hashPerIteration keeps the accumulator local to one iteration, then
// combines with XOR — order cannot leak out.
func hashPerIteration(m map[string][]byte) uint64 {
	var n uint64
	for _, v := range m {
		h := fnv.New64a()
		h.Write(v)
		n ^= h.Sum64()
	}
	return n
}

// suppressed carries a justified allow on the line above the site.
func suppressed(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		//blast:allow maporder -- fixture: the sum feeds an order-insensitive assertion only
		total += v
	}
	return total
}
