// Package smoke is the multichecker fixture: one package tripping
// several analyzers at once, plus every way a blast:allow comment can
// be wrong. The golden test runs the full suite over it.
package smoke

import (
	"os"
	"time"
)

// mixed trips wallclock, maporder and syncerr in one function.
func mixed(m map[string]float64, f *os.File) float64 {
	start := time.Now() // want `time.Now in a deterministic package`
	total := 0.0
	for _, v := range m {
		total += v // want `floating-point accumulation into total`
	}
	_ = start
	f.Close() // want `error from f.Close is discarded`
	return total
}

// missingJustification: an allow without a justification suppresses
// nothing — the diagnostic survives AND the allow itself is reported,
// so deleting a justification turns the build red.
func missingJustification(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		//blast:allow maporder // want `requires a justification`
		total += v // want `floating-point accumulation into total`
	}
	return total
}

// unknownAnalyzer: a typo'd analyzer name never suppresses.
func unknownAnalyzer() time.Time {
	//blast:allow wallclck -- typo'd name // want `unknown analyzer "wallclck"`
	return time.Now() // want `time.Now in a deterministic package`
}

// stale: a well-formed allow that suppresses nothing is itself an
// error, so exceptions cannot outlive the code they excused.
func stale() int {
	//blast:allow syncerr -- fixture: nothing here discards anything // want `suppresses nothing here`
	return 0
}
