// Package shard is a stub of the real blast/internal/shard for the
// snapshotmut golden fixture. The analyzer identifies the protected
// type by package path and type name, so the fixture module carries a
// type spelled exactly blast/internal/shard.Snapshot.
package shard

// Snapshot mirrors the real snapshot's shape: scalar tags plus CSR
// arrays shared with wait-free readers across epochs.
type Snapshot struct {
	Epoch       uint64
	Batches     int64
	NumProfiles int
	Offsets     []int64
	Neighbors   []int32
	Weights     []float64
}
