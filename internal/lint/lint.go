// Package lint is blastlint: a project-specific static-analysis suite
// that machine-checks the determinism and durability invariants the
// differential test matrix can only probe at runtime. Every fast path in
// this repo is pinned byte-identical to the reference batch path; the
// invariants that make that true — ordered float reduction, immutable
// shared snapshots, checked fsyncs on the WAL path, edge-segment
// cancellation polls — are encoded here as compile-time checks so a
// violation is a build break, not a runtime lottery (the PR 4
// EntropyFromCounts map-order bug is the precedent).
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic) but is built on the standard library
// alone — go/parser, go/types and a source importer — so the module
// keeps its zero-dependency contract. Should the tree ever vendor
// x/tools, the analyzers port by swapping the Pass type.
//
// Suppression: a diagnostic is silenced by a comment on the same line or
// the line immediately above:
//
//	//blast:allow <analyzer> -- <justification>
//
// The justification is mandatory: an allow comment without one (or one
// naming an unknown analyzer, or one that suppresses nothing) is itself
// an error, so exceptions stay justified and current.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// An Analyzer describes one named analysis and its entry point.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow comments.
	Name string
	// Doc is a one-paragraph description of the invariant it encodes.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// A Pass presents one package to an analyzer: syntax, type information
// and a sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// report receives every diagnostic; the runner wraps it with scope
	// filtering and allow-comment suppression.
	report func(Diagnostic)
}

// Reportf reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Analyzer: p.Analyzer.Name, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, positioned in the fileset of the pass
// that produced it.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// All returns the blastlint analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		MapOrder,
		SyncErr,
		SnapshotMut,
		CtxPoll,
		WallClock,
	}
}

// byName resolves analyzer names for allow-comment validation.
func byName(analyzers []*Analyzer) map[string]bool {
	m := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		m[a.Name] = true
	}
	return m
}

// deterministicPkgs are the packages whose outputs are pinned
// byte-identical across runs, worker counts and engines. Nondeterminism
// inside them is a correctness bug class, not a style issue.
var deterministicPkgs = map[string]bool{
	"blast/internal/attr":         true,
	"blast/internal/stats":        true,
	"blast/internal/weights":      true,
	"blast/internal/prune":        true,
	"blast/internal/graph":        true,
	"blast/internal/metablocking": true,
	"blast/internal/shard":        true,
}

// inScope reports whether analyzer a applies to the file at filename in
// the package at pkgPath. The scope table lives here, outside the
// analyzers, so golden tests can exercise the pure analysis logic on
// fixture packages regardless of their paths.
func inScope(a *Analyzer, pkgPath, filename string) bool {
	base := filepath.Base(filename)
	switch a.Name {
	case "maporder", "wallclock":
		// Deterministic packages only: cmd/, examples/, experiments and
		// tests may time, log and randomize freely.
		return deterministicPkgs[pkgPath]
	case "ctxpoll":
		// The edge-segment polling contract PR 5 established spans the
		// CSR iteration surfaces; partitioned sharding added shard's
		// snapshot pair enumeration to them.
		return pkgPath == "blast/internal/prune" || pkgPath == "blast/internal/graph" ||
			pkgPath == "blast/internal/shard"
	case "syncerr":
		// The durability path: a dropped error here silently voids the
		// "ids are a durability receipt" contract. The commands and the
		// HTTP front end are output paths with the same failure mode — a
		// "wrote"/200 claim over bytes that never reached their sink.
		switch {
		case pkgPath == "blast/internal/wal":
			return true
		case pkgPath == "blast/internal/store":
			// Spill segments: a dropped write/sync error here would let a
			// paged read later serve bytes that never reached the disk.
			return true
		case pkgPath == "blast/internal/shard" && base == "persist.go":
			return true
		case pkgPath == "blast" && base == "durable.go":
			return true
		case pkgPath == "blast/blasthttp":
			return true
		case strings.HasPrefix(pkgPath, "blast/cmd/"):
			return true
		}
		return false
	case "snapshotmut":
		// Everywhere except the decode/constructor file, which builds
		// snapshots in place before publication.
		return !(pkgPath == "blast/internal/shard" && base == "persist.go")
	}
	return true
}

// pkgPathOf is a helper for analyzers that need the import path of a
// types object's package ("" for builtins and the universe scope).
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// isTestFile reports whether filename is a _test.go file. The loader
// never parses them, but analysistest fixtures may name files freely.
func isTestFile(filename string) bool {
	return strings.HasSuffix(filename, "_test.go")
}
