package blast

// Sharded snapshot-swap Index serving. A Server scales the mutable
// Index of incremental meta-blocking (PR 3) to heavy read traffic by
// separating the write and read paths completely:
//
//   - Writes are globally sequenced and broadcast to N shard workers,
//     each of which owns a writable Index replica and applies every
//     batch in the same order. Determinism of the insert path makes the
//     replicas byte-identical, which is what lets ANY shard answer for
//     any profile and the quiesced server match a cold IndexBlocks over
//     the union collection exactly.
//   - Reads never touch a writable index. Each shard publishes an
//     immutable, epoch-tagged snapshot (the flat CSR + retention mask +
//     thresholds that Index.Compact yields) and swaps it atomically on
//     a compaction policy; point reads are hash-routed by profile id to
//     the owning shard and served wait-free from its snapshot, while
//     Pairs fans out over all shards — each enumerating only the rows
//     it owns — and merges the ordered streams.
//
// Consistency contract: a read observes a prefix of each shard's insert
// sequence (the one its owner had published when the snapshot was
// swapped in). Quiesce establishes the strongest state — every admitted
// profile applied, compacted and published on every shard — after which
// the server's Pairs/Candidates/Threshold are byte-identical to a cold
// IndexBlocks over the union collection (enforced by the randomized
// differential tests in server_test.go).

import (
	"context"
	"errors"
	"slices"
	"sync"

	"blast/internal/blocking"
	"blast/internal/model"
	"blast/internal/shard"
)

// indexWriter adapts a writable Index to the shard.Writer interface.
type indexWriter struct{ ix *Index }

func (w indexWriter) InsertAll(ctx context.Context, profiles []model.Profile) ([]int, error) {
	return w.ix.InsertAll(ctx, profiles)
}

func (w indexWriter) Export(ctx context.Context) (*shard.Snapshot, error) {
	return w.ix.exportSnapshot(ctx)
}

func (w indexWriter) OverlayStats() (int, float64) {
	st := w.ix.Stats()
	return st.OverlayEntries, st.OverlayLoad
}

// Server serves candidate queries from hash-sharded snapshot-swap
// shards while absorbing streamed profile inserts. Construct with
// Pipeline.Serve or Pipeline.ServeBlocks; always Close a server when
// done (Close stops the shard workers; reads stay valid afterwards).
// All methods are safe for concurrent use.
//
// The shard state behind the API is selected by ServerOptions.Topology:
// replicated shards each hold a full writable Index (any shard can
// answer for any profile), partitioned shards each own only their rows'
// adjacency and resolve graph-global pruning state through the
// aggregate exchange (see partition.go). The read API and consistency
// contract are identical under both.
type Server struct {
	kind     model.Kind
	topology Topology
	storage  Storage
	shards   []*shard.Shard
	replicas []*Index         // replicated topology; nil when partitioned
	parts    []*partIndex     // partitioned topology; nil when replicated
	schema   *Schema          // partitioned only (replicas carry their own)
	dur      *durability      // nil unless ServerOptions.Dir was set
	pers     []*snapPersister // per-shard, nil entries where persistence is off

	mu     sync.Mutex
	nextID int
	closed bool
}

// Serve runs the full pipeline on the dataset and starts a sharded
// snapshot-swap server over the outcome: InduceSchema, Block, then
// ServeBlocks.
func (p *Pipeline) Serve(ctx context.Context, ds *model.Dataset, sopt ServerOptions) (*Server, error) {
	sch, err := p.InduceSchema(ctx, ds)
	if err != nil {
		return nil, err
	}
	blocks, err := p.Block(ctx, ds, sch)
	if err != nil {
		return nil, err
	}
	return p.ServeBlocks(ctx, blocks, sopt)
}

// ServeBlocks freezes a Blocks artifact into one writable Index per
// shard (one build plus O(E) clones) and starts the shard workers, each
// serving reads from an initial epoch-0 snapshot of the build. The
// artifact itself is never mutated. Replicas swap snapshots over
// compaction — their internal auto-compaction is disabled and the
// Options.Compaction knobs instead drive the shard-level overlay swap
// trigger, so folding the overlay and publishing the result are one
// event. Options.Workers reaches every replica: the initial build and
// each replica's pruning re-derivations run on that many goroutines,
// and because the parallel pruning is byte-deterministic the replicas
// stay identical at any worker count.
//
// With ServerOptions.Dir set the server is durable: admitted batches
// are journaled to per-shard write-ahead logs before ids are returned,
// published snapshots are persisted on the SnapshotEvery cadence, and
// ServeBlocks over an existing directory recovers the pre-crash state
// (newest usable snapshot per shard plus WAL suffix replay) instead of
// starting empty. See durable.go for the layout and recovery rules.
func (p *Pipeline) ServeBlocks(ctx context.Context, blocks *Blocks, sopt ServerOptions) (*Server, error) {
	if err := sopt.Validate(); err != nil {
		return nil, err
	}
	if sopt.Dir != "" {
		return p.serveDurable(ctx, blocks, sopt)
	}
	if sopt.Topology == TopologyPartitioned {
		return p.servePartitioned(ctx, blocks, sopt)
	}
	master, err := p.indexBlocks(ctx, blocks, true)
	if err != nil {
		return nil, err
	}
	initial, err := master.exportSnapshot(ctx)
	if err != nil {
		return nil, err
	}
	n := sopt.shards()
	shOpt := p.shardOptions(sopt)
	srv := &Server{
		kind:     master.Kind(),
		storage:  p.opt.Storage,
		shards:   make([]*shard.Shard, n),
		replicas: make([]*Index, n),
		nextID:   master.NumProfiles(),
	}
	for i := 0; i < n; i++ {
		rep := master
		if i > 0 {
			rep = master.cloneForServing()
		}
		rep.opt.Compaction = Compaction{MaxOverlayFraction: -1}
		srv.replicas[i] = rep
		srv.shards[i] = shard.New(i, indexWriter{rep}, initial, shOpt)
	}
	return srv, nil
}

// servePartitioned starts the partitioned topology over a Blocks
// artifact: one full master build (discarded after its snapshot is
// sliced), then one partIndex per shard holding a clone of the block
// collection and an owned-rows slice of the build as its initial
// snapshot. The shards share one aggregate Exchange; a failing shard
// poisons it, failing its peers' exports too — under partitioning no
// healthy subset of shards can serve (each shard's rows exist nowhere
// else), so the server surfaces the failure instead of degrading.
func (p *Pipeline) servePartitioned(ctx context.Context, blocks *Blocks, sopt ServerOptions) (*Server, error) {
	master, err := p.indexBlocks(ctx, blocks, false)
	if err != nil {
		return nil, err
	}
	full, err := master.exportSnapshot(ctx)
	if err != nil {
		return nil, err
	}
	n := sopt.shards()
	shOpt := p.shardOptions(sopt)
	// The overlay-fraction swap trigger consults per-shard overlay load,
	// which could fire shards' publishes at different stream positions;
	// partitioned exports must stay position-aligned (they exchange
	// aggregates), so only the deterministic SwapOps cadence may trigger.
	shOpt.MaxOverlayFraction = 0
	ex := shard.NewExchange(n)
	shOpt.OnFail = func(err error) { ex.Poison(err) }
	srv := &Server{
		kind:     master.Kind(),
		topology: TopologyPartitioned,
		storage:  p.opt.Storage,
		shards:   make([]*shard.Shard, n),
		parts:    make([]*partIndex, n),
		schema:   blocks.Schema,
		nextID:   master.NumProfiles(),
	}
	for i := 0; i < n; i++ {
		px := newPartIndex(blocks.Collection.Clone(), blocks.Schema, p.opt, i, n, ex)
		srv.parts[i] = px
		srv.shards[i] = shard.New(i, px, shard.SliceOwned(full, i, n), shOpt)
	}
	return srv, nil
}

// shardOptions derives the shard worker knobs shared by the in-memory
// and durable construction paths: the pipeline's Compaction settings
// drive the shard-level swap trigger, with replica auto-compaction
// disabled separately by the caller.
func (p *Pipeline) shardOptions(sopt ServerOptions) shard.Options {
	shOpt := shard.Options{
		SwapOps:            sopt.swapOps(),
		MaxOverlayFraction: p.opt.Compaction.maxFraction(),
		MinOverlayEntries:  p.opt.Compaction.minEntries(),
	}
	if p.opt.Compaction.disabled() {
		shOpt.MaxOverlayFraction = 0
	}
	return shOpt
}

// NumShards returns the number of shard workers.
func (s *Server) NumShards() int { return len(s.shards) }

// Kind returns the ER setting of the served dataset.
func (s *Server) Kind() model.Kind { return s.kind }

// Topology returns the shard topology the server was started with.
func (s *Server) Topology() Topology { return s.topology }

// Storage returns the graph storage mode (Options.Storage) the server's
// index builds run under. Spilled builds are transient — serving state
// is materialized at publish time — so this reports configuration, not
// a point-in-time residency; the per-shard ResidentBytes in Stats
// reports the latter.
func (s *Server) Storage() Storage { return s.storage }

// Admitted returns the number of profiles the server has accepted:
// the build's profiles plus every insert admitted so far, whether or
// not the shards have applied and published them yet.
func (s *Server) Admitted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextID
}

// NumProfiles returns the number of profiles every read is guaranteed
// to observe: the smallest published profile count across the shards.
// After Quiesce it equals Admitted.
func (s *Server) NumProfiles() int {
	n := -1
	for _, sh := range s.shards {
		if p := sh.Snapshot().NumProfiles; n < 0 || p < n {
			n = p
		}
	}
	return n
}

// Stats returns a point-in-time summary of every shard.
func (s *Server) Stats() []shard.Stats {
	out := make([]shard.Stats, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.Stats()
	}
	return out
}

// Err returns the first error the serving machinery encountered, if
// any: a poisoned durability layer (WAL divergence) or a failed shard
// worker. A non-nil result is sticky and fails all further admissions.
func (s *Server) Err() error {
	if s.dur != nil {
		if err := s.dur.err(); err != nil {
			return err
		}
	}
	for _, sh := range s.shards {
		if err := sh.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Insert admits one profile and returns its assigned global id. The
// profile is applied asynchronously on every shard's write path;
// reads observe it once the owning shard next publishes (at the swap
// cadence, or at the latest on Quiesce).
func (s *Server) Insert(ctx context.Context, p *model.Profile) (int, error) {
	if p == nil {
		return -1, errors.New("blast: Insert requires a non-nil profile")
	}
	ids, err := s.InsertAll(ctx, []model.Profile{*p})
	if len(ids) == 1 {
		return ids[0], err
	}
	return -1, err
}

// InsertAll admits a batch of profiles, assigns their global ids in
// admission order, and broadcasts the batch to every shard worker. The
// broadcast is all-or-nothing — enqueues never block — so replicas
// always converge on the same insert sequence; ctx guards only
// admission. Ids are returned immediately; application and publication
// are asynchronous (see the consistency contract in the type docs).
func (s *Server) InsertAll(ctx context.Context, profiles []model.Profile) ([]int, error) {
	if len(profiles) == 0 {
		return nil, ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, shard.ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	// One shared deep copy: the workers read the batch asynchronously,
	// so nothing may alias caller memory — copying the Profile structs
	// alone would share the Pairs backing arrays and let a caller
	// reusing its buffers race the appliers. The workers only read the
	// copy, so one serves every shard.
	batch := make([]model.Profile, len(profiles))
	for i := range profiles {
		batch[i] = profiles[i]
		batch[i].Pairs = slices.Clone(profiles[i].Pairs)
	}
	// Durable servers journal the batch before admitting it: once ids
	// are returned the batch survives a crash (to the fsync policy), and
	// a batch that could not be journaled is not admitted at all.
	if s.dur != nil {
		if err := s.dur.appendBatch(batch); err != nil {
			return nil, err
		}
	}
	// Enqueues cannot fail here — the server lock excludes Close, and a
	// shard mailbox never rejects otherwise — so the broadcast is
	// atomic: every shard receives the batch or (had Close won the
	// lock) none does.
	for _, sh := range s.shards {
		if err := sh.Enqueue(batch); err != nil {
			return nil, err
		}
	}
	ids := make([]int, len(profiles))
	for i := range ids {
		ids[i] = s.nextID
		s.nextID++
	}
	return ids, nil
}

// owner returns the shard serving a profile's point reads.
func (s *Server) owner(profile int) *shard.Shard {
	return s.shards[shard.Owner(int32(profile), len(s.shards))]
}

// Candidates returns the retained candidate comparisons of one profile
// from the owning shard's published snapshot, ordered by descending
// weight (ties by ascending id). Result semantics match Index.Candidates
// (never nil; out-of-range ids yield an empty slice).
func (s *Server) Candidates(profile int) []Candidate {
	return s.AppendCandidates(make([]Candidate, 0, 4), profile)
}

// AppendCandidates appends the retained candidate comparisons of one
// profile to buf, serving wait-free from the owning shard's published
// snapshot. Semantics match Index.AppendCandidates.
func (s *Server) AppendCandidates(buf []Candidate, profile int) []Candidate {
	if profile < 0 {
		return buf
	}
	return s.owner(profile).Snapshot().AppendCandidates(buf, profile)
}

// Threshold returns theta_i of a profile from the owning shard's
// published snapshot. Semantics match Index.Threshold.
func (s *Server) Threshold(profile int) float64 {
	if profile < 0 {
		return 0
	}
	return s.owner(profile).Snapshot().Threshold(profile)
}

// Epoch returns the publication epoch of the shard owning a profile —
// the version tag of the state its reads are served from.
func (s *Server) Epoch(profile int) uint64 {
	if profile < 0 {
		return 0
	}
	return s.owner(profile).Snapshot().Epoch
}

// consistentSnapshots captures one published snapshot per shard such
// that all sit at the same position of the global insert sequence
// (equal Snapshot.Batches — replica determinism then makes them views
// of one state). A plain per-shard capture does not guarantee this:
// shards publish independently, so a pair of loads can observe shard 0
// before batch k and shard 1 after it. The capture is retried
// optimistically a few times (publications are rare relative to reads);
// if writers keep moving the shards it falls back to holding the server
// lock — excluding new admissions — and barriering every shard so all
// publications land at the same final cursor.
func (s *Server) consistentSnapshots(ctx context.Context) ([]*shard.Snapshot, error) {
	capture := func() ([]*shard.Snapshot, bool) {
		snaps := make([]*shard.Snapshot, len(s.shards))
		for i, sh := range s.shards {
			snaps[i] = sh.Snapshot()
			if snaps[i].Batches != snaps[0].Batches {
				return nil, false
			}
		}
		return snaps, true
	}
	for attempt := 0; attempt < 3; attempt++ {
		if snaps, ok := capture(); ok {
			return snaps, nil
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		// Close stopped the workers; each drains fully on Close, so once
		// every Close has returned the cursors agree. Re-closing is
		// idempotent and waits for exactly that.
		for _, sh := range s.shards {
			_ = sh.Close()
		}
		if snaps, ok := capture(); ok {
			return snaps, nil
		}
		if err := s.Err(); err != nil {
			return nil, err
		}
		return nil, errors.New("blast: closed shards disagree on the insert sequence")
	}
	// No admissions can interleave while we hold the lock, so after the
	// barriers every shard has published the full admitted sequence.
	if err := s.barrierAllLocked(ctx); err != nil {
		return nil, err
	}
	if snaps, ok := capture(); ok {
		return snaps, nil
	}
	return nil, errors.New("blast: quiesced shards disagree on the insert sequence")
}

// Pairs returns every retained comparison in canonical order by fanning
// the enumeration out across the shards — each walks only the rows it
// owns in its published snapshot — and merging the ordered streams. The
// per-shard snapshots are captured at one common position of the insert
// sequence, so the result is always a consistent state the server
// actually passed through (on a quiesced server, byte-identical to
// Index.Pairs of a cold IndexBlocks over the union collection).
func (s *Server) Pairs(ctx context.Context) ([]model.IDPair, error) {
	n := len(s.shards)
	snaps, err := s.consistentSnapshots(ctx)
	if err != nil {
		return nil, err
	}
	rows := 0
	for i := range snaps {
		if snaps[i].NumProfiles > rows {
			rows = snaps[i].NumProfiles
		}
	}
	// Hash each row's owner once, shared read-only by every goroutine,
	// instead of n times (once per shard's own enumeration pass).
	owners := make([]uint8, rows)
	for u := range owners {
		owners[u] = uint8(shard.Owner(int32(u), n))
	}
	parts := make([][]model.IDPair, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int, snap *shard.Snapshot) {
			defer wg.Done()
			owns := func(u int32) bool { return owners[u] == uint8(i) }
			parts[i], errs[i] = snap.AppendOwnedPairs(ctx, nil, owns)
		}(i, snaps[i])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return shard.MergePairs(parts), nil
}

// A View is an epoch-consistent read handle over the server: one
// published snapshot per shard, all captured at the same position of
// the global insert sequence, pinned for the view's lifetime. Where the
// Server's own point reads each load the owner's CURRENT snapshot — so
// two reads can observe different states — every read through one View
// observes the single state identified by Batches. Views are immutable
// and safe for concurrent use; holding one only pins memory (the
// snapshots are retained from the garbage collector), never blocks
// writers.
type View struct {
	snaps []*shard.Snapshot
}

// View captures an epoch-consistent read handle. It is served from
// published snapshots when the shards already agree, and otherwise
// barriers them (excluding concurrent admissions for the duration, like
// Quiesce); ctx bounds that wait.
func (s *Server) View(ctx context.Context) (*View, error) {
	snaps, err := s.consistentSnapshots(ctx)
	if err != nil {
		return nil, err
	}
	return &View{snaps: snaps}, nil
}

// owner returns the snapshot holding a profile's rows.
func (v *View) owner(profile int) *shard.Snapshot {
	return v.snaps[shard.Owner(int32(profile), len(v.snaps))]
}

// Batches identifies the state every read of this view observes: its
// position in the globally sequenced insert stream. Two views with
// equal Batches over the same server observe identical state.
func (v *View) Batches() int64 { return v.snaps[0].Batches }

// NumProfiles returns the number of profiles the view covers.
func (v *View) NumProfiles() int { return v.snaps[0].NumProfiles }

// Candidates returns the retained candidate comparisons of one profile
// at the view's state. Semantics match Server.Candidates.
func (v *View) Candidates(profile int) []Candidate {
	return v.AppendCandidates(make([]Candidate, 0, 4), profile)
}

// AppendCandidates appends the retained candidate comparisons of one
// profile to buf at the view's state. Semantics match
// Server.AppendCandidates.
func (v *View) AppendCandidates(buf []Candidate, profile int) []Candidate {
	if profile < 0 {
		return buf
	}
	return v.owner(profile).AppendCandidates(buf, profile)
}

// Threshold returns theta_i of a profile at the view's state. Semantics
// match Server.Threshold.
func (v *View) Threshold(profile int) float64 {
	if profile < 0 {
		return 0
	}
	return v.owner(profile).Threshold(profile)
}

// Epoch returns the publication epoch of the snapshot serving a
// profile's reads in this view. Unlike Batches it is a per-shard
// counter: two profiles of one view may report different epochs, but
// both observe the same state.
func (v *View) Epoch(profile int) uint64 {
	if profile < 0 {
		return 0
	}
	return v.owner(profile).Epoch
}

// Quiesce drives every shard to the strongest consistent state: all
// admitted batches applied, overlays compacted, snapshots swapped. When
// it returns nil, every read (on any shard) observes every insert
// admitted before the call. Barriers are placed on all shards at one
// position of the insert sequence and awaited concurrently; ctx bounds
// only the wait. On a closed server Quiesce reports shard.ErrClosed
// (Close already established the drained state).
func (s *Server) Quiesce(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return shard.ErrClosed
	}
	err := s.barrierAllLocked(ctx)
	s.mu.Unlock()
	return err
}

// barrierAllLocked enqueues a barrier on every shard and awaits them
// all, reporting the most meaningful failure (see firstError). The
// caller must hold s.mu across the call: holding the admission lock
// through the enqueue phase places every shard's barrier at the SAME
// position of the global insert sequence — the partitioned topology
// depends on it (barrier-forced exports run the aggregate exchange, so
// all shards must export the same collection state), and it is what
// makes the post-barrier captures of consistentSnapshots land on one
// cursor. The waits necessarily also run under the lock; barriers are
// bounded by shard progress, not by future admissions, so this cannot
// deadlock.
func (s *Server) barrierAllLocked(ctx context.Context) error {
	n := len(s.shards)
	errs := make([]error, n)
	waits := make([]<-chan error, n)
	for i, sh := range s.shards {
		waits[i], errs[i] = sh.BarrierStart()
	}
	var wg sync.WaitGroup
	for i := range s.shards {
		if errs[i] != nil || waits[i] == nil {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case err := <-waits[i]:
				errs[i] = err
			case <-ctx.Done():
				errs[i] = ctx.Err()
			}
		}(i)
	}
	wg.Wait()
	return firstError(errs)
}

// firstError picks the most meaningful error out of a per-shard batch:
// a real failure (a sticky worker error, a context timeout) beats the
// bare shard.ErrClosed that healthy shards report when racing Close.
func firstError(errs []error) error {
	var closed error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, shard.ErrClosed) {
			closed = err
			continue
		}
		return err
	}
	return closed
}

// Blocks returns the live block collection of the first shard — on a
// quiesced server, the union collection every shard agrees on. The
// returned collection must not be modified. On a partitioned server
// call only after Quiesce (or Close): partitioned writers append to
// their collections without a read lock, so the caller must not race
// in-flight batches.
func (s *Server) Blocks() *blocking.Collection {
	if s.parts != nil {
		return s.parts[0].app.Collection()
	}
	return s.replicas[0].Blocks()
}

// Schema returns the Phase 1 artifact the server's indexes were blocked
// under (nil for a schema-agnostic run).
func (s *Server) Schema() *Schema {
	if s.parts != nil {
		return s.schema
	}
	return s.replicas[0].Schema()
}

// Close stops the shard workers after they drain every admitted batch,
// syncs and releases the write-ahead logs of a durable server, and
// returns the first error encountered. Every resource is released even
// when a shard reports a failure — a dead worker must not leak the
// others or the logs. Reads remain valid on the last published
// snapshots; Insert, InsertAll and Quiesce fail after Close. Close is
// idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	errs := make([]error, 0, len(s.shards)+1)
	shErrs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *shard.Shard) {
			defer wg.Done()
			shErrs[i] = sh.Close()
		}(i, sh)
	}
	wg.Wait()
	errs = append(errs, shErrs...)
	// Final snapshot: with the workers joined, persist each shard's last
	// published snapshot if it sits past the last file on disk. A drained
	// shutdown then leaves snapshots at the final WAL position, so the
	// next open restores without replay. Safe without locking — the
	// persister is otherwise touched only by the (now exited) worker.
	for i, sp := range s.pers {
		if sp == nil || shErrs[i] != nil {
			continue
		}
		if snap := s.shards[i].Snapshot(); snap.Batches > sp.last {
			errs = append(errs, sp.persistNow(snap))
		}
	}
	if s.dur != nil {
		errs = append(errs, s.dur.close())
	}
	return firstError(errs)
}
