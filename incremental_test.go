package blast

// Differential tests of incremental meta-blocking: after any sequence of
// Insert/InsertAll/Compact calls, the mutable Index must be
// byte-identical — Pairs(), Candidates(i), Threshold(i) — to a cold
// IndexBlocks over its own live (appended) collection, across the
// Induction x Scheme x Pruning configuration axes and against both batch
// engines. Plus the boundary, cancellation and concurrency contracts of
// the mutable index.

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"blast/internal/datasets"
	"blast/internal/metablocking"
	"blast/internal/model"
	"blast/internal/stats"
	"blast/internal/weights"
)

// synthProfile draws a random profile from a small shared vocabulary, so
// streamed profiles co-occur heavily with the base collection while
// still introducing fresh tokens now and then.
func synthProfile(rng *stats.RNG, id string) model.Profile {
	words := []string{
		"alpha", "beta", "gamma", "delta", "abram", "ellen", "main", "oak",
		"1985", "1999", "ny", "sf", "smith", "jones", "red", "blue",
		"acme", "globex", "north", "south", "pine", "elm", "42", "77",
	}
	attrs := []string{"name", "addr", "year", "note"}
	p := model.Profile{ID: id}
	na := 1 + rng.Intn(len(attrs))
	for a := 0; a < na; a++ {
		nt := 1 + rng.Intn(4)
		var toks []string
		for j := 0; j < nt; j++ {
			if rng.Intn(12) == 0 {
				// Occasionally a token outside the vocabulary: exercises
				// pending keys and new-block materialization.
				toks = append(toks, fmt.Sprintf("tok%d", rng.Intn(1000)))
			} else {
				toks = append(toks, words[rng.Intn(len(words))])
			}
		}
		p.Add(attrs[rng.Intn(len(attrs))], strings.Join(toks, " "))
	}
	return p
}

// synthDirty builds a dirty dataset of n synthetic profiles.
func synthDirty(rng *stats.RNG, n int) *model.Dataset {
	e := model.NewCollection("stream-base")
	for i := 0; i < n; i++ {
		e.Append(synthProfile(rng, fmt.Sprintf("b%d", i)))
	}
	return &model.Dataset{Name: "stream", Kind: model.Dirty, E1: e, Truth: model.NewGroundTruth()}
}

// checkIndexEquivalence asserts the incremental correctness contract:
// the mutable index matches a cold IndexBlocks over a clone of its live
// collection on every observable — pairs, per-profile candidates
// (ids and bitwise weights) and per-profile thresholds.
func checkIndexEquivalence(t *testing.T, label string, p *Pipeline, ix *Index) {
	t.Helper()
	cold, err := p.IndexBlocks(context.Background(), &Blocks{Collection: ix.Blocks().Clone(), Schema: ix.Schema()})
	if err != nil {
		t.Fatalf("%s: cold IndexBlocks: %v", label, err)
	}
	if cold.NumProfiles() != ix.NumProfiles() {
		t.Fatalf("%s: NumProfiles = %d, want %d", label, ix.NumProfiles(), cold.NumProfiles())
	}
	if cold.NumEdges() != ix.NumEdges() {
		t.Fatalf("%s: NumEdges = %d, want %d", label, ix.NumEdges(), cold.NumEdges())
	}
	assertSamePairs(t, label+" pairs", cold.Pairs(), ix.Pairs())
	if cold.NumRetained() != ix.NumRetained() {
		t.Fatalf("%s: NumRetained = %d, want %d", label, ix.NumRetained(), cold.NumRetained())
	}
	var want, got []Candidate
	for i := 0; i < cold.NumProfiles(); i++ {
		if cw, iw := cold.Threshold(i), ix.Threshold(i); cw != iw {
			t.Fatalf("%s: Threshold(%d) = %v, want %v", label, i, iw, cw)
		}
		want = cold.AppendCandidates(want[:0], i)
		got = ix.AppendCandidates(got[:0], i)
		if len(want) != len(got) {
			t.Fatalf("%s: Candidates(%d): %d, want %d", label, i, len(got), len(want))
		}
		for k := range want {
			if want[k] != got[k] {
				t.Fatalf("%s: Candidates(%d)[%d] = %+v, want %+v", label, i, k, got[k], want[k])
			}
		}
	}
}

// TestIncrementalEquivalenceMatrix streams profile batches into indexes
// across Induction x Scheme x Pruning and checks the cold-rebuild
// contract at every batch boundary, then cross-checks the final pair set
// against both batch engines run over the live collection.
func TestIncrementalEquivalenceMatrix(t *testing.T) {
	ctx := context.Background()
	schemes := []weights.Scheme{
		{Kind: weights.ChiSquared, Entropy: true},
		{Kind: weights.CBS},
		{Kind: weights.JS},
		{Kind: weights.ARCS, Entropy: true},
		{Kind: weights.ECBS},
	}
	prunings := []metablocking.Pruning{
		metablocking.WEP, metablocking.CEP, metablocking.WNP1,
		metablocking.WNP2, metablocking.CNP1, metablocking.CNP2,
		metablocking.BlastWNP,
	}
	// Workers cycles through the axis so every pruning runs both serial
	// and parallel at least once; the contract demands byte-identical
	// decisions at every value (the cold reference inside
	// checkIndexEquivalence prunes under the same Workers).
	workersAxis := []int{0, 1, 2, 4}
	cfgN := 0
	for _, ind := range []Induction{LMI, NoInduction} {
		for _, scheme := range schemes {
			for _, pruning := range prunings {
				workers := workersAxis[cfgN%len(workersAxis)]
				cfgN++
				label := fmt.Sprintf("%v/%s/%v/workers=%d", ind, scheme.Name(), pruning, workers)
				rng := stats.NewRNG(uint64(len(label))*977 + 13)
				ds := synthDirty(rng, 60)
				opt := DefaultOptions()
				opt.Induction = ind
				opt.Scheme = scheme
				opt.Pruning = pruning
				opt.Workers = workers
				p, err := NewPipeline(opt)
				if err != nil {
					t.Fatal(err)
				}
				ix, err := p.BuildIndex(ctx, ds)
				if err != nil {
					t.Fatalf("%s: BuildIndex: %v", label, err)
				}
				for batch := 0; batch < 3; batch++ {
					profs := make([]model.Profile, 8)
					for i := range profs {
						profs[i] = synthProfile(rng, fmt.Sprintf("s%d-%d", batch, i))
					}
					if _, err := ix.InsertAll(ctx, profs); err != nil {
						t.Fatalf("%s: InsertAll: %v", label, err)
					}
					checkIndexEquivalence(t, fmt.Sprintf("%s batch %d", label, batch), p, ix)
				}
				// The live collection must also reproduce the index's
				// pairs through both batch engines.
				for _, engine := range []metablocking.Engine{metablocking.EdgeList, metablocking.NodeCentric} {
					cfg := metaConfigFromOptions(opt)
					cfg.Engine = engine
					mb, err := metablocking.RunCtx(ctx, ix.Blocks(), cfg)
					if err != nil {
						t.Fatalf("%s/%v: RunCtx: %v", label, engine, err)
					}
					assertSamePairs(t, fmt.Sprintf("%s final %v", label, engine), mb.Pairs, ix.Pairs())
				}
			}
		}
	}
}

// TestIncrementalEquivalenceRandom is the randomized differential
// harness: seeded random profile streams with interleaved Insert,
// InsertAll and explicit/automatic compaction triggers over randomized
// configuration axes, asserting the cold-rebuild contract at random
// checkpoints and at the end.
func TestIncrementalEquivalenceRandom(t *testing.T) {
	ctx := context.Background()
	schemes := []weights.Kind{
		weights.CBS, weights.ECBS, weights.ARCS, weights.JS, weights.EJS, weights.ChiSquared,
	}
	prunings := []metablocking.Pruning{
		metablocking.WEP, metablocking.CEP, metablocking.WNP1, metablocking.WNP2,
		metablocking.CNP1, metablocking.CNP2, metablocking.BlastWNP,
	}
	for seed := uint64(1); seed <= 18; seed++ {
		rng := stats.NewRNG(seed * 2654435761)
		opt := DefaultOptions()
		opt.Induction = []Induction{LMI, AC, NoInduction}[rng.Intn(3)]
		opt.Scheme = weights.Scheme{Kind: schemes[rng.Intn(len(schemes))], Entropy: rng.Intn(2) == 0}
		opt.Pruning = prunings[rng.Intn(len(prunings))]
		if rng.Intn(2) == 0 {
			opt.Engine = metablocking.NodeCentric // ignored by the index; part of the axis anyway
		}
		opt.C = []float64{1, 2, 4}[rng.Intn(3)]
		opt.Workers = []int{0, 1, 2, 4}[rng.Intn(4)]
		switch rng.Intn(3) {
		case 0:
			// Aggressive compaction: overlay folded almost every batch.
			opt.Compaction = Compaction{MaxOverlayFraction: 0.01, MinOverlayEntries: 1}
		case 1:
			opt.Compaction = Compaction{MaxOverlayFraction: -1} // disabled
		}
		label := fmt.Sprintf("seed %d (%v/%s/%v)", seed, opt.Induction, opt.Scheme.Name(), opt.Pruning)
		p, err := NewPipeline(opt)
		if err != nil {
			t.Fatal(err)
		}
		ds := synthDirty(rng, 20+rng.Intn(60))
		ix, err := p.BuildIndex(ctx, ds)
		if err != nil {
			t.Fatalf("%s: BuildIndex: %v", label, err)
		}
		streamed := 0
		total := 10 + rng.Intn(25)
		for streamed < total {
			switch rng.Intn(4) {
			case 0: // single insert
				prof := synthProfile(rng, fmt.Sprintf("s%d", streamed))
				if _, err := ix.Insert(ctx, &prof); err != nil {
					t.Fatalf("%s: Insert: %v", label, err)
				}
				streamed++
			case 1: // explicit compaction
				if err := ix.Compact(ctx); err != nil {
					t.Fatalf("%s: Compact: %v", label, err)
				}
			default: // batch insert
				n := 1 + rng.Intn(6)
				profs := make([]model.Profile, n)
				for i := range profs {
					profs[i] = synthProfile(rng, fmt.Sprintf("s%d", streamed+i))
				}
				if _, err := ix.InsertAll(ctx, profs); err != nil {
					t.Fatalf("%s: InsertAll: %v", label, err)
				}
				streamed += n
			}
			if rng.Intn(3) == 0 {
				checkIndexEquivalence(t, fmt.Sprintf("%s @%d", label, streamed), p, ix)
			}
		}
		checkIndexEquivalence(t, label+" final", p, ix)
		if st := ix.Stats(); st.Inserts != streamed {
			t.Errorf("%s: Stats.Inserts = %d, want %d", label, st.Inserts, streamed)
		}
	}
}

// TestIncrementalCleanClean streams profiles into E2 of a clean-clean
// index (the fixed-reference-collection workload) and checks the
// cold-rebuild contract.
func TestIncrementalCleanClean(t *testing.T) {
	ctx := context.Background()
	for _, pruning := range []metablocking.Pruning{metablocking.BlastWNP, metablocking.CEP} {
		full := datasets.AR1(0.04, 11)
		hold := 12
		base := &model.Dataset{
			Name: full.Name, Kind: model.CleanClean,
			E1:    full.E1,
			E2:    &model.Collection{Name: full.E2.Name, Profiles: full.E2.Profiles[:full.E2.Len()-hold]},
			Truth: model.NewGroundTruth(),
		}
		opt := DefaultOptions()
		opt.Pruning = pruning
		p, err := NewPipeline(opt)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := p.BuildIndex(ctx, base)
		if err != nil {
			t.Fatal(err)
		}
		wantSplit := base.Split()
		stream := full.E2.Profiles[full.E2.Len()-hold:]
		for i := range stream {
			id, err := ix.Insert(ctx, &stream[i])
			if err != nil {
				t.Fatalf("%v: Insert %d: %v", pruning, i, err)
			}
			if id < wantSplit {
				t.Fatalf("%v: inserted profile landed in E1 id space: %d < %d", pruning, id, wantSplit)
			}
		}
		if err := ix.Blocks().Validate(); err != nil {
			t.Fatalf("%v: live collection invalid: %v", pruning, err)
		}
		checkIndexEquivalence(t, fmt.Sprintf("clean-clean %v", pruning), p, ix)
	}
}

// TestIncrementalLocalizedPath pins the fast path: under a weighting
// with no graph-global inputs (JS) and BLAST's node-local pruning, every
// batch must finalize on the localized path — and still match a cold
// rebuild.
func TestIncrementalLocalizedPath(t *testing.T) {
	ctx := context.Background()
	rng := stats.NewRNG(99)
	ds := synthDirty(rng, 80)
	opt := DefaultOptions()
	opt.Scheme = weights.Scheme{Kind: weights.JS}
	p, err := NewPipeline(opt)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := p.BuildIndex(ctx, ds)
	if err != nil {
		t.Fatal(err)
	}
	batches := 5
	for b := 0; b < batches; b++ {
		profs := make([]model.Profile, 4)
		for i := range profs {
			profs[i] = synthProfile(rng, fmt.Sprintf("l%d-%d", b, i))
		}
		if _, err := ix.InsertAll(ctx, profs); err != nil {
			t.Fatal(err)
		}
	}
	st := ix.Stats()
	if st.LocalizedBatches != batches || st.RebuiltBatches != 0 {
		t.Errorf("JS/BlastWNP batches: localized %d rebuilt %d, want %d localized",
			st.LocalizedBatches, st.RebuiltBatches, batches)
	}
	checkIndexEquivalence(t, "localized", p, ix)

	// Duplicating an existing profile introduces no new tokens, so even
	// the default chi-squared weighting stays on the localized path.
	opt2 := DefaultOptions()
	p2, err := NewPipeline(opt2)
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := p2.BuildIndex(ctx, ds)
	if err != nil {
		t.Fatal(err)
	}
	dup := ds.E1.Profiles[3]
	dup.ID = "dup3"
	if _, err := ix2.Insert(ctx, &dup); err != nil {
		t.Fatal(err)
	}
	if st2 := ix2.Stats(); st2.PendingKeys == 0 && st2.LocalizedBatches != 1 {
		t.Errorf("duplicate insert: localized %d rebuilt %d (pending %d)",
			st2.LocalizedBatches, st2.RebuiltBatches, st2.PendingKeys)
	}
	checkIndexEquivalence(t, "duplicate insert", p2, ix2)
}

// TestIncrementalCompactionPreservesState: an explicit compaction must
// not change any observable, and must reset the overlay.
func TestIncrementalCompactionPreservesState(t *testing.T) {
	ctx := context.Background()
	rng := stats.NewRNG(7)
	ds := synthDirty(rng, 50)
	opt := DefaultOptions()
	// JS has no graph-global weight inputs, so inserts stay on the
	// localized path and the overlay persists until compacted.
	opt.Scheme = weights.Scheme{Kind: weights.JS}
	opt.Compaction = Compaction{MaxOverlayFraction: -1} // manual only
	p, err := NewPipeline(opt)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := p.BuildIndex(ctx, ds)
	if err != nil {
		t.Fatal(err)
	}
	profs := make([]model.Profile, 10)
	for i := range profs {
		profs[i] = synthProfile(rng, fmt.Sprintf("c%d", i))
	}
	if _, err := ix.InsertAll(ctx, profs); err != nil {
		t.Fatal(err)
	}
	before := ix.Pairs()
	th := make([]float64, ix.NumProfiles())
	for i := range th {
		th[i] = ix.Threshold(i)
	}
	if err := ix.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	if st.Compactions != 1 || st.OverlayEntries != 0 {
		t.Errorf("after Compact: %+v", st)
	}
	assertSamePairs(t, "compaction pairs", before, ix.Pairs())
	for i := range th {
		if got := ix.Threshold(i); got != th[i] {
			t.Fatalf("Threshold(%d) changed across compaction: %v -> %v", i, th[i], got)
		}
	}
	checkIndexEquivalence(t, "post-compaction", p, ix)
	// Compacting again is a no-op.
	if err := ix.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	if st := ix.Stats(); st.Compactions != 1 {
		t.Errorf("no-op Compact incremented counter: %+v", st)
	}
}

// TestIndexCandidatesBoundary is the boundary-id table test: before and
// after inserts, out-of-range ids serve empty results from Candidates,
// AppendCandidates and Threshold instead of panicking.
func TestIndexCandidatesBoundary(t *testing.T) {
	ctx := context.Background()
	rng := stats.NewRNG(5)
	ds := synthDirty(rng, 30)
	p, err := NewPipeline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ix, err := p.BuildIndex(ctx, ds)
	if err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		n := ix.NumProfiles()
		cases := []struct {
			id     int
			inside bool
		}{
			{-1, false}, {0, true}, {n - 1, true}, {n, false}, {n + 1, false}, {1 << 30, false},
		}
		for _, tc := range cases {
			got := ix.Candidates(tc.id)
			if got == nil {
				t.Errorf("%s: Candidates(%d) = nil, want non-nil slice", stage, tc.id)
			}
			if !tc.inside && len(got) != 0 {
				t.Errorf("%s: Candidates(%d) served %d candidates out of range", stage, tc.id, len(got))
			}
			buf := ix.AppendCandidates(make([]Candidate, 2, 8), tc.id)
			if len(buf) < 2 {
				t.Errorf("%s: AppendCandidates(%d) truncated its input buffer", stage, tc.id)
			}
			if !tc.inside && len(buf) != 2 {
				t.Errorf("%s: AppendCandidates(%d) appended out of range", stage, tc.id)
			}
			if !tc.inside && ix.Threshold(tc.id) != 0 {
				t.Errorf("%s: Threshold(%d) != 0 out of range", stage, tc.id)
			}
		}
	}
	check("cold")
	prof := synthProfile(rng, "bnd")
	id, err := ix.Insert(ctx, &prof)
	if err != nil {
		t.Fatal(err)
	}
	if id != ix.NumProfiles()-1 {
		t.Fatalf("Insert id = %d, want %d", id, ix.NumProfiles()-1)
	}
	check("mutable")
}

// TestInsertCancellation: a pre-cancelled context mutates nothing; a
// context cancelled mid-batch finalizes the appended prefix, leaving a
// consistent index; and cancelled inserts leak no goroutines (run with
// -race this also exercises the locking).
func TestInsertCancellation(t *testing.T) {
	rng := stats.NewRNG(21)
	ds := synthDirty(rng, 40)
	p, err := NewPipeline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ix, err := p.BuildIndex(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	before := ix.NumProfiles()
	prof := synthProfile(rng, "x")
	if _, err := ix.Insert(cancelled, &prof); err != context.Canceled {
		t.Errorf("pre-cancelled Insert: err = %v, want context.Canceled", err)
	}
	if ids, err := ix.InsertAll(cancelled, []model.Profile{prof}); err != context.Canceled || len(ids) != 0 {
		t.Errorf("pre-cancelled InsertAll: ids = %v, err = %v", ids, err)
	}
	if err := ix.Compact(cancelled); err != context.Canceled {
		t.Errorf("pre-cancelled Compact: err = %v, want context.Canceled", err)
	}
	if ix.NumProfiles() != before {
		t.Fatalf("cancelled insert mutated the index: %d -> %d profiles", before, ix.NumProfiles())
	}

	// Race a mid-batch cancellation: whatever prefix lands must leave the
	// index equivalent to a cold rebuild over its own collection.
	for _, delay := range []time.Duration{0, 50 * time.Microsecond, time.Millisecond} {
		ctx, cancelMid := context.WithCancel(context.Background())
		profs := make([]model.Profile, 400)
		for i := range profs {
			profs[i] = synthProfile(rng, fmt.Sprintf("mid%d", i))
		}
		done := make(chan struct {
			n   int
			err error
		}, 1)
		go func() {
			ids, err := ix.InsertAll(ctx, profs)
			done <- struct {
				n   int
				err error
			}{len(ids), err}
		}()
		time.Sleep(delay)
		cancelMid()
		res := <-done
		if res.err != nil && res.err != context.Canceled {
			t.Fatalf("delay %v: err = %v", delay, res.err)
		}
		if res.err == context.Canceled && res.n == len(profs) {
			t.Errorf("delay %v: cancelled batch reported all %d profiles", delay, res.n)
		}
	}
	checkIndexEquivalence(t, "post-cancellation", p, ix)

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > base {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Errorf("goroutines leaked after cancelled inserts: %d > %d", n, base)
	}
}

// TestInsertConcurrentReads serves candidate queries from other
// goroutines while inserting — the snapshot contract under -race.
func TestInsertConcurrentReads(t *testing.T) {
	ctx := context.Background()
	rng := stats.NewRNG(31)
	ds := synthDirty(rng, 60)
	p, err := NewPipeline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ix, err := p.BuildIndex(ctx, ds)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	doneReading := make(chan struct{})
	for r := 0; r < 4; r++ {
		go func(r int) {
			defer func() { doneReading <- struct{}{} }()
			var buf []Candidate
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				n := ix.NumProfiles()
				buf = ix.AppendCandidates(buf[:0], (i*7+r)%n)
				ix.Threshold(i % (n + 2))
				if i%50 == 0 {
					ix.Pairs()
				}
			}
		}(r)
	}
	for b := 0; b < 10; b++ {
		profs := make([]model.Profile, 5)
		for i := range profs {
			profs[i] = synthProfile(rng, fmt.Sprintf("r%d-%d", b, i))
		}
		if _, err := ix.InsertAll(ctx, profs); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	for r := 0; r < 4; r++ {
		<-doneReading
	}
	checkIndexEquivalence(t, "concurrent", p, ix)
}

// TestInsertNoCooccurrence: a profile sharing no tokens with anything
// stays edgeless (pending keys only); a second copy of it materializes
// fresh blocks and the pair appears — both states matching cold rebuilds.
func TestInsertNoCooccurrence(t *testing.T) {
	ctx := context.Background()
	rng := stats.NewRNG(77)
	ds := synthDirty(rng, 30)
	p, err := NewPipeline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ix, err := p.BuildIndex(ctx, ds)
	if err != nil {
		t.Fatal(err)
	}
	loner := model.Profile{ID: "loner"}
	loner.Add("name", "zzyzx qwxyz")
	id1, err := ix.Insert(ctx, &loner)
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Candidates(id1); len(got) != 0 {
		t.Fatalf("edgeless insert has %d candidates", len(got))
	}
	if st := ix.Stats(); st.PendingKeys == 0 {
		t.Error("unseen tokens should be pending keys")
	}
	checkIndexEquivalence(t, "loner", p, ix)

	twin := model.Profile{ID: "twin"}
	twin.Add("name", "zzyzx qwxyz")
	id2, err := ix.Insert(ctx, &twin)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range ix.Candidates(id2) {
		if int(c.ID) == id1 {
			found = true
		}
	}
	if !found {
		t.Error("materialized pending key did not connect the twins")
	}
	checkIndexEquivalence(t, "twins", p, ix)
}
