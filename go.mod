module blast

go 1.22
