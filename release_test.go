package blast

// Regression tests for the serving-footprint contract of a query-only
// index: the cold build releases both the per-entry co-occurrence
// statistics (ReleaseStats, long-standing) and the per-profile block
// counts (ReleaseBlockCounts — BlockCounts used to stay live behind
// ReleaseStats), while Insert transparently re-derives everything the
// mutation path needs.

import (
	"context"
	"fmt"
	"testing"

	"blast/internal/metablocking"
	"blast/internal/model"
	"blast/internal/stats"
)

// TestIndexReleasesServingOnlyArrays pins which graph arrays a cold
// query-only index retains: the serving reads (Offsets, Neighbors,
// Weights, retention mask) stay, the build-only inputs (Common, ARCS,
// EntropySum, BlockCounts) must be gone.
func TestIndexReleasesServingOnlyArrays(t *testing.T) {
	ctx := context.Background()
	for _, engine := range []metablocking.Engine{metablocking.EdgeList, metablocking.NodeCentric} {
		opt := DefaultOptions()
		opt.Engine = engine
		p, err := NewPipeline(opt)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := p.BuildIndex(ctx, synthDirty(stats.NewRNG(0xB10C), 50))
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("engine=%v", engine)
		if ix.csr.Common != nil || ix.csr.ARCS != nil || ix.csr.EntropySum != nil {
			t.Errorf("%s: co-occurrence statistics live on a query-only index", label)
		}
		if ix.csr.BlockCounts != nil {
			t.Errorf("%s: BlockCounts live on a query-only index", label)
		}
		if ix.csr.Weights == nil || ix.csr.Offsets == nil {
			t.Errorf("%s: serving arrays missing", label)
		}
		// Candidate serving needs none of the released arrays.
		if ix.AppendCandidates(nil, 0) == nil && ix.Threshold(0) != 0 {
			t.Errorf("%s: no candidates for profile 0 but a live threshold", label)
		}
	}
}

// TestInsertAfterBlockCountRelease pins the re-derivation seam: an
// index whose BlockCounts were released serves the exact same
// incremental state as one built with statistics kept end to end.
func TestInsertAfterBlockCountRelease(t *testing.T) {
	ctx := context.Background()
	rng := stats.NewRNG(0x5EED)
	ds := synthDirty(rng, 50)
	p, err := NewPipeline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	released, err := p.BuildIndex(ctx, ds)
	if err != nil {
		t.Fatal(err)
	}
	if released.csr.BlockCounts != nil {
		t.Fatal("precondition: cold index should have released BlockCounts")
	}
	sch, err := p.InduceSchema(ctx, ds)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := p.Block(ctx, ds, sch)
	if err != nil {
		t.Fatal(err)
	}
	kept, err := p.indexBlocks(ctx, blocks, true)
	if err != nil {
		t.Fatal(err)
	}
	if kept.csr.BlockCounts == nil {
		t.Fatal("precondition: keepStats index should retain BlockCounts")
	}

	profs := make([]model.Profile, 8)
	for i := range profs {
		profs[i] = synthProfile(rng, fmt.Sprintf("rel-%d", i))
	}
	for i := range profs {
		a, b := profs[i], profs[i]
		if _, err := released.Insert(ctx, &a); err != nil {
			t.Fatalf("released Insert(%d): %v", i, err)
		}
		if _, err := kept.Insert(ctx, &b); err != nil {
			t.Fatalf("kept Insert(%d): %v", i, err)
		}
	}
	assertSameIndex(t, "released vs kept", kept, released)
}
