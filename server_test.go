package blast

// Differential tests of sharded snapshot-swap serving: for any
// interleaving of inserts and swaps, a quiesced Server (all shards
// applied + compacted + swapped) must return exactly the Pairs,
// Candidates and Threshold of a cold IndexBlocks over the union
// collection, across Scheme x Pruning x shard counts. Plus the
// consistency, lifecycle, -race stress and goroutine-leak contracts.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"blast/internal/metablocking"
	"blast/internal/model"
	"blast/internal/shard"
	"blast/internal/stats"
	"blast/internal/weights"
)

// checkServerEquivalence quiesces the server and asserts the sharded
// serving contract: every observable matches a cold IndexBlocks over
// the union collection.
func checkServerEquivalence(t *testing.T, label string, p *Pipeline, srv *Server) {
	t.Helper()
	ctx := context.Background()
	if err := srv.Quiesce(ctx); err != nil {
		t.Fatalf("%s: Quiesce: %v", label, err)
	}
	cold, err := p.IndexBlocks(ctx, &Blocks{Collection: srv.Blocks().Clone(), Schema: srv.Schema()})
	if err != nil {
		t.Fatalf("%s: cold IndexBlocks: %v", label, err)
	}
	if got, want := srv.NumProfiles(), cold.NumProfiles(); got != want {
		t.Fatalf("%s: NumProfiles = %d, want %d", label, got, want)
	}
	if got, want := srv.NumProfiles(), srv.Admitted(); got != want {
		t.Fatalf("%s: quiesced server published %d of %d admitted profiles", label, got, want)
	}
	got, err := srv.Pairs(ctx)
	if err != nil {
		t.Fatalf("%s: Pairs: %v", label, err)
	}
	assertSamePairs(t, label+" pairs", cold.Pairs(), got)
	var wantC, gotC []Candidate
	for i := 0; i < cold.NumProfiles(); i++ {
		if cw, sw := cold.Threshold(i), srv.Threshold(i); cw != sw {
			t.Fatalf("%s: Threshold(%d) = %v, want %v", label, i, sw, cw)
		}
		wantC = cold.AppendCandidates(wantC[:0], i)
		gotC = srv.AppendCandidates(gotC[:0], i)
		if len(wantC) != len(gotC) {
			t.Fatalf("%s: Candidates(%d): %d, want %d", label, i, len(gotC), len(wantC))
		}
		for k := range wantC {
			if wantC[k] != gotC[k] {
				t.Fatalf("%s: Candidates(%d)[%d] = %+v, want %+v", label, i, k, gotC[k], wantC[k])
			}
		}
	}
}

// TestServerEquivalenceMatrix interleaves insert batches and quiesces
// across Scheme x Pruning, cycling the shard count through the axis, and
// checks the cold-rebuild contract after every quiesce point.
func TestServerEquivalenceMatrix(t *testing.T) {
	ctx := context.Background()
	schemes := []weights.Scheme{
		{Kind: weights.ChiSquared, Entropy: true},
		{Kind: weights.CBS},
		{Kind: weights.JS},
		{Kind: weights.ARCS, Entropy: true},
		{Kind: weights.ECBS},
	}
	prunings := []metablocking.Pruning{
		metablocking.WEP, metablocking.CEP, metablocking.WNP1,
		metablocking.WNP2, metablocking.CNP1, metablocking.CNP2,
		metablocking.BlastWNP,
	}
	shardCounts := []int{1, 2, 4}
	// Pruning workers cycle through the determinism axis alongside the
	// shard count: replicas must stay byte-identical (and equal to the
	// cold rebuild) at every parallelism level.
	workersAxis := []int{0, 1, 2, 4}
	cfg := 0
	for _, scheme := range schemes {
		for _, pruning := range prunings {
			shards := shardCounts[cfg%len(shardCounts)]
			workers := workersAxis[cfg%len(workersAxis)]
			cfg++
			label := fmt.Sprintf("%s/%v/shards=%d/workers=%d", scheme.Name(), pruning, shards, workers)
			rng := stats.NewRNG(uint64(cfg)*2654435761 + 7)
			ds := synthDirty(rng, 50)
			opt := DefaultOptions()
			opt.Scheme = scheme
			opt.Pruning = pruning
			opt.Workers = workers
			p, err := NewPipeline(opt)
			if err != nil {
				t.Fatal(err)
			}
			srv, err := p.Serve(ctx, ds, ServerOptions{Shards: shards, SwapOps: 8})
			if err != nil {
				t.Fatalf("%s: Serve: %v", label, err)
			}
			streamed := 0
			for batch := 0; batch < 2; batch++ {
				profs := make([]model.Profile, 7)
				for i := range profs {
					profs[i] = synthProfile(rng, fmt.Sprintf("s%d-%d", batch, i))
				}
				ids, err := srv.InsertAll(ctx, profs)
				if err != nil {
					t.Fatalf("%s: InsertAll: %v", label, err)
				}
				for k, id := range ids {
					if want := 50 + streamed + k; id != want {
						t.Fatalf("%s: id[%d] = %d, want %d", label, k, id, want)
					}
				}
				streamed += len(profs)
				checkServerEquivalence(t, fmt.Sprintf("%s batch %d", label, batch), p, srv)
			}
			if err := srv.Close(); err != nil {
				t.Fatalf("%s: Close: %v", label, err)
			}
		}
	}
}

// TestServerShardCountsFullCross runs the default configuration over
// every shard count 1..4 with a randomized insert/quiesce interleaving
// and checks that all of them converge to the identical cold state.
func TestServerShardCountsFullCross(t *testing.T) {
	ctx := context.Background()
	for shards := 1; shards <= 4; shards++ {
		rng := stats.NewRNG(uint64(shards) * 7919)
		ds := synthDirty(rng, 40)
		p, err := NewPipeline(DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		srv, err := p.Serve(ctx, ds, ServerOptions{Shards: shards, SwapOps: 4})
		if err != nil {
			t.Fatal(err)
		}
		streamed := 0
		for streamed < 20 {
			n := 1 + rng.Intn(5)
			profs := make([]model.Profile, n)
			for i := range profs {
				profs[i] = synthProfile(rng, fmt.Sprintf("s%d", streamed+i))
			}
			if _, err := srv.InsertAll(ctx, profs); err != nil {
				t.Fatal(err)
			}
			streamed += n
			if rng.Intn(2) == 0 {
				if err := srv.Quiesce(ctx); err != nil {
					t.Fatal(err)
				}
			}
		}
		checkServerEquivalence(t, fmt.Sprintf("shards=%d", shards), p, srv)
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestServerCleanClean streams profiles into E2 of a clean-clean server
// and checks the contract (streamed profiles must join the E2 id space).
func TestServerCleanClean(t *testing.T) {
	ctx := context.Background()
	rng := stats.NewRNG(17)
	e1 := model.NewCollection("ref")
	e2 := model.NewCollection("live")
	for i := 0; i < 30; i++ {
		e1.Append(synthProfile(rng, fmt.Sprintf("a%d", i)))
	}
	for i := 0; i < 20; i++ {
		e2.Append(synthProfile(rng, fmt.Sprintf("b%d", i)))
	}
	ds := &model.Dataset{Name: "cc", Kind: model.CleanClean, E1: e1, E2: e2, Truth: model.NewGroundTruth()}
	p, err := NewPipeline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := p.Serve(ctx, ds, ServerOptions{Shards: 3, SwapOps: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Kind() != model.CleanClean {
		t.Fatalf("Kind = %v", srv.Kind())
	}
	for i := 0; i < 10; i++ {
		prof := synthProfile(rng, fmt.Sprintf("s%d", i))
		id, err := srv.Insert(ctx, &prof)
		if err != nil {
			t.Fatal(err)
		}
		if id < 50 {
			t.Fatalf("streamed profile landed below the E2 id space: %d", id)
		}
	}
	checkServerEquivalence(t, "clean-clean", p, srv)
}

// TestServerConcurrentSnapshotSwap is the -race stress test: concurrent
// writers, point readers, pair scanners and quiescers interleave with
// per-shard compaction+swap churn (SwapOps=1), then a final quiesce must
// still match the cold rebuild, Close must stop every goroutine, and
// epochs must only ever grow.
func TestServerConcurrentSnapshotSwap(t *testing.T) {
	ctx := context.Background()
	rng := stats.NewRNG(23)
	ds := synthDirty(rng, 60)
	p, err := NewPipeline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	srv, err := p.Serve(ctx, ds, ServerOptions{Shards: 3, SwapOps: 1})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Point readers: candidates, thresholds, epochs must never tear.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var buf []Candidate
			lastEpoch := make(map[int]uint64)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				n := srv.NumProfiles()
				id := (i*13 + r) % (n + 2)
				buf = srv.AppendCandidates(buf[:0], id)
				srv.Threshold(id)
				if e := srv.Epoch(id); e < lastEpoch[shard.Owner(int32(id), 3)] {
					t.Errorf("epoch moved backwards on shard of profile %d", id)
					return
				} else {
					lastEpoch[shard.Owner(int32(id), 3)] = e
				}
			}
		}(r)
	}
	// A pair scanner exercising the fan-out merge against live swaps.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := srv.Pairs(ctx); err != nil {
				t.Errorf("Pairs: %v", err)
				return
			}
		}
	}()
	// Concurrent writers and an occasional quiescer.
	var wmu sync.Mutex
	wrng := stats.NewRNG(99)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < 8; b++ {
				wmu.Lock()
				profs := make([]model.Profile, 3)
				for i := range profs {
					profs[i] = synthProfile(wrng, fmt.Sprintf("w%d-%d-%d", w, b, i))
				}
				wmu.Unlock()
				if _, err := srv.InsertAll(ctx, profs); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if b%3 == 0 {
					if err := srv.Quiesce(ctx); err != nil {
						t.Errorf("quiesce: %v", err)
						return
					}
				}
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	checkServerEquivalence(t, "stress", p, srv)
	st := srv.Stats()
	if len(st) != 3 {
		t.Fatalf("stats for %d shards", len(st))
	}
	for _, s := range st {
		if s.Applied != 48 {
			t.Errorf("shard %d applied %d, want 48", s.ID, s.Applied)
		}
		if s.Swaps == 0 {
			t.Errorf("shard %d never swapped", s.ID)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Goroutine-leak check on Close: the shard workers must all exit.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > base {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Errorf("goroutines leaked after Server.Close: %d > %d", n, base)
	}
}

// TestServerBoundaryIDsUnderChurn hammers the id-range boundary while
// writers advance it: reads at and beyond NumProfiles race publications
// that make those very ids valid. The invariants are that a boundary
// read never panics, never returns a nil candidate slice, never serves
// a non-zero threshold for an id that is still beyond every published
// epoch, and that per-shard epochs observed through boundary ids stay
// monotone. Ids beyond the final admission ceiling must read as empty
// throughout, no matter how the race interleaves.
func TestServerBoundaryIDsUnderChurn(t *testing.T) {
	ctx := context.Background()
	rng := stats.NewRNG(71)
	ds := synthDirty(rng, 50)
	p, err := NewPipeline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	const shards = 3
	srv, err := p.Serve(ctx, ds, ServerOptions{Shards: shards, SwapOps: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The admission ceiling: base profiles plus everything the writers
	// will ever insert. Ids at or past it are invalid for the whole run.
	const writerGoroutines, writerBatches, batchLen = 2, 10, 3
	ceiling := srv.NumProfiles() + writerGoroutines*writerBatches*batchLen

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var buf []Candidate
			lastEpoch := make(map[int]uint64)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				n := srv.NumProfiles()
				// The boundary band [n-1, n+2] races the writers — any id
				// in it may become valid mid-read; the only invariants are
				// non-nil results and monotone epochs. Ids at the ceiling
				// and beyond must stay empty under every interleaving.
				for _, id := range []int{n - 1, n, n + 1, n + 2, ceiling, ceiling + 1 + i%7, 1 << 29, -1} {
					if buf = srv.AppendCandidates(buf[:0], id); buf == nil {
						t.Errorf("AppendCandidates(%d) returned nil under churn", id)
						return
					}
					if id >= ceiling || id < 0 {
						if len(buf) != 0 {
							t.Errorf("Candidates(%d) non-empty beyond the admission ceiling %d", id, ceiling)
							return
						}
						if th := srv.Threshold(id); th != 0 {
							t.Errorf("Threshold(%d) = %v beyond the admission ceiling", id, th)
							return
						}
					} else {
						srv.Threshold(id)
					}
					if id < 0 {
						if e := srv.Epoch(id); e != 0 {
							t.Errorf("Epoch(%d) = %d, want 0", id, e)
							return
						}
						continue
					}
					own := shard.Owner(int32(id), shards)
					if e := srv.Epoch(id); e < lastEpoch[own] {
						t.Errorf("epoch of shard %d moved backwards via boundary id %d", own, id)
						return
					} else {
						lastEpoch[own] = e
					}
				}
			}
		}(r)
	}
	var wmu sync.Mutex
	wrng := stats.NewRNG(173)
	for w := 0; w < writerGoroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < writerBatches; b++ {
				wmu.Lock()
				profs := make([]model.Profile, batchLen)
				for i := range profs {
					profs[i] = synthProfile(wrng, fmt.Sprintf("edge%d-%d-%d", w, b, i))
				}
				wmu.Unlock()
				if _, err := srv.InsertAll(ctx, profs); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if b%4 == 3 {
					if err := srv.Quiesce(ctx); err != nil {
						t.Errorf("quiesce: %v", err)
						return
					}
				}
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Post-churn: everything below the ceiling is now published and must
	// serve; the ceiling itself must still read as empty.
	if err := srv.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	if n := srv.NumProfiles(); n != ceiling {
		t.Fatalf("NumProfiles = %d after churn, want %d", n, ceiling)
	}
	if c := srv.Candidates(ceiling - 1); len(c) == 0 {
		t.Error("last admitted profile serves no candidates")
	}
	if c := srv.Candidates(ceiling); c == nil || len(c) != 0 {
		t.Errorf("Candidates(ceiling) = %v, want empty non-nil", c)
	}
}

// TestServerLifecycleAndBoundaries covers the non-happy paths: closed
// servers reject writes but keep serving reads, out-of-range ids serve
// empty results, cancelled contexts admit nothing, options validate, and
// reads before any publication see exactly the build state.
func TestServerLifecycleAndBoundaries(t *testing.T) {
	ctx := context.Background()
	rng := stats.NewRNG(41)
	ds := synthDirty(rng, 30)
	p, err := NewPipeline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	if _, err := p.Serve(ctx, ds, ServerOptions{Shards: -1}); err == nil {
		t.Error("negative shard count accepted")
	}
	if _, err := p.Serve(ctx, ds, ServerOptions{Shards: maxServerShards + 1}); err == nil {
		t.Error("absurd shard count accepted")
	}
	sup := DefaultOptions()
	sup.Supervised = true
	ps, err := NewPipeline(sup)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Serve(ctx, ds, ServerOptions{}); err == nil {
		t.Error("supervised serving accepted")
	}

	srv, err := p.Serve(ctx, ds, ServerOptions{Shards: 2, SwapOps: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Before any insert the epoch-0 snapshots serve the build state.
	cold, err := p.IndexBlocks(ctx, &Blocks{Collection: srv.Blocks().Clone(), Schema: srv.Schema()})
	if err != nil {
		t.Fatal(err)
	}
	got, err := srv.Pairs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	assertSamePairs(t, "epoch-0 pairs", cold.Pairs(), got)
	for _, bad := range []int{-1, srv.NumProfiles(), 1 << 29} {
		if c := srv.Candidates(bad); c == nil || len(c) != 0 {
			t.Errorf("Candidates(%d) = %v, want empty non-nil", bad, c)
		}
		if th := srv.Threshold(bad); th != 0 {
			t.Errorf("Threshold(%d) = %v", bad, th)
		}
	}

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := srv.InsertAll(cancelled, []model.Profile{synthProfile(rng, "x")}); err != context.Canceled {
		t.Errorf("cancelled InsertAll err = %v", err)
	}
	if admitted := srv.Admitted(); admitted != 30 {
		t.Errorf("cancelled insert admitted profiles: %d", admitted)
	}
	if _, err := srv.Insert(ctx, nil); err == nil {
		t.Error("nil profile accepted")
	}
	if ids, err := srv.InsertAll(ctx, nil); err != nil || ids != nil {
		t.Errorf("empty InsertAll = %v, %v", ids, err)
	}

	prof := synthProfile(rng, "y")
	if _, err := srv.Insert(ctx, &prof); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := srv.Insert(ctx, &prof); err != shard.ErrClosed {
		t.Errorf("Insert after Close err = %v", err)
	}
	if err := srv.Quiesce(ctx); err != shard.ErrClosed {
		t.Errorf("Quiesce after Close err = %v", err)
	}
	// Reads still serve after Close (the drained insert included).
	if n := srv.NumProfiles(); n < 30 {
		t.Errorf("NumProfiles after Close = %d", n)
	}
	if c := srv.Candidates(0); c == nil {
		t.Error("Candidates after Close returned nil")
	}
	if _, err := srv.Pairs(ctx); err != nil {
		t.Errorf("Pairs after Close: %v", err)
	}
}

// TestServerConsistencyPrefix pins the consistency contract: without a
// quiesce, reads observe some prefix of the insert sequence — never a
// torn state — and after the swap cadence fires they observe the full
// sequence.
func TestServerConsistencyPrefix(t *testing.T) {
	ctx := context.Background()
	rng := stats.NewRNG(53)
	ds := synthDirty(rng, 40)
	p, err := NewPipeline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := p.Serve(ctx, ds, ServerOptions{Shards: 2, SwapOps: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for i := 0; i < 10; i++ {
		prof := synthProfile(rng, fmt.Sprintf("s%d", i))
		if _, err := srv.Insert(ctx, &prof); err != nil {
			t.Fatal(err)
		}
		if n := srv.NumProfiles(); n < 40 || n > srv.Admitted() {
			t.Fatalf("published profiles %d outside [40, %d]", n, srv.Admitted())
		}
	}
	if err := srv.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	if n, a := srv.NumProfiles(), srv.Admitted(); n != a {
		t.Fatalf("quiesced server published %d of %d", n, a)
	}
}
