// Dirty deduplicates a single noisy collection (census-shaped): the
// dirty-ER mode of Section 4.5, where LMI still groups similar
// attributes of the one schema and BLAST meta-blocking runs unchanged.
//
// The comparison sweep uses the staged Pipeline API: loose schema
// induction and blocking run once, and every configuration re-runs only
// Phase 3 (meta-blocking) over the shared Blocks artifact — the
// parameter-sweep workload the monolithic Run could not express.
//
//	go run ./examples/dirty
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"blast"
	"blast/internal/datasets"
	"blast/internal/metablocking"
	"blast/internal/weights"
)

func main() {
	quick := flag.Bool("quick", false, "run at reduced scale (smoke-test guard)")
	flag.Parse()
	if err := run(*quick); err != nil {
		fmt.Fprintln(os.Stderr, "dirty:", err)
		os.Exit(1)
	}
}

func run(quick bool) error {
	scale := 0.5
	if quick {
		scale = 0.15
	}
	ds := datasets.Census(scale, 3)
	fmt.Println("workload:", datasets.Describe(ds))

	// BLAST with a recall-leaning threshold (c=4) vs the default (c=2)
	// vs traditional wnp1: the dirty-ER tradeoff of Table 7.
	configs := []struct {
		name string
		opt  blast.Options
	}{
		{"BLAST c=2 (default)", blast.DefaultOptions()},
		{"BLAST c=4 (recall)", func() blast.Options {
			o := blast.DefaultOptions()
			o.C = 4
			return o
		}()},
		{"traditional wnp1", func() blast.Options {
			o := blast.DefaultOptions()
			o.Scheme = weights.Scheme{Kind: weights.ECBS}
			o.Pruning = metablocking.WNP1
			return o
		}()},
	}

	// Phases 1-2 run once: every configuration above shares the same
	// induction and blocking settings, so the schema and the cleaned
	// blocks are computed a single time and reused across the sweep.
	ctx := context.Background()
	base, err := blast.NewPipeline(blast.DefaultOptions())
	if err != nil {
		return err
	}
	t0 := time.Now()
	schema, err := base.InduceSchema(ctx, ds)
	if err != nil {
		return err
	}
	blocks, err := base.Block(ctx, ds, schema)
	if err != nil {
		return err
	}
	fmt.Printf("shared phases 1-2 (schema + blocks): %s, reused by %d configurations\n",
		time.Since(t0).Round(time.Millisecond), len(configs))

	fmt.Printf("\n%-22s %8s %9s %8s %12s %10s\n", "method", "PC(%)", "PQ(%)", "F1", "comparisons", "phase3")
	for _, c := range configs {
		p, err := blast.NewPipeline(c.opt)
		if err != nil {
			return err
		}
		res, err := p.MetaBlock(ctx, blocks)
		if err != nil {
			return err
		}
		fmt.Printf("%-22s %8.2f %9.4f %8.3f %12d %10s\n",
			c.name, res.Quality.PC*100, res.Quality.PQ*100, res.Quality.F1,
			len(res.Pairs), res.MetaTime.Round(time.Millisecond))
	}

	fmt.Println("\nhigher c keeps more comparisons: more recall, less precision —")
	fmt.Println("the knob of Section 3.3.2 for precision/recall trade-offs,")
	fmt.Println("swept here without recomputing induction or blocking.")
	return nil
}
