package main

import "testing"

// TestRunSmoke exercises the example through its -quick guard, keeping
// the workload small enough for the test suite.
func TestRunSmoke(t *testing.T) {
	if err := run(true); err != nil {
		t.Fatal(err)
	}
}
