// Bibliographic runs the paper's headline comparison on a DBLP-ACM-shaped
// workload (the ar1 benchmark): schema-agnostic Token Blocking, classic
// meta-blocking and BLAST, end-to-end through a Jaccard matcher — showing
// the two-orders-of-magnitude PQ gain at near-identical PC.
//
//	go run ./examples/bibliographic
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"blast"
	"blast/internal/datasets"
	"blast/internal/match"
	"blast/internal/metablocking"
	"blast/internal/text"
	"blast/internal/weights"
)

func main() {
	quick := flag.Bool("quick", false, "run at reduced scale (smoke-test guard)")
	flag.Parse()
	if err := run(*quick); err != nil {
		fmt.Fprintln(os.Stderr, "bibliographic:", err)
		os.Exit(1)
	}
}

func run(quick bool) error {
	scale := 0.25 // quarter-scale DBLP-ACM shape
	if quick {
		scale = 0.08
	}
	ds := datasets.AR1(scale, 7)
	fmt.Println("workload:", datasets.Describe(ds))
	fmt.Printf("naive comparisons: %d\n\n", ds.TotalComparisons())

	type row struct {
		name string
		opt  blast.Options
	}
	rows := []row{
		{"token blocking only", func() blast.Options {
			o := blast.DefaultOptions()
			o.Induction = blast.NoInduction
			o.Pruning = metablocking.CEP
			o.K = 1 << 30 // effectively "keep the whole graph"
			o.Scheme = weights.Scheme{Kind: weights.CBS}
			return o
		}()},
		{"traditional wnp2 (JS)", func() blast.Options {
			o := blast.DefaultOptions()
			o.Induction = blast.NoInduction
			o.Scheme = weights.Scheme{Kind: weights.JS}
			o.Pruning = metablocking.WNP2
			return o
		}()},
		{"supervised MB (SVM)", func() blast.Options {
			o := blast.DefaultOptions()
			o.Supervised = true
			return o
		}()},
		{"BLAST", blast.DefaultOptions()},
	}

	// The staged API shares phase artifacts across comparison rows: the
	// two schema-agnostic rows reuse one Token Blocking Blocks artifact,
	// the two LMI rows reuse one induced schema and its blocks. Only
	// Phase 3 differs per row.
	ctx := context.Background()
	blocksCache := map[blast.Induction]*blast.Blocks{}
	var res *blast.Result

	fmt.Printf("%-22s %8s %9s %8s %12s %10s\n", "method", "PC(%)", "PQ(%)", "F1", "comparisons", "overhead")
	for _, r := range rows {
		p, err := blast.NewPipeline(r.opt)
		if err != nil {
			return err
		}
		blocks := blocksCache[r.opt.Induction]
		if blocks == nil {
			schema, err := p.InduceSchema(ctx, ds)
			if err != nil {
				return err
			}
			if blocks, err = p.Block(ctx, ds, schema); err != nil {
				return err
			}
			blocksCache[r.opt.Induction] = blocks
		}
		rowRes, err := p.MetaBlock(ctx, blocks)
		if err != nil {
			return err
		}
		fmt.Printf("%-22s %8.2f %9.4f %8.3f %12d %10s\n",
			r.name, rowRes.Quality.PC*100, rowRes.Quality.PQ*100, rowRes.Quality.F1,
			len(rowRes.Pairs), rowRes.Overhead().Round(time.Millisecond))
		if r.name == "BLAST" {
			res = rowRes // reused below: no extra full run needed
		}
	}
	// Close the loop: resolve BLAST's comparisons with a Jaccard matcher.
	matcher := match.NewJaccard(ds, text.NewTokenizer())
	t0 := time.Now()
	matched := match.Resolve(matcher, res.Pairs, 0.35)
	precision, recall, f1 := match.Evaluate(matched.Matches, ds.Truth)
	fmt.Printf("\nend-to-end ER over BLAST blocks: %d comparisons in %s\n",
		matched.Compared, time.Since(t0).Round(time.Millisecond))
	fmt.Printf("matcher precision=%.3f recall=%.3f F1=%.3f\n", precision, recall, f1)
	return nil
}
