// Serving demonstrates the sharded snapshot-swap Server: a product
// catalog is frozen into two shard replicas, new products stream in
// while candidate queries are served wait-free from published
// snapshots, and a quiesce pins the server to exactly the state a cold
// rebuild over everything would produce.
//
//	go run ./examples/serving
package main

import (
	"context"
	"fmt"
	"os"

	"blast"
	"blast/internal/model"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serving:", err)
		os.Exit(1)
	}
}

// product builds a small catalog profile.
func product(id, name, specs, brand string) model.Profile {
	p := model.Profile{ID: id}
	p.Add("name", name)
	p.Add("specs", specs)
	p.Add("brand", brand)
	return p
}

func run() error {
	ctx := context.Background()

	// The standing catalog to deduplicate against.
	catalog := model.NewCollection("catalog")
	for _, p := range []model.Profile{
		product("c1", "Lumix DMC TZ5 silver", "compact digital camera 9 megapixel 10x zoom", "Panasonic"),
		product("c2", "EOS 450D body", "digital slr camera 12 megapixel live view", "Canon"),
		product("c3", "Walkman NWZ A818", "portable mp3 player 8gb bluetooth black", "Sony"),
		product("c4", "ThinkPad X200", "12 inch ultraportable notebook core duo", "Lenovo"),
		product("c5", "nuvi 260W", "gps navigator widescreen maps", "Garmin"),
		product("c6", "Cyber-shot DSC W120", "compact camera 7 megapixel 4x zoom", "Sony"),
	} {
		catalog.Append(p)
	}
	ds := &model.Dataset{Name: "serving", Kind: model.Dirty, E1: catalog, Truth: model.NewGroundTruth()}

	// Two shard workers: each owns a writable Index replica; reads are
	// hash-routed to the owner's published snapshot. SwapOps: 2 keeps
	// the walkthrough's snapshots visibly fresh; production cadences are
	// hundreds of inserts per swap.
	p, err := blast.NewPipeline(blast.DefaultOptions())
	if err != nil {
		return err
	}
	srv, err := p.Serve(ctx, ds, blast.ServerOptions{Shards: 2, SwapOps: 2})
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("server: %d shards over %d catalog products\n", srv.NumShards(), srv.NumProfiles())

	// New products arrive while the catalog serves queries. Ids are
	// admitted immediately; each shard folds the inserts into its
	// replica and publishes a fresh snapshot at the swap cadence.
	arrivals := []model.Profile{
		product("n1", "Panasonic Lumix TZ5-S", "9 megapixel compact camera 10x zoom silver", "Panasonic"),
		product("n2", "Sony NWZ-A818 8GB Walkman", "mp3 player bluetooth 8gb black", "Sony"),
		product("n3", "Canon EOS450D SLR", "12 megapixel digital slr live view body", "Canon"),
	}
	ids, err := srv.InsertAll(ctx, arrivals)
	if err != nil {
		return err
	}
	fmt.Printf("admitted %d arrivals as ids %v\n", len(ids), ids)

	// Quiesce: every shard applies the stream, compacts its overlay and
	// swaps the result in. From here the server answers exactly like a
	// cold rebuild over catalog+arrivals.
	if err := srv.Quiesce(ctx); err != nil {
		return err
	}
	for i, id := range ids {
		fmt.Printf("%s (id %d, shard epoch %d):\n", arrivals[i].ID, id, srv.Epoch(id))
		for _, c := range srv.Candidates(id) {
			fmt.Printf("  candidate id %d  weight %.3f  (theta_i %.3f)\n", c.ID, c.Weight, srv.Threshold(int(c.ID)))
		}
	}

	pairs, err := srv.Pairs(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("retained comparisons across the union catalog: %d\n", len(pairs))
	for _, st := range srv.Stats() {
		fmt.Printf("shard %d: epoch %d, applied %d, swaps %d\n", st.ID, st.Epoch, st.Applied, st.Swaps)
	}
	return nil
}
