package main

import "testing"

// TestRunSmoke compiles and runs the example end to end (hand-written
// catalog, fast by construction).
func TestRunSmoke(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
