package main

import "testing"

// TestRunSmoke compiles and runs the example end to end (it walks the
// paper's four-profile running example, so it is fast by construction).
func TestRunSmoke(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
