// Quickstart walks through the paper's running example (Figures 1-3):
// four person profiles from heterogeneous sources, Token Blocking, the
// blocking graph, loose schema extraction, and BLAST's weighting and
// pruning — printing each intermediate so the output can be read next to
// the paper.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"
	"sort"

	"blast"
	"blast/internal/blocking"
	"blast/internal/datasets"
	"blast/internal/graph"
	"blast/internal/metablocking"
	"blast/internal/weights"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	ds := datasets.PaperExample()

	fmt.Println("=== Entity profiles (Figure 1a) ===")
	for i := 0; i < ds.NumProfiles(); i++ {
		fmt.Printf("  %s\n", ds.Profile(i))
	}

	// --- Figure 1b: Token Blocking ---------------------------------
	blocks := blocking.TokenBlocking(ds)
	fmt.Printf("\n=== Token Blocking (Figure 1b): %d blocks ===\n", blocks.Len())
	printBlocks(blocks)

	// --- Figure 1c: the blocking graph with CBS weights ------------
	g := graph.Build(blocks)
	weights.Scheme{Kind: weights.CBS}.Apply(g)
	fmt.Println("\n=== Blocking graph, co-occurrence weights (Figure 1c) ===")
	printGraph(g)

	// --- Figure 1d: traditional WNP keeps two superfluous edges ----
	wnp := metablocking.RunOnGraph(g, metablocking.Config{
		Scheme: weights.Scheme{Kind: weights.CBS}, Pruning: metablocking.WNP1,
	})
	fmt.Println("\n=== Traditional WNP pruning (Figure 1d) ===")
	for _, p := range wnp.Pairs {
		marker := "superfluous!"
		if ds.Truth.Contains(int(p.U), int(p.V)) {
			marker = "true match"
		}
		fmt.Printf("  retained %s-%s  (%s)\n", ds.Profile(int(p.U)).ID, ds.Profile(int(p.V)).ID, marker)
	}

	// --- Figures 2-3: the full BLAST pipeline, phase by phase ------
	// The staged API makes each paper phase a call returning a reusable
	// artifact: the schema of Figure 2, the disambiguated blocks of
	// Figure 2a, the pruned result of Figure 3c.
	opt := blast.DefaultOptions()
	opt.PurgeRatio = 1.0  // the 4-profile example needs no purging
	opt.FilterRatio = 1.0 // ... nor filtering
	pipe, err := blast.NewPipeline(opt)
	if err != nil {
		return err
	}
	ctx := context.Background()
	schema, err := pipe.InduceSchema(ctx, ds)
	if err != nil {
		return err
	}
	disamb, err := pipe.Block(ctx, ds, schema)
	if err != nil {
		return err
	}
	res, err := pipe.MetaBlock(ctx, disamb)
	if err != nil {
		return err
	}

	fmt.Println("\n=== Loose schema information (Figure 2/3, via real LMI) ===")
	for _, c := range res.Partitioning.Clusters {
		if len(c.Members) == 0 {
			continue
		}
		var names []string
		for _, m := range c.Members {
			names = append(names, m.Name)
		}
		sort.Strings(names)
		kind := fmt.Sprintf("cluster %d", c.ID)
		if c.ID == 0 {
			kind = "glue cluster"
		}
		fmt.Printf("  %-10s H̄=%.3f  %v\n", kind, c.Entropy, names)
	}

	fmt.Printf("\n=== Disambiguated blocks (Figure 2a): %d blocks ===\n", res.Blocks.Len())
	printBlocks(res.Blocks)

	fmt.Println("\n=== BLAST result (Figure 3c) ===")
	for _, p := range res.Pairs {
		fmt.Printf("  retained %s-%s\n", ds.Profile(int(p.U)).ID, ds.Profile(int(p.V)).ID)
	}
	fmt.Printf("\nPC=%.0f%% PQ=%.0f%% — both matches kept, every superfluous comparison pruned.\n",
		res.Quality.PC*100, res.Quality.PQ*100)
	return nil
}

func printBlocks(c *blocking.Collection) {
	for i := range c.Blocks {
		b := &c.Blocks[i]
		var members []string
		for _, p := range b.P1 {
			members = append(members, fmt.Sprintf("p%d", p+1))
		}
		fmt.Printf("  %-12q -> %v\n", b.Key, members)
	}
}

func printGraph(g *graph.Graph) {
	for i := range g.Edges {
		e := &g.Edges[i]
		fmt.Printf("  p%d - p%d  weight %.0f\n", e.U+1, e.V+1, e.Weight)
	}
}
