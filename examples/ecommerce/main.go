// Ecommerce demonstrates the public API on hand-written data: two tiny
// product catalogs with different schemas, no schema alignment, built
// directly with model.Collection — the way a downstream user would feed
// their own data to BLAST. It ends on the online serving path: the same
// pipeline frozen into an Index answering per-product candidate queries.
//
//	go run ./examples/ecommerce
package main

import (
	"context"
	"fmt"
	"os"

	"blast"
	"blast/internal/model"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ecommerce:", err)
		os.Exit(1)
	}
}

func run() error {
	// Catalog A: a retailer with name/description/maker/price.
	a := model.NewCollection("shopA")
	addA := func(id, name, descr, maker, price string) {
		p := model.Profile{ID: id}
		p.Add("name", name)
		p.Add("description", descr)
		p.Add("maker", maker)
		p.Add("price", price)
		a.Append(p)
	}
	addA("a1", "Lumix DMC TZ5 silver", "compact digital camera 9 megapixel 10x zoom leica lens", "Panasonic", "299")
	addA("a2", "EOS 450D body", "digital slr camera 12 megapixel live view kit", "Canon", "649")
	addA("a3", "Walkman NWZ A818", "portable mp3 player 8gb bluetooth black", "Sony", "189")
	addA("a4", "ThinkPad X200 laptop", "12 inch ultraportable notebook core duo 2gb", "Lenovo", "1099")

	// Catalog B: a marketplace with title/specs/brand only.
	b := model.NewCollection("shopB")
	addB := func(id, title, specs, brand string) {
		p := model.Profile{ID: id}
		p.Add("title", title)
		p.Add("specs", specs)
		p.Add("brand", brand)
		b.Append(p)
	}
	addB("b1", "Panasonic Lumix TZ5-S", "9MP compact camera, 10x optical zoom, leica lens, silver", "Panasonic")
	addB("b2", "Canon EOS450D SLR", "12MP digital slr, live view, body only", "Canon")
	addB("b3", "Sony NWZ-A818 8GB Walkman", "mp3 player bluetooth, 8 gb, black", "Sony")
	addB("b4", "Garmin nuvi 260W GPS", "gps navigator 4.3 inch widescreen maps", "Garmin")

	// Known duplicates for quality reporting (global ids: B starts at 4).
	truth := model.NewGroundTruth()
	truth.Add(0, 4) // a1 ~ b1
	truth.Add(1, 5) // a2 ~ b2
	truth.Add(2, 6) // a3 ~ b3

	// The staged pipeline keeps the phase artifacts, so the batch result
	// and the serving index below share one schema and one block build.
	opt := blast.DefaultOptions()
	opt.FilterRatio = 1.0 // tiny dataset: keep all block memberships
	p, err := blast.NewPipeline(opt)
	if err != nil {
		return err
	}
	ds := &model.Dataset{Name: "catalogs", Kind: model.CleanClean, E1: a, E2: b, Truth: truth}
	ctx := context.Background()
	schema, err := p.InduceSchema(ctx, ds)
	if err != nil {
		return err
	}
	blocks, err := p.Block(ctx, ds, schema)
	if err != nil {
		return err
	}
	res, err := p.MetaBlock(ctx, blocks)
	if err != nil {
		return err
	}

	fmt.Println("attribute clusters discovered without any schema alignment:")
	for _, c := range res.Partitioning.Clusters {
		if len(c.Members) == 0 || c.ID == 0 {
			continue
		}
		fmt.Printf("  cluster %d (H̄=%.2f):", c.ID, c.Entropy)
		for _, m := range c.Members {
			fmt.Printf(" %s/%s", []string{"A", "B"}[m.Source], m.Name)
		}
		fmt.Println()
	}

	fmt.Printf("\nretained comparisons (%d of %d possible):\n", len(res.Pairs), a.Len()*b.Len())
	for _, p := range res.Pairs {
		u, v := int(p.U), int(p.V)
		mark := " "
		if truth.Contains(u, v) {
			mark = "*"
		}
		fmt.Printf("  %s %s <-> %s\n", mark, idOf(a, b, u), idOf(a, b, v))
	}
	fmt.Printf("\nPC=%.0f%% PQ=%.0f%% (* = true duplicate)\n", res.Quality.PC*100, res.Quality.PQ*100)

	// The online path: freeze the already-computed Blocks artifact into a
	// candidate-serving Index — only the graph/weight/prune step runs —
	// and answer per-profile queries: "which catalog-B offers should
	// this catalog-A product be compared against?"
	ix, err := p.IndexBlocks(ctx, blocks)
	if err != nil {
		return err
	}
	fmt.Printf("\nonline serving: index over %d profiles, %d graph edges, %d retained\n",
		ix.NumProfiles(), ix.NumEdges(), ix.NumRetained())
	for _, global := range []int{0, 1, 3} {
		cands := ix.Candidates(global)
		fmt.Printf("  candidates of %s (theta=%.2f):", idOf(a, b, global), ix.Threshold(global))
		if len(cands) == 0 {
			fmt.Print(" none")
		}
		for _, c := range cands {
			fmt.Printf(" %s(w=%.1f)", idOf(a, b, int(c.ID)), c.Weight)
		}
		fmt.Println()
	}
	return nil
}

func idOf(a, b *model.Collection, global int) string {
	if global < a.Len() {
		return a.Profiles[global].ID
	}
	return b.Profiles[global-a.Len()].ID
}
