// Lshscale demonstrates the LSH-based attribute-match induction step on
// a DBpedia-shaped workload with hundreds of sparse attributes: the
// quadratic exhaustive attribute comparison versus banded MinHash
// candidates (Section 3.1.2, Tables 5-6).
//
//	go run ./examples/lshscale
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"blast"
	"blast/internal/attr"
	"blast/internal/datasets"
	"blast/internal/lsh"
	"blast/internal/text"
)

func main() {
	quick := flag.Bool("quick", false, "run at reduced scale (smoke-test guard)")
	flag.Parse()
	if err := run(*quick); err != nil {
		fmt.Fprintln(os.Stderr, "lshscale:", err)
		os.Exit(1)
	}
}

func run(quick bool) error {
	scale := 0.4
	if quick {
		scale = 0.05
	}
	ds := datasets.DBP(scale, 5)
	stats := datasets.Describe(ds)
	fmt.Println("workload:", stats)
	fmt.Printf("attribute pairs to compare exhaustively: %d\n\n", stats.A1*stats.A2)

	profiles := attr.ExtractProfiles(ds, text.NewTokenizer())

	t0 := time.Now()
	exact := attr.LMI(profiles, ds.Kind, attr.DefaultConfig())
	exactTime := time.Since(t0)

	cfg := attr.DefaultConfig()
	cfg.LSH = &attr.LSHConfig{Rows: 5, Bands: 30, Seed: 11}
	t1 := time.Now()
	approx := attr.LMI(profiles, ds.Kind, cfg)
	lshTime := time.Since(t1)

	fmt.Printf("exhaustive LMI: %8s  -> %d clusters\n", exactTime.Round(time.Millisecond), exact.NumClusters())
	fmt.Printf("LSH LMI:        %8s  -> %d clusters (threshold ~%.2f)\n",
		lshTime.Round(time.Millisecond), approx.NumClusters(), lsh.Threshold(5, 30))
	if lshTime > 0 {
		fmt.Printf("speedup: %.1fx\n\n", float64(exactTime)/float64(lshTime))
	}

	// And the quality consequence: full BLAST with each, run through the
	// staged API so the induction cost is the Schema artifact's own
	// duration and the rest of the pipeline is identical by construction.
	ctx := context.Background()
	for _, mode := range []struct {
		name string
		lsh  *blast.LSHOptions
	}{
		{"BLAST (exhaustive LMI)", nil},
		{"BLAST (LSH LMI)", &blast.LSHOptions{Rows: 5, Bands: 30, Seed: 11}},
	} {
		opt := blast.DefaultOptions()
		opt.LSH = mode.lsh
		p, err := blast.NewPipeline(opt)
		if err != nil {
			return err
		}
		schema, err := p.InduceSchema(ctx, ds)
		if err != nil {
			return err
		}
		blocks, err := p.Block(ctx, ds, schema)
		if err != nil {
			return err
		}
		res, err := p.MetaBlock(ctx, blocks)
		if err != nil {
			return err
		}
		fmt.Printf("%-24s PC=%.2f%% PQ=%.3f%% induction=%s total=%s\n",
			mode.name, res.Quality.PC*100, res.Quality.PQ*100,
			schema.Duration.Round(time.Millisecond), res.Overhead().Round(time.Millisecond))
	}
	fmt.Println("\nsame blocking quality, a fraction of the induction time — the")
	fmt.Println("Table 5/6 result that makes loose schema extraction web-scale.")
	return nil
}
