package blast_test

import (
	"context"
	"fmt"

	"blast"
	"blast/internal/datasets"
	"blast/internal/model"
)

// ExampleRun demonstrates the full pipeline on the paper's Figure 1
// example: four heterogeneous person profiles, two true matches.
func ExampleRun() {
	ds := datasets.PaperExample()
	opt := blast.DefaultOptions()
	opt.PurgeRatio = 1.0  // tiny example: skip purging
	opt.FilterRatio = 1.0 // ... and filtering
	res, err := blast.Run(ds, opt)
	if err != nil {
		panic(err)
	}
	for _, p := range res.Pairs {
		fmt.Printf("%s matches %s\n", ds.Profile(int(p.U)).ID, ds.Profile(int(p.V)).ID)
	}
	fmt.Printf("PC=%.0f%% PQ=%.0f%%\n", res.Quality.PC*100, res.Quality.PQ*100)
	// Output:
	// p1 matches p3
	// p2 matches p4
	// PC=100% PQ=100%
}

// ExampleCleanClean shows clean-clean ER over two hand-built collections
// with different schemas and no alignment.
func ExampleCleanClean() {
	a := model.NewCollection("A")
	p1 := model.Profile{ID: "a1"}
	p1.Add("name", "Ellen Smith")
	p1.Add("city", "New York")
	a.Append(p1)
	p2 := model.Profile{ID: "a2"}
	p2.Add("name", "John Abram")
	p2.Add("city", "Boston")
	a.Append(p2)

	b := model.NewCollection("B")
	q1 := model.Profile{ID: "b1"}
	q1.Add("full name", "Ellen Smith")
	q1.Add("location", "New York")
	b.Append(q1)
	q2 := model.Profile{ID: "b2"}
	q2.Add("full name", "Mary Jones")
	q2.Add("location", "Chicago")
	b.Append(q2)

	opt := blast.DefaultOptions()
	opt.FilterRatio = 1.0
	res, err := blast.CleanClean(a, b, nil, opt)
	if err != nil {
		panic(err)
	}
	for _, pair := range res.Pairs {
		fmt.Printf("compare a%d with b%d\n", pair.U+1, pair.V-1)
	}
	// Output:
	// compare a1 with b1
}

// ExampleIndex_Candidates serves per-profile candidate queries from a
// frozen Index: the online counterpart of the batch pipeline, answering
// "who should this profile be compared against?" in O(degree) per query.
func ExampleIndex_Candidates() {
	ds := datasets.PaperExample()
	opt := blast.DefaultOptions()
	opt.PurgeRatio = 1.0  // tiny example: skip purging
	opt.FilterRatio = 1.0 // ... and filtering
	p, err := blast.NewPipeline(opt)
	if err != nil {
		panic(err)
	}
	ix, err := p.BuildIndex(context.Background(), ds)
	if err != nil {
		panic(err)
	}
	for i := 0; i < ix.NumProfiles(); i++ {
		for _, c := range ix.Candidates(i) {
			fmt.Printf("%s -> %s\n", ds.Profile(i).ID, ds.Profile(int(c.ID)).ID)
		}
	}
	// Output:
	// p1 -> p3
	// p2 -> p4
	// p3 -> p1
	// p4 -> p2
}

// ExamplePipeline_MetaBlock sweeps BLAST's c threshold over one shared
// Blocks artifact: Phases 1-2 run once, every configuration re-runs
// only the meta-blocking phase.
func ExamplePipeline_MetaBlock() {
	ds := datasets.PaperExample()
	opt := blast.DefaultOptions()
	opt.PurgeRatio = 1.0
	opt.FilterRatio = 1.0
	base, err := blast.NewPipeline(opt)
	if err != nil {
		panic(err)
	}
	ctx := context.Background()
	schema, err := base.InduceSchema(ctx, ds)
	if err != nil {
		panic(err)
	}
	blocks, err := base.Block(ctx, ds, schema)
	if err != nil {
		panic(err)
	}
	for _, c := range []float64{0.5, 2} {
		sweep := opt
		sweep.C = c
		p, err := blast.NewPipeline(sweep)
		if err != nil {
			panic(err)
		}
		res, err := p.MetaBlock(ctx, blocks)
		if err != nil {
			panic(err)
		}
		fmt.Printf("c=%v retains %d comparisons\n", c, len(res.Pairs))
	}
	// Output:
	// c=0.5 retains 0 comparisons
	// c=2 retains 2 comparisons
}

// ExampleDirty deduplicates a single collection.
func ExampleDirty() {
	e := model.NewCollection("contacts")
	for i, v := range []string{
		"Ellen Smith 10 Main street",
		"Smith, Ellen — Main st. 10",
		"Giovanni Simonini via Vivarelli 10",
	} {
		p := model.Profile{ID: fmt.Sprintf("c%d", i+1)}
		p.Add("contact", v)
		e.Append(p)
	}
	opt := blast.DefaultOptions()
	opt.PurgeRatio = 1.0
	opt.FilterRatio = 1.0
	res, err := blast.Dirty(e, nil, opt)
	if err != nil {
		panic(err)
	}
	for _, pair := range res.Pairs {
		fmt.Printf("compare c%d with c%d\n", pair.U+1, pair.V+1)
	}
	// Output:
	// compare c1 with c2
}
