// Package blasthttp is the network front end of the serving tier: a
// zero-dependency net/http handler over blast.Server exposing the
// candidate-serving API as JSON endpoints.
//
//	POST /v1/insert      admit profiles; ids returned are a durability receipt
//	GET  /v1/candidates  ?profile=N — retained candidates of one profile
//	GET  /v1/threshold   ?profile=N — theta_i of one profile
//	GET  /v1/pairs       every retained comparison, canonical order
//	POST /v1/quiesce     drive all shards to the strongest consistent state
//	GET  /healthz        liveness (503 once the serving machinery failed)
//	GET  /statsz         shard + write-path statistics
//
// Write path. Concurrent insert requests are coalesced: a committer
// goroutine gathers everything queued within a short window and admits
// it as one Server.InsertAll batch, so N small concurrent PUTs cost one
// globally sequenced admission instead of N. The response ids carry the
// same durability-receipt contract as the in-process call: on a durable
// server they are returned only after the batch reached every shard's
// write-ahead log. Admission is explicitly bounded — at most
// MaxPendingRequests requests and MaxPendingBytes request bytes may be
// in flight at once; beyond that the server answers 429 Too Many
// Requests with a Retry-After header instead of queueing unboundedly,
// so memory under saturation is capped by configuration, not by offered
// load.
//
// Read path. Candidate and threshold reads are wait-free (they serve
// from the owning shard's published snapshot) and honor the in-process
// boundary semantics: out-of-range ids serve empty results, never
// errors. Every response body is produced by the exported *Body
// helpers, so a byte-compare of an HTTP response against the helper
// applied to the in-process Server is exact — the differential check
// blastbench -exp load gates in CI.
package blasthttp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"blast"
	"blast/internal/model"
	"blast/internal/shard"
)

// Options tunes the handler. The zero value is valid: every knob
// resolves to the documented default.
type Options struct {
	// MaxBatch bounds the profiles coalesced into one InsertAll call.
	// 0 selects 512.
	MaxBatch int
	// MaxPendingRequests bounds the insert requests in flight (queued
	// or committing); requests beyond it are shed with 429. 0 selects
	// 256.
	MaxPendingRequests int
	// MaxPendingBytes bounds the total encoded request bytes in flight;
	// requests beyond it are shed with 429. 0 selects 16 MiB.
	MaxPendingBytes int64
	// FlushInterval is the coalescing window: how long the committer
	// lingers after the first queued request so concurrent inserts pile
	// into the same batch. 0 selects 500µs; negative commits
	// immediately (no coalescing window).
	FlushInterval time.Duration
	// MaxBodyBytes bounds one insert request body (413 beyond it).
	// 0 selects 8 MiB.
	MaxBodyBytes int64
	// RetryAfter is the client backoff hint sent with 429 responses.
	// 0 selects 1 second (the Retry-After header has whole-second
	// granularity).
	RetryAfter time.Duration
}

func (o Options) maxBatch() int {
	if o.MaxBatch <= 0 {
		return 512
	}
	return o.MaxBatch
}

func (o Options) maxPendingRequests() int {
	if o.MaxPendingRequests <= 0 {
		return 256
	}
	return o.MaxPendingRequests
}

func (o Options) maxPendingBytes() int64 {
	if o.MaxPendingBytes <= 0 {
		return 16 << 20
	}
	return o.MaxPendingBytes
}

func (o Options) flushDelay() time.Duration {
	switch {
	case o.FlushInterval == 0:
		return 500 * time.Microsecond
	case o.FlushInterval < 0:
		return 0
	default:
		return o.FlushInterval
	}
}

func (o Options) maxBodyBytes() int64 {
	if o.MaxBodyBytes <= 0 {
		return 8 << 20
	}
	return o.MaxBodyBytes
}

func (o Options) retryAfterSeconds() int {
	if o.RetryAfter <= 0 {
		return 1
	}
	s := int((o.RetryAfter + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// Handler serves the blasthttp API over one blast.Server. Construct
// with NewHandler; always Close it when done (Close stops the write
// committer; the underlying Server is NOT closed — its lifecycle
// belongs to the caller).
type Handler struct {
	srv *blast.Server
	opt Options
	bat *batcher
	mux *http.ServeMux
}

// NewHandler starts the write committer and returns the handler.
func NewHandler(srv *blast.Server, opt Options) *Handler {
	h := &Handler{srv: srv, opt: opt, bat: newBatcher(srv, opt)}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/insert", h.handleInsert)
	mux.HandleFunc("GET /v1/candidates", h.handleCandidates)
	mux.HandleFunc("GET /v1/threshold", h.handleThreshold)
	mux.HandleFunc("GET /v1/pairs", h.handlePairs)
	mux.HandleFunc("POST /v1/quiesce", h.handleQuiesce)
	mux.HandleFunc("GET /healthz", h.handleHealthz)
	mux.HandleFunc("GET /statsz", h.handleStatsz)
	h.mux = mux
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// Stats snapshots the write-path counters.
func (h *Handler) Stats() BatcherStats { return h.bat.stats() }

// Drain gracefully stops the write path: new inserts are refused with
// 503, every in-flight insert commits, and the server is quiesced so
// all admitted profiles are applied and published on every shard. ctx
// bounds the wait. Reads keep working during and after a drain. Part of
// the SIGTERM sequence of cmd/blastserve (drain, final snapshot, exit).
func (h *Handler) Drain(ctx context.Context) error {
	if err := h.bat.drain(ctx); err != nil {
		return err
	}
	return h.srv.Quiesce(ctx)
}

// Close stops the write committer after it drains its queue. It does
// not close the underlying Server. Idempotent.
func (h *Handler) Close() error {
	h.bat.close()
	return nil
}

// ---- JSON wire types ----
//
// The types (and the *Body helpers below) are exported so clients and
// the load-experiment differential share the exact encoding the handler
// emits.

// PairJSON is one name-value pair of a profile on the wire.
type PairJSON struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// ProfileJSON is one entity profile on the wire.
type ProfileJSON struct {
	ID    string     `json:"id"`
	Pairs []PairJSON `json:"pairs"`
}

// InsertRequest is the body of POST /v1/insert.
type InsertRequest struct {
	Profiles []ProfileJSON `json:"profiles"`
}

// InsertResponse is the body of a successful insert: the assigned
// global ids, in request order. On a durable server the ids are a
// durability receipt — the batch reached every write-ahead log before
// they were assigned.
type InsertResponse struct {
	IDs []int `json:"ids"`
}

// CandidateJSON is one retained candidate comparison on the wire.
type CandidateJSON struct {
	ID     int32   `json:"id"`
	Weight float64 `json:"weight"`
}

// CandidatesResponse is the body of GET /v1/candidates.
type CandidatesResponse struct {
	Profile int             `json:"profile"`
	Epoch   uint64          `json:"epoch"`
	Count   int             `json:"count"`
	Results []CandidateJSON `json:"candidates"`
}

// ThresholdResponse is the body of GET /v1/threshold.
type ThresholdResponse struct {
	Profile   int     `json:"profile"`
	Epoch     uint64  `json:"epoch"`
	Threshold float64 `json:"threshold"`
}

// PairsResponse is the body of GET /v1/pairs.
type PairsResponse struct {
	Count int        `json:"count"`
	Pairs [][2]int32 `json:"pairs"`
}

// QuiesceResponse is the body of POST /v1/quiesce.
type QuiesceResponse struct {
	Admitted  int `json:"admitted"`
	Published int `json:"published"`
}

// StatszResponse is the body of GET /statsz. Topology names the shard
// topology and Storage the graph storage mode builds run under; the
// per-shard entries carry the owned-rows and resident-bytes counters
// that make the partitioned memory claim observable per process.
type StatszResponse struct {
	Topology  string        `json:"topology"`
	Storage   string        `json:"storage"`
	Admitted  int           `json:"admitted"`
	Published int           `json:"published"`
	Shards    []shard.Stats `json:"shards"`
	Writes    BatcherStats  `json:"writes"`
}

// errorBody is the JSON error envelope of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

// ToProfile converts a wire profile to the model type.
func (p ProfileJSON) ToProfile() model.Profile {
	out := model.Profile{ID: p.ID}
	if len(p.Pairs) > 0 {
		out.Pairs = make([]model.Pair, len(p.Pairs))
		for i, pr := range p.Pairs {
			out.Pairs[i] = model.Pair{Name: pr.Name, Value: pr.Value}
		}
	}
	return out
}

// FromProfile converts a model profile to the wire type.
func FromProfile(p model.Profile) ProfileJSON {
	out := ProfileJSON{ID: p.ID, Pairs: make([]PairJSON, len(p.Pairs))}
	for i, pr := range p.Pairs {
		out.Pairs[i] = PairJSON{Name: pr.Name, Value: pr.Value}
	}
	return out
}

// ---- canonical response encodings ----

// CandidatesBody renders the canonical /v1/candidates response body for
// one profile of an in-process Server — the oracle half of the load
// experiment's HTTP-vs-in-process differential. The body is read
// through an epoch-consistent Server.View, so the reported epoch and
// the candidate list always observe one publication, even while
// snapshots swap underneath.
func CandidatesBody(ctx context.Context, srv *blast.Server, profile int) ([]byte, error) {
	v, err := srv.View(ctx)
	if err != nil {
		return nil, err
	}
	cands := v.Candidates(profile)
	resp := CandidatesResponse{
		Profile: profile,
		Epoch:   v.Epoch(profile),
		Count:   len(cands),
		Results: make([]CandidateJSON, len(cands)),
	}
	for i, c := range cands {
		resp.Results[i] = CandidateJSON{ID: c.ID, Weight: c.Weight}
	}
	return marshalBody(resp)
}

// ThresholdBody renders the canonical /v1/threshold response body,
// read through an epoch-consistent Server.View like CandidatesBody.
func ThresholdBody(ctx context.Context, srv *blast.Server, profile int) ([]byte, error) {
	v, err := srv.View(ctx)
	if err != nil {
		return nil, err
	}
	return marshalBody(ThresholdResponse{Profile: profile, Epoch: v.Epoch(profile), Threshold: v.Threshold(profile)})
}

// PairsBody renders the canonical /v1/pairs response body.
func PairsBody(ctx context.Context, srv *blast.Server) ([]byte, error) {
	pairs, err := srv.Pairs(ctx)
	if err != nil {
		return nil, err
	}
	resp := PairsResponse{Count: len(pairs), Pairs: make([][2]int32, len(pairs))}
	for i, p := range pairs {
		resp.Pairs[i] = [2]int32{p.U, p.V}
	}
	return marshalBody(resp)
}

// marshalBody encodes a response body with a trailing newline (the
// encoding every endpoint and the differential oracle share).
func marshalBody(v any) ([]byte, error) {
	buf, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// ---- handlers ----

func (h *Handler) writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	//blast:allow syncerr -- HTTP response writes: the transport owns delivery; a client that vanished mid-body is not a durability event
	w.Write(body)
}

func (h *Handler) writeError(w http.ResponseWriter, status int, err error) {
	body, mErr := marshalBody(errorBody{Error: err.Error()})
	if mErr != nil {
		http.Error(w, err.Error(), status)
		return
	}
	h.writeJSON(w, status, body)
}

func (h *Handler) writeValue(w http.ResponseWriter, v any) {
	body, err := marshalBody(v)
	if err != nil {
		h.writeError(w, http.StatusInternalServerError, err)
		return
	}
	h.writeJSON(w, http.StatusOK, body)
}

// profilesBytes approximates the in-memory size of a decoded batch, the
// backpressure unit for requests without a Content-Length.
func profilesBytes(profiles []model.Profile) int64 {
	n := int64(0)
	for i := range profiles {
		n += int64(len(profiles[i].ID)) + 16
		for _, pr := range profiles[i].Pairs {
			n += int64(len(pr.Name)+len(pr.Value)) + 32
		}
	}
	return n
}

// profileParam parses the required ?profile=N query parameter.
func profileParam(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("profile")
	if raw == "" {
		return 0, errors.New("missing profile parameter")
	}
	p, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad profile parameter %q", raw)
	}
	return p, nil
}

func (h *Handler) handleInsert(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, h.opt.maxBodyBytes())
	var req InsertRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			h.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body over %d bytes", tooBig.Limit))
			return
		}
		h.writeError(w, http.StatusBadRequest, fmt.Errorf("bad insert body: %w", err))
		return
	}
	if len(req.Profiles) == 0 {
		h.writeError(w, http.StatusBadRequest, errors.New("insert requires at least one profile"))
		return
	}
	profiles := make([]model.Profile, len(req.Profiles))
	for i, p := range req.Profiles {
		profiles[i] = p.ToProfile()
	}
	nbytes := r.ContentLength
	if nbytes < 0 {
		// Chunked request: charge the decoded payload instead.
		nbytes = profilesBytes(profiles)
	}
	ids, err := h.bat.submit(r.Context(), profiles, nbytes)
	if err != nil {
		switch {
		case errors.Is(err, ErrBackpressure):
			w.Header().Set("Retry-After", strconv.Itoa(h.opt.retryAfterSeconds()))
			h.writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrDraining), errors.Is(err, ErrClosed), errors.Is(err, shard.ErrClosed):
			h.writeError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			// 499-style: the client went away; the status is best-effort.
			h.writeError(w, http.StatusRequestTimeout, err)
		default:
			h.writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	h.writeValue(w, InsertResponse{IDs: ids})
}

func (h *Handler) handleCandidates(w http.ResponseWriter, r *http.Request) {
	p, err := profileParam(r)
	if err != nil {
		h.writeError(w, http.StatusBadRequest, err)
		return
	}
	body, err := CandidatesBody(r.Context(), h.srv, p)
	if err != nil {
		h.writeError(w, http.StatusInternalServerError, err)
		return
	}
	h.writeJSON(w, http.StatusOK, body)
}

func (h *Handler) handleThreshold(w http.ResponseWriter, r *http.Request) {
	p, err := profileParam(r)
	if err != nil {
		h.writeError(w, http.StatusBadRequest, err)
		return
	}
	body, err := ThresholdBody(r.Context(), h.srv, p)
	if err != nil {
		h.writeError(w, http.StatusInternalServerError, err)
		return
	}
	h.writeJSON(w, http.StatusOK, body)
}

func (h *Handler) handlePairs(w http.ResponseWriter, r *http.Request) {
	body, err := PairsBody(r.Context(), h.srv)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusRequestTimeout
		}
		h.writeError(w, status, err)
		return
	}
	h.writeJSON(w, http.StatusOK, body)
}

func (h *Handler) handleQuiesce(w http.ResponseWriter, r *http.Request) {
	if err := h.srv.Quiesce(r.Context()); err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, shard.ErrClosed):
			status = http.StatusServiceUnavailable
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			status = http.StatusRequestTimeout
		}
		h.writeError(w, status, err)
		return
	}
	h.writeValue(w, QuiesceResponse{Admitted: h.srv.Admitted(), Published: h.srv.NumProfiles()})
}

func (h *Handler) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if err := h.srv.Err(); err != nil {
		h.writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	h.writeJSON(w, http.StatusOK, []byte("{\"status\":\"ok\"}\n"))
}

func (h *Handler) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	h.writeValue(w, StatszResponse{
		Topology:  h.srv.Topology().String(),
		Storage:   h.srv.Storage().String(),
		Admitted:  h.srv.Admitted(),
		Published: h.srv.NumProfiles(),
		Shards:    h.srv.Stats(),
		Writes:    h.bat.stats(),
	})
}
