package blasthttp

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"blast"
	"blast/internal/model"
)

// ErrBackpressure is returned by batcher.submit when admitting the
// request would exceed the configured in-flight bounds. The handler
// maps it onto 429 Too Many Requests with a Retry-After header — the
// server sheds load explicitly instead of queueing without bound.
var ErrBackpressure = errors.New("blasthttp: write queue full")

// ErrDraining is returned once Drain has begun: the server is shutting
// down and admits no further writes (503 on the wire).
var ErrDraining = errors.New("blasthttp: server draining")

// ErrClosed is returned by operations on a closed handler.
var ErrClosed = errors.New("blasthttp: handler closed")

// insertResult carries one request's share of a committed batch back to
// its waiting handler goroutine.
type insertResult struct {
	ids []int
	err error
}

// insertReq is one queued insert request. done is buffered so the
// committer can always deliver the result even when the waiter has
// abandoned the request (its context expired mid-commit).
type insertReq struct {
	ctx      context.Context
	profiles []model.Profile
	bytes    int64
	done     chan insertResult
}

// BatcherStats is a point-in-time summary of the write path, served by
// /statsz.
type BatcherStats struct {
	// Batches is the number of InsertAll calls committed so far — the
	// coalescing ratio is AdmittedProfiles/Batches.
	Batches int64 `json:"batches"`
	// AdmittedProfiles counts profiles admitted through the batcher.
	AdmittedProfiles int64 `json:"admitted_profiles"`
	// CoalescedRequests counts HTTP insert requests that shared a
	// committed batch with at least one other request.
	CoalescedRequests int64 `json:"coalesced_requests"`
	// Rejected counts requests shed with 429 by the in-flight bounds.
	Rejected int64 `json:"rejected"`
	// Canceled counts requests whose context expired before commit;
	// their profiles were never admitted.
	Canceled int64 `json:"canceled"`
	// PendingRequests/PendingBytes are the current in-flight level
	// (queued plus committing).
	PendingRequests int   `json:"pending_requests"`
	PendingBytes    int64 `json:"pending_bytes"`
}

// batcher coalesces concurrent insert requests into one admitted
// InsertAll batch. A single committer goroutine drains the queue: it
// waits a short coalescing window after the first request arrives
// (unless a full batch is already pending), concatenates the queued
// profiles, commits them with one Server.InsertAll call, and fans the
// assigned ids back out to the waiters. Admission is bounded — at most
// maxPendingReqs requests and maxPendingBytes encoded bytes may be in
// flight (queued or committing) at once; requests beyond the bound are
// rejected immediately with ErrBackpressure, so memory under saturation
// stays proportional to the bounds, never to the offered load.
type batcher struct {
	srv *blast.Server

	maxBatch        int           // profiles per InsertAll call
	maxPendingReqs  int           // in-flight request bound
	maxPendingBytes int64         // in-flight encoded-bytes bound
	flushDelay      time.Duration // coalescing window

	mu           sync.Mutex
	cond         *sync.Cond
	queue        []*insertReq
	pendingReqs  int   // queued + committing requests
	pendingBytes int64 // queued + committing bytes
	draining     bool
	closed       bool
	stopped      chan struct{}

	batches   atomic.Int64
	admitted  atomic.Int64
	coalesced atomic.Int64
	rejected  atomic.Int64
	canceled  atomic.Int64
}

func newBatcher(srv *blast.Server, opt Options) *batcher {
	b := &batcher{
		srv:             srv,
		maxBatch:        opt.maxBatch(),
		maxPendingReqs:  opt.maxPendingRequests(),
		maxPendingBytes: opt.maxPendingBytes(),
		flushDelay:      opt.flushDelay(),
		stopped:         make(chan struct{}),
	}
	b.cond = sync.NewCond(&b.mu)
	go b.loop()
	return b
}

// submit queues one request's profiles for the next committed batch and
// waits for its ids. nbytes is the encoded size of the request body, the
// unit of the in-flight byte bound. Cancellation is honored until the
// committer picks the request up: a request whose context expires while
// still queued is dropped without being admitted. Once the commit has
// begun the batch is admitted as a whole — the caller receives ctx.Err()
// but the profiles may still have been durably admitted (exactly the
// in-process InsertAll contract, where admission is guarded by ctx only
// up to the journaling point).
func (b *batcher) submit(ctx context.Context, profiles []model.Profile, nbytes int64) ([]int, error) {
	req := &insertReq{
		ctx:      ctx,
		profiles: profiles,
		bytes:    nbytes,
		done:     make(chan insertResult, 1),
	}
	b.mu.Lock()
	switch {
	case b.closed:
		b.mu.Unlock()
		return nil, ErrClosed
	case b.draining:
		b.mu.Unlock()
		return nil, ErrDraining
	case b.pendingReqs >= b.maxPendingReqs || b.pendingBytes+nbytes > b.maxPendingBytes:
		b.mu.Unlock()
		b.rejected.Add(1)
		return nil, ErrBackpressure
	}
	b.pendingReqs++
	b.pendingBytes += nbytes
	b.queue = append(b.queue, req)
	b.cond.Broadcast()
	b.mu.Unlock()

	select {
	case res := <-req.done:
		return res.ids, res.err
	case <-ctx.Done():
		// The committer delivers to the buffered channel regardless; a
		// queued-and-not-yet-taken request is dropped there (see flush).
		return nil, ctx.Err()
	}
}

// loop is the committer: wait for work, linger one coalescing window so
// concurrent small inserts pile into the same batch, then flush
// everything queued.
func (b *batcher) loop() {
	defer close(b.stopped)
	for {
		b.mu.Lock()
		for len(b.queue) == 0 && !b.closed {
			b.cond.Wait()
		}
		if len(b.queue) == 0 && b.closed {
			b.mu.Unlock()
			return
		}
		full := b.queuedProfilesLocked() >= b.maxBatch
		b.mu.Unlock()
		if !full && b.flushDelay > 0 {
			time.Sleep(b.flushDelay)
		}
		b.flush()
	}
}

// queuedProfilesLocked counts the profiles currently queued (not yet
// taken by a flush). Caller holds b.mu.
func (b *batcher) queuedProfilesLocked() int {
	n := 0
	for _, r := range b.queue {
		n += len(r.profiles)
	}
	return n
}

// flush drains the queue through InsertAll calls of at most maxBatch
// profiles each and distributes the assigned ids back to the waiters.
func (b *batcher) flush() {
	for {
		b.mu.Lock()
		if len(b.queue) == 0 {
			b.cond.Broadcast() // wake Drain waiters
			b.mu.Unlock()
			return
		}
		// Take requests until the next one would overflow the batch
		// (always at least one, so oversized single requests still
		// commit — as their own batch).
		take := 0
		profiles := 0
		for _, r := range b.queue {
			if take > 0 && profiles+len(r.profiles) > b.maxBatch {
				break
			}
			profiles += len(r.profiles)
			take++
		}
		reqs := b.queue[:take:take]
		b.queue = b.queue[take:]
		b.mu.Unlock()

		b.commit(reqs)

		b.mu.Lock()
		for _, r := range reqs {
			b.pendingReqs--
			b.pendingBytes -= r.bytes
		}
		b.cond.Broadcast()
		b.mu.Unlock()
	}
}

// commit admits the live requests of one take as a single batch. Requests
// whose context already expired are dropped here — the last moment
// cancellation can still prevent admission.
func (b *batcher) commit(reqs []*insertReq) {
	live := reqs[:0:len(reqs)]
	batch := make([]model.Profile, 0, 16)
	for _, r := range reqs {
		if err := r.ctx.Err(); err != nil {
			b.canceled.Add(1)
			r.done <- insertResult{err: err}
			continue
		}
		live = append(live, r)
		batch = append(batch, r.profiles...)
	}
	if len(batch) == 0 {
		return
	}
	// The commit itself runs under the background context: it covers
	// several requests, so no single request's cancellation may abort
	// the others' admission.
	ids, err := b.srv.InsertAll(context.Background(), batch)
	if err != nil {
		for _, r := range live {
			r.done <- insertResult{err: err}
		}
		return
	}
	b.batches.Add(1)
	b.admitted.Add(int64(len(ids)))
	if len(live) > 1 {
		b.coalesced.Add(int64(len(live)))
	}
	off := 0
	for _, r := range live {
		r.done <- insertResult{ids: ids[off : off+len(r.profiles) : off+len(r.profiles)]}
		off += len(r.profiles)
	}
}

// stats snapshots the batcher counters.
func (b *batcher) stats() BatcherStats {
	b.mu.Lock()
	reqs, bytes := b.pendingReqs, b.pendingBytes
	b.mu.Unlock()
	return BatcherStats{
		Batches:           b.batches.Load(),
		AdmittedProfiles:  b.admitted.Load(),
		CoalescedRequests: b.coalesced.Load(),
		Rejected:          b.rejected.Load(),
		Canceled:          b.canceled.Load(),
		PendingRequests:   reqs,
		PendingBytes:      bytes,
	}
}

// drain stops admission (new submits fail with ErrDraining) and waits
// until every in-flight request has committed or ctx expires.
func (b *batcher) drain(ctx context.Context) error {
	b.mu.Lock()
	b.draining = true
	b.mu.Unlock()
	done := make(chan struct{})
	abort := false
	go func() {
		defer close(done)
		b.mu.Lock()
		defer b.mu.Unlock()
		for b.pendingReqs > 0 && !abort {
			b.cond.Wait()
		}
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Wake the waiter goroutine so it exits too; the pending
		// requests keep committing in the background.
		b.mu.Lock()
		abort = true
		b.cond.Broadcast()
		b.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// close stops the committer after it drains the queue. Idempotent.
func (b *batcher) close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		b.draining = true
		b.cond.Broadcast()
	}
	b.mu.Unlock()
	<-b.stopped
}
