package blasthttp

// Tests of the HTTP serving surface: endpoint semantics and error
// codes, the HTTP-vs-in-process byte differential, write coalescing,
// bounded-backpressure 429s under saturation, cancellation, graceful
// drain, and goroutine-leak checks — the network-facing half of the
// serving-tier contract (the in-process half lives in server_test.go).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"blast"
	"blast/internal/metablocking"
	"blast/internal/model"
	"blast/internal/stats"
)

// testProfile synthesizes one profile with overlapping tokens so
// inserts actually join blocks.
func testProfile(rng *stats.RNG, id string) model.Profile {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	p := model.Profile{ID: id}
	n := 2 + rng.Intn(3)
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(words[rng.Intn(len(words))])
	}
	p.Add("title", b.String())
	p.Add("year", fmt.Sprintf("%d", 1990+rng.Intn(30)))
	return p
}

// testDataset builds a small dirty dataset.
func testDataset(rng *stats.RNG, n int) *model.Dataset {
	e := model.NewCollection("e")
	for i := 0; i < n; i++ {
		e.Append(testProfile(rng, fmt.Sprintf("p%d", i)))
	}
	return &model.Dataset{Name: "t", Kind: model.Dirty, E1: e, Truth: model.NewGroundTruth()}
}

// newTestServer serves a fresh small dataset on the given shard count.
func newTestServer(t *testing.T, shards int) *blast.Server {
	t.Helper()
	p, err := blast.NewPipeline(blast.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(7)
	srv, err := p.Serve(context.Background(), testDataset(rng, 40), blast.ServerOptions{Shards: shards, SwapOps: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// insertBody renders an insert request body for a batch of profiles.
func insertBody(profiles ...model.Profile) []byte {
	req := InsertRequest{Profiles: make([]ProfileJSON, len(profiles))}
	for i, p := range profiles {
		req.Profiles[i] = FromProfile(p)
	}
	buf, err := json.Marshal(req)
	if err != nil {
		panic(err)
	}
	return buf
}

func postJSON(t *testing.T, client *http.Client, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp, out
}

func getBody(t *testing.T, client *http.Client, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp, out
}

// TestEndpointsAndDifferential drives every endpoint once and
// byte-compares each read response against the in-process oracle.
func TestEndpointsAndDifferential(t *testing.T) {
	srv := newTestServer(t, 2)
	h := NewHandler(srv, Options{})
	defer h.Close()
	ts := httptest.NewServer(h)
	defer ts.Close()
	client := ts.Client()
	rng := stats.NewRNG(11)

	// Insert a batch; ids must be the next global ids in order.
	profs := []model.Profile{testProfile(rng, "n0"), testProfile(rng, "n1"), testProfile(rng, "n2")}
	resp, body := postJSON(t, client, ts.URL+"/v1/insert", insertBody(profs...))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status %d: %s", resp.StatusCode, body)
	}
	var ins InsertResponse
	if err := json.Unmarshal(body, &ins); err != nil {
		t.Fatalf("insert response: %v", err)
	}
	if len(ins.IDs) != 3 {
		t.Fatalf("insert ids %v, want 3", ins.IDs)
	}
	for k, id := range ins.IDs {
		if want := 40 + k; id != want {
			t.Errorf("id[%d] = %d, want %d", k, id, want)
		}
	}

	// Quiesce over HTTP: every admitted profile published.
	resp, body = postJSON(t, client, ts.URL+"/v1/quiesce", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quiesce status %d: %s", resp.StatusCode, body)
	}
	var q QuiesceResponse
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}
	if q.Admitted != 43 || q.Published != 43 {
		t.Fatalf("quiesce %+v, want 43/43", q)
	}

	// Differential: candidates, thresholds (boundary ids included) and
	// pairs over HTTP must be byte-identical to the in-process oracle.
	for _, p := range []int{0, 1, 17, 40, 42, 43, 44, 100000, -3} {
		want, err := CandidatesBody(context.Background(), srv, p)
		if err != nil {
			t.Fatal(err)
		}
		resp, got := getBody(t, client, fmt.Sprintf("%s/v1/candidates?profile=%d", ts.URL, p))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("candidates(%d) status %d", p, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("candidates content-type %q", ct)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("candidates(%d): HTTP %s != in-process %s", p, got, want)
		}
		wantT, err := ThresholdBody(context.Background(), srv, p)
		if err != nil {
			t.Fatal(err)
		}
		resp, gotT := getBody(t, client, fmt.Sprintf("%s/v1/threshold?profile=%d", ts.URL, p))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("threshold(%d) status %d", p, resp.StatusCode)
		}
		if !bytes.Equal(gotT, wantT) {
			t.Errorf("threshold(%d): HTTP %s != in-process %s", p, gotT, wantT)
		}
	}
	wantPairs, err := PairsBody(context.Background(), srv)
	if err != nil {
		t.Fatal(err)
	}
	resp, gotPairs := getBody(t, client, ts.URL+"/v1/pairs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pairs status %d", resp.StatusCode)
	}
	if !bytes.Equal(gotPairs, wantPairs) {
		t.Errorf("pairs: HTTP body diverges from in-process encoding (%d vs %d bytes)", len(gotPairs), len(wantPairs))
	}

	// A candidates response must carry a non-null JSON array even for
	// profiles with no retained candidates.
	_, emptyBody := getBody(t, client, ts.URL+"/v1/candidates?profile=99999")
	if !strings.Contains(string(emptyBody), `"candidates":[]`) {
		t.Errorf("empty candidates response not an empty array: %s", emptyBody)
	}

	// healthz + statsz.
	resp, body = getBody(t, client, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz %d %s", resp.StatusCode, body)
	}
	resp, body = getBody(t, client, ts.URL+"/statsz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statsz status %d", resp.StatusCode)
	}
	var st StatszResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("statsz decode: %v (%s)", err, body)
	}
	if st.Admitted != 43 || len(st.Shards) != 2 || st.Writes.AdmittedProfiles != 3 {
		t.Errorf("statsz %+v", st)
	}
}

// TestRequestValidation covers the 4xx surface.
func TestRequestValidation(t *testing.T) {
	srv := newTestServer(t, 1)
	h := NewHandler(srv, Options{MaxBodyBytes: 512})
	defer h.Close()
	ts := httptest.NewServer(h)
	defer ts.Close()
	client := ts.Client()

	cases := []struct {
		name   string
		method string
		url    string
		body   string
		status int
	}{
		{"missing profile", "GET", "/v1/candidates", "", http.StatusBadRequest},
		{"bad profile", "GET", "/v1/candidates?profile=xyz", "", http.StatusBadRequest},
		{"missing threshold profile", "GET", "/v1/threshold", "", http.StatusBadRequest},
		{"bad json", "POST", "/v1/insert", "{", http.StatusBadRequest},
		{"unknown field", "POST", "/v1/insert", `{"rows":[]}`, http.StatusBadRequest},
		{"empty batch", "POST", "/v1/insert", `{"profiles":[]}`, http.StatusBadRequest},
		{"method mismatch", "GET", "/v1/insert", "", http.StatusMethodNotAllowed},
		{"insert on candidates", "POST", "/v1/candidates?profile=1", "{}", http.StatusMethodNotAllowed},
		{"unknown route", "GET", "/v1/nope", "", http.StatusNotFound},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.url, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}

	// Oversized body: 413.
	big := insertBody(func() []model.Profile {
		rng := stats.NewRNG(3)
		out := make([]model.Profile, 64)
		for i := range out {
			out[i] = testProfile(rng, fmt.Sprintf("big%d", i))
		}
		return out
	}()...)
	resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/insert", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}
}

// TestCoalescing fires many concurrent single-profile inserts and
// checks they were admitted in fewer InsertAll batches, with every id
// assigned exactly once.
func TestCoalescing(t *testing.T) {
	srv := newTestServer(t, 2)
	h := NewHandler(srv, Options{FlushInterval: 2 * time.Millisecond})
	defer h.Close()
	ts := httptest.NewServer(h)
	defer ts.Close()
	client := ts.Client()

	const n = 60
	ids := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := stats.NewRNG(uint64(i) + 100)
			resp, body := postJSON(t, client, ts.URL+"/v1/insert", insertBody(testProfile(rng, fmt.Sprintf("c%d", i))))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("insert %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			var ins InsertResponse
			if err := json.Unmarshal(body, &ins); err != nil || len(ins.IDs) != 1 {
				t.Errorf("insert %d: bad response %s", i, body)
				return
			}
			ids <- ins.IDs[0]
		}(i)
	}
	wg.Wait()
	close(ids)
	seen := make(map[int]bool)
	for id := range ids {
		if seen[id] {
			t.Fatalf("id %d assigned twice", id)
		}
		seen[id] = true
	}
	if len(seen) != n {
		t.Fatalf("%d ids assigned, want %d", len(seen), n)
	}
	for id := range seen {
		if id < 40 || id >= 40+n {
			t.Fatalf("id %d outside the admitted range [40, %d)", id, 40+n)
		}
	}
	st := h.Stats()
	if st.AdmittedProfiles != n {
		t.Errorf("admitted %d profiles, want %d", st.AdmittedProfiles, n)
	}
	if st.Batches >= n {
		t.Errorf("no coalescing: %d batches for %d requests", st.Batches, n)
	}
	if st.CoalescedRequests == 0 {
		t.Error("no request ever shared a batch")
	}
}

// TestBackpressure saturates a handler with tiny in-flight bounds and a
// slow committer: the overflow must be shed as 429 with a Retry-After
// header while the in-flight level stays within the bounds, and the
// server must stay healthy throughout.
func TestBackpressure(t *testing.T) {
	srv := newTestServer(t, 1)
	opt := Options{
		MaxPendingRequests: 4,
		MaxPendingBytes:    1 << 20,
		FlushInterval:      20 * time.Millisecond, // slow the committer so the queue actually fills
	}
	h := NewHandler(srv, opt)
	defer h.Close()
	ts := httptest.NewServer(h)
	defer ts.Close()
	client := ts.Client()

	const n = 64
	var ok, shed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := stats.NewRNG(uint64(i) + 500)
			body := insertBody(testProfile(rng, fmt.Sprintf("bp%d", i)))
			resp, _ := postJSON(t, client, ts.URL+"/v1/insert", body)
			switch resp.StatusCode {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				shed.Add(1)
			default:
				t.Errorf("insert %d: unexpected status %d", i, resp.StatusCode)
			}
			// The in-flight level must never exceed the configured bounds.
			st := h.Stats()
			if st.PendingRequests > opt.MaxPendingRequests {
				t.Errorf("pending requests %d over bound %d", st.PendingRequests, opt.MaxPendingRequests)
			}
			if st.PendingBytes > opt.MaxPendingBytes {
				t.Errorf("pending bytes %d over bound %d", st.PendingBytes, opt.MaxPendingBytes)
			}
		}(i)
	}
	wg.Wait()
	if shed.Load() == 0 {
		t.Error("saturation produced no 429s (bounds never engaged)")
	}
	if ok.Load() == 0 {
		t.Error("no insert succeeded under saturation")
	}
	if got := h.Stats().Rejected; got != shed.Load() {
		t.Errorf("stats.Rejected = %d, want %d", got, shed.Load())
	}
	// The server survived: health is green and the admitted profiles
	// are exactly the 200s.
	resp, _ := getBody(t, client, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz %d after saturation", resp.StatusCode)
	}
	if err := srv.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got, want := srv.Admitted(), 40+int(ok.Load()); got != want {
		t.Errorf("admitted %d profiles, want %d", got, want)
	}
}

// TestCancellation: a request whose context dies while queued is never
// admitted.
func TestCancellation(t *testing.T) {
	srv := newTestServer(t, 1)
	h := NewHandler(srv, Options{FlushInterval: 30 * time.Millisecond})
	defer h.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := stats.NewRNG(9)
	_, err := h.bat.submit(ctx, []model.Profile{testProfile(rng, "x")}, 64)
	if err == nil {
		t.Fatal("canceled submit succeeded")
	}
	// Give the committer a window to (incorrectly) admit it anyway.
	time.Sleep(60 * time.Millisecond)
	if err := srv.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := srv.Admitted(); got != 40 {
		t.Errorf("canceled insert was admitted: %d profiles, want 40", got)
	}
	if h.Stats().Canceled == 0 {
		t.Error("cancellation not counted")
	}
}

// TestDrain: inserts racing a drain either commit fully or are refused;
// after Drain the handler serves reads but refuses writes, and every
// admitted profile is published.
func TestDrain(t *testing.T) {
	srv := newTestServer(t, 2)
	h := NewHandler(srv, Options{FlushInterval: time.Millisecond})
	defer h.Close()
	ts := httptest.NewServer(h)
	defer ts.Close()
	client := ts.Client()

	var wg sync.WaitGroup
	var ok atomic.Int64
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := stats.NewRNG(uint64(i) + 900)
			resp, _ := postJSON(t, client, ts.URL+"/v1/insert", insertBody(testProfile(rng, fmt.Sprintf("d%d", i))))
			if resp.StatusCode == http.StatusOK {
				ok.Add(1)
			} else if resp.StatusCode != http.StatusServiceUnavailable {
				t.Errorf("insert %d: status %d", i, resp.StatusCode)
			}
		}(i)
	}
	time.Sleep(2 * time.Millisecond)
	if err := h.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()

	// Post-drain: writes refused, reads fine, everything published.
	rng := stats.NewRNG(1)
	resp, _ := postJSON(t, client, ts.URL+"/v1/insert", insertBody(testProfile(rng, "late")))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain insert: status %d, want 503", resp.StatusCode)
	}
	resp, _ = getBody(t, client, ts.URL+"/v1/candidates?profile=0")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-drain read: status %d", resp.StatusCode)
	}
	if got, want := srv.NumProfiles(), 40+int(ok.Load()); got != want {
		t.Errorf("published %d profiles after drain, want %d", got, want)
	}
	if got, want := srv.Admitted(), srv.NumProfiles(); got != want {
		t.Errorf("drain left %d admitted vs %d published", got, want)
	}
}

// TestGoroutineLeak: handler + server teardown releases every
// goroutine, including under churn.
func TestGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	func() {
		srv := newTestServer(t, 2)
		h := NewHandler(srv, Options{})
		ts := httptest.NewServer(h)
		client := ts.Client()
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				rng := stats.NewRNG(uint64(i) + 40)
				for k := 0; k < 4; k++ {
					postJSON(t, client, ts.URL+"/v1/insert", insertBody(testProfile(rng, fmt.Sprintf("g%d-%d", i, k))))
					getBody(t, client, fmt.Sprintf("%s/v1/candidates?profile=%d", ts.URL, rng.Intn(50)))
				}
			}(i)
		}
		wg.Wait()
		ts.Close()
		if err := h.Close(); err != nil {
			t.Errorf("handler close: %v", err)
		}
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > base {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Errorf("goroutines leaked: %d > %d", n, base)
	}
}

// TestStatszTopology: /statsz names the serving topology and carries
// the per-shard residency counters — under partitioning the owned rows
// must partition the profile space instead of replicating it.
func TestStatszTopology(t *testing.T) {
	for _, topo := range []blast.Topology{blast.TopologyReplicated, blast.TopologyPartitioned} {
		t.Run(topo.String(), func(t *testing.T) {
			p, err := blast.NewPipeline(blast.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			srv, err := p.Serve(context.Background(), testDataset(stats.NewRNG(7), 40),
				blast.ServerOptions{Shards: 2, Topology: topo, SwapOps: 8})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			h := NewHandler(srv, Options{})
			defer h.Close()
			ts := httptest.NewServer(h)
			defer ts.Close()
			resp, body := getBody(t, ts.Client(), ts.URL+"/statsz")
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("statsz status %d", resp.StatusCode)
			}
			var st StatszResponse
			if err := json.Unmarshal(body, &st); err != nil {
				t.Fatalf("statsz body: %v", err)
			}
			if st.Topology != topo.String() {
				t.Fatalf("statsz topology %q, want %q", st.Topology, topo)
			}
			if st.Storage != blast.StorageMemory.String() {
				t.Fatalf("statsz storage %q, want %q", st.Storage, blast.StorageMemory)
			}
			if len(st.Shards) != 2 {
				t.Fatalf("statsz reports %d shards", len(st.Shards))
			}
			owned := 0
			for _, sh := range st.Shards {
				if sh.ResidentBytes <= 0 {
					t.Fatalf("shard %d reports %d resident bytes", sh.ID, sh.ResidentBytes)
				}
				owned += sh.OwnedRows
			}
			want := 2 * 40
			if topo == blast.TopologyPartitioned {
				want = 40
			}
			if owned != want {
				t.Fatalf("%v: owned rows sum to %d, want %d", topo, owned, want)
			}
		})
	}
}

// TestStatszStorage: /statsz names the graph storage mode the server's
// builds run under (configuration, not residency — spilled builds are
// materialized at publish time).
func TestStatszStorage(t *testing.T) {
	opt := blast.DefaultOptions()
	opt.Engine = metablocking.NodeCentric
	opt.Storage = blast.StorageFile
	opt.MemoryBudget = 1
	p, err := blast.NewPipeline(opt)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := p.Serve(context.Background(), testDataset(stats.NewRNG(7), 40),
		blast.ServerOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	h := NewHandler(srv, Options{})
	defer h.Close()
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, body := getBody(t, ts.Client(), ts.URL+"/statsz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statsz status %d", resp.StatusCode)
	}
	var st StatszResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("statsz body: %v", err)
	}
	if st.Storage != blast.StorageFile.String() {
		t.Fatalf("statsz storage %q, want %q", st.Storage, blast.StorageFile)
	}
}
