package blast

// Fuzzing the sharded snapshot-swap server: the fuzz input drives a
// randomized sequence of insert / quiesce(compact+swap) / read
// operations against a Server, with a single mutable Index fed the
// identical stream as the model (the Index itself is held to the
// cold-rebuild contract by the PR 3 differential harness, so agreement
// with it transitively pins the server to a cold IndexBlocks over the
// union collection). Registered in CI's fuzz smoke matrix.

import (
	"context"
	"fmt"
	"testing"

	"blast/internal/model"
	"blast/internal/stats"
)

func FuzzSnapshotSwap(f *testing.F) {
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{7, 255, 19, 4, 4, 4, 200, 1, 13, 13})
	f.Add([]byte{250, 9, 31, 64, 128, 2, 90, 17, 6, 44, 91, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 64 {
			return
		}
		ctx := context.Background()
		// Derive configuration and the synthetic stream from the input.
		seed := uint64(len(data)) * 1099511628211
		for _, b := range data {
			seed = (seed ^ uint64(b)) * 1099511628211
		}
		rng := stats.NewRNG(seed | 1)
		shards := 1 + int(data[0])%4
		// [-1, 6]: -1 disables the op-count trigger (swaps then happen
		// only through Quiesce and the overlay trigger), the rest are
		// aggressive cadences that churn snapshots mid-sequence.
		swapOps := int(data[len(data)-1])%8 - 1

		ds := synthDirty(rng, 16+rng.Intn(16))
		p, err := NewPipeline(DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		srv, err := p.Serve(ctx, ds, ServerOptions{Shards: shards, SwapOps: swapOps})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		ref, err := p.BuildIndex(ctx, synthDirtyClone(ds))
		if err != nil {
			t.Fatal(err)
		}

		streamed := 0
		for _, b := range data {
			switch b % 4 {
			case 0: // quiesce: compact + swap every shard
				if err := srv.Quiesce(ctx); err != nil {
					t.Fatal(err)
				}
			case 3: // read probe (must never panic, any epoch)
				id := int(b>>2) % (srv.Admitted() + 2)
				srv.Candidates(id)
				srv.Threshold(id)
				if _, err := srv.Pairs(ctx); err != nil {
					t.Fatal(err)
				}
			default: // insert batch
				n := 1 + int(b>>4)%3
				profs := make([]model.Profile, n)
				for i := range profs {
					profs[i] = synthProfile(rng, fmt.Sprintf("f%d", streamed+i))
				}
				ids, err := srv.InsertAll(ctx, profs)
				if err != nil {
					t.Fatal(err)
				}
				refIDs, err := ref.InsertAll(ctx, profs)
				if err != nil {
					t.Fatal(err)
				}
				for i := range ids {
					if ids[i] != refIDs[i] {
						t.Fatalf("id drift at %d: server %d, model %d", streamed+i, ids[i], refIDs[i])
					}
				}
				streamed += n
			}
		}
		if err := srv.Quiesce(ctx); err != nil {
			t.Fatal(err)
		}
		got, err := srv.Pairs(ctx)
		if err != nil {
			t.Fatal(err)
		}
		assertSamePairs(t, "fuzz pairs", ref.Pairs(), got)
		n := ref.NumProfiles()
		if srv.NumProfiles() != n {
			t.Fatalf("NumProfiles = %d, want %d", srv.NumProfiles(), n)
		}
		var want, have []Candidate
		for i := 0; i < n; i++ {
			if ref.Threshold(i) != srv.Threshold(i) {
				t.Fatalf("Threshold(%d) = %v, want %v", i, srv.Threshold(i), ref.Threshold(i))
			}
			want = ref.AppendCandidates(want[:0], i)
			have = srv.AppendCandidates(have[:0], i)
			if len(want) != len(have) {
				t.Fatalf("Candidates(%d): %d, want %d", i, len(have), len(want))
			}
			for k := range want {
				if want[k] != have[k] {
					t.Fatalf("Candidates(%d)[%d] = %+v, want %+v", i, k, have[k], want[k])
				}
			}
		}
	})
}

// synthDirtyClone deep-copies a synthetic dirty dataset so the server
// and the model index never share mutable collection state.
func synthDirtyClone(ds *model.Dataset) *model.Dataset {
	e := model.NewCollection(ds.E1.Name)
	for i := range ds.E1.Profiles {
		p := ds.E1.Profiles[i]
		p.Pairs = append([]model.Pair(nil), p.Pairs...)
		e.Append(p)
	}
	return &model.Dataset{Name: ds.Name, Kind: model.Dirty, E1: e, Truth: model.NewGroundTruth()}
}
